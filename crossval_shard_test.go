package repro

// Sharded-vs-single-shard cross-validation at the facade: for random
// workloads and navigational RPQs, sessions opened with WithShards(n) must
// return byte-for-byte the answers of the default single-shard session, in
// every certain-answer mode, across shard counts and partition policies —
// plus a concurrent-session test (run under -race in CI) hammering one
// shared ShardedSnapshot.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

var shardCrossvalPatterns = []string{
	"p",
	"p q",
	"(p|q)+",
	"p (q|r)*",
	"(p q)|(q r)",
}

func shardCrossvalFixture(t *testing.T, seed int64, nodes, edges int) (*CompiledMapping, *Graph) {
	t.Helper()
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: nodes, Edges: edges, Labels: []string{"a", "b"}, Values: 8, Seed: seed,
	})
	m := workload.RandomRelationalMapping(workload.MappingSpec{
		SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q", "r"},
		Rules: 3, MaxWordLen: 2, Seed: seed,
	})
	cm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return cm, gs
}

// answersBytes is the canonical serialized form used for byte-for-byte
// comparison: the deterministic sorted answer list, rendered.
func answersBytes(a *Answers) string { return fmt.Sprintf("%v", a.Sorted()) }

func TestShardedSessionCrossValidation(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		cm, gs := shardCrossvalFixture(t, seed, 50, 150)
		base, err := NewSession(cm, gs)
		if err != nil {
			t.Fatal(err)
		}
		for _, pat := range shardCrossvalPatterns {
			q, err := ParseRPQ(pat)
			if err != nil {
				t.Fatal(err)
			}
			wantNull, err := base.CertainNull(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			wantLI, err := base.CertainLeastInformative(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			wantSrc, err := base.EvalSource(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 7, 16} {
				for _, policy := range []string{"hash", "range"} {
					s, err := NewSession(cm, gs, WithShards(shards), WithPartition(policy))
					if err != nil {
						t.Fatal(err)
					}
					gotNull, err := s.CertainNull(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if answersBytes(gotNull) != answersBytes(wantNull) {
						t.Fatalf("seed %d shards %d %s %q: CertainNull differs\n got: %s\nwant: %s",
							seed, shards, policy, pat, answersBytes(gotNull), answersBytes(wantNull))
					}
					gotLI, err := s.CertainLeastInformative(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if answersBytes(gotLI) != answersBytes(wantLI) {
						t.Fatalf("seed %d shards %d %s %q: CertainLeastInformative differs",
							seed, shards, policy, pat)
					}
					gotSrc, err := s.EvalSource(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if !gotSrc.Equal(wantSrc) {
						t.Fatalf("seed %d shards %d %s %q: EvalSource differs", seed, shards, policy, pat)
					}
				}
			}
		}
	}
}

func TestShardedSessionExactCrossValidation(t *testing.T) {
	ctx := context.Background()
	// Small instances: the exact mode is an exponential search.
	cm, gs := shardCrossvalFixture(t, 21, 8, 10)
	base, err := NewSession(cm, gs, WithMaxNulls(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range shardCrossvalPatterns[:3] {
		q, err := ParseRPQ(pat)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := base.CertainExact(ctx, q)
		for _, shards := range []int{2, 7} {
			s, err := NewSession(cm, gs, WithShards(shards), WithMaxNulls(10))
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := s.CertainExact(ctx, q)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("shards %d %q: error mismatch got %v want %v", shards, pat, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("shards %d %q: error text differs: %q vs %q", shards, pat, gotErr, wantErr)
				}
				continue
			}
			if answersBytes(got) != answersBytes(want) {
				t.Fatalf("shards %d %q: CertainExact differs\n got: %s\nwant: %s",
					shards, pat, answersBytes(got), answersBytes(want))
			}
		}
	}
}

func TestShardedEvalBatchCrossValidation(t *testing.T) {
	ctx := context.Background()
	cm, gs := shardCrossvalFixture(t, 5, 40, 120)
	base, err := NewSession(cm, gs)
	if err != nil {
		t.Fatal(err)
	}
	// A mixed batch: navigational RPQs (sharded path) interleaved with REE
	// queries (merged-solution fallback).
	queries := []Query{
		mustParseRPQ(t, "p q"),
		MustREE("(p q)= | r"),
		mustParseRPQ(t, "(p|q)+"),
		MustREE("p (q)= r"),
	}
	want, err := base.Eval(ctx, queries...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cm, gs, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Eval(ctx, queries...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if answersBytes(got[i]) != answersBytes(want[i]) {
			t.Fatalf("query %d: sharded batch answer differs", i)
		}
	}
	st := s.ShardStats()
	if st.Shards != 4 || st.Policy != "hash" {
		t.Fatalf("ShardStats = %+v", st)
	}
	if len(st.Fragments) != 4 {
		t.Fatalf("fragments not reported after evaluation: %+v", st)
	}
}

func mustParseRPQ(t *testing.T, s string) Query {
	t.Helper()
	q, err := ParseRPQ(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestShardedSnapshotConcurrentSessions hammers one source graph's shared
// ShardedSnapshot and one sharded session family from many goroutines —
// the -race guarantee that the exchange kernels, the fragment caches and
// the metrics counters are safe under concurrent serving.
func TestShardedSnapshotConcurrentSessions(t *testing.T) {
	ctx := context.Background()
	cm, gs := shardCrossvalFixture(t, 9, 40, 120)
	base, err := NewSession(cm, gs, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseRPQ("p (q|r)*")
	if err != nil {
		t.Fatal(err)
	}
	wantNull, err := base.CertainNull(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	wantSrc, err := base.EvalSource(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := base
			if w%2 == 1 {
				var err error
				s, err = base.Derive(WithWorkers(2))
				if err != nil {
					errs <- err
					return
				}
			}
			for i := 0; i < 5; i++ {
				got, err := s.CertainNull(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if answersBytes(got) != answersBytes(wantNull) {
					errs <- fmt.Errorf("worker %d: concurrent CertainNull diverged", w)
					return
				}
				src, err := s.EvalSource(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if !src.Equal(wantSrc) {
					errs <- fmt.Errorf("worker %d: concurrent EvalSource diverged", w)
					return
				}
				_ = s.ShardStats()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
