package repro

import (
	"context"
	"errors"
	"testing"
)

// TestSessionDerive pins the server-facing contract of Derive: the derived
// session shares the memoized materialization (no re-materialization), its
// options compose on top of the base configuration, invalid options are
// ErrBadOptions, and base and derived sessions return identical answers.
func TestSessionDerive(t *testing.T) {
	gs, m, queries := sessionTestWorkload(t)
	s := newTestSession(t, gs, m, WithChunkSize(64))
	ctx := context.Background()

	// Materialize through the base session first.
	baseAns, err := s.CertainNull(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}

	d, err := s.Derive(WithWorkers(2), WithChunkSize(8))
	if err != nil {
		t.Fatal(err)
	}
	// Sharing the materialization pointer is the whole point: deriving must
	// not pay for the solutions again.
	if d.mat != s.mat {
		t.Fatal("derived session does not share the base materialization")
	}
	if d.cm != s.cm || d.gs != s.gs {
		t.Fatal("derived session does not share the compiled mapping / source graph")
	}
	// Options compose: overridden fields change, inherited fields persist.
	if d.cfg.workers != 2 || d.cfg.chunkSize != 8 {
		t.Fatalf("derived cfg = %+v, want workers 2 chunk 8", d.cfg)
	}
	if s.cfg.workers != 0 || s.cfg.chunkSize != 64 {
		t.Fatalf("base cfg mutated by Derive: %+v", s.cfg)
	}

	for i, q := range queries {
		want, err := s.CertainNull(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.CertainNull(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("query %d: derived answers diverge from base", i)
		}
	}
	// And the pre-derivation answers are still what the base returns.
	again, err := s.CertainNull(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(baseAns) {
		t.Fatal("base session answers changed after Derive")
	}

	// Invalid options surface as ErrBadOptions and leave nothing derived.
	if _, err := s.Derive(WithChunkSize(-5)); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Derive(bad option) error = %v, want ErrBadOptions", err)
	}

	// Deriving from a derived session composes again.
	d2, err := d.Derive(WithChunkSize(16))
	if err != nil {
		t.Fatal(err)
	}
	if d2.mat != s.mat || d2.cfg.workers != 2 || d2.cfg.chunkSize != 16 {
		t.Fatalf("second-level derive: mat shared %v cfg %+v", d2.mat == s.mat, d2.cfg)
	}
}

// TestSessionDeriveRejectsShardChanges pins that the shard configuration is
// fixed at session creation: the memoized artifacts are partitioned (or
// not) once, so a derived session cannot ask for a different layout.
func TestSessionDeriveRejectsShardChanges(t *testing.T) {
	gs, m, _ := sessionTestWorkload(t)
	s := newTestSession(t, gs, m)
	if _, err := s.Derive(WithShards(4)); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Derive(WithShards) error = %v, want ErrBadOptions", err)
	}
	if _, err := s.Derive(WithPartition("range")); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Derive(WithPartition) error = %v, want ErrBadOptions", err)
	}

	sh := newTestSession(t, gs, m, WithShards(3), WithPartition("range"))
	// Re-stating the existing configuration is a no-op, not an error.
	d, err := sh.Derive(WithShards(3), WithPartition("range"), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.shards != 3 || d.cfg.workers != 2 {
		t.Fatalf("derived cfg = %+v", d.cfg)
	}
	if _, err := sh.Derive(WithShards(2)); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Derive(shard count change) error = %v, want ErrBadOptions", err)
	}

	// Construction-time validation: shards < 1 and unknown policies are
	// ErrBadOptions from NewSession itself.
	cm := sh.Mapping()
	if _, err := NewSession(cm, gs, WithShards(0)); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("WithShards(0) error = %v, want ErrBadOptions", err)
	}
	if _, err := NewSession(cm, gs, WithShards(-1)); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("WithShards(-1) error = %v, want ErrBadOptions", err)
	}
	if _, err := NewSession(cm, gs, WithPartition("modulo")); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("WithPartition(modulo) error = %v, want ErrBadOptions", err)
	}
}
