package repro

// End-to-end integration test: the complete data-exchange pipeline of the
// paper on the property-graph-style social-network workload, crossing every
// subsystem — workload generation, mapping classification, both solution
// styles, all certain-answer algorithms, the relational encoding, and
// conjunctive queries — with the paper's invariants asserted at each stage.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crpq"
	"repro/internal/datagraph"
	"repro/internal/relational"
	"repro/internal/workload"
)

func TestEndToEndExchangePipeline(t *testing.T) {
	// 1. A property-graph-style source.
	gs := workload.SocialNetwork(12, 6, 2, 2, 42)

	// 2. The mapping: knows → follows·follows (unknown intermediate
	// account), likes → endorses.
	m := NewMapping(R("knows", "follows follows"), R("likes", "endorses"))
	if !m.IsLAV() || !m.IsRelational() {
		t.Fatal("mapping misclassified")
	}

	// 3. Solutions. Both must satisfy the mapping; Lemma 1 homomorphism
	// from the universal into the least informative one.
	u, err := UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	li, err := LeastInformativeSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Satisfies(gs, u) || !m.Satisfies(gs, li) {
		t.Fatal("solutions must satisfy the mapping")
	}
	fixed := map[datagraph.NodeID]datagraph.NodeID{}
	for id := range core.DomIDs(m, gs) {
		fixed[id] = id
	}
	if _, ok := datagraph.FindHomomorphismNulls(u, li, fixed); !ok {
		t.Fatal("Lemma 1 homomorphism missing")
	}

	// 4. Certain answers with every algorithm; containment invariants.
	navigational := MustREE("follows follows")
	withData := MustREE("(follows follows)!=")
	equalityOnly := MustREE("(follows follows)=")

	nullNav, err := CertainNull(m, gs, navigational)
	if err != nil {
		t.Fatal(err)
	}
	liNav, err := CertainLeastInformative(m, gs, navigational)
	if err != nil {
		t.Fatal(err)
	}
	// Navigational queries: both tractable algorithms agree (both are
	// exact here).
	if !nullNav.Equal(liNav) {
		t.Fatalf("navigational disagreement: %v vs %v", nullNav, liNav)
	}
	// Every source knows-pair must be a certain follows·follows answer.
	knowsPairs := 0
	for _, e := range gs.Edges() {
		if e.Label == "knows" {
			knowsPairs++
			if !nullNav.Has(e.From, e.To) {
				t.Fatalf("missing certain answer for knows pair %v", e)
			}
		}
	}
	if nullNav.Len() != knowsPairs {
		t.Fatalf("unexpected extra certain answers: %d vs %d", nullNav.Len(), knowsPairs)
	}

	nullData, err := CertainNull(m, gs, withData)
	if err != nil {
		t.Fatal(err)
	}
	liEq, err := CertainLeastInformative(m, gs, equalityOnly)
	if err != nil {
		t.Fatal(err)
	}
	// (f f)!= certain exactly for knows-pairs with different ages;
	// (f f)= exactly for same-age pairs; they partition the knows pairs.
	if nullData.Len()+liEq.Len() != knowsPairs {
		t.Fatalf("= / ≠ answers do not partition: %d + %d != %d",
			nullData.Len(), liEq.Len(), knowsPairs)
	}
	for _, a := range nullData.Sorted() {
		if a.From.Value == a.To.Value {
			t.Fatalf("≠ answer with equal values: %v", a)
		}
	}
	for _, a := range liEq.Sorted() {
		if a.From.Value != a.To.Value {
			t.Fatalf("= answer with distinct values: %v", a)
		}
	}

	// 5. One-inequality decision procedure agrees with the null algorithm
	// on this hom-closed query for a sample of pairs.
	for i, a := range nullData.Sorted() {
		if i >= 5 {
			break
		}
		got, err := CertainOneInequality(m, gs, withData, a.From.ID, a.To.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatalf("one-inequality algorithm missed %v", a)
		}
	}

	// 6. Relational view agrees that both solutions are solutions.
	mr, err := relational.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	ds := relational.FromGraph(gs)
	for name, sol := range map[string]*Graph{"universal": u, "least-informative": li} {
		if ok, why := mr.Satisfied(ds, relational.FromGraph(sol)); !ok {
			t.Fatalf("relational view rejects %s solution: %s", name, why)
		}
	}

	// 7. Conjunctive certain answers: same-post endorsers two hops apart.
	cq := crpq.MustParse(
		"ans(x, y) :- x -[follows follows]-> y, x -[endorses]-> p, y -[endorses]-> p")
	tuples, err := crpq.Certain(m, gs, cq)
	if err != nil {
		t.Fatal(err)
	}
	// Consistency: every conjunctive answer's pair is also a plain certain
	// answer of the navigational part.
	for _, tup := range tuples.Sorted() {
		if !nullNav.Has(tup[0].ID, tup[1].ID) {
			t.Fatalf("conjunctive answer %v not among navigational certain answers", tup)
		}
	}
}
