package repro_test

import (
	"context"
	"errors"
	"fmt"

	"repro"
)

// Example_session is the serving workflow: compile the mapping once, open a
// session over the source graph, and run a stream of certain-answer calls
// that share the memoized universal solution.
func Example_session() {
	gs := repro.NewGraph()
	gs.MustAddNode("ann", repro.V("30"))
	gs.MustAddNode("bob", repro.V("25"))
	gs.MustAddEdge("ann", "knows", "bob")

	cm, err := repro.Compile(repro.NewMapping(repro.R("knows", "follows follows")))
	if err != nil {
		panic(err)
	}
	s, err := repro.NewSession(cm, gs, repro.WithWorkers(2))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// The first call materializes the universal solution; every later call
	// (any goroutine) reuses it.
	ans, err := s.CertainNull(ctx, repro.MustREE("follows follows"))
	if err != nil {
		panic(err)
	}
	fmt.Println(ans)

	// Streaming: answers arrive as evaluation proceeds; break early to stop.
	for a, err := range s.CertainNullSeq(ctx, repro.MustREE("(follows follows)!=")) {
		if err != nil {
			panic(err)
		}
		fmt.Println("stream:", a)
	}

	// Typed errors dispatch with errors.Is.
	tiny, err := repro.NewSession(cm, gs, repro.WithMaxNulls(-1))
	fmt.Println(tiny == nil, errors.Is(err, repro.ErrBadOptions))

	// Output:
	// {((ann,30), (bob,25))}
	// stream: ((ann,30), (bob,25))
	// true true
}

// ExampleCompiledMapping shows one mapping compiled once and shared by
// sessions over different source graphs.
func ExampleCompiledMapping() {
	m := repro.NewMapping(
		repro.R("knows", "follows follows"),
		repro.R("likes", "likes"),
	)
	cm, err := repro.Compile(m)
	if err != nil {
		panic(err)
	}
	fmt.Println("relational:", cm.IsRelational(), "LAV:", cm.IsLAV())
	word, _ := cm.TargetWord(0)
	fmt.Println("rule 0 target word:", word)

	for _, id := range []string{"g1", "g2"} {
		gs := repro.NewGraph()
		gs.MustAddNode(repro.NodeID(id), repro.V("1"))
		s, err := repro.NewSession(cm, gs)
		if err != nil {
			panic(err)
		}
		sol, err := s.UniversalSolution(context.Background())
		if err != nil {
			panic(err)
		}
		fmt.Println(id, "solution nodes:", sol.NumNodes())
	}

	// Output:
	// relational: true LAV: true
	// rule 0 target word: [follows follows]
	// g1 solution nodes: 0
	// g2 solution nodes: 0
}

// ExamplePrepareQuery prepares a query once and reuses the handle across
// calls; Bind warms the per-snapshot lowered program eagerly.
func ExamplePrepareQuery() {
	gs := repro.NewGraph()
	gs.MustAddNode("a1", repro.V("7"))
	gs.MustAddNode("a2", repro.V("7"))
	gs.MustAddEdge("a1", "e", "a2")

	cm := repro.MustCompile(repro.NewMapping(repro.R("e", "p q")))
	s, err := repro.NewSession(cm, gs)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	p := repro.PrepareQuery(repro.MustREE("(p q)="))
	if err := p.Bind(ctx, s); err != nil {
		panic(err)
	}
	ans, err := s.CertainNull(ctx, p)
	if err != nil {
		panic(err)
	}
	fmt.Println(ans)

	// Output:
	// {((a1,7), (a2,7))}
}
