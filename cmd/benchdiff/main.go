// Command benchdiff compares two `gsmbench -json` reports and prints the
// per-experiment wall-clock delta. CI runs it against the previous
// successful run's BENCH_*.json artifact, so every pipeline run prints the
// perf trajectory since the last one:
//
//	benchdiff old.json new.json
//
// The comparison is informational: benchdiff always exits 0 on readable
// input (timing noise on shared CI runners must not fail the build) and
// reports experiments present on only one side as added/removed.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// report mirrors the subset of the gsmbench -json document benchdiff
// consumes; unknown fields are ignored so the tools can evolve
// independently.
type report struct {
	Quick        bool         `json:"quick"`
	GoVersion    string       `json:"go_version"`
	TotalSeconds float64      `json:"total_seconds"`
	Experiments  []experiment `json:"experiments"`
}

type experiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(Diff(old, cur))
}

// Diff renders the comparison of two reports.
func Diff(old, cur report) string {
	out := fmt.Sprintf("benchmark delta (old: go %s quick=%v, new: go %s quick=%v)\n",
		old.GoVersion, old.Quick, cur.GoVersion, cur.Quick)
	prev := make(map[string]experiment, len(old.Experiments))
	for _, e := range old.Experiments {
		prev[e.ID] = e
	}
	seen := make(map[string]bool, len(cur.Experiments))
	for _, e := range cur.Experiments {
		seen[e.ID] = true
		p, ok := prev[e.ID]
		if !ok {
			out += fmt.Sprintf("  %-4s %10.3fs   (new experiment)\n", e.ID, e.Seconds)
			continue
		}
		delta := e.Seconds - p.Seconds
		pct := 0.0
		if p.Seconds > 0 {
			pct = 100 * delta / p.Seconds
		}
		out += fmt.Sprintf("  %-4s %10.3fs  -> %8.3fs  %+8.3fs (%+.1f%%)\n",
			e.ID, p.Seconds, e.Seconds, delta, pct)
	}
	for _, e := range old.Experiments {
		if !seen[e.ID] {
			out += fmt.Sprintf("  %-4s %10.3fs   (removed)\n", e.ID, e.Seconds)
		}
	}
	out += fmt.Sprintf("  total %8.3fs  -> %8.3fs\n", old.TotalSeconds, cur.TotalSeconds)
	return out
}
