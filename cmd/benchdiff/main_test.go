package main

import (
	"strings"
	"testing"
)

func TestDiff(t *testing.T) {
	old := report{
		GoVersion: "go1.22", Quick: true, TotalSeconds: 3,
		Experiments: []experiment{
			{ID: "E1", Seconds: 1},
			{ID: "E2", Seconds: 2},
		},
	}
	cur := report{
		GoVersion: "go1.23", Quick: true, TotalSeconds: 2.5,
		Experiments: []experiment{
			{ID: "E1", Seconds: 0.5},
			{ID: "E14", Seconds: 2},
		},
	}
	got := Diff(old, cur)
	for _, want := range []string{
		"E1", "-0.500s", "(-50.0%)",
		"E14", "(new experiment)",
		"E2", "(removed)",
		"total",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("diff output missing %q:\n%s", want, got)
		}
	}
}
