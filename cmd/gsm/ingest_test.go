package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/workload"
)

const testSchemaText = `table customer file=customer.csv
col customer id int pk
col customer name text
col customer city text null
table orders file=orders.csv
col orders id int pk
col orders customer_id int
col orders total float null
fk orders customer_id customer.id
`

const testCustomersCSV = "id,name,city\n1,alice,paris\n2,bob,\n"
const testOrdersCSV = "id,customer_id,total\n10,1,19.50\n11,2,\n"

func writeIngestFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, dir, "schema.txt", testSchemaText)
	writeFile(t, dir, "customer.csv", testCustomersCSV)
	writeFile(t, dir, "orders.csv", testOrdersCSV)
	return dir
}

// expectedGraphText loads the same fixture in-process — the CLI output
// must match it byte for byte.
func expectedGraphText(t *testing.T) string {
	t.Helper()
	s, err := ingest.ParseSchema(testSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := ingest.Load(context.Background(), s, ingest.Options{},
		ingest.CSVString("customer", testCustomersCSV), ingest.CSVString("orders", testOrdersCSV))
	if err != nil {
		t.Fatal(err)
	}
	return g.String()
}

func TestIngestCSVToStdout(t *testing.T) {
	dir := writeIngestFixture(t)
	got, err := runCLI(t, "ingest", "-schema", filepath.Join(dir, "schema.txt"))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if want := expectedGraphText(t); got != want {
		t.Fatalf("CLI graph diverged from in-process ingest:\n--- got\n%s--- want\n%s", got, want)
	}
}

func TestIngestExplicitSourceAndOutputFile(t *testing.T) {
	dir := writeIngestFixture(t)
	alt := writeFile(t, dir, "alt-orders.csv", testOrdersCSV)
	outPath := filepath.Join(dir, "g.txt")
	report, err := runCLI(t, "ingest",
		"-schema", filepath.Join(dir, "schema.txt"),
		"-o", outPath, "-batch", "2",
		"orders="+alt)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if !strings.Contains(report, "ingested 4 rows") {
		t.Fatalf("report missing row count: %q", report)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != expectedGraphText(t) {
		t.Fatalf("-o graph diverged from in-process ingest")
	}
}

func TestIngestStrictVsSkipBadRows(t *testing.T) {
	dir := writeIngestFixture(t)
	writeFile(t, dir, "customer.csv", "id,name,city\n1,alice,paris\nbad,bob,\n")
	schema := filepath.Join(dir, "schema.txt")
	if _, err := runCLI(t, "ingest", "-schema", schema); err == nil {
		t.Fatal("strict policy must fail on an uncoercible key")
	} else if !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("error lost the row coordinate: %v", err)
	}
	// Lenient: the bad customer is skipped, which dangles order 11's FK —
	// also skipped under the same policy.
	out, err := runCLI(t, "ingest", "-schema", schema, "-skip-bad-rows", "-o", filepath.Join(dir, "g.txt"))
	if err != nil {
		t.Fatalf("skip-bad-rows: %v", err)
	}
	if !strings.Contains(out, "1 skipped") || !strings.Contains(out, "1 dangling FKs dropped") {
		t.Fatalf("report missing skip accounting: %q", out)
	}
}

func TestGenRelRoundTripsThroughIngest(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "data.sqlite")
	out, err := runCLI(t, "genrel", "-dir", dir, "-customers", "30", "-products", "10",
		"-orders", "120", "-seed", "9", "-sqlite", dbPath)
	if err != nil {
		t.Fatalf("genrel: %v", err)
	}
	if !strings.Contains(out, "160 rows") {
		t.Fatalf("genrel summary wrong: %q", out)
	}

	fromCSV, err := runCLI(t, "ingest", "-schema", filepath.Join(dir, "schema.txt"))
	if err != nil {
		t.Fatalf("ingest CSV: %v", err)
	}
	fromSQLite, err := runCLI(t, "ingest", "-sqlite", dbPath)
	if err != nil {
		t.Fatalf("ingest SQLite: %v", err)
	}
	if fromCSV != fromSQLite {
		t.Fatalf("CSV and SQLite ingests of the same dataset diverged")
	}

	d := workload.Relational(workload.RelationalSpec{Customers: 30, Products: 10, Orders: 120, Seed: 9})
	g, _, err := ingest.Load(context.Background(), d.Schema, ingest.Options{}, d.Sources()...)
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV != g.String() {
		t.Fatalf("CLI round trip diverged from in-process load")
	}
}

func TestIngestUsageErrors(t *testing.T) {
	dir := writeIngestFixture(t)
	schema := filepath.Join(dir, "schema.txt")
	cases := [][]string{
		{"ingest"},
		{"ingest", "-schema", schema, "notatablepath"},
		{"ingest", "-schema", schema, "ghosts=x.csv"},
		{"ingest", "-sqlite", filepath.Join(dir, "missing.db")},
		{"ingest", "-sqlite", schema}, // not a SQLite file
		{"genrel"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
