// Command gsm is the command-line front end to the graph-schema-mapping
// library: it evaluates queries on data graphs, builds solutions, computes
// certain answers, and classifies mappings. It is built entirely on the
// public session API of the repro facade: the certain and solve paths open
// one repro.Session per invocation and run every requested query/solution
// against its memoized artifacts.
//
// Usage:
//
//	gsm eval     -graph g.txt -query "(a b)=" [-lang ree|rem|rpq|gxnode] [-mode marked|sql]
//	gsm solve    -graph gs.txt -mapping m.txt [-style null|fresh]
//	gsm certain  -graph gs.txt -mapping m.txt -query Q [-query Q2 ...]
//	             [-lang ree|rem|rpq] [-algo null|exact|least|oneneq]
//	             [-from X -to Y] [-workers N] [-maxnulls N] [-timeout D]
//	gsm classify -mapping m.txt
//	gsm check    -source gs.txt -target gt.txt -mapping m.txt
//	gsm conj     -graph g.txt -query "ans(x,y) :- x -[a]-> z, z -[b=]-> y"
//	             [-mapping m.txt]   (certain-answer mode when given)
//	gsm ingest   -schema s.txt [-dir d] [table=file.csv ...] [-o g.txt]
//	             | -sqlite db.sqlite [-schema s.txt] [-o g.txt]
//	             [-batch N] [-skip-bad-rows] [-progress]
//	gsm genrel   -dir out [-customers N -products N -orders N -seed S]
//	             [-sqlite out.sqlite]
//
// Errors exit with distinct codes by kind, dispatched on the facade's typed
// sentinels: 2 invalid options, 3 search budget exceeded, 4 no/infinite
// solution, 5 canceled or timed out, 1 anything else.
//
// Graphs use the datagraph text format (node/edge lines); mappings use the
// core text format (rule src -> tgt lines).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gsm:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the facade's typed sentinel errors to distinct process exit
// codes, so scripts dispatch on $? instead of parsing messages.
func exitCode(err error) int {
	switch {
	case errors.Is(err, repro.ErrBadOptions):
		return 2
	case errors.Is(err, repro.ErrBudgetExceeded):
		return 3
	case errors.Is(err, repro.ErrInfinite), errors.Is(err, repro.ErrNoSolution):
		return 4
	case errors.Is(err, repro.ErrCanceled):
		return 5
	}
	return 1
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gsm <eval|solve|certain|classify|check|conj|nonempty|ingest|genrel> [flags]")
	}
	switch args[0] {
	case "eval":
		return cmdEval(args[1:], out)
	case "solve":
		return cmdSolve(args[1:], out)
	case "certain":
		return cmdCertain(args[1:], out)
	case "classify":
		return cmdClassify(args[1:], out)
	case "check":
		return cmdCheck(args[1:], out)
	case "conj":
		return cmdConj(args[1:], out)
	case "nonempty":
		return cmdNonempty(args[1:], out)
	case "ingest":
		return cmdIngest(args[1:], out)
	case "genrel":
		return cmdGenRel(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func loadGraph(path string) (*repro.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return repro.ParseGraph(string(data))
}

func loadMapping(path string) (*repro.Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return repro.ParseMapping(string(data))
}

// openSession loads the graph and mapping and opens the one session shared
// by everything the invocation asks for.
func openSession(graphPath, mappingPath string, opts ...repro.Option) (*repro.Session, error) {
	gs, err := loadGraph(graphPath)
	if err != nil {
		return nil, err
	}
	m, err := loadMapping(mappingPath)
	if err != nil {
		return nil, err
	}
	cm, err := repro.Compile(m)
	if err != nil {
		return nil, err
	}
	return repro.NewSession(cm, gs, opts...)
}

func parseMode(s string) (repro.CompareMode, error) {
	switch s {
	case "marked", "":
		return repro.MarkedNulls, nil
	case "sql":
		return repro.SQLNulls, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want marked or sql)", s)
	}
}

// parseQuery compiles a query in the requested language to the repro.Query
// interface.
func parseQuery(lang, text string) (repro.Query, error) {
	switch lang {
	case "ree", "":
		return repro.ParseREE(text)
	case "rem":
		return repro.ParseREM(text)
	case "rpq":
		return repro.ParseRPQ(text)
	default:
		return nil, fmt.Errorf("unknown query language %q", lang)
	}
}

// cmdNonempty runs the static nonemptiness analysis of a data RPQ and
// prints a witness data path if one exists.
func cmdNonempty(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nonempty", flag.ContinueOnError)
	queryText := fs.String("query", "", "query text")
	lang := fs.String("lang", "ree", "query language: ree or rem")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryText == "" {
		return fmt.Errorf("nonempty: -query is required")
	}
	var w repro.DataPath
	var ok bool
	switch *lang {
	case "ree":
		q, err := repro.ParseREE(*queryText)
		if err != nil {
			return err
		}
		w, ok = q.WitnessDataPath()
	case "rem":
		q, err := repro.ParseREM(*queryText)
		if err != nil {
			return err
		}
		w, ok = q.WitnessDataPath()
	default:
		return fmt.Errorf("nonempty: unknown language %q", *lang)
	}
	if !ok {
		fmt.Fprintln(out, "empty: L(e) contains no data path")
		return nil
	}
	fmt.Fprintf(out, "nonempty; witness: %s\n", w)
	return nil
}

// cmdConj evaluates a conjunctive data RPQ, either directly on a graph or
// as certain answers under a mapping.
func cmdConj(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("conj", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "data graph file (source graph when -mapping is given)")
	mappingPath := fs.String("mapping", "", "mapping file (certain-answer mode)")
	queryText := fs.String("query", "", "conjunctive query, e.g. 'ans(x,y) :- x -[a]-> y'")
	modeText := fs.String("mode", "marked", "comparison mode for direct evaluation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *queryText == "" {
		return fmt.Errorf("conj: -graph and -query are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	q, err := repro.ParseConjunctive(*queryText)
	if err != nil {
		return err
	}
	var res *repro.TupleSet
	if *mappingPath != "" {
		m, err := loadMapping(*mappingPath)
		if err != nil {
			return err
		}
		res, err = repro.CertainConjunctive(m, g, q)
		if err != nil {
			return err
		}
	} else {
		mode, err := parseMode(*modeText)
		if err != nil {
			return err
		}
		res, err = q.Eval(g, mode)
		if err != nil {
			return err
		}
	}
	for _, tup := range res.Sorted() {
		for i, n := range tup {
			if i > 0 {
				fmt.Fprint(out, ", ")
			}
			fmt.Fprint(out, n)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "# %d answers\n", res.Len())
	return nil
}

func cmdEval(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "data graph file")
	queryText := fs.String("query", "", "query text")
	lang := fs.String("lang", "ree", "query language: ree, rem, rpq, gxnode")
	modeText := fs.String("mode", "marked", "comparison mode: marked or sql")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *queryText == "" {
		return fmt.Errorf("eval: -graph and -query are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeText)
	if err != nil {
		return err
	}
	if *lang == "gxnode" {
		n, err := repro.ParseGXNode(*queryText)
		if err != nil {
			return err
		}
		for _, i := range repro.EvalGXNode(g, n, mode) {
			fmt.Fprintln(out, g.Node(i))
		}
		return nil
	}
	q, err := parseQuery(*lang, *queryText)
	if err != nil {
		return err
	}
	for _, p := range q.Eval(g, mode).IDPairs(g) {
		fmt.Fprintf(out, "%s -> %s\n", p.From, p.To)
	}
	return nil
}

func cmdSolve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "source data graph file")
	mappingPath := fs.String("mapping", "", "mapping file")
	style := fs.String("style", "null", "solution style: null (universal) or fresh (least informative)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *mappingPath == "" {
		return fmt.Errorf("solve: -graph and -mapping are required")
	}
	s, err := openSession(*graphPath, *mappingPath)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var sol *repro.Graph
	switch *style {
	case "null":
		sol, err = s.UniversalSolution(ctx)
	case "fresh":
		sol, err = s.LeastInformativeSolution(ctx)
	default:
		return fmt.Errorf("solve: unknown style %q", *style)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(out, sol.String())
	return nil
}

func cmdCertain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("certain", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "source data graph file")
	mappingPath := fs.String("mapping", "", "mapping file")
	var queryTexts multiFlag
	fs.Var(&queryTexts, "query", "query text (repeatable; all queries share one session)")
	lang := fs.String("lang", "ree", "query language: ree, rem, rpq")
	algo := fs.String("algo", "null", "algorithm: null (Thm 4), exact (Prop 2), least (Thm 5), oneneq (Prop 4)")
	fromID := fs.String("from", "", "pair source (oneneq only)")
	toID := fs.String("to", "", "pair target (oneneq only)")
	maxNulls := fs.Int("maxnulls", 10, "exact-search budget")
	timeout := fs.Duration("timeout", time.Duration(0), "per-call timeout (0 = none)")
	parallel := fs.Bool("parallel", false, "deprecated: null and least always run on the worker-pool engine")
	workers := fs.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "solution shards (1 = unsharded; answers identical)")
	partition := fs.String("partition", "hash", `node partitioning policy: "hash" or "range"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *mappingPath == "" || len(queryTexts) == 0 {
		return fmt.Errorf("certain: -graph, -mapping and -query are required")
	}
	if *parallel && (*algo == "exact" || *algo == "oneneq") {
		return fmt.Errorf("certain: -parallel supports -algo null and least only")
	}
	var opts []repro.Option
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}
	if *shards != 1 {
		opts = append(opts, repro.WithShards(*shards))
	}
	if *partition != "hash" {
		opts = append(opts, repro.WithPartition(*partition))
	}
	if *maxNulls != 0 {
		// 0 keeps the session default, matching the pre-session CLI where
		// ExactOptions{MaxNulls: 0} normalized to the default budget.
		opts = append(opts, repro.WithMaxNulls(*maxNulls))
	}
	if *timeout > 0 {
		opts = append(opts, repro.WithTimeout(*timeout))
	}
	s, err := openSession(*graphPath, *mappingPath, opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if *algo == "oneneq" {
		if len(queryTexts) != 1 {
			return fmt.Errorf("certain -algo oneneq takes exactly one -query")
		}
		q, err := repro.ParseREE(queryTexts[0])
		if err != nil {
			return err
		}
		if *fromID == "" || *toID == "" {
			return fmt.Errorf("certain -algo oneneq needs -from and -to")
		}
		ok, err := s.CertainOneInequality(ctx, q, repro.NodeID(*fromID), repro.NodeID(*toID))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "certain(%s, %s) = %v\n", *fromID, *toID, ok)
		return nil
	}

	queries := make([]repro.Query, len(queryTexts))
	for i, text := range queryTexts {
		q, err := parseQuery(*lang, text)
		if err != nil {
			return err
		}
		queries[i] = q
	}
	certainOne := func(q repro.Query) (*repro.Answers, error) {
		switch *algo {
		case "null":
			return s.CertainNull(ctx, q)
		case "exact":
			return s.CertainExact(ctx, q)
		case "least":
			return s.CertainLeastInformative(ctx, q)
		default:
			return nil, fmt.Errorf("certain: unknown algorithm %q", *algo)
		}
	}
	for i, q := range queries {
		ans, err := certainOne(q)
		if err != nil {
			return err
		}
		if len(queries) > 1 {
			fmt.Fprintf(out, "## query %d: %s\n", i+1, queryTexts[i])
		}
		for _, a := range ans.Sorted() {
			fmt.Fprintln(out, a)
		}
		fmt.Fprintf(out, "# %d certain answers\n", ans.Len())
	}
	return nil
}

func cmdClassify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	mappingPath := fs.String("mapping", "", "mapping file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mappingPath == "" {
		return fmt.Errorf("classify: -mapping is required")
	}
	m, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	cm, err := repro.Compile(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rules:                    %d\n", len(m.Rules))
	fmt.Fprintf(out, "LAV:                      %v\n", cm.IsLAV())
	fmt.Fprintf(out, "GAV:                      %v\n", cm.IsGAV())
	fmt.Fprintf(out, "relational:               %v\n", cm.IsRelational())
	fmt.Fprintf(out, "relational/reachability:  %v\n", cm.IsRelationalReachability())
	return nil
}

func cmdCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	sourcePath := fs.String("source", "", "source data graph file")
	targetPath := fs.String("target", "", "target data graph file")
	mappingPath := fs.String("mapping", "", "mapping file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sourcePath == "" || *targetPath == "" || *mappingPath == "" {
		return fmt.Errorf("check: -source, -target and -mapping are required")
	}
	gs, err := loadGraph(*sourcePath)
	if err != nil {
		return err
	}
	gt, err := loadGraph(*targetPath)
	if err != nil {
		return err
	}
	m, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	ok, why := m.Check(gs, gt)
	if ok {
		fmt.Fprintln(out, "solution: (Gs, Gt) |= M")
		return nil
	}
	fmt.Fprintf(out, "not a solution: %s\n", why)
	return nil
}
