// Command gsm is the command-line front end to the graph-schema-mapping
// library: it evaluates queries on data graphs, builds solutions, computes
// certain answers, and classifies mappings.
//
// Usage:
//
//	gsm eval     -graph g.txt -query "(a b)=" [-lang ree|rem|rpq|gxnode] [-mode marked|sql]
//	gsm solve    -graph gs.txt -mapping m.txt [-style null|fresh]
//	gsm certain  -graph gs.txt -mapping m.txt -query Q [-lang ree|rem|rpq]
//	             [-algo null|exact|least|oneneq] [-from X -to Y]
//	             [-parallel] [-workers N]   (worker-pool engine; null/least)
//	gsm classify -mapping m.txt
//	gsm check    -source gs.txt -target gt.txt -mapping m.txt
//	gsm conj     -graph g.txt -query "ans(x,y) :- x -[a]-> z, z -[b=]-> y"
//	             [-mapping m.txt]   (certain-answer mode when given)
//
// Graphs use the datagraph text format (node/edge lines); mappings use the
// core text format (rule src -> tgt lines).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/crpq"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/gxpath"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/rpq"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gsm:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gsm <eval|solve|certain|classify|check|conj> [flags]")
	}
	switch args[0] {
	case "eval":
		return cmdEval(args[1:], out)
	case "solve":
		return cmdSolve(args[1:], out)
	case "certain":
		return cmdCertain(args[1:], out)
	case "classify":
		return cmdClassify(args[1:], out)
	case "check":
		return cmdCheck(args[1:], out)
	case "conj":
		return cmdConj(args[1:], out)
	case "nonempty":
		return cmdNonempty(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// cmdNonempty runs the static nonemptiness analysis of a data RPQ and
// prints a witness data path if one exists.
func cmdNonempty(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nonempty", flag.ContinueOnError)
	queryText := fs.String("query", "", "query text")
	lang := fs.String("lang", "ree", "query language: ree or rem")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryText == "" {
		return fmt.Errorf("nonempty: -query is required")
	}
	var w datagraph.DataPath
	var ok bool
	switch *lang {
	case "ree":
		q, err := ree.ParseQuery(*queryText)
		if err != nil {
			return err
		}
		w, ok = q.WitnessDataPath()
	case "rem":
		q, err := rem.ParseQuery(*queryText)
		if err != nil {
			return err
		}
		w, ok = q.WitnessDataPath()
	default:
		return fmt.Errorf("nonempty: unknown language %q", *lang)
	}
	if !ok {
		fmt.Fprintln(out, "empty: L(e) contains no data path")
		return nil
	}
	fmt.Fprintf(out, "nonempty; witness: %s\n", w)
	return nil
}

// cmdConj evaluates a conjunctive data RPQ, either directly on a graph or
// as certain answers under a mapping.
func cmdConj(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("conj", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "data graph file (source graph when -mapping is given)")
	mappingPath := fs.String("mapping", "", "mapping file (certain-answer mode)")
	queryText := fs.String("query", "", "conjunctive query, e.g. 'ans(x,y) :- x -[a]-> y'")
	modeText := fs.String("mode", "marked", "comparison mode for direct evaluation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *queryText == "" {
		return fmt.Errorf("conj: -graph and -query are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	q, err := crpq.Parse(*queryText)
	if err != nil {
		return err
	}
	var res *crpq.TupleSet
	if *mappingPath != "" {
		m, err := loadMapping(*mappingPath)
		if err != nil {
			return err
		}
		res, err = crpq.Certain(m, g, q)
		if err != nil {
			return err
		}
	} else {
		mode, err := parseMode(*modeText)
		if err != nil {
			return err
		}
		res, err = q.Eval(g, mode)
		if err != nil {
			return err
		}
	}
	for _, tup := range res.Sorted() {
		for i, n := range tup {
			if i > 0 {
				fmt.Fprint(out, ", ")
			}
			fmt.Fprint(out, n)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "# %d answers\n", res.Len())
	return nil
}

func loadGraph(path string) (*datagraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datagraph.Parse(f)
}

func loadMapping(path string) (*core.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ParseMapping(f)
}

func parseMode(s string) (datagraph.CompareMode, error) {
	switch s {
	case "marked", "":
		return datagraph.MarkedNulls, nil
	case "sql":
		return datagraph.SQLNulls, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want marked or sql)", s)
	}
}

// parseQuery compiles a query in the requested language to the core.Query
// interface.
func parseQuery(lang, text string) (core.Query, error) {
	switch lang {
	case "ree", "":
		return ree.ParseQuery(text)
	case "rem":
		return rem.ParseQuery(text)
	case "rpq":
		q, err := rpq.Parse(text)
		if err != nil {
			return nil, err
		}
		return core.NavQuery{Q: q}, nil
	default:
		return nil, fmt.Errorf("unknown query language %q", lang)
	}
}

func cmdEval(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "data graph file")
	queryText := fs.String("query", "", "query text")
	lang := fs.String("lang", "ree", "query language: ree, rem, rpq, gxnode")
	modeText := fs.String("mode", "marked", "comparison mode: marked or sql")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *queryText == "" {
		return fmt.Errorf("eval: -graph and -query are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeText)
	if err != nil {
		return err
	}
	if *lang == "gxnode" {
		n, err := gxpath.ParseNode(*queryText)
		if err != nil {
			return err
		}
		for _, i := range gxpath.NodesSatisfying(g, n, mode) {
			fmt.Fprintln(out, g.Node(i))
		}
		return nil
	}
	q, err := parseQuery(*lang, *queryText)
	if err != nil {
		return err
	}
	for _, p := range q.Eval(g, mode).IDPairs(g) {
		fmt.Fprintf(out, "%s -> %s\n", p.From, p.To)
	}
	return nil
}

func cmdSolve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "source data graph file")
	mappingPath := fs.String("mapping", "", "mapping file")
	style := fs.String("style", "null", "solution style: null (universal) or fresh (least informative)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *mappingPath == "" {
		return fmt.Errorf("solve: -graph and -mapping are required")
	}
	gs, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	m, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	var sol *datagraph.Graph
	switch *style {
	case "null":
		sol, err = core.UniversalSolution(m, gs)
	case "fresh":
		sol, err = core.LeastInformativeSolution(m, gs)
	default:
		return fmt.Errorf("solve: unknown style %q", *style)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(out, sol.String())
	return nil
}

func cmdCertain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("certain", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "source data graph file")
	mappingPath := fs.String("mapping", "", "mapping file")
	queryText := fs.String("query", "", "query text")
	lang := fs.String("lang", "ree", "query language: ree, rem, rpq")
	algo := fs.String("algo", "null", "algorithm: null (Thm 4), exact (Prop 2), least (Thm 5), oneneq (Prop 4)")
	fromID := fs.String("from", "", "pair source (oneneq only)")
	toID := fs.String("to", "", "pair target (oneneq only)")
	maxNulls := fs.Int("maxnulls", 10, "exact-search budget")
	parallel := fs.Bool("parallel", false, "evaluate on the worker-pool engine (null and least only)")
	workers := fs.Int("workers", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *mappingPath == "" || *queryText == "" {
		return fmt.Errorf("certain: -graph, -mapping and -query are required")
	}
	gs, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	m, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	if *algo == "oneneq" {
		if *parallel {
			return fmt.Errorf("certain: -parallel supports -algo null and least only")
		}
		q, err := ree.ParseQuery(*queryText)
		if err != nil {
			return err
		}
		if *fromID == "" || *toID == "" {
			return fmt.Errorf("certain -algo oneneq needs -from and -to")
		}
		ok, err := core.CertainOneInequality(m, gs, q,
			datagraph.NodeID(*fromID), datagraph.NodeID(*toID), core.OneNeqOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "certain(%s, %s) = %v\n", *fromID, *toID, ok)
		return nil
	}
	q, err := parseQuery(*lang, *queryText)
	if err != nil {
		return err
	}
	var ans *core.Answers
	opts := engine.Options{Workers: *workers}
	switch *algo {
	case "null":
		if *parallel {
			ans, err = engine.CertainNull(context.Background(), m, gs, q, opts)
		} else {
			ans, err = core.CertainNull(m, gs, q)
		}
	case "exact":
		if *parallel {
			return fmt.Errorf("certain: -parallel supports -algo null and least only")
		}
		ans, err = core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: *maxNulls})
	case "least":
		if *parallel {
			ans, err = engine.CertainLeastInformative(context.Background(), m, gs, q, opts)
		} else {
			ans, err = core.CertainLeastInformative(m, gs, q)
		}
	default:
		return fmt.Errorf("certain: unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	for _, a := range ans.Sorted() {
		fmt.Fprintln(out, a)
	}
	fmt.Fprintf(out, "# %d certain answers\n", ans.Len())
	return nil
}

func cmdClassify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	mappingPath := fs.String("mapping", "", "mapping file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mappingPath == "" {
		return fmt.Errorf("classify: -mapping is required")
	}
	m, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rules:                    %d\n", len(m.Rules))
	fmt.Fprintf(out, "LAV:                      %v\n", m.IsLAV())
	fmt.Fprintf(out, "GAV:                      %v\n", m.IsGAV())
	fmt.Fprintf(out, "relational:               %v\n", m.IsRelational())
	fmt.Fprintf(out, "relational/reachability:  %v\n", m.IsRelationalReachability())
	return nil
}

func cmdCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	sourcePath := fs.String("source", "", "source data graph file")
	targetPath := fs.String("target", "", "target data graph file")
	mappingPath := fs.String("mapping", "", "mapping file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sourcePath == "" || *targetPath == "" || *mappingPath == "" {
		return fmt.Errorf("check: -source, -target and -mapping are required")
	}
	gs, err := loadGraph(*sourcePath)
	if err != nil {
		return err
	}
	gt, err := loadGraph(*targetPath)
	if err != nil {
		return err
	}
	m, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	ok, why := m.Check(gs, gt)
	if ok {
		fmt.Fprintln(out, "solution: (Gs, Gt) |= M")
		return nil
	}
	fmt.Fprintf(out, "not a solution: %s\n", why)
	return nil
}
