package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixtures(t *testing.T) (graph, mapping string) {
	t.Helper()
	dir := t.TempDir()
	graph = writeFile(t, dir, "gs.txt", `
node ann 30
node bob 25
node p1 hello
edge ann knows bob
edge ann likes p1
edge bob likes p1
`)
	mapping = writeFile(t, dir, "m.txt", `
rule knows -> f f
rule likes -> l
`)
	return graph, mapping
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestCLIUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"eval"},
		{"solve"},
		{"certain"},
		{"classify"},
		{"check"},
		{"eval", "-graph", "missing.txt", "-query", "a"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestCLIEval(t *testing.T) {
	graph, _ := fixtures(t)
	out, err := runCLI(t, "eval", "-graph", graph, "-query", "knows", "-lang", "rpq")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ann") || !strings.Contains(out, "bob") {
		t.Fatalf("output: %s", out)
	}
	// REE with data test.
	out2, err := runCLI(t, "eval", "-graph", graph, "-query", "(likes)=")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out2) != "" {
		t.Fatalf("(likes)= should be empty: %s", out2)
	}
	// GXPath node expression.
	out3, err := runCLI(t, "eval", "-graph", graph, "-query", "<knows>", "-lang", "gxnode")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "ann") {
		t.Fatalf("gxnode output: %s", out3)
	}
	// Bad mode.
	if _, err := runCLI(t, "eval", "-graph", graph, "-query", "a", "-mode", "weird"); err == nil {
		t.Fatal("bad mode should fail")
	}
	// Bad language.
	if _, err := runCLI(t, "eval", "-graph", graph, "-query", "a", "-lang", "sparql"); err == nil {
		t.Fatal("bad lang should fail")
	}
}

func TestCLISolve(t *testing.T) {
	graph, mapping := fixtures(t)
	out, err := runCLI(t, "solve", "-graph", graph, "-mapping", mapping)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "null") {
		t.Fatalf("universal solution should contain a null node:\n%s", out)
	}
	out2, err := runCLI(t, "solve", "-graph", graph, "-mapping", mapping, "-style", "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "null") {
		t.Fatalf("least informative solution should not contain nulls:\n%s", out2)
	}
	if _, err := runCLI(t, "solve", "-graph", graph, "-mapping", mapping, "-style", "bogus"); err == nil {
		t.Fatal("bad style should fail")
	}
}

func TestCLICertain(t *testing.T) {
	graph, mapping := fixtures(t)
	for _, algo := range []string{"null", "exact", "least"} {
		out, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
			"-query", "f f", "-algo", algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "ann") || !strings.Contains(out, "1 certain answers") {
			t.Fatalf("%s output: %s", algo, out)
		}
	}
	out, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
		"-query", "(f f)!=", "-algo", "oneneq", "-from", "ann", "-to", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "= true") {
		t.Fatalf("oneneq output: %s", out)
	}
	if _, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
		"-query", "f", "-algo", "bogus"); err == nil {
		t.Fatal("bad algo should fail")
	}
	if _, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
		"-query", "f", "-algo", "oneneq"); err == nil {
		t.Fatal("oneneq without -from/-to should fail")
	}
}

func TestCLICertainParallel(t *testing.T) {
	graph, mapping := fixtures(t)
	for _, algo := range []string{"null", "least"} {
		want, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
			"-query", "f f", "-algo", algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		got, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
			"-query", "f f", "-algo", algo, "-parallel", "-workers", "4")
		if err != nil {
			t.Fatalf("%s -parallel: %v", algo, err)
		}
		if got != want {
			t.Fatalf("%s: parallel output %q differs from sequential %q", algo, got, want)
		}
	}
	if _, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
		"-query", "f", "-algo", "exact", "-parallel"); err == nil {
		t.Fatal("-parallel with -algo exact should fail")
	}
	if _, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
		"-query", "(f f)!=", "-algo", "oneneq", "-from", "ann", "-to", "bob",
		"-parallel"); err == nil {
		t.Fatal("-parallel with -algo oneneq should fail")
	}
}

func TestCLICertainMultiQuery(t *testing.T) {
	graph, mapping := fixtures(t)
	out, err := runCLI(t, "certain", "-graph", graph, "-mapping", mapping,
		"-query", "f f", "-query", "l")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "## query 1: f f") || !strings.Contains(out, "## query 2: l") {
		t.Fatalf("multi-query output should be sectioned per query:\n%s", out)
	}
	if strings.Count(out, "certain answers") != 2 {
		t.Fatalf("want two answer counts:\n%s", out)
	}
}

func TestCLIExitCodes(t *testing.T) {
	graph, mapping := fixtures(t)
	dir := t.TempDir()
	nonRel := writeFile(t, dir, "nonrel.txt", "rule knows -> f*\n")
	bigGraph := writeFile(t, dir, "big.txt", `
node a 1
node b 2
node c 3
edge a knows b
edge b knows c
`)
	cases := []struct {
		args []string
		want int
	}{
		// Bad option value: negative workers.
		{[]string{"certain", "-graph", graph, "-mapping", mapping,
			"-query", "f", "-maxnulls", "-1"}, 2},
		// Exact-search budget exceeded (two knows-pairs, two nulls).
		{[]string{"certain", "-graph", bigGraph, "-mapping", mapping,
			"-query", "f", "-algo", "exact", "-maxnulls", "1"}, 3},
		// Non-relational mapping: no finite solution.
		{[]string{"solve", "-graph", graph, "-mapping", nonRel}, 4},
		// Plain usage error.
		{[]string{"bogus"}, 1},
	}
	for _, c := range cases {
		_, err := runCLI(t, c.args...)
		if err == nil {
			t.Errorf("args %v should fail", c.args)
			continue
		}
		if got := exitCode(err); got != c.want {
			t.Errorf("args %v: exit code %d, want %d (err: %v)", c.args, got, c.want, err)
		}
	}
}

func TestCLIConj(t *testing.T) {
	graph, mapping := fixtures(t)
	// Direct evaluation.
	out, err := runCLI(t, "conj", "-graph", graph,
		"-query", "ans(x, y) :- x -[knows]-> y, x -[likes]-> w, y -[likes]-> w")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ann") || !strings.Contains(out, "# 1 answers") {
		t.Fatalf("conj output: %s", out)
	}
	// Certain-answer mode.
	out2, err := runCLI(t, "conj", "-graph", graph, "-mapping", mapping,
		"-query", "ans(x, y) :- x -[f f]-> y")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "bob") || !strings.Contains(out2, "# 1 answers") {
		t.Fatalf("conj certain output: %s", out2)
	}
	// Errors.
	if _, err := runCLI(t, "conj", "-graph", graph); err == nil {
		t.Fatal("missing query should fail")
	}
	if _, err := runCLI(t, "conj", "-graph", graph, "-query", "nonsense"); err == nil {
		t.Fatal("bad query should fail")
	}
}

func TestCLINonempty(t *testing.T) {
	out, err := runCLI(t, "nonempty", "-query", "(a b)=")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nonempty; witness:") {
		t.Fatalf("output: %s", out)
	}
	out2, err := runCLI(t, "nonempty", "-query", "(a=)!=")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "empty") {
		t.Fatalf("output: %s", out2)
	}
	out3, err := runCLI(t, "nonempty", "-lang", "rem", "-query", "!x.(a[x!=])+")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "nonempty") {
		t.Fatalf("output: %s", out3)
	}
	for _, bad := range [][]string{
		{"nonempty"},
		{"nonempty", "-query", "(("},
		{"nonempty", "-lang", "rem", "-query", "!x"},
		{"nonempty", "-lang", "zz", "-query", "a"},
	} {
		if _, err := runCLI(t, bad...); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

func TestCLIClassifyAndCheck(t *testing.T) {
	graph, mapping := fixtures(t)
	out, err := runCLI(t, "classify", "-mapping", mapping)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LAV:                      true") ||
		!strings.Contains(out, "relational:               true") {
		t.Fatalf("classify output: %s", out)
	}
	// A valid solution: solve then check.
	dir := t.TempDir()
	sol, err := runCLI(t, "solve", "-graph", graph, "-mapping", mapping)
	if err != nil {
		t.Fatal(err)
	}
	target := writeFile(t, dir, "gt.txt", sol)
	out2, err := runCLI(t, "check", "-source", graph, "-target", target, "-mapping", mapping)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "solution") || strings.Contains(out2, "not a solution") {
		t.Fatalf("check output: %s", out2)
	}
	// A broken target.
	broken := writeFile(t, dir, "bad.txt", "node ann 30\n")
	out3, err := runCLI(t, "check", "-source", graph, "-target", broken, "-mapping", mapping)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "not a solution") {
		t.Fatalf("check output: %s", out3)
	}
}
