package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/workload"
)

// cmdIngest bulk-loads a relational source — CSV files or a SQLite
// database — into a data graph via the streaming direct mapping of
// internal/ingest, and writes the graph in the datagraph text format.
//
//	gsm ingest -schema schema.txt [-dir d] [table=file.csv ...] [-o g.txt]
//	gsm ingest -sqlite db.sqlite [-schema schema.txt] [-o g.txt]
//
// CSV sources resolve per table: an explicit table=path argument wins,
// else the schema's file= attribute (or <table>.csv) relative to -dir,
// which defaults to the schema file's directory. With -sqlite the schema
// is derived from the database's DDL unless -schema overrides it.
func cmdIngest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	schemaPath := fs.String("schema", "", "ingest schema file (table/col/fk directives)")
	sqlitePath := fs.String("sqlite", "", "SQLite database file to ingest instead of CSV")
	dir := fs.String("dir", "", "directory for schema-relative CSV files (default: schema file's directory)")
	outPath := fs.String("o", "", "output graph file (default stdout)")
	batch := fs.Int("batch", 0, "rows per commit batch (0 = pipeline default)")
	skipBad := fs.Bool("skip-bad-rows", false, "skip malformed rows instead of aborting (default strict)")
	progress := fs.Bool("progress", false, "report per-batch progress on stderr")
	timeout := fs.Duration("timeout", 0, "load timeout (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var schema *ingest.Schema
	var srcs []ingest.Source
	switch {
	case *sqlitePath != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("ingest: -sqlite and table=file.csv arguments are mutually exclusive")
		}
		db, err := ingest.OpenSQLite(*sqlitePath)
		if err != nil {
			return err
		}
		if *schemaPath != "" {
			if schema, err = loadSchema(*schemaPath); err != nil {
				return err
			}
			for i := range schema.Tables {
				srcs = append(srcs, db.Source(schema.Tables[i].Name))
			}
		} else {
			if schema, err = db.Schema(); err != nil {
				return err
			}
			srcs = db.Sources()
		}
	case *schemaPath != "":
		var err error
		if schema, err = loadSchema(*schemaPath); err != nil {
			return err
		}
		// Explicit table=path arguments override the schema-relative
		// lookup; unknown table names are caller mistakes.
		explicit := make(map[string]string)
		for _, arg := range fs.Args() {
			table, path, ok := strings.Cut(arg, "=")
			if !ok {
				return fmt.Errorf("ingest: argument %q is not table=file.csv", arg)
			}
			if _, ok := schema.Table(table); !ok {
				return fmt.Errorf("ingest: table %q is not in the schema", table)
			}
			explicit[table] = path
		}
		base := *dir
		if base == "" {
			base = filepath.Dir(*schemaPath)
		}
		for i := range schema.Tables {
			t := &schema.Tables[i]
			path, ok := explicit[t.Name]
			if !ok {
				file := t.File
				if file == "" {
					file = t.Name + ".csv"
				}
				path = filepath.Join(base, file)
			}
			srcs = append(srcs, ingest.CSVFile(t.Name, path))
		}
	default:
		return fmt.Errorf("ingest: -schema or -sqlite is required")
	}
	return runIngest(schema, srcs, *outPath, *batch, *skipBad, *progress, *timeout, out)
}

func loadSchema(path string) (*ingest.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ingest.ParseSchema(string(data))
}

func runIngest(schema *ingest.Schema, srcs []ingest.Source, outPath string, batch int, skipBad, progress bool, timeout time.Duration, out io.Writer) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts := ingest.Options{BatchSize: batch, SkipBadRows: skipBad}
	if progress {
		opts.Progress = func(p ingest.Progress) {
			fmt.Fprintf(os.Stderr, "gsm ingest: %s: %d rows (%d skipped), %d nodes, %d edges\n",
				p.Table, p.Rows, p.Skipped, p.Nodes, p.Edges)
		}
	}
	g, rep, err := ingest.Load(ctx, schema, opts, srcs...)
	if err != nil {
		return err
	}
	// The report goes wherever the graph doesn't: to out when the graph
	// lands in a file, to stderr when it streams to stdout.
	repW := io.Writer(os.Stderr)
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(g.String()), 0o644); err != nil {
			return err
		}
		repW = out
	} else {
		fmt.Fprint(out, g.String())
	}
	fmt.Fprintf(repW, "ingested %d rows (%d skipped, %d dangling FKs dropped) -> %d nodes, %d edges in %d batches (%d full + %d delta snapshot builds, %s)\n",
		rep.Rows, rep.Skipped, rep.DroppedFKs, rep.Nodes, rep.Edges, rep.Batches,
		rep.FullBuilds, rep.DeltaBuilds, rep.Elapsed.Round(time.Millisecond))
	return nil
}

// cmdGenRel generates the synthetic customer/product/orders relational
// dataset of the E18 experiment as schema.txt plus CSV files, and
// optionally as a SQLite image — the fixture generator the ingest smoke
// script feeds back through `gsm ingest`.
func cmdGenRel(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genrel", flag.ContinueOnError)
	customers := fs.Int("customers", 1000, "customer rows")
	products := fs.Int("products", 200, "product rows")
	orders := fs.Int("orders", 5000, "orders rows")
	seed := fs.Int64("seed", 1, "generator seed (same seed, same bytes)")
	dir := fs.String("dir", "", "output directory for schema.txt + CSV files (required)")
	sqlitePath := fs.String("sqlite", "", "also write a SQLite image at this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("genrel: -dir is required")
	}
	spec := workload.RelationalSpec{Customers: *customers, Products: *products, Orders: *orders, Seed: *seed}
	d := workload.Relational(spec)
	if err := d.WriteCSV(*dir); err != nil {
		return err
	}
	if *sqlitePath != "" {
		if err := d.WriteSQLite(*sqlitePath); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %s: %d customers, %d products, %d orders (%d rows, seed %d)\n",
		*dir, *customers, *products, *orders, spec.Rows(), *seed)
	return nil
}
