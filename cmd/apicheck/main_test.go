package main

import (
	"os"
	"strings"
	"testing"
)

// TestFacadeSurfaceMatchesGolden makes `go test ./...` guard the facade
// too: any drift between the root package's exported API and api.txt fails
// here as well as in `make api-check`.
func TestFacadeSurfaceMatchesGolden(t *testing.T) {
	surface, err := Surface("../..")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../api.txt")
	if err != nil {
		t.Fatalf("%v (run `make api-update`)", err)
	}
	if d := Diff(string(golden), surface); d != "" {
		t.Fatalf("public API surface drifted from api.txt (run `make api-update` if intentional):\n%s", d)
	}
}

func TestSurfaceFormat(t *testing.T) {
	surface, err := Surface("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func NewSession(*CompiledMapping, *Graph, ...Option) (*Session, error)",
		"method (*Session) CertainNull(context.Context, Query) (*Answers, error)",
		"type Session struct",
		"var ErrBudgetExceeded",
	} {
		if !strings.Contains(surface, want+"\n") {
			t.Errorf("surface should contain %q", want)
		}
	}
}

func TestDiff(t *testing.T) {
	if d := Diff("a\nb\n", "b\na\n"); d != "" {
		t.Errorf("order-insensitive surfaces should match, got %q", d)
	}
	d := Diff("a\nb\n", "a\nc\n")
	if !strings.Contains(d, "- b") || !strings.Contains(d, "+ c") {
		t.Errorf("diff should flag b missing and c added, got %q", d)
	}
}
