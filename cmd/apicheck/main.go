// Command apicheck guards the public facade: it renders the exported API
// surface of the root repro package — functions, methods on exported types,
// types, consts and vars — into a canonical sorted line format and compares
// it against the committed api.txt golden. CI runs it via `make api-check`,
// so a PR cannot silently change or drop a public symbol: an intentional
// change regenerates the golden with `make api-update` (-write) and shows
// up in review as an api.txt diff.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the package to check")
	golden := flag.String("golden", "api.txt", "golden file (relative to -dir unless absolute)")
	write := flag.Bool("write", false, "regenerate the golden instead of checking")
	flag.Parse()

	goldenPath := *golden
	if !filepath.IsAbs(goldenPath) {
		goldenPath = filepath.Join(*dir, *golden)
	}
	surface, err := Surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(goldenPath, []byte(surface), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %s (%d lines)\n", goldenPath, strings.Count(surface, "\n"))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v (run `make api-update` to create it)\n", err)
		os.Exit(1)
	}
	diff := Diff(string(want), surface)
	if diff != "" {
		fmt.Fprintf(os.Stderr, "apicheck: public API surface drifted from %s:\n%s", goldenPath, diff)
		fmt.Fprintln(os.Stderr, "apicheck: if intentional, run `make api-update` and commit the api.txt diff")
		os.Exit(1)
	}
	fmt.Println("apicheck: API surface matches", goldenPath)
}

// Surface renders the exported API of the package in dir as sorted lines,
// one declaration each.
func Surface(dir string) (string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var lines []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return "", err
		}
		lines = append(lines, fileSurface(fset, f)...)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

func fileSurface(fset *token.FileSet, f *ast.File) []string {
	var lines []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil {
				recv, exported := recvString(fset, d.Recv)
				if !exported {
					continue
				}
				lines = append(lines,
					fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signature(fset, d.Type)))
				continue
			}
			lines = append(lines, fmt.Sprintf("func %s%s", d.Name.Name, signature(fset, d.Type)))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					kind := typeKind(sp)
					lines = append(lines, fmt.Sprintf("type %s %s", sp.Name.Name, kind))
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if !n.IsExported() {
							continue
						}
						switch d.Tok {
						case token.CONST:
							lines = append(lines, "const "+n.Name)
						case token.VAR:
							lines = append(lines, "var "+n.Name)
						}
					}
				}
			}
		}
	}
	return lines
}

// signature renders a FuncType as "(params) results", with parameter names
// dropped so renames don't churn the golden.
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	stripped := &ast.FuncType{
		Params:  stripNames(ft.Params),
		Results: stripNames(ft.Results),
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, stripped); err != nil {
		return "(?)"
	}
	return strings.TrimPrefix(buf.String(), "func")
}

func stripNames(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out.List = append(out.List, &ast.Field{Type: f.Type})
		}
	}
	return out
}

// recvString renders a receiver type and reports whether it is exported.
func recvString(fset *token.FileSet, recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, t); err != nil {
		return "", false
	}
	base := t
	if star, ok := t.(*ast.StarExpr); ok {
		base = star.X
	}
	if id, ok := base.(*ast.Ident); ok {
		return buf.String(), id.IsExported()
	}
	// Generic receivers: Name[T] — take the index expression's base.
	if idx, ok := base.(*ast.IndexExpr); ok {
		if id, ok := idx.X.(*ast.Ident); ok {
			return buf.String(), id.IsExported()
		}
	}
	return buf.String(), false
}

func typeKind(sp *ast.TypeSpec) string {
	if sp.Assign.IsValid() {
		return "= alias"
	}
	switch sp.Type.(type) {
	case *ast.StructType:
		return "struct"
	case *ast.InterfaceType:
		return "interface"
	case *ast.FuncType:
		return "func"
	default:
		return "decl"
	}
}

// Diff reports golden lines missing from got and got lines absent from the
// golden, prefixed -/+; empty means identical surfaces.
func Diff(want, got string) string {
	wantSet := lineSet(want)
	gotSet := lineSet(got)
	var sb strings.Builder
	for _, l := range sortedLines(want) {
		if _, ok := gotSet[l]; !ok {
			fmt.Fprintf(&sb, "  - %s\n", l)
		}
	}
	for _, l := range sortedLines(got) {
		if _, ok := wantSet[l]; !ok {
			fmt.Fprintf(&sb, "  + %s\n", l)
		}
	}
	return sb.String()
}

func lineSet(s string) map[string]struct{} {
	out := map[string]struct{}{}
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimSpace(l); l != "" {
			out[l] = struct{}{}
		}
	}
	return out
}

func sortedLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimSpace(l); l != "" {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}
