// Command gsmd is the graph-schema-mapping daemon: a long-running
// multi-tenant HTTP/JSON server over the repro facade. It keeps a registry
// of named compiled mappings and source graphs and serves certain-answer
// queries through per-tenant sessions whose memoized solutions are shared
// across requests (see internal/server and docs/SERVER.md).
//
// Usage:
//
//	gsmd -demo                                   # serve the canonical demo pair
//	gsmd -mapping m=rules.txt -graph g=data.txt  # serve files
//	gsmd -addr 127.0.0.1:0 -addr-file addr.txt   # pick a free port, publish it
//
// Mappings and graphs can also be registered at runtime via POST
// /v1/mappings and /v1/graphs. With -state-dir the registry is crash-safe:
// every registration is appended to an fsync'd WAL before it is
// acknowledged, and on boot the registry is rebuilt from the snapshot +
// WAL, tolerating torn tails from a crash mid-append (POST
// /v1/admin/checkpoint folds the WAL into a fresh snapshot). On
// SIGINT/SIGTERM the server drains: new requests are refused with 503
// while in-flight requests run to completion (bounded by -drain-timeout).
//
// -enable-faults opens the POST /v1/admin/faults endpoint (and -faults
// arms a plan at boot) for deterministic fault-injection drills; see
// docs/SERVER.md "Failure semantics".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/datagraph"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/workload"
)

// weightList collects repeatable name=weight flags into a map.
type weightList map[string]int

func (l *weightList) String() string { return fmt.Sprint(map[string]int(*l)) }

func (l *weightList) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	var w int
	if _, err := fmt.Sscanf(val, "%d", &w); !ok || name == "" || err != nil || w < 1 {
		return fmt.Errorf("want name=weight with weight >= 1, got %q", v)
	}
	if *l == nil {
		*l = weightList{}
	}
	(*l)[name] = w
	return nil
}

// nameFileList collects repeatable name=path flags.
type nameFileList []struct{ name, path string }

func (l *nameFileList) String() string { return fmt.Sprint(*l) }

func (l *nameFileList) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var mappings, graphs nameFileList
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	flag.Var(&mappings, "mapping", "register a mapping at startup as name=path (repeatable)")
	flag.Var(&graphs, "graph", "register a source graph at startup as name=path (repeatable)")
	demo := flag.Bool("demo", false, `register the canonical serving scenario as mapping "demo" and graph "demo"`)
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently served requests (0 = default 256)")
	queueDepth := flag.Int("queue-depth", 0, "per-tenant admission queue bound; excess is shed with 503 (0 = default 64)")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant token-bucket rate limit in requests/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = tenant-rps rounded up)")
	var tenantWeights weightList
	flag.Var(&tenantWeights, "tenant-weight", "admission weight for a tenant as name=weight (repeatable; unlisted tenants weigh 1)")
	memBudget := flag.Int64("mem-budget", 0, "resident-bytes budget for shared backends; idle ones are LRU-evicted over it (0 = unlimited)")
	maxSessions := flag.Int("max-sessions", 0, "cap on open sessions per tenant (0 = default 64)")
	timeout := flag.Duration("timeout", 0, "default per-request timeout (0 = default 30s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	stateDir := flag.String("state-dir", "", "persist the registry (WAL + snapshot) in this directory; recovered on boot")
	enableFaults := flag.Bool("enable-faults", false, "allow arming fault injection via POST /v1/admin/faults")
	faultSpec := flag.String("faults", "", "fault spec to arm at boot (implies -enable-faults); see internal/fault")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the boot-time fault plan")
	shards := flag.Int("shards", 1, "solution shards per backend session (1 = unsharded)")
	partition := flag.String("partition", "hash", `node partitioning policy: "hash" or "range"`)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("gsmd: ")

	if *shards < 1 {
		log.Fatalf("-shards %d: want >= 1", *shards)
	}
	if _, err := datagraph.ParsePartitionPolicy(*partition); err != nil {
		log.Fatalf("-partition: %v", err)
	}

	srv := server.New(server.Config{
		MaxInFlight:          *maxInflight,
		MaxQueueDepth:        *queueDepth,
		TenantRPS:            *tenantRPS,
		TenantBurst:          *tenantBurst,
		TenantWeights:        tenantWeights,
		MemBudgetBytes:       *memBudget,
		MaxSessionsPerTenant: *maxSessions,
		DefaultTimeout:       *timeout,
		EnableFaultInjection: *enableFaults || *faultSpec != "",
		Shards:               *shards,
		Partition:            *partition,
	})
	if *memBudget > 0 {
		log.Printf("memory budget: %d bytes (idle backends LRU-evicted)", *memBudget)
	}
	if *tenantRPS > 0 {
		log.Printf("tenant rate limit: %g req/s", *tenantRPS)
	}
	if *shards > 1 {
		log.Printf("serving sharded: %d shards, %s partition", *shards, *partition)
	}

	if *stateDir != "" {
		rec, err := srv.OpenState(*stateDir)
		if err != nil {
			log.Fatalf("opening state dir %s: %v", *stateDir, err)
		}
		log.Printf("recovered registry from %s: %d mappings, %d graphs (snapshot seq %d + %d WAL records, seq %d)",
			*stateDir, rec.Mappings, rec.Graphs, rec.SnapshotSeq, rec.WALReplayed, rec.Seq)
		if rec.QuarantinedSnap {
			log.Printf("WARNING: corrupt snapshot quarantined as registry.json.quarantine")
		}
		if rec.QuarantinedWAL {
			log.Printf("WARNING: torn/corrupt WAL tail quarantined as registry.wal.quarantine")
		}
		defer srv.CloseState()
	}
	if *faultSpec != "" {
		if err := fault.Arm(*faultSpec, *faultSeed); err != nil {
			log.Fatalf("arming -faults: %v", err)
		}
		log.Printf("fault injection armed at boot (seed %d): %s", *faultSeed, *faultSpec)
	} else if *enableFaults {
		log.Printf("fault injection enabled (arm via POST /v1/admin/faults)")
	}

	if *demo {
		sc := workload.Serving(workload.ServingSpec{})
		if _, err := srv.RegisterMappingText("demo", sc.MappingText); err != nil {
			log.Fatalf("registering demo mapping: %v", err)
		}
		if _, err := srv.RegisterGraphText("demo", sc.GraphText); err != nil {
			log.Fatalf("registering demo graph: %v", err)
		}
		log.Printf("registered demo pair (%s)", sc)
	}
	for _, m := range mappings {
		text, err := os.ReadFile(m.path)
		if err != nil {
			log.Fatalf("reading mapping %s: %v", m.name, err)
		}
		info, err := srv.RegisterMappingText(m.name, string(text))
		if err != nil {
			log.Fatalf("registering mapping %s: %v", m.name, err)
		}
		log.Printf("registered mapping %s (%d rules)", info.Name, info.Rules)
	}
	for _, g := range graphs {
		text, err := os.ReadFile(g.path)
		if err != nil {
			log.Fatalf("reading graph %s: %v", g.name, err)
		}
		info, err := srv.RegisterGraphText(g.name, string(text))
		if err != nil {
			log.Fatalf("registering graph %s: %v", g.name, err)
		}
		log.Printf("registered graph %s (%d nodes, %d edges)", info.Name, info.Nodes, info.Edges)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written atomically-enough for the smoke script: the file appears
		// only after the listener is live.
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("writing -addr-file: %v", err)
		}
	}
	log.Printf("listening on %s", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %s, draining (grace %s)", sig, *drainTimeout)
		// Flip admission first so /healthz and new requests report the
		// drain immediately, then let http.Server.Shutdown wait for the
		// in-flight requests.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("drained, bye")
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}
}
