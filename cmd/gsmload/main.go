// Command gsmload is the load generator for gsmd: N concurrent clients
// replay the canonical serving query stream (internal/workload.Serving)
// against a running server and report p50/p99 latency and answers/sec.
//
// Usage:
//
//	gsmload -addr 127.0.0.1:8080 -clients 100 -n 5000          # session mode
//	gsmload -addr $(cat addr.txt) -n 100 -mode oneshot         # baseline
//	gsmload -addr ... -mode both -verify -json report.json     # the E16 run
//	gsmload -addr ... -chaos -verify                           # fault drill
//	gsmload -addr ... -rate 200 -tenant greedy -n 2000         # open-loop overload
//
// With -rate N arrivals are open-loop Poisson at N req/s — they do not
// wait for completions, so offered load is independent of server latency.
// The report then includes offered load vs goodput and the shed rate;
// requests the server refuses with a load-shedding kind (overloaded,
// rate_limited, degraded, draining) are counted as shed, not as errors,
// and only accepted requests enter the latency percentiles. -tenant pins
// every client to one tenant, the building block of fairness drills.
//
// Modes:
//
//   - session: every client opens one server session and replays its share
//     of the stream through it — solutions are materialized once per
//     (mapping, graph) pair and shared by all clients;
//   - oneshot: every request goes through POST /v1/query, which builds a
//     throwaway session per call — the amortization baseline;
//   - both: oneshot first, then session, reporting the speedup.
//
// All traffic goes through the shared retrying client
// (internal/server/client): capped exponential backoff with seeded jitter,
// honoring Retry-After, retrying only what is safe to repeat. Failed
// requests are excluded from the latency percentiles and reported as an
// error-rate line instead.
//
// With -verify every server response is compared byte-for-byte against the
// embedded repro.Session path computing the same canonical wire encoding.
// With -chaos the run first arms a fault plan on the server (POST
// /v1/admin/faults; the server must run with -enable-faults) spanning the
// handler, materialization, chase and stream layers, then asserts that
// every response that does come back is still byte-for-byte correct —
// faults may cost availability, never answers.
//
// The scenario pair is registered as mapping "demo" / graph "demo"
// (idempotent, so running against `gsmd -demo` is fine — and a content
// mismatch comes back as 409, which is how a post-crash run detects a
// corrupted registry). Exit codes:
//
//	0  success
//	1  hard failure: registration failed, zero answers, bad flags
//	2  SLO miss: error rate above -max-error-rate
//	3  verification mismatch: a response differed from the embedded answer
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// The default -chaos plan: errors, panics and latency across three layers
// (HTTP handler, backend materialization/chase/memo in core, stream
// writer). Probabilities are low enough that retries keep the run moving;
// counts bound the brutal modes.
const defaultChaosSpec = "server.handler=error:p=0.02;" +
	"govern.admit=error:p=0.01;" +
	"server.materialize=error:n=2;" +
	"core.chase=error:p=0.3:n=6;" +
	"core.memo=panic:n=2;" +
	"server.stream=latency:p=0.05:ms=2"

// Exit codes (see package comment).
const (
	exitHard     = 1
	exitSLOMiss  = 2
	exitMismatch = 3
)

// report is the -json document for one mode's run.
type report struct {
	Mode     string `json:"mode"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	// OK counts requests that succeeded (after retries); only their
	// latencies enter the percentiles.
	OK int `json:"ok"`
	// Shed counts requests the server refused with a load-shedding kind
	// (overloaded, rate_limited, degraded, draining) after retries — the
	// governor doing its job, reported separately from Errors (anything
	// else that failed). Only accepted (OK) requests enter the percentiles.
	Shed       int     `json:"shed"`
	ShedRate   float64 `json:"shed_rate"`
	Errors     int     `json:"errors"`
	ErrorRate  float64 `json:"error_rate"`
	Mismatches int     `json:"mismatches"`
	Answers    int     `json:"answers"`
	Seconds    float64 `json:"seconds"`

	// OfferedPerSec is the achieved arrival rate (open-loop -rate runs
	// only); GoodputPerSec is accepted requests per second.
	OfferedPerSec  float64 `json:"offered_per_sec,omitempty"`
	GoodputPerSec  float64 `json:"goodput_per_sec,omitempty"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AnswersPerSec  float64 `json:"answers_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
}

// fullReport is the top-level -json document.
type fullReport struct {
	Scenario string   `json:"scenario"`
	Chaos    string   `json:"chaos,omitempty"`
	Verified int      `json:"verified"`
	Retries  uint64   `json:"retries"`
	Runs     []report `json:"runs"`
	// Speedup is session answers/sec over oneshot answers/sec, present in
	// -mode both.
	Speedup float64 `json:"speedup,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "gsmd address (host:port)")
	clients := flag.Int("clients", 100, "concurrent clients")
	n := flag.Int("n", 0, "total requests per mode (0 = one stream replay per client)")
	mode := flag.String("mode", "session", "session, oneshot or both")
	queries := flag.Int("queries", 50, "length of the replayed query stream")
	nodes := flag.Int("nodes", 0, "scenario graph nodes (0 = default)")
	seed := flag.Int64("seed", 0, "scenario seed (0 = default)")
	tenants := flag.Int("tenants", 4, "spread clients across this many tenants")
	tenantPin := flag.String("tenant", "", "pin every client to this one tenant (overrides -tenants)")
	rate := flag.Float64("rate", 0, "open-loop Poisson arrival rate in req/s (0 = closed-loop replay)")
	verify := flag.Bool("verify", false, "check every response byte-for-byte against the embedded session path")
	jsonPath := flag.String("json", "", "write a JSON report to this file ('-' = stdout)")
	chaos := flag.Bool("chaos", false, "arm a fault plan on the server before the run (needs gsmd -enable-faults)")
	faults := flag.String("faults", defaultChaosSpec, "fault spec to arm with -chaos")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the armed fault plan")
	retries := flag.Int("retries", 5, "max attempts per request (1 = no retries)")
	maxErrRate := flag.Float64("max-error-rate", -1,
		"fail (exit 2) if a run's error rate exceeds this; -1 = auto (0 normally, 0.5 with -chaos)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("gsmload: ")

	sc := workload.Serving(workload.ServingSpec{Nodes: *nodes, Queries: *queries, Seed: *seed})
	total := *n
	if total <= 0 {
		total = *clients * len(sc.QueryTexts)
	}
	if *clients <= 0 || *tenants <= 0 {
		log.Fatalf("-clients and -tenants must be positive")
	}
	if *tenantPin != "" {
		*tenants = 1
	}
	switch *mode {
	case "session", "oneshot", "both":
	default:
		log.Fatalf("unknown -mode %q (want session, oneshot or both)", *mode)
	}
	slo := *maxErrRate
	if slo < 0 {
		if *chaos {
			slo = 0.5
		} else {
			slo = 0
		}
	}

	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * *clients,
		MaxIdleConnsPerHost: 2 * *clients,
	}}
	lg := &loadgen{
		sc:      sc,
		clients: *clients,
		total:   total,
		tenants: *tenants,
		rate:    *rate,
		seed:    *faultSeed,
	}
	lg.api = make([]*client.Client, *tenants+1)
	for t := 0; t <= *tenants; t++ {
		tenant := ""
		if t < *tenants {
			tenant = fmt.Sprintf("load-%d", t)
			if *tenantPin != "" {
				tenant = *tenantPin
			}
		}
		lg.api[t] = client.New(client.Config{
			Base:        *addr,
			Tenant:      tenant,
			HTTP:        httpClient,
			MaxAttempts: *retries,
			Seed:        *faultSeed + int64(t),
		})
	}
	admin := lg.api[*tenants] // default tenant, used for register/admin calls

	if *verify {
		if err := lg.buildExpected(); err != nil {
			log.Fatalf("building embedded verification answers: %v", err)
		}
	}
	ctx := context.Background()
	// Register before arming faults: the scenario pair must land cleanly,
	// the drill is about serving, not about losing registrations.
	if err := lg.register(ctx, admin); err != nil {
		log.Fatalf("registering scenario: %v", err)
	}
	if *chaos {
		fr, err := admin.ArmFaults(ctx, *faults, *faultSeed)
		if err != nil {
			log.Fatalf("arming faults (is gsmd running with -enable-faults?): %v", err)
		}
		log.Printf("chaos: armed %d fault points (seed %d): %s", len(fr.Points), *faultSeed, *faults)
	}

	full := fullReport{Scenario: sc.String()}
	if *chaos {
		full.Chaos = *faults
	}
	run := func(m string) report {
		var r report
		if lg.rate > 0 {
			r = lg.runOpen(m)
			log.Printf("%-8s open-loop: offered %.1f req/s, goodput %.1f req/s, shed %d/%d = %.2f%%, p50 %.2fms, p99 %.2fms of accepted (%.2fs)",
				m, r.OfferedPerSec, r.GoodputPerSec, r.Shed, r.Requests, 100*r.ShedRate, r.P50MS, r.P99MS, r.Seconds)
		} else {
			r = lg.run(m)
			log.Printf("%-8s %d clients, %d requests, %d ok: %.0f answers/s, %.0f req/s, p50 %.2fms, p99 %.2fms (%.2fs)",
				m, r.Clients, r.Requests, r.OK, r.AnswersPerSec, r.RequestsPerSec, r.P50MS, r.P99MS, r.Seconds)
		}
		log.Printf("%-8s error rate: %d/%d = %.2f%%, shed %d (%d mismatches)",
			m, r.Errors, r.Requests, 100*r.ErrorRate, r.Shed, r.Mismatches)
		full.Runs = append(full.Runs, r)
		return r
	}
	switch *mode {
	case "session":
		run("session")
	case "oneshot":
		run("oneshot")
	case "both":
		oneshot := run("oneshot")
		session := run("session")
		if oneshot.AnswersPerSec > 0 {
			full.Speedup = session.AnswersPerSec / oneshot.AnswersPerSec
			log.Printf("session/oneshot speedup: %.1fx", full.Speedup)
		}
	}
	if *chaos {
		// Disarm so a shared server is left clean even if the process that
		// armed us is reused.
		if _, err := admin.ArmFaults(ctx, "", 0); err != nil {
			log.Printf("warning: disarming faults: %v", err)
		}
	}
	full.Verified = int(lg.verified.Load())
	for _, c := range lg.api {
		full.Retries += c.Retries()
	}
	if *verify {
		log.Printf("verified %d responses byte-for-byte against the embedded session (%d retries)",
			full.Verified, full.Retries)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(full, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		out = append(out, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			log.Fatalf("writing report: %v", err)
		}
	}

	// Classify the outcome; the most actionable failure wins the exit code
	// (a mismatch means wrong answers, strictly worse than unavailability).
	exit := 0
	for _, r := range full.Runs {
		if r.Mismatches > 0 {
			log.Printf("FAIL: %s mode had %d verification mismatches", r.Mode, r.Mismatches)
			exit = exitMismatch
		}
	}
	if exit == 0 {
		for _, r := range full.Runs {
			if r.ErrorRate > slo {
				log.Printf("FAIL: %s mode error rate %.2f%% exceeds budget %.2f%%",
					r.Mode, 100*r.ErrorRate, 100*slo)
				exit = exitSLOMiss
			}
		}
	}
	if exit == 0 {
		for _, r := range full.Runs {
			if r.Answers == 0 {
				log.Printf("FAIL: %s mode produced zero answers", r.Mode)
				exit = exitHard
			}
		}
	}
	os.Exit(exit)
}

type loadgen struct {
	sc      workload.ServingScenario
	clients int
	total   int
	tenants int
	// rate, when > 0, selects open-loop Poisson arrivals at this many
	// requests per second; seed makes the arrival process reproducible.
	rate float64
	seed int64
	// api[t] is the retrying client for tenant t; api[tenants] is the
	// default tenant used for registration and admin calls.
	api []*client.Client

	// expected[i] is the canonical wire encoding of query i's answers,
	// computed by the embedded session path (set by -verify).
	expected [][]byte
	verified atomic.Int64
}

// buildExpected computes every query's canonical answer bytes with the
// embedded facade — the same path docs/SERVER.md documents for library use.
func (lg *loadgen) buildExpected() error {
	cm, err := repro.Compile(lg.sc.Mapping)
	if err != nil {
		return err
	}
	sess, err := repro.NewSession(cm, lg.sc.Graph)
	if err != nil {
		return err
	}
	ctx := context.Background()
	lg.expected = make([][]byte, len(lg.sc.Queries))
	for i, q := range lg.sc.Queries {
		ans, err := sess.CertainNull(ctx, q)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		b, err := json.Marshal(server.AnswersWire(ans))
		if err != nil {
			return err
		}
		lg.expected[i] = b
	}
	return nil
}

// register installs the scenario pair (idempotently) on the server. A 409
// here means the server holds *different* content under the demo names —
// after a crash recovery that is exactly the corruption signal we want
// loud, so it stays fatal.
func (lg *loadgen) register(ctx context.Context, c *client.Client) error {
	if _, err := c.RegisterMapping(ctx, "demo", lg.sc.MappingText); err != nil {
		return fmt.Errorf("mapping: %w", err)
	}
	if _, err := c.RegisterGraph(ctx, "demo", lg.sc.GraphText); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	return nil
}

// run replays the stream in the given mode and aggregates the results.
func (lg *loadgen) run(mode string) report {
	// latencies[i] is request i's duration, valid only where ok[i] is set:
	// failed requests must not pollute the percentiles (a fast 503 would
	// flatter them, a retried timeout would smear them).
	latencies := make([]time.Duration, lg.total)
	ok := make([]bool, lg.total)
	answers := make([]int, lg.clients)
	errs := make([]int, lg.clients)
	sheds := make([]int, lg.clients)
	mismatches := make([]int, lg.clients)

	var wg sync.WaitGroup
	ctx := context.Background()
	start := time.Now()
	for c := 0; c < lg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			api := lg.api[c%lg.tenants]
			sessionID := ""
			if mode == "session" {
				si, err := api.CreateSession(ctx, server.CreateSessionRequest{Mapping: "demo", Graph: "demo"})
				if err != nil {
					// Every request this client would have served fails.
					for i := c; i < lg.total; i += lg.clients {
						errs[c]++
					}
					return
				}
				sessionID = si.ID
				defer api.CloseSession(ctx, sessionID)
			}
			// Client c serves requests c, c+clients, c+2*clients, ...; each
			// request i replays query i modulo the stream length.
			for i := c; i < lg.total; i += lg.clients {
				qi := i % len(lg.sc.QueryTexts)
				t0 := time.Now()
				var resp server.QueryResponse
				var err error
				if mode == "session" {
					resp, err = api.Query(ctx, sessionID, server.QueryRequest{Query: lg.sc.QueryTexts[qi]})
				} else {
					resp, err = api.OneShot(ctx, server.OneShotRequest{
						Mapping: "demo", Graph: "demo", Query: lg.sc.QueryTexts[qi]})
				}
				if err != nil {
					if isShed(err) {
						sheds[c]++
					} else {
						errs[c]++
					}
					continue
				}
				latencies[i] = time.Since(t0)
				ok[i] = true
				answers[c] += resp.Count
				if lg.expected != nil {
					got, merr := json.Marshal(resp.Answers)
					if merr != nil || !bytes.Equal(got, lg.expected[qi]) {
						log.Printf("verify mismatch on query %d (%s mode)", qi, mode)
						mismatches[c]++
						continue
					}
					lg.verified.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := report{Mode: mode, Clients: lg.clients, Requests: lg.total, Seconds: elapsed.Seconds()}
	for c := 0; c < lg.clients; c++ {
		r.Errors += errs[c]
		r.Shed += sheds[c]
		r.Answers += answers[c]
		r.Mismatches += mismatches[c]
	}
	r.OK = r.Requests - r.Errors - r.Shed
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	if elapsed > 0 {
		r.RequestsPerSec = float64(r.OK) / elapsed.Seconds()
		r.AnswersPerSec = float64(r.Answers) / elapsed.Seconds()
	}
	good := latencies[:0]
	for i, d := range latencies {
		if ok[i] {
			good = append(good, d)
		}
	}
	sort.Slice(good, func(i, j int) bool { return good[i] < good[j] })
	r.P50MS = ms(percentile(good, 50))
	r.P99MS = ms(percentile(good, 99))
	return r
}

// isShed reports whether a failed request was refused by the server's load
// shedding (governor, breaker, drain) rather than failing outright: the
// refusal kinds a well-behaved client treats as "come back later".
func isShed(err error) bool {
	for _, kind := range []string{"overloaded", "rate_limited", "busy", "degraded", "draining"} {
		if client.IsKind(err, kind) {
			return true
		}
	}
	return false
}

// runOpen replays the stream with open-loop Poisson arrivals at lg.rate
// requests per second: arrivals do not wait for completions, so offered
// load is independent of server latency — exactly the regime that
// distinguishes a server that sheds crisply from one that collapses.
// Session mode pre-opens one session per client slot; request i runs
// through slot i modulo clients.
func (lg *loadgen) runOpen(mode string) report {
	latencies := make([]time.Duration, lg.total)
	ok := make([]bool, lg.total)
	var answers, errs, sheds, mismatches atomic.Int64

	ctx := context.Background()
	sessions := make([]string, lg.clients)
	if mode == "session" {
		for c := range sessions {
			api := lg.api[c%lg.tenants]
			si, err := api.CreateSession(ctx, server.CreateSessionRequest{Mapping: "demo", Graph: "demo"})
			if err != nil {
				log.Fatalf("opening session for client slot %d: %v", c, err)
			}
			sessions[c] = si.ID
			defer api.CloseSession(ctx, si.ID)
		}
	}

	rng := rand.New(rand.NewSource(lg.seed))
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for i := 0; i < lg.total; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / lg.rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := i % lg.clients
			api := lg.api[c%lg.tenants]
			qi := i % len(lg.sc.QueryTexts)
			t0 := time.Now()
			var resp server.QueryResponse
			var err error
			if mode == "session" {
				resp, err = api.Query(ctx, sessions[c], server.QueryRequest{Query: lg.sc.QueryTexts[qi]})
			} else {
				resp, err = api.OneShot(ctx, server.OneShotRequest{
					Mapping: "demo", Graph: "demo", Query: lg.sc.QueryTexts[qi]})
			}
			if err != nil {
				if isShed(err) {
					sheds.Add(1)
				} else {
					errs.Add(1)
				}
				return
			}
			latencies[i] = time.Since(t0)
			ok[i] = true
			answers.Add(int64(resp.Count))
			if lg.expected != nil {
				got, merr := json.Marshal(resp.Answers)
				if merr != nil || !bytes.Equal(got, lg.expected[qi]) {
					log.Printf("verify mismatch on query %d (%s mode, open loop)", qi, mode)
					mismatches.Add(1)
					return
				}
				lg.verified.Add(1)
			}
		}(i)
	}
	arrivalsDone := time.Since(start)
	wg.Wait()
	elapsed := time.Since(start)

	r := report{
		Mode:       mode,
		Clients:    lg.clients,
		Requests:   lg.total,
		Shed:       int(sheds.Load()),
		Errors:     int(errs.Load()),
		Answers:    int(answers.Load()),
		Mismatches: int(mismatches.Load()),
		Seconds:    elapsed.Seconds(),
	}
	r.OK = r.Requests - r.Errors - r.Shed
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	if arrivalsDone > 0 {
		r.OfferedPerSec = float64(r.Requests) / arrivalsDone.Seconds()
	}
	if elapsed > 0 {
		r.GoodputPerSec = float64(r.OK) / elapsed.Seconds()
		r.RequestsPerSec = r.GoodputPerSec
		r.AnswersPerSec = float64(r.Answers) / elapsed.Seconds()
	}
	good := latencies[:0]
	for i, d := range latencies {
		if ok[i] {
			good = append(good, d)
		}
	}
	sort.Slice(good, func(i, j int) bool { return good[i] < good[j] })
	r.P50MS = ms(percentile(good, 50))
	r.P99MS = ms(percentile(good, 99))
	return r
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
