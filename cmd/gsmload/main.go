// Command gsmload is the load generator for gsmd: N concurrent clients
// replay the canonical serving query stream (internal/workload.Serving)
// against a running server and report p50/p99 latency and answers/sec.
//
// Usage:
//
//	gsmload -addr 127.0.0.1:8080 -clients 100 -n 5000          # session mode
//	gsmload -addr $(cat addr.txt) -n 100 -mode oneshot         # baseline
//	gsmload -addr ... -mode both -verify -json report.json     # the E16 run
//
// Modes:
//
//   - session: every client opens one server session and replays its share
//     of the stream through it — solutions are materialized once per
//     (mapping, graph) pair and shared by all clients;
//   - oneshot: every request goes through POST /v1/query, which builds a
//     throwaway session per call — the amortization baseline;
//   - both: oneshot first, then session, reporting the speedup.
//
// With -verify every server response is compared byte-for-byte against the
// embedded repro.Session path computing the same canonical wire encoding.
// The scenario pair is registered as mapping "demo" / graph "demo"
// (idempotent, so running against `gsmd -demo` is fine). Exits non-zero on
// any request error, any verification mismatch, or zero answers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/workload"
)

// report is the -json document for one mode's run.
type report struct {
	Mode           string  `json:"mode"`
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Answers        int     `json:"answers"`
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AnswersPerSec  float64 `json:"answers_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
}

// fullReport is the top-level -json document.
type fullReport struct {
	Scenario string   `json:"scenario"`
	Verified int      `json:"verified"`
	Runs     []report `json:"runs"`
	// Speedup is session answers/sec over oneshot answers/sec, present in
	// -mode both.
	Speedup float64 `json:"speedup,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "gsmd address (host:port)")
	clients := flag.Int("clients", 100, "concurrent clients")
	n := flag.Int("n", 0, "total requests per mode (0 = one stream replay per client)")
	mode := flag.String("mode", "session", "session, oneshot or both")
	queries := flag.Int("queries", 50, "length of the replayed query stream")
	nodes := flag.Int("nodes", 0, "scenario graph nodes (0 = default)")
	seed := flag.Int64("seed", 0, "scenario seed (0 = default)")
	tenants := flag.Int("tenants", 4, "spread clients across this many tenants")
	verify := flag.Bool("verify", false, "check every response byte-for-byte against the embedded session path")
	jsonPath := flag.String("json", "", "write a JSON report to this file ('-' = stdout)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("gsmload: ")

	sc := workload.Serving(workload.ServingSpec{Nodes: *nodes, Queries: *queries, Seed: *seed})
	total := *n
	if total <= 0 {
		total = *clients * len(sc.QueryTexts)
	}
	if *clients <= 0 || *tenants <= 0 {
		log.Fatalf("-clients and -tenants must be positive")
	}
	switch *mode {
	case "session", "oneshot", "both":
	default:
		log.Fatalf("unknown -mode %q (want session, oneshot or both)", *mode)
	}

	lg := &loadgen{
		base:    "http://" + *addr,
		sc:      sc,
		clients: *clients,
		total:   total,
		tenants: *tenants,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        2 * *clients,
			MaxIdleConnsPerHost: 2 * *clients,
		}},
	}
	if *verify {
		if err := lg.buildExpected(); err != nil {
			log.Fatalf("building embedded verification answers: %v", err)
		}
	}
	if err := lg.register(); err != nil {
		log.Fatalf("registering scenario: %v", err)
	}

	full := fullReport{Scenario: sc.String()}
	run := func(m string) report {
		r := lg.run(m)
		log.Printf("%-8s %d clients, %d requests, %d errors: %.0f answers/s, %.0f req/s, p50 %.2fms, p99 %.2fms (%.2fs)",
			m, r.Clients, r.Requests, r.Errors, r.AnswersPerSec, r.RequestsPerSec, r.P50MS, r.P99MS, r.Seconds)
		full.Runs = append(full.Runs, r)
		return r
	}
	switch *mode {
	case "session":
		run("session")
	case "oneshot":
		run("oneshot")
	case "both":
		oneshot := run("oneshot")
		session := run("session")
		if oneshot.AnswersPerSec > 0 {
			full.Speedup = session.AnswersPerSec / oneshot.AnswersPerSec
			log.Printf("session/oneshot speedup: %.1fx", full.Speedup)
		}
	}
	full.Verified = int(lg.verified.Load())
	if *verify {
		log.Printf("verified %d responses byte-for-byte against the embedded session", full.Verified)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(full, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		out = append(out, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			log.Fatalf("writing report: %v", err)
		}
	}

	failed := false
	for _, r := range full.Runs {
		if r.Errors > 0 {
			log.Printf("FAIL: %s mode had %d errors", r.Mode, r.Errors)
			failed = true
		}
		if r.Answers == 0 {
			log.Printf("FAIL: %s mode produced zero answers", r.Mode)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

type loadgen struct {
	base    string
	sc      workload.ServingScenario
	clients int
	total   int
	tenants int
	client  *http.Client

	// expected[i] is the canonical wire encoding of query i's answers,
	// computed by the embedded session path (set by -verify).
	expected [][]byte
	verified atomic.Int64
}

// buildExpected computes every query's canonical answer bytes with the
// embedded facade — the same path docs/SERVER.md documents for library use.
func (lg *loadgen) buildExpected() error {
	cm, err := repro.Compile(lg.sc.Mapping)
	if err != nil {
		return err
	}
	sess, err := repro.NewSession(cm, lg.sc.Graph)
	if err != nil {
		return err
	}
	ctx := context.Background()
	lg.expected = make([][]byte, len(lg.sc.Queries))
	for i, q := range lg.sc.Queries {
		ans, err := sess.CertainNull(ctx, q)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		b, err := json.Marshal(server.AnswersWire(ans))
		if err != nil {
			return err
		}
		lg.expected[i] = b
	}
	return nil
}

// register installs the scenario pair (idempotently) on the server.
func (lg *loadgen) register() error {
	var mi server.MappingInfo
	if err := lg.post("", "/v1/mappings",
		server.RegisterMappingRequest{Name: "demo", Text: lg.sc.MappingText}, &mi); err != nil {
		return fmt.Errorf("mapping: %w", err)
	}
	var gi server.GraphInfo
	if err := lg.post("", "/v1/graphs",
		server.RegisterGraphRequest{Name: "demo", Text: lg.sc.GraphText}, &gi); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	return nil
}

// run replays the stream in the given mode and aggregates the results.
func (lg *loadgen) run(mode string) report {
	latencies := make([]time.Duration, lg.total)
	answers := make([]int, lg.clients)
	errs := make([]int, lg.clients)

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < lg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("load-%d", c%lg.tenants)
			sessionID := ""
			if mode == "session" {
				var si server.SessionInfo
				if err := lg.post(tenant, "/v1/sessions",
					server.CreateSessionRequest{Mapping: "demo", Graph: "demo"}, &si); err != nil {
					errs[c]++
					return
				}
				sessionID = si.ID
				defer lg.client.Do(mustRequest(http.MethodDelete,
					lg.base+"/v1/sessions/"+sessionID, tenant, nil))
			}
			// Client c serves requests c, c+clients, c+2*clients, ...; each
			// request i replays query i modulo the stream length.
			for i := c; i < lg.total; i += lg.clients {
				qi := i % len(lg.sc.QueryTexts)
				t0 := time.Now()
				var resp server.QueryResponse
				var err error
				if mode == "session" {
					err = lg.post(tenant, "/v1/sessions/"+sessionID+"/query",
						server.QueryRequest{Query: lg.sc.QueryTexts[qi]}, &resp)
				} else {
					err = lg.post(tenant, "/v1/query", server.OneShotRequest{
						Mapping: "demo", Graph: "demo", Query: lg.sc.QueryTexts[qi]}, &resp)
				}
				latencies[i] = time.Since(t0)
				if err != nil {
					errs[c]++
					continue
				}
				answers[c] += resp.Count
				if lg.expected != nil {
					got, merr := json.Marshal(resp.Answers)
					if merr != nil || !bytes.Equal(got, lg.expected[qi]) {
						log.Printf("verify mismatch on query %d (%s mode)", qi, mode)
						errs[c]++
						continue
					}
					lg.verified.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := report{Mode: mode, Clients: lg.clients, Requests: lg.total, Seconds: elapsed.Seconds()}
	for c := 0; c < lg.clients; c++ {
		r.Errors += errs[c]
		r.Answers += answers[c]
	}
	if elapsed > 0 {
		r.RequestsPerSec = float64(lg.total) / elapsed.Seconds()
		r.AnswersPerSec = float64(r.Answers) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	r.P50MS = ms(percentile(latencies, 50))
	r.P99MS = ms(percentile(latencies, 99))
	return r
}

// post sends a JSON request and decodes a JSON response, surfacing non-2xx
// bodies as errors.
func (lg *loadgen) post(tenant, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req := mustRequest(http.MethodPost, lg.base+path, tenant, bytes.NewReader(b))
	resp, err := lg.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb server.ErrorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (%s, status %d)", req.Method, path, eb.Error, eb.Kind, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d", req.Method, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func mustRequest(method, url, tenant string, body *bytes.Reader) *http.Request {
	var req *http.Request
	var err error
	if body == nil {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, body)
	}
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	return req
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
