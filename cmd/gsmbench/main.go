// Command gsmbench runs the reproduction experiments E1–E13 (one per paper
// result; see EXPERIMENTS.md and DESIGN.md §3) plus the systems scenarios
// grown on top of them (E14: incremental snapshot maintenance under
// update-heavy streaming workloads; E15: session API amortization over
// query streams; E16: the HTTP serving layer with shared session backends;
// E17: shard-partitioned solutions with parallel chase and boundary
// exchange) and prints their tables.
//
// Usage:
//
//	gsmbench              # run everything, full workloads
//	gsmbench -quick       # shrunken workloads (seconds instead of minutes)
//	gsmbench -exp E6      # a single experiment
//	gsmbench -list        # list experiments
//	gsmbench -timeout 30s # stop starting new experiments after the budget
//	gsmbench -json        # machine-readable report on stdout
//
// The -timeout budget is checked between experiments: once it is exhausted
// the remaining experiments are skipped (reported on stdout) and the
// command exits successfully — this is what the CI benchmark smoke job
// relies on to finish in seconds.
//
// With -json the human-readable tables are replaced by one JSON document
// (the tables plus per-experiment wall-clock seconds and run metadata). CI
// archives these as BENCH_*.json artifacts so the perf trajectory of the
// repository accumulates run over run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// jsonExperiment is one experiment's table plus its measured wall time.
type jsonExperiment struct {
	experiments.Table
	Seconds float64 `json:"seconds"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Quick        bool             `json:"quick"`
	Timeout      string           `json:"timeout,omitempty"`
	GoVersion    string           `json:"go_version"`
	GOOS         string           `json:"goos"`
	GOARCH       string           `json:"goarch"`
	NumCPU       int              `json:"num_cpu"`
	Ran          int              `json:"ran"`
	Skipped      int              `json:"skipped"`
	TotalSeconds float64          `json:"total_seconds"`
	Experiments  []jsonExperiment `json:"experiments"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E17) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget; skip remaining experiments once exceeded (0 = none)")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON report on stdout instead of tables")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	ran, skipped := 0, 0
	var results []jsonExperiment
	start := time.Now()
	for _, e := range all {
		if *exp != "all" && e.ID != *exp {
			continue
		}
		if *timeout > 0 && time.Since(start) > *timeout {
			skipped++
			continue
		}
		ran++
		t0 := time.Now()
		table, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsmbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		if *asJSON {
			results = append(results, jsonExperiment{Table: table, Seconds: elapsed.Seconds()})
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("   (%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if ran == 0 && skipped == 0 {
		fmt.Fprintf(os.Stderr, "gsmbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
	if *asJSON {
		report := jsonReport{
			Quick:        *quick,
			GoVersion:    runtime.Version(),
			GOOS:         runtime.GOOS,
			GOARCH:       runtime.GOARCH,
			NumCPU:       runtime.NumCPU(),
			Ran:          ran,
			Skipped:      skipped,
			TotalSeconds: time.Since(start).Seconds(),
			Experiments:  results,
		}
		if *timeout > 0 {
			report.Timeout = timeout.String()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "gsmbench: encoding report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if skipped > 0 {
		fmt.Printf("skipped %d experiment(s): -timeout %s exhausted\n", skipped, *timeout)
	}
	fmt.Printf("ran %d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
