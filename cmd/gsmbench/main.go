// Command gsmbench runs the reproduction experiments E1–E12 (one per paper
// result; see EXPERIMENTS.md and DESIGN.md §3) and prints their tables.
//
// Usage:
//
//	gsmbench              # run everything, full workloads
//	gsmbench -quick       # shrunken workloads (seconds instead of minutes)
//	gsmbench -exp E6      # a single experiment
//	gsmbench -list        # list experiments
//	gsmbench -timeout 30s # stop starting new experiments after the budget
//
// The -timeout budget is checked between experiments: once it is exhausted
// the remaining experiments are skipped (reported on stdout) and the
// command exits successfully — this is what the CI benchmark smoke job
// relies on to finish in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E12) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget; skip remaining experiments once exceeded (0 = none)")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	ran, skipped := 0, 0
	start := time.Now()
	for _, e := range all {
		if *exp != "all" && e.ID != *exp {
			continue
		}
		if *timeout > 0 && time.Since(start) > *timeout {
			skipped++
			continue
		}
		ran++
		t0 := time.Now()
		table, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsmbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("   (%s completed in %s)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 && skipped == 0 {
		fmt.Fprintf(os.Stderr, "gsmbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
	if skipped > 0 {
		fmt.Printf("skipped %d experiment(s): -timeout %s exhausted\n", skipped, *timeout)
	}
	fmt.Printf("ran %d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
