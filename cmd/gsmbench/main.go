// Command gsmbench runs the reproduction experiments E1–E12 (one per paper
// result; see EXPERIMENTS.md and DESIGN.md §3) and prints their tables.
//
// Usage:
//
//	gsmbench            # run everything, full workloads
//	gsmbench -quick     # shrunken workloads (seconds instead of minutes)
//	gsmbench -exp E6    # a single experiment
//	gsmbench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E12) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	ran := 0
	start := time.Now()
	for _, e := range all {
		if *exp != "all" && e.ID != *exp {
			continue
		}
		ran++
		t0 := time.Now()
		table, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsmbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("   (%s completed in %s)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "gsmbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
	fmt.Printf("ran %d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
