package repro

// Session-API benchmarks (the serving scenario of the session redesign): a
// stream of 50 distinct queries against one fixed (M, Gs) pair, as a
// certain-answer service would run it. The legacy path rebuilds the
// universal solution per call; the session memoizes it for the whole
// stream. Run with -bench QueryStream to reproduce the speedup reported in
// CHANGES.md (acceptance bar: ≥5×).

import (
	"context"
	"testing"

	"repro/internal/workload"
)

const sessionBenchQueries = 50

// sessionBenchWorkload is the serving scenario: a source graph whose bulk
// lives in two high-volume relations (a, b) plus one small hot relation
// (c), a mapping exchanging all three, and a stream of 50 selective
// path-with-tests queries against the hot relation's target labels. Per
// call, the legacy path pays solution materialization (proportional to the
// bulk); the queries themselves are cheap — the regime session memoization
// targets.
func sessionBenchWorkload() (*Graph, *Mapping, []Query) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 1000, Edges: 3000, Labels: []string{"a", "b", "c"},
		LabelWeights: []int{30, 30, 1}, Values: 200, Seed: 51,
	})
	m := NewMapping(R("a", "p q"), R("b", "r q"), R("c", "s t"))
	queries := workload.QueryStream(workload.QueryStreamSpec{
		Labels: []string{"s", "t"}, N: sessionBenchQueries,
		Shape: workload.ShapePaths, Depth: 2, AllowNeq: true, Seed: 51,
	})
	out := make([]Query, len(queries))
	for i, q := range queries {
		out[i] = q
	}
	return gs, m, out
}

// BenchmarkLegacyQueryStream is the pre-session serving cost: one
// CertainNull free-function call per query, each re-deriving the universal
// solution and its snapshot.
func BenchmarkLegacyQueryStream(b *testing.B) {
	gs, m, queries := sessionBenchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := CertainNull(m, gs, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSessionQueryStream runs the same stream through one Session:
// compile once, materialize once, evaluate 50 queries against the shared
// memoized solution.
func BenchmarkSessionQueryStream(b *testing.B) {
	gs, m, queries := sessionBenchWorkload()
	cm := MustCompile(m)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(cm, gs, WithChunkSize(256))
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range queries {
			if _, err := s.CertainNull(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSessionQueryStreamPrepared is the fully-prepared variant:
// queries prepared and bound up front, mirroring a query cache in front of
// a serving deployment.
func BenchmarkSessionQueryStreamPrepared(b *testing.B) {
	gs, m, queries := sessionBenchWorkload()
	cm := MustCompile(m)
	ctx := context.Background()
	s, err := NewSession(cm, gs, WithChunkSize(256))
	if err != nil {
		b.Fatal(err)
	}
	prepared := make([]*PreparedQuery, len(queries))
	for i, q := range queries {
		prepared[i] = PrepareQuery(q)
		if err := prepared[i].Bind(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range prepared {
			if _, err := s.CertainNull(ctx, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}
