package repro

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// sessionTestWorkload builds a mid-size random exchange scenario plus a
// mixed query set.
func sessionTestWorkload(t testing.TB) (*Graph, *Mapping, []Query) {
	t.Helper()
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 120, Edges: 360, Labels: []string{"a", "b"}, Values: 30, Seed: 52,
	})
	m := NewMapping(R("a", "p q"), R("b", "r"))
	queries := []Query{
		MustREE("(p q)="),
		MustREE("(p q)!= | r"),
		MustREE("p (q r?)="),
		MustREM("!x.(p (q[x=])?) q*"),
	}
	rpq, err := ParseRPQ("p q | r")
	if err != nil {
		t.Fatal(err)
	}
	return gs, m, append(queries, rpq)
}

func newTestSession(t testing.TB, gs *Graph, m *Mapping, opts ...Option) *Session {
	t.Helper()
	cm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cm, gs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionMatchesSequentialCore pins every session algorithm to the
// sequential core implementation over workload generators: memoization and
// engine sharding must not change a single answer.
func TestSessionMatchesSequentialCore(t *testing.T) {
	gs, m, queries := sessionTestWorkload(t)
	s := newTestSession(t, gs, m)
	ctx := context.Background()
	for i, q := range queries {
		want, err := core.CertainNull(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.CertainNull(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("query %d: session CertainNull %v != sequential %v", i, got, want)
		}
		wantLI, err := core.CertainLeastInformative(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		gotLI, err := s.CertainLeastInformative(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !gotLI.Equal(wantLI) {
			t.Fatalf("query %d: session CertainLeastInformative %v != sequential %v", i, gotLI, wantLI)
		}
	}
	// Batch evaluation agrees with per-query calls.
	batch, err := s.Eval(ctx, queries...)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := s.CertainNull(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !batch[i].Equal(want) {
			t.Fatalf("query %d: batch answers differ from single-query answers", i)
		}
	}
}

// TestSessionMatchesLegacyOverQueryStream cross-validates a whole
// workload-generated query stream: the session must return exactly what the
// legacy free functions return, query by query, across stream shapes.
func TestSessionMatchesLegacyOverQueryStream(t *testing.T) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 80, Edges: 240, Labels: []string{"a", "b", "c"},
		LabelWeights: []int{10, 10, 1}, Values: 20, Seed: 53,
	})
	m := NewMapping(R("a", "p q"), R("b", "r q"), R("c", "s t"))
	s := newTestSession(t, gs, m)
	ctx := context.Background()
	for _, shape := range []workload.StreamShape{workload.ShapeMixed, workload.ShapePaths} {
		queries := workload.QueryStream(workload.QueryStreamSpec{
			Labels: []string{"p", "q", "r", "s", "t"}, N: 6, Shape: shape,
			Depth: 2, AllowNeq: true, Seed: 53,
		})
		for i, q := range queries {
			want, err := CertainNull(m, gs, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.CertainNull(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("shape %v query %d: session %v != legacy %v", shape, i, got, want)
			}
		}
	}
}

// TestSessionExactMatchesLegacy pins the memoized exact search to the
// legacy free function on a small instance.
func TestSessionExactMatchesLegacy(t *testing.T) {
	gs := workload.Chain(3, "e", 2)
	m := NewMapping(R("e", "p q"))
	q := MustREE("(p q)!=")
	want, err := core.CertainExact(m, gs, q, ExactOptions{MaxNulls: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t, gs, m, WithMaxNulls(5))
	got, err := s.CertainExact(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("session exact %v != legacy %v", got, want)
	}
	// Pairwise decisions agree too.
	for _, a := range want.Sorted() {
		ok, err := s.CertainExactPair(context.Background(), q, a.From.ID, a.To.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("pair (%s, %s) in exact answers but CertainExactPair says no", a.From.ID, a.To.ID)
		}
	}
}

// TestSessionSharedRace hammers one shared session from GOMAXPROCS
// goroutines mixing prepared and ad-hoc queries across every algorithm —
// the -race acceptance test for the memoization gates.
func TestSessionSharedRace(t *testing.T) {
	gs, m, queries := sessionTestWorkload(t)
	s := newTestSession(t, gs, m, WithMaxNulls(12))
	ctx := context.Background()

	// Expected results, computed single-threaded.
	want := make([]*Answers, len(queries))
	for i, q := range queries {
		ans, err := core.CertainNull(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans
	}
	prepared := make([]*PreparedQuery, len(queries))
	for i, q := range queries {
		prepared[i] = PrepareQuery(q)
	}

	workers := runtime.GOMAXPROCS(0) * 2
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				var q Query = queries[qi]
				if (w+r)%2 == 0 {
					q = prepared[qi] // prepared and ad-hoc interleave
				}
				switch (w + r) % 4 {
				case 0:
					got, err := s.CertainNull(ctx, q)
					if err != nil {
						errs <- err
						return
					}
					if !got.Equal(want[qi]) {
						t.Errorf("worker %d: CertainNull diverged on query %d", w, qi)
						return
					}
				case 1:
					if _, err := s.CertainLeastInformative(ctx, q); err != nil {
						errs <- err
						return
					}
				case 2:
					got := NewAnswers()
					for a, err := range s.CertainNullSeq(ctx, q) {
						if err != nil {
							errs <- err
							return
						}
						got.Add(a)
					}
					if !got.Equal(want[qi]) {
						t.Errorf("worker %d: CertainNullSeq diverged on query %d", w, qi)
						return
					}
				default:
					if _, err := s.Eval(ctx, q); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionSeqStreaming checks the iterator paths: full drains equal the
// materialized answers, and breaking early stops cleanly.
func TestSessionSeqStreaming(t *testing.T) {
	gs, m, queries := sessionTestWorkload(t)
	s := newTestSession(t, gs, m)
	ctx := context.Background()
	for i, q := range queries {
		want, err := s.CertainNull(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got := NewAnswers()
		for a, err := range s.CertainNullSeq(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
			got.Add(a)
		}
		if !got.Equal(want) {
			t.Fatalf("query %d: streamed answers %v != materialized %v", i, got, want)
		}
		wantLI, err := s.CertainLeastInformative(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		gotLI := NewAnswers()
		for a, err := range s.CertainLeastInformativeSeq(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
			gotLI.Add(a)
		}
		if !gotLI.Equal(wantLI) {
			t.Fatalf("query %d: streamed LI answers diverged", i)
		}
		// Early break after the first answer must not panic or leak.
		n := 0
		for _, err := range s.CertainNullSeq(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
			n++
			break
		}
		if want.Len() > 0 && n != 1 {
			t.Fatalf("query %d: early break yielded %d answers", i, n)
		}
	}
}

// TestSessionOptionValidation checks every option's ErrBadOptions path at
// construction.
func TestSessionOptionValidation(t *testing.T) {
	gs, m, _ := sessionTestWorkload(t)
	cm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Option{
		WithWorkers(-1),
		WithChunkSize(0),
		WithChunkSize(-3),
		WithMaxNulls(0),
		WithMaxNulls(-1),
		WithMaxExpansions(0),
		WithMaxChoices(-2),
		WithCompareMode(CompareMode(99)),
		WithTimeout(0),
		WithTimeout(-1),
	}
	for i, opt := range bad {
		if _, err := NewSession(cm, gs, opt); !errors.Is(err, ErrBadOptions) {
			t.Errorf("bad option %d: got %v, want ErrBadOptions", i, err)
		}
	}
	if _, err := NewSession(nil, gs); !errors.Is(err, ErrBadOptions) {
		t.Errorf("nil mapping: got %v", err)
	}
	if _, err := NewSession(cm, nil); !errors.Is(err, ErrBadOptions) {
		t.Errorf("nil graph: got %v", err)
	}
	// The legacy free function validates too, without silent clamping.
	if _, err := CertainExact(m, gs, MustREE("(p q)="), ExactOptions{MaxNulls: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("legacy CertainExact with negative MaxNulls: got %v, want ErrBadOptions", err)
	}
}

// TestSessionTypedErrors checks the sentinel taxonomy end to end.
func TestSessionTypedErrors(t *testing.T) {
	ctx := context.Background()

	// ErrInfinite: non-relational mapping has no finite universal solution.
	gs := workload.Chain(3, "e", 0)
	nonRel := NewMapping(R("e", "p*"))
	s := newTestSession(t, gs, nonRel)
	if _, err := s.CertainNull(ctx, MustREE("p")); !errors.Is(err, ErrInfinite) {
		t.Errorf("non-relational: got %v, want ErrInfinite", err)
	}

	// ErrNoSolution: an ε rule demanding two distinct nodes coincide.
	eps := NewMapping(R("e", "()"))
	s2 := newTestSession(t, gs, eps)
	if _, err := s2.UniversalSolution(ctx); !errors.Is(err, ErrNoSolution) {
		t.Errorf("ε-conflict: got %v, want ErrNoSolution", err)
	}

	// ErrBudgetExceeded: exact search over too many nulls.
	big := workload.Chain(30, "e", 0)
	m := NewMapping(R("e", "p q"))
	s3 := newTestSession(t, big, m, WithMaxNulls(2))
	if _, err := s3.CertainExact(ctx, MustREE("(p q)=")); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("budget: got %v, want ErrBudgetExceeded", err)
	}

	// ErrCanceled wraps the context error on a pre-canceled context.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	s4 := newTestSession(t, big, m)
	if _, err := s4.CertainNull(cctx, MustREE("(p q)=")); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled: got %v, want ErrCanceled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled: %v should also wrap context.Canceled", err)
	}
	s4small := newTestSession(t, gs, m)
	if _, err := s4small.CertainExact(cctx, MustREE("(p q)=")); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled exact: got %v, want ErrCanceled", err)
	}
	if _, err := s4small.CertainOneInequality(cctx, MustREE("(p q)!="), "n0", "n1"); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled oneneq: got %v, want ErrCanceled", err)
	}

	// ErrSourceMutated: the graph changed under the session.
	mut := workload.Chain(3, "e", 0)
	s5 := newTestSession(t, mut, m)
	if _, err := s5.CertainNull(ctx, MustREE("(p q)=")); err != nil {
		t.Fatal(err)
	}
	mut.MustAddNode("late", V("9"))
	if _, err := s5.CertainNull(ctx, MustREE("(p q)=")); !errors.Is(err, ErrSourceMutated) {
		t.Errorf("mutated: got %v, want ErrSourceMutated", err)
	}
}

// TestPreparedQueryAcrossSessions checks that one prepared query gives
// identical answers on two different sessions and via Bind.
func TestPreparedQueryAcrossSessions(t *testing.T) {
	gs, m, queries := sessionTestWorkload(t)
	gs2 := workload.RandomGraph(workload.GraphSpec{
		Nodes: 60, Edges: 150, Labels: []string{"a", "b"}, Values: 12, Seed: 99,
	})
	ctx := context.Background()
	s1 := newTestSession(t, gs, m)
	s2 := newTestSession(t, gs2, m)
	for i, q := range queries {
		p := PrepareQuery(q)
		if err := p.Bind(ctx, s1); err != nil {
			t.Fatal(err)
		}
		for si, s := range []*Session{s1, s2} {
			want, err := s.CertainNull(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.CertainNull(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("query %d session %d: prepared answers diverged", i, si)
			}
		}
	}
	if queries[0] != PrepareQuery(queries[0]).Unwrap() {
		t.Fatal("Unwrap should return the original query")
	}
}

// TestSessionEvalSource checks direct source-graph evaluation under the
// configured compare mode.
func TestSessionEvalSource(t *testing.T) {
	gs, m, _ := sessionTestWorkload(t)
	q := MustREE("(a b)=")
	for _, mode := range []CompareMode{MarkedNulls, SQLNulls} {
		s := newTestSession(t, gs, m, WithCompareMode(mode))
		got, err := s.EvalSource(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Eval(gs, mode)
		if got.Len() != want.Len() {
			t.Fatalf("mode %v: engine source eval %d pairs, sequential %d", mode, got.Len(), want.Len())
		}
	}
}
