package repro_test

// One benchmark per reproduction experiment (E1–E12, see EXPERIMENTS.md and
// DESIGN.md §3). Each benchmark exercises the core operation whose
// complexity the corresponding paper result describes; cmd/gsmbench prints
// the full parameter sweeps as tables.
//
// This file is an external test package (repro_test) on purpose: it imports
// internal/experiments, which (via internal/server) depends on the repro
// facade — an import cycle if this file lived in package repro.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gxpath"
	"repro/internal/pcp"
	"repro/internal/ree"
	"repro/internal/relational"
	"repro/internal/rem"
	"repro/internal/rpq"
	"repro/internal/threecol"
	"repro/internal/workload"
)

// E1 — Figure 1: GXPath-core~ evaluation on a random graph.
func BenchmarkE1GXPathEval(b *testing.B) {
	g := workload.RandomGraph(workload.GraphSpec{
		Nodes: 200, Edges: 600, Labels: []string{"a", "b"}, Values: 50, Seed: 1,
	})
	phi := gxpath.MustParseNode("<a (a- b)=> & !<b b>")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gxpath.NodesSatisfying(g, phi, datagraph.MarkedNulls)
	}
}

// E2 — Theorem 1: build the PCP gadget, its witness, and run all error
// detectors.
func BenchmarkE2PCPGadget(b *testing.B) {
	in := pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	seq, ok := in.Solve(8)
	if !ok {
		b.Fatal("instance should be satisfiable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gd, err := pcp.BuildGadget(in)
		if err != nil {
			b.Fatal(err)
		}
		wit, err := gd.BuildWitness(seq)
		if err != nil {
			b.Fatal(err)
		}
		fired, err := gd.Errors(wit)
		if err != nil {
			b.Fatal(err)
		}
		if len(fired) != 0 {
			b.Fatalf("witness should be clean: %v", fired)
		}
	}
}

// E3 — Theorem 2/Prop 2: the exponential exact certain-answer search
// (3 nulls; the sweep over null counts lives in gsmbench).
func BenchmarkE3ExactCoNP(b *testing.B) {
	gs := workload.Chain(3, "e", 0)
	m := core.NewMapping(core.R("e", "p q"))
	q := ree.MustParseQuery("(p q)!=")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — Prop 3: the 3-colorability reduction (triangle: colourable, so the
// adversary search short-circuits; K4 is the slow certain case, see
// gsmbench).
func BenchmarkE4ThreeCol(b *testing.B) {
	g := threecol.Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		certain, err := threecol.CertainNon3Colorable(g, core.ExactOptions{MaxNulls: 4})
		if err != nil {
			b.Fatal(err)
		}
		if certain {
			b.Fatal("triangle is 3-colourable")
		}
	}
}

// E5 — Prop 4: the one-inequality fixpoint on a 1000-edge chain.
func BenchmarkE5OneInequality(b *testing.B) {
	gs := workload.Chain(1000, "e", 0)
	m := core.NewMapping(core.R("e", "p q"))
	q := ree.MustParseQuery("(p q)!=")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertainOneInequality(m, gs, q, "n0", "n1", core.OneNeqOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — Theorem 3/4: the tractable SQL-null algorithm at a scale the exact
// oracle cannot touch.
func BenchmarkE6CertainNull(b *testing.B) {
	gs := workload.Chain(2000, "e", 3)
	m := core.NewMapping(core.R("e", "p q"))
	q := ree.MustParseQuery("(p q)!= | (p q)=")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertainNull(m, gs, q); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — Remark 1: one underapproximation-quality sample (exact vs null).
func BenchmarkE7Approximation(b *testing.B) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 5, Edges: 7, Labels: []string{"a", "b"}, Values: 3, Seed: 7,
	})
	m := workload.RandomRelationalMapping(workload.MappingSpec{
		SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q"},
		Rules: 2, MaxWordLen: 2, Seed: 7,
	})
	q := ree.New(workload.RandomREEQuery(workload.QuerySpec{
		Labels: []string{"p", "q"}, Depth: 3, AllowNeq: true, Seed: 7,
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			b.Fatal(err)
		}
		nullAns, err := core.CertainNull(m, gs, q)
		if err != nil {
			b.Fatal(err)
		}
		if !nullAns.SubsetOf(exact) {
			b.Fatal("underapproximation violated")
		}
	}
}

// E8 — Theorem 5: least-informative certain answers for an REM= query.
func BenchmarkE8EqualityOnly(b *testing.B) {
	gs := workload.Chain(1000, "e", 4)
	m := core.NewMapping(core.R("e", "p q"))
	q := rem.MustParseQuery("!x.(p (q[x=])?) q*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertainLeastInformative(m, gs, q); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 — Prop 1: relational-encoding satisfaction check.
func BenchmarkE9RelationalEncoding(b *testing.B) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 30, Edges: 60, Labels: []string{"a", "b"}, Values: 10, Seed: 9,
	})
	m := core.NewMapping(core.R("a", "p q"), core.R("b", "r"))
	mr, err := relational.Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		b.Fatal(err)
	}
	ds := relational.FromGraph(gs)
	dt := relational.FromGraph(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, why := mr.Satisfied(ds, dt); !ok {
			b.Fatal(why)
		}
	}
}

// E10 — Theorem 6/Lemma 2: tree-gadget construction plus the bounded
// avoiding-supergraph search.
func BenchmarkE10GXPathGadget(b *testing.B) {
	in := pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "b"}}}
	phi := gxpath.MustParseNode("!<x>")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg, err := pcp.BuildTreeGadget(in)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := pcp.ExistsAvoidingSupergraph(tg.Tree, tg.Root, phi,
			pcp.SupergraphSearchOptions{MaxNewNodes: 0, MaxNewEdges: 1, Labels: []string{"x"}}); !ok {
			b.Fatal("avoidance should succeed")
		}
	}
}

// E11 — Theorem 7: ϕ_G ∧ ϕ_δ pin evaluation on the PCP tree.
func BenchmarkE11StaticAnalysis(b *testing.B) {
	tg, err := pcp.BuildTreeGadget(pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "b"}}})
	if err != nil {
		b.Fatal(err)
	}
	pg, err := gxpath.PhiG(tg.Tree, tg.Root)
	if err != nil {
		b.Fatal(err)
	}
	pd, err := gxpath.PhiDelta(tg.Tree, tg.Root)
	if err != nil {
		b.Fatal(err)
	}
	pin := gxpath.NAnd{L: pg, R: pd}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !gxpath.Satisfies(tg.Tree, tg.Root, pin, datagraph.MarkedNulls) {
			b.Fatal("tree must satisfy its own pin")
		}
	}
}

// E12 — Theorem 3 combined complexity: REE (Ptime) vs REM (register-driven)
// evaluation on the same graph.
func BenchmarkE12CombinedComplexity(b *testing.B) {
	g := workload.Chain(60, "a", 5)
	reeQ := ree.MustParseQuery("((a a)= a)=")
	remQ := rem.MustParseQuery("!x.(a !y.(a (a[x= | y!=])+))")
	b.Run("REE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reeQ.Eval(g, datagraph.MarkedNulls)
		}
	})
	b.Run("REM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			remQ.Eval(g, datagraph.MarkedNulls)
		}
	})
}

// The experiment tables themselves (quick mode) — so `go test -bench .`
// regenerates every figure of EXPERIMENTS.md in one run.
func BenchmarkExperimentTablesQuick(b *testing.B) {
	for _, e := range experiments.All() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Microbenchmarks for the substrates (used to track the ablation of
// DESIGN.md §5: shared RA engine vs direct matcher).
func BenchmarkSubstrateREEMatchRA(b *testing.B) {
	q := ree.MustParseQuery(".* (.+)= .*")
	w := randomDataPath(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Match(w, datagraph.MarkedNulls)
	}
}

func BenchmarkSubstrateREEMatchDirect(b *testing.B) {
	e := ree.MustParse(".* (.+)= .*")
	w := randomDataPath(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ree.MatchDirect(e, w, datagraph.MarkedNulls)
	}
}

// Engine benchmarks (PR 1): the indexed worker-pool engine vs the
// sequential certain-answer path, on the acceptance workload of 200 nodes
// and 600 edges. Run with -bench 'EngineCertain' to reproduce the speedup
// reported in the PR description.

func engineWorkload() (*datagraph.Graph, *core.Mapping, []core.Query) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 200, Edges: 600, Labels: []string{"a", "b"}, Values: 40, Seed: 13,
	})
	m := core.NewMapping(core.R("a", "p q"), core.R("b", "r"))
	queries := []core.Query{
		ree.MustParseQuery("(p q)="),
		ree.MustParseQuery("(p q)!= | r"),
		ree.MustParseQuery("p (q r?)="),
		ree.MustParseQuery("(r)= (p q)*"),
		rem.MustParseQuery("!x.(p (q[x=])?) q*"),
		rem.MustParseQuery("!x.((p | r)[x!=]) (q)*"),
	}
	return gs, m, queries
}

// BenchmarkEngineCertainSequential is the baseline: one core.CertainNull
// call per query, single-goroutine, as the pre-engine code ran.
func BenchmarkEngineCertainSequential(b *testing.B) {
	gs, m, queries := engineWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := core.CertainNull(m, gs, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineCertainParallel runs the same workload through
// engine.Eval: queries and source-node frontiers sharded across GOMAXPROCS
// workers over the shared universal solution.
func BenchmarkEngineCertainParallel(b *testing.B) {
	gs, m, queries := engineWorkload()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Eval(ctx, m, gs, queries...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCertainOneWorker isolates the index win from the
// parallelism win: the engine pipeline pinned to a single worker.
func BenchmarkEngineCertainOneWorker(b *testing.B) {
	gs, m, queries := engineWorkload()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.EvalOpts(ctx, m, gs, engine.Options{Workers: 1}, queries...); err != nil {
			b.Fatal(err)
		}
	}
}

// Adjacency micro-benchmarks: expanding a word-RPQ frontier by scanning the
// flat adjacency lists (the pre-index evaluation strategy) vs the per-label
// index.

func adjacencyWalkScan(g *datagraph.Graph, word []string) int {
	frontier := map[int]struct{}{}
	for u := 0; u < g.NumNodes(); u++ {
		frontier[u] = struct{}{}
	}
	for _, label := range word {
		next := make(map[int]struct{})
		for node := range frontier {
			for _, he := range g.Out(node) {
				if he.Label == label {
					next[he.To] = struct{}{}
				}
			}
		}
		frontier = next
	}
	return len(frontier)
}

func adjacencyWalkIndexed(g *datagraph.Graph, word []string) int {
	frontier := map[int]struct{}{}
	for u := 0; u < g.NumNodes(); u++ {
		frontier[u] = struct{}{}
	}
	for _, label := range word {
		next := make(map[int]struct{})
		for node := range frontier {
			for _, to := range g.OutEdges(node, label) {
				next[to] = struct{}{}
			}
		}
		frontier = next
	}
	return len(frontier)
}

var adjacencyWord = []string{"a", "b", "a", "b"}

// adjacencyBenchLabels mimics a property-graph edge-type distribution: many
// labels, queries touching few — the regime the per-label index targets.
// The graph is dense (average out-degree 30) so a scan filters ~30 half
// edges per expansion where the index jumps straight to the ~2-3 matching
// successors.
var adjacencyBenchLabels = []string{
	"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l",
}

func adjacencyBenchGraph() *datagraph.Graph {
	return workload.RandomGraph(workload.GraphSpec{
		Nodes: 200, Edges: 6000, Labels: adjacencyBenchLabels, Values: 40, Seed: 17,
	})
}

func BenchmarkAdjacencyWordScan(b *testing.B) {
	g := adjacencyBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adjacencyWalkScan(g, adjacencyWord)
	}
}

func BenchmarkAdjacencyWordIndexed(b *testing.B) {
	g := adjacencyBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adjacencyWalkIndexed(g, adjacencyWord)
	}
}

// Dense-frontier benchmarks (PR 2): expanding an all-nodes word frontier on
// the dense multi-label graph, with the PR 1 strategy (string-keyed
// per-label index + hash-set frontiers, adjacencyWalkIndexed above) against
// the snapshot kernel (interned labels, CSR adjacency, bitset frontiers).
// Run with -bench Frontier to reproduce the speedup reported in CHANGES.md.

// frontierWalkBitset is adjacencyWalkIndexed on the frozen snapshot: CSR
// lookups by interned label, NodeSet frontiers.
func frontierWalkBitset(snap *datagraph.Snapshot, word []datagraph.Label) int {
	n := snap.NumNodes()
	cur, next := datagraph.NewNodeSet(n), datagraph.NewNodeSet(n)
	for u := 0; u < n; u++ {
		cur.Add(u)
	}
	for _, l := range word {
		next.Clear()
		cur.Each(func(node int) {
			for _, to := range snap.OutLabeled(node, l) {
				next.Add(int(to))
			}
		})
		cur, next = next, cur
	}
	return cur.Len()
}

// BenchmarkFrontierDenseMap is the PR 1 baseline path: per-label index maps
// with hash-set frontiers.
func BenchmarkFrontierDenseMap(b *testing.B) {
	g := adjacencyBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adjacencyWalkIndexed(g, adjacencyWord)
	}
}

// BenchmarkFrontierDenseBitset is the same expansion over the interned CSR
// snapshot with bitset frontiers.
func BenchmarkFrontierDenseBitset(b *testing.B) {
	g := adjacencyBenchGraph()
	snap := g.Freeze()
	word := make([]datagraph.Label, len(adjacencyWord))
	for i, name := range adjacencyWord {
		l, ok := snap.LabelID(name)
		if !ok {
			b.Fatalf("label %q missing from graph", name)
		}
		word[i] = l
	}
	// The two walkers must agree before we compare their cost.
	if got, want := frontierWalkBitset(snap, word), adjacencyWalkIndexed(g, adjacencyWord); got != want {
		b.Fatalf("bitset walk found %d nodes, map walk %d", got, want)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frontierWalkBitset(snap, word)
	}
}

// BenchmarkFrontierRPQEval runs the same dense-frontier regime through the
// real RPQ evaluator end to end (snapshot kernel, dense PairSet answers).
func BenchmarkFrontierRPQEval(b *testing.B) {
	g := adjacencyBenchGraph()
	q := rpq.Word(adjacencyWord...)
	g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Eval(g)
	}
}

func randomDataPath(n int) datagraph.DataPath {
	vals := make([]datagraph.Value, n+1)
	labels := make([]string, n)
	for i := 0; i <= n; i++ {
		vals[i] = datagraph.V(fmt.Sprintf("v%d", i%7))
		if i < n {
			labels[i] = "a"
		}
	}
	return datagraph.NewDataPath(vals, labels)
}

// Delta-freeze benchmarks (PR 3): the rebuild cliff for update-heavy
// workloads. Both benchmarks append k edges to a frozen E-edge graph and
// re-freeze per iteration; the delta variant merges the append burst into
// the cached snapshot (copy-on-write segments), the full variant rebuilds
// from scratch — the pre-PR cost of any topology mutation. Run with
// -bench 'Freeze|Streaming' to reproduce the speedup reported in
// CHANGES.md (≥5× required at E=1e5, k=1e2; measured around two orders of
// magnitude).

const (
	freezeBenchEdges   = 100000
	freezeBenchAppends = 100
)

// freezeBenchStream is the append-burst source for the freeze benchmarks:
// the same workload.Streaming generator E14 and the streaming benchmarks
// measure, configured to pure edge appends (k per Tick).
func freezeBenchStream() *workload.Stream {
	s := workload.Streaming(workload.StreamSpec{
		Base: workload.GraphSpec{
			Nodes: freezeBenchEdges / 5, Edges: freezeBenchEdges,
			Labels: adjacencyBenchLabels, Values: 2000, Seed: 29,
		},
		EdgesPerRound: freezeBenchAppends,
		Seed:          31,
	})
	s.G.Freeze()
	return s
}

// BenchmarkFreezeDeltaAppend: append k edges, re-freeze incrementally.
func BenchmarkFreezeDeltaAppend(b *testing.B) {
	s := freezeBenchStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
		s.G.Freeze()
	}
}

// BenchmarkFreezeFullRebuild: the same append burst, but rebuilding the
// snapshot from scratch (the pre-delta behaviour of any AddEdge).
func BenchmarkFreezeFullRebuild(b *testing.B) {
	s := freezeBenchStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
		s.G.FreezeFull()
	}
}

// streamingBenchSpec is the E14 streaming scenario at benchmark scale:
// mutation bursts (edge appends + value overwrites) alternating with an
// engine-evaluated certain-answer query batch.
func streamingBenchSpec() (workload.StreamSpec, []core.Query) {
	spec := workload.StreamSpec{
		Base: workload.GraphSpec{
			Nodes: 2000, Edges: 6000, Labels: []string{"a", "b", "c"}, Values: 150, Seed: 37,
		},
		Rounds:            8,
		EdgesPerRound:     60,
		NodesPerRound:     3,
		SetValuesPerRound: 30,
		Seed:              37,
	}
	queries := []core.Query{
		ree.MustParseQuery("(a b)="),
		ree.MustParseQuery("a (b c?)!="),
	}
	return spec, queries
}

func runStreamingBench(b *testing.B, rebuild bool) {
	spec, queries := streamingBenchSpec()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := workload.Streaming(spec)
		s.G.Freeze()
		err := s.Run(func(round int, g *datagraph.Graph) error {
			if rebuild {
				g.FreezeFull()
			}
			for _, q := range queries {
				if _, err := engine.EvalGraph(ctx, g, q, datagraph.SQLNulls, engine.Options{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingDeltaFreeze: the interleaved update/query scenario with
// incremental snapshot maintenance (each round's freeze merges the burst).
func BenchmarkStreamingDeltaFreeze(b *testing.B) { runStreamingBench(b, false) }

// BenchmarkStreamingFullRebuild: the same scenario paying a from-scratch
// snapshot rebuild every round (the pre-delta cliff).
func BenchmarkStreamingFullRebuild(b *testing.B) { runStreamingBench(b, true) }
