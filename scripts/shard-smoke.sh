#!/usr/bin/env sh
# shard-smoke.sh — end-to-end smoke test of the sharded serving path.
#
# Boots gsmd with the demo (workload.Serving) pair and -shards 4, so every
# backend session materializes the solution as four hash-partitioned
# fragments and answers navigational queries through the shard-local
# kernels plus the boundary-frontier exchange. gsmload -verify replays
# requests and byte-for-byte checks every response against its embedded
# (unsharded) repro.Session path — any sharding-induced divergence is a
# mismatch and fails the run. Finishes by asserting /v1/stats reports the
# shard layout and by draining gracefully.
#
# Usage: scripts/shard-smoke.sh [requests] (default 100)
set -eu

N="${1:-100}"
TMP="$(mktemp -d)"
trap 'kill "$GSMD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "shard-smoke: building gsmd and gsmload"
go build -o "$TMP/gsmd" ./cmd/gsmd
go build -o "$TMP/gsmload" ./cmd/gsmload

"$TMP/gsmd" -demo -shards 4 -partition hash -addr 127.0.0.1:0 -addr-file "$TMP/addr" &
GSMD_PID=$!

i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shard-smoke: gsmd did not write $TMP/addr in time" >&2
        exit 1
    fi
    if ! kill -0 "$GSMD_PID" 2>/dev/null; then
        echo "shard-smoke: gsmd exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "shard-smoke: gsmd up at $ADDR (4 shards), replaying $N verified requests"

# gsmload exits 3 on any byte-level answer mismatch; 0 mismatches required.
"$TMP/gsmload" -addr "$ADDR" -clients 8 -n "$N" -mode session -verify

# The stats endpoint must expose the shard layout the daemon was booted
# with: shard count, policy, and per-fragment sizes for the warm backend.
# Per-backend shard stats exist only while a backend is alive, so hold a
# session open and push one navigational query through the exchange first.
SID="$(curl -sf -X POST "http://$ADDR/v1/sessions" -H 'X-Tenant: smoke' \
    -d '{"mapping":"demo","graph":"demo"}' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
if [ -z "$SID" ]; then
    echo "shard-smoke: could not create a session for the stats check" >&2
    exit 1
fi
curl -sf -X POST "http://$ADDR/v1/sessions/$SID/query" -H 'X-Tenant: smoke' \
    -d '{"query":"s t","lang":"rpq"}' > /dev/null
STATS="$(curl -sf "http://$ADDR/v1/stats")"
echo "$STATS" | grep -q '"shards": *4' || {
    echo "shard-smoke: /v1/stats does not report shards=4: $STATS" >&2
    exit 1
}
echo "$STATS" | grep -q '"partition": *"hash"' || {
    echo "shard-smoke: /v1/stats does not report the hash partition: $STATS" >&2
    exit 1
}
echo "$STATS" | grep -q '"shard_backends"' || {
    echo "shard-smoke: /v1/stats has no shard_backends section: $STATS" >&2
    exit 1
}

echo "shard-smoke: draining gsmd"
kill -TERM "$GSMD_PID"
wait "$GSMD_PID"
echo "shard-smoke: OK"
