#!/usr/bin/env sh
# chaos-smoke.sh — crash/fault drill for the serving stack.
#
# Boots gsmd with a persistent state directory and fault injection
# enabled, then proves the three robustness claims end to end:
#
#   1. Fault tolerance: gsmload -chaos arms injected errors, panics and
#      latency across the handler, materialization/chase/memo and stream
#      layers, replays the verified workload through the retrying client,
#      and fails on any byte-level answer mismatch — faults may cost
#      availability (bounded by the error budget), never correctness.
#   2. Torn-write recovery: a partial-write fault tears a WAL append
#      mid-frame (the registration correctly fails), then the server is
#      SIGKILLed — no drain, no checkpoint — and restarted on the same
#      state directory. Recovery must quarantine the torn tail and rebuild
#      the registry exactly.
#   3. Byte-for-byte registry recovery: the post-crash gsmload run
#      re-registers the demo pair; the server's idempotent-or-409 contract
#      turns any recovered-content drift into a hard failure, and -verify
#      re-checks every answer against the embedded session path.
#
# The server runs with -shards 4 throughout, so phase 1's verified replay
# also proves the sharded chase keeps answers byte-identical under injected
# faults, and phase 1b drills the engine.exchange fault point: an armed
# one-shot error must fail a navigational query's boundary exchange, and
# the retry (plan exhausted) must succeed. Phase 1d drills ingest.commit:
# a commit fault mid bulk load must fail without landing anything in the
# registry, and the retried load's landing must survive the phase-2 crash.
#
# Usage: scripts/chaos-smoke.sh [requests] (default 200)
set -eu

N="${1:-200}"
TMP="$(mktemp -d)"
GSMD_PID=""
trap 'kill -9 "$GSMD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "chaos-smoke: building gsmd and gsmload"
go build -o "$TMP/gsmd" ./cmd/gsmd
go build -o "$TMP/gsmload" ./cmd/gsmload

start_gsmd() {
    rm -f "$TMP/addr"
    "$TMP/gsmd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
        -state-dir "$TMP/state" -enable-faults -shards 4 "$@" &
    GSMD_PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos-smoke: gsmd did not write $TMP/addr in time" >&2
            exit 1
        fi
        if ! kill -0 "$GSMD_PID" 2>/dev/null; then
            echo "chaos-smoke: gsmd exited before binding" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$TMP/addr")"
}

start_gsmd -demo
echo "chaos-smoke: gsmd up at $ADDR (state dir, faults enabled)"

echo "chaos-smoke: phase 1 — verified replay under injected faults"
# -chaos arms the default multi-layer fault plan over HTTP, replays with
# the retrying client and exits 3 on any verification mismatch (2 on a
# blown error budget) — either fails this script.
"$TMP/gsmload" -addr "$ADDR" -clients 8 -n "$N" -mode session -verify -chaos

echo "chaos-smoke: phase 1b — injected failure of a boundary-exchange round"
# Arm a one-shot error on the sharded engine's exchange loop: the next
# navigational query must fail with the injected fault, and the retry
# (plan exhausted) must return answers.
curl -sf -X POST "http://$ADDR/v1/admin/faults" \
    -d '{"spec":"engine.exchange=error:n=1","seed":7}' > /dev/null
SID="$(curl -sf -X POST "http://$ADDR/v1/sessions" -H 'X-Tenant: chaos' \
    -d '{"mapping":"demo","graph":"demo"}' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
if [ -z "$SID" ]; then
    echo "chaos-smoke: could not create a session for the exchange drill" >&2
    exit 1
fi
FIRST="$(curl -s -X POST "http://$ADDR/v1/sessions/$SID/query" -H 'X-Tenant: chaos' \
    -d '{"query":"s t","lang":"rpq"}')"
if ! echo "$FIRST" | grep -q 'engine.exchange'; then
    echo "chaos-smoke: armed exchange fault did not surface: $FIRST" >&2
    exit 1
fi
SECOND="$(curl -s -X POST "http://$ADDR/v1/sessions/$SID/query" -H 'X-Tenant: chaos' \
    -d '{"query":"s t","lang":"rpq"}')"
if ! echo "$SECOND" | grep -q '"answers"'; then
    echo "chaos-smoke: exchange retry after fault exhaustion failed: $SECOND" >&2
    exit 1
fi
curl -sf -X POST "http://$ADDR/v1/admin/faults" -d '{"spec":""}' > /dev/null

echo "chaos-smoke: phase 1c — injected shed at the admission governor"
# Arm a one-shot error on the governor's admission decision: the next
# request must be refused with the injected fault before any work is done,
# and the one after (plan exhausted) must be admitted and answer normally.
curl -sf -X POST "http://$ADDR/v1/admin/faults" \
    -d '{"spec":"govern.admit=error:n=1","seed":11}' > /dev/null
FIRST="$(curl -s -X POST "http://$ADDR/v1/sessions/$SID/query" -H 'X-Tenant: chaos' \
    -d '{"query":"s t","lang":"rpq"}')"
if ! echo "$FIRST" | grep -q 'govern.admit'; then
    echo "chaos-smoke: armed admission fault did not surface: $FIRST" >&2
    exit 1
fi
SECOND="$(curl -s -X POST "http://$ADDR/v1/sessions/$SID/query" -H 'X-Tenant: chaos' \
    -d '{"query":"s t","lang":"rpq"}')"
if ! echo "$SECOND" | grep -q '"answers"'; then
    echo "chaos-smoke: admission retry after fault exhaustion failed: $SECOND" >&2
    exit 1
fi
curl -sf -X POST "http://$ADDR/v1/admin/faults" -d '{"spec":""}' > /dev/null

echo "chaos-smoke: phase 1d — injected commit fault mid bulk ingest"
# Arm a one-shot error on the ingest pipeline's batch commit: the bulk
# load must fail in-band (terminal NDJSON error chunk), nothing may land
# in the registry, and the retry (plan exhausted) must land normally —
# the landing is then WAL-logged, so phase 3 checks it survives the crash.
curl -sf -X POST "http://$ADDR/v1/admin/faults" \
    -d '{"spec":"ingest.commit=error:n=1","seed":21}' > /dev/null
ING='{"schema":"table t\ncol t id int pk\ncol t v text\n","tables":{"t":"id,v\n1,a\n2,b\n3,c\n"}}'
FIRST="$(curl -s -X POST "http://$ADDR/v1/graphs/bulk/ingest" -d "$ING")"
if ! echo "$FIRST" | grep -q 'ingest.commit'; then
    echo "chaos-smoke: armed ingest fault did not surface: $FIRST" >&2
    exit 1
fi
if curl -sf "http://$ADDR/v1/graphs/bulk" > /dev/null 2>&1; then
    echo "chaos-smoke: faulted bulk load landed in the registry anyway" >&2
    exit 1
fi
SECOND="$(curl -s -X POST "http://$ADDR/v1/graphs/bulk/ingest" -d "$ING")"
if ! echo "$SECOND" | grep -q '"done":true'; then
    echo "chaos-smoke: ingest retry after fault exhaustion failed: $SECOND" >&2
    exit 1
fi
curl -sf "http://$ADDR/v1/graphs/bulk" > /dev/null
curl -sf -X POST "http://$ADDR/v1/admin/faults" -d '{"spec":""}' > /dev/null

echo "chaos-smoke: phase 2 — torn WAL append, then SIGKILL"
# Arm a one-shot partial write on the WAL and attempt a registration: the
# append must fail (storage_failed) leaving a torn tail on disk.
curl -sf -X POST "http://$ADDR/v1/admin/faults" \
    -d '{"spec":"wal.append=partial:n=1","seed":99}' > /dev/null
if ! curl -s -X POST "http://$ADDR/v1/mappings" \
    -d '{"name":"torn","text":"rule a -> b\n"}' | grep -q 'storage_failed'; then
    echo "chaos-smoke: torn WAL append did not fail with storage_failed" >&2
    exit 1
fi
kill -9 "$GSMD_PID"
wait "$GSMD_PID" 2>/dev/null || true

echo "chaos-smoke: phase 3 — restart and byte-for-byte recovery"
# No -demo this time: everything the post-crash run sees must come from
# the recovered snapshot + WAL.
start_gsmd
echo "chaos-smoke: gsmd back up at $ADDR"
if [ ! -s "$TMP/state/registry.wal.quarantine" ]; then
    echo "chaos-smoke: torn WAL tail was not quarantined" >&2
    exit 1
fi
# The idempotent re-registration inside gsmload 409s if the recovered
# registry bytes drifted; -verify re-checks every answer.
"$TMP/gsmload" -addr "$ADDR" -clients 8 -n "$N" -mode session -verify
# The bulk-ingested graph from phase 1d must survive the crash: its
# landing was WAL-logged before the SIGKILL.
if ! curl -sf "http://$ADDR/v1/graphs/bulk" > /dev/null; then
    echo "chaos-smoke: bulk-ingested graph lost across the crash" >&2
    exit 1
fi
# The recovered mapping must be the registry's only one ("torn" was never
# acknowledged and must not resurface).
if curl -sf "http://$ADDR/v1/mappings/torn" > /dev/null 2>&1; then
    echo "chaos-smoke: unacknowledged registration resurfaced after crash" >&2
    exit 1
fi

echo "chaos-smoke: draining gsmd"
kill -TERM "$GSMD_PID"
wait "$GSMD_PID"
echo "chaos-smoke: OK"
