#!/usr/bin/env sh
# ingest-smoke.sh — end-to-end smoke test of the relational bulk-ingestion
# path.
#
# Generates the synthetic customer/product/orders dataset with
# `gsm genrel` (CSV files + schema + a SQLite image), ingests it twice
# with `gsm ingest` — once from the CSV files, once from the SQLite
# database — and demands byte-for-byte identical graphs. Then boots gsmd,
# streams the same CSV payloads through POST /v1/graphs/{name}/ingest,
# checks the NDJSON progress/done contract, verifies the landed graph's
# node/edge counts against the CLI load, replays the request to prove
# idempotence, and finally registers a mapping over the direct-mapped
# labels and runs a certain-answer query whose count must equal the
# generated orders rows (every order has a customer).
#
# Usage: scripts/ingest-smoke.sh [orders] (default 400)
set -eu

ORDERS="${1:-400}"
CUSTOMERS=$((ORDERS / 4))
PRODUCTS=$((ORDERS / 10))
TMP="$(mktemp -d)"
GSMD_PID=""
trap 'kill "$GSMD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "ingest-smoke: building gsm and gsmd"
go build -o "$TMP/gsm" ./cmd/gsm
go build -o "$TMP/gsmd" ./cmd/gsmd

echo "ingest-smoke: generating dataset ($CUSTOMERS customers, $PRODUCTS products, $ORDERS orders)"
"$TMP/gsm" genrel -dir "$TMP/data" -customers "$CUSTOMERS" -products "$PRODUCTS" \
    -orders "$ORDERS" -seed 18 -sqlite "$TMP/data.sqlite"

echo "ingest-smoke: CSV and SQLite ingests must agree byte-for-byte"
"$TMP/gsm" ingest -schema "$TMP/data/schema.txt" -batch 256 -o "$TMP/from-csv.txt" > "$TMP/report.txt"
"$TMP/gsm" ingest -sqlite "$TMP/data.sqlite" -batch 256 -o "$TMP/from-sqlite.txt" > /dev/null
cmp "$TMP/from-csv.txt" "$TMP/from-sqlite.txt"
cat "$TMP/report.txt"
NODES="$(sed -n 's/.*-> \([0-9]*\) nodes.*/\1/p' "$TMP/report.txt")"
EDGES="$(sed -n 's/.*nodes, \([0-9]*\) edges.*/\1/p' "$TMP/report.txt")"
if [ -z "$NODES" ] || [ -z "$EDGES" ]; then
    echo "ingest-smoke: could not parse the CLI load report" >&2
    exit 1
fi

echo "ingest-smoke: booting gsmd"
"$TMP/gsmd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -state-dir "$TMP/state" &
GSMD_PID=$!
i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "ingest-smoke: gsmd did not write $TMP/addr in time" >&2
        exit 1
    fi
    if ! kill -0 "$GSMD_PID" 2>/dev/null; then
        echo "ingest-smoke: gsmd exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "ingest-smoke: gsmd up at $ADDR"

# JSON-escape a file: backslashes and quotes escaped, newlines folded to \n.
json_escape() {
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$1" | awk '{printf "%s\\n", $0}'
}
{
    printf '{"schema":"%s","batch_size":256,"tables":{' "$(json_escape "$TMP/data/schema.txt")"
    printf '"customer":"%s",' "$(json_escape "$TMP/data/customer.csv")"
    printf '"product":"%s",' "$(json_escape "$TMP/data/product.csv")"
    printf '"orders":"%s"}}' "$(json_escape "$TMP/data/orders.csv")"
} > "$TMP/req.json"

echo "ingest-smoke: streaming ingest through POST /v1/graphs/rel/ingest"
curl -sf -X POST "http://$ADDR/v1/graphs/rel/ingest" \
    --data-binary @"$TMP/req.json" > "$TMP/stream.ndjson"
if ! tail -n 1 "$TMP/stream.ndjson" | grep -q '"done":true'; then
    echo "ingest-smoke: stream did not end in a done chunk:" >&2
    tail -n 3 "$TMP/stream.ndjson" >&2
    exit 1
fi
if [ "$(wc -l < "$TMP/stream.ndjson")" -lt 2 ]; then
    echo "ingest-smoke: expected progress chunks before the terminal one" >&2
    exit 1
fi
if ! tail -n 1 "$TMP/stream.ndjson" | grep -q "\"nodes\":$NODES,\"edges\":$EDGES"; then
    echo "ingest-smoke: landed graph diverged from the CLI load ($NODES nodes / $EDGES edges):" >&2
    tail -n 1 "$TMP/stream.ndjson" >&2
    exit 1
fi

echo "ingest-smoke: idempotent replay"
curl -sf -X POST "http://$ADDR/v1/graphs/rel/ingest" \
    --data-binary @"$TMP/req.json" | tail -n 1 | grep -q '"done":true'

echo "ingest-smoke: certain-answer query over the landed graph"
curl -sf -X POST "http://$ADDR/v1/mappings" \
    -d '{"name":"rel","text":"rule orders#customer -> placed-by\n"}' > /dev/null
COUNT="$(curl -sf -X POST "http://$ADDR/v1/query" \
    -d '{"mapping":"rel","graph":"rel","query":"placed-by","lang":"rpq"}' \
    | grep -o '"count":[0-9]*' | head -n 1 | cut -d: -f2)"
if [ "$COUNT" != "$ORDERS" ]; then
    echo "ingest-smoke: placed-by answers = $COUNT, want $ORDERS (one per order)" >&2
    exit 1
fi

echo "ingest-smoke: draining gsmd"
kill -TERM "$GSMD_PID"
wait "$GSMD_PID"
echo "ingest-smoke: OK"
