#!/usr/bin/env sh
# overload-smoke.sh — end-to-end drill of the resource governor.
#
# Boots gsmd with a single admission slot, a bounded queue, a memory budget
# and a 25ms injected service latency (fault point server.handler, hit
# after admission while the slot is held), then proves the overload claims
# from docs/SERVER.md:
#
#   1. Tenant fairness: a greedy tenant saturates the server from 32
#      closed-loop clients while a polite tenant replays a verified stream.
#      Deficit-weighted round robin must keep the polite tenant's goodput
#      at a healthy fraction of its isolated baseline (the design point is
#      1/2 — equal weights alternate the slot grants — asserted with
#      headroom for load-generator noise), and every polite answer must
#      stay byte-for-byte correct. The greedy tenant must be shed (503
#      overloaded), visible per tenant in /v1/stats. The injected latency
#      makes the slot, not the host's CPU, the contended resource, so the
#      assertion holds on a single-core runner.
#   2. Open-loop overload: gsmload -rate replays Poisson arrivals at ~5x
#      capacity; offered load is independent of server latency, so the
#      governor must shed hard — and the report must show the
#      offered/goodput split, a non-zero shed count and zero verification
#      mismatches. Degradation is shedding, never wrong answers.
#   3. Memory governance: /v1/stats must report resident backend bytes
#      within the boot-time budget, with the per-tenant admission section
#      present.
#
# Usage: scripts/overload-smoke.sh [polite requests] (default 120)
set -eu

N="${1:-120}"
BUDGET=268435456 # 256 MiB: comfortably above the demo backend
TMP="$(mktemp -d)"
GSMD_PID=""
LOAD_PID=""
trap 'kill -9 "$GSMD_PID" "$LOAD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "overload-smoke: building gsmd and gsmload"
go build -o "$TMP/gsmd" ./cmd/gsmd
go build -o "$TMP/gsmload" ./cmd/gsmload

# One admission slot, a short queue and a 25ms injected service time:
# contention is guaranteed whatever the host's speed, because the greedy
# flood keeps more requests in flight than slot + queue can hold, and the
# slot (not the CPU) is what everyone is waiting for.
"$TMP/gsmd" -demo -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
    -max-inflight 1 -queue-depth 8 -mem-budget "$BUDGET" \
    -faults 'server.handler=latency:p=1:ms=25' &
GSMD_PID=$!
i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "overload-smoke: gsmd did not write $TMP/addr in time" >&2
        exit 1
    fi
    if ! kill -0 "$GSMD_PID" 2>/dev/null; then
        echo "overload-smoke: gsmd exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "overload-smoke: gsmd up at $ADDR (1 slot, queue 8, budget $BUDGET bytes, 25ms injected latency)"

# jget FILE KEY: first numeric value of "KEY": N in a gsmload JSON report.
jget() {
    sed -n 's/.*"'"$2"'": *\([0-9.][0-9.]*\).*/\1/p' "$1" | head -n 1
}

echo "overload-smoke: phase 1 — polite tenant baseline, isolated"
"$TMP/gsmload" -addr "$ADDR" -tenant polite -clients 2 -n "$N" \
    -mode session -verify -json "$TMP/polite0.json"
G0="$(jget "$TMP/polite0.json" requests_per_sec)"

echo "overload-smoke: phase 2 — polite tenant under a greedy flood"
# The flood: closed-loop, far more clients than slot + queue, and a
# request count it will never finish — killed once the polite measurement
# is done. Its own report is irrelevant; its pressure is not. Shed clients
# back off per the server's Retry-After, so the flood saturates the queue
# without degenerating into a CPU-burning refusal hot loop.
"$TMP/gsmload" -addr "$ADDR" -tenant greedy -clients 32 -n 1000000 \
    -mode session -max-error-rate 1 > /dev/null 2>&1 &
LOAD_PID=$!
sleep 2
"$TMP/gsmload" -addr "$ADDR" -tenant polite -clients 2 -n "$N" \
    -mode session -verify -json "$TMP/polite1.json"
G1="$(jget "$TMP/polite1.json" requests_per_sec)"
kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
LOAD_PID=""

echo "overload-smoke: polite goodput isolated $G0 req/s, under flood $G1 req/s"
awk -v g1="$G1" -v g0="$G0" 'BEGIN { exit !(g1 >= 0.3 * g0) }' || {
    echo "overload-smoke: polite goodput under flood ($G1) fell below 30% of isolated ($G0); fairness is broken" >&2
    exit 1
}

STATS="$(curl -sf "http://$ADDR/v1/stats")"
GREEDY_SHED="$(echo "$STATS" | sed -n 's/.*"tenant": *"greedy"[^}]*"shed": *\([0-9][0-9]*\).*/\1/p' | head -n 1)"
if [ -z "$GREEDY_SHED" ] || [ "$GREEDY_SHED" -eq 0 ]; then
    echo "overload-smoke: greedy tenant was never shed under flood: $STATS" >&2
    exit 1
fi
echo "overload-smoke: greedy tenant shed $GREEDY_SHED requests, polite tenant shed 0"

echo "overload-smoke: phase 3 — open-loop Poisson arrivals at ~5x capacity"
"$TMP/gsmload" -addr "$ADDR" -tenant burst -clients 8 -rate 200 -n 400 \
    -mode session -verify -retries 2 -max-error-rate 1 -json "$TMP/open.json"
OFFERED="$(jget "$TMP/open.json" offered_per_sec)"
GOODPUT="$(jget "$TMP/open.json" goodput_per_sec)"
OPEN_SHED="$(jget "$TMP/open.json" shed)"
if [ -z "$OFFERED" ] || [ -z "$GOODPUT" ]; then
    echo "overload-smoke: open-loop report lacks offered/goodput split:" >&2
    cat "$TMP/open.json" >&2
    exit 1
fi
if [ -z "$OPEN_SHED" ] || [ "$OPEN_SHED" = "0" ]; then
    echo "overload-smoke: open-loop run at 5x capacity was never shed:" >&2
    cat "$TMP/open.json" >&2
    exit 1
fi
echo "overload-smoke: open loop offered $OFFERED req/s, goodput $GOODPUT req/s, shed $OPEN_SHED, 0 mismatches"

echo "overload-smoke: phase 4 — memory budget in /v1/stats"
STATS="$(curl -sf "http://$ADDR/v1/stats")"
RESIDENT="$(echo "$STATS" | sed -n 's/.*"resident_bytes": *\([0-9][0-9]*\).*/\1/p' | head -n 1)"
if [ -z "$RESIDENT" ] || [ "$RESIDENT" -le 0 ] || [ "$RESIDENT" -gt "$BUDGET" ]; then
    echo "overload-smoke: resident_bytes '$RESIDENT' missing or outside (0, $BUDGET]: $STATS" >&2
    exit 1
fi
echo "$STATS" | grep -q '"tenants"' || {
    echo "overload-smoke: /v1/stats has no per-tenant admission section: $STATS" >&2
    exit 1
}
echo "overload-smoke: resident $RESIDENT bytes within budget $BUDGET"

echo "overload-smoke: draining gsmd"
kill -TERM "$GSMD_PID"
wait "$GSMD_PID"
echo "overload-smoke: OK"
