#!/usr/bin/env sh
# server-smoke.sh — end-to-end smoke test of the serving stack.
#
# Builds gsmd and gsmload, boots gsmd with the demo (workload.Serving) pair
# on a free port, replays requests from concurrent clients with gsmload
# (which byte-for-byte verifies every response against the embedded
# repro.Session path), and fails on any request error or zero answers.
# gsmload exits non-zero on errors or an empty run, so this script's exit
# code is the verdict. Finishes by exercising graceful drain via SIGTERM.
#
# Usage: scripts/server-smoke.sh [requests] (default 100)
set -eu

N="${1:-100}"
TMP="$(mktemp -d)"
trap 'kill "$GSMD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "server-smoke: building gsmd and gsmload"
go build -o "$TMP/gsmd" ./cmd/gsmd
go build -o "$TMP/gsmload" ./cmd/gsmload

"$TMP/gsmd" -demo -addr 127.0.0.1:0 -addr-file "$TMP/addr" &
GSMD_PID=$!

# Wait for the server to write its bound address (it listens before serving).
i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: gsmd did not write $TMP/addr in time" >&2
        exit 1
    fi
    if ! kill -0 "$GSMD_PID" 2>/dev/null; then
        echo "server-smoke: gsmd exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "server-smoke: gsmd up at $ADDR, replaying $N requests"

"$TMP/gsmload" -addr "$ADDR" -clients 8 -n "$N" -mode session -verify

echo "server-smoke: draining gsmd"
kill -TERM "$GSMD_PID"
wait "$GSMD_PID"
echo "server-smoke: OK"
