package repro

// Randomized end-to-end cross-validation of the snapshot/bitset evaluation
// pipeline against the sequential reference, over the internal/workload
// generators: random source graphs, random relational mappings and random
// REE queries. This is the top-level guarantee that the interned kernels,
// the dense answer bitmaps and the lock-free frontier sharding compute
// exactly the certain answers of the Theorem 4 algorithm.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/ree"
	"repro/internal/workload"
)

func TestWorkloadCertainAnswerCrossValidation(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 8; seed++ {
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: 40, Edges: 120, Labels: []string{"a", "b"}, Values: 8, Seed: seed,
		})
		m := workload.RandomRelationalMapping(workload.MappingSpec{
			SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q", "r"},
			Rules: 3, MaxWordLen: 2, Seed: seed,
		})
		var queries []core.Query
		for qi := int64(0); qi < 3; qi++ {
			queries = append(queries, ree.New(workload.RandomREEQuery(workload.QuerySpec{
				Labels: []string{"p", "q", "r"}, Depth: 3, AllowNeq: true, Seed: seed*10 + qi,
			})))
		}

		want := make([]*core.Answers, len(queries))
		for i, q := range queries {
			w, err := core.CertainNull(m, gs, q)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = w
		}
		for _, workers := range []int{1, 4} {
			got, err := engine.EvalOpts(ctx, m, gs, engine.Options{Workers: workers}, queries...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range queries {
				if !got[i].Equal(want[i]) {
					t.Fatalf("seed %d workers %d query %d: engine answers differ\n got: %v\nwant: %v",
						seed, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWorkloadEvalSnapshotStability checks that evaluating through the
// engine leaves the universal solution's snapshot intact and that repeated
// evaluation of the same batch is deterministic.
func TestWorkloadEvalSnapshotStability(t *testing.T) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 30, Edges: 90, Labels: []string{"a", "b"}, Values: 6, Seed: 99,
	})
	m := core.NewMapping(core.R("a", "p q"), core.R("b", "r"))
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	snap := u.Snapshot()
	if snap == nil {
		t.Fatal("UniversalSolution must return a frozen graph")
	}
	q := ree.MustParseQuery("(p q)= | r")
	first := q.Eval(u, datagraph.SQLNulls)
	for i := 0; i < 3; i++ {
		if !q.Eval(u, datagraph.SQLNulls).Equal(first) {
			t.Fatal("repeated evaluation diverged")
		}
	}
	if u.Snapshot() != snap {
		t.Fatal("evaluation must not rebuild the cached snapshot")
	}
}
