# Single source of truth for the checks CI runs: .github/workflows/ci.yml
# invokes exactly these targets, so a green `make ci` locally means a green
# pipeline.

GO ?= go

.PHONY: build test test-race bench bench-smoke bench-json bench-diff bench-shard lint fmt vet api-check api-update serve-smoke chaos-smoke shard-smoke overload-smoke ingest-smoke docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark pass (slow; regenerates every experiment table).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) run ./cmd/gsmbench -quick

# Seconds-long smoke pass for CI: one iteration per benchmark plus a
# time-boxed gsmbench run.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/gsmbench -quick -timeout 30s

# Machine-readable benchmark report (CI uploads it as a BENCH_*.json
# artifact so the perf trajectory accumulates run over run).
bench-json:
	$(GO) run ./cmd/gsmbench -quick -timeout 30s -json > BENCH_smoke.json

# Sharded-execution scaling report (E17 only, full workloads): the shards ×
# GOMAXPROCS grid at 10^6/10^7 edges with per-cell answer cross-checks.
# Slow by design; the quick variant runs inside bench-smoke/bench-json.
bench-shard:
	$(GO) run ./cmd/gsmbench -exp E17 -json > BENCH_shard.json

# Per-experiment wall-clock delta between two bench-json reports (CI feeds
# it the previous run's artifact): make bench-diff OLD=a.json NEW=b.json
bench-diff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Public-API surface guard: the exported facade (repro package) must match
# the committed api.txt golden, so PRs can't silently break downstream
# users. After an intentional API change: make api-update && commit api.txt.
api-check:
	$(GO) run ./cmd/apicheck

api-update:
	$(GO) run ./cmd/apicheck -write

# End-to-end serving smoke: build gsmd+gsmload, boot the demo server on a
# free port, replay requests (byte-for-byte verified against the embedded
# session path), then drain gracefully. See scripts/server-smoke.sh.
serve-smoke:
	sh scripts/server-smoke.sh

# Crash/fault drill: boot gsmd with a state directory and fault injection,
# replay verified load under injected errors/panics/latency, tear a WAL
# append, SIGKILL, and prove byte-for-byte registry recovery. See
# scripts/chaos-smoke.sh.
chaos-smoke:
	sh scripts/chaos-smoke.sh

# Relational bulk-ingestion smoke: generate a CSV+SQLite dataset with
# `gsm genrel`, ingest both with `gsm ingest` (byte-for-byte equal), then
# stream the same payloads through gsmd's POST /v1/graphs/{name}/ingest
# and verify the NDJSON contract, idempotent replay and a certain-answer
# query over the landed graph. See scripts/ingest-smoke.sh.
ingest-smoke:
	sh scripts/ingest-smoke.sh

# Sharded serving smoke: boot gsmd -demo -shards 4 and verify every
# response byte-for-byte against the embedded unsharded session path, then
# assert /v1/stats exposes the shard layout. See scripts/shard-smoke.sh.
shard-smoke:
	sh scripts/shard-smoke.sh

# Overload/fairness drill: boot gsmd with one admission slot, a bounded
# queue and a memory budget; assert a polite tenant keeps a healthy share
# of its isolated goodput under a greedy flood (byte-for-byte verified),
# exercise open-loop Poisson arrivals, and check resident bytes stay within
# budget. See scripts/overload-smoke.sh.
overload-smoke:
	sh scripts/overload-smoke.sh

# Documentation link check: every local markdown link in README.md and
# docs/*.md must resolve to an existing file.
docs-check:
	$(GO) test -run TestDocsLinks .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

lint: fmt vet

ci: build lint api-check docs-check test-race serve-smoke shard-smoke chaos-smoke overload-smoke ingest-smoke bench-smoke bench-json
