package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Good enough for the
// docs in this repo; reference-style links are not used here.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinks verifies that every local markdown link in README.md and
// docs/*.md points at a file that exists, so the documentation layer cannot
// silently rot as files move. CI runs this via `make docs-check` (it is also
// part of the ordinary test suite).
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 4 {
		t.Fatalf("expected README.md plus at least 3 files under docs/, got %v", files)
	}

	checked := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			// Drop any fragment; a bare "#anchor" links within the same file.
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken local link %q (resolved to %s): %v", f, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no local links found across README.md and docs/ — the check is vacuous")
	}
}
