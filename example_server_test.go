package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/internal/server"
)

// Example_serverClient is the third quickstart path (after the embedded
// library and the gsm CLI): talking to the multi-tenant HTTP server that
// cmd/gsmd runs. The server keeps one shared session backend per (mapping,
// graph) pair, so every client session after the first reuses the memoized
// universal solution. docs/SERVER.md documents the full API.
func Example_serverClient() {
	// In production this is a running gsmd; here an in-process instance.
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body, out any) {
		b, _ := json.Marshal(body)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(b))
		req.Header.Set("X-Tenant", "acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var eb server.ErrorBody
			json.NewDecoder(resp.Body).Decode(&eb)
			panic(fmt.Sprintf("%s: %d %s", path, resp.StatusCode, eb.Error))
		}
		json.NewDecoder(resp.Body).Decode(out)
	}

	// Register a mapping and a source graph under names, once.
	var mi server.MappingInfo
	post("/v1/mappings", server.RegisterMappingRequest{
		Name: "social", Text: "rule knows -> follows follows\n"}, &mi)
	var gi server.GraphInfo
	post("/v1/graphs", server.RegisterGraphRequest{
		Name: "people", Text: "node ann 30\nnode bob 25\nedge ann knows bob\n"}, &gi)
	fmt.Printf("registered %s (%d rules) over %s (%d nodes)\n", mi.Name, mi.Rules, gi.Name, gi.Nodes)

	// Open a session: certain-answer calls on it share the memoized
	// universal solution with every other session on the same pair.
	var si server.SessionInfo
	post("/v1/sessions", server.CreateSessionRequest{Mapping: "social", Graph: "people"}, &si)

	var qr server.QueryResponse
	post("/v1/sessions/"+si.ID+"/query", server.QueryRequest{Query: "follows follows"}, &qr)
	for _, a := range qr.Answers {
		fmt.Printf("certain answer: %s(%s) -> %s(%s)\n", a.From.ID, a.From.Value, a.To.ID, a.To.Value)
	}

	// Output:
	// registered social (1 rules) over people (2 nodes)
	// certain answer: ann(30) -> bob(25)
}
