package repro

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/rpq"
)

// This file is the session-centric serving API: compile a mapping once,
// open a session against one source graph, and run an arbitrary stream of
// certain-answer calls that share the expensive artifacts — the universal
// solution, the least informative solution, dom(M, Gs), their interned
// snapshots and the per-snapshot lowered query programs — instead of
// rebuilding them per call. The shape mirrors database/sql: Compile is
// prepared-statement compilation for mappings, Session is the connection,
// PrepareQuery is the prepared query handle.
//
//	cm, err := repro.Compile(m)
//	s, err := repro.NewSession(cm, gs, repro.WithWorkers(8))
//	ans, err := s.CertainNull(ctx, q)          // builds the solution
//	ans2, err := s.CertainNull(ctx, q2)        // reuses it
//	for a, err := range s.CertainNullSeq(ctx, q3) { ... } // streams
//
// All session methods take a context first, are safe for concurrent use,
// and return errors wrapping the package's typed sentinels (ErrInfinite,
// ErrNoSolution, ErrBudgetExceeded, ErrCanceled, ErrBadOptions,
// ErrSourceMutated) for errors.Is/errors.As dispatch.

// CompiledMapping is a mapping compiled once for reuse across sessions: rule
// automata finalized, target words and classification precomputed. Immutable
// and safe for concurrent use.
type CompiledMapping = core.CompiledMapping

// Answer is one certain-answer tuple: a pair of source nodes (id, value).
type Answer = core.Answer

// Typed sentinel errors; every error returned by sessions (and the legacy
// free functions) wraps one of these.
var (
	// ErrInfinite: no finite universal solution exists (mapping not relational).
	ErrInfinite = core.ErrInfinite
	// ErrNoSolution: the mapping admits no solution for this source graph.
	ErrNoSolution = core.ErrNoSolution
	// ErrBudgetExceeded: a bounded exponential search hit its budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrCanceled: the context was canceled or timed out mid-evaluation.
	ErrCanceled = core.ErrCanceled
	// ErrBadOptions: an invalid option value, reported at construction.
	ErrBadOptions = core.ErrBadOptions
	// ErrSourceMutated: the source graph changed under a live session.
	ErrSourceMutated = core.ErrSourceMutated
)

// Compile precompiles a mapping for reuse: per-rule automata metadata,
// target words and classification are computed once, so sessions and
// repeated calls never re-derive them.
func Compile(m *Mapping) (*CompiledMapping, error) { return core.Compile(m) }

// MustCompile is Compile that panics on error.
func MustCompile(m *Mapping) *CompiledMapping { return core.MustCompile(m) }

// sessionConfig is the resolved option set of one session.
type sessionConfig struct {
	workers       int
	chunkSize     int
	maxNulls      int
	maxExpansions int
	maxChoices    int
	mode          CompareMode
	timeout       time.Duration
	shards        int
	policy        datagraph.PartitionPolicy
}

// Option configures a Session (functional options, validated at
// construction: invalid values surface as ErrBadOptions from NewSession).
type Option func(*sessionConfig) error

// WithWorkers sets the engine worker-pool size for parallel evaluation and
// the Proposition 5 choice sharding. Zero (the default) means GOMAXPROCS;
// negative is invalid.
func WithWorkers(n int) Option {
	return func(c *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: workers %d is negative", ErrBadOptions, n)
		}
		c.workers = n
		return nil
	}
}

// WithChunkSize sets the number of start nodes per frontier work item (and
// per streamed batch). Must be positive.
func WithChunkSize(n int) Option {
	return func(c *sessionConfig) error {
		if n <= 0 {
			return fmt.Errorf("%w: chunk size %d is not positive", ErrBadOptions, n)
		}
		c.chunkSize = n
		return nil
	}
}

// WithMaxNulls bounds the exponential exact search (CertainExact,
// CertainExactPair, CertainDataPathArbitrary). Must be positive.
func WithMaxNulls(n int) Option {
	return func(c *sessionConfig) error {
		if n <= 0 {
			return fmt.Errorf("%w: max nulls %d is not positive", ErrBadOptions, n)
		}
		c.maxNulls = n
		return nil
	}
}

// WithMaxExpansions bounds the Proposition 4 path enumeration. Must be
// positive.
func WithMaxExpansions(n int) Option {
	return func(c *sessionConfig) error {
		if n <= 0 {
			return fmt.Errorf("%w: max expansions %d is not positive", ErrBadOptions, n)
		}
		c.maxExpansions = n
		return nil
	}
}

// WithMaxChoices bounds the Proposition 5 word-choice enumeration. Must be
// positive.
func WithMaxChoices(n int) Option {
	return func(c *sessionConfig) error {
		if n <= 0 {
			return fmt.Errorf("%w: max choices %d is not positive", ErrBadOptions, n)
		}
		c.maxChoices = n
		return nil
	}
}

// WithCompareMode sets the comparison mode used by EvalSource (direct query
// evaluation over the source graph). The certain-answer algorithms fix their
// own modes as the paper requires and ignore this.
func WithCompareMode(mode CompareMode) Option {
	return func(c *sessionConfig) error {
		if mode != MarkedNulls && mode != SQLNulls {
			return fmt.Errorf("%w: unknown compare mode %v", ErrBadOptions, mode)
		}
		c.mode = mode
		return nil
	}
}

// WithShards sets the number of solution shards. With n > 1 the chase runs
// per shard in parallel and navigational RPQ certain-answer calls evaluate
// with shard-local kernels plus boundary-frontier exchange; answers are
// identical to the single-shard path. n = 1 (the default) short-circuits to
// the unsharded code path; n < 1 is invalid. The shard configuration is
// fixed at session creation — Derive rejects it.
func WithShards(n int) Option {
	return func(c *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("%w: shard count %d (want >= 1)", ErrBadOptions, n)
		}
		c.shards = n
		return nil
	}
}

// WithPartition selects the node→shard partitioning policy: "hash"
// (default) or "range". Unknown names are invalid. Like WithShards, the
// policy is fixed at session creation.
func WithPartition(policy string) Option {
	return func(c *sessionConfig) error {
		p, err := datagraph.ParsePartitionPolicy(policy)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
		c.policy = p
		return nil
	}
}

// WithTimeout bounds every session call: the call's context is wrapped with
// this deadline, and overruns surface as ErrCanceled wraps. Must be
// positive.
func WithTimeout(d time.Duration) Option {
	return func(c *sessionConfig) error {
		if d <= 0 {
			return fmt.Errorf("%w: timeout %v is not positive", ErrBadOptions, d)
		}
		c.timeout = d
		return nil
	}
}

// Session is a long-lived handle over one (compiled mapping, source graph)
// pair. It freezes the source graph once at construction and lazily
// memoizes — behind sync.Once gates — the universal solution, the least
// informative solution, dom(M, Gs) and the per-rule source query results,
// so an arbitrary concurrent stream of certain-answer calls shares them.
// Safe for concurrent use by any number of goroutines.
//
// The source graph must not be mutated while the session is live; sessions
// detect mutation via the graph's version counters and fail calls with
// ErrSourceMutated.
type Session struct {
	cm  *CompiledMapping
	gs  *Graph
	cfg sessionConfig
	mat *core.Materialization

	// metrics accumulates sharded-evaluation counters; shared (by pointer)
	// with derived sessions so the server's stats see all traffic against
	// one backend.
	metrics *shardMetrics

	topoV, valV uint64
}

// shardMetrics are the cumulative sharded-evaluation counters of a session
// family (a base session and everything derived from it).
type shardMetrics struct {
	rounds     atomic.Uint64
	crossPairs atomic.Uint64
}

func (m *shardMetrics) record(st engine.ExchangeStats) {
	m.rounds.Add(uint64(st.Rounds))
	m.crossPairs.Add(uint64(st.CrossPairs))
}

// NewSession opens a session for a compiled mapping over a source graph.
// Options are validated here (ErrBadOptions); the source graph is frozen
// once so every later evaluation shares its interned snapshot.
func NewSession(cm *CompiledMapping, gs *Graph, opts ...Option) (*Session, error) {
	if cm == nil {
		return nil, fmt.Errorf("%w: nil compiled mapping", ErrBadOptions)
	}
	if gs == nil {
		return nil, fmt.Errorf("%w: nil source graph", ErrBadOptions)
	}
	cfg := sessionConfig{chunkSize: 32, mode: MarkedNulls, shards: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	gs.Freeze()
	topoV, valV := gs.Versions()
	mat := core.NewMaterialization(cm, gs)
	if cfg.shards > 1 {
		var err error
		mat, err = core.NewMaterializationSharded(cm, gs,
			core.ShardOptions{Shards: cfg.shards, Policy: cfg.policy})
		if err != nil {
			return nil, err
		}
	}
	return &Session{
		cm:      cm,
		gs:      gs,
		cfg:     cfg,
		mat:     mat,
		metrics: &shardMetrics{},
		topoV:   topoV,
		valV:    valV,
	}, nil
}

// Mapping returns the session's compiled mapping.
func (s *Session) Mapping() *CompiledMapping { return s.cm }

// Derive returns a session over the same (compiled mapping, source graph)
// pair that shares this session's memoized artifacts — the universal
// solution, the least informative solution, dom(M, Gs) and the per-rule
// source results — but applies the given options on top of this session's
// configuration. Deriving is cheap (no materialization happens), so servers
// can keep one base session per (mapping, graph) pair and hand every tenant
// or request its own budgets, workers and timeout without paying for the
// solutions again. Invalid options surface as ErrBadOptions; the derived
// session is safe for concurrent use and independent of later Derive calls.
func (s *Session) Derive(opts ...Option) (*Session, error) {
	cfg := s.cfg
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	// The shard configuration shapes the memoized artifacts themselves, so
	// it is fixed when the base session materializes them.
	if cfg.shards != s.cfg.shards || cfg.policy != s.cfg.policy {
		return nil, fmt.Errorf("%w: shard configuration is fixed at session creation", ErrBadOptions)
	}
	d := *s
	d.cfg = cfg
	return &d, nil
}

// Source returns the session's source graph. Callers must not mutate it
// while the session is live.
func (s *Session) Source() *Graph { return s.gs }

// begin guards a session call: it rejects a mutated source graph and wraps
// the context with the configured timeout.
func (s *Session) begin(ctx context.Context) (context.Context, context.CancelFunc, error) {
	topoV, valV := s.gs.Versions()
	if topoV != s.topoV || valV != s.valV {
		return nil, nil, fmt.Errorf("repro: %w", ErrSourceMutated)
	}
	if s.cfg.timeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, s.cfg.timeout)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

func (s *Session) engineOpts() engine.Options {
	return engine.Options{Workers: s.cfg.workers, ChunkSize: s.cfg.chunkSize}
}

// navOf unwraps a query down to its navigational RPQ, when it is one —
// the query class the sharded exchange kernel evaluates. Prepared queries
// are unwrapped transparently.
func navOf(q Query) (*rpq.Query, bool) {
	for {
		switch v := q.(type) {
		case core.NavQuery:
			return v.Q, v.Q != nil
		case *PreparedQuery:
			q = v.q
		default:
			return nil, false
		}
	}
}

// shardedNav reports whether q should take the sharded exchange path.
func (s *Session) shardedNav(q Query) (*rpq.Query, bool) {
	if s.cfg.shards <= 1 {
		return nil, false
	}
	return navOf(q)
}

func (s *Session) exactOpts() ExactOptions {
	return ExactOptions{MaxNulls: s.cfg.maxNulls}
}

// UniversalSolution returns the memoized SQL-null universal solution
// (Section 7). The first call builds and freezes it; later calls — from any
// goroutine — share it. Callers must not mutate the returned graph.
func (s *Session) UniversalSolution(ctx context.Context) (*Graph, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return s.mat.UniversalCtx(ctx)
}

// LeastInformativeSolution returns the memoized fresh-value least
// informative solution (Section 8). Callers must not mutate it.
func (s *Session) LeastInformativeSolution(ctx context.Context) (*Graph, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return s.mat.LeastInformativeCtx(ctx)
}

// CertainNull computes 2ⁿ_M(Q, Gs) (Theorem 4) over the memoized universal
// solution, with the start frontier sharded across the worker pool.
func (s *Session) CertainNull(ctx context.Context, q Query) (*Answers, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if nav, ok := s.shardedNav(q); ok {
		ans, st, err := engine.CertainNullSharded(ctx, s.mat, nav, s.engineOpts())
		if err != nil {
			return nil, err
		}
		s.metrics.record(st)
		return ans, nil
	}
	u, err := s.mat.UniversalCtx(ctx)
	if err != nil {
		return nil, err
	}
	res, err := engine.EvalGraph(ctx, u, q, SQLNulls, s.engineOpts())
	if err != nil {
		return nil, err
	}
	return core.FilterNullAnswers(u, res), nil
}

// CertainLeastInformative computes 2_M(Q, Gs) for equality-only queries
// (Theorem 5) over the memoized least informative solution.
func (s *Session) CertainLeastInformative(ctx context.Context, q Query) (*Answers, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if nav, ok := s.shardedNav(q); ok {
		ans, st, err := engine.CertainLeastInformativeSharded(ctx, s.mat, nav, s.engineOpts())
		if err != nil {
			return nil, err
		}
		s.metrics.record(st)
		return ans, nil
	}
	li, err := s.mat.LeastInformativeCtx(ctx)
	if err != nil {
		return nil, err
	}
	res, err := engine.EvalGraph(ctx, li, q, MarkedNulls, s.engineOpts())
	if err != nil {
		return nil, err
	}
	return core.FilterDomAnswers(li, s.mat.DomIDs(), res), nil
}

// CertainExact computes 2_M(Q, Gs) exactly by the bounded exponential
// specialization search (Theorem 2's coNP bound), sharing the memoized
// universal solution. Budget overruns are ErrBudgetExceeded; the session's
// WithMaxNulls sets the bound.
func (s *Session) CertainExact(ctx context.Context, q Query) (*Answers, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return s.mat.CertainExact(ctx, q, s.exactOpts())
}

// CertainExactPair decides whether the single pair (from, to) is a certain
// answer, with the CertainExact semantics and early counterexample exit.
func (s *Session) CertainExactPair(ctx context.Context, q Query, from, to NodeID) (bool, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return false, err
	}
	defer cancel()
	return s.mat.CertainExactPair(ctx, q, from, to, s.exactOpts())
}

// CertainOneInequality decides one pair for paths-with-tests with at most
// one inequality in polynomial time (Proposition 4), sharing the memoized
// universal solution.
func (s *Session) CertainOneInequality(ctx context.Context, q *REEQuery, from, to NodeID) (bool, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return false, err
	}
	defer cancel()
	return s.mat.CertainOneInequality(ctx, q, from, to,
		core.OneNeqOptions{MaxExpansions: s.cfg.maxExpansions})
}

// CertainDataPathArbitrary decides one pair for a path-with-tests query
// under an arbitrary (possibly non-relational) GSM — the Proposition 5
// procedure — with the adversary's word choices sharded across the worker
// pool and bounded by WithMaxChoices/WithMaxNulls.
func (s *Session) CertainDataPathArbitrary(ctx context.Context, q *REEQuery, from, to NodeID) (bool, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return false, err
	}
	defer cancel()
	workers := s.cfg.workers
	if workers == 0 {
		// WithWorkers documents 0 as GOMAXPROCS; Prop5Options treats ≤ 1 as
		// sequential, so resolve here.
		workers = runtime.GOMAXPROCS(0)
	}
	return s.mat.CertainDataPathArbitrary(ctx, q, from, to, core.Prop5Options{
		MaxChoices: s.cfg.maxChoices,
		MaxNulls:   s.cfg.maxNulls,
		Workers:    workers,
	})
}

// Eval computes the Theorem 4 certain answers for every query concurrently
// — queries and frontiers sharded across the worker pool — over the
// memoized universal solution, returning one answer set per query,
// index-aligned.
func (s *Session) Eval(ctx context.Context, queries ...Query) ([]*Answers, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if s.cfg.shards > 1 {
		return s.evalSharded(ctx, queries)
	}
	u, err := s.mat.UniversalCtx(ctx)
	if err != nil {
		return nil, err
	}
	return engine.EvalSolution(ctx, u, s.engineOpts(), queries...)
}

// evalSharded routes the navigational queries of a batch through the
// exchange kernel and everything else through the merged solution, keeping
// the results index-aligned. The merged solution is only built when the
// batch actually contains non-navigational queries.
func (s *Session) evalSharded(ctx context.Context, queries []Query) ([]*Answers, error) {
	out := make([]*Answers, len(queries))
	var rest []Query
	var restIdx []int
	for i, q := range queries {
		nav, ok := navOf(q)
		if !ok {
			rest = append(rest, q)
			restIdx = append(restIdx, i)
			continue
		}
		ans, st, err := engine.CertainNullSharded(ctx, s.mat, nav, s.engineOpts())
		if err != nil {
			return nil, err
		}
		s.metrics.record(st)
		out[i] = ans
	}
	if len(rest) > 0 {
		u, err := s.mat.UniversalCtx(ctx)
		if err != nil {
			return nil, err
		}
		restOut, err := engine.EvalSolution(ctx, u, s.engineOpts(), rest...)
		if err != nil {
			return nil, err
		}
		for j, i := range restIdx {
			out[i] = restOut[j]
		}
	}
	return out, nil
}

// EvalSource evaluates one query directly over the frozen source graph
// (no mapping semantics) under the session's compare mode (WithCompareMode,
// default marked nulls), with the start frontier sharded across the worker
// pool.
func (s *Session) EvalSource(ctx context.Context, q Query) (*PairSet, error) {
	ctx, cancel, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if nav, ok := s.shardedNav(q); ok {
		ss := s.gs.FreezeSharded(s.cfg.shards, s.cfg.policy)
		res, st, err := engine.EvalSourceSharded(ctx, ss, nav, s.engineOpts())
		if err != nil {
			return nil, err
		}
		s.metrics.record(st)
		return res, nil
	}
	return engine.EvalGraph(ctx, s.gs, q, s.cfg.mode, s.engineOpts())
}

// CertainNullSeq streams the Theorem 4 certain answers as an iterator:
// the memoized universal solution is evaluated chunk by chunk, answers are
// yielded as each chunk completes, and breaking out of the range stops the
// remaining evaluation — the serving shape for callers that paginate or
// stop at the first hit. The second iterator value carries the error, if
// any, as the final yield.
func (s *Session) CertainNullSeq(ctx context.Context, q Query) iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		ctx, cancel, err := s.begin(ctx)
		if err != nil {
			yield(Answer{}, err)
			return
		}
		defer cancel()
		u, err := s.mat.UniversalCtx(ctx)
		if err != nil {
			yield(Answer{}, err)
			return
		}
		keep := func(p datagraph.Pair) (Answer, bool) {
			from, to := u.Node(p.From), u.Node(p.To)
			if from.IsNullNode() || to.IsNullNode() {
				return Answer{}, false
			}
			return Answer{From: from, To: to}, true
		}
		s.streamGraph(ctx, u, q, SQLNulls, keep, yield)
	}
}

// CertainLeastInformativeSeq streams the Theorem 5 certain answers, chunk
// by chunk over the memoized least informative solution.
func (s *Session) CertainLeastInformativeSeq(ctx context.Context, q Query) iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		ctx, cancel, err := s.begin(ctx)
		if err != nil {
			yield(Answer{}, err)
			return
		}
		defer cancel()
		li, err := s.mat.LeastInformativeCtx(ctx)
		if err != nil {
			yield(Answer{}, err)
			return
		}
		dom := s.mat.DomIDs()
		keep := func(p datagraph.Pair) (Answer, bool) {
			from, to := li.Node(p.From), li.Node(p.To)
			if _, ok := dom[from.ID]; !ok {
				return Answer{}, false
			}
			if _, ok := dom[to.ID]; !ok {
				return Answer{}, false
			}
			return Answer{From: from, To: to}, true
		}
		s.streamGraph(ctx, li, q, MarkedNulls, keep, yield)
	}
}

// streamGraph evaluates q over g one start-node chunk at a time, yielding
// the kept answers of each chunk in deterministic order. Queries that
// cannot evaluate per start node fall back to one materialized evaluation.
func (s *Session) streamGraph(ctx context.Context, g *Graph, q Query, mode CompareMode,
	keep func(datagraph.Pair) (Answer, bool), yield func(Answer, error) bool) {

	re, ranged := q.(core.RangeEvaluator)
	if !ranged {
		if err := ctx.Err(); err != nil {
			yield(Answer{}, core.Canceled(err))
			return
		}
		for _, p := range q.Eval(g, mode).Sorted() {
			if a, ok := keep(p); ok {
				if !yield(a, nil) {
					return
				}
			}
		}
		return
	}
	g.Freeze()
	n := g.NumNodes()
	var buf []datagraph.Pair
	for lo := 0; lo < n; lo += s.cfg.chunkSize {
		if err := ctx.Err(); err != nil {
			yield(Answer{}, core.Canceled(err))
			return
		}
		hi := lo + s.cfg.chunkSize
		if hi > n {
			hi = n
		}
		buf = buf[:0]
		re.EvalRange(g, lo, hi, mode, func(u, v int) {
			buf = append(buf, datagraph.Pair{From: u, To: v})
		})
		for _, p := range buf {
			if a, ok := keep(p); ok {
				if !yield(a, nil) {
					return
				}
			}
		}
	}
}

// ShardFragmentStat describes one materialized solution fragment.
type ShardFragmentStat struct {
	// Nodes and Edges are the fragment graph's sizes (owned nodes, ghosts
	// and fresh chase nodes together).
	Nodes, Edges int
	// Nulls is the fragment's share of the chase's fresh-node counter.
	Nulls int
}

// ShardStats reports a session's shard configuration, cumulative exchange
// counters, and — when the sharded universal solution has been built —
// per-fragment sizes. Counters are shared with sessions derived from the
// same base, so a server backend observes all of its tenants' traffic.
type ShardStats struct {
	// Shards is the configured shard count (1 = unsharded).
	Shards int
	// Policy is the partitioning policy name ("hash" or "range").
	Policy string
	// ExchangeRounds is the total boundary-exchange rounds run so far.
	ExchangeRounds uint64
	// BoundaryPairs is the total (node, NFA-state) pairs handed across
	// shard boundaries so far.
	BoundaryPairs uint64
	// Fragments describes the sharded universal solution's fragments; nil
	// until the first sharded certain-answer call materializes them.
	Fragments []ShardFragmentStat
}

// ShardStats returns the session's sharding counters. It never triggers
// materialization: fragment sizes appear only once some call has built the
// sharded solution.
func (s *Session) ShardStats() ShardStats {
	st := ShardStats{Shards: s.cfg.shards, Policy: s.cfg.policy.String()}
	if s.cfg.shards <= 1 {
		return st
	}
	st.ExchangeRounds = s.metrics.rounds.Load()
	st.BoundaryPairs = s.metrics.crossPairs.Load()
	if ss := s.mat.UniversalShardedCached(); ss != nil {
		st.Fragments = make([]ShardFragmentStat, len(ss.Shards))
		for i, sh := range ss.Shards {
			st.Fragments[i] = ShardFragmentStat{
				Nodes: sh.G.NumNodes(),
				Edges: sh.G.NumEdges(),
				Nulls: sh.Nulls,
			}
		}
	}
	return st
}

// MemoryBytes estimates the resident footprint of the session's memoized
// artifacts — solutions, sharded fragments, source pair sets, interned
// snapshots — in bytes. The estimate is deterministic and approximate
// (allocator overhead is folded into flat per-entry constants), never
// triggers materialization, and is shared by every session derived from
// the same base: Derive reuses the materialization, so the bytes are the
// pair's, not the handle's. Serving layers use it to enforce a global
// memory budget across backends.
func (s *Session) MemoryBytes() int64 { return s.mat.SizeBytes() }

// PreparedQuery is a reusable query handle for sessions. Preparation pins
// the parsed form once; the per-snapshot lowered program (interned labels,
// dead transitions dropped) is cached on the underlying query the first
// time it runs against a session's solution snapshot, and Bind warms that
// cache eagerly. A PreparedQuery implements Query — pass it anywhere a
// query is accepted, including across sessions.
type PreparedQuery struct {
	q Query
	// whole caches the last whole-graph evaluation, so the frontier-shard
	// fallbacks below (for queries without their own EvalFrom/EvalRange)
	// cost one Eval per (graph, mode) instead of one per chunk.
	whole atomic.Pointer[preparedEval]
}

type preparedEval struct {
	g           *Graph
	topoV, valV uint64
	mode        CompareMode
	res         *PairSet
}

// PrepareQuery wraps a query for reuse. The same prepared query may be used
// by any number of sessions and goroutines.
func PrepareQuery(q Query) *PreparedQuery { return &PreparedQuery{q: q} }

// wholeEval evaluates the underlying query over the full graph, reusing the
// cached result while the same (graph, mode) keeps arriving unmutated.
func (p *PreparedQuery) wholeEval(g *Graph, mode CompareMode) *PairSet {
	topoV, valV := g.Versions()
	if pe := p.whole.Load(); pe != nil && pe.g == g && pe.mode == mode &&
		pe.topoV == topoV && pe.valV == valV {
		return pe.res
	}
	res := p.q.Eval(g, mode)
	p.whole.Store(&preparedEval{g: g, topoV: topoV, valV: valV, mode: mode, res: res})
	return res
}

// Unwrap returns the underlying query.
func (p *PreparedQuery) Unwrap() Query { return p.q }

// Bind eagerly materializes the session's universal solution and lowers the
// query onto its snapshot, so the first CertainNull call pays nothing. It
// is optional — evaluation lazily does the same work.
func (p *PreparedQuery) Bind(ctx context.Context, s *Session) error {
	u, err := s.UniversalSolution(ctx)
	if err != nil {
		return err
	}
	if re, ok := p.q.(core.RangeEvaluator); ok {
		re.EvalRange(u, 0, 0, SQLNulls, func(int, int) {})
	}
	return nil
}

// Eval implements Query.
func (p *PreparedQuery) Eval(g *Graph, mode CompareMode) *PairSet {
	return p.q.Eval(g, mode)
}

// EvalFrom implements core.FromEvaluator, falling back to a filtered (and
// cached, see wholeEval) full evaluation when the underlying query cannot
// start from a single node.
func (p *PreparedQuery) EvalFrom(g *Graph, u int, mode CompareMode) []int {
	if fe, ok := p.q.(core.FromEvaluator); ok {
		return fe.EvalFrom(g, u, mode)
	}
	var out []int
	p.wholeEval(g, mode).Each(func(pr datagraph.Pair) {
		if pr.From == u {
			out = append(out, pr.To)
		}
	})
	return out
}

// EvalRange implements core.RangeEvaluator, forwarding to the underlying
// query's snapshot kernel when it has one. Queries without one fall back to
// the cached whole-graph result, so a chunked schedule still pays for a
// single evaluation.
func (p *PreparedQuery) EvalRange(g *Graph, lo, hi int, mode CompareMode, emit func(u, v int)) {
	if re, ok := p.q.(core.RangeEvaluator); ok {
		re.EvalRange(g, lo, hi, mode, emit)
		return
	}
	p.wholeEval(g, mode).Each(func(pr datagraph.Pair) {
		if pr.From >= lo && pr.From < hi {
			emit(pr.From, pr.To)
		}
	})
}

// StartLabels forwards the frontier metadata when available; otherwise it
// conservatively reports a non-exhaustive label set (no pruning).
func (p *PreparedQuery) StartLabels() ([]string, bool) {
	if fq, ok := p.q.(interface{ StartLabels() ([]string, bool) }); ok {
		return fq.StartLabels()
	}
	return nil, false
}

// AcceptsEmptyPath forwards the frontier metadata when available; otherwise
// it conservatively reports true (no pruning).
func (p *PreparedQuery) AcceptsEmptyPath() bool {
	if fq, ok := p.q.(interface{ AcceptsEmptyPath() bool }); ok {
		return fq.AcceptsEmptyPath()
	}
	return true
}
