package repro

import "testing"

// TestFacadeEndToEnd exercises the public API exactly as the package
// documentation advertises.
func TestFacadeEndToEnd(t *testing.T) {
	gs := NewGraph()
	gs.MustAddNode("ann", V("30"))
	gs.MustAddNode("bob", V("25"))
	gs.MustAddEdge("ann", "knows", "bob")

	m := NewMapping(R("knows", "follows follows"))
	if !m.IsLAV() || !m.IsRelational() {
		t.Fatal("classification broken through facade")
	}

	u, err := UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 3 {
		t.Fatalf("universal solution nodes = %d", u.NumNodes())
	}
	li, err := LeastInformativeSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	if li.NumNodes() != 3 {
		t.Fatalf("least informative nodes = %d", li.NumNodes())
	}

	q := MustREE("(follows follows)!=")
	ans, err := CertainNull(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Has("ann", "bob") {
		t.Fatalf("certain = %v", ans)
	}
	exact, err := CertainExact(m, gs, q, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(exact) {
		t.Fatal("facade algorithms disagree")
	}
	liAns, err := CertainLeastInformative(m, gs, MustREE("follows follows"))
	if err != nil {
		t.Fatal(err)
	}
	if !liAns.Has("ann", "bob") {
		t.Fatal("least-informative missing navigational answer")
	}
	got, err := CertainOneInequality(m, gs, q, "ann", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("one-inequality algorithm disagrees")
	}
	got5, err := CertainDataPathArbitrary(m, gs, q, "ann", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !got5 {
		t.Fatal("Proposition 5 procedure disagrees")
	}
}

func TestFacadeParsers(t *testing.T) {
	g, err := ParseGraph("node a 1\nnode b 2\nedge a x b\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatal("graph parser broken")
	}
	m, err := ParseMapping("rule x -> y z\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules) != 1 {
		t.Fatal("mapping parser broken")
	}
	if _, err := ParseREE("(a b)="); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseREM("!x.(a[x=])"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRPQ("a*"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRPQ("(("); err == nil {
		t.Fatal("bad RPQ accepted")
	}
	phi, err := ParseGXNode("<x=>")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := ParseGXPath("x (x- x)=")
	if err != nil {
		t.Fatal(err)
	}
	if sat := EvalGXNode(g, phi, MarkedNulls); len(sat) != 0 {
		t.Fatalf("⟨x=⟩ on distinct values = %v", sat)
	}
	if rel := EvalGXPath(g, alpha, MarkedNulls); rel.Len() == 0 {
		t.Fatal("x (x- x)= should match a->b via backtrack")
	}
	// SQL-null semantics through the facade.
	gn := NewGraph()
	gn.MustAddNode("n1", Null())
	gn.MustAddNode("n2", Null())
	gn.MustAddEdge("n1", "x", "n2")
	if sat := EvalGXNode(gn, phi, SQLNulls); len(sat) != 0 {
		t.Fatal("null comparisons must fail under SQL semantics")
	}
	if sat := EvalGXNode(gn, phi, MarkedNulls); len(sat) == 0 {
		t.Fatal("marked nulls compare as constants")
	}
}
