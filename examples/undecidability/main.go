// A tour of the Theorem 1 undecidability gadget: how a PCP instance becomes
// a source data graph, a LAV/GAV relational/reachability mapping, and an
// error-detecting query, such that (start, end) is a certain answer iff the
// PCP instance has no solution.
//
// Undecidability means no algorithm decides this for every instance; what
// this program shows is the machinery on a decidable slice: a satisfiable
// instance whose witness target passes every detector, and an unsatisfiable
// one where every bounded candidate trips a detector.
//
// Run with: go run ./examples/undecidability
package main

import (
	"fmt"
	"log"

	"repro/internal/pcp"
)

func main() {
	// A classic satisfiable PCP instance: tiles (a, ab), (ba, a); the
	// sequence [1, 2] spells u = a·ba = "aba" = ab·a = v.
	sat := pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	fmt.Printf("instance %s\n", sat)
	seq, ok := sat.Solve(10)
	if !ok {
		log.Fatal("expected a solution")
	}
	fmt.Printf("PCP solution: %v\n\n", seq)

	gd, err := pcp.BuildGadget(sat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source graph: %d nodes, %d edges (single chain start→end)\n",
		gd.Source.NumNodes(), gd.Source.NumEdges())
	fmt.Printf("mapping (LAV=%v, relational/reachability=%v):\n%s\n",
		gd.Mapping.IsLAV(), gd.Mapping.IsRelationalReachability(), gd.Mapping)

	// The witness target: the source copy plus the inserted solution path.
	wit, err := gd.BuildWitness(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness target: %d nodes (inserted blocks + verification section)\n", wit.NumNodes())
	if ok, why := gd.Mapping.Check(gd.Source, wit); !ok {
		log.Fatalf("witness must be a solution: %s", why)
	}
	fired, err := gd.Errors(wit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detectors fired on genuine solution: %v (⇒ (start,end) NOT certain)\n\n", fired)

	// An unsatisfiable instance: every candidate insertion errs.
	unsat := pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "b"}}}
	gd2, err := pcp.BuildGadget(unsat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s (unsatisfiable)\n", unsat)
	unsat.Sequences(3, func(s []int) bool {
		w, err := gd2.BuildWitness(s)
		if err != nil {
			log.Fatal(err)
		}
		f, err := gd2.Errors(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  candidate %v: detectors %v\n", s, f)
		return true
	})
	fmt.Println("every candidate errs ⇒ on this slice, (start,end) behaves as a certain answer")
	fmt.Println("\nthe detectors, in order: shape (DFA complement), repeat, adjacent,")
	fmt.Println("letter-ab/ba, anchor-u/v, start-u/v — see internal/pcp/detectors.go")
}
