// Virtual data integration (Section 4 of the paper): several independent
// source graphs are integrated against one virtual global schema through a
// LAV mapping, and queries over the global schema are answered with
// certain-answer semantics — without ever materialising the global graph
// for users (we materialise the universal solution internally, which is
// exactly what Theorem 4 licenses).
//
// Scenario: two airline route databases and a train network are integrated
// into a global "reachable-by-transport" schema.
//
// Run with: go run ./examples/integration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rem"
)

func main() {
	// The sources are kept as one data graph whose edge labels name the
	// source they come from — the paper's "view the source graphs as
	// relations E_a of a virtual graph database G".
	sources := datagraph.New()
	for _, city := range []struct{ id, pop string }{
		{"edinburgh", "500k"}, {"london", "9000k"}, {"paris", "2100k"},
		{"lyon", "500k"}, {"glasgow", "600k"},
	} {
		sources.MustAddNode(datagraph.NodeID(city.id), datagraph.V(city.pop))
	}
	// airlineA routes.
	sources.MustAddEdge("edinburgh", "airlineA", "london")
	sources.MustAddEdge("london", "airlineA", "paris")
	// airlineB routes.
	sources.MustAddEdge("glasgow", "airlineB", "paris")
	// train segments.
	sources.MustAddEdge("paris", "train", "lyon")
	sources.MustAddEdge("edinburgh", "train", "glasgow")

	// LAV mapping into the global schema: each source relation is a view
	// over the global graph. A flight is a direct 'hop'; a train segment is
	// a 'hop' via some unknown intermediate station (two hops).
	mapping := core.NewMapping(
		core.R("airlineA", "hop"),
		core.R("airlineB", "hop"),
		core.R("train", "hop hop"),
	)
	fmt.Printf("LAV: %v  GAV: %v  relational: %v\n\n",
		mapping.IsLAV(), mapping.IsGAV(), mapping.IsRelational())

	// Queries over the global schema, answered with certainty across ALL
	// global graphs consistent with the sources.
	queries := []struct {
		text string
		q    core.Query
	}{
		{"hop hop (REE)", ree.MustParseQuery("hop hop")},
		{"hop+ between equal-population cities", ree.MustParseQuery("(hop+)=")},
		{"↓x.(hop[x!=])+ (all hops change population)", rem.MustParseQuery("!x.(hop[x!=])+")},
	}
	for _, qq := range queries {
		answers, err := core.CertainNull(mapping, sources, qq.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("certain(%s):\n", qq.text)
		if answers.Len() == 0 {
			fmt.Println("  (none)")
		}
		for _, a := range answers.Sorted() {
			fmt.Printf("  %s\n", a)
		}
		fmt.Println()
	}

	// The integration view never exposes the nulls: queries landing on the
	// unknown intermediate train stations are not certain.
	q := ree.MustParseQuery("hop")
	answers, err := core.CertainNull(mapping, sources, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain(single hop) = %s\n", answers)
	fmt.Println("note: train segments contribute no certain single hop — their midpoints are unknown")
}
