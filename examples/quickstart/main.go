// Quickstart: the end-to-end data-exchange loop of the paper in ~60 lines.
//
//  1. Build a source data graph (a small social network).
//  2. Declare a relational graph schema mapping (Definition 1 / 3).
//  3. Materialise the universal solution with SQL-null nodes (Section 7).
//  4. Answer a data RPQ over the target with certain-answer semantics
//     (Theorem 4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
)

func main() {
	// 1. Source: people with ages, knows/likes edges.
	source := datagraph.New()
	source.MustAddNode("ann", datagraph.V("30"))
	source.MustAddNode("bob", datagraph.V("25"))
	source.MustAddNode("carl", datagraph.V("30"))
	source.MustAddNode("post1", datagraph.V("graphs"))
	source.MustAddEdge("ann", "knows", "bob")
	source.MustAddEdge("bob", "knows", "carl")
	source.MustAddEdge("ann", "likes", "post1")
	source.MustAddEdge("carl", "likes", "post1")

	// 2. Mapping to the target schema: 'knows' becomes a two-hop
	// 'follows·follows' path (the intermediate account is unknown), 'likes'
	// is copied as 'endorses'.
	mapping := core.NewMapping(
		core.R("knows", "follows follows"),
		core.R("likes", "endorses"),
	)
	fmt.Printf("mapping (LAV: %v, relational: %v):\n%s\n",
		mapping.IsLAV(), mapping.IsRelational(), mapping)

	// 3. Universal solution: fresh null accounts in the middle of each
	// follows·follows path.
	target, err := core.UniversalSolution(mapping, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universal solution (%d nodes, %d nulls):\n%s\n",
		target.NumNodes(), len(core.NullNodes(target)), target)

	// 4. Certain answers. "follows follows" is certain wherever the source
	// had 'knows'; "(follows follows)!=" additionally demands different
	// ages at the endpoints — certain for (ann, bob) but not for pairs with
	// equal ages.
	for _, q := range []string{
		"follows follows",
		"(follows follows)!=",
		"(follows follows follows follows)=",
	} {
		query := ree.MustParseQuery(q)
		answers, err := core.CertainNull(mapping, source, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("certain(%s) = %s\n", q, answers)
	}
}
