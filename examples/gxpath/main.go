// GXPath-core with data comparisons (Section 9): querying beyond path
// patterns — inverses, transitive closure, filters, Boolean node tests —
// plus the Theorem 7 pinning constructions ϕ_G and ϕ_δ.
//
// Run with: go run ./examples/gxpath
package main

import (
	"fmt"
	"log"

	"repro/internal/datagraph"
	"repro/internal/gxpath"
)

func main() {
	// An org chart with salaries as data values.
	g := datagraph.New()
	for _, p := range []struct{ id, salary string }{
		{"eve", "120"}, {"mallory", "95"}, {"trent", "95"},
		{"alice", "70"}, {"bob", "70"}, {"carol", "80"},
	} {
		g.MustAddNode(datagraph.NodeID(p.id), datagraph.V(p.salary))
	}
	g.MustAddEdge("eve", "manages", "mallory")
	g.MustAddEdge("eve", "manages", "trent")
	g.MustAddEdge("mallory", "manages", "alice")
	g.MustAddEdge("mallory", "manages", "bob")
	g.MustAddEdge("trent", "manages", "carol")
	g.MustAddEdge("alice", "mentors", "bob")

	show := func(desc, expr string) {
		n, err := gxpath.ParseNode(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-52s %s\n   matches:", desc, expr)
		for _, i := range gxpath.NodesSatisfying(g, n, datagraph.MarkedNulls) {
			fmt.Printf(" %s", g.Node(i).ID)
		}
		fmt.Println()
	}

	// Non-path patterns the paper highlights as beyond data RPQs: the
	// sibling queries need an inverse step, which no data RPQ can express.
	show("has a sibling (same manager, possibly self) with equal salary",
		"<(manages- manages)=>")
	show("has a sibling with a different salary", "<(manages- manages)!=>")
	show("manages someone who mentors", "<manages [<mentors>]>")
	show("reaches the root by inverse manages (incl. the root)", "<manages-* [!<manages->]>")
	show("has a subordinate with a different salary", "<manages!=>")

	// Theorem 7: ϕ_G ∧ ϕ_δ pins a tree inside any model.
	tree := datagraph.New()
	tree.MustAddNode("root", datagraph.V("r"))
	tree.MustAddNode("kid1", datagraph.V("k1"))
	tree.MustAddNode("kid2", datagraph.V("k2"))
	tree.MustAddEdge("root", "x", "kid1")
	tree.MustAddEdge("root", "y", "kid2")
	phiG, err := gxpath.PhiG(tree, "root")
	if err != nil {
		log.Fatal(err)
	}
	phiD, err := gxpath.PhiDelta(tree, "root")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 7 pinning for a 3-node tree:\n  ϕ_G = %s\n  ϕ_δ = %s\n", phiG, phiD)
	pin := gxpath.NAnd{L: phiG, R: phiD}
	fmt.Printf("  tree ⊨ ϕ_G∧ϕ_δ at root: %v\n",
		gxpath.Satisfies(tree, "root", pin, datagraph.MarkedNulls))

	// Bounded satisfiability search (the general problem is undecidable,
	// Theorem 7): find a tiny model for ⟨x=⟩ ∧ ⟨y⟩.
	phi := gxpath.MustParseNode("<x=> & <y>")
	model, ok := gxpath.SearchModel(phi, 2, []string{"x", "y"}, 500000)
	fmt.Printf("\nbounded SAT search for %s: found=%v\n", phi, ok)
	if ok {
		fmt.Print(model)
	}
}
