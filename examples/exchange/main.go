// Data exchange with the three certain-answer algorithms side by side,
// including the approximation gap of Remark 1:
//
//   - CertainExact     — the coNP oracle (intersection over all canonical
//     specializations of the universal solution, Thm 2);
//   - CertainNull      — SQL-null universal solution (Thm 3/4), tractable
//     underapproximation;
//   - CertainLeastInformative — least informative solution (Thm 5), exact
//     for equality-only queries.
//
// The example is engineered so the three disagree in exactly the way the
// paper predicts: a query whose match revisits the same null twice is
// certain (the exact and least-informative algorithms find it) but invisible
// to SQL nulls, because n = n is not true under SQL semantics.
//
// Run with: go run ./examples/exchange
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
)

func main() {
	// Source: a service that monitors itself (self-loop).
	source := datagraph.New()
	source.MustAddNode("svc", datagraph.V("api-gateway"))
	source.MustAddNode("db", datagraph.V("orders"))
	source.MustAddEdge("svc", "monitors", "svc")
	source.MustAddEdge("svc", "reads", "db")

	// Exchange into a deployment schema: monitoring goes through some probe
	// (unknown), reads through some connection pool (unknown).
	mapping := core.NewMapping(
		core.R("monitors", "probes probes"),
		core.R("reads", "pool pool"),
	)
	fmt.Printf("source:\n%s\nmapping:\n%s\n", source, mapping)

	queries := []string{
		// Certain navigationally.
		"probes probes",
		// The Remark 1 gap: the probe node is the SAME node on both loops
		// around svc, so its value equals itself in every solution — but
		// SQL nulls cannot see it.
		"probes (probes probes)= probes",
		// Equality on endpoints through the pool: svc and db have different
		// values, never certain.
		"(pool pool)=",
		// Inequality on endpoints: certain (values differ in every
		// solution).
		"(pool pool)!=",
	}

	for _, text := range queries {
		q := ree.MustParseQuery(text)
		exact, err := core.CertainExact(mapping, source, q, core.DefaultExactOptions())
		if err != nil {
			log.Fatal(err)
		}
		null, err := core.CertainNull(mapping, source, q)
		if err != nil {
			log.Fatal(err)
		}
		li, err := core.CertainLeastInformative(mapping, source, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-38s exact=%-28s sql-null=%-28s least-informative=%s\n",
			text, exact, null, li)
		if !null.SubsetOf(exact) {
			log.Fatal("underapproximation violated — this must never happen")
		}
		if ree.IsEqualityOnly(q.Expr()) && !li.Equal(exact) {
			log.Fatal("Theorem 5 violated — this must never happen")
		}
	}
	fmt.Println("\ninvariants held: 2ⁿ ⊆ 2 everywhere; least-informative exact on REE= queries")
}
