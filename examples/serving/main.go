// Serving: the session-centric API for repeated-query workloads.
//
// A certain-answer service holds one (mapping, source graph) pair and
// answers many queries against it. The session API makes the expensive
// steps explicit, reusable handles:
//
//  1. repro.Compile — rule automata and metadata, once per mapping.
//  2. repro.NewSession — freezes the source, memoizes the universal and
//     least-informative solutions behind sync.Once gates.
//  3. repro.PrepareQuery — a reusable query handle; Bind warms the
//     per-snapshot lowered program.
//  4. Session.CertainNullSeq — streaming answers via iter.Seq2, stopping
//     evaluation when the consumer stops reading.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// The source: a small social network exchanged into a follows-graph.
	gs := repro.NewGraph()
	for id, age := range map[string]string{
		"ann": "30", "bob": "25", "carl": "30", "dana": "41",
	} {
		gs.MustAddNode(repro.NodeID(id), repro.V(age))
	}
	gs.MustAddEdge("ann", "knows", "bob")
	gs.MustAddEdge("bob", "knows", "carl")
	gs.MustAddEdge("carl", "knows", "dana")
	gs.MustAddEdge("ann", "admires", "dana")

	// Compile once; the CompiledMapping is immutable and shared.
	cm, err := repro.Compile(repro.NewMapping(
		repro.R("knows", "follows follows"),
		repro.R("admires", "follows"),
	))
	if err != nil {
		log.Fatal(err)
	}

	// One session per source graph; options validated here.
	s, err := repro.NewSession(cm, gs,
		repro.WithWorkers(4),
		repro.WithMaxNulls(16),
		repro.WithTimeout(5*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A "query stream": every call after the first reuses the memoized
	// universal solution.
	queries := []string{
		"follows follows",
		"(follows follows)=",
		"(follows follows)!=",
		"(follows follows follows follows)=",
	}
	for _, text := range queries {
		ans, err := s.CertainNull(ctx, repro.MustREE(text))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s -> %s\n", text, ans)
	}

	// Prepared queries and streaming: stop at the first answer without
	// evaluating the rest of the frontier.
	p := repro.PrepareQuery(repro.MustREE("follows follows"))
	if err := p.Bind(ctx, s); err != nil {
		log.Fatal(err)
	}
	for a, err := range s.CertainNullSeq(ctx, p) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("first streamed answer:", a)
		break
	}

	// Typed errors: a mapping with a Kleene-star target is not relational,
	// so no finite universal solution exists.
	bad, err := repro.Compile(repro.NewMapping(repro.R("knows", "follows*")))
	if err != nil {
		log.Fatal(err)
	}
	s2, err := repro.NewSession(bad, gs)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s2.CertainNull(ctx, repro.MustREE("follows")); errors.Is(err, repro.ErrInfinite) {
		fmt.Println("non-relational mapping rejected:", err)
	}
}
