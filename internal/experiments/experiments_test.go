package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the tables: non-empty, consistent widths, and — crucially —
// every agreement column reads true.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(true)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %q != %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Errorf("%s: row width %d != header width %d: %v", e.ID, len(r), len(tab.Header), r)
				}
			}
			var sb strings.Builder
			tab.Fprint(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Errorf("%s: rendering missing id", e.ID)
			}
		})
	}
}

// Agreement columns must never read false: these are the correctness claims
// of the reproduction.
func TestAgreementColumnsHold(t *testing.T) {
	checks := map[string]int{ // experiment -> column index that must be "true" (or "-")
		"E2": 5,
		"E4": 4,
		"E5": 4,
		"E6": 4,
		"E9": 3,
	}
	for _, e := range All() {
		col, watched := checks[e.ID]
		if !watched {
			continue
		}
		tab, err := e.Run(true)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		for _, r := range tab.Rows {
			if r[col] != "true" && r[col] != "-" && r[col] != "n/a" {
				t.Errorf("%s: agreement column reads %q in row %v", e.ID, r[col], r)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Claim: "none",
		Header: []string{"col1", "c2"},
		Rows:   [][]string{{"a", "bbbbbb"}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"EX", "demo", "col1", "bbbbbb", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
