package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/relational"
	"repro/internal/rpq"
	"repro/internal/workload"
)

// E18RelationalIngest measures the relational bulk-ingestion path end to
// end: a synthetic customer/product/orders source streams through
// internal/ingest's direct mapping into a data graph (rows/sec,
// edges/sec), the graph is exchanged under a relational GSM over the
// direct-mapped labels, and a certain-answer query batch runs on the
// solution — the time-to-first-certain-answer column is the sum, the
// relational→graph→certain-answers scenario Proposition 1 makes precise.
//
// Two built-in cross-checks fail the experiment on regression:
//
//   - the batched pipeline must pay at most one full snapshot rebuild
//     (the first freeze); everything after must ride the delta-merge path;
//   - on a 10³-row slice, the streamed graph must be byte-for-byte
//     identical (as D_G) to internal/relational's naive in-process direct
//     mapping — the Proposition 1 pin at benchmark scale.
func E18RelationalIngest(quick bool) (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "relational bulk ingestion: streaming direct mapping + exchange",
		Claim:  "Prop 1 scenario: relational source → graph exchange → certain answers",
		Header: []string{"rows", "ingest", "krows/s", "edges", "kedges/s", "full", "delta", "exchange", "query", "answers", "t2fca", "pinned"},
	}

	specs := []workload.RelationalSpec{
		{Customers: 20_000, Products: 5_000, Orders: 100_000, Seed: 18},
		{Customers: 150_000, Products: 50_000, Orders: 800_000, Seed: 18},
	}
	if quick {
		specs = []workload.RelationalSpec{{Customers: 2_500, Products: 500, Orders: 9_500, Seed: 18}}
	}

	// Cross-validation slice: ~10³ rows, streamed vs the in-process
	// reference direct mapping, compared byte-for-byte via each side's
	// relational view. One verdict covers the table (same generator, same
	// mapping code at every size).
	pinned, err := crossValidateSlice()
	if err != nil {
		return t, err
	}

	ctx := context.Background()
	query := rpq.MustParse("placed-by located-in")
	for _, spec := range specs {
		d := workload.Relational(spec)

		start := time.Now()
		g, rep, err := ingest.Load(ctx, d.Schema, ingest.Options{}, d.Sources()...)
		if err != nil {
			return t, fmt.Errorf("E18: ingest: %w", err)
		}
		ingestDur := time.Since(start)
		if rep.FullBuilds > 1 {
			return t, fmt.Errorf("E18: batched ingest paid %d full snapshot rebuilds (want ≤ 1): the delta-freeze schedule regressed", rep.FullBuilds)
		}

		// Exchange under a relational GSM over direct-mapped labels: order
		// placements become placed-by edges, customer cities located-in.
		m := core.NewMapping(
			core.R("orders#customer", "placed-by"),
			core.R("customer#city", "located-in"),
		)
		cm, err := core.Compile(m)
		if err != nil {
			return t, err
		}
		start = time.Now()
		u, err := core.NewMaterialization(cm, g).Universal()
		if err != nil {
			return t, fmt.Errorf("E18: exchange: %w", err)
		}
		exchangeDur := time.Since(start)

		start = time.Now()
		res, err := engine.EvalGraph(ctx, u, core.NavQuery{Q: query}, datagraph.SQLNulls, engine.Options{ChunkSize: 256})
		if err != nil {
			return t, fmt.Errorf("E18: query: %w", err)
		}
		ans := core.FilterNullAnswers(u, res)
		queryDur := time.Since(start)

		rows := spec.Rows()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rows),
			ingestDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(rows)/ingestDur.Seconds()/1000),
			fmt.Sprintf("%d", rep.Edges),
			fmt.Sprintf("%.0f", float64(rep.Edges)/ingestDur.Seconds()/1000),
			fmt.Sprintf("%d", rep.FullBuilds),
			fmt.Sprintf("%d", rep.DeltaBuilds),
			exchangeDur.Round(time.Millisecond).String(),
			queryDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", ans.Len()),
			(ingestDur + exchangeDur + queryDur).Round(time.Millisecond).String(),
			fmt.Sprintf("%v", pinned),
		})
	}
	t.Notes = append(t.Notes,
		"t2fca = ingest + exchange + first certain-answer batch (time to first certain answer)",
		"pinned = streamed ingest ≡ in-process relational direct mapping, byte-for-byte on a 10³-row slice",
	)
	return t, nil
}

// crossValidateSlice pins the streaming pipeline to the relational
// reference implementation on a ~10³-row dataset.
func crossValidateSlice() (bool, error) {
	d := workload.Relational(workload.RelationalSpec{Customers: 200, Products: 50, Orders: 750, Seed: 18})
	g, _, err := ingest.Load(context.Background(), d.Schema, ingest.Options{BatchSize: 128}, d.Sources()...)
	if err != nil {
		return false, fmt.Errorf("E18 cross-validation: ingest: %w", err)
	}
	streamed, err := relational.FromGraph(g).ToGraph()
	if err != nil {
		return false, fmt.Errorf("E18 cross-validation: normalize: %w", err)
	}
	ref, err := relational.DirectInstance(d.Schema, d.Rows)
	if err != nil {
		return false, fmt.Errorf("E18 cross-validation: reference: %w", err)
	}
	refG, err := ref.ToGraph()
	if err != nil {
		return false, fmt.Errorf("E18 cross-validation: reference decode: %w", err)
	}
	if streamed.String() != refG.String() {
		return false, fmt.Errorf("E18 cross-validation: streamed ingest diverged from the reference direct mapping")
	}
	return true, nil
}
