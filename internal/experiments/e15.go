package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/workload"
)

// E15SessionAmortization measures the serving-API scenario behind the
// session redesign: a stream of distinct queries against one fixed
// (mapping, source graph) pair. The legacy free functions re-derive the
// universal solution — dom computation, path materialisation, snapshot
// interning — once per query; a session materialises it once and evaluates
// the whole stream against the shared memoized artifacts. The gap is the
// amortized cost of solution construction, which dominates for selective
// queries.
//
// The "session" column runs the exact machinery sessions delegate to
// (core.Materialization + the worker-pool engine over the memoized
// solution); the repro.Session facade is a thin veneer over it, kept out of
// this package only to avoid a test-time import cycle.
func E15SessionAmortization(quick bool) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "session API: memoized solutions across a query stream",
		Claim:  "serving scenario: N queries on one (M, Gs) pay for one solution, not N",
		Header: []string{"graph", "queries", "per-call", "session", "speedup"},
	}

	type scale struct {
		nodes, edges, queries int
	}
	sizes := []scale{
		{nodes: 400, edges: 1200, queries: 25},
		{nodes: 2000, edges: 6000, queries: 50},
	}
	if quick {
		sizes = []scale{{nodes: 200, edges: 600, queries: 10}}
	}

	ctx := context.Background()
	for _, sc := range sizes {
		// The serving shape: bulk relations a and b dominate the exchange
		// (and hence solution construction); the stream asks selective
		// path-with-tests queries against the small hot relation c.
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: sc.nodes, Edges: sc.edges,
			Labels:       []string{"a", "b", "c"},
			LabelWeights: []int{30, 30, 1},
			Values:       sc.nodes / 5, Seed: 15,
		})
		m := core.NewMapping(core.R("a", "p q"), core.R("b", "r q"), core.R("c", "s t"))
		queries := workload.QueryStream(workload.QueryStreamSpec{
			Labels: []string{"s", "t"}, N: sc.queries,
			Shape: workload.ShapePaths, Depth: 2, AllowNeq: true, Seed: 15,
		})

		// Legacy path: one throwaway materialization per call.
		legacyStart := time.Now()
		legacyAns := make([]*core.Answers, len(queries))
		for i, q := range queries {
			ans, err := core.CertainNull(m, gs, q)
			if err != nil {
				return t, err
			}
			legacyAns[i] = ans
		}
		legacy := time.Since(legacyStart)

		// Session path: one materialization for the whole stream.
		cm, err := core.Compile(m)
		if err != nil {
			return t, err
		}
		sessionStart := time.Now()
		mat := core.NewMaterialization(cm, gs)
		for i, q := range queries {
			u, err := mat.Universal()
			if err != nil {
				return t, err
			}
			res, err := engine.EvalGraph(ctx, u, q, datagraph.SQLNulls, engine.Options{ChunkSize: 256})
			if err != nil {
				return t, err
			}
			ans := core.FilterNullAnswers(u, res)
			if !ans.Equal(legacyAns[i]) {
				return t, fmt.Errorf("E15: session answers diverged from legacy on query %d", i)
			}
		}
		session := time.Since(sessionStart)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("V=%d E=%d", sc.nodes, sc.edges),
			fmt.Sprintf("%d", sc.queries),
			legacy.Round(time.Microsecond).String(),
			session.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", ratio(legacy, session)),
		})
	}
	t.Notes = append(t.Notes,
		"per-call rebuilds the universal solution per query (the legacy free functions);",
		"session materialises it once (core.Materialization behind repro.Session) and",
		"evaluates the stream on the worker-pool engine over the shared snapshot.")
	return t, nil
}
