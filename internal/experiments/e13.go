package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ree"
	"repro/internal/rem"
)

// E13StaticDataRPQ reproduces the Section 3 static-analysis claims:
// nonemptiness is Ptime for regular expressions with equality and
// Pspace-complete for expressions with memory. The symbolic reachability of
// package ra explores states × partitions-of-registers; the measured cost
// grows mildly with REE size and combinatorially with REM register count.
func E13StaticDataRPQ(quick bool) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "nonemptiness of data RPQs (symbolic reachability)",
		Claim:  "§3: nonemptiness Ptime for REE, Pspace-complete for REM [18,31]",
		Header: []string{"class", "size", "nonempty", "witness-len", "time"},
	}
	// REE: growing concatenations of tests (registers stay ≤ depth 2).
	sizes := []int{4, 16, 64, 256}
	if quick {
		sizes = []int{4, 16}
	}
	for _, n := range sizes {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if i%3 == 2 {
				sb.WriteString("(a b)= ")
			} else {
				sb.WriteString("a ")
			}
		}
		q := ree.MustParseQuery(strings.TrimSpace(sb.String()))
		start := time.Now()
		w, ok := q.WitnessDataPath()
		elapsed := time.Since(start)
		wl := "-"
		if ok {
			wl = fmt.Sprint(w.Len())
		}
		t.Rows = append(t.Rows, []string{
			"REE concat", fmt.Sprint(n), fmt.Sprint(ok), wl,
			elapsed.Round(time.Microsecond).String(),
		})
	}
	// An unsatisfiable REE: detected without enumeration.
	start := time.Now()
	empty := ree.MustParseQuery("a (()!=) b")
	ok := empty.Nonempty()
	t.Rows = append(t.Rows, []string{"REE contradiction", "3", fmt.Sprint(ok), "-",
		time.Since(start).Round(time.Microsecond).String()})
	// REM: growing register counts (partition-space growth).
	regs := []int{2, 4, 6, 8}
	if quick {
		regs = []int{2, 4}
	}
	for _, k := range regs {
		var sb strings.Builder
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "!x%d.(a ", i)
		}
		sb.WriteString("a")
		for i := k - 1; i >= 0; i-- {
			fmt.Fprintf(&sb, "[x%d!=])", i)
		}
		q := rem.MustParseQuery(sb.String())
		start := time.Now()
		w, okW := q.WitnessDataPath()
		elapsed := time.Since(start)
		wl := "-"
		if okW {
			wl = fmt.Sprint(w.Len())
		}
		t.Rows = append(t.Rows, []string{
			"REM registers", fmt.Sprintf("%d regs", q.Automaton().NumRegs),
			fmt.Sprint(okW), wl, elapsed.Round(time.Microsecond).String(),
		})
	}
	return t, nil
}
