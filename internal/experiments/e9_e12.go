package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/gxpath"
	"repro/internal/pcp"
	"repro/internal/ree"
	"repro/internal/relational"
	"repro/internal/rem"
	"repro/internal/workload"
)

// E9Relational validates Proposition 1: the graph-level and relational-level
// views agree on solutionhood across random mappings, solutions and
// mutations.
func E9Relational(quick bool) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "relational encoding M_rel",
		Claim:  "Prop 1: solutions under M_rel are exactly the D_Gt for solutions Gt",
		Header: []string{"seed", "rules", "targets-checked", "views-agree"},
	}
	samples := 20
	if quick {
		samples = 6
	}
	for seed := int64(0); seed < int64(samples); seed++ {
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: 6, Edges: 9, Labels: []string{"a", "b"}, Values: 4, Seed: seed,
		})
		m := workload.RandomRelationalMapping(workload.MappingSpec{
			SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q", "r"},
			Rules: 3, MaxWordLen: 3, Seed: seed,
		})
		mr, err := relational.Encode(m)
		if err != nil {
			return t, err
		}
		u, err := core.UniversalSolution(m, gs)
		if err != nil {
			return t, err
		}
		ds := relational.FromGraph(gs)
		agree := true
		checked := 0
		// The solution itself plus every single-edge-removed mutant.
		targets := []*datagraph.Graph{u}
		for _, victim := range u.Edges() {
			mutant := datagraph.New()
			for _, nd := range u.Nodes() {
				mutant.MustAddNode(nd.ID, nd.Value)
			}
			for _, e := range u.Edges() {
				if e != victim {
					mutant.MustAddEdge(e.From, e.Label, e.To)
				}
			}
			targets = append(targets, mutant)
		}
		for _, gt := range targets {
			graphView := m.Satisfies(gs, gt)
			relView, _ := mr.Satisfied(ds, relational.FromGraph(gt))
			checked++
			if graphView != relView {
				agree = false
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(seed), fmt.Sprint(len(m.Rules)), fmt.Sprint(checked), fmt.Sprint(agree),
		})
	}
	return t, nil
}

// E10GXPathGadget reports the Theorem 6 tree-gadget statistics and runs the
// bounded avoiding-supergraph search of Lemma 2.
func E10GXPathGadget(quick bool) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "GXPath undecidability gadget",
		Claim:  "Thm 6: certain answering of GXPath-core~ undecidable under copy mappings",
		Header: []string{"instance", "tree-nodes", "non-repeating", "copy-mapping", "phi", "avoidable≤bound"},
	}
	instances := []struct {
		name string
		in   pcp.Instance
	}{
		{"2-tile", pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}},
		{"1-tile", pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "b"}}}},
	}
	for _, inst := range instances {
		tg, err := pcp.BuildTreeGadget(inst.in)
		if err != nil {
			return t, err
		}
		cls := "LAV+GAV+rel"
		if !tg.Mapping.IsLAV() || !tg.Mapping.IsGAV() || !tg.Mapping.IsRelational() {
			cls = "WRONG"
		}
		// φ = ¬⟨x⟩ for a fresh label: avoidable by adding one x-edge.
		phi := gxpath.MustParseNode("!<x>")
		_, avoidable := pcp.ExistsAvoidingSupergraph(tg.Tree, tg.Root, phi,
			pcp.SupergraphSearchOptions{MaxNewNodes: 0, MaxNewEdges: 1, Labels: []string{"x"},
				MaxCandidates: 50000})
		t.Rows = append(t.Rows, []string{
			inst.name, fmt.Sprint(tg.Tree.NumNodes()),
			fmt.Sprint(gxpath.HasNonRepeatingProperty(tg.Tree)), cls,
			"!<x>", fmt.Sprint(avoidable),
		})
	}
	_ = quick
	return t, nil
}

// E11StaticAnalysis exercises the Theorem 7 constructions: ϕ_G ∧ ϕ_δ pins
// trees, and the bounded model search solves tiny satisfiability instances.
func E11StaticAnalysis(quick bool) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "static analysis: ϕ_G, ϕ_δ, bounded satisfiability",
		Claim:  "Thm 7: satisfiability/containment of GXPath-core~ undecidable; ϕ_G∧ϕ_δ pins G",
		Header: []string{"check", "result", "time"},
	}
	// Pinning on the PCP tree gadget.
	tg, err := pcp.BuildTreeGadget(pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "b"}}})
	if err != nil {
		return t, err
	}
	pg, err := gxpath.PhiG(tg.Tree, tg.Root)
	if err != nil {
		return t, err
	}
	pd, err := gxpath.PhiDelta(tg.Tree, tg.Root)
	if err != nil {
		return t, err
	}
	start := time.Now()
	pins := gxpath.Satisfies(tg.Tree, tg.Root, gxpath.NAnd{L: pg, R: pd}, datagraph.MarkedNulls)
	t.Rows = append(t.Rows, []string{"G ⊨ ϕ_G∧ϕ_δ at root", fmt.Sprint(pins),
		time.Since(start).Round(time.Microsecond).String()})
	// Merged values violate ϕ_δ.
	nodes := tg.Tree.Nodes()
	merged := tg.Tree.Specialize(map[datagraph.NodeID]datagraph.Value{nodes[1].ID: nodes[2].Value})
	start = time.Now()
	broken := gxpath.Satisfies(merged, tg.Root, pd, datagraph.MarkedNulls)
	t.Rows = append(t.Rows, []string{"merged values ⊨ ϕ_δ (want false)", fmt.Sprint(broken),
		time.Since(start).Round(time.Microsecond).String()})
	// Bounded satisfiability search.
	budget := 300000
	if quick {
		budget = 50000
	}
	for _, c := range []struct {
		formula string
		want    string
	}{
		{"<a=>", "sat"},
		{"<a!=>", "sat"},
		{"<a!=> & !<a>", "unsat≤bound"},
	} {
		start = time.Now()
		_, ok := gxpath.SearchModel(gxpath.MustParseNode(c.formula), 2, []string{"a"}, budget)
		got := "unsat≤bound"
		if ok {
			got = "sat"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("SearchModel(%s) = %s (want %s)", c.formula, got, c.want),
			fmt.Sprint(got == c.want),
			time.Since(start).Round(time.Microsecond).String(),
		})
	}
	return t, nil
}

// E12Combined contrasts combined complexity: REE evaluation stays polynomial
// in query size while REM (register automata) grows with the register count
// (Pspace-shaped), on a fixed graph. It also ablates the shared RA engine
// against the direct REE matcher.
func E12Combined(quick bool) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "combined complexity: REE vs REM, RA vs direct matcher",
		Claim:  "Thm 3: combined complexity Ptime for REE, Pspace for REM",
		Header: []string{"query-class", "size-param", "eval-time", "matchers-agree"},
	}
	g := workload.Chain(60, "a", 5)
	depths := []int{1, 2, 3, 4}
	if quick {
		depths = []int{1, 2}
	}
	// REE: nested equalities of growing depth.
	for _, d := range depths {
		expr := "a"
		for i := 0; i < d; i++ {
			expr = "(" + expr + " a)="
		}
		q := ree.MustParseQuery(expr)
		start := time.Now()
		q.Eval(g, datagraph.MarkedNulls)
		elapsed := time.Since(start)
		// Ablation: RA-based and direct matcher agree on sample paths.
		agree := true
		for l := 0; l <= 6; l++ {
			w := chainDataPath(g, l)
			if q.Match(w, datagraph.MarkedNulls) !=
				ree.MatchDirect(q.Expr(), w, datagraph.MarkedNulls) {
				agree = false
			}
		}
		t.Rows = append(t.Rows, []string{
			"REE nested =", fmt.Sprintf("depth %d", d),
			elapsed.Round(time.Microsecond).String(), fmt.Sprint(agree),
		})
	}
	// REM: growing number of registers.
	for _, k := range depths {
		var sb strings.Builder
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "!x%d.(", i)
		}
		sb.WriteString("a")
		for i := k - 1; i >= 0; i-- {
			fmt.Fprintf(&sb, " (a[x%d=])?)", i)
		}
		q := rem.MustParseQuery(sb.String())
		start := time.Now()
		q.Eval(g, datagraph.MarkedNulls)
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			"REM registers", fmt.Sprintf("%d regs", q.Automaton().NumRegs),
			elapsed.Round(time.Microsecond).String(), "-",
		})
	}
	return t, nil
}

func chainDataPath(g *datagraph.Graph, l int) datagraph.DataPath {
	vals := make([]datagraph.Value, l+1)
	labels := make([]string, l)
	for i := 0; i <= l; i++ {
		vals[i] = g.Value(i)
		if i < l {
			labels[i] = "a"
		}
	}
	return datagraph.NewDataPath(vals, labels)
}
