package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/rpq"
	"repro/internal/workload"
)

// E17ShardedScaling measures the shard-partitioned execution path end to
// end: the parallel per-shard chase (core.Materialization over a
// datagraph.Partition) followed by a navigational query batch answered with
// shard-local RPQ kernels plus the iterative boundary-frontier exchange.
// The grid crosses shard counts with GOMAXPROCS settings so the table shows
// both the sharding overhead at procs=1 (it must stay small — shards=1 is
// the unsharded fast path and the reference for the speedup column) and the
// scaling headroom once real cores are available.
//
// Every sharded cell cross-checks its certain answers against the
// unsharded baseline; any divergence fails the experiment, so the table
// doubles as an equivalence proof at benchmark scale.
func E17ShardedScaling(quick bool) (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "shard-partitioned solutions: parallel chase + boundary exchange",
		Claim:  "engineering: sharding preserves answers byte-for-byte and scales with cores",
		Header: []string{"edges", "shards", "procs", "chase", "queries", "rounds", "cross-pairs", "speedup"},
	}

	type scale struct {
		nodes, edges int
		shardGrid    []int
		pats         int // how many of patterns to run at this size
	}
	// The unsharded baseline pays ~1 minute per query at 10^6 edges (its
	// per-start evaluation is exactly what shard-local kernels amortize),
	// so the 10^7 row keeps only the two cheapest patterns to stay inside
	// a lunch break on a laptop.
	sizes := []scale{
		{nodes: 333_334, edges: 1_000_000, shardGrid: []int{1, 2, 4, 8}, pats: 6},
		{nodes: 3_333_334, edges: 10_000_000, shardGrid: []int{1, 8}, pats: 2},
	}
	procGrid := []int{1, 4}
	// Bounded-depth patterns over the bulk p/q/r alphabet plus closures
	// over the rare s/t relation. Unbounded closures over the bulk labels
	// (e.g. "(p|q)+") have near-quadratic certain-answer sets on random
	// graphs — the per-layer test suites cover them on small fixtures.
	patterns := []string{"s t", "p q", "(s|t)+", "t s*", "(p|r) q", "p (q|r)"}
	if quick {
		sizes = []scale{{nodes: 4_000, edges: 12_000, shardGrid: []int{1, 4}, pats: 6}}
		procGrid = []int{1, 2}
	}

	queries := make([]*rpq.Query, len(patterns))
	for i, p := range patterns {
		queries[i] = rpq.MustParse(p)
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	ctx := context.Background()
	opts := engine.Options{ChunkSize: 256}
	for _, sc := range sizes {
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: sc.nodes, Edges: sc.edges,
			Labels:       []string{"a", "b", "c"},
			LabelWeights: []int{30, 30, 1},
			Values:       sc.nodes / 5, Seed: 17,
		})
		m := core.NewMapping(core.R("a", "p q"), core.R("b", "r q"), core.R("c", "s t"))
		cm, err := core.Compile(m)
		if err != nil {
			return t, err
		}

		// The shards=1 procs=procGrid[0] cell — always the first of the
		// grid — doubles as the reference computation: its answers are
		// what every other cell must reproduce byte-for-byte.
		qs := queries[:sc.pats]
		var refAns []*core.Answers

		var baseline time.Duration
		for _, shards := range sc.shardGrid {
			for _, procs := range procGrid {
				runtime.GOMAXPROCS(procs)
				var chase, qbatch time.Duration
				var rounds, cross int
				if shards == 1 {
					// The unsharded fast path: exactly the pre-sharding code.
					start := time.Now()
					mat := core.NewMaterialization(cm, gs)
					u, err := mat.Universal()
					if err != nil {
						return t, err
					}
					chase = time.Since(start)
					start = time.Now()
					for i, q := range qs {
						res, err := engine.EvalGraph(ctx, u, core.NavQuery{Q: q}, datagraph.SQLNulls, opts)
						if err != nil {
							return t, err
						}
						ans := core.FilterNullAnswers(u, res)
						if i < len(refAns) {
							if !ans.Equal(refAns[i]) {
								return t, fmt.Errorf("E17: unsharded answers diverged on query %d", i)
							}
						} else {
							refAns = append(refAns, ans)
						}
					}
					qbatch = time.Since(start)
				} else {
					start := time.Now()
					mat, err := core.NewMaterializationSharded(cm, gs, core.ShardOptions{Shards: shards})
					if err != nil {
						return t, err
					}
					if _, err := mat.UniversalSharded(); err != nil {
						return t, err
					}
					chase = time.Since(start)
					start = time.Now()
					for i, q := range qs {
						ans, st, err := engine.CertainNullSharded(ctx, mat, q, opts)
						if err != nil {
							return t, err
						}
						rounds += st.Rounds
						cross += st.CrossPairs
						if i >= len(refAns) || !ans.Equal(refAns[i]) {
							return t, fmt.Errorf("E17: sharded answers diverged on query %d (shards=%d)", i, shards)
						}
					}
					qbatch = time.Since(start)
				}
				total := chase + qbatch
				if shards == 1 && procs == procGrid[0] {
					baseline = total
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", sc.edges),
					fmt.Sprintf("%d", shards),
					fmt.Sprintf("%d", procs),
					chase.Round(time.Microsecond).String(),
					qbatch.Round(time.Microsecond).String(),
					fmt.Sprintf("%d", rounds),
					fmt.Sprintf("%d", cross),
					fmt.Sprintf("%.1fx", ratio(baseline, total)),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"chase times solution materialization (per-shard parallel for shards>1);",
		"queries times the navigational batch (shard-local kernels + boundary exchange);",
		"speedup is against the shards=1 procs=1 row of the same size; every sharded",
		"cell's answers are checked equal to the unsharded baseline before timing counts.")
	return t, nil
}
