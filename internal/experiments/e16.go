package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/workload"
)

// E16Serving measures the multi-tenant HTTP serving layer end to end: an
// in-process gsmd (internal/server over httptest) with the canonical
// serving pair registered, hammered by concurrent clients replaying the
// workload.Serving query stream over real HTTP. The "oneshot" rows issue
// every query through POST /v1/query, which builds a throwaway session —
// and thus re-materializes the pair's solution — per request; the
// "session" rows open one server session per client, all of which derive
// from a single shared backend, so the whole run pays for one
// materialization. Every response is cross-validated against the embedded
// repro.Session path computing the same canonical wire encoding.
//
// This is the HTTP-boundary analogue of E15: where E15 amortizes the
// solution across a stream inside one process, E16 shows the same
// amortization surviving the network boundary, tenancy and admission
// control.
func E16Serving(quick bool) (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "HTTP serving: shared session backends vs per-request sessions",
		Claim:  "serving scenario over HTTP: N clients x Q queries pay for one solution, not NxQ",
		Header: []string{"mode", "clients", "requests", "answers/s", "p50", "p99"},
	}

	spec := workload.ServingSpec{Queries: 50}
	clients, perClient := 16, 25
	if quick {
		spec = workload.ServingSpec{Nodes: 200, Edges: 600, Queries: 8}
		clients, perClient = 4, 4
	}
	sc := workload.Serving(spec)

	// The embedded ground truth: the same canonical wire bytes the server
	// must emit for every query of the stream.
	cm, err := repro.Compile(sc.Mapping)
	if err != nil {
		return t, err
	}
	embedded, err := repro.NewSession(cm, sc.Graph)
	if err != nil {
		return t, err
	}
	expected := make([][]byte, len(sc.Queries))
	for i, q := range sc.Queries {
		ans, err := embedded.CertainNull(context.Background(), q)
		if err != nil {
			return t, err
		}
		if expected[i], err = json.Marshal(server.AnswersWire(ans)); err != nil {
			return t, err
		}
	}

	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2 * clients}}
	post := func(tenant, path string, body, out any) error {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(b))
		if err != nil {
			return err
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var eb server.ErrorBody
			_ = json.NewDecoder(resp.Body).Decode(&eb)
			return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, eb.Error)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	var reg any
	if err := post("default", "/v1/mappings", server.RegisterMappingRequest{Name: "demo", Text: sc.MappingText}, &reg); err != nil {
		return t, err
	}
	if err := post("default", "/v1/graphs", server.RegisterGraphRequest{Name: "demo", Text: sc.GraphText}, &reg); err != nil {
		return t, err
	}

	run := func(mode string) (row []string, err error) {
		total := clients * perClient
		latencies := make([]time.Duration, total)
		errCh := make(chan error, clients)
		var answers, verified int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant := fmt.Sprintf("t-%d", c%4)
				sessionID := ""
				if mode == "session" {
					var si server.SessionInfo
					if err := post(tenant, "/v1/sessions", server.CreateSessionRequest{Mapping: "demo", Graph: "demo"}, &si); err != nil {
						errCh <- err
						return
					}
					sessionID = si.ID
				}
				for i := 0; i < perClient; i++ {
					ri := c*perClient + i
					qi := ri % len(sc.QueryTexts)
					var resp server.QueryResponse
					var err error
					t0 := time.Now()
					if mode == "session" {
						err = post(tenant, "/v1/sessions/"+sessionID+"/query",
							server.QueryRequest{Query: sc.QueryTexts[qi]}, &resp)
					} else {
						err = post(tenant, "/v1/query", server.OneShotRequest{
							Mapping: "demo", Graph: "demo", Query: sc.QueryTexts[qi]}, &resp)
					}
					latencies[ri] = time.Since(t0)
					if err != nil {
						errCh <- err
						return
					}
					got, err := json.Marshal(resp.Answers)
					if err != nil {
						errCh <- err
						return
					}
					if !bytes.Equal(got, expected[qi]) {
						errCh <- fmt.Errorf("E16: %s answers for query %d diverged from the embedded session", mode, qi)
						return
					}
					mu.Lock()
					answers += int64(resp.Count)
					verified++
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p int) time.Duration { return latencies[(len(latencies)-1)*p/100] }
		return []string{
			mode,
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.0f", float64(answers)/elapsed.Seconds()),
			pct(50).Round(time.Microsecond).String(),
			pct(99).Round(time.Microsecond).String(),
		}, nil
	}

	for _, mode := range []string{"oneshot", "session"} {
		row, err := run(mode)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"oneshot: POST /v1/query builds a throwaway session (full re-materialization) per request;",
		"session: per-client server sessions all derive from one shared backend (one materialization);",
		"every response byte-for-byte equal to the embedded repro.Session wire encoding.")
	return t, nil
}
