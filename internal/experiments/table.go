// Package experiments implements the reproduction experiments E1–E12 of
// EXPERIMENTS.md: one per theorem/figure of the paper, each producing a
// printable table of measured results next to the paper's claim. The
// cmd/gsmbench binary is the front end; bench_test.go at the module root
// wraps the same workloads as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result. The JSON form is what
// `gsmbench -json` emits and CI archives as BENCH_*.json artifacts, so the
// field names are part of the perf-trajectory format.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Claim  string     `json:"claim"` // the paper result being reproduced
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   paper: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a runnable experiment. quick mode shrinks workloads so the
// full suite stays fast (used by tests); full mode is for gsmbench runs.
type Experiment struct {
	ID   string
	Name string
	Run  func(quick bool) (Table, error)
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "GXPath semantics & evaluation cost (Figure 1)", E1GXPath},
		{"E2", "Theorem 1 PCP gadget", E2PCPGadget},
		{"E3", "coNP exact search (Thm 2/Prop 2)", E3ExactCoNP},
		{"E4", "coNP-hardness via 3-colorability (Prop 3)", E4ThreeCol},
		{"E5", "one-inequality tractability (Prop 4)", E5OneInequality},
		{"E6", "SQL-null tractability (Thm 3/4)", E6CertainNull},
		{"E7", "approximation quality (Remark 1)", E7Approximation},
		{"E8", "equality-only queries (Thm 5/Cor 1)", E8EqualityOnly},
		{"E9", "relational encoding (Prop 1)", E9Relational},
		{"E10", "GXPath undecidability gadget (Thm 6/Lemma 2)", E10GXPathGadget},
		{"E11", "static analysis constructions (Thm 7)", E11StaticAnalysis},
		{"E12", "combined complexity REE vs REM (Thm 3)", E12Combined},
		{"E13", "static analysis of data RPQs (§3 citations)", E13StaticDataRPQ},
		{"E14", "incremental snapshot maintenance under updates", E14Streaming},
		{"E15", "session API amortization over query streams", E15SessionAmortization},
		{"E16", "HTTP serving layer: shared backends vs per-request sessions", E16Serving},
		{"E17", "shard-partitioned solutions: parallel chase + boundary exchange", E17ShardedScaling},
		{"E18", "relational bulk ingestion: streaming direct mapping + exchange", E18RelationalIngest},
	}
}
