package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/gxpath"
	"repro/internal/pcp"
	"repro/internal/ree"
	"repro/internal/threecol"
	"repro/internal/workload"
)

// E1GXPath measures GXPath-core evaluation cost over growing random graphs
// and confirms every Figure 1 rule on a fixed fixture (counted, not timed).
func E1GXPath(quick bool) (Table, error) {
	sizes := []int{50, 100, 200, 400, 800}
	if quick {
		sizes = []int{50, 100}
	}
	queries := map[string]gxpath.NodeExpr{
		"<a b>":         gxpath.MustParseNode("<a b>"),
		"<(a b)=>":      gxpath.MustParseNode("<(a b)=>"),
		"<a*> & !<b->":  gxpath.MustParseNode("<a*> & !<b->"),
		"<a (a- b)!= >": gxpath.MustParseNode("<a (a- b)!=>"),
	}
	t := Table{
		ID:     "E1",
		Title:  "GXPath-core evaluation cost",
		Claim:  "Figure 1 semantics; polynomial-time bottom-up evaluation",
		Header: []string{"nodes", "edges", "query", "sat-nodes", "time"},
	}
	for _, n := range sizes {
		g := workload.RandomGraph(workload.GraphSpec{
			Nodes: n, Edges: 3 * n, Labels: []string{"a", "b"}, Values: n / 4, Seed: int64(n),
		})
		for name, q := range queries {
			start := time.Now()
			sat := gxpath.NodesSatisfying(g, q, datagraph.MarkedNulls)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(g.NumEdges()), name,
				fmt.Sprint(len(sat)), time.Since(start).Round(time.Microsecond).String(),
			})
		}
	}
	t.Notes = append(t.Notes, "every Figure 1 rule is covered by unit tests in internal/gxpath")
	return t, nil
}

// E2PCPGadget builds Theorem 1 gadgets for satisfiable and unsatisfiable
// PCP instances, validates the reduction both ways on bounded sequences,
// and reports gadget sizes.
func E2PCPGadget(quick bool) (Table, error) {
	instances := []struct {
		name string
		in   pcp.Instance
	}{
		{"sat-2tile", pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}},
		{"sat-selfdual", pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "aa"}, {U: "aa", V: "a"}}}},
		{"unsat-mismatch", pcp.Instance{Tiles: []pcp.Tile{{U: "a", V: "b"}}}},
		{"unsat-longer", pcp.Instance{Tiles: []pcp.Tile{{U: "ab", V: "a"}, {U: "b", V: "bb"}}}},
	}
	maxSeq := 3
	if quick {
		maxSeq = 2
	}
	t := Table{
		ID:     "E2",
		Title:  "Theorem 1 gadget validation",
		Claim:  "LAV/GAV relational/reachability mapping + equality RPQ encode PCP",
		Header: []string{"instance", "src-nodes", "solvable≤8", "witness-clean", "seqs-checked", "clean⇔solution"},
	}
	for _, inst := range instances {
		gd, err := pcp.BuildGadget(inst.in)
		if err != nil {
			return t, err
		}
		seq, solvable := inst.in.Solve(8)
		witnessClean := "n/a"
		if solvable {
			wit, err := gd.BuildWitness(seq)
			if err != nil {
				return t, err
			}
			fired, err := gd.Errors(wit)
			if err != nil {
				return t, err
			}
			witnessClean = fmt.Sprint(len(fired) == 0)
		}
		checked, agree := 0, true
		var seqErr error
		inst.in.Sequences(maxSeq, func(s []int) bool {
			wit, err := gd.BuildWitness(s)
			if err != nil {
				seqErr = err
				return false
			}
			fired, err := gd.Errors(wit)
			if err != nil {
				seqErr = err
				return false
			}
			checked++
			if (len(fired) == 0) != inst.in.IsSolution(s) {
				agree = false
			}
			return true
		})
		if seqErr != nil {
			return t, seqErr
		}
		t.Rows = append(t.Rows, []string{
			inst.name, fmt.Sprint(gd.Source.NumNodes()), fmt.Sprint(solvable),
			witnessClean, fmt.Sprint(checked), fmt.Sprint(agree),
		})
	}
	t.Notes = append(t.Notes,
		"clean⇔solution: a candidate witness avoids all detectors iff it encodes a PCP solution")
	return t, nil
}

// E3ExactCoNP measures the exact certain-answer search cost against the
// number of nulls — the coNP-shaped exponential of Theorem 2.
func E3ExactCoNP(quick bool) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "exact certain answers: cost vs null count",
		Claim:  "coNP data complexity (Thm 2); search exponential in nulls",
		Header: []string{"nulls", "specializations", "time", "answers"},
	}
	maxEdges := 5
	if quick {
		maxEdges = 3
	}
	q := ree.MustParseQuery("(p q)!=")
	for edges := 1; edges <= maxEdges; edges++ {
		gs := datagraph.New()
		for i := 0; i <= edges; i++ {
			gs.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)), datagraph.V(fmt.Sprintf("d%d", i)))
		}
		for i := 0; i < edges; i++ {
			gs.MustAddEdge(datagraph.NodeID(fmt.Sprintf("n%d", i)), "e", datagraph.NodeID(fmt.Sprintf("n%d", i+1)))
		}
		m := core.NewMapping(core.R("e", "p q")) // one null per source edge
		start := time.Now()
		ans, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: edges})
		if err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(edges),
			fmt.Sprint(core.SpecializationCount(edges, edges+1)),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(ans.Len()),
		})
	}
	return t, nil
}

// E4ThreeCol cross-validates the Proposition 3 reduction against the
// brute-force oracle and reports the exponential cost growth.
func E4ThreeCol(quick bool) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "3-colorability reduction",
		Claim:  "Prop 3: certain answering coNP-hard for data path queries (3 inequalities)",
		Header: []string{"n", "edges", "3col(brute)", "certain(reduction)", "agree", "time"},
	}
	maxN := 5
	trials := 8
	if quick {
		maxN = 4
		trials = 4
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(maxN-2)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.7 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := threecol.Graph{N: n, Edges: edges}
		brute := threecol.ThreeColorable(g)
		start := time.Now()
		certain, err := threecol.CertainNon3Colorable(g, core.ExactOptions{MaxNulls: n + 1})
		if err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(edges)), fmt.Sprint(brute), fmt.Sprint(certain),
			fmt.Sprint(certain == !brute), elapsed.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}
