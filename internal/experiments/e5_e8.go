package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/workload"
)

// E5OneInequality shows the Proposition 4 fixpoint algorithm scaling
// polynomially on chain sources where the exact oracle would be exponential,
// and cross-checks both on small instances.
func E5OneInequality(quick bool) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "one-inequality paths with tests",
		Claim:  "Prop 4: ≤1 inequality ⇒ NLogspace data complexity",
		Header: []string{"chain-len", "nulls", "fixpoint-time", "certain", "oracle-agrees"},
	}
	sizes := []int{4, 100, 1000, 5000}
	if quick {
		sizes = []int{4, 100}
	}
	q := ree.MustParseQuery("(p q)!=")
	for _, n := range sizes {
		gs := workload.Chain(n, "e", 0)
		m := core.NewMapping(core.R("e", "p q"))
		from := datagraph.NodeID("n0")
		to := datagraph.NodeID("n1")
		start := time.Now()
		got, err := core.CertainOneInequality(m, gs, q, from, to, core.OneNeqOptions{})
		if err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		agree := "-"
		if n <= 4 {
			// The oracle is exponential in nulls (= chain length here), so
			// cross-check only the tiniest size.
			exact, err := core.CertainExactPair(m, gs, q, from, to, core.ExactOptions{MaxNulls: n})
			if err != nil {
				return t, err
			}
			agree = fmt.Sprint(exact == got)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(n), elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(got), agree,
		})
	}
	t.Notes = append(t.Notes, "fixpoint cost grows polynomially while the oracle is exponential in nulls")
	return t, nil
}

// E6CertainNull pits the SQL-null algorithm (Thm 3/4) against the exact
// exponential oracle on the same instances: the tractability crossover.
func E6CertainNull(quick bool) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "SQL-null certain answers vs exact oracle",
		Claim:  "Thm 3: NLogspace data complexity with SQL nulls; exact is coNP",
		Header: []string{"source-nodes", "nulls", "null-algo-time", "exact-time", "null⊆exact"},
	}
	sizes := []int{4, 6, 200, 2000}
	if quick {
		sizes = []int{4, 100}
	}
	q := ree.MustParseQuery("(p q)!= | (p q)=")
	for _, n := range sizes {
		gs := workload.Chain(n, "e", 3)
		m := core.NewMapping(core.R("e", "p q"))
		start := time.Now()
		nullAns, err := core.CertainNull(m, gs, q)
		if err != nil {
			return t, err
		}
		nullTime := time.Since(start)
		exactTime := "-(skipped)"
		subset := "-"
		if n <= 6 {
			start = time.Now()
			exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: n})
			if err != nil {
				return t, err
			}
			exactTime = time.Since(start).Round(time.Microsecond).String()
			subset = fmt.Sprint(nullAns.SubsetOf(exact))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(gs.NumNodes()), fmt.Sprint(n),
			nullTime.Round(time.Microsecond).String(), exactTime, subset,
		})
	}
	t.Notes = append(t.Notes, "the exact column is omitted beyond 6 nulls: the search is exponential")
	return t, nil
}

// E7Approximation measures, over random workloads, how often the SQL-null
// underapproximation 2ⁿ misses certain answers found by the exact semantics
// (the experimental study Remark 1 calls for).
func E7Approximation(quick bool) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "approximation quality of SQL-null certain answers",
		Claim:  "Remark 1: 2ⁿ ⊆ 2; quality to be studied experimentally",
		Header: []string{"workload", "samples", "exact-answers", "null-answers", "missed", "miss-rate"},
	}
	samples := 60
	if quick {
		samples = 15
	}
	type config struct {
		name     string
		allowNeq bool
	}
	for _, cfg := range []config{{"REE= (equality only)", false}, {"REE (with ≠)", true}} {
		exactTotal, nullTotal, missed := 0, 0, 0
		for seed := int64(0); seed < int64(samples); seed++ {
			gs := workload.RandomGraph(workload.GraphSpec{
				Nodes: 5, Edges: 7, Labels: []string{"a", "b"}, Values: 3, Seed: seed,
			})
			m := workload.RandomRelationalMapping(workload.MappingSpec{
				SourceLabels: []string{"a", "b"},
				TargetLabels: []string{"p", "q"},
				Rules:        2, MaxWordLen: 2, Seed: seed,
			})
			expr := workload.RandomREEQuery(workload.QuerySpec{
				Labels: []string{"p", "q"}, Depth: 3, AllowNeq: cfg.allowNeq, Seed: seed,
			})
			q := ree.New(expr)
			exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 8})
			if err != nil {
				continue // too many nulls for the oracle; skip sample
			}
			nullAns, err := core.CertainNull(m, gs, q)
			if err != nil {
				return t, err
			}
			if !nullAns.SubsetOf(exact) {
				return t, fmt.Errorf("E7: underapproximation violated on seed %d", seed)
			}
			exactTotal += exact.Len()
			nullTotal += nullAns.Len()
			missed += exact.Len() - nullAns.Len()
		}
		rate := "0%"
		if exactTotal > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(missed)/float64(exactTotal))
		}
		t.Rows = append(t.Rows, []string{
			cfg.name, fmt.Sprint(samples), fmt.Sprint(exactTotal), fmt.Sprint(nullTotal),
			fmt.Sprint(missed), rate,
		})
	}
	// The engineered family where the gap is guaranteed: self-loops whose
	// match revisits the same null twice (see the Remark 1 discussion and
	// examples/exchange). Every answer is missed by SQL nulls.
	loops := 5
	if quick {
		loops = 3
	}
	exactTotal, nullTotal := 0, 0
	for k := 1; k <= loops; k++ {
		gs := datagraph.New()
		for i := 0; i < k; i++ {
			id := datagraph.NodeID(fmt.Sprintf("s%d", i))
			gs.MustAddNode(id, datagraph.V(fmt.Sprintf("v%d", i)))
			gs.MustAddEdge(id, "a", id)
		}
		m := core.NewMapping(core.R("a", "b b"))
		q := ree.MustParseQuery("b (b b)= b")
		exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			continue
		}
		nullAns, err := core.CertainNull(m, gs, q)
		if err != nil {
			return t, err
		}
		exactTotal += exact.Len()
		nullTotal += nullAns.Len()
	}
	rate := "-"
	if exactTotal > 0 {
		rate = fmt.Sprintf("%.1f%%", 100*float64(exactTotal-nullTotal)/float64(exactTotal))
	}
	t.Rows = append(t.Rows, []string{
		"engineered self-equality", fmt.Sprint(loops), fmt.Sprint(exactTotal),
		fmt.Sprint(nullTotal), fmt.Sprint(exactTotal - nullTotal), rate,
	})
	t.Notes = append(t.Notes,
		"random workloads show no gap; the miss requires matches revisiting one null (Remark 1)")
	return t, nil
}

// E8EqualityOnly validates Theorem 5 (least-informative solutions are exact
// for REM=/REE=) and shows its tractable scaling.
func E8EqualityOnly(quick bool) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "equality-only queries via least informative solutions",
		Claim:  "Thm 5/Cor 1: exact and NLogspace for REM= and REE=",
		Header: []string{"workload", "size", "li-time", "answers", "oracle-agrees"},
	}
	// Exactness on random small instances (REE= and REM=).
	agree := true
	samples := 40
	if quick {
		samples = 10
	}
	for seed := int64(0); seed < int64(samples); seed++ {
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: 5, Edges: 7, Labels: []string{"a", "b"}, Values: 3, Seed: seed,
		})
		m := workload.RandomRelationalMapping(workload.MappingSpec{
			SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q"},
			Rules: 2, MaxWordLen: 2, Seed: seed,
		})
		expr := workload.RandomREEQuery(workload.QuerySpec{
			Labels: []string{"p", "q"}, Depth: 3, AllowNeq: false, Seed: seed,
		})
		q := ree.New(expr)
		exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			continue
		}
		li, err := core.CertainLeastInformative(m, gs, q)
		if err != nil {
			return t, err
		}
		if !exact.Equal(li) {
			agree = false
		}
	}
	t.Rows = append(t.Rows, []string{"random REE= cross-check", fmt.Sprint(samples), "-", "-", fmt.Sprint(agree)})
	// Scaling on chains with an REM= query.
	sizes := []int{100, 1000, 5000}
	if quick {
		sizes = []int{100, 500}
	}
	remQ := rem.MustParseQuery("!x.(p (q[x=])?) q*")
	for _, n := range sizes {
		gs := workload.Chain(n, "e", 4)
		m := core.NewMapping(core.R("e", "p q"))
		start := time.Now()
		ans, err := core.CertainLeastInformative(m, gs, remQ)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			"REM= on chain", fmt.Sprint(n),
			time.Since(start).Round(time.Microsecond).String(),
			fmt.Sprint(ans.Len()), "-",
		})
	}
	return t, nil
}
