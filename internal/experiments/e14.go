package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/ree"
	"repro/internal/workload"
)

// E14Streaming measures the serving-system scenario behind incremental
// snapshot maintenance: interleaved update/query workloads (continuous data
// exchange from a relational source) where every burst of AddEdge/SetValue
// used to force an O(V+E) snapshot rebuild before the next query batch.
//
// Two row families:
//
//   - freeze k@E: append k edges to a frozen E-edge graph and re-freeze,
//     delta merge vs from-scratch rebuild of the same state;
//   - streaming: the full workload.Streaming scenario — mutation bursts
//     alternating with an engine-evaluated query batch — with incremental
//     freezes vs a forced rebuild every round.
func E14Streaming(quick bool) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "incremental (delta) snapshot maintenance under updates",
		Claim:  "serving scenario: re-freeze after k appends costs O(Δ+Σdeg), not O(V+E)",
		Header: []string{"scenario", "size", "delta", "full-rebuild", "speedup"},
	}

	freezeSizes := []int{20000, 100000}
	reps := 5
	if quick {
		freezeSizes = []int{5000}
		reps = 3
	}
	const k = 100
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, e := range freezeSizes {
		g := workload.RandomGraph(workload.GraphSpec{
			Nodes: e / 5, Edges: e, Labels: labels, Values: e / 50, Seed: 14,
		})
		g.Freeze()
		rng := newEdgePicker(g, labels, 141)
		var delta, full time.Duration
		for rep := 0; rep < reps; rep++ {
			rng.appendEdges(k)
			d := timeIt(func() { g.Freeze() })
			f := timeIt(func() { g.FreezeFull() })
			if rep == 0 || d < delta {
				delta = d
			}
			if rep == 0 || f < full {
				full = f
			}
		}
		t.Rows = append(t.Rows, []string{
			"freeze", fmt.Sprintf("E=%d k=%d", e, k),
			delta.Round(time.Microsecond).String(),
			full.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", ratio(full, delta)),
		})
	}

	// Streaming: bursts of appends + value overwrites alternating with an
	// engine query batch, on two identical deterministic streams — one
	// freezing incrementally, one forced to rebuild every round.
	spec := workload.StreamSpec{
		Base: workload.GraphSpec{
			Nodes: 4000, Edges: 12000, Labels: []string{"a", "b", "c"}, Values: 200, Seed: 14,
		},
		Rounds:            12,
		EdgesPerRound:     80,
		NodesPerRound:     4,
		SetValuesPerRound: 40,
		Seed:              14,
	}
	if quick {
		spec.Base.Nodes, spec.Base.Edges = 800, 2400
		spec.Rounds = 6
	}
	queries := []core.Query{
		ree.MustParseQuery("(a b)="),
		ree.MustParseQuery("a (b c?)!="),
	}
	if quick {
		queries = queries[:1]
	}
	run := func(rebuild bool) (time.Duration, int, error) {
		s := workload.Streaming(spec)
		s.G.Freeze()
		answers := 0
		start := time.Now()
		err := s.Run(func(round int, g *datagraph.Graph) error {
			if rebuild {
				g.FreezeFull()
			}
			for _, q := range queries {
				res, err := engine.EvalGraph(context.Background(), g, q, datagraph.SQLNulls, engine.Options{})
				if err != nil {
					return err
				}
				answers += res.Len()
			}
			return nil
		})
		return time.Since(start), answers, err
	}
	inc, incAns, err := run(false)
	if err != nil {
		return t, err
	}
	reb, rebAns, err := run(true)
	if err != nil {
		return t, err
	}
	if incAns != rebAns {
		return t, fmt.Errorf("E14: incremental stream answers diverged: %d vs %d", incAns, rebAns)
	}
	t.Rows = append(t.Rows, []string{
		"streaming", fmt.Sprintf("rounds=%d Δ=%d/round", spec.Rounds, spec.EdgesPerRound),
		inc.Round(time.Microsecond).String(),
		reb.Round(time.Microsecond).String(),
		fmt.Sprintf("%.1fx", ratio(reb, inc)),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("identical certain answers on both streams (%d pairs); delta-frozen snapshots are behaviourally equal to from-scratch freezes", incAns),
		"freeze rows: best of repeated append-k-then-refreeze cycles on the same growing graph")
	return t, nil
}

// edgePicker appends random edges to an existing graph with the same
// endpoint distribution RandomGraph uses.
type edgePicker struct {
	g      *datagraph.Graph
	labels []string
	state  uint64
}

func newEdgePicker(g *datagraph.Graph, labels []string, seed uint64) *edgePicker {
	return &edgePicker{g: g, labels: labels, state: seed}
}

// next is a small xorshift so the picker does not disturb the package-level
// rand streams the other experiments rely on.
func (p *edgePicker) next(n int) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(n))
}

func (p *edgePicker) appendEdges(k int) {
	n := p.g.NumNodes()
	for i := 0; i < k; i++ {
		from := fmt.Sprintf("n%d", p.next(n))
		to := fmt.Sprintf("n%d", p.next(n))
		p.g.MustAddEdge(datagraph.NodeID(from), p.labels[p.next(len(p.labels))], datagraph.NodeID(to))
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
