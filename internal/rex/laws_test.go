package rex

import "testing"

// Algebraic laws of regular languages, verified through DFA equivalence on
// a fixed alphabet — these exercise determinization, complement and
// intersection together.

func dfaOf(t *testing.T, expr string, alpha []string) *DFA {
	t.Helper()
	return Determinize(Compile(MustParse(expr)), alpha)
}

func assertEquivalent(t *testing.T, alpha []string, e1, e2 string) {
	t.Helper()
	eq, err := Equivalent(dfaOf(t, e1, alpha), dfaOf(t, e2, alpha))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("expected %q ≡ %q over %v", e1, e2, alpha)
	}
}

func assertDistinct(t *testing.T, alpha []string, e1, e2 string) {
	t.Helper()
	eq, err := Equivalent(dfaOf(t, e1, alpha), dfaOf(t, e2, alpha))
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("expected %q ≢ %q over %v", e1, e2, alpha)
	}
}

func TestLawStarIdempotent(t *testing.T) {
	alpha := []string{"a", "b"}
	assertEquivalent(t, alpha, "(a*)*", "a*")
	assertEquivalent(t, alpha, "(a|b)*", "((a|b)*)*")
}

func TestLawPlusStarRelations(t *testing.T) {
	alpha := []string{"a"}
	assertEquivalent(t, alpha, "a+", "a a*")
	assertEquivalent(t, alpha, "a*", "()|a+")
	assertEquivalent(t, alpha, "a?", "()|a")
}

func TestLawUnionCommutativeAssociative(t *testing.T) {
	alpha := []string{"a", "b", "c"}
	assertEquivalent(t, alpha, "a|b|c", "c|b|a")
	assertEquivalent(t, alpha, "(a|b)|c", "a|(b|c)")
	assertEquivalent(t, alpha, "a|a", "a")
}

func TestLawConcatDistributes(t *testing.T) {
	alpha := []string{"a", "b", "c"}
	assertEquivalent(t, alpha, "a (b|c)", "a b|a c")
	assertEquivalent(t, alpha, "(a|b) c", "a c|b c")
}

func TestLawEpsilonIdentity(t *testing.T) {
	alpha := []string{"a"}
	assertEquivalent(t, alpha, "() a", "a")
	assertEquivalent(t, alpha, "a ()", "a")
	assertEquivalent(t, alpha, "()*", "()")
}

func TestLawDeMorganViaComplement(t *testing.T) {
	alpha := []string{"a", "b"}
	a := dfaOf(t, "a (a|b)*", alpha)
	b := dfaOf(t, "(a|b)* b", alpha)
	// ¬(A ∪ B) = ¬A ∩ ¬B via explicit automata.
	union, err := Intersect(a.Complement(), b.Complement())
	if err != nil {
		t.Fatal(err)
	}
	// Build A ∪ B as ¬(¬A ∩ ¬B) and check equivalence with the syntactic
	// union.
	syntactic := dfaOf(t, "a (a|b)*|(a|b)* b", alpha)
	eq, err := Equivalent(union.Complement(), syntactic)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("De Morgan failed")
	}
}

func TestLawDistinctLanguages(t *testing.T) {
	alpha := []string{"a", "b"}
	assertDistinct(t, alpha, "a*", "a+")
	assertDistinct(t, alpha, "a b", "b a")
	assertDistinct(t, alpha, "a", "a a")
}

// Kleene-algebra sanity: (ab)*a ≡ a(ba)*.
func TestLawSlidingRule(t *testing.T) {
	assertEquivalent(t, []string{"a", "b"}, "(a b)* a", "a (b a)*")
}

// Complement really is with respect to the padded universe Σ ∪ {Other}:
// the complement of Σ* over alphabet {a} still rejects everything.
func TestComplementUniverse(t *testing.T) {
	alpha := []string{"a"}
	full := dfaOf(t, ".*", alpha)
	empty := full.Complement()
	if !empty.Empty() {
		t.Fatal("complement of Σ* must be empty")
	}
	if w, ok := empty.SomeWord(); ok {
		t.Fatalf("empty language yielded %v", w)
	}
}
