package rex

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the concrete syntax documented in the package comment.
func Parse(input string) (Regex, error) {
	p := &parser{input: input}
	p.next()
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("rex: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for fixed expressions in tests
// and gadget constructions.
func MustParse(input string) Regex {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokErr
	tokLabel
	tokDot
	tokLParen
	tokRParen
	tokPipe
	tokStar
	tokPlus
	tokQuest
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	input string
	pos   int
	tok   token
}

// isLabelRune reports whether r can occur in a label. The extra punctuation
// covers the separator labels of the paper's PCP gadget (#, ↔, m̄ written
// as m- is not needed since '-' is allowed).
func isLabelRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '#' || r == '↔'
}

func (p *parser) next() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	switch c := p.input[p.pos]; c {
	case '.':
		p.pos++
		p.tok = token{kind: tokDot, text: ".", pos: start}
	case '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
	case ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
	case '|':
		p.pos++
		p.tok = token{kind: tokPipe, text: "|", pos: start}
	case '*':
		p.pos++
		p.tok = token{kind: tokStar, text: "*", pos: start}
	case '+':
		p.pos++
		p.tok = token{kind: tokPlus, text: "+", pos: start}
	case '?':
		p.pos++
		p.tok = token{kind: tokQuest, text: "?", pos: start}
	default:
		rs := []rune(p.input[p.pos:])
		if !isLabelRune(rs[0]) {
			p.tok = token{kind: tokErr, text: string(rs[0]), pos: start}
			p.pos = len(p.input)
			return
		}
		var b strings.Builder
		for _, r := range rs {
			if !isLabelRune(r) {
				break
			}
			b.WriteRune(r)
		}
		p.pos += b.Len()
		p.tok = token{kind: tokLabel, text: b.String(), pos: start}
	}
}

func (p *parser) parseUnion() (Regex, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Regex{first}
	for p.tok.kind == tokPipe {
		p.next()
		alt, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, alt)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return Union{Alts: alts}, nil
}

func (p *parser) parseConcat() (Regex, error) {
	var factors []Regex
	for p.tok.kind == tokLabel || p.tok.kind == tokDot || p.tok.kind == tokLParen {
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		factors = append(factors, f)
	}
	switch len(factors) {
	case 0:
		return nil, fmt.Errorf("rex: expected expression at offset %d, got %q", p.tok.pos, p.tok.text)
	case 1:
		return factors[0], nil
	default:
		return Concat{Factors: factors}, nil
	}
}

func (p *parser) parseFactor() (Regex, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar:
			atom = Star{Inner: atom}
			p.next()
		case tokPlus:
			atom = Plus{Inner: atom}
			p.next()
		case tokQuest:
			atom = Opt{Inner: atom}
			p.next()
		default:
			return atom, nil
		}
	}
}

func (p *parser) parseAtom() (Regex, error) {
	switch p.tok.kind {
	case tokLabel:
		l := p.tok.text
		p.next()
		return Lit{Label: l}, nil
	case tokDot:
		p.next()
		return Any{}, nil
	case tokLParen:
		p.next()
		if p.tok.kind == tokRParen { // "()" is ε
			p.next()
			return Eps{}, nil
		}
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("rex: missing ')' at offset %d", p.tok.pos)
		}
		p.next()
		return e, nil
	default:
		return nil, fmt.Errorf("rex: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
}
