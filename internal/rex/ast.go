// Package rex implements ordinary regular expressions over a finite alphabet
// of edge labels, together with Thompson NFAs, subset-construction DFAs, and
// the Boolean operations (complement, intersection, equivalence) used by the
// paper's navigational machinery: RPQs of Section 2, the navigational parts
// of the Theorem 1 gadget, and the shape checks of the PCP encodings.
//
// Concrete syntax accepted by Parse:
//
//	expr    := term ('|' term)*          union (the paper's e + e)
//	term    := factor factor*            concatenation (juxtaposition)
//	factor  := atom ('*' | '+' | '?')*   star, plus, optional
//	atom    := label | '.' | '(' expr ')' | '()'
//
// Labels are runs of [A-Za-z0-9_#↔-]; '.' matches any single label (so the
// reachability RPQ Σ* is written ".*"); '()' is ε.
package rex

import (
	"sort"
	"strings"
)

// Regex is the AST of a regular expression over edge labels.
type Regex interface {
	// String renders the expression in the concrete syntax accepted by Parse.
	String() string
	isRegex()
}

// Eps matches the empty word ε.
type Eps struct{}

// Lit matches exactly one edge label.
type Lit struct{ Label string }

// Any matches any single edge label (the paper's Σ).
type Any struct{}

// Concat matches the concatenation of its factors, in order.
type Concat struct{ Factors []Regex }

// Union matches any of its alternatives (the paper's e + e).
type Union struct{ Alts []Regex }

// Star matches zero or more repetitions.
type Star struct{ Inner Regex }

// Plus matches one or more repetitions (the paper's e⁺).
type Plus struct{ Inner Regex }

// Opt matches zero or one occurrence.
type Opt struct{ Inner Regex }

func (Eps) isRegex()    {}
func (Lit) isRegex()    {}
func (Any) isRegex()    {}
func (Concat) isRegex() {}
func (Union) isRegex()  {}
func (Star) isRegex()   {}
func (Plus) isRegex()   {}
func (Opt) isRegex()    {}

func (Eps) String() string   { return "()" }
func (l Lit) String() string { return l.Label }
func (Any) String() string   { return "." }

func (c Concat) String() string {
	parts := make([]string, len(c.Factors))
	for i, f := range c.Factors {
		s := f.String()
		if _, isUnion := f.(Union); isUnion {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "|")
}

func groupString(e Regex) string {
	switch e.(type) {
	case Lit, Any, Eps:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

func (s Star) String() string { return groupString(s.Inner) + "*" }
func (p Plus) String() string { return groupString(p.Inner) + "+" }
func (o Opt) String() string  { return groupString(o.Inner) + "?" }

// Word returns the regex matching exactly the given word a₁…aₙ (a word RPQ,
// Definition 3's right-hand sides). The empty word yields ε.
func Word(labels ...string) Regex {
	if len(labels) == 0 {
		return Eps{}
	}
	fs := make([]Regex, len(labels))
	for i, l := range labels {
		fs[i] = Lit{Label: l}
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return Concat{Factors: fs}
}

// Reachability returns Σ*, the simplest reachability RPQ.
func Reachability() Regex { return Star{Inner: Any{}} }

// Labels returns the set of labels mentioned in the expression, sorted.
// Any (Σ) contributes nothing.
func Labels(e Regex) []string {
	set := make(map[string]struct{})
	var walk func(Regex)
	walk = func(e Regex) {
		switch t := e.(type) {
		case Lit:
			set[t.Label] = struct{}{}
		case Concat:
			for _, f := range t.Factors {
				walk(f)
			}
		case Union:
			for _, a := range t.Alts {
				walk(a)
			}
		case Star:
			walk(t.Inner)
		case Plus:
			walk(t.Inner)
		case Opt:
			walk(t.Inner)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// IsWord reports whether e denotes exactly one word, and returns that word.
// Word RPQs are the building blocks of relational mappings (Definition 3).
func IsWord(e Regex) ([]string, bool) {
	switch t := e.(type) {
	case Eps:
		return []string{}, true
	case Lit:
		return []string{t.Label}, true
	case Concat:
		var out []string
		for _, f := range t.Factors {
			w, ok := IsWord(f)
			if !ok {
				return nil, false
			}
			out = append(out, w...)
		}
		return out, true
	default:
		return nil, false
	}
}

// IsReachability reports whether e is the unconstrained reachability query
// Σ* (either Star{Any} or Any-plus with optional, recognised structurally).
func IsReachability(e Regex) bool {
	switch t := e.(type) {
	case Star:
		_, ok := t.Inner.(Any)
		return ok
	default:
		return false
	}
}
