package rex

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func match(t *testing.T, expr string, word ...string) bool {
	t.Helper()
	e, err := Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return Compile(e).Matches(word)
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "|a", "a|", "(", ")", "(a", "*", "a))", "a^b", "a | | b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, expr := range []string{
		"a", "a b", "a|b", "(a|b) c", "a*", "a+", "a?", ".", ".*",
		"()", "(a b)*", "a (b|c)+ d", "a|b|c", "knows* likes",
	} {
		e, err := Parse(expr)
		if err != nil {
			t.Fatalf("parse %q: %v", expr, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", e.String(), expr, err)
		}
		if e.String() != e2.String() {
			t.Errorf("round trip: %q -> %q -> %q", expr, e.String(), e2.String())
		}
	}
}

func TestBasicMatching(t *testing.T) {
	cases := []struct {
		expr string
		word []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a", []string{}, false},
		{"()", []string{}, true},
		{"()", []string{"a"}, false},
		{"a b", []string{"a", "b"}, true},
		{"a b", []string{"a"}, false},
		{"a|b", []string{"b"}, true},
		{"a|b", []string{"c"}, false},
		{"a*", []string{}, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a*", []string{"a", "b"}, false},
		{"a+", []string{}, false},
		{"a+", []string{"a"}, true},
		{"a?", []string{}, true},
		{"a?", []string{"a"}, true},
		{"a?", []string{"a", "a"}, false},
		{".", []string{"anything"}, true},
		{".", []string{}, false},
		{".*", []string{}, true},
		{".*", []string{"x", "y", "z"}, true},
		{"(a b)*", []string{"a", "b", "a", "b"}, true},
		{"(a b)*", []string{"a", "b", "a"}, false},
		{"a (b|c)+ d", []string{"a", "b", "c", "b", "d"}, true},
		{"a (b|c)+ d", []string{"a", "d"}, false},
	}
	for _, c := range cases {
		if got := match(t, c.expr, c.word...); got != c.want {
			t.Errorf("match(%q, %v) = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

func TestMultiCharLabels(t *testing.T) {
	if !match(t, "knows friend_of", "knows", "friend_of") {
		t.Fatal("multi-char labels should work")
	}
	if match(t, "knows", "kno") {
		t.Fatal("prefix of label must not match")
	}
}

func TestWordAndReachabilityHelpers(t *testing.T) {
	w := Word("a", "b", "c")
	if got, ok := IsWord(w); !ok || !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("IsWord(Word(a,b,c)) = %v, %v", got, ok)
	}
	if _, ok := IsWord(MustParse("a*")); ok {
		t.Fatal("a* is not a word")
	}
	if got, ok := IsWord(Word()); !ok || len(got) != 0 {
		t.Fatal("empty Word should be the empty word")
	}
	if !IsReachability(Reachability()) {
		t.Fatal("Reachability() not recognised")
	}
	if !IsReachability(MustParse(".*")) {
		t.Fatal(".* should be reachability")
	}
	if IsReachability(MustParse("a*")) {
		t.Fatal("a* is not reachability")
	}
}

func TestLabels(t *testing.T) {
	e := MustParse("a (b|c)+ . a*")
	if got := Labels(e); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Labels = %v", got)
	}
}

func TestNFAEmptyAndSomeWord(t *testing.T) {
	if Compile(MustParse("a")).Empty() {
		t.Fatal("a is nonempty")
	}
	w, ok := Compile(MustParse("a b|c")).SomeWord()
	if !ok {
		t.Fatal("expected a witness word")
	}
	if !Compile(MustParse("a b|c")).Matches(w) {
		t.Fatalf("witness %v not accepted", w)
	}
	if w2, ok := Compile(MustParse("()")).SomeWord(); !ok || len(w2) != 0 {
		t.Fatalf("epsilon witness = %v, %v", w2, ok)
	}
}

func TestDeterminizeAgreesWithNFA(t *testing.T) {
	exprs := []string{"a", "a b", "a|b", "a*", "(a b)* c?", "a (b|c)+", ".* a .*", ". . ."}
	alpha := []string{"a", "b", "c"}
	words := [][]string{
		{}, {"a"}, {"b"}, {"c"}, {"a", "b"}, {"b", "a"}, {"a", "b", "c"},
		{"a", "a"}, {"c", "c", "c"}, {"a", "b", "a", "b"}, {"z"}, {"a", "z", "b"},
	}
	for _, expr := range exprs {
		n := Compile(MustParse(expr))
		d := Determinize(n, alpha)
		for _, w := range words {
			if n.Matches(w) != d.Matches(w) {
				t.Errorf("expr %q word %v: NFA %v, DFA %v", expr, w, n.Matches(w), d.Matches(w))
			}
		}
	}
}

func TestComplement(t *testing.T) {
	d := Determinize(Compile(MustParse("a*")), []string{"a", "b"})
	c := d.Complement()
	for _, w := range [][]string{{}, {"a"}, {"a", "a"}, {"b"}, {"a", "b"}} {
		if d.Matches(w) == c.Matches(w) {
			t.Errorf("complement agrees on %v", w)
		}
	}
}

func TestIntersectAndEquivalence(t *testing.T) {
	alpha := []string{"a", "b"}
	d1 := Determinize(Compile(MustParse("a* b")), alpha)
	d2 := Determinize(Compile(MustParse(". . | b")), alpha)
	in, err := Intersect(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	// a* b ∩ (..|b) = {b, ab}
	for _, c := range []struct {
		w    []string
		want bool
	}{
		{[]string{"b"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b"}, false},
		{[]string{"a"}, false},
	} {
		if got := in.Matches(c.w); got != c.want {
			t.Errorf("intersection on %v = %v, want %v", c.w, got, c.want)
		}
	}
	// (a|b)* ≡ .* over alphabet {a,b}... NOT equivalent because .* also
	// accepts out-of-alphabet labels (the Other column).
	e1 := Determinize(Compile(MustParse("(a|b)*")), alpha)
	e2 := Determinize(Compile(MustParse(".*")), alpha)
	eq, err := Equivalent(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("(a|b)* must differ from .* on out-of-alphabet words")
	}
	// But a|b ≡ b|a.
	f1 := Determinize(Compile(MustParse("a|b")), alpha)
	f2 := Determinize(Compile(MustParse("b|a")), alpha)
	eq, err = Equivalent(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("a|b should equal b|a")
	}
	// Mismatched alphabets error.
	g := Determinize(Compile(MustParse("a")), []string{"a"})
	if _, err := Intersect(d1, g); err == nil {
		t.Fatal("intersect with mismatched alphabets must fail")
	}
}

func TestDFAEmptyAndSomeWord(t *testing.T) {
	alpha := []string{"a"}
	d := Determinize(Compile(MustParse("a")), alpha)
	dead, err := Intersect(d, d.Complement())
	if err != nil {
		t.Fatal(err)
	}
	if !dead.Empty() {
		t.Fatal("L ∩ ¬L must be empty")
	}
	if _, ok := dead.SomeWord(); ok {
		t.Fatal("empty language has no witness")
	}
	w, ok := d.SomeWord()
	if !ok || !d.Matches(w) {
		t.Fatalf("witness %v, ok=%v", w, ok)
	}
}

// Property: for random simple expressions, DFA and NFA agree on random words.
func TestQuickNFADFAAgreement(t *testing.T) {
	alpha := []string{"a", "b"}
	gen := func(seed uint16) string {
		// Tiny expression grammar driven by seed bits.
		parts := []string{"a", "b", "a|b", "a*", "b+", "(a b)?", "."}
		s1 := parts[int(seed)%len(parts)]
		s2 := parts[int(seed/7)%len(parts)]
		switch (seed / 49) % 3 {
		case 0:
			return s1 + " " + s2
		case 1:
			return "(" + s1 + ")|(" + s2 + ")"
		default:
			return "(" + s1 + " " + s2 + ")*"
		}
	}
	f := func(seed uint16, wordBits uint8, wordLen uint8) bool {
		expr := gen(seed)
		n := Compile(MustParse(expr))
		d := Determinize(n, alpha)
		l := int(wordLen % 6)
		word := make([]string, l)
		for i := 0; i < l; i++ {
			if wordBits&(1<<i) != 0 {
				word[i] = "a"
			} else {
				word[i] = "b"
			}
		}
		return n.Matches(word) == d.Matches(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: complement of complement is the original language (tested via
// Equivalent).
func TestQuickDoubleComplement(t *testing.T) {
	alpha := []string{"a", "b"}
	exprs := []string{"a", "a b", "a|b*", "(a|b)*", "a+ b?", ".*"}
	for _, expr := range exprs {
		d := Determinize(Compile(MustParse(expr)), alpha)
		eq, err := Equivalent(d, d.Complement().Complement())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("¬¬L ≠ L for %q", expr)
		}
	}
}

func TestUnicodeLabelRunes(t *testing.T) {
	// The PCP gadget uses ↔ and # as labels.
	e, err := Parse("t ↔ #")
	if err != nil {
		t.Fatal(err)
	}
	if !Compile(e).Matches([]string{"t", "↔", "#"}) {
		t.Fatal("unicode separator labels should parse and match")
	}
}

func TestStringGrouping(t *testing.T) {
	// Union nested under concat must parenthesise on render.
	e := Concat{Factors: []Regex{Lit{"a"}, Union{Alts: []Regex{Lit{"b"}, Lit{"c"}}}}}
	s := e.String()
	if !strings.Contains(s, "(") {
		t.Fatalf("expected grouping in %q", s)
	}
	if MustParse(s).String() != s {
		t.Fatalf("render of %q unstable", s)
	}
}
