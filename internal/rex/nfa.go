package rex

// NFA is a nondeterministic finite automaton over edge labels, built by
// Thompson construction. Transitions carry either a specific label, the
// wildcard Any (matching every label), or ε.
type NFA struct {
	// NumStates is the number of states, numbered 0..NumStates-1.
	NumStates int
	// Start is the initial state.
	Start int
	// Accept is the single accepting state (Thompson construction invariant).
	Accept int
	// Eps[s] lists the ε-successors of s.
	Eps [][]int
	// Steps[s] lists the consuming transitions out of s.
	Steps [][]NFAStep

	epsClosure [][]int // memoized ε-closures
}

// NFAStep is a consuming transition: on reading a label matching the step,
// move to To.
type NFAStep struct {
	// Label is the required label; ignored when AnyLabel is set.
	Label string
	// AnyLabel makes the step match every label (the paper's Σ).
	AnyLabel bool
	To       int
}

// Matches reports whether the step fires on the given label.
func (s NFAStep) Matches(label string) bool { return s.AnyLabel || s.Label == label }

// Compile builds an NFA from a regular expression by Thompson construction.
func Compile(e Regex) *NFA {
	b := &nfaBuilder{}
	start, accept := b.build(e)
	n := &NFA{
		NumStates: b.n,
		Start:     start,
		Accept:    accept,
		Eps:       b.eps,
		Steps:     b.steps,
	}
	n.epsClosure = make([][]int, n.NumStates)
	// Precompute every ε-closure so the NFA is immutable afterwards: compiled
	// queries are shared across the engine's worker goroutines, and a lazy
	// memo would race.
	for s := 0; s < n.NumStates; s++ {
		n.Closure(s)
	}
	return n
}

type nfaBuilder struct {
	n     int
	eps   [][]int
	steps [][]NFAStep
}

func (b *nfaBuilder) state() int {
	b.n++
	b.eps = append(b.eps, nil)
	b.steps = append(b.steps, nil)
	return b.n - 1
}

func (b *nfaBuilder) addEps(from, to int) { b.eps[from] = append(b.eps[from], to) }

func (b *nfaBuilder) build(e Regex) (start, accept int) {
	switch t := e.(type) {
	case Eps:
		s, a := b.state(), b.state()
		b.addEps(s, a)
		return s, a
	case Lit:
		s, a := b.state(), b.state()
		b.steps[s] = append(b.steps[s], NFAStep{Label: t.Label, To: a})
		return s, a
	case Any:
		s, a := b.state(), b.state()
		b.steps[s] = append(b.steps[s], NFAStep{AnyLabel: true, To: a})
		return s, a
	case Concat:
		if len(t.Factors) == 0 {
			return b.build(Eps{})
		}
		start, accept = b.build(t.Factors[0])
		for _, f := range t.Factors[1:] {
			s2, a2 := b.build(f)
			b.addEps(accept, s2)
			accept = a2
		}
		return start, accept
	case Union:
		s, a := b.state(), b.state()
		for _, alt := range t.Alts {
			as, aa := b.build(alt)
			b.addEps(s, as)
			b.addEps(aa, a)
		}
		return s, a
	case Star:
		s, a := b.state(), b.state()
		is, ia := b.build(t.Inner)
		b.addEps(s, is)
		b.addEps(s, a)
		b.addEps(ia, is)
		b.addEps(ia, a)
		return s, a
	case Plus:
		s, a := b.state(), b.state()
		is, ia := b.build(t.Inner)
		b.addEps(s, is)
		b.addEps(ia, is)
		b.addEps(ia, a)
		return s, a
	case Opt:
		s, a := b.state(), b.state()
		is, ia := b.build(t.Inner)
		b.addEps(s, is)
		b.addEps(s, a)
		b.addEps(ia, a)
		return s, a
	default:
		panic("rex: unknown regex node")
	}
}

// Closure returns the ε-closure of state s (memoized, sorted).
func (n *NFA) Closure(s int) []int {
	if n.epsClosure[s] != nil {
		return n.epsClosure[s]
	}
	seen := make([]bool, n.NumStates)
	stack := []int{s}
	seen[s] = true
	var out []int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, cur)
		for _, nx := range n.Eps[cur] {
			if !seen[nx] {
				seen[nx] = true
				stack = append(stack, nx)
			}
		}
	}
	// Insertion sort keeps closures deterministic for subset construction.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	n.epsClosure[s] = out
	return out
}

// closureOfSet returns the ε-closure of a set of states as a sorted set.
func (n *NFA) closureOfSet(states []int) []int {
	seen := make([]bool, n.NumStates)
	var out []int
	for _, s := range states {
		for _, c := range n.Closure(s) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Matches reports whether the NFA accepts the word (sequence of labels).
func (n *NFA) Matches(word []string) bool {
	cur := n.Closure(n.Start)
	for _, label := range word {
		var next []int
		seen := make(map[int]struct{})
		for _, s := range cur {
			for _, step := range n.Steps[s] {
				if step.Matches(label) {
					if _, dup := seen[step.To]; !dup {
						seen[step.To] = struct{}{}
						next = append(next, step.To)
					}
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = n.closureOfSet(next)
	}
	for _, s := range cur {
		if s == n.Accept {
			return true
		}
	}
	return false
}

// Empty reports whether L(NFA) = ∅, i.e. the accept state is unreachable.
func (n *NFA) Empty() bool {
	seen := make([]bool, n.NumStates)
	stack := []int{n.Start}
	seen[n.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == n.Accept {
			return false
		}
		for _, nx := range n.Eps[s] {
			if !seen[nx] {
				seen[nx] = true
				stack = append(stack, nx)
			}
		}
		for _, st := range n.Steps[s] {
			if !seen[st.To] {
				seen[st.To] = true
				stack = append(stack, st.To)
			}
		}
	}
	return true
}

// SomeWord returns a shortest accepted word, if any (BFS over states).
func (n *NFA) SomeWord() ([]string, bool) {
	type entry struct {
		state int
		word  []string
	}
	seen := make([]bool, n.NumStates)
	queue := []entry{}
	for _, c := range n.Closure(n.Start) {
		if !seen[c] {
			seen[c] = true
			queue = append(queue, entry{c, nil})
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if e.state == n.Accept {
			return e.word, true
		}
		for _, st := range n.Steps[e.state] {
			label := st.Label
			if st.AnyLabel {
				label = "·" // canonical wildcard witness
			}
			for _, c := range n.Closure(st.To) {
				if !seen[c] {
					seen[c] = true
					w := make([]string, len(e.word)+1)
					copy(w, e.word)
					w[len(e.word)] = label
					queue = append(queue, entry{c, w})
				}
			}
		}
	}
	return nil, false
}
