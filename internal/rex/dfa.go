package rex

import (
	"fmt"
	"sort"
	"strings"
)

// Other is the pseudo-label used by DFAs to represent "any label not in the
// declared alphabet". NFAs built from expressions with Any (Σ) transitions
// accept words over an unbounded label set; to determinize we fix a finite
// alphabet and fold every out-of-alphabet label into Other.
const Other = "\x00other"

// DFA is a total deterministic automaton over alphabet ∪ {Other}. State 0 is
// the start state. Trans[s][symbolIndex] gives the successor; symbol indices
// follow Alphabet order, with Other at index len(Alphabet).
type DFA struct {
	Alphabet []string
	Trans    [][]int
	Accepts  []bool
}

// symIndex maps a concrete label to its transition column.
func (d *DFA) symIndex(label string) int {
	for i, a := range d.Alphabet {
		if a == label {
			return i
		}
	}
	return len(d.Alphabet)
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Trans) }

// Matches reports whether the DFA accepts the word. Labels outside the
// alphabet take the Other column.
func (d *DFA) Matches(word []string) bool {
	s := 0
	for _, label := range word {
		s = d.Trans[s][d.symIndex(label)]
	}
	return d.Accepts[s]
}

// Determinize converts the NFA to a total DFA over the given alphabet (plus
// Other). The alphabet should include every label the caller cares to
// distinguish; Any-transitions fire on all columns including Other.
func Determinize(n *NFA, alphabet []string) *DFA {
	alpha := append([]string(nil), alphabet...)
	sort.Strings(alpha)
	cols := len(alpha) + 1

	key := func(set []int) string {
		var b strings.Builder
		for _, s := range set {
			fmt.Fprintf(&b, "%d,", s)
		}
		return b.String()
	}

	start := n.Closure(n.Start)
	d := &DFA{Alphabet: alpha}
	ids := map[string]int{key(start): 0}
	sets := [][]int{start}
	d.Trans = append(d.Trans, make([]int, cols))
	d.Accepts = append(d.Accepts, containsState(start, n.Accept))

	for i := 0; i < len(sets); i++ {
		set := sets[i]
		for c := 0; c < cols; c++ {
			var label string
			other := c == len(alpha)
			if !other {
				label = alpha[c]
			}
			var next []int
			seen := make(map[int]struct{})
			for _, s := range set {
				for _, step := range n.Steps[s] {
					fires := step.AnyLabel || (!other && step.Label == label)
					if fires {
						if _, dup := seen[step.To]; !dup {
							seen[step.To] = struct{}{}
							next = append(next, step.To)
						}
					}
				}
			}
			closed := n.closureOfSet(next)
			k := key(closed)
			id, ok := ids[k]
			if !ok {
				id = len(sets)
				ids[k] = id
				sets = append(sets, closed)
				d.Trans = append(d.Trans, make([]int, cols))
				d.Accepts = append(d.Accepts, containsState(closed, n.Accept))
			}
			d.Trans[i][c] = id
		}
	}
	return d
}

func containsState(sorted []int, s int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] < s:
			lo = mid + 1
		case sorted[mid] > s:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Complement returns the DFA accepting exactly the words d rejects (over the
// same alphabet ∪ Other universe).
func (d *DFA) Complement() *DFA {
	acc := make([]bool, len(d.Accepts))
	for i, a := range d.Accepts {
		acc[i] = !a
	}
	trans := make([][]int, len(d.Trans))
	for i, row := range d.Trans {
		trans[i] = append([]int(nil), row...)
	}
	return &DFA{Alphabet: append([]string(nil), d.Alphabet...), Trans: trans, Accepts: acc}
}

// Intersect returns the product DFA recognising L(d) ∩ L(e). Both automata
// must have the same alphabet.
func Intersect(d, e *DFA) (*DFA, error) {
	if !sameAlphabet(d.Alphabet, e.Alphabet) {
		return nil, fmt.Errorf("rex: intersect requires identical alphabets: %v vs %v", d.Alphabet, e.Alphabet)
	}
	cols := len(d.Alphabet) + 1
	type pair struct{ a, b int }
	ids := map[pair]int{{0, 0}: 0}
	order := []pair{{0, 0}}
	out := &DFA{Alphabet: append([]string(nil), d.Alphabet...)}
	out.Trans = append(out.Trans, make([]int, cols))
	out.Accepts = append(out.Accepts, d.Accepts[0] && e.Accepts[0])
	for i := 0; i < len(order); i++ {
		p := order[i]
		for c := 0; c < cols; c++ {
			np := pair{d.Trans[p.a][c], e.Trans[p.b][c]}
			id, ok := ids[np]
			if !ok {
				id = len(order)
				ids[np] = id
				order = append(order, np)
				out.Trans = append(out.Trans, make([]int, cols))
				out.Accepts = append(out.Accepts, d.Accepts[np.a] && e.Accepts[np.b])
			}
			out.Trans[i][c] = id
		}
	}
	return out, nil
}

func sameAlphabet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the DFA accepts no word.
func (d *DFA) Empty() bool {
	seen := make([]bool, len(d.Trans))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accepts[s] {
			return false
		}
		for _, nx := range d.Trans[s] {
			if !seen[nx] {
				seen[nx] = true
				stack = append(stack, nx)
			}
		}
	}
	return true
}

// SomeWord returns a shortest accepted word, using Other's canonical
// rendering "·" for the out-of-alphabet column.
func (d *DFA) SomeWord() ([]string, bool) {
	type entry struct {
		state int
		word  []string
	}
	seen := make([]bool, len(d.Trans))
	queue := []entry{{0, nil}}
	seen[0] = true
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if d.Accepts[e.state] {
			return e.word, true
		}
		for c, nx := range d.Trans[e.state] {
			if seen[nx] {
				continue
			}
			seen[nx] = true
			label := "·"
			if c < len(d.Alphabet) {
				label = d.Alphabet[c]
			}
			w := make([]string, len(e.word)+1)
			copy(w, e.word)
			w[len(e.word)] = label
			queue = append(queue, entry{nx, w})
		}
	}
	return nil, false
}

// Equivalent reports whether d and e accept the same language (over the
// shared alphabet ∪ Other universe).
func Equivalent(d, e *DFA) (bool, error) {
	de, err := Intersect(d, e.Complement())
	if err != nil {
		return false, err
	}
	ed, err := Intersect(e, d.Complement())
	if err != nil {
		return false, err
	}
	return de.Empty() && ed.Empty(), nil
}
