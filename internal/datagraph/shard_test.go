package datagraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomShardGraph builds a deterministic pseudo-random graph for the
// sharding invariants below.
func randomShardGraph(nodes, edges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < nodes; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("n%03d", i)), V(fmt.Sprintf("v%d", rng.Intn(7))))
	}
	labels := []string{"a", "b", "c"}
	for i := 0; i < edges; i++ {
		from := g.Node(rng.Intn(nodes)).ID
		to := g.Node(rng.Intn(nodes)).ID
		g.AddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	return g
}

// checkShardedInvariants verifies the structural contract of a sharded
// snapshot against its graph: each node owned exactly once; every edge
// present in its source's fragment and, when cross-shard, in its target's
// fragment too with both endpoints in the boundary set; ghost ownership and
// the global↔local mapping consistent.
func checkShardedInvariants(t *testing.T, g *Graph, ss *ShardedSnapshot) {
	t.Helper()
	part := ss.Partition()
	ownedCount := make([]int, g.NumNodes())
	for s := 0; s < ss.NumShards(); s++ {
		fs := ss.Shard(s)
		fg := fs.Graph()
		for l := 0; l < fg.NumNodes(); l++ {
			gi := fs.GlobalOf(l)
			if fg.Node(l).ID != g.Node(gi).ID {
				t.Fatalf("shard %d local %d: id %s mapped to global %d (%s)",
					s, l, fg.Node(l).ID, gi, g.Node(gi).ID)
			}
			if owner := fs.GhostOwner(l); owner == -1 {
				ownedCount[gi]++
				if part.ShardOf(gi) != s {
					t.Fatalf("shard %d claims node %s owned by shard %d", s, fg.Node(l).ID, part.ShardOf(gi))
				}
			} else if part.ShardOf(gi) != owner {
				t.Fatalf("ghost %s in shard %d: recorded owner %d, partition says %d",
					fg.Node(l).ID, s, owner, part.ShardOf(gi))
			}
		}
		for i, l := range fs.OwnedLocals() {
			if i > 0 && fs.OwnedLocals()[i-1] >= l {
				t.Fatalf("shard %d: owned locals not ascending", s)
			}
			if fs.GhostOwner(int(l)) != -1 {
				t.Fatalf("shard %d: owned local %d marked as ghost", s, l)
			}
		}
	}
	for gi, c := range ownedCount {
		if c != 1 {
			t.Fatalf("node %s owned %d times", g.Node(gi).ID, c)
		}
	}
	boundary := make(map[int32]bool, len(ss.BoundaryNodes()))
	for i, b := range ss.BoundaryNodes() {
		if i > 0 && ss.BoundaryNodes()[i-1] >= b {
			t.Fatal("boundary nodes not ascending")
		}
		boundary[b] = true
	}
	cross := 0
	for _, e := range g.Edges() {
		fi, _ := g.IndexOf(e.From)
		ti, _ := g.IndexOf(e.To)
		su, sv := part.ShardOf(fi), part.ShardOf(ti)
		if !ss.Shard(su).Graph().HasEdge(e.From, e.Label, e.To) {
			t.Fatalf("edge %v missing from source shard %d", e, su)
		}
		if su != sv {
			cross++
			if !ss.Shard(sv).Graph().HasEdge(e.From, e.Label, e.To) {
				t.Fatalf("cross edge %v missing from target shard %d", e, sv)
			}
			if !boundary[int32(fi)] || !boundary[int32(ti)] {
				t.Fatalf("cross edge %v endpoints not in boundary set", e)
			}
		}
	}
	if cross != ss.CrossEdges() {
		t.Fatalf("CrossEdges() = %d, counted %d", ss.CrossEdges(), cross)
	}
	// Fragment edges must all exist in the graph (no inventions).
	total := 0
	for s := 0; s < ss.NumShards(); s++ {
		for _, e := range ss.Shard(s).Graph().Edges() {
			if !g.HasEdge(e.From, e.Label, e.To) {
				t.Fatalf("shard %d invented edge %v", s, e)
			}
		}
		total += ss.Shard(s).NumOwned()
	}
	if total != g.NumNodes() {
		t.Fatalf("owned nodes total %d, graph has %d", total, g.NumNodes())
	}
}

func TestFreezeShardedInvariants(t *testing.T) {
	for _, policy := range []PartitionPolicy{PartitionHash, PartitionRange} {
		for _, shards := range []int{1, 2, 3, 5} {
			g := randomShardGraph(60, 180, 42)
			ss := g.FreezeSharded(shards, policy)
			if ss.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", ss.NumShards(), shards)
			}
			checkShardedInvariants(t, g, ss)
			if again := g.FreezeSharded(shards, policy); again != ss {
				t.Fatalf("policy %v shards %d: unchanged graph rebuilt its sharded snapshot", policy, shards)
			}
		}
	}
}

func TestFreezeShardedExtendsIncrementally(t *testing.T) {
	for _, policy := range []PartitionPolicy{PartitionHash, PartitionRange} {
		g := randomShardGraph(40, 100, 7)
		ss1 := g.FreezeSharded(3, policy)
		checkShardedInvariants(t, g, ss1)

		// Record assignments, then append an update burst.
		before := make([]int, g.NumNodes())
		for i := range before {
			before[i] = ss1.Partition().ShardOf(i)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 15; i++ {
			g.MustAddNode(NodeID(fmt.Sprintf("x%03d", i)), V("new"))
		}
		for i := 0; i < 60; i++ {
			from := g.Node(rng.Intn(g.NumNodes())).ID
			to := g.Node(rng.Intn(g.NumNodes())).ID
			g.AddEdge(from, "a", to)
		}

		ss2 := g.FreezeSharded(3, policy)
		if ss2 == ss1 {
			t.Fatal("append burst did not produce a new sharded snapshot")
		}
		// Incremental extension must reuse fragments, not rebuild them.
		for s := 0; s < 3; s++ {
			if ss2.Shard(s) != ss1.Shard(s) {
				t.Fatalf("policy %v: shard %d was rebuilt instead of extended", policy, s)
			}
		}
		// Existing assignments are stable under extension.
		for i, want := range before {
			if got := ss2.Partition().ShardOf(i); got != want {
				t.Fatalf("policy %v: node %d reassigned %d -> %d", policy, i, want, got)
			}
		}
		checkShardedInvariants(t, g, ss2)
	}
}

func TestFreezeShardedValueChangeRebuilds(t *testing.T) {
	g := randomShardGraph(20, 40, 3)
	ss1 := g.FreezeSharded(2, PartitionHash)
	g.SetValue(0, V("overwritten"))
	ss2 := g.FreezeSharded(2, PartitionHash)
	if ss2 == ss1 {
		t.Fatal("value overwrite did not invalidate the sharded snapshot")
	}
	id := g.Node(0).ID
	s := ss2.Partition().ShardOf(0)
	n, ok := ss2.Shard(s).Graph().NodeByID(id)
	if !ok || n.Value.Raw() != "overwritten" {
		t.Fatalf("fragment node %s did not pick up overwritten value (got %v)", id, n.Value)
	}
	checkShardedInvariants(t, g, ss2)
}

func TestFreezeShardedConfigChangeRebuilds(t *testing.T) {
	g := randomShardGraph(20, 40, 5)
	ss2 := g.FreezeSharded(2, PartitionHash)
	ss3 := g.FreezeSharded(3, PartitionHash)
	if ss3.NumShards() != 3 {
		t.Fatalf("NumShards = %d after reconfigure", ss3.NumShards())
	}
	checkShardedInvariants(t, g, ss3)
	ssr := g.FreezeSharded(2, PartitionRange)
	if ssr.Partition().Policy() != PartitionRange {
		t.Fatal("policy change ignored")
	}
	checkShardedInvariants(t, g, ssr)
	_ = ss2
}

func TestParsePartitionPolicy(t *testing.T) {
	if p, err := ParsePartitionPolicy("hash"); err != nil || p != PartitionHash {
		t.Fatalf("hash: %v %v", p, err)
	}
	if p, err := ParsePartitionPolicy("range"); err != nil || p != PartitionRange {
		t.Fatalf("range: %v %v", p, err)
	}
	if _, err := ParsePartitionPolicy("modulo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
