package datagraph

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a node; ids are drawn from the countable set N of the
// paper. Within one graph no two nodes share an id.
type NodeID string

// Node is a pair (id, value) as in Section 2 of the paper.
type Node struct {
	ID    NodeID
	Value Value
}

// IsNullNode reports whether the node is a null node (n, n) of Section 7,
// i.e. its value is the SQL null.
func (n Node) IsNullNode() bool { return n.Value.IsNull() }

func (n Node) String() string { return fmt.Sprintf("(%s,%s)", string(n.ID), n.Value) }

// Edge is a labeled edge (v, a, v′).
type Edge struct {
	From  NodeID
	Label string
	To    NodeID
}

func (e Edge) String() string {
	return fmt.Sprintf("%s -%s-> %s", string(e.From), e.Label, string(e.To))
}

// HalfEdge is an adjacency entry: an edge seen from one endpoint.
type HalfEdge struct {
	Label string
	To    int // dense node index of the other endpoint
}

// seqEdge is an edge in the global insertion-order log, with endpoints as
// dense indices. The log is what derived structures (label indexes,
// snapshots) are rebuilt from, deterministically. It is strictly
// append-only — as is the node list — which is what lets a cached Snapshot
// treat its (frozenNodes, frozenEdges) watermark as a prefix of the current
// state and freeze incrementally (see buildDelta).
type seqEdge struct {
	from, to int32
	label    string
}

// Graph is a data graph G = ⟨V, E⟩: a finite set of nodes with unique ids and
// a set of labeled edges E ⊆ V × Σ × V. Nodes are stored densely; evaluators
// address nodes by their index (0-based insertion order), while the public
// API also accepts NodeIDs.
//
// Mutation (AddNode/AddEdge/SetValue) maintains only the flat adjacency
// lists and the edge set; the per-label string-keyed indexes behind
// OutEdges/InEdges/LabelPairs are built lazily on first use and invalidated
// by topology changes. The hot evaluation form is a frozen Snapshot (see
// Freeze): interned labels and values with CSR adjacency, cached on the
// graph and shared by concurrent evaluators.
//
// The zero Graph is empty and ready to use. A Graph is safe for concurrent
// readers once construction is complete; mutation is not synchronized.
type Graph struct {
	nodes []Node
	index map[NodeID]int
	edges map[Edge]struct{}
	seq   []seqEdge

	// topoVersion counts node/edge insertions, valVersion value overwrites;
	// together they key the derived-structure caches below.
	topoVersion uint64
	valVersion  uint64
	aidx        atomic.Pointer[adjIndex]
	lidx        atomic.Pointer[labelIndex]
	snap        atomic.Pointer[Snapshot]
	// sharded caches the partitioned freeze (see FreezeSharded), keyed by
	// the version counters plus its (shards, policy) configuration.
	sharded atomic.Pointer[ShardedSnapshot]

	// snapFull/snapDelta count snapshot constructions by kind (full rebuild
	// vs delta merge) over the graph's lifetime; see SnapshotBuilds.
	snapFull  atomic.Uint64
	snapDelta atomic.Uint64
}

// adjIndex is the lazily built flat adjacency form behind Out/In: per-node
// half-edge lists carved out of two contiguous backing arrays, rebuilt in
// one counting pass over the edge log. Keeping it out of AddEdge makes
// edge insertion allocation-free apart from the log and the edge set.
type adjIndex struct {
	topoVersion uint64
	out         [][]HalfEdge
	in          [][]HalfEdge
}

// labelIndex is the lazily built per-label adjacency index serving the
// string-keyed accessors on unfrozen graphs.
type labelIndex struct {
	topoVersion uint64
	out         []map[string][]int // node -> label -> successor indices
	in          []map[string][]int // node -> label -> predecessor indices
	byLabel     map[string][]Pair  // label -> (from, to) dense-index pairs
}

// New returns an empty data graph.
func New() *Graph {
	return &Graph{
		index: make(map[NodeID]int),
		edges: make(map[Edge]struct{}),
	}
}

func (g *Graph) ensureInit() {
	if g.index == nil {
		g.index = make(map[NodeID]int)
	}
	if g.edges == nil {
		g.edges = make(map[Edge]struct{})
	}
}

// AddNode inserts the node (id, value). It returns an error if the id is
// already present (node ids are unique within a data graph).
func (g *Graph) AddNode(id NodeID, value Value) error {
	g.ensureInit()
	if _, dup := g.index[id]; dup {
		return fmt.Errorf("datagraph: duplicate node id %q", string(id))
	}
	g.index[id] = len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Value: value})
	g.topoVersion++
	return nil
}

// MustAddNode is AddNode that panics on error; intended for tests and
// literals where duplicate ids are a programming error.
func (g *Graph) MustAddNode(id NodeID, value Value) {
	if err := g.AddNode(id, value); err != nil {
		panic(err)
	}
}

// AddEdge inserts the edge (from, label, to). Both endpoints must exist.
// Edges form a set: inserting an existing edge is a silent no-op.
func (g *Graph) AddEdge(from NodeID, label string, to NodeID) error {
	g.ensureInit()
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("datagraph: edge source %q not in graph", string(from))
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("datagraph: edge target %q not in graph", string(to))
	}
	e := Edge{From: from, Label: label, To: to}
	if _, dup := g.edges[e]; dup {
		return nil
	}
	g.edges[e] = struct{}{}
	g.seq = append(g.seq, seqEdge{from: int32(fi), to: int32(ti), label: label})
	g.topoVersion++
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from NodeID, label string, to NodeID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.seq) }

// Node returns the node at dense index i.
func (g *Graph) Node(i int) Node { return g.nodes[i] }

// NodeByID returns the node with the given id.
func (g *Graph) NodeByID(id NodeID) (Node, bool) {
	if g.index == nil {
		return Node{}, false
	}
	i, ok := g.index[id]
	if !ok {
		return Node{}, false
	}
	return g.nodes[i], true
}

// IndexOf returns the dense index of the node with the given id.
func (g *Graph) IndexOf(id NodeID) (int, bool) {
	if g.index == nil {
		return 0, false
	}
	i, ok := g.index[id]
	return i, ok
}

// HasEdge reports whether the edge (from, label, to) is present.
func (g *Graph) HasEdge(from NodeID, label string, to NodeID) bool {
	if g.edges == nil {
		return false
	}
	_, ok := g.edges[Edge{From: from, Label: label, To: to}]
	return ok
}

// adj returns the flat adjacency index, building it on first use after a
// topology change (same publication discipline as labelIdx).
func (g *Graph) adj() *adjIndex {
	if a := g.aidx.Load(); a != nil && a.topoVersion == g.topoVersion {
		return a
	}
	n := len(g.nodes)
	a := &adjIndex{
		topoVersion: g.topoVersion,
		out:         make([][]HalfEdge, n),
		in:          make([][]HalfEdge, n),
	}
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for i := range g.seq {
		outDeg[g.seq[i].from]++
		inDeg[g.seq[i].to]++
	}
	outBack := make([]HalfEdge, len(g.seq))
	inBack := make([]HalfEdge, len(g.seq))
	var outAt, inAt int32
	for u := 0; u < n; u++ {
		a.out[u] = outBack[outAt : outAt : outAt+outDeg[u]]
		outAt += outDeg[u]
		a.in[u] = inBack[inAt : inAt : inAt+inDeg[u]]
		inAt += inDeg[u]
	}
	// Forward pass keeps per-node insertion order in both directions.
	for i := range g.seq {
		e := &g.seq[i]
		a.out[e.from] = append(a.out[e.from], HalfEdge{Label: e.label, To: int(e.to)})
		a.in[e.to] = append(a.in[e.to], HalfEdge{Label: e.label, To: int(e.from)})
	}
	g.aidx.Store(a)
	return a
}

// Out returns the outgoing adjacency list of the node at index i. The
// returned slice must not be modified.
func (g *Graph) Out(i int) []HalfEdge { return g.adj().out[i] }

// In returns the incoming adjacency list of the node at index i. The
// returned slice must not be modified.
func (g *Graph) In(i int) []HalfEdge { return g.adj().in[i] }

// labelIdx returns the per-label index, building it on first use after a
// topology change. Concurrent readers may build it redundantly; the result
// is identical and publication is atomic, so races only waste work.
func (g *Graph) labelIdx() *labelIndex {
	if li := g.lidx.Load(); li != nil && li.topoVersion == g.topoVersion {
		return li
	}
	li := &labelIndex{
		topoVersion: g.topoVersion,
		out:         make([]map[string][]int, len(g.nodes)),
		in:          make([]map[string][]int, len(g.nodes)),
		byLabel:     make(map[string][]Pair),
	}
	adj := g.adj()
	for u, hes := range adj.out {
		if len(hes) == 0 {
			continue
		}
		m := make(map[string][]int, len(hes))
		for _, he := range hes {
			m[he.Label] = append(m[he.Label], he.To)
		}
		li.out[u] = m
	}
	for u, hes := range adj.in {
		if len(hes) == 0 {
			continue
		}
		m := make(map[string][]int, len(hes))
		for _, he := range hes {
			m[he.Label] = append(m[he.Label], he.To)
		}
		li.in[u] = m
	}
	for i := range g.seq {
		e := &g.seq[i]
		li.byLabel[e.label] = append(li.byLabel[e.label], Pair{From: int(e.from), To: int(e.to)})
	}
	g.lidx.Store(li)
	return li
}

// OutEdges returns the successors of the node at index i along edges with
// the given label, in edge-insertion order. The returned slice must not be
// modified. This is the indexed counterpart of filtering Out(i) by label.
func (g *Graph) OutEdges(i int, label string) []int {
	m := g.labelIdx().out[i]
	if m == nil {
		return nil
	}
	return m[label]
}

// InEdges returns the predecessors of the node at index i along edges with
// the given label, in edge-insertion order. The returned slice must not be
// modified.
func (g *Graph) InEdges(i int, label string) []int {
	m := g.labelIdx().in[i]
	if m == nil {
		return nil
	}
	return m[label]
}

// LabelPairs returns every edge with the given label as a (from, to) pair of
// dense indices, in edge-insertion order. The returned slice must not be
// modified.
func (g *Graph) LabelPairs(label string) []Pair {
	return g.labelIdx().byLabel[label]
}

// HasEdgeIndex reports whether the edge (from, label, to) is present, with
// both endpoints given as dense indices. It scans the shorter of the two
// per-label adjacency lists.
func (g *Graph) HasEdgeIndex(from int, label string, to int) bool {
	outs := g.OutEdges(from, label)
	ins := g.InEdges(to, label)
	if len(ins) < len(outs) {
		for _, s := range ins {
			if s == from {
				return true
			}
		}
		return false
	}
	for _, t := range outs {
		if t == to {
			return true
		}
	}
	return false
}

// Freeze compiles (or returns the cached) immutable Snapshot of the graph:
// interned labels and values with CSR adjacency. The snapshot is cached on
// the graph and invalidated by mutation, and rebuilding is incremental:
//
//   - a SetValue-only change re-interns values but reuses the CSR topology;
//   - an append burst (AddNode/AddEdge — the only topology mutation the API
//     allows) is merged into the previous snapshot as a delta, rebuilding
//     only the adjacency rows of nodes touched by new half-edges and
//     sharing everything else copy-on-write (O(Δ + Σ deg(touched)) plus two
//     O(V) table copies, instead of O(V+E));
//   - a full rebuild still happens when there is no usable cached snapshot,
//     when the delta rivals the live graph, or when accumulated delta
//     segments/garbage exceed the compaction thresholds.
//
// Freeze follows the graph's concurrency contract: any number of concurrent
// readers may call it (a race only builds the snapshot twice), but it must
// not run concurrently with mutation.
func (g *Graph) Freeze() *Snapshot {
	if s := g.snap.Load(); s != nil && s.topoVersion == g.topoVersion && s.valVersion == g.valVersion {
		return s
	}
	s := buildSnapshot(g, g.snap.Load())
	g.snap.Store(s)
	return s
}

// FreezeFull builds a from-scratch snapshot, bypassing both the cache and
// the delta-merge path, and caches the result. Delta-built and full-built
// snapshots are behaviourally identical; FreezeFull exists for
// cross-validation tests and for benchmarks that measure the rebuild cliff
// the delta path avoids.
func (g *Graph) FreezeFull() *Snapshot {
	s := buildFull(g)
	g.snap.Store(s)
	return s
}

// Snapshot returns the cached snapshot if it is still current, and nil
// otherwise — it never builds. Evaluators use it to pick the interned
// kernel opportunistically without paying a rebuild inside mutation loops
// (e.g. the SetValue specialization search of the certain-answer oracle).
func (g *Graph) Snapshot() *Snapshot {
	if s := g.snap.Load(); s != nil && s.topoVersion == g.topoVersion && s.valVersion == g.valVersion {
		return s
	}
	return nil
}

// SnapshotBuilds returns how many snapshot constructions the graph has
// paid for, split by kind: full is O(V+E) from-scratch rebuilds (including
// the first Freeze and every FreezeFull), delta is incremental merges of an
// append burst into the cached snapshot. Bulk ingestion asserts its batched
// appends amortize — full stays at 1 while delta grows — instead of
// tripping the rebuild cliff on every batch. Value-only refreshes (SetValue
// with unchanged topology) count as neither.
func (g *Graph) SnapshotBuilds() (full, delta uint64) {
	return g.snapFull.Load(), g.snapDelta.Load()
}

// Versions returns the graph's monotonic mutation counters: topology counts
// node/edge insertions, values counts SetValue overwrites. Long-lived
// handles (sessions) record them at construction and compare on use to
// detect a source graph mutated underneath memoized artifacts.
func (g *Graph) Versions() (topology, values uint64) {
	return g.topoVersion, g.valVersion
}

// Value returns δ(v) for the node at index i.
func (g *Graph) Value(i int) Value { return g.nodes[i].Value }

// Nodes returns a copy of the node list in dense-index order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns the edge set in a deterministic (sorted) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.seq))
	for i := range g.seq {
		e := &g.seq[i]
		out = append(out, Edge{From: g.nodes[e.from].ID, Label: e.label, To: g.nodes[e.to].ID})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].To < out[j].To
	})
	return out
}

// Labels returns the set of edge labels used in the graph, sorted.
func (g *Graph) Labels() []string {
	set := make(map[string]struct{})
	for i := range g.seq {
		set[g.seq[i].label] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Values returns the set of non-null data values occurring in the graph,
// sorted by their string form.
func (g *Graph) Values() []Value {
	set := make(map[Value]struct{})
	for _, n := range g.nodes {
		if !n.Value.IsNull() {
			set[n.Value] = struct{}{}
		}
	}
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].s < out[j].s })
	return out
}

// Clone returns a deep copy of the graph. The node list, edge set and edge
// log are copied directly — O(V + E), no sorting or re-hashing — and the
// derived adjacency structures are rebuilt lazily on first use.
func (g *Graph) Clone() *Graph {
	return &Graph{
		nodes: append([]Node(nil), g.nodes...),
		index: maps.Clone(g.index),
		edges: maps.Clone(g.edges),
		seq:   append([]seqEdge(nil), g.seq...),
	}
}

// SetValue overwrites the data value of the node at dense index i. It is
// the in-place counterpart of Specialize, used by the certain-answer
// oracle, which evaluates queries over very many value specializations of
// one universal solution and cannot afford a graph clone per candidate.
func (g *Graph) SetValue(i int, v Value) {
	g.nodes[i].Value = v
	g.valVersion++
}

// Specialize returns a copy of the graph in which the value of each node is
// replaced according to assign; nodes absent from assign keep their value.
// It is used to build the value specializations σ(U) of a universal solution
// discussed in DESIGN.md (certain-answer oracle).
func (g *Graph) Specialize(assign map[NodeID]Value) *Graph {
	c := g.Clone()
	for id, v := range assign {
		if i, ok := c.index[id]; ok {
			c.nodes[i].Value = v
		}
	}
	return c
}

// Union returns a new graph containing all nodes and edges of g and h.
// Nodes with the same id must carry the same value in both graphs.
func Union(g, h *Graph) (*Graph, error) {
	// Start from a direct copy of g, then merge h through the normal
	// insertion path (which deduplicates shared edges).
	u := g.Clone()
	u.ensureInit()
	for _, n := range h.nodes {
		if prev, ok := u.NodeByID(n.ID); ok {
			if prev.Value != n.Value {
				return nil, fmt.Errorf("datagraph: union conflict on node %q: %s vs %s",
					string(n.ID), prev.Value, n.Value)
			}
			continue
		}
		u.MustAddNode(n.ID, n.Value)
	}
	for i := range h.seq {
		e := &h.seq[i]
		u.MustAddEdge(h.nodes[e.from].ID, e.label, h.nodes[e.to].ID)
	}
	return u, nil
}

// ContainsAllEdges reports whether every edge of sub is an edge of g and
// every node of sub occurs in g with the same value (G′ ⊇ G in the paper's
// notation, as used in Lemma 2).
func (g *Graph) ContainsAllEdges(sub *Graph) bool {
	for _, n := range sub.nodes {
		m, ok := g.NodeByID(n.ID)
		if !ok || m.Value != n.Value {
			return false
		}
	}
	for e := range sub.edges {
		if !g.HasEdge(e.From, e.Label, e.To) {
			return false
		}
	}
	return true
}

// String renders the graph in the text format accepted by Parse.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.nodes {
		if n.Value.IsNull() {
			fmt.Fprintf(&b, "node %s null\n", string(n.ID))
		} else {
			fmt.Fprintf(&b, "node %s %s\n", string(n.ID), n.Value.Raw())
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "edge %s %s %s\n", string(e.From), e.Label, string(e.To))
	}
	return b.String()
}
