package datagraph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node; ids are drawn from the countable set N of the
// paper. Within one graph no two nodes share an id.
type NodeID string

// Node is a pair (id, value) as in Section 2 of the paper.
type Node struct {
	ID    NodeID
	Value Value
}

// IsNullNode reports whether the node is a null node (n, n) of Section 7,
// i.e. its value is the SQL null.
func (n Node) IsNullNode() bool { return n.Value.IsNull() }

func (n Node) String() string { return fmt.Sprintf("(%s,%s)", string(n.ID), n.Value) }

// Edge is a labeled edge (v, a, v′).
type Edge struct {
	From  NodeID
	Label string
	To    NodeID
}

func (e Edge) String() string {
	return fmt.Sprintf("%s -%s-> %s", string(e.From), e.Label, string(e.To))
}

// HalfEdge is an adjacency entry: an edge seen from one endpoint.
type HalfEdge struct {
	Label string
	To    int // dense node index of the other endpoint
}

// Graph is a data graph G = ⟨V, E⟩: a finite set of nodes with unique ids and
// a set of labeled edges E ⊆ V × Σ × V. Nodes are stored densely; evaluators
// address nodes by their index (0-based insertion order), while the public
// API also accepts NodeIDs.
//
// Besides the flat adjacency lists, the graph maintains per-label indexes —
// per-node successor/predecessor lists keyed by label and a global per-label
// edge list — built incrementally by AddEdge. Evaluators that know the label
// they are traversing (word RPQs, automaton transitions, GXPath atoms) use
// OutEdges/InEdges/LabelPairs instead of filtering the flat lists.
//
// The zero Graph is empty and ready to use. A Graph is safe for concurrent
// readers once construction is complete; mutation is not synchronized.
type Graph struct {
	nodes []Node
	index map[NodeID]int
	out   [][]HalfEdge
	in    [][]HalfEdge
	edges map[Edge]struct{}

	// Per-label indexes, maintained incrementally by AddEdge.
	outIdx  []map[string][]int // node -> label -> successor indices
	inIdx   []map[string][]int // node -> label -> predecessor indices
	byLabel map[string][]Pair  // label -> (from, to) dense-index pairs
}

// New returns an empty data graph.
func New() *Graph {
	return &Graph{
		index:   make(map[NodeID]int),
		edges:   make(map[Edge]struct{}),
		byLabel: make(map[string][]Pair),
	}
}

func (g *Graph) ensureInit() {
	if g.index == nil {
		g.index = make(map[NodeID]int)
	}
	if g.edges == nil {
		g.edges = make(map[Edge]struct{})
	}
	if g.byLabel == nil {
		g.byLabel = make(map[string][]Pair)
	}
}

// AddNode inserts the node (id, value). It returns an error if the id is
// already present (node ids are unique within a data graph).
func (g *Graph) AddNode(id NodeID, value Value) error {
	g.ensureInit()
	if _, dup := g.index[id]; dup {
		return fmt.Errorf("datagraph: duplicate node id %q", string(id))
	}
	g.index[id] = len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Value: value})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.outIdx = append(g.outIdx, nil)
	g.inIdx = append(g.inIdx, nil)
	return nil
}

// MustAddNode is AddNode that panics on error; intended for tests and
// literals where duplicate ids are a programming error.
func (g *Graph) MustAddNode(id NodeID, value Value) {
	if err := g.AddNode(id, value); err != nil {
		panic(err)
	}
}

// AddEdge inserts the edge (from, label, to). Both endpoints must exist.
// Edges form a set: inserting an existing edge is a silent no-op.
func (g *Graph) AddEdge(from NodeID, label string, to NodeID) error {
	g.ensureInit()
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("datagraph: edge source %q not in graph", string(from))
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("datagraph: edge target %q not in graph", string(to))
	}
	e := Edge{From: from, Label: label, To: to}
	if _, dup := g.edges[e]; dup {
		return nil
	}
	g.edges[e] = struct{}{}
	g.out[fi] = append(g.out[fi], HalfEdge{Label: label, To: ti})
	g.in[ti] = append(g.in[ti], HalfEdge{Label: label, To: fi})
	if g.outIdx[fi] == nil {
		g.outIdx[fi] = make(map[string][]int)
	}
	g.outIdx[fi][label] = append(g.outIdx[fi][label], ti)
	if g.inIdx[ti] == nil {
		g.inIdx[ti] = make(map[string][]int)
	}
	g.inIdx[ti][label] = append(g.inIdx[ti][label], fi)
	g.byLabel[label] = append(g.byLabel[label], Pair{From: fi, To: ti})
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from NodeID, label string, to NodeID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node at dense index i.
func (g *Graph) Node(i int) Node { return g.nodes[i] }

// NodeByID returns the node with the given id.
func (g *Graph) NodeByID(id NodeID) (Node, bool) {
	if g.index == nil {
		return Node{}, false
	}
	i, ok := g.index[id]
	if !ok {
		return Node{}, false
	}
	return g.nodes[i], true
}

// IndexOf returns the dense index of the node with the given id.
func (g *Graph) IndexOf(id NodeID) (int, bool) {
	if g.index == nil {
		return 0, false
	}
	i, ok := g.index[id]
	return i, ok
}

// HasEdge reports whether the edge (from, label, to) is present.
func (g *Graph) HasEdge(from NodeID, label string, to NodeID) bool {
	if g.edges == nil {
		return false
	}
	_, ok := g.edges[Edge{From: from, Label: label, To: to}]
	return ok
}

// Out returns the outgoing adjacency list of the node at index i. The
// returned slice must not be modified.
func (g *Graph) Out(i int) []HalfEdge { return g.out[i] }

// In returns the incoming adjacency list of the node at index i. The
// returned slice must not be modified.
func (g *Graph) In(i int) []HalfEdge { return g.in[i] }

// OutEdges returns the successors of the node at index i along edges with
// the given label, in edge-insertion order. The returned slice must not be
// modified. This is the indexed counterpart of filtering Out(i) by label.
func (g *Graph) OutEdges(i int, label string) []int {
	if g.outIdx[i] == nil {
		return nil
	}
	return g.outIdx[i][label]
}

// InEdges returns the predecessors of the node at index i along edges with
// the given label, in edge-insertion order. The returned slice must not be
// modified.
func (g *Graph) InEdges(i int, label string) []int {
	if g.inIdx[i] == nil {
		return nil
	}
	return g.inIdx[i][label]
}

// LabelPairs returns every edge with the given label as a (from, to) pair of
// dense indices, in edge-insertion order. The returned slice must not be
// modified.
func (g *Graph) LabelPairs(label string) []Pair {
	if g.byLabel == nil {
		return nil
	}
	return g.byLabel[label]
}

// HasEdgeIndex reports whether the edge (from, label, to) is present, with
// both endpoints given as dense indices. It scans the shorter of the two
// per-label adjacency lists.
func (g *Graph) HasEdgeIndex(from int, label string, to int) bool {
	outs := g.OutEdges(from, label)
	ins := g.InEdges(to, label)
	if len(ins) < len(outs) {
		for _, s := range ins {
			if s == from {
				return true
			}
		}
		return false
	}
	for _, t := range outs {
		if t == to {
			return true
		}
	}
	return false
}

// Value returns δ(v) for the node at index i.
func (g *Graph) Value(i int) Value { return g.nodes[i].Value }

// Nodes returns a copy of the node list in dense-index order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns the edge set in a deterministic (sorted) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].To < out[j].To
	})
	return out
}

// Labels returns the set of edge labels used in the graph, sorted.
func (g *Graph) Labels() []string {
	set := make(map[string]struct{})
	for e := range g.edges {
		set[e.Label] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Values returns the set of non-null data values occurring in the graph,
// sorted by their string form.
func (g *Graph) Values() []Value {
	set := make(map[Value]struct{})
	for _, n := range g.nodes {
		if !n.Value.IsNull() {
			set[n.Value] = struct{}{}
		}
	}
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].s < out[j].s })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		c.MustAddNode(n.ID, n.Value)
	}
	for _, e := range g.Edges() {
		c.MustAddEdge(e.From, e.Label, e.To)
	}
	return c
}

// SetValue overwrites the data value of the node at dense index i. It is
// the in-place counterpart of Specialize, used by the certain-answer
// oracle, which evaluates queries over very many value specializations of
// one universal solution and cannot afford a graph clone per candidate.
func (g *Graph) SetValue(i int, v Value) { g.nodes[i].Value = v }

// Specialize returns a copy of the graph in which the value of each node is
// replaced according to assign; nodes absent from assign keep their value.
// It is used to build the value specializations σ(U) of a universal solution
// discussed in DESIGN.md (certain-answer oracle).
func (g *Graph) Specialize(assign map[NodeID]Value) *Graph {
	c := New()
	for _, n := range g.nodes {
		v := n.Value
		if nv, ok := assign[n.ID]; ok {
			v = nv
		}
		c.MustAddNode(n.ID, v)
	}
	for _, e := range g.Edges() {
		c.MustAddEdge(e.From, e.Label, e.To)
	}
	return c
}

// Union returns a new graph containing all nodes and edges of g and h.
// Nodes with the same id must carry the same value in both graphs.
func Union(g, h *Graph) (*Graph, error) {
	u := New()
	for _, n := range g.nodes {
		u.MustAddNode(n.ID, n.Value)
	}
	for _, n := range h.nodes {
		if prev, ok := u.NodeByID(n.ID); ok {
			if prev.Value != n.Value {
				return nil, fmt.Errorf("datagraph: union conflict on node %q: %s vs %s",
					string(n.ID), prev.Value, n.Value)
			}
			continue
		}
		u.MustAddNode(n.ID, n.Value)
	}
	for _, e := range g.Edges() {
		u.MustAddEdge(e.From, e.Label, e.To)
	}
	for _, e := range h.Edges() {
		u.MustAddEdge(e.From, e.Label, e.To)
	}
	return u, nil
}

// ContainsAllEdges reports whether every edge of sub is an edge of g and
// every node of sub occurs in g with the same value (G′ ⊇ G in the paper's
// notation, as used in Lemma 2).
func (g *Graph) ContainsAllEdges(sub *Graph) bool {
	for _, n := range sub.nodes {
		m, ok := g.NodeByID(n.ID)
		if !ok || m.Value != n.Value {
			return false
		}
	}
	for e := range sub.edges {
		if !g.HasEdge(e.From, e.Label, e.To) {
			return false
		}
	}
	return true
}

// String renders the graph in the text format accepted by Parse.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.nodes {
		if n.Value.IsNull() {
			fmt.Fprintf(&b, "node %s null\n", string(n.ID))
		} else {
			fmt.Fprintf(&b, "node %s %s\n", string(n.ID), n.Value.Raw())
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "edge %s %s %s\n", string(e.From), e.Label, string(e.To))
	}
	return b.String()
}
