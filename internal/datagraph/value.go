// Package datagraph implements the data-graph model of Francis & Libkin
// (PODS'17): finite directed graphs whose edges carry labels from a finite
// alphabet Σ and whose nodes are pairs (id, value) of a node id from a
// countable set N and a data value from a countable set D. The package also
// supports the SQL-style null value n of Section 7 of the paper, under which
// no comparison involving n evaluates to true.
package datagraph

import "fmt"

// Value is a data value from the countable domain D, or the distinguished
// SQL null value n. The zero Value is the empty string value, not null.
//
// Equality of values is syntactic (Go ==), which corresponds to the
// "marked null" reading where nulls are just fresh constants. The SQL-null
// reading of Section 7 is provided by EqSQL and NeqSQL, under which no
// comparison involving the null value is true.
type Value struct {
	s    string
	null bool
}

// V returns the data value with string representation s.
func V(s string) Value { return Value{s: s} }

// Null returns the SQL null value n of Section 7.
func Null() Value { return Value{null: true} }

// IsNull reports whether v is the SQL null value.
func (v Value) IsNull() bool { return v.null }

// Raw returns the underlying string of a non-null value. It panics on null,
// since null has no underlying datum.
func (v Value) Raw() string {
	if v.null {
		panic("datagraph: Raw called on null value")
	}
	return v.s
}

// String renders the value; the null value renders as "⊥".
func (v Value) String() string {
	if v.null {
		return "⊥"
	}
	return v.s
}

// GoString implements fmt.GoStringer for readable test failure output.
func (v Value) GoString() string {
	if v.null {
		return "datagraph.Null()"
	}
	return fmt.Sprintf("datagraph.V(%q)", v.s)
}

// EqSQL reports whether a = b under SQL-null semantics: true iff both are
// non-null and syntactically equal (Section 7).
func EqSQL(a, b Value) bool { return !a.null && !b.null && a.s == b.s }

// NeqSQL reports whether a ≠ b under SQL-null semantics: true iff both are
// non-null and syntactically different (Section 7).
func NeqSQL(a, b Value) bool { return !a.null && !b.null && a.s != b.s }

// EqMarked reports syntactic equality, the marked-null reading under which a
// null is an ordinary (fresh) constant. Two nulls are equal to each other.
func EqMarked(a, b Value) bool { return a == b }

// CompareMode selects how data-value comparisons behave during query
// evaluation.
type CompareMode int

const (
	// MarkedNulls treats every value, including null, as an ordinary
	// constant with syntactic equality. This is the default data-graph
	// semantics of Sections 2-6 (where nulls do not occur at all) and the
	// marked-null semantics of classical data exchange.
	MarkedNulls CompareMode = iota
	// SQLNulls is the Section 7 semantics: comparisons involving the null
	// value are never true, neither x= nor x≠.
	SQLNulls
)

// Eq evaluates a = b under the mode.
func (m CompareMode) Eq(a, b Value) bool {
	if m == SQLNulls {
		return EqSQL(a, b)
	}
	return a == b
}

// Neq evaluates a ≠ b under the mode.
func (m CompareMode) Neq(a, b Value) bool {
	if m == SQLNulls {
		return NeqSQL(a, b)
	}
	return a != b
}

func (m CompareMode) String() string {
	switch m {
	case MarkedNulls:
		return "marked-nulls"
	case SQLNulls:
		return "sql-nulls"
	default:
		return fmt.Sprintf("CompareMode(%d)", int(m))
	}
}
