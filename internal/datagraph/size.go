package datagraph

// This file is the byte-accounting layer behind the serving memory
// governor: SizeBytes estimates of the resident footprint of graphs,
// snapshots and sharded snapshots. Estimates are deterministic and
// intentionally approximate — slice headers, map buckets and allocator
// slack are folded into flat per-entry constants — but they grow
// monotonically with the real footprint, which is all budget enforcement
// needs.

const (
	wordBytes      = 8  // one machine word: pointer, int, map value slot
	stringHeader   = 16 // string header (pointer + length)
	sliceHeader    = 24 // slice header (pointer + len + cap)
	mapEntryBytes  = 48 // rough per-entry bucket cost of a Go map
	mapBaseBytes   = 64 // fixed map header cost
	halfEdgeBytes  = stringHeader + wordBytes
	int32Bytes     = 4
	csrRowBytes    = 12 // csrRow: seg + lo + hi
	seqEdgeBytes   = 2*int32Bytes + stringHeader
	pairEntryBytes = 8 // Pair: two int32 dense indices
)

// stringBytes estimates a string's resident footprint: header plus
// content. Shared backing arrays (interned ids reused across structures)
// are deliberately counted at every holder — the estimate prefers
// overcounting to undercounting.
func stringBytes(s string) int64 { return stringHeader + int64(len(s)) }

// valueBytes estimates a Value's footprint (string + null flag, padded).
func valueBytes(v Value) int64 { return stringBytes(v.s) + wordBytes }

// nodeBytes estimates one Node entry (id + value).
func nodeBytes(n Node) int64 { return stringBytes(string(n.ID)) + valueBytes(n.Value) }

// SizeBytes estimates the resident footprint of the graph: the node list,
// the id index, the edge set and log, plus every derived structure
// currently cached on it (flat adjacency, label index, snapshot, sharded
// snapshot). It is the unit of account the server's memory governor sums
// per backend.
func (g *Graph) SizeBytes() int64 {
	var b int64
	for _, n := range g.nodes {
		// Node entry + its index map entry (the id string is counted once
		// here; the index key shares its backing array).
		b += nodeBytes(n) + mapEntryBytes
	}
	for _, e := range g.seq {
		// One edge-log entry plus its edge-set entry (Edge holds three
		// string headers; label content counted via the log entry).
		b += seqEdgeBytes + stringBytes(e.label) + mapEntryBytes + 3*stringHeader
	}
	b += 2 * mapBaseBytes
	if a := g.aidx.Load(); a != nil {
		for _, row := range a.out {
			b += sliceHeader + int64(len(row))*halfEdgeBytes
		}
		for _, row := range a.in {
			b += sliceHeader + int64(len(row))*halfEdgeBytes
		}
	}
	if li := g.lidx.Load(); li != nil {
		b += li.sizeBytes()
	}
	if s := g.snap.Load(); s != nil {
		b += s.SizeBytes()
	}
	if ss := g.sharded.Load(); ss != nil {
		b += ss.SizeBytes()
	}
	return b
}

func (li *labelIndex) sizeBytes() int64 {
	b := int64(mapBaseBytes)
	for _, byLabel := range li.out {
		b += mapBaseBytes
		for l, r := range byLabel {
			b += mapEntryBytes + stringBytes(l) + int64(len(r))*wordBytes
		}
	}
	for _, byLabel := range li.in {
		b += mapBaseBytes
		for l, r := range byLabel {
			b += mapEntryBytes + stringBytes(l) + int64(len(r))*wordBytes
		}
	}
	for l, ps := range li.byLabel {
		b += mapEntryBytes + stringBytes(l) + sliceHeader + int64(len(ps))*pairEntryBytes
	}
	return b
}

// SizeBytes estimates the snapshot's own storage: the CSR segments, the
// per-label edge spans, the interned labels and values. Delta freezes share
// segments with their predecessor; only the latest snapshot is cached on a
// graph, so summing segments here never double-counts within one graph.
func (s *Snapshot) SizeBytes() int64 {
	var b int64
	for _, l := range s.labels {
		b += stringBytes(l) + mapEntryBytes
	}
	b += csrDirBytes(&s.out) + csrDirBytes(&s.in)
	for _, lp := range s.pairs {
		b += sliceHeader
		for _, seg := range lp.segs {
			b += int64(len(seg.from)+len(seg.to)) * int32Bytes
		}
	}
	b += int64(len(s.valueID)) * int32Bytes
	b += 2 * mapBaseBytes
	for v := range s.valBase {
		b += mapEntryBytes + stringBytes(v)
	}
	for v := range s.valExtra {
		b += mapEntryBytes + stringBytes(v)
	}
	return b
}

func csrDirBytes(d *csrDir) int64 {
	b := int64(len(d.rows)) * csrRowBytes
	for _, seg := range d.segs {
		b += int64(len(seg.labels))*int32Bytes +
			int64(len(seg.slotOff))*int32Bytes +
			int64(len(seg.targets))*int32Bytes
	}
	return b
}

// SizeBytes estimates the partition's footprint (assignments + range cut
// points).
func (p *Partition) SizeBytes() int64 {
	b := int64(len(p.shardOf)) * int32Bytes
	for _, id := range p.bounds {
		b += stringBytes(string(id))
	}
	return b
}

// SizeBytes estimates the sharded snapshot's footprint: the partition plus
// every fragment graph (whose own cached snapshot, built when queries
// lower onto the fragment, is included via Graph.SizeBytes) and the
// per-fragment index arrays.
func (ss *ShardedSnapshot) SizeBytes() int64 {
	b := ss.part.SizeBytes() + int64(len(ss.boundary))*int32Bytes
	for _, fs := range ss.shards {
		b += fs.SizeBytes()
	}
	return b
}

// SizeBytes estimates one fragment's footprint.
func (fs *GraphShard) SizeBytes() int64 {
	return fs.g.SizeBytes() +
		int64(len(fs.globalOf)+len(fs.ghostOwner)+len(fs.owned))*int32Bytes
}

// SizeBytes estimates the pair set's footprint: map buckets in sparse
// mode, the bitmap in dense mode.
func (ps *PairSet) SizeBytes() int64 {
	if ps.m != nil {
		return mapBaseBytes + int64(len(ps.m))*(mapEntryBytes+pairEntryBytes)
	}
	return sliceHeader + int64(len(ps.rows))*wordBytes
}
