package datagraph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads a data graph from the line-based text format produced by
// Graph.String:
//
//	# comment
//	node <id> <value>
//	node <id> null
//	edge <from> <label> <to>
//
// Fields are whitespace-separated; blank lines and lines starting with '#'
// are ignored. Edges may reference nodes declared later in the file.
func Parse(r io.Reader) (*Graph, error) {
	g := New()
	type pendingEdge struct {
		from, label, to string
		line            int
	}
	var pending []pendingEdge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("datagraph: line %d: want 'node <id> <value>'", lineNo)
			}
			v := V(fields[2])
			if fields[2] == "null" {
				v = Null()
			}
			if err := g.AddNode(NodeID(fields[1]), v); err != nil {
				return nil, fmt.Errorf("datagraph: line %d: %v", lineNo, err)
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("datagraph: line %d: want 'edge <from> <label> <to>'", lineNo)
			}
			pending = append(pending, pendingEdge{fields[1], fields[2], fields[3], lineNo})
		default:
			return nil, fmt.Errorf("datagraph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range pending {
		if err := g.AddEdge(NodeID(e.from), e.label, NodeID(e.to)); err != nil {
			return nil, fmt.Errorf("datagraph: line %d: %v", e.line, err)
		}
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }
