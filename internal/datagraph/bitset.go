package datagraph

import "math/bits"

// NodeSet is a set of dense node indices backed by a bitmap. It is the
// frontier and visited-set representation of the snapshot evaluation kernel:
// membership, insertion and the set algebra are word-wise operations on
// []uint64, so a frontier expansion touches 64 nodes per machine word
// instead of one hash probe per node.
//
// The zero NodeSet is not usable; create with NewNodeSet. A NodeSet has a
// fixed capacity (the universe size given at creation); indices outside
// [0, Cap()) must not be passed.
type NodeSet struct {
	n     int
	words []uint64
}

// NewNodeSet returns an empty set over the universe {0, …, n−1}.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the universe size.
func (s *NodeSet) Cap() int { return s.n }

// Add inserts i and reports whether it was newly added.
func (s *NodeSet) Add(i int) bool {
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	return true
}

// Has reports membership.
func (s *NodeSet) Has(i int) bool {
	return s.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Remove deletes i from the set.
func (s *NodeSet) Remove(i int) {
	s.words[i>>6] &^= uint64(1) << (i & 63)
}

// Len returns the number of elements (population count).
func (s *NodeSet) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no elements.
func (s *NodeSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes every element, keeping the backing storage.
func (s *NodeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Each calls f for every element in ascending order.
func (s *NodeSet) Each(f func(int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendTo appends the elements in ascending order to dst and returns it.
func (s *NodeSet) AppendTo(dst []int) []int {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// UnionWith adds every element of t (same universe) to s.
func (s *NodeSet) UnionWith(t *NodeSet) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes the elements of s not in t (same universe).
func (s *NodeSet) IntersectWith(t *NodeSet) {
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// SubsetOf reports s ⊆ t (same universe).
func (s *NodeSet) SubsetOf(t *NodeSet) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t (same universe) contain the same elements.
func (s *NodeSet) Equal(t *NodeSet) bool {
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// CopyFrom overwrites s with the contents of t (same universe).
func (s *NodeSet) CopyFrom(t *NodeSet) {
	copy(s.words, t.words)
}
