package datagraph

// This file implements homomorphisms between data graphs, in the two flavours
// the paper uses:
//
//   - Section 6: a homomorphism h : N → N such that for each edge
//     ((n₁,d₁), a, (n₂,d₂)) of G, the edge ((h(n₁),d₁), a, (h(n₂),d₂)) is in
//     G′. Data values are preserved exactly.
//   - Section 7 (graphs with null nodes): as above except that a null data
//     value may be mapped onto any value; non-null values are preserved.
//
// FindHomomorphism is a backtracking search used as a test oracle for
// Lemma 1 (the universal solution maps homomorphically into every solution)
// and for the Theorem 7 constructions.

// homMode distinguishes the two flavours above.
type homMode int

const (
	homExact homMode = iota // Section 6: values preserved
	homNulls                // Section 7: nulls may map to anything
)

// valueCompatible reports whether a node of the source graph with value dv
// may be mapped to a node of the target graph with value tv.
func valueCompatible(mode homMode, dv, tv Value) bool {
	if mode == homNulls && dv.IsNull() {
		return true
	}
	return dv == tv
}

// FindHomomorphism searches for a homomorphism from g to h in the Section 6
// sense (data values preserved exactly, including null-as-constant). fixed
// maps node ids of g that must be sent to specific node ids of h (e.g. the
// identity on dom(M, Gs) in Lemma 1); it may be nil. It returns the mapping
// on node ids and whether one exists.
//
// The search is exponential in the worst case (graph homomorphism is
// NP-complete); it is used on small instances in tests and experiments.
func FindHomomorphism(g, h *Graph, fixed map[NodeID]NodeID) (map[NodeID]NodeID, bool) {
	return findHom(g, h, fixed, homExact)
}

// FindHomomorphismNulls searches for a homomorphism from g to h in the
// Section 7 sense: null-valued nodes of g may be mapped to nodes with any
// value, while non-null values must be preserved.
func FindHomomorphismNulls(g, h *Graph, fixed map[NodeID]NodeID) (map[NodeID]NodeID, bool) {
	return findHom(g, h, fixed, homNulls)
}

func findHom(g, h *Graph, fixed map[NodeID]NodeID, mode homMode) (map[NodeID]NodeID, bool) {
	n := g.NumNodes()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Pre-assign fixed nodes.
	for from, to := range fixed {
		fi, ok := g.IndexOf(from)
		if !ok {
			return nil, false
		}
		ti, ok := h.IndexOf(to)
		if !ok {
			return nil, false
		}
		if !valueCompatible(mode, g.Value(fi), h.Value(ti)) {
			return nil, false
		}
		assign[fi] = ti
	}

	// Candidate targets per source node, as bitsets: target nodes grouped
	// by value once, then pruned per source node by label-degree
	// requirements (a target must offer at least one out-/in-edge for every
	// label the source node uses) with word-wise intersections.
	hn := h.NumNodes()
	byValue := make(map[Value]*NodeSet)
	for j := 0; j < hn; j++ {
		v := h.Value(j)
		s := byValue[v]
		if s == nil {
			s = NewNodeSet(hn)
			byValue[v] = s
		}
		s.Add(j)
	}
	var full *NodeSet
	if mode == homNulls {
		full = NewNodeSet(hn)
		for j := 0; j < hn; j++ {
			full.Add(j)
		}
	}
	// Per-label bitsets of target nodes with at least one matching edge,
	// built on first demand.
	outHas := make(map[string]*NodeSet)
	inHas := make(map[string]*NodeSet)
	labelSet := func(cache map[string]*NodeSet, label string, incoming bool) *NodeSet {
		if s, ok := cache[label]; ok {
			return s
		}
		s := NewNodeSet(hn)
		for _, p := range h.LabelPairs(label) {
			if incoming {
				s.Add(p.To)
			} else {
				s.Add(p.From)
			}
		}
		cache[label] = s
		return s
	}
	candidates := make([][]int, n)
	cs := NewNodeSet(hn)
	for i := 0; i < n; i++ {
		if assign[i] >= 0 {
			candidates[i] = []int{assign[i]}
			continue
		}
		base := byValue[g.Value(i)]
		if mode == homNulls && g.Value(i).IsNull() {
			base = full
		}
		if base == nil {
			return nil, false
		}
		cs.CopyFrom(base)
		for _, he := range g.Out(i) {
			cs.IntersectWith(labelSet(outHas, he.Label, false))
		}
		for _, he := range g.In(i) {
			cs.IntersectWith(labelSet(inHas, he.Label, true))
		}
		candidates[i] = cs.AppendTo(nil)
		if len(candidates[i]) == 0 {
			return nil, false
		}
	}

	// Order unassigned nodes by fewest candidates first (fail fast).
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if assign[i] < 0 {
			order = append(order, i)
		}
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && len(candidates[order[b]]) < len(candidates[order[b-1]]); b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}

	// consistent checks every edge of g between already-assigned nodes.
	consistent := func(i, target int) bool {
		for _, he := range g.Out(i) {
			if t := assign[he.To]; t >= 0 && !h.HasEdgeIndex(target, he.Label, t) {
				return false
			}
		}
		for _, he := range g.In(i) {
			if s := assign[he.To]; s >= 0 && !h.HasEdgeIndex(s, he.Label, target) {
				return false
			}
		}
		// Self-loops where he.To == i are covered above since assign[i] is
		// set temporarily by the caller before recursing.
		return true
	}

	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return true
		}
		i := order[k]
		for _, t := range candidates[i] {
			assign[i] = t
			if consistent(i, t) && rec(k+1) {
				return true
			}
			assign[i] = -1
		}
		return false
	}

	// Check consistency among the fixed nodes themselves first.
	for i := 0; i < n; i++ {
		if assign[i] >= 0 && !consistent(i, assign[i]) {
			return nil, false
		}
	}
	if !rec(0) {
		return nil, false
	}
	out := make(map[NodeID]NodeID, n)
	for i := 0; i < n; i++ {
		out[g.Node(i).ID] = h.Node(assign[i]).ID
	}
	return out, true
}

// IsHomomorphism verifies that m is a homomorphism from g to h in the
// Section 6 sense. It is the checking counterpart of FindHomomorphism.
func IsHomomorphism(g, h *Graph, m map[NodeID]NodeID) bool {
	return isHom(g, h, m, homExact)
}

// IsHomomorphismNulls verifies m in the Section 7 sense.
func IsHomomorphismNulls(g, h *Graph, m map[NodeID]NodeID) bool {
	return isHom(g, h, m, homNulls)
}

func isHom(g, h *Graph, m map[NodeID]NodeID, mode homMode) bool {
	for _, n := range g.Nodes() {
		tid, ok := m[n.ID]
		if !ok {
			return false
		}
		tn, ok := h.NodeByID(tid)
		if !ok {
			return false
		}
		if !valueCompatible(mode, n.Value, tn.Value) {
			return false
		}
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(m[e.From], e.Label, m[e.To]) {
			return false
		}
	}
	return true
}
