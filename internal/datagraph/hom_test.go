package datagraph

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestFindHomomorphismIdentity(t *testing.T) {
	g := buildTriangle(t)
	m, ok := FindHomomorphism(g, g, nil)
	if !ok {
		t.Fatal("graph must map into itself")
	}
	if !IsHomomorphism(g, g, m) {
		t.Fatal("returned map is not a homomorphism")
	}
}

func TestFindHomomorphismValueMismatch(t *testing.T) {
	g := New()
	g.MustAddNode("x", V("1"))
	h := New()
	h.MustAddNode("y", V("2"))
	if _, ok := FindHomomorphism(g, h, nil); ok {
		t.Fatal("values differ; no homomorphism should exist")
	}
	// With nulls mode, a null source node can map anywhere.
	g2 := New()
	g2.MustAddNode("x", Null())
	if _, ok := FindHomomorphismNulls(g2, h, nil); !ok {
		t.Fatal("null node should map to any node")
	}
	if _, ok := FindHomomorphism(g2, h, nil); ok {
		t.Fatal("exact mode must not map null to constant")
	}
}

func TestFindHomomorphismEdgePreservation(t *testing.T) {
	// path x -a-> y must not map into graph with only a b edge.
	g := New()
	g.MustAddNode("x", V("1"))
	g.MustAddNode("y", V("1"))
	g.MustAddEdge("x", "a", "y")
	h := New()
	h.MustAddNode("p", V("1"))
	h.MustAddNode("q", V("1"))
	h.MustAddEdge("p", "b", "q")
	if _, ok := FindHomomorphism(g, h, nil); ok {
		t.Fatal("label mismatch must prevent homomorphism")
	}
	h.MustAddEdge("p", "a", "q")
	m, ok := FindHomomorphism(g, h, nil)
	if !ok || !IsHomomorphism(g, h, m) {
		t.Fatal("homomorphism should exist after adding a-edge")
	}
}

func TestFindHomomorphismFixed(t *testing.T) {
	// Two candidate targets; fixing forces one.
	g := New()
	g.MustAddNode("x", V("1"))
	h := New()
	h.MustAddNode("p", V("1"))
	h.MustAddNode("q", V("1"))
	m, ok := FindHomomorphism(g, h, map[NodeID]NodeID{"x": "q"})
	if !ok || m["x"] != "q" {
		t.Fatalf("fixed assignment not honoured: %v", m)
	}
	// Fixing to a value-incompatible target fails.
	h2 := New()
	h2.MustAddNode("r", V("2"))
	if _, ok := FindHomomorphism(g, h2, map[NodeID]NodeID{"x": "r"}); ok {
		t.Fatal("incompatible fixed assignment must fail")
	}
	// Fixing a node that does not exist fails.
	if _, ok := FindHomomorphism(g, h, map[NodeID]NodeID{"zz": "p"}); ok {
		t.Fatal("fixed source not in graph must fail")
	}
}

func TestHomomorphismSelfLoop(t *testing.T) {
	g := New()
	g.MustAddNode("x", V("1"))
	g.MustAddEdge("x", "a", "x")
	h := New()
	h.MustAddNode("p", V("1"))
	if _, ok := FindHomomorphism(g, h, nil); ok {
		t.Fatal("self loop cannot map to loop-free node")
	}
	h.MustAddEdge("p", "a", "p")
	if _, ok := FindHomomorphism(g, h, nil); !ok {
		t.Fatal("self loop should map to self loop")
	}
}

func TestNullsHomomorphismValuePreservation(t *testing.T) {
	// Non-null values must still be preserved in nulls mode.
	g := New()
	g.MustAddNode("c", V("k"))
	g.MustAddNode("n", Null())
	g.MustAddEdge("c", "a", "n")
	h := New()
	h.MustAddNode("c2", V("other"))
	h.MustAddNode("d", V("d"))
	h.MustAddEdge("c2", "a", "d")
	if _, ok := FindHomomorphismNulls(g, h, nil); ok {
		t.Fatal("constant value mismatch must fail even in nulls mode")
	}
	h2 := New()
	h2.MustAddNode("c2", V("k"))
	h2.MustAddNode("d", V("d"))
	h2.MustAddEdge("c2", "a", "d")
	m, ok := FindHomomorphismNulls(g, h2, nil)
	if !ok {
		t.Fatal("nulls homomorphism should exist")
	}
	if !IsHomomorphismNulls(g, h2, m) {
		t.Fatal("checker rejects found homomorphism")
	}
	if IsHomomorphism(g, h2, m) {
		t.Fatal("exact checker must reject null remapping")
	}
}

// Property: any graph maps homomorphically into itself via the identity, and
// composition with an edge-added supergraph still works.
func TestHomomorphismIntoSupergraph(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%5) + 2
		g := New()
		for i := 0; i < n; i++ {
			g.MustAddNode(NodeID(fmt.Sprintf("n%d", i)), V(fmt.Sprintf("v%d", i%3)))
		}
		for i := 0; i < n; i++ {
			g.MustAddEdge(NodeID(fmt.Sprintf("n%d", i)), "a", NodeID(fmt.Sprintf("n%d", (i+1)%n)))
		}
		super := g.Clone()
		super.MustAddNode("extra", V("v0"))
		super.MustAddEdge("extra", "b", "n0")
		m, ok := FindHomomorphism(g, super, nil)
		return ok && IsHomomorphism(g, super, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIsHomomorphismRejects(t *testing.T) {
	g := buildTriangle(t)
	// Missing entry.
	if IsHomomorphism(g, g, map[NodeID]NodeID{"u": "u"}) {
		t.Fatal("partial map accepted")
	}
	// Map to nonexistent node.
	if IsHomomorphism(g, g, map[NodeID]NodeID{"u": "zz", "v": "v", "w": "w"}) {
		t.Fatal("dangling target accepted")
	}
}
