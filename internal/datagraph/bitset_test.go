package datagraph

import (
	"math/rand"
	"testing"
)

// TestNodeSetAgainstMap cross-validates NodeSet against a map reference
// under a randomized operation mix.
func TestNodeSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		s := NewNodeSet(n)
		ref := make(map[int]bool)
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				added := s.Add(i)
				if added == ref[i] {
					t.Fatalf("Add(%d) newly-added=%v, ref has=%v", i, added, ref[i])
				}
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			default:
				if s.Has(i) != ref[i] {
					t.Fatalf("Has(%d)=%v, want %v", i, s.Has(i), ref[i])
				}
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("Len=%d, want %d", s.Len(), len(ref))
		}
		if s.Empty() != (len(ref) == 0) {
			t.Fatalf("Empty=%v with %d elements", s.Empty(), len(ref))
		}
		var got []int
		s.Each(func(i int) { got = append(got, i) })
		if len(got) != len(ref) {
			t.Fatalf("Each visited %d elements, want %d", len(got), len(ref))
		}
		for k, i := range got {
			if !ref[i] {
				t.Fatalf("Each yielded %d, not in ref", i)
			}
			if k > 0 && got[k-1] >= i {
				t.Fatalf("Each not ascending: %v", got)
			}
		}
		appended := s.AppendTo(nil)
		if len(appended) != len(got) {
			t.Fatalf("AppendTo %v != Each %v", appended, got)
		}
	}
}

// TestNodeSetAlgebra checks the word-wise set algebra against per-element
// computation.
func TestNodeSetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 150
	randomSet := func() *NodeSet {
		s := NewNodeSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		return s
	}
	for trial := 0; trial < 30; trial++ {
		a, b := randomSet(), randomSet()
		union := NewNodeSet(n)
		union.CopyFrom(a)
		union.UnionWith(b)
		inter := NewNodeSet(n)
		inter.CopyFrom(a)
		inter.IntersectWith(b)
		subset := a.SubsetOf(b)
		refSubset := true
		for i := 0; i < n; i++ {
			if union.Has(i) != (a.Has(i) || b.Has(i)) {
				t.Fatalf("union wrong at %d", i)
			}
			if inter.Has(i) != (a.Has(i) && b.Has(i)) {
				t.Fatalf("intersection wrong at %d", i)
			}
			if a.Has(i) && !b.Has(i) {
				refSubset = false
			}
		}
		if subset != refSubset {
			t.Fatalf("SubsetOf=%v, want %v", subset, refSubset)
		}
		if !a.Equal(a) || (a.Equal(b) && !refSubset) {
			t.Fatal("Equal inconsistent")
		}
	}
}

// TestPairSetDenseAgainstSparse runs an identical randomized workload
// through a dense and a sparse PairSet and checks every accessor agrees —
// the cross-validation for the bitmap representation.
func TestPairSetDenseAgainstSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(120)
		dense := NewPairSetSized(n)
		sparse := NewPairSet()
		if !dense.Dense() {
			t.Fatal("NewPairSetSized should be dense at this size")
		}
		for op := 0; op < 500; op++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				dense.Add(u, v)
				sparse.Add(u, v)
			} else if dense.Has(u, v) != sparse.Has(u, v) {
				t.Fatalf("Has(%d,%d) disagrees", u, v)
			}
		}
		if dense.Len() != sparse.Len() {
			t.Fatalf("Len %d vs %d", dense.Len(), sparse.Len())
		}
		ds, ss := dense.Sorted(), sparse.Sorted()
		if len(ds) != len(ss) {
			t.Fatalf("Sorted length %d vs %d", len(ds), len(ss))
		}
		for i := range ds {
			if ds[i] != ss[i] {
				t.Fatalf("Sorted[%d]: %v vs %v", i, ds[i], ss[i])
			}
		}
		if !dense.Equal(sparse) || !sparse.Equal(dense) {
			t.Fatal("Equal disagrees across representations")
		}
		if !dense.SubsetOf(sparse) || !sparse.SubsetOf(dense) {
			t.Fatal("SubsetOf disagrees across representations")
		}
		// Row accessors against a filter of Sorted.
		u := rng.Intn(n)
		var rowWant []int
		for _, p := range ss {
			if p.From == u {
				rowWant = append(rowWant, p.To)
			}
		}
		var rowGot []int
		dense.EachInRow(u, func(v int) { rowGot = append(rowGot, v) })
		if len(rowGot) != len(rowWant) {
			t.Fatalf("EachInRow(%d): %v want %v", u, rowGot, rowWant)
		}
		for i := range rowGot {
			if rowGot[i] != rowWant[i] {
				t.Fatalf("EachInRow(%d): %v want %v", u, rowGot, rowWant)
			}
		}
		if dense.RowNonEmpty(u) != (len(rowWant) > 0) {
			t.Fatalf("RowNonEmpty(%d) wrong", u)
		}
	}
}

// TestPairSetAlgebraMixedRepresentations checks Union/Intersect/Compose/
// Complement over every dense/sparse operand combination.
func TestPairSetAlgebraMixedRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 60
	build := func(dense bool) (*PairSet, map[Pair]bool) {
		var s *PairSet
		if dense {
			s = NewPairSetSized(n)
		} else {
			s = NewPairSet()
		}
		ref := make(map[Pair]bool)
		for k := 0; k < 150; k++ {
			p := Pair{rng.Intn(n), rng.Intn(n)}
			s.AddPair(p)
			ref[p] = true
		}
		return s, ref
	}
	for trial := 0; trial < 12; trial++ {
		for _, combo := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
			a, ra := build(combo[0])
			b, rb := build(combo[1])
			union := a.Union(b)
			inter := a.Intersect(b)
			comp := ComposePairs(a, b)
			neg := ComplementPairs(a, n)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					p := Pair{u, v}
					if union.Has(u, v) != (ra[p] || rb[p]) {
						t.Fatalf("union wrong at %v (dense %v/%v)", p, combo[0], combo[1])
					}
					if inter.Has(u, v) != (ra[p] && rb[p]) {
						t.Fatalf("intersect wrong at %v", p)
					}
					if neg.Has(u, v) != !ra[p] {
						t.Fatalf("complement wrong at %v", p)
					}
					want := false
					for m := 0; m < n && !want; m++ {
						if ra[Pair{u, m}] && rb[Pair{m, v}] {
							want = true
						}
					}
					if comp.Has(u, v) != want {
						t.Fatalf("compose wrong at %v", p)
					}
				}
			}
		}
	}
}

// TestPairSetAddRowSet checks the word-wise row union.
func TestPairSetAddRowSet(t *testing.T) {
	n := 100
	s := NewPairSetSized(n)
	ns := NewNodeSet(n)
	for _, v := range []int{0, 3, 63, 64, 99} {
		ns.Add(v)
	}
	s.AddRowSet(7, ns)
	for v := 0; v < n; v++ {
		if s.Has(7, v) != ns.Has(v) {
			t.Fatalf("AddRowSet mismatch at %d", v)
		}
	}
	// Sparse fallback.
	sp := NewPairSet()
	sp.AddRowSet(7, ns)
	if !sp.Equal(s) {
		t.Fatal("sparse AddRowSet disagrees with dense")
	}
}

// complementNaive is the reference double loop ComplementPairs replaced for
// sparse operands: n² membership probes.
func complementNaive(s *PairSet, n int) *PairSet {
	out := NewPairSet()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if !s.Has(u, v) {
				out.Add(u, v)
			}
		}
	}
	return out
}

// TestComplementPairsSparseOperand cross-validates the materialize-then-
// negate sparse-operand path of ComplementPairs against the naive double
// loop: word-boundary universe sizes (tail masking), operands holding pairs
// outside the universe, dense operands over a different universe, and empty
// operands.
func TestComplementPairsSparseOperand(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 7, 63, 64, 65, 128, 130} {
		for trial := 0; trial < 4; trial++ {
			sparse := NewPairSet()
			members := rng.Intn(3 * n)
			for k := 0; k < members; k++ {
				sparse.Add(rng.Intn(n), rng.Intn(n))
			}
			// Pairs outside the universe must not affect the complement.
			sparse.Add(n+rng.Intn(5), rng.Intn(n))
			sparse.Add(rng.Intn(n), n+rng.Intn(5))
			// A dense operand over a *different* universe takes the same
			// materialize path.
			other := NewPairSetSized(n + 8)
			sparse.Each(func(p Pair) {
				if p.From < n+8 && p.To < n+8 {
					other.AddPair(p)
				}
			})
			for _, s := range []*PairSet{sparse, other, NewPairSet()} {
				got := ComplementPairs(s, n)
				want := complementNaive(s, n)
				if !got.Dense() {
					t.Fatalf("n=%d: complement must be dense within the budget", n)
				}
				if got.Len() != want.Len() || !want.SubsetOf(got) {
					t.Fatalf("n=%d: complement diverged from the naive loop: %d pairs, want %d",
						n, got.Len(), want.Len())
				}
				got.Each(func(p Pair) {
					if p.From >= n || p.To >= n {
						t.Fatalf("n=%d: complement contains out-of-universe pair %v", n, p)
					}
				})
			}
		}
	}
}
