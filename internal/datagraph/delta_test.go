package datagraph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// equalSnapshots asserts that two snapshots of the same graph are
// indistinguishable through the whole evaluation surface: interners, both
// CSR directions, per-label edge lists and value ids. Delta-built snapshots
// must be *identical* to from-scratch ones, not merely isomorphic: labels
// and values are interned in first-occurrence order on both paths.
func equalSnapshots(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes: got %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if got.NumLabels() != want.NumLabels() {
		t.Fatalf("NumLabels: got %d, want %d", got.NumLabels(), want.NumLabels())
	}
	if got.NumValues() != want.NumValues() {
		t.Fatalf("NumValues: got %d, want %d", got.NumValues(), want.NumValues())
	}
	if got.NullValueID() != want.NullValueID() {
		t.Fatalf("NullValueID: got %d, want %d", got.NullValueID(), want.NullValueID())
	}
	for l := Label(0); int(l) < want.NumLabels(); l++ {
		if got.LabelName(l) != want.LabelName(l) {
			t.Fatalf("LabelName(%d): got %q, want %q", l, got.LabelName(l), want.LabelName(l))
		}
		if id, ok := got.LabelID(want.LabelName(l)); !ok || id != l {
			t.Fatalf("LabelID(%q): got (%d,%v), want (%d,true)", want.LabelName(l), id, ok, l)
		}
		if got.NumLabelEdges(l) != want.NumLabelEdges(l) {
			t.Fatalf("NumLabelEdges(%d): got %d, want %d", l, got.NumLabelEdges(l), want.NumLabelEdges(l))
		}
		var gp, wp []Pair
		got.EachLabelEdge(l, func(f, to int32) { gp = append(gp, Pair{int(f), int(to)}) })
		want.EachLabelEdge(l, func(f, to int32) { wp = append(wp, Pair{int(f), int(to)}) })
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("EachLabelEdge(%d)[%d]: got %v, want %v", l, i, gp[i], wp[i])
			}
		}
	}
	for u := 0; u < want.NumNodes(); u++ {
		if got.ValueID(u) != want.ValueID(u) {
			t.Fatalf("ValueID(%d): got %d, want %d", u, got.ValueID(u), want.ValueID(u))
		}
		if !equalInt32s(got.OutAll(u), want.OutAll(u)) {
			t.Fatalf("OutAll(%d): got %v, want %v", u, got.OutAll(u), want.OutAll(u))
		}
		if !equalInt32s(got.InAll(u), want.InAll(u)) {
			t.Fatalf("InAll(%d): got %v, want %v", u, got.InAll(u), want.InAll(u))
		}
		for l := Label(0); int(l) < want.NumLabels(); l++ {
			if !equalInt32s(got.OutLabeled(u, l), want.OutLabeled(u, l)) {
				t.Fatalf("OutLabeled(%d,%d): got %v, want %v", u, l, got.OutLabeled(u, l), want.OutLabeled(u, l))
			}
			if !equalInt32s(got.InLabeled(u, l), want.InLabeled(u, l)) {
				t.Fatalf("InLabeled(%d,%d): got %v, want %v", u, l, got.InLabeled(u, l), want.InLabeled(u, l))
			}
		}
	}
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeltaFreezeMatchesFull is the delta-maintenance property test:
// randomized interleavings of AddNode/AddEdge/SetValue bursts and Freeze
// calls must keep the incrementally maintained snapshot identical to a
// from-scratch build after every freeze. Mutation is append-only, so every
// intermediate freeze extends the previous snapshot (chains of
// delta-on-delta included).
func TestDeltaFreezeMatchesFull(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		g := New()
		nodes := 0
		addNode := func() {
			// A value pool smaller than the node count forces id reuse; the
			// occasional null exercises the shared null id.
			var v Value
			switch rng.Intn(4) {
			case 0:
				v = Null()
			default:
				v = V(fmt.Sprintf("v%d", rng.Intn(6)))
			}
			g.MustAddNode(NodeID(fmt.Sprintf("n%d", nodes)), v)
			nodes++
		}
		for i := 0; i < 1+rng.Intn(8); i++ {
			addNode()
		}
		for burst := 0; burst < 12; burst++ {
			for op := 0; op < rng.Intn(12); op++ {
				switch rng.Intn(5) {
				case 0:
					addNode()
				case 1:
					g.SetValue(rng.Intn(nodes), V(fmt.Sprintf("v%d", rng.Intn(6))))
				default:
					from := NodeID(fmt.Sprintf("n%d", rng.Intn(nodes)))
					to := NodeID(fmt.Sprintf("n%d", rng.Intn(nodes)))
					g.MustAddEdge(from, labels[rng.Intn(len(labels))], to)
				}
			}
			snap := g.Freeze()
			equalSnapshots(t, snap, buildFull(g))
			if g.Freeze() != snap {
				t.Fatalf("trial %d burst %d: freeze of an unchanged graph must return the cache", trial, burst)
			}
		}
	}
}

// TestDeltaFreezeSharesStorage pins the copy-on-write contract: a freeze
// after a small append burst must extend the cached snapshot — sharing its
// CSR segments, pair spans and interners — rather than rebuild, and
// untouched rows must still point into the shared base segment.
func TestDeltaFreezeSharesStorage(t *testing.T) {
	g := New()
	for i := 0; i < 64; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("n%d", i)), V(fmt.Sprintf("v%d", i%7)))
	}
	for i := 0; i < 63; i++ {
		g.MustAddEdge(NodeID(fmt.Sprintf("n%d", i)), "a", NodeID(fmt.Sprintf("n%d", i+1)))
	}
	s1 := g.Freeze()
	if len(s1.out.segs) != 1 {
		t.Fatalf("full build must produce one segment, got %d", len(s1.out.segs))
	}

	// Append one edge between existing nodes plus one new node.
	g.MustAddEdge("n10", "a", "n20")
	g.MustAddNode("n64", V("fresh"))
	s2 := g.Freeze()

	if len(s2.out.segs) != 2 || s2.out.segs[0] != s1.out.segs[0] {
		t.Fatal("delta freeze must append one segment and share the base")
	}
	if len(s2.in.segs) != 2 || s2.in.segs[0] != s1.in.segs[0] {
		t.Fatal("delta freeze must share the base in-segment")
	}
	// Untouched row: still the old storage. Touched row: redirected.
	if s2.out.rows[5] != s1.out.rows[5] {
		t.Fatal("untouched row must keep pointing into the shared segment")
	}
	if s2.out.rows[10].seg != 1 {
		t.Fatal("touched row must be rebuilt into the delta segment")
	}
	// Pair spans of the touched label: old spans shared, one appended.
	l, _ := s2.LabelID("a")
	if got := len(s2.pairs[l].segs); got != 2 {
		t.Fatalf("label pair chain has %d spans, want 2", got)
	}
	if &s2.pairs[l].segs[0].from[0] != &s1.pairs[l].segs[0].from[0] {
		t.Fatal("delta freeze must share the base pair span")
	}
	equalSnapshots(t, s2, buildFull(g))

	// A second burst chains: delta on top of delta.
	g.MustAddEdge("n64", "b", "n0")
	s3 := g.Freeze()
	if len(s3.out.segs) != 3 || s3.out.segs[1] != s2.out.segs[1] {
		t.Fatal("chained delta freeze must share all prior segments")
	}
	equalSnapshots(t, s3, buildFull(g))
}

// TestDeltaFreezeNewLabelAndValue covers interner extension: labels and
// values first appearing in the delta get the ids a full rebuild assigns,
// and the previous snapshot's interners are never mutated.
func TestDeltaFreezeNewLabelAndValue(t *testing.T) {
	g := New()
	g.MustAddNode("a", V("x"))
	g.MustAddNode("b", V("y"))
	g.MustAddEdge("a", "p", "b")
	// Filler keeps the delta small relative to the graph so the freeze
	// below actually takes the delta path.
	for i := 0; i < 30; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("f%d", i)), V("x"))
		g.MustAddEdge(NodeID(fmt.Sprintf("f%d", i)), "p", "a")
	}
	s1 := g.Freeze()
	labelsBefore := s1.NumLabels()

	g.MustAddNode("c", V("brand-new"))
	g.MustAddNode("d", Null())
	g.MustAddEdge("b", "q", "c")
	g.MustAddEdge("c", "p", "d")
	s2 := g.Freeze()

	if len(s2.out.segs) != len(s1.out.segs)+1 {
		t.Fatal("freeze was expected to take the delta path")
	}
	if s1.NumLabels() != labelsBefore {
		t.Fatal("delta freeze mutated the previous snapshot's interner")
	}
	if _, ok := s1.LabelID("q"); ok {
		t.Fatal("previous snapshot must not see the delta's new label")
	}
	if s1.NullValueID() != -1 {
		t.Fatal("previous snapshot must not see the delta's null")
	}
	equalSnapshots(t, s2, buildFull(g))
}

// TestDeltaFreezeCompaction checks that the segment chain is bounded: after
// enough freeze/mutate cycles a full rebuild kicks in and resets the chain,
// so lookups never chase unboundedly many segments.
func TestDeltaFreezeCompaction(t *testing.T) {
	g := New()
	for i := 0; i < 400; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("n%d", i)), V("v"))
	}
	for i := 0; i < 399; i++ {
		g.MustAddEdge(NodeID(fmt.Sprintf("n%d", i)), "a", NodeID(fmt.Sprintf("n%d", i+1)))
	}
	g.Freeze()
	rng := rand.New(rand.NewSource(7))
	sawFullReset := false
	for round := 0; round < 3*maxCSRSegs; round++ {
		g.MustAddEdge(NodeID(fmt.Sprintf("n%d", rng.Intn(400))), "b",
			NodeID(fmt.Sprintf("n%d", rng.Intn(400))))
		s := g.Freeze()
		if len(s.out.segs) > maxCSRSegs || len(s.in.segs) > maxCSRSegs {
			t.Fatalf("round %d: segment chain grew past the cap: %d", round, len(s.out.segs))
		}
		if round > 0 && len(s.out.segs) == 1 {
			sawFullReset = true
		}
	}
	if !sawFullReset {
		t.Fatal("compaction never fell back to a full rebuild")
	}
	equalSnapshots(t, g.Freeze(), buildFull(g))
}

// TestCloneSnapshotIsolation: a clone never observes the parent's cached
// snapshot, and freezing the clone does not disturb the parent's cache.
func TestCloneSnapshotIsolation(t *testing.T) {
	g := New()
	g.MustAddNode("a", V("1"))
	g.MustAddNode("b", V("2"))
	g.MustAddEdge("a", "e", "b")
	s := g.Freeze()

	c := g.Clone()
	if c.Snapshot() != nil {
		t.Fatal("Clone must not inherit the parent's cached snapshot")
	}
	cs := c.Freeze()
	if cs == s {
		t.Fatal("a clone's snapshot must be its own")
	}
	if cs.Graph() != c || s.Graph() != g {
		t.Fatal("snapshots must point at their own graphs")
	}
	c.MustAddEdge("b", "e", "a")
	c.SetValue(0, V("9"))
	c.Freeze()
	if g.Snapshot() != s {
		t.Fatal("mutating and freezing a clone must not disturb the parent's cache")
	}
	if s.NumLabelEdges(0) != 1 {
		t.Fatal("parent snapshot changed after clone mutation")
	}
}

// TestCSRBinarySearchBoundaries is the regression test for the slot binary
// search: labels absent from a node (below, between and above its slots)
// and the last-slot boundary of the last node, where an off-by-one would
// read past the segment.
func TestCSRBinarySearchBoundaries(t *testing.T) {
	g := New()
	g.MustAddNode("u", V("1"))
	g.MustAddNode("v", V("2"))
	// Node u carries out-slots for a, b, d only, so lookups of c and e
	// miss (one falls between u's slots, one above them); node v carries
	// c, d, e, so a and b miss below, and its last slot is the final slot
	// of the snapshot.
	g.MustAddEdge("u", "a", "v")
	g.MustAddEdge("u", "b", "v")
	g.MustAddEdge("u", "d", "v")
	g.MustAddEdge("v", "c", "u")
	g.MustAddEdge("v", "e", "u")
	g.MustAddEdge("v", "d", "u")
	snap := g.Freeze()

	u, _ := g.IndexOf("u")
	v, _ := g.IndexOf("v")
	id := func(name string) Label {
		l, ok := snap.LabelID(name)
		if !ok {
			t.Fatalf("label %q missing", name)
		}
		return l
	}
	// u has a, b, d out-slots; c and e must miss cleanly.
	for _, name := range []string{"c", "e"} {
		if got := snap.OutLabeled(u, id(name)); got != nil {
			t.Fatalf("OutLabeled(u, %s) = %v, want nil", name, got)
		}
	}
	for _, name := range []string{"a", "b", "d"} {
		if got := snap.OutLabeled(u, id(name)); len(got) != 1 || int(got[0]) != v {
			t.Fatalf("OutLabeled(u, %s) = %v, want [v]", name, got)
		}
	}
	// v's out-slots are c, d, e; the d and e lookups cross the last-slot
	// boundary of the snapshot's final rows.
	for _, name := range []string{"c", "d", "e"} {
		if got := snap.OutLabeled(v, id(name)); len(got) != 1 || int(got[0]) != u {
			t.Fatalf("OutLabeled(v, %s) = %v, want [u]", name, got)
		}
	}
	for _, name := range []string{"a", "b"} {
		if got := snap.OutLabeled(v, id(name)); got != nil {
			t.Fatalf("OutLabeled(v, %s) = %v, want nil", name, got)
		}
	}
	// A label id past every interned label must miss on both nodes.
	if snap.OutLabeled(u, Label(snap.NumLabels())) != nil ||
		snap.OutLabeled(v, Label(snap.NumLabels())) != nil {
		t.Fatal("lookup of an out-of-range label must miss")
	}
}

// TestConcurrentDeltaFreeze exercises the concurrent-Freeze contract on the
// delta path under the race detector: after an append burst, many
// goroutines race to Freeze from the same cached predecessor. Each builds
// against immutable shared storage; all results must be equivalent.
func TestConcurrentDeltaFreeze(t *testing.T) {
	g := New()
	for i := 0; i < 200; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("n%d", i)), V(fmt.Sprintf("v%d", i%9)))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		g.MustAddEdge(NodeID(fmt.Sprintf("n%d", rng.Intn(200))), "a",
			NodeID(fmt.Sprintf("n%d", rng.Intn(200))))
	}
	for round := 0; round < 5; round++ {
		g.Freeze()
		for i := 0; i < 20; i++ {
			g.MustAddEdge(NodeID(fmt.Sprintf("n%d", rng.Intn(200))), "b",
				NodeID(fmt.Sprintf("n%d", rng.Intn(200))))
		}
		snaps := make([]*Snapshot, 8)
		var wg sync.WaitGroup
		for i := range snaps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				snaps[i] = g.Freeze()
			}(i)
		}
		wg.Wait()
		want := buildFull(g)
		for _, s := range snaps {
			equalSnapshots(t, s, want)
		}
	}
}

// TestFreezeFull checks that the explicit from-scratch path produces a
// single-segment snapshot, caches it, and matches the incremental result.
func TestFreezeFull(t *testing.T) {
	g := New()
	g.MustAddNode("a", V("1"))
	g.MustAddNode("b", V("2"))
	g.MustAddEdge("a", "e", "b")
	g.Freeze()
	g.MustAddEdge("b", "e", "a")
	delta := g.Freeze()
	full := g.FreezeFull()
	if len(full.out.segs) != 1 {
		t.Fatal("FreezeFull must produce a single-segment snapshot")
	}
	if g.Snapshot() != full {
		t.Fatal("FreezeFull must cache its result")
	}
	equalSnapshots(t, delta, full)
}
