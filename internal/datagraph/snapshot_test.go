package datagraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSnapshotAgreesWithIndexes is the CSR property test: on random graphs
// built through the public mutation API, the snapshot's interned adjacency
// must agree with the string-keyed index accessors everywhere.
func TestSnapshotAgreesWithIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 40; trial++ {
		nodes := 1 + rng.Intn(25)
		edges := rng.Intn(80)
		g := randomIndexedGraph(t, rng, nodes, edges, labels)
		snap := g.Freeze()

		if snap.NumNodes() != g.NumNodes() {
			t.Fatalf("trial %d: snapshot has %d nodes, graph %d", trial, snap.NumNodes(), g.NumNodes())
		}
		for _, lab := range labels {
			l, ok := snap.LabelID(lab)
			if !ok {
				if len(g.LabelPairs(lab)) != 0 {
					t.Fatalf("trial %d: label %q missing from interner but has edges", trial, lab)
				}
				continue
			}
			if snap.LabelName(l) != lab {
				t.Fatalf("trial %d: LabelName round-trip broke for %q", trial, lab)
			}
			pairs := g.LabelPairs(lab)
			if snap.NumLabelEdges(l) != len(pairs) {
				t.Fatalf("trial %d: NumLabelEdges(%q) = %d, index %d", trial, lab, snap.NumLabelEdges(l), len(pairs))
			}
			i := 0
			snap.EachLabelEdge(l, func(from, to int32) {
				if i < len(pairs) && (int(from) != pairs[i].From || int(to) != pairs[i].To) {
					t.Fatalf("trial %d: EachLabelEdge(%q)[%d] = (%d,%d), want %v",
						trial, lab, i, from, to, pairs[i])
				}
				i++
			})
			if i != len(pairs) {
				t.Fatalf("trial %d: EachLabelEdge(%q) visited %d edges, index %d", trial, lab, i, len(pairs))
			}
			for u := 0; u < nodes; u++ {
				wantOut := g.OutEdges(u, lab)
				gotOut := snap.OutLabeled(u, l)
				if len(wantOut) != len(gotOut) {
					t.Fatalf("trial %d: OutLabeled(%d,%q) = %v, want %v", trial, u, lab, gotOut, wantOut)
				}
				for i := range wantOut {
					if int(gotOut[i]) != wantOut[i] {
						t.Fatalf("trial %d: OutLabeled(%d,%q) = %v, want %v", trial, u, lab, gotOut, wantOut)
					}
				}
				wantIn := g.InEdges(u, lab)
				gotIn := snap.InLabeled(u, l)
				if len(wantIn) != len(gotIn) {
					t.Fatalf("trial %d: InLabeled(%d,%q) = %v, want %v", trial, u, lab, gotIn, wantIn)
				}
				for i := range wantIn {
					if int(gotIn[i]) != wantIn[i] {
						t.Fatalf("trial %d: InLabeled(%d,%q) = %v, want %v", trial, u, lab, gotIn, wantIn)
					}
				}
				if snap.HasOutLabeled(u, l) != (len(wantOut) > 0) {
					t.Fatalf("trial %d: HasOutLabeled(%d,%q) wrong", trial, u, lab)
				}
				for v := 0; v < nodes; v++ {
					if snap.HasEdge(u, l, v) != g.HasEdgeIndex(u, lab, v) {
						t.Fatalf("trial %d: HasEdge(%d,%q,%d) disagrees with index", trial, u, lab, v)
					}
				}
			}
		}
		// OutAll/InAll must match the flat adjacency (as target multisets in
		// any order).
		for u := 0; u < nodes; u++ {
			if len(snap.OutAll(u)) != len(g.Out(u)) {
				t.Fatalf("trial %d: OutAll(%d) has %d targets, Out %d", trial, u, len(snap.OutAll(u)), len(g.Out(u)))
			}
			if len(snap.InAll(u)) != len(g.In(u)) {
				t.Fatalf("trial %d: InAll(%d) has %d targets, In %d", trial, u, len(snap.InAll(u)), len(g.In(u)))
			}
			if snap.OutDegree(u) != len(g.Out(u)) {
				t.Fatalf("trial %d: OutDegree(%d) wrong", trial, u)
			}
		}
	}
}

// TestSnapshotValueInterning checks that interned value ids agree with
// value equality and that all nulls share one id.
func TestSnapshotValueInterning(t *testing.T) {
	g := New()
	g.MustAddNode("a", V("x"))
	g.MustAddNode("b", V("y"))
	g.MustAddNode("c", V("x"))
	g.MustAddNode("d", Null())
	g.MustAddNode("e", Null())
	snap := g.Freeze()
	if snap.ValueID(0) != snap.ValueID(2) {
		t.Fatal("equal values must intern to the same id")
	}
	if snap.ValueID(0) == snap.ValueID(1) {
		t.Fatal("distinct values must intern to distinct ids")
	}
	if snap.ValueID(3) != snap.NullValueID() || snap.ValueID(4) != snap.NullValueID() {
		t.Fatal("all nulls must share the null id")
	}
	if snap.NumValues() != 3 {
		t.Fatalf("NumValues = %d, want 3 (x, y, null)", snap.NumValues())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if snap.ValueID(i) == 0 {
			t.Fatal("value ids must start at 1 (0 is the register-unset sentinel)")
		}
	}

	g2 := New()
	g2.MustAddNode("a", V("x"))
	if g2.Freeze().NullValueID() != -1 {
		t.Fatal("graph without nulls must report NullValueID −1")
	}
}

// TestFreezeCaching checks the snapshot cache lifecycle: stable pointer
// while unchanged, invalidation on mutation, CSR reuse across a
// SetValue-only change.
func TestFreezeCaching(t *testing.T) {
	g := New()
	g.MustAddNode("a", V("1"))
	g.MustAddNode("b", V("2"))
	g.MustAddEdge("a", "e", "b")

	s1 := g.Freeze()
	if g.Freeze() != s1 {
		t.Fatal("Freeze must return the cached snapshot while the graph is unchanged")
	}
	if g.Snapshot() != s1 {
		t.Fatal("Snapshot must return the cached snapshot while valid")
	}

	// Value-only mutation: cache invalid, rebuild shares the CSR arrays.
	g.SetValue(0, V("9"))
	if g.Snapshot() != nil {
		t.Fatal("Snapshot must be nil after SetValue")
	}
	s2 := g.Freeze()
	if s2 == s1 {
		t.Fatal("Freeze must rebuild after SetValue")
	}
	if s2.out.segs[0] != s1.out.segs[0] || &s2.pairs[0].segs[0].from[0] != &s1.pairs[0].segs[0].from[0] {
		t.Fatal("a SetValue-only rebuild must reuse the CSR topology")
	}
	if s2.Value(0) != V("9") {
		t.Fatal("rebuilt snapshot must see the new value")
	}

	// Topology mutation: rebuild (incremental or full) must see the edge.
	g.MustAddEdge("b", "e", "a")
	if g.Snapshot() != nil {
		t.Fatal("Snapshot must be nil after AddEdge")
	}
	s3 := g.Freeze()
	if l, ok := s3.LabelID("e"); !ok || s3.NumLabelEdges(l) != 2 {
		t.Fatalf("rebuilt snapshot does not have 2 e-edges")
	}
}

// TestFreezeZeroGraph checks that the zero Graph freezes.
func TestFreezeZeroGraph(t *testing.T) {
	var g Graph
	snap := g.Freeze()
	if snap.NumNodes() != 0 || snap.NumLabels() != 0 {
		t.Fatal("zero graph must freeze to an empty snapshot")
	}
	g.MustAddNode("x", V("1"))
	if g.Snapshot() != nil {
		t.Fatal("mutation after freeze must invalidate")
	}
}

// TestSnapshotLargeDegree exercises the sort.SliceStable fallback in the
// CSR builder (node with more than 128 out-edges).
func TestSnapshotLargeDegree(t *testing.T) {
	g := New()
	g.MustAddNode("hub", V("h"))
	labels := []string{"z", "y", "x", "w"}
	for i := 0; i < 200; i++ {
		id := NodeID(fmt.Sprintf("n%d", i))
		g.MustAddNode(id, V("v"))
		g.MustAddEdge("hub", labels[i%len(labels)], id)
	}
	snap := g.Freeze()
	hub, _ := g.IndexOf("hub")
	total := 0
	for _, lab := range labels {
		l, ok := snap.LabelID(lab)
		if !ok {
			t.Fatalf("label %q missing", lab)
		}
		got := snap.OutLabeled(hub, l)
		want := g.OutEdges(hub, lab)
		if len(got) != len(want) {
			t.Fatalf("OutLabeled(hub, %q): %d targets, want %d", lab, len(got), len(want))
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("OutLabeled(hub, %q) order diverged at %d", lab, i)
			}
		}
		total += len(got)
	}
	if total != 200 {
		t.Fatalf("slots cover %d edges, want 200", total)
	}
}
