package datagraph

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the sharding layer of the data-graph store: a stable
// node→shard partitioner (hash and id-range policies) and ShardedSnapshot,
// the partitioned counterpart of Snapshot. A sharded snapshot carves the
// graph into per-shard fragment graphs — each holding the nodes it owns
// plus ghost copies of remote endpoints of its edges — with a global↔local
// id mapping and an explicit boundary-node set, so evaluation kernels can
// run shard-locally and exchange frontiers only at the boundary.
//
// Fragments are ordinary *Graph values, so each shard keeps the whole
// existing machinery: per-label adjacency indexes, interned CSR snapshots
// and — crucially — incremental (delta) Freeze. Re-sharding after an append
// burst bins only the new suffix of the edge log and re-freezes each
// fragment through its own delta path.

// PartitionPolicy selects how nodes are assigned to shards.
type PartitionPolicy int

const (
	// PartitionHash assigns each node by a hash of its id — stateless,
	// stable under appends, and balanced for arbitrary id distributions.
	PartitionHash PartitionPolicy = iota
	// PartitionRange assigns nodes by lexicographic id ranges: the id space
	// is cut into contiguous blocks, one per shard, with the cut points
	// fixed when the partition is first built. Ids that sort near each
	// other co-locate, which keeps path queries over structured id schemes
	// (per-tenant or per-entity prefixes) mostly shard-local.
	PartitionRange
)

func (p PartitionPolicy) String() string {
	switch p {
	case PartitionRange:
		return "range"
	default:
		return "hash"
	}
}

// ParsePartitionPolicy parses the textual policy names accepted by the
// -partition flags ("hash", "range").
func ParsePartitionPolicy(s string) (PartitionPolicy, error) {
	switch s {
	case "hash":
		return PartitionHash, nil
	case "range":
		return PartitionRange, nil
	default:
		return 0, fmt.Errorf("datagraph: unknown partition policy %q (want hash or range)", s)
	}
}

// Partition is a stable assignment of a graph's dense node indices to
// shards. Assignments never change once made: appending nodes extends the
// assignment (hash of the new id, or a binary search of the frozen range
// cut points) without disturbing existing ones, which is what lets a
// sharded snapshot extend incrementally.
type Partition struct {
	policy  PartitionPolicy
	shards  int
	shardOf []int32
	// bounds are the PartitionRange cut points, fixed at first build:
	// shard i owns ids in [bounds[i-1], bounds[i]) with virtual ±∞ ends.
	bounds []NodeID
}

// NewPartition assigns every node of g to one of shards shards under the
// policy. shards must be >= 1.
func NewPartition(g *Graph, shards int, policy PartitionPolicy) *Partition {
	if shards < 1 {
		panic(fmt.Sprintf("datagraph: partition with %d shards", shards))
	}
	p := &Partition{policy: policy, shards: shards}
	if policy == PartitionRange {
		ids := make([]NodeID, g.NumNodes())
		for i := range ids {
			ids[i] = g.nodes[i].ID
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i := 1; i < shards; i++ {
			cut := i * len(ids) / shards
			if cut < len(ids) {
				p.bounds = append(p.bounds, ids[cut])
			}
		}
	}
	p.extend(g)
	return p
}

// NumShards returns the shard count.
func (p *Partition) NumShards() int { return p.shards }

// Policy returns the partitioning policy.
func (p *Partition) Policy() PartitionPolicy { return p.policy }

// ShardOf returns the shard owning the node at dense index i.
func (p *Partition) ShardOf(i int) int { return int(p.shardOf[i]) }

// assign computes the shard of an id under the policy.
func (p *Partition) assign(id NodeID) int32 {
	if p.policy == PartitionRange {
		// First cut point > id ⇒ its block; past the last ⇒ last shard.
		lo := sort.Search(len(p.bounds), func(i int) bool { return id < p.bounds[i] })
		return int32(lo)
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int32(h.Sum64() % uint64(p.shards))
}

// extend assigns shards to nodes appended since the last call. Existing
// assignments are never revisited.
func (p *Partition) extend(g *Graph) {
	for i := len(p.shardOf); i < g.NumNodes(); i++ {
		p.shardOf = append(p.shardOf, p.assign(g.nodes[i].ID))
	}
}

// GraphShard is one fragment of a sharded snapshot: a real *Graph holding
// the shard's owned nodes plus ghost copies of remote endpoints of its
// edges. Owned nodes carry their complete out- and in-adjacency inside the
// fragment; ghosts carry only the cross edges that reached them, so a
// traversal that lands on a ghost must hand its frontier to the owner.
type GraphShard struct {
	g          *Graph
	globalOf   []int32 // local dense index -> global dense index
	ghostOwner []int32 // local dense index -> owning shard; -1 when owned here
	owned      []int32 // owned locals, ascending
}

// Graph returns the fragment graph. Callers must not mutate it.
func (fs *GraphShard) Graph() *Graph { return fs.g }

// NumOwned returns the number of nodes this shard owns.
func (fs *GraphShard) NumOwned() int { return len(fs.owned) }

// OwnedLocals returns the fragment-local indices of owned nodes, ascending.
// The returned slice must not be modified.
func (fs *GraphShard) OwnedLocals() []int32 { return fs.owned }

// GhostOwner returns the shard owning the node at fragment-local index l,
// or -1 when this shard owns it.
func (fs *GraphShard) GhostOwner(l int) int { return int(fs.ghostOwner[l]) }

// GlobalOf returns the global dense index of the node at local index l.
func (fs *GraphShard) GlobalOf(l int) int { return int(fs.globalOf[l]) }

func (fs *GraphShard) addOwned(global int32, n Node) {
	local := int32(fs.g.NumNodes())
	fs.g.MustAddNode(n.ID, n.Value)
	fs.globalOf = append(fs.globalOf, global)
	fs.ghostOwner = append(fs.ghostOwner, -1)
	fs.owned = append(fs.owned, local)
}

func (fs *GraphShard) ensureGhost(global int32, n Node, owner int32) {
	if _, ok := fs.g.IndexOf(n.ID); ok {
		return
	}
	fs.g.MustAddNode(n.ID, n.Value)
	fs.globalOf = append(fs.globalOf, global)
	fs.ghostOwner = append(fs.ghostOwner, owner)
}

// ShardedSnapshot is the partitioned freeze of a graph: per-shard fragment
// graphs (each individually frozen to its CSR snapshot), the partition that
// produced them, and the boundary — every global node incident to a
// cross-shard edge. Like Snapshot it is immutable once built and cached on
// the graph keyed by the mutation counters; unlike Snapshot it also keys on
// the (shards, policy) pair.
type ShardedSnapshot struct {
	part        *Partition
	topoVersion uint64
	valVersion  uint64
	frozenNodes int
	frozenEdges int
	shards      []*GraphShard
	boundary    []int32
	crossEdges  int
}

// NumShards returns the shard count.
func (ss *ShardedSnapshot) NumShards() int { return len(ss.shards) }

// Shard returns fragment s.
func (ss *ShardedSnapshot) Shard(s int) *GraphShard { return ss.shards[s] }

// Partition returns the node→shard assignment the snapshot was built under.
func (ss *ShardedSnapshot) Partition() *Partition { return ss.part }

// BoundaryNodes returns the global dense indices of nodes incident to at
// least one cross-shard edge, ascending. The slice must not be modified.
func (ss *ShardedSnapshot) BoundaryNodes() []int32 { return ss.boundary }

// CrossEdges returns the number of edges whose endpoints live on different
// shards. Each such edge is replicated into both fragments.
func (ss *ShardedSnapshot) CrossEdges() int { return ss.crossEdges }

// FreezeSharded compiles (or returns the cached) sharded snapshot of the
// graph under the given shard count and policy. Rebuilds are incremental:
// when the cached sharded snapshot has the same configuration and only an
// append burst happened since, the new edge-log suffix is binned to shards
// in one pass and each fragment re-freezes through its own delta path. A
// value overwrite or a configuration change forces a full rebuild.
//
// FreezeSharded follows the same concurrency contract as Freeze: any number
// of concurrent readers may call it, but it must not run concurrently with
// mutation of g.
func (g *Graph) FreezeSharded(shards int, policy PartitionPolicy) *ShardedSnapshot {
	if cs := g.sharded.Load(); cs != nil &&
		cs.part.shards == shards && cs.part.policy == policy {
		if cs.topoVersion == g.topoVersion && cs.valVersion == g.valVersion {
			return cs
		}
		if cs.valVersion == g.valVersion {
			ns := extendSharded(g, cs)
			g.sharded.Store(ns)
			return ns
		}
	}
	ss := buildSharded(g, NewPartition(g, shards, policy))
	g.sharded.Store(ss)
	return ss
}

// binEdges bins the edge-log slice seq[lo:hi] to shards in a single pass
// (count, then fill — the same idiom as the snapshot CSR build): each edge
// lands in its source's shard, and additionally in its target's shard when
// they differ. It marks boundary nodes and counts cross edges.
func binEdges(g *Graph, part *Partition, lo, hi int, isBoundary []bool) (bins [][]int32, cross int) {
	counts := make([]int, part.shards)
	for i := lo; i < hi; i++ {
		e := &g.seq[i]
		su, sv := part.shardOf[e.from], part.shardOf[e.to]
		counts[su]++
		if sv != su {
			counts[sv]++
		}
	}
	bins = make([][]int32, part.shards)
	for s := range bins {
		bins[s] = make([]int32, 0, counts[s])
	}
	for i := lo; i < hi; i++ {
		e := &g.seq[i]
		su, sv := part.shardOf[e.from], part.shardOf[e.to]
		bins[su] = append(bins[su], int32(i))
		if sv != su {
			bins[sv] = append(bins[sv], int32(i))
			isBoundary[e.from] = true
			isBoundary[e.to] = true
			cross++
		}
	}
	return bins, cross
}

// populateShard adds the owned-node batch and the binned edge batch to one
// fragment, creating ghosts on first use, then (re-)freezes the fragment.
func populateShard(g *Graph, part *Partition, fs *GraphShard, ownedGlobals []int32, bin []int32) {
	for _, gi := range ownedGlobals {
		fs.addOwned(gi, g.nodes[gi])
	}
	for _, ei := range bin {
		e := &g.seq[ei]
		from, to := g.nodes[e.from], g.nodes[e.to]
		fs.ensureGhost(e.from, from, part.shardOf[e.from])
		fs.ensureGhost(e.to, to, part.shardOf[e.to])
		fs.g.MustAddEdge(from.ID, e.label, to.ID)
	}
	fs.g.Freeze()
}

// buildSharded is the full (non-incremental) sharded build: nodes and edges
// are each binned to shards in one pass over the graph, then fragments are
// populated and frozen in parallel.
func buildSharded(g *Graph, part *Partition) *ShardedSnapshot {
	n := len(g.nodes)
	isBoundary := make([]bool, n)
	nodeBins := make([][]int32, part.shards)
	for i := 0; i < n; i++ {
		s := part.shardOf[i]
		nodeBins[s] = append(nodeBins[s], int32(i))
	}
	bins, cross := binEdges(g, part, 0, len(g.seq), isBoundary)

	ss := &ShardedSnapshot{
		part:        part,
		topoVersion: g.topoVersion,
		valVersion:  g.valVersion,
		frozenNodes: n,
		frozenEdges: len(g.seq),
		shards:      make([]*GraphShard, part.shards),
		crossEdges:  cross,
	}
	for s := range ss.shards {
		ss.shards[s] = &GraphShard{g: NewSized(len(nodeBins[s]), len(bins[s]))}
	}
	forEachShard(part.shards, func(s int) {
		populateShard(g, part, ss.shards[s], nodeBins[s], bins[s])
	})
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			ss.boundary = append(ss.boundary, int32(i))
		}
	}
	return ss
}

// extendSharded merges an append burst into a cached sharded snapshot: the
// partition is extended over the new nodes, only the edge-log suffix since
// the watermark is binned, and each fragment re-freezes incrementally.
func extendSharded(g *Graph, prev *ShardedSnapshot) *ShardedSnapshot {
	part := prev.part
	part.extend(g)
	n := len(g.nodes)
	isBoundary := make([]bool, n)
	nodeBins := make([][]int32, part.shards)
	for i := prev.frozenNodes; i < n; i++ {
		s := part.shardOf[i]
		nodeBins[s] = append(nodeBins[s], int32(i))
	}
	bins, cross := binEdges(g, part, prev.frozenEdges, len(g.seq), isBoundary)

	ss := &ShardedSnapshot{
		part:        part,
		topoVersion: g.topoVersion,
		valVersion:  g.valVersion,
		frozenNodes: n,
		frozenEdges: len(g.seq),
		shards:      prev.shards,
		crossEdges:  prev.crossEdges + cross,
	}
	forEachShard(part.shards, func(s int) {
		populateShard(g, part, ss.shards[s], nodeBins[s], bins[s])
	})
	// Boundary: previous set plus newly marked nodes, kept sorted unique.
	seen := make(map[int32]struct{}, len(prev.boundary))
	ss.boundary = append(ss.boundary, prev.boundary...)
	for _, b := range prev.boundary {
		seen[b] = struct{}{}
	}
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			if _, dup := seen[int32(i)]; !dup {
				ss.boundary = append(ss.boundary, int32(i))
			}
		}
	}
	sort.Slice(ss.boundary, func(i, j int) bool { return ss.boundary[i] < ss.boundary[j] })
	return ss
}

// forEachShard runs fn(s) for every shard over a bounded goroutine pool.
func forEachShard(shards int, fn func(s int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// NewSized returns an empty graph with capacity hints for the node and edge
// stores — the bulk-construction entry point used by sharded builds, which
// know fragment sizes up front from the binning pass.
func NewSized(nodes, edges int) *Graph {
	if nodes < 0 {
		nodes = 0
	}
	if edges < 0 {
		edges = 0
	}
	return &Graph{
		nodes: make([]Node, 0, nodes),
		index: make(map[NodeID]int, nodes),
		edges: make(map[Edge]struct{}, edges),
		seq:   make([]seqEdge, 0, edges),
	}
}
