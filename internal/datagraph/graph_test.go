package datagraph

import (
	"reflect"
	"testing"
)

// buildTriangle builds the 3-cycle u -a-> v -b-> w -a-> u with values 1,2,1.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustAddNode("u", V("1"))
	g.MustAddNode("v", V("2"))
	g.MustAddNode("w", V("1"))
	g.MustAddEdge("u", "a", "v")
	g.MustAddEdge("v", "b", "w")
	g.MustAddEdge("w", "a", "u")
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode("x", V("1")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("x", V("2")); err == nil {
		t.Fatal("duplicate node id must be rejected")
	}
}

func TestAddEdgeMissingEndpoint(t *testing.T) {
	g := New()
	g.MustAddNode("x", V("1"))
	if err := g.AddEdge("x", "a", "y"); err == nil {
		t.Fatal("edge to missing node must be rejected")
	}
	if err := g.AddEdge("y", "a", "x"); err == nil {
		t.Fatal("edge from missing node must be rejected")
	}
}

func TestEdgeSetSemantics(t *testing.T) {
	g := buildTriangle(t)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	// Re-inserting an edge is a no-op.
	g.MustAddEdge("u", "a", "v")
	if g.NumEdges() != 3 {
		t.Fatalf("duplicate edge changed count: %d", g.NumEdges())
	}
	ui, _ := g.IndexOf("u")
	if len(g.Out(ui)) != 1 {
		t.Fatalf("adjacency duplicated: %v", g.Out(ui))
	}
}

func TestAdjacency(t *testing.T) {
	g := buildTriangle(t)
	ui, _ := g.IndexOf("u")
	vi, _ := g.IndexOf("v")
	if got := g.Out(ui); len(got) != 1 || got[0].Label != "a" || got[0].To != vi {
		t.Fatalf("Out(u) = %v", got)
	}
	if got := g.In(vi); len(got) != 1 || got[0].Label != "a" || got[0].To != ui {
		t.Fatalf("In(v) = %v", got)
	}
}

func TestLabelsAndValues(t *testing.T) {
	g := buildTriangle(t)
	if got := g.Labels(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Labels = %v", got)
	}
	if got := g.Values(); !reflect.DeepEqual(got, []Value{V("1"), V("2")}) {
		t.Fatalf("Values = %v", got)
	}
	g.MustAddNode("n", Null())
	if got := g.Values(); len(got) != 2 {
		t.Fatalf("null value must not be listed: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	c.MustAddNode("z", V("9"))
	c.MustAddEdge("z", "a", "z")
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatal("clone is not independent")
	}
	if c.NumNodes() != 4 || c.NumEdges() != 4 {
		t.Fatal("clone did not accept additions")
	}
}

func TestSpecialize(t *testing.T) {
	g := New()
	g.MustAddNode("c", V("const"))
	g.MustAddNode("n1", Null())
	g.MustAddNode("n2", Null())
	g.MustAddEdge("c", "a", "n1")
	g.MustAddEdge("n1", "b", "n2")
	s := g.Specialize(map[NodeID]Value{"n1": V("x"), "n2": V("x")})
	if n, _ := s.NodeByID("n1"); n.Value != V("x") {
		t.Fatalf("n1 = %v", n.Value)
	}
	if n, _ := s.NodeByID("c"); n.Value != V("const") {
		t.Fatalf("constant changed: %v", n.Value)
	}
	if !s.HasEdge("n1", "b", "n2") {
		t.Fatal("specialize lost an edge")
	}
	// Original untouched.
	if n, _ := g.NodeByID("n1"); !n.Value.IsNull() {
		t.Fatal("specialize mutated original")
	}
}

func TestUnion(t *testing.T) {
	g := New()
	g.MustAddNode("x", V("1"))
	g.MustAddNode("y", V("2"))
	g.MustAddEdge("x", "a", "y")
	h := New()
	h.MustAddNode("y", V("2"))
	h.MustAddNode("z", V("3"))
	h.MustAddEdge("y", "b", "z")
	u, err := Union(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 3 || u.NumEdges() != 2 {
		t.Fatalf("union size: %d nodes, %d edges", u.NumNodes(), u.NumEdges())
	}
	// Conflicting values must be rejected.
	h2 := New()
	h2.MustAddNode("x", V("conflict"))
	if _, err := Union(g, h2); err == nil {
		t.Fatal("union must reject value conflicts")
	}
}

func TestContainsAllEdges(t *testing.T) {
	g := buildTriangle(t)
	sub := New()
	sub.MustAddNode("u", V("1"))
	sub.MustAddNode("v", V("2"))
	sub.MustAddEdge("u", "a", "v")
	if !g.ContainsAllEdges(sub) {
		t.Fatal("triangle should contain its own edge")
	}
	sub2 := New()
	sub2.MustAddNode("u", V("other"))
	if g.ContainsAllEdges(sub2) {
		t.Fatal("value mismatch must fail containment")
	}
	sub3 := New()
	sub3.MustAddNode("u", V("1"))
	sub3.MustAddNode("v", V("2"))
	sub3.MustAddEdge("v", "a", "u") // wrong direction
	if g.ContainsAllEdges(sub3) {
		t.Fatal("missing edge must fail containment")
	}
}

func TestParseRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	g.MustAddNode("nil1", Null())
	g.MustAddEdge("u", "c", "nil1")
	text := g.String()
	h, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if h.String() != text {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, h.String())
	}
	if n, ok := h.NodeByID("nil1"); !ok || !n.Value.IsNull() {
		t.Fatal("null node lost in round trip")
	}
}

func TestParseForwardReferenceAndErrors(t *testing.T) {
	// Edge before node declarations is allowed.
	g, err := ParseString("edge a x b\nnode a 1\nnode b 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("a", "x", "b") {
		t.Fatal("forward-referenced edge missing")
	}
	for _, bad := range []string{
		"node onlyid\n",
		"edge a x\n",
		"frobnicate\n",
		"node a 1\nnode a 2\n",
		"edge a x b\nnode a 1\n", // b never declared
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("input %q should fail to parse", bad)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ParseString("# hi\n\nnode a 1\n"); err != nil {
		t.Fatal(err)
	}
}

func TestPathValidateAndDataPath(t *testing.T) {
	g := buildTriangle(t)
	ui, _ := g.IndexOf("u")
	vi, _ := g.IndexOf("v")
	wi, _ := g.IndexOf("w")
	p := Path{Nodes: []int{ui, vi, wi, ui}, Labels: []string{"a", "b", "a"}}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	w := DataPathOf(g, p)
	if w.Len() != 3 || w.First() != V("1") || w.Last() != V("1") {
		t.Fatalf("data path: %v", w)
	}
	bad := Path{Nodes: []int{ui, wi}, Labels: []string{"a"}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("invalid path must fail validation")
	}
	malformed := Path{Nodes: []int{ui}, Labels: []string{"a"}}
	if err := malformed.Validate(g); err == nil {
		t.Fatal("malformed path must fail validation")
	}
}

func TestDataPathConcat(t *testing.T) {
	w1 := NewDataPath([]Value{V("1"), V("2")}, []string{"a"})
	w2 := NewDataPath([]Value{V("2"), V("3")}, []string{"b"})
	w, err := w1.Concat(w2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.First() != V("1") || w.Last() != V("3") {
		t.Fatalf("concat: %v", w)
	}
	if w.String() != "1 a 2 b 3" {
		t.Fatalf("String = %q", w.String())
	}
	// Mismatched junction values must error (paper requires shared value).
	w3 := NewDataPath([]Value{V("9"), V("3")}, []string{"b"})
	if _, err := w1.Concat(w3); err == nil {
		t.Fatal("concat with mismatched junction must fail")
	}
}

func TestNewDataPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("malformed data path must panic")
		}
	}()
	NewDataPath([]Value{V("1")}, []string{"a"})
}

func TestZeroGraphUsable(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("zero graph not empty")
	}
	if _, ok := g.NodeByID("x"); ok {
		t.Fatal("zero graph has node?")
	}
	if g.HasEdge("a", "l", "b") {
		t.Fatal("zero graph has edge?")
	}
	if err := g.AddNode("x", V("1")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("x", "a", "x"); err != nil {
		t.Fatal(err)
	}
}
