package datagraph

import "sort"

// Pair is an ordered pair of dense node indices, the unit of binary query
// answers (the paper's queries are mainly binary: q(G) ⊆ V × V).
type Pair struct {
	From, To int
}

// PairSet is a set of node-index pairs. The zero value is empty but not
// usable; create with NewPairSet.
type PairSet struct {
	m map[Pair]struct{}
}

// NewPairSet returns an empty pair set.
func NewPairSet() *PairSet { return &PairSet{m: make(map[Pair]struct{})} }

// Add inserts the pair.
func (s *PairSet) Add(from, to int) { s.m[Pair{from, to}] = struct{}{} }

// AddPair inserts the pair.
func (s *PairSet) AddPair(p Pair) { s.m[p] = struct{}{} }

// Has reports membership.
func (s *PairSet) Has(from, to int) bool {
	_, ok := s.m[Pair{from, to}]
	return ok
}

// Len returns the number of pairs.
func (s *PairSet) Len() int { return len(s.m) }

// Sorted returns the pairs in deterministic order.
func (s *PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Each calls f for every pair, in unspecified order.
func (s *PairSet) Each(f func(Pair)) {
	for p := range s.m {
		f(p)
	}
}

// Equal reports whether two sets contain the same pairs.
func (s *PairSet) Equal(t *PairSet) bool {
	if s.Len() != t.Len() {
		return false
	}
	for p := range s.m {
		if _, ok := t.m[p]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t.
func (s *PairSet) SubsetOf(t *PairSet) bool {
	for p := range s.m {
		if _, ok := t.m[p]; !ok {
			return false
		}
	}
	return true
}

// Intersect returns s ∩ t.
func (s *PairSet) Intersect(t *PairSet) *PairSet {
	out := NewPairSet()
	for p := range s.m {
		if _, ok := t.m[p]; ok {
			out.AddPair(p)
		}
	}
	return out
}

// Union returns s ∪ t.
func (s *PairSet) Union(t *PairSet) *PairSet {
	out := NewPairSet()
	for p := range s.m {
		out.AddPair(p)
	}
	for p := range t.m {
		out.AddPair(p)
	}
	return out
}

// IDPair is a pair of node ids with their values, the API-boundary form of a
// query answer: the paper's answers are pairs of nodes (id, value).
type IDPair struct {
	From, To Node
}

// IDPairs resolves the dense indices against g, sorted deterministically.
func (s *PairSet) IDPairs(g *Graph) []IDPair {
	pairs := s.Sorted()
	out := make([]IDPair, len(pairs))
	for i, p := range pairs {
		out[i] = IDPair{From: g.Node(p.From), To: g.Node(p.To)}
	}
	return out
}
