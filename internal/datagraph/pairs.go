package datagraph

import (
	"math/bits"
	"sort"
)

// Pair is an ordered pair of dense node indices, the unit of binary query
// answers (the paper's queries are mainly binary: q(G) ⊆ V × V).
type Pair struct {
	From, To int
}

// densePairBudgetWords caps the dense representation at 16 MiB of bitmap
// per set; above it NewPairSetSized falls back to the hash representation.
const densePairBudgetWords = 1 << 21

// PairSet is a set of node-index pairs. It has two representations:
//
//   - sparse (NewPairSet): a hash set of pairs, usable without knowing the
//     node universe, as the general-purpose answer container;
//   - dense (NewPairSetSized): one bitmap row of ⌈n/64⌉ words per source
//     node. Add/Has are two shifts and a mask, Union/Intersect/SubsetOf/
//     Equal are word-wise loops, and rows double as adjacency bitmaps for
//     the relational algebra of the evaluators (compose, closure).
//
// The two representations are interchangeable through the common API, with
// one constraint: a dense set only holds pairs inside its universe (Add
// panics outside it), so producers choose NewPairSetSized only when every
// index is bounded by the graph size. The set algebra picks word-wise fast
// paths when both operands are dense over the same universe and returns
// sparse results for mixed operands. The zero value is not usable; create
// with NewPairSet or NewPairSetSized.
//
// Concurrency: a dense PairSet may be written by multiple goroutines
// concurrently as long as each goroutine only Adds pairs with sources it
// owns (rows are disjoint word ranges; the engine's frontier shards rely on
// this). The sparse representation requires external locking.
type PairSet struct {
	m map[Pair]struct{} // sparse mode; nil in dense mode

	// Dense mode: rows[f*w : (f+1)*w] is the bitmap of targets of f.
	n    int
	w    int
	rows []uint64
}

// NewPairSet returns an empty sparse pair set.
func NewPairSet() *PairSet { return &PairSet{m: make(map[Pair]struct{})} }

// NewPairSetSized returns an empty pair set over the node universe
// {0, …, n−1}, dense when the bitmap fits the memory budget and sparse
// otherwise. Evaluators that know the graph size use it so answer sets
// become flat bitmaps instead of hash tables.
func NewPairSetSized(n int) *PairSet {
	if n <= 0 {
		return NewPairSet()
	}
	w := (n + 63) / 64
	if int64(n)*int64(w) > densePairBudgetWords {
		return NewPairSet()
	}
	return &PairSet{n: n, w: w, rows: make([]uint64, n*w)}
}

// Dense reports whether the set uses the bitmap representation.
func (s *PairSet) Dense() bool { return s.m == nil }

// Universe returns the dense universe size, or 0 for sparse sets.
func (s *PairSet) Universe() int {
	if s.m != nil {
		return 0
	}
	return s.n
}

// Add inserts the pair. A dense set holds pairs over its fixed universe
// only; inserting an index outside [0, Universe()) panics (silently
// corrupting a neighbouring row would be far worse).
func (s *PairSet) Add(from, to int) {
	if s.m != nil {
		s.m[Pair{from, to}] = struct{}{}
		return
	}
	if from < 0 || from >= s.n || to < 0 || to >= s.n {
		panic("datagraph: pair outside the dense PairSet universe")
	}
	s.rows[from*s.w+to>>6] |= uint64(1) << (to & 63)
}

// AddPair inserts the pair.
func (s *PairSet) AddPair(p Pair) { s.Add(p.From, p.To) }

// Has reports membership.
func (s *PairSet) Has(from, to int) bool {
	if s.m != nil {
		_, ok := s.m[Pair{from, to}]
		return ok
	}
	if from < 0 || from >= s.n || to < 0 || to >= s.n {
		return false
	}
	return s.rows[from*s.w+to>>6]&(uint64(1)<<(to&63)) != 0
}

// Len returns the number of pairs.
func (s *PairSet) Len() int {
	if s.m != nil {
		return len(s.m)
	}
	total := 0
	for _, w := range s.rows {
		total += bits.OnesCount64(w)
	}
	return total
}

// AddRowSet unions a NodeSet (over the same universe) into the target row
// of from: afterwards (from, v) ∈ s for every v ∈ t. It is how BFS closures
// publish a reachable set in one word-wise pass.
func (s *PairSet) AddRowSet(from int, t *NodeSet) {
	if s.m == nil && t.n == s.n {
		row := s.rows[from*s.w : (from+1)*s.w]
		for i, w := range t.words {
			row[i] |= w
		}
		return
	}
	t.Each(func(v int) { s.Add(from, v) })
}

// EachInRow calls f for every v with (from, v) ∈ s, ascending for dense
// sets. Sparse sets scan the whole table; dense callers use it as adjacency
// iteration.
func (s *PairSet) EachInRow(from int, f func(v int)) {
	if s.m != nil {
		for p := range s.m {
			if p.From == from {
				f(p.To)
			}
		}
		return
	}
	row := s.rows[from*s.w : (from+1)*s.w]
	for wi, w := range row {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// RowNonEmpty reports whether from has any target in s.
func (s *PairSet) RowNonEmpty(from int) bool {
	if s.m != nil {
		for p := range s.m {
			if p.From == from {
				return true
			}
		}
		return false
	}
	for _, w := range s.rows[from*s.w : (from+1)*s.w] {
		if w != 0 {
			return true
		}
	}
	return false
}

// Sorted returns the pairs in deterministic order.
func (s *PairSet) Sorted() []Pair {
	if s.m == nil {
		// Dense iteration is already (From, To)-ascending.
		out := make([]Pair, 0, s.Len())
		s.Each(func(p Pair) { out = append(out, p) })
		return out
	}
	out := make([]Pair, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Each calls f for every pair; dense sets iterate in ascending order,
// sparse sets in unspecified order.
func (s *PairSet) Each(f func(Pair)) {
	if s.m != nil {
		for p := range s.m {
			f(p)
		}
		return
	}
	for from := 0; from < s.n; from++ {
		row := s.rows[from*s.w : (from+1)*s.w]
		for wi, w := range row {
			base := wi << 6
			for w != 0 {
				f(Pair{From: from, To: base + bits.TrailingZeros64(w)})
				w &= w - 1
			}
		}
	}
}

// sameDense reports whether both sets are dense over the same universe, in
// which case the set algebra can run word-wise.
func (s *PairSet) sameDense(t *PairSet) bool {
	return s.m == nil && t.m == nil && s.n == t.n
}

// Equal reports whether two sets contain the same pairs.
func (s *PairSet) Equal(t *PairSet) bool {
	if s.sameDense(t) {
		for i, w := range s.rows {
			if w != t.rows[i] {
				return false
			}
		}
		return true
	}
	if s.Len() != t.Len() {
		return false
	}
	return s.SubsetOf(t)
}

// SubsetOf reports s ⊆ t.
func (s *PairSet) SubsetOf(t *PairSet) bool {
	if s.sameDense(t) {
		for i, w := range s.rows {
			if w&^t.rows[i] != 0 {
				return false
			}
		}
		return true
	}
	ok := true
	s.Each(func(p Pair) {
		if ok && !t.Has(p.From, p.To) {
			ok = false
		}
	})
	return ok
}

// Intersect returns s ∩ t.
func (s *PairSet) Intersect(t *PairSet) *PairSet {
	if s.sameDense(t) {
		out := NewPairSetSized(s.n)
		if out.m == nil {
			for i, w := range s.rows {
				out.rows[i] = w & t.rows[i]
			}
			return out
		}
	}
	out := s.emptyLike()
	s.Each(func(p Pair) {
		if t.Has(p.From, p.To) {
			out.AddPair(p)
		}
	})
	return out
}

// Union returns s ∪ t. Mixed-representation (or differently-sized)
// operands produce a sparse result, since t may hold pairs outside s's
// dense universe.
func (s *PairSet) Union(t *PairSet) *PairSet {
	if s.sameDense(t) {
		out := NewPairSetSized(s.n)
		if out.m == nil {
			for i, w := range s.rows {
				out.rows[i] = w | t.rows[i]
			}
			return out
		}
	}
	out := NewPairSet()
	s.Each(out.AddPair)
	t.Each(out.AddPair)
	return out
}

// emptyLike returns an empty set with the receiver's representation.
func (s *PairSet) emptyLike() *PairSet {
	if s.m == nil {
		return NewPairSetSized(s.n)
	}
	return NewPairSet()
}

// ComposePairs returns the relational composition a ∘ b =
// {(u, t) | ∃v (u, v) ∈ a ∧ (v, t) ∈ b}. When both sets are dense over the
// same universe the composition is a word-wise row union: out-row(u) is the
// OR of b's rows across a's targets of u.
func ComposePairs(a, b *PairSet) *PairSet {
	if a.sameDense(b) {
		out := NewPairSetSized(a.n)
		if out.m == nil {
			w := a.w
			for u := 0; u < a.n; u++ {
				dst := out.rows[u*w : (u+1)*w]
				a.EachInRow(u, func(v int) {
					src := b.rows[v*w : (v+1)*w]
					for i, word := range src {
						dst[i] |= word
					}
				})
			}
			return out
		}
	}
	// Index b by source, then join. The result is sparse: b's targets may
	// lie outside a's dense universe.
	byFrom := make(map[int][]int)
	b.Each(func(p Pair) { byFrom[p.From] = append(byFrom[p.From], p.To) })
	out := NewPairSet()
	a.Each(func(p Pair) {
		for _, t := range byFrom[p.To] {
			out.Add(p.From, t)
		}
	})
	return out
}

// ComplementPairs returns (V × V) \ s over the universe {0, …, n−1}.
// Whenever the output is dense the complement is word-wise: a dense operand
// over the same universe is negated row by row, and any other operand
// (sparse, or dense over a different universe) is first materialized into
// the dense output with one pass over its members, then negated in place —
// O(n²/64 + |s|) instead of the n² hash probes of the naive loop. The tail
// bits of each row beyond the universe are masked off. Only when the
// universe exceeds the dense budget does the naive membership loop remain.
func ComplementPairs(s *PairSet, n int) *PairSet {
	out := NewPairSetSized(n)
	if out.m == nil {
		var tail uint64 = ^uint64(0)
		if n&63 != 0 {
			tail = (uint64(1) << (n & 63)) - 1
		}
		if s.m == nil && s.n == n {
			for f := 0; f < n; f++ {
				row := out.rows[f*out.w : (f+1)*out.w]
				src := s.rows[f*s.w : (f+1)*s.w]
				for i := range row {
					row[i] = ^src[i]
				}
				row[len(row)-1] &= tail
			}
			return out
		}
		// Mark the operand's members (ignoring pairs outside the
		// universe, which cannot affect the complement), then negate.
		s.Each(func(p Pair) {
			if p.From >= 0 && p.From < n && p.To >= 0 && p.To < n {
				out.Add(p.From, p.To)
			}
		})
		for f := 0; f < n; f++ {
			row := out.rows[f*out.w : (f+1)*out.w]
			for i := range row {
				row[i] = ^row[i]
			}
			row[len(row)-1] &= tail
		}
		return out
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if !s.Has(u, v) {
				out.Add(u, v)
			}
		}
	}
	return out
}

// IDPair is a pair of node ids with their values, the API-boundary form of a
// query answer: the paper's answers are pairs of nodes (id, value).
type IDPair struct {
	From, To Node
}

// IDPairs resolves the dense indices against g, sorted deterministically.
func (s *PairSet) IDPairs(g *Graph) []IDPair {
	pairs := s.Sorted()
	out := make([]IDPair, len(pairs))
	for i, p := range pairs {
		out[i] = IDPair{From: g.Node(p.From), To: g.Node(p.To)}
	}
	return out
}
