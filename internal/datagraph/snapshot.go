package datagraph

import "sort"

// Label is an interned edge label: a small dense integer assigned per
// snapshot in edge-insertion order. Interning happens once at Freeze time;
// evaluators then traverse by integer comparison and array offset instead
// of string hashing.
type Label int32

// NoLabel is the sentinel for "no such label in this snapshot".
const NoLabel Label = -1

// Snapshot is a frozen, interned evaluation form of a Graph: CSR
// (compressed-sparse-row) out/in adjacency grouped by interned label,
// per-label edge lists, and interned node values. It is immutable and safe
// to share across goroutines; the engine freezes a graph once per batch and
// every worker evaluates against the same snapshot.
//
// Layout: for each direction, the half-edges of node u are grouped into
// label slots. nodeOff[u:u+2] brackets u's slots; labels[slot] is the slot's
// interned label (ascending within a node, so lookup is a binary search);
// slotOff[slot:slot+2] brackets the slot's targets. All targets of u are
// contiguous, so the any-label adjacency is the single slice spanning u's
// slots — no separate wildcard index is needed.
type Snapshot struct {
	g *Graph
	n int

	labels   []string
	labelIDs map[string]Label

	out csrDir
	in  csrDir

	// Per-label edge lists in insertion order (pairFrom/pairTo share the
	// offsets): the interned counterpart of Graph.LabelPairs.
	pairOff  []int32
	pairFrom []int32
	pairTo   []int32

	// Interned node values: valueID[u] ≥ 1 for every node; all null nodes
	// share nullID (−1 when the graph has no nulls). Id 0 is reserved so
	// register-automaton kernels can use it for "register unset".
	valueID   []int32
	nullID    int32
	numValues int

	topoVersion uint64
	valVersion  uint64
}

type csrDir struct {
	nodeOff []int32 // len n+1: slot range per node
	labels  []Label // per slot, ascending within each node
	slotOff []int32 // len numSlots+1: target range per slot
	targets []int32
}

// NumNodes returns the number of nodes.
func (s *Snapshot) NumNodes() int { return s.n }

// NumLabels returns the number of distinct edge labels.
func (s *Snapshot) NumLabels() int { return len(s.labels) }

// NumValues returns the number of distinct interned values (nulls count
// once).
func (s *Snapshot) NumValues() int { return s.numValues }

// Graph returns the graph this snapshot was frozen from.
func (s *Snapshot) Graph() *Graph { return s.g }

// LabelID resolves a label string to its interned id; ok is false when the
// label does not occur in the graph (so no edge can match it).
func (s *Snapshot) LabelID(name string) (Label, bool) {
	l, ok := s.labelIDs[name]
	return l, ok
}

// LabelName returns the string form of an interned label.
func (s *Snapshot) LabelName(l Label) string { return s.labels[l] }

// ValueID returns the interned data value of node u (≥ 1; all nulls share
// NullValueID).
func (s *Snapshot) ValueID(u int) int32 { return s.valueID[u] }

// NullValueID returns the interned id of the SQL null value, or −1 when the
// graph has no null node.
func (s *Snapshot) NullValueID() int32 { return s.nullID }

// Value returns δ(u), delegating to the underlying graph.
func (s *Snapshot) Value(u int) Value { return s.g.Value(u) }

func (d *csrDir) labeled(u int, l Label) []int32 {
	lo, hi := d.nodeOff[u], d.nodeOff[u+1]
	// Binary search for l among u's slots.
	for lo < hi {
		mid := (lo + hi) / 2
		if d.labels[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < d.nodeOff[u+1] && d.labels[lo] == l {
		return d.targets[d.slotOff[lo]:d.slotOff[lo+1]]
	}
	return nil
}

func (d *csrDir) all(u int) []int32 {
	return d.targets[d.slotOff[d.nodeOff[u]]:d.slotOff[d.nodeOff[u+1]]]
}

// OutLabeled returns the successors of u along edges labeled l.
func (s *Snapshot) OutLabeled(u int, l Label) []int32 { return s.out.labeled(u, l) }

// InLabeled returns the predecessors of u along edges labeled l.
func (s *Snapshot) InLabeled(u int, l Label) []int32 { return s.in.labeled(u, l) }

// OutAll returns all successors of u (with duplicates per parallel label).
func (s *Snapshot) OutAll(u int) []int32 { return s.out.all(u) }

// InAll returns all predecessors of u.
func (s *Snapshot) InAll(u int) []int32 { return s.in.all(u) }

// OutDegree returns the number of outgoing edges of u.
func (s *Snapshot) OutDegree(u int) int { return len(s.out.all(u)) }

// HasOutLabeled reports whether u has at least one outgoing edge labeled l.
func (s *Snapshot) HasOutLabeled(u int, l Label) bool { return len(s.out.labeled(u, l)) > 0 }

// LabelEdges returns every edge labeled l as parallel from/to slices of
// dense indices, in edge-insertion order. The slices must not be modified.
func (s *Snapshot) LabelEdges(l Label) (from, to []int32) {
	lo, hi := s.pairOff[l], s.pairOff[l+1]
	return s.pairFrom[lo:hi], s.pairTo[lo:hi]
}

// HasEdge reports whether (u, l, v) is an edge, scanning the shorter of the
// two per-label adjacency slices.
func (s *Snapshot) HasEdge(u int, l Label, v int) bool {
	outs := s.out.labeled(u, l)
	ins := s.in.labeled(v, l)
	if len(ins) < len(outs) {
		for _, x := range ins {
			if int(x) == u {
				return true
			}
		}
		return false
	}
	for _, x := range outs {
		if int(x) == v {
			return true
		}
	}
	return false
}

// buildSnapshot compiles the graph into a snapshot. When prev still matches
// the graph's topology version, its CSR arrays are reused and only the value
// interning is rebuilt (the SetValue-only invalidation path).
func buildSnapshot(g *Graph, prev *Snapshot) *Snapshot {
	if prev != nil && prev.topoVersion == g.topoVersion && prev.g == g {
		s := &Snapshot{
			g: g, n: prev.n,
			labels: prev.labels, labelIDs: prev.labelIDs,
			out: prev.out, in: prev.in,
			pairOff: prev.pairOff, pairFrom: prev.pairFrom, pairTo: prev.pairTo,
			topoVersion: g.topoVersion,
			valVersion:  g.valVersion,
		}
		s.internValues()
		return s
	}

	n := len(g.nodes)
	s := &Snapshot{
		g: g, n: n,
		labelIDs:    make(map[string]Label),
		topoVersion: g.topoVersion,
		valVersion:  g.valVersion,
	}
	// Intern labels in edge-insertion order (deterministic).
	for i := range g.seq {
		name := g.seq[i].label
		if _, ok := s.labelIDs[name]; !ok {
			s.labelIDs[name] = Label(len(s.labels))
			s.labels = append(s.labels, name)
		}
	}
	nl := len(s.labels)

	// Per-label edge lists: counting pass, then fill in insertion order.
	s.pairOff = make([]int32, nl+1)
	for i := range g.seq {
		s.pairOff[s.labelIDs[g.seq[i].label]+1]++
	}
	for l := 0; l < nl; l++ {
		s.pairOff[l+1] += s.pairOff[l]
	}
	s.pairFrom = make([]int32, len(g.seq))
	s.pairTo = make([]int32, len(g.seq))
	fill := make([]int32, nl)
	for i := range g.seq {
		e := &g.seq[i]
		l := s.labelIDs[e.label]
		at := s.pairOff[l] + fill[l]
		fill[l]++
		s.pairFrom[at] = e.from
		s.pairTo[at] = e.to
	}

	adj := g.adj()
	s.out = buildCSR(n, adj.out, s.labelIDs)
	s.in = buildCSR(n, adj.in, s.labelIDs)
	s.internValues()
	return s
}

// buildCSR compiles one direction of per-node half-edge lists into label-
// grouped CSR form. Within a (node, label) slot, targets keep their
// insertion order, matching Graph.OutEdges/InEdges.
func buildCSR(n int, adj [][]HalfEdge, labelIDs map[string]Label) csrDir {
	totalEdges := 0
	for _, hes := range adj {
		totalEdges += len(hes)
	}
	d := csrDir{
		nodeOff: make([]int32, n+1),
		targets: make([]int32, 0, totalEdges),
	}
	var scratch []slotEdge
	for u := 0; u < n; u++ {
		hes := adj[u]
		scratch = scratch[:0]
		for _, he := range hes {
			scratch = append(scratch, slotEdge{label: labelIDs[he.Label], to: int32(he.To)})
		}
		sortSlotEdges(scratch)
		for i := 0; i < len(scratch); {
			l := scratch[i].label
			d.labels = append(d.labels, l)
			d.slotOff = append(d.slotOff, int32(len(d.targets)))
			for i < len(scratch) && scratch[i].label == l {
				d.targets = append(d.targets, scratch[i].to)
				i++
			}
		}
		d.nodeOff[u+1] = int32(len(d.labels))
	}
	d.slotOff = append(d.slotOff, int32(len(d.targets)))
	return d
}

type slotEdge struct {
	label Label
	to    int32
}

// sortSlotEdges stable-sorts a node's half-edges by label. Degrees are
// small in practice, so an insertion sort (stable, allocation-free) beats
// sort.Slice, whose reflection closure allocates per call; genuinely large
// adjacency lists fall back to the library sort.
func sortSlotEdges(s []slotEdge) {
	if len(s) > 128 {
		sort.SliceStable(s, func(i, j int) bool { return s[i].label < s[j].label })
		return
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i
		for j > 0 && s[j-1].label > e.label {
			s[j] = s[j-1]
			j--
		}
		s[j] = e
	}
}

// internValues assigns dense ids (starting at 1) to the distinct data
// values of the graph; all null nodes share one id.
func (s *Snapshot) internValues() {
	g := s.g
	s.valueID = make([]int32, s.n)
	s.nullID = -1
	ids := make(map[string]int32, s.n)
	next := int32(1)
	for i := 0; i < s.n; i++ {
		v := g.nodes[i].Value
		if v.IsNull() {
			if s.nullID < 0 {
				s.nullID = next
				next++
			}
			s.valueID[i] = s.nullID
			continue
		}
		id, ok := ids[v.s]
		if !ok {
			id = next
			next++
			ids[v.s] = id
		}
		s.valueID[i] = id
	}
	s.numValues = int(next - 1)
}
