package datagraph

import (
	"maps"
	"sort"
)

// Label is an interned edge label: a small dense integer assigned per
// snapshot in edge-insertion order. Interning happens once at Freeze time;
// evaluators then traverse by integer comparison and array offset instead
// of string hashing.
type Label int32

// NoLabel is the sentinel for "no such label in this snapshot".
const NoLabel Label = -1

// Snapshot is a frozen, interned evaluation form of a Graph: CSR
// (compressed-sparse-row) out/in adjacency grouped by interned label,
// per-label edge lists, and interned node values. It is immutable and safe
// to share across goroutines; the engine freezes a graph once per batch and
// every worker evaluates against the same snapshot.
//
// Snapshots are maintained incrementally. The graph's topology mutations
// are pure appends (AddNode extends the node list, AddEdge extends the edge
// log), so a snapshot records a watermark — the prefix of the node list and
// edge log it was built from — and the next Freeze after a small append
// burst merges just the delta into the previous snapshot instead of
// rebuilding from scratch (see buildDelta). Storage is copy-on-write:
// untouched adjacency rows, per-label edge spans, the label interner and
// the value interner are shared with the previous snapshot.
type Snapshot struct {
	g *Graph
	n int

	// frozenNodes/frozenEdges is the watermark into the graph's append-only
	// node list and edge log: this snapshot reflects exactly
	// g.nodes[:frozenNodes] and g.seq[:frozenEdges].
	frozenNodes int
	frozenEdges int

	labels   []string
	labelIDs map[string]Label

	out csrDir
	in  csrDir

	// Per-label edge lists in insertion order, as chains of append-only
	// segments (the interned counterpart of Graph.LabelPairs). A delta
	// freeze extends a label's chain with one new span; existing spans are
	// shared with the previous snapshot.
	pairs []labelPairList

	// Interned node values: valueID[u] ≥ 1 for every node; all null nodes
	// share nullID (−1 when the graph has no nulls). Id 0 is reserved so
	// register-automaton kernels can use it for "register unset".
	valueID   []int32
	nullID    int32
	numValues int

	// valBase is the string→id interner built by the last full value pass;
	// valExtra overlays ids assigned by delta freezes since (checked first).
	// Both are immutable once the snapshot is published; a delta freeze that
	// meets a genuinely new value clones the overlay before extending it.
	valBase  map[string]int32
	valExtra map[string]int32
	valNext  int32

	topoVersion uint64
	valVersion  uint64
}

// csrSeg is one immutable storage segment of a CSR direction. A node's
// adjacency row lives entirely inside one segment: its label slots are
// consecutive in labels/slotOff and its targets consecutive in targets.
type csrSeg struct {
	labels  []Label // per slot, ascending within each row
	slotOff []int32 // len(labels)+1: target range per slot
	targets []int32
}

// csrRow locates one node's adjacency row: slot range [lo, hi) inside
// segment seg.
type csrRow struct {
	seg    int32
	lo, hi int32
}

// csrDir is one direction (out or in) of the label-grouped adjacency. A
// full build produces a single segment holding every row; each delta freeze
// appends one segment with the rebuilt rows of nodes touched by new
// half-edges (plus the rows of new nodes) and redirects only those rows —
// every other row keeps pointing into the older segments, which are shared
// between the snapshots.
type csrDir struct {
	rows []csrRow
	segs []*csrSeg

	// dead counts targets stored in older segments but no longer referenced
	// by any row (superseded by rewritten rows). It drives the compaction
	// heuristic: once garbage would exceed live edges, Freeze falls back to
	// a full rebuild.
	dead int
}

// pairSeg is one insertion-order span of a label's edge list.
type pairSeg struct {
	from, to []int32
}

// labelPairList is a label's edge list as a chain of spans in insertion
// order.
type labelPairList struct {
	segs  []pairSeg
	total int32
}

// NumNodes returns the number of nodes.
func (s *Snapshot) NumNodes() int { return s.n }

// Watermark returns the prefix of the graph's append-only node list and
// edge log this snapshot was built from. Together with
// Graph.SnapshotBuilds it lets bulk loaders assert that batched appends
// take the delta-merge path: after each batch's Freeze the watermark must
// advance while the full-rebuild counter stays put.
func (s *Snapshot) Watermark() (nodes, edges int) {
	return s.frozenNodes, s.frozenEdges
}

// NumLabels returns the number of distinct edge labels.
func (s *Snapshot) NumLabels() int { return len(s.labels) }

// NumValues returns the number of distinct interned values (nulls count
// once).
func (s *Snapshot) NumValues() int { return s.numValues }

// Graph returns the graph this snapshot was frozen from.
func (s *Snapshot) Graph() *Graph { return s.g }

// LabelID resolves a label string to its interned id; ok is false when the
// label does not occur in the graph (so no edge can match it).
func (s *Snapshot) LabelID(name string) (Label, bool) {
	l, ok := s.labelIDs[name]
	return l, ok
}

// LabelName returns the string form of an interned label.
func (s *Snapshot) LabelName(l Label) string { return s.labels[l] }

// ValueID returns the interned data value of node u (≥ 1; all nulls share
// NullValueID).
func (s *Snapshot) ValueID(u int) int32 { return s.valueID[u] }

// NullValueID returns the interned id of the SQL null value, or −1 when the
// graph has no null node.
func (s *Snapshot) NullValueID() int32 { return s.nullID }

// Value returns δ(u), delegating to the underlying graph.
func (s *Snapshot) Value(u int) Value { return s.g.Value(u) }

func (d *csrDir) labeled(u int, l Label) []int32 {
	r := d.rows[u]
	sg := d.segs[r.seg]
	lo, hi := r.lo, r.hi
	// Binary search for l among u's slots. The overflow-safe midpoint
	// matters: slot offsets are int32 and lo+hi can exceed MaxInt32 on
	// snapshots whose segments hold more than 2³⁰ slots.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if sg.labels[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < r.hi && sg.labels[lo] == l {
		return sg.targets[sg.slotOff[lo]:sg.slotOff[lo+1]]
	}
	return nil
}

func (d *csrDir) all(u int) []int32 {
	r := d.rows[u]
	sg := d.segs[r.seg]
	return sg.targets[sg.slotOff[r.lo]:sg.slotOff[r.hi]]
}

// OutLabeled returns the successors of u along edges labeled l.
func (s *Snapshot) OutLabeled(u int, l Label) []int32 { return s.out.labeled(u, l) }

// InLabeled returns the predecessors of u along edges labeled l.
func (s *Snapshot) InLabeled(u int, l Label) []int32 { return s.in.labeled(u, l) }

// OutAll returns all successors of u (with duplicates per parallel label).
func (s *Snapshot) OutAll(u int) []int32 { return s.out.all(u) }

// InAll returns all predecessors of u.
func (s *Snapshot) InAll(u int) []int32 { return s.in.all(u) }

// OutDegree returns the number of outgoing edges of u.
func (s *Snapshot) OutDegree(u int) int { return len(s.out.all(u)) }

// HasOutLabeled reports whether u has at least one outgoing edge labeled l.
func (s *Snapshot) HasOutLabeled(u int, l Label) bool { return len(s.out.labeled(u, l)) > 0 }

// NumLabelEdges returns the number of edges labeled l.
func (s *Snapshot) NumLabelEdges(l Label) int { return int(s.pairs[l].total) }

// EachLabelEdge calls f for every edge labeled l as a (from, to) pair of
// dense indices, in edge-insertion order. The edge list of a label is a
// chain of append-only spans (delta freezes extend it without copying), so
// iteration replaces the contiguous-slice accessor of earlier revisions.
func (s *Snapshot) EachLabelEdge(l Label, f func(from, to int32)) {
	for _, sp := range s.pairs[l].segs {
		for i := range sp.from {
			f(sp.from[i], sp.to[i])
		}
	}
}

// HasEdge reports whether (u, l, v) is an edge, scanning the shorter of the
// two per-label adjacency slices.
func (s *Snapshot) HasEdge(u int, l Label, v int) bool {
	outs := s.out.labeled(u, l)
	ins := s.in.labeled(v, l)
	if len(ins) < len(outs) {
		for _, x := range ins {
			if int(x) == u {
				return true
			}
		}
		return false
	}
	for _, x := range outs {
		if int(x) == v {
			return true
		}
	}
	return false
}

// Delta-freeze heuristics. A delta freeze is strictly better for small
// appends but loses to a full rebuild once the delta rivals the graph, the
// segment chain grows long (pointer-chasing and garbage) or rewritten rows
// have piled up too much garbage in old segments.
const (
	// maxCSRSegs caps the segment chain per direction.
	maxCSRSegs = 64
)

// canDeltaFreeze reports whether the cached snapshot prev can be extended
// to the current state of g by merging the appended suffix of the node list
// and edge log (the only topology mutation the Graph API allows).
func canDeltaFreeze(g *Graph, prev *Snapshot) bool {
	if prev == nil || prev.g != g {
		return false
	}
	// Defensive: the API keeps both logs append-only, so a cached snapshot
	// is always a prefix; never delta-merge if that invariant is broken.
	if prev.frozenNodes > len(g.nodes) || prev.frozenEdges > len(g.seq) {
		return false
	}
	if len(prev.out.segs) >= maxCSRSegs || len(prev.in.segs) >= maxCSRSegs {
		return false
	}
	if prev.out.dead+prev.in.dead > 2*len(g.seq) {
		return false
	}
	// A delta rivaling the live graph merges more than a rebuild costs.
	deltaN := len(g.nodes) - prev.frozenNodes
	deltaE := len(g.seq) - prev.frozenEdges
	return 4*(deltaN+deltaE) <= len(g.nodes)+len(g.seq)
}

// buildSnapshot compiles the graph into a snapshot. Three paths, cheapest
// first:
//
//   - prev matches the topology version exactly: only values changed
//     (SetValue), so every topology structure is reused and values are
//     re-interned;
//   - prev is a prefix of the current node list and edge log and the delta
//     is small: buildDelta merges the appended suffix into prev;
//   - otherwise: full rebuild.
func buildSnapshot(g *Graph, prev *Snapshot) *Snapshot {
	if prev != nil && prev.topoVersion == g.topoVersion && prev.g == g {
		s := &Snapshot{
			g: g, n: prev.n,
			frozenNodes: prev.frozenNodes, frozenEdges: prev.frozenEdges,
			labels: prev.labels, labelIDs: prev.labelIDs,
			out: prev.out, in: prev.in,
			pairs:       prev.pairs,
			topoVersion: g.topoVersion,
			valVersion:  g.valVersion,
		}
		s.internValuesFull()
		return s
	}
	if canDeltaFreeze(g, prev) {
		return buildDelta(g, prev)
	}
	return buildFull(g)
}

// buildFull compiles the graph from scratch: one CSR segment per direction,
// one span per label, fresh interners.
func buildFull(g *Graph) *Snapshot {
	g.snapFull.Add(1)
	n := len(g.nodes)
	s := &Snapshot{
		g: g, n: n,
		frozenNodes: n,
		frozenEdges: len(g.seq),
		labelIDs:    make(map[string]Label),
		topoVersion: g.topoVersion,
		valVersion:  g.valVersion,
	}
	// Intern labels in edge-insertion order (deterministic).
	for i := range g.seq {
		name := g.seq[i].label
		if _, ok := s.labelIDs[name]; !ok {
			s.labelIDs[name] = Label(len(s.labels))
			s.labels = append(s.labels, name)
		}
	}
	nl := len(s.labels)

	// Per-label edge lists: counting pass, then fill in insertion order,
	// then carve one span per label out of the two backing arrays.
	pairOff := make([]int32, nl+1)
	for i := range g.seq {
		pairOff[s.labelIDs[g.seq[i].label]+1]++
	}
	for l := 0; l < nl; l++ {
		pairOff[l+1] += pairOff[l]
	}
	pairFrom := make([]int32, len(g.seq))
	pairTo := make([]int32, len(g.seq))
	fill := make([]int32, nl)
	for i := range g.seq {
		e := &g.seq[i]
		l := s.labelIDs[e.label]
		at := pairOff[l] + fill[l]
		fill[l]++
		pairFrom[at] = e.from
		pairTo[at] = e.to
	}
	s.pairs = make([]labelPairList, nl)
	for l := 0; l < nl; l++ {
		lo, hi := pairOff[l], pairOff[l+1]
		s.pairs[l] = labelPairList{
			segs:  []pairSeg{{from: pairFrom[lo:hi:hi], to: pairTo[lo:hi:hi]}},
			total: hi - lo,
		}
	}

	adj := g.adj()
	s.out = buildCSR(n, adj.out, s.labelIDs)
	s.in = buildCSR(n, adj.in, s.labelIDs)
	s.internValuesFull()
	return s
}

// buildDelta extends prev to cover the appended suffix of the graph's node
// list and edge log: the label interner and per-label edge lists grow
// monotonically, only the CSR rows of nodes incident to new half-edges are
// rebuilt (into one fresh segment per direction), and everything untouched
// is shared with prev. Cost is O(V_rows + Δ + Σ deg(touched)) — the per-node
// row table and value-id array are copied, but none of the label slots,
// targets or pair spans of untouched nodes are.
func buildDelta(g *Graph, prev *Snapshot) *Snapshot {
	g.snapDelta.Add(1)
	n0, e0 := prev.frozenNodes, prev.frozenEdges
	n1, e1 := len(g.nodes), len(g.seq)
	delta := g.seq[e0:e1]

	s := &Snapshot{
		g: g, n: n1,
		frozenNodes: n1,
		frozenEdges: e1,
		labels:      prev.labels,
		labelIDs:    prev.labelIDs,
		topoVersion: g.topoVersion,
		valVersion:  g.valVersion,
	}

	// Extend the label interner monotonically: ids of existing labels are
	// stable, new labels take the next ids in first-appearance order —
	// exactly the ids a full rebuild over the whole log would assign. The
	// shared map and slice are cloned copy-on-write only if a new label
	// actually appears.
	internerCloned := false
	for i := range delta {
		name := delta[i].label
		if _, ok := s.labelIDs[name]; !ok {
			if !internerCloned {
				s.labelIDs = maps.Clone(s.labelIDs)
				s.labels = s.labels[:len(s.labels):len(s.labels)]
				internerCloned = true
			}
			s.labelIDs[name] = Label(len(s.labels))
			s.labels = append(s.labels, name)
		}
	}
	nl := len(s.labels)

	// Per-label edge lists: one new span per label that gained edges,
	// appended to the (shared) chain.
	cnt := make([]int32, nl)
	for i := range delta {
		cnt[s.labelIDs[delta[i].label]]++
	}
	off := make([]int32, nl+1)
	for l := 0; l < nl; l++ {
		off[l+1] = off[l] + cnt[l]
	}
	dFrom := make([]int32, len(delta))
	dTo := make([]int32, len(delta))
	fill := make([]int32, nl)
	for i := range delta {
		e := &delta[i]
		l := s.labelIDs[e.label]
		at := off[l] + fill[l]
		fill[l]++
		dFrom[at] = e.from
		dTo[at] = e.to
	}
	s.pairs = make([]labelPairList, nl)
	copy(s.pairs, prev.pairs)
	for l := 0; l < nl; l++ {
		if cnt[l] == 0 {
			continue
		}
		lo, hi := off[l], off[l+1]
		lp := s.pairs[l]
		lp.segs = append(lp.segs[:len(lp.segs):len(lp.segs)],
			pairSeg{from: dFrom[lo:hi:hi], to: dTo[lo:hi:hi]})
		lp.total += cnt[l]
		s.pairs[l] = lp
	}

	// Per-direction delta half-edges, grouped by the endpoint whose row they
	// extend, in log order.
	dOut := make(map[int32][]slotEdge)
	dIn := make(map[int32][]slotEdge)
	for i := range delta {
		e := &delta[i]
		l := s.labelIDs[e.label]
		dOut[e.from] = append(dOut[e.from], slotEdge{label: l, to: e.to})
		dIn[e.to] = append(dIn[e.to], slotEdge{label: l, to: e.from})
	}
	s.out = deltaCSR(&prev.out, n0, n1, dOut)
	s.in = deltaCSR(&prev.in, n0, n1, dIn)

	if prev.valVersion == g.valVersion {
		s.internValuesDelta(prev)
	} else {
		// Values were overwritten since prev; re-intern from scratch (the
		// same cost the SetValue-only reuse path already pays).
		s.internValuesFull()
	}
	return s
}

// deltaCSR extends one CSR direction: rows of old nodes with new half-edges
// are merged (old slots + delta, label order preserved) into one fresh
// segment, rows of new nodes are built there too, and every other row keeps
// pointing into the shared older segments.
func deltaCSR(prev *csrDir, n0, n1 int, deltaHE map[int32][]slotEdge) csrDir {
	seg := &csrSeg{}
	segIdx := int32(len(prev.segs))
	d := csrDir{
		rows: make([]csrRow, n1),
		segs: append(prev.segs[:len(prev.segs):len(prev.segs)], seg),
		dead: prev.dead,
	}
	copy(d.rows, prev.rows)

	// Touched old nodes, ascending for determinism.
	touched := make([]int32, 0, len(deltaHE))
	for u := range deltaHE {
		if int(u) < n0 {
			touched = append(touched, u)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	for _, u := range touched {
		r := prev.rows[u]
		src := prev.segs[r.seg]
		d.dead += int(src.slotOff[r.hi] - src.slotOff[r.lo])
		des := deltaHE[u]
		sortSlotEdges(des)
		lo := int32(len(seg.labels))
		mergeRow(seg, src, r, des)
		d.rows[u] = csrRow{seg: segIdx, lo: lo, hi: int32(len(seg.labels))}
	}
	for u := n0; u < n1; u++ {
		des := deltaHE[int32(u)]
		sortSlotEdges(des)
		lo := int32(len(seg.labels))
		appendRow(seg, des)
		d.rows[u] = csrRow{seg: segIdx, lo: lo, hi: int32(len(seg.labels))}
	}
	seg.slotOff = append(seg.slotOff, int32(len(seg.targets)))
	return d
}

// mergeRow appends to dst the merge of one old row (slots already ascending
// by label) with its label-sorted delta half-edges. Within a label, old
// targets precede delta targets — exactly the order a full rebuild over the
// whole log produces, since old edges precede delta edges in the log and
// the slot sort is stable.
func mergeRow(dst, src *csrSeg, r csrRow, des []slotEdge) {
	si := r.lo
	di := 0
	for si < r.hi || di < len(des) {
		var l Label
		switch {
		case di >= len(des):
			l = src.labels[si]
		case si >= r.hi:
			l = des[di].label
		case src.labels[si] < des[di].label:
			l = src.labels[si]
		default:
			l = des[di].label
		}
		dst.labels = append(dst.labels, l)
		dst.slotOff = append(dst.slotOff, int32(len(dst.targets)))
		if si < r.hi && src.labels[si] == l {
			dst.targets = append(dst.targets, src.targets[src.slotOff[si]:src.slotOff[si+1]]...)
			si++
		}
		for di < len(des) && des[di].label == l {
			dst.targets = append(dst.targets, des[di].to)
			di++
		}
	}
}

// appendRow appends one row built from label-sorted half-edges to the
// segment.
func appendRow(seg *csrSeg, des []slotEdge) {
	for i := 0; i < len(des); {
		l := des[i].label
		seg.labels = append(seg.labels, l)
		seg.slotOff = append(seg.slotOff, int32(len(seg.targets)))
		for i < len(des) && des[i].label == l {
			seg.targets = append(seg.targets, des[i].to)
			i++
		}
	}
}

// buildCSR compiles one direction of per-node half-edge lists into a
// single-segment label-grouped CSR. Within a (node, label) slot, targets
// keep their insertion order, matching Graph.OutEdges/InEdges.
func buildCSR(n int, adj [][]HalfEdge, labelIDs map[string]Label) csrDir {
	totalEdges := 0
	for _, hes := range adj {
		totalEdges += len(hes)
	}
	seg := &csrSeg{targets: make([]int32, 0, totalEdges)}
	d := csrDir{
		rows: make([]csrRow, n),
		segs: []*csrSeg{seg},
	}
	var scratch []slotEdge
	for u := 0; u < n; u++ {
		scratch = scratch[:0]
		for _, he := range adj[u] {
			scratch = append(scratch, slotEdge{label: labelIDs[he.Label], to: int32(he.To)})
		}
		sortSlotEdges(scratch)
		lo := int32(len(seg.labels))
		appendRow(seg, scratch)
		d.rows[u] = csrRow{seg: 0, lo: lo, hi: int32(len(seg.labels))}
	}
	seg.slotOff = append(seg.slotOff, int32(len(seg.targets)))
	return d
}

type slotEdge struct {
	label Label
	to    int32
}

// sortSlotEdges stable-sorts a node's half-edges by label. Degrees are
// small in practice, so an insertion sort (stable, allocation-free) beats
// sort.Slice, whose reflection closure allocates per call; genuinely large
// adjacency lists fall back to the library sort.
func sortSlotEdges(s []slotEdge) {
	if len(s) > 128 {
		sort.SliceStable(s, func(i, j int) bool { return s[i].label < s[j].label })
		return
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i
		for j > 0 && s[j-1].label > e.label {
			s[j] = s[j-1]
			j--
		}
		s[j] = e
	}
}

// internValuesFull assigns dense ids (starting at 1) to the distinct data
// values of the graph; all null nodes share one id.
func (s *Snapshot) internValuesFull() {
	g := s.g
	s.valueID = make([]int32, s.n)
	s.nullID = -1
	ids := make(map[string]int32, s.n)
	next := int32(1)
	for i := 0; i < s.n; i++ {
		v := g.nodes[i].Value
		if v.IsNull() {
			if s.nullID < 0 {
				s.nullID = next
				next++
			}
			s.valueID[i] = s.nullID
			continue
		}
		id, ok := ids[v.s]
		if !ok {
			id = next
			next++
			ids[v.s] = id
		}
		s.valueID[i] = id
	}
	s.valBase = ids
	s.valExtra = nil
	s.valNext = next
	s.numValues = int(next - 1)
}

// internValuesDelta extends prev's value interning to the appended nodes.
// Valid only when no SetValue happened since prev: existing ids are then
// stable, and new values take the next ids in node order — the same ids a
// full pass assigns. New values extend a copy-on-write overlay so prev's
// interner is never mutated.
func (s *Snapshot) internValuesDelta(prev *Snapshot) {
	g := s.g
	s.valueID = make([]int32, s.n)
	copy(s.valueID, prev.valueID)
	s.nullID = prev.nullID
	s.valBase = prev.valBase
	s.valExtra = prev.valExtra
	next := prev.valNext
	extraCloned := false
	for i := prev.frozenNodes; i < s.n; i++ {
		v := g.nodes[i].Value
		if v.IsNull() {
			if s.nullID < 0 {
				s.nullID = next
				next++
			}
			s.valueID[i] = s.nullID
			continue
		}
		id, ok := s.valExtra[v.s]
		if !ok {
			id, ok = s.valBase[v.s]
		}
		if !ok {
			if !extraCloned {
				if s.valExtra == nil {
					s.valExtra = make(map[string]int32)
				} else {
					s.valExtra = maps.Clone(s.valExtra)
				}
				extraCloned = true
			}
			id = next
			next++
			s.valExtra[v.s] = id
		}
		s.valueID[i] = id
	}
	s.valNext = next
	s.numValues = int(next - 1)
}
