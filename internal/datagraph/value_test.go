package datagraph

import (
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	a := V("alice")
	if a.IsNull() {
		t.Fatal("V should not be null")
	}
	if a.Raw() != "alice" {
		t.Fatalf("Raw = %q", a.Raw())
	}
	if a.String() != "alice" {
		t.Fatalf("String = %q", a.String())
	}
	n := Null()
	if !n.IsNull() {
		t.Fatal("Null should be null")
	}
	if n.String() != "⊥" {
		t.Fatalf("null String = %q", n.String())
	}
}

func TestRawPanicsOnNull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Raw on null must panic")
		}
	}()
	_ = Null().Raw()
}

func TestSQLComparisons(t *testing.T) {
	a, b, n := V("1"), V("2"), Null()
	cases := []struct {
		x, y      Value
		eq, neq   bool
		mEq, mNeq bool // marked-null semantics
		desc      string
	}{
		{a, a, true, false, true, false, "equal constants"},
		{a, b, false, true, false, true, "distinct constants"},
		{a, n, false, false, false, true, "constant vs null"},
		{n, a, false, false, false, true, "null vs constant"},
		{n, n, false, false, true, false, "null vs null"},
	}
	for _, c := range cases {
		if got := EqSQL(c.x, c.y); got != c.eq {
			t.Errorf("%s: EqSQL = %v, want %v", c.desc, got, c.eq)
		}
		if got := NeqSQL(c.x, c.y); got != c.neq {
			t.Errorf("%s: NeqSQL = %v, want %v", c.desc, got, c.neq)
		}
		if got := SQLNulls.Eq(c.x, c.y); got != c.eq {
			t.Errorf("%s: SQLNulls.Eq = %v, want %v", c.desc, got, c.eq)
		}
		if got := SQLNulls.Neq(c.x, c.y); got != c.neq {
			t.Errorf("%s: SQLNulls.Neq = %v, want %v", c.desc, got, c.neq)
		}
		if got := MarkedNulls.Eq(c.x, c.y); got != c.mEq {
			t.Errorf("%s: MarkedNulls.Eq = %v, want %v", c.desc, got, c.mEq)
		}
		if got := MarkedNulls.Neq(c.x, c.y); got != c.mNeq {
			t.Errorf("%s: MarkedNulls.Neq = %v, want %v", c.desc, got, c.mNeq)
		}
	}
}

// Property (Section 7): under SQL semantics no comparison involving null is
// true, and Eq/Neq are never both true.
func TestSQLNullNeverComparesTrue(t *testing.T) {
	f := func(s string, other string) bool {
		n := Null()
		v := V(other)
		if EqSQL(n, v) || EqSQL(v, n) || NeqSQL(n, v) || NeqSQL(v, n) || EqSQL(n, n) || NeqSQL(n, n) {
			return false
		}
		w := V(s)
		return !(EqSQL(v, w) && NeqSQL(v, w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: on non-null values SQL and marked semantics coincide.
func TestSemanticsAgreeOnConstants(t *testing.T) {
	f := func(a, b string) bool {
		x, y := V(a), V(b)
		return EqSQL(x, y) == EqMarked(x, y) && NeqSQL(x, y) == (x != y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareModeString(t *testing.T) {
	if MarkedNulls.String() != "marked-nulls" || SQLNulls.String() != "sql-nulls" {
		t.Fatal("CompareMode.String mismatch")
	}
	if CompareMode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func TestGoString(t *testing.T) {
	if Null().GoString() != "datagraph.Null()" {
		t.Fatal("null GoString")
	}
	if V("x").GoString() != `datagraph.V("x")` {
		t.Fatal("value GoString")
	}
}
