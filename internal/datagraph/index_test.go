package datagraph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randomIndexedGraph builds a random graph through the public mutation API,
// so the per-label indexes are exercised exactly as production code builds
// them (incrementally, with duplicate-edge no-ops mixed in).
func randomIndexedGraph(t *testing.T, rng *rand.Rand, nodes, edges int, labels []string) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < nodes; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("n%d", i)), V(fmt.Sprintf("d%d", rng.Intn(5))))
	}
	for e := 0; e < edges; e++ {
		from := NodeID(fmt.Sprintf("n%d", rng.Intn(nodes)))
		to := NodeID(fmt.Sprintf("n%d", rng.Intn(nodes)))
		g.MustAddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	return g
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexAgreesWithScan is the property test for the adjacency indexes:
// on random graphs, OutEdges/InEdges/LabelPairs/HasEdgeIndex must agree with
// a naive scan of the flat adjacency lists and the edge set.
func TestIndexAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		nodes := 1 + rng.Intn(20)
		edges := rng.Intn(60)
		g := randomIndexedGraph(t, rng, nodes, edges, labels)

		for i := 0; i < g.NumNodes(); i++ {
			for _, lab := range labels {
				var wantOut, wantIn []int
				for _, he := range g.Out(i) {
					if he.Label == lab {
						wantOut = append(wantOut, he.To)
					}
				}
				for _, he := range g.In(i) {
					if he.Label == lab {
						wantIn = append(wantIn, he.To)
					}
				}
				if got := g.OutEdges(i, lab); !equalInts(sortedCopy(got), sortedCopy(wantOut)) {
					t.Fatalf("trial %d: OutEdges(%d, %q) = %v, scan gives %v", trial, i, lab, got, wantOut)
				}
				if got := g.InEdges(i, lab); !equalInts(sortedCopy(got), sortedCopy(wantIn)) {
					t.Fatalf("trial %d: InEdges(%d, %q) = %v, scan gives %v", trial, i, lab, got, wantIn)
				}
			}
		}

		// LabelPairs must partition the edge set by label.
		total := 0
		for _, lab := range labels {
			pairs := g.LabelPairs(lab)
			total += len(pairs)
			for _, p := range pairs {
				if !g.HasEdge(g.Node(p.From).ID, lab, g.Node(p.To).ID) {
					t.Fatalf("trial %d: LabelPairs(%q) lists %v, not an edge", trial, lab, p)
				}
			}
		}
		if total != g.NumEdges() {
			t.Fatalf("trial %d: LabelPairs cover %d edges, graph has %d", trial, total, g.NumEdges())
		}

		// HasEdgeIndex must agree with the id-keyed edge set everywhere.
		for i := 0; i < g.NumNodes(); i++ {
			for j := 0; j < g.NumNodes(); j++ {
				for _, lab := range labels {
					want := g.HasEdge(g.Node(i).ID, lab, g.Node(j).ID)
					if got := g.HasEdgeIndex(i, lab, j); got != want {
						t.Fatalf("trial %d: HasEdgeIndex(%d, %q, %d) = %v, HasEdge says %v",
							trial, i, lab, j, got, want)
					}
				}
			}
		}
	}
}

// TestIndexSurvivesCloneAndSpecialize checks that the derived-graph
// constructors rebuild the indexes consistently.
func TestIndexSurvivesCloneAndSpecialize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomIndexedGraph(t, rng, 12, 30, []string{"a", "b"})
	for _, d := range []*Graph{g.Clone(), g.Specialize(map[NodeID]Value{"n0": V("zz")})} {
		if d.NumEdges() != g.NumEdges() {
			t.Fatalf("derived graph lost edges: %d vs %d", d.NumEdges(), g.NumEdges())
		}
		for _, lab := range []string{"a", "b"} {
			if len(d.LabelPairs(lab)) != len(g.LabelPairs(lab)) {
				t.Fatalf("derived graph index for %q has %d pairs, want %d",
					lab, len(d.LabelPairs(lab)), len(g.LabelPairs(lab)))
			}
		}
	}
}

// TestIndexZeroGraph checks the zero Graph works with the index accessors.
func TestIndexZeroGraph(t *testing.T) {
	var g Graph
	g.MustAddNode("x", V("1"))
	g.MustAddNode("y", V("2"))
	g.MustAddEdge("x", "a", "y")
	if got := g.OutEdges(0, "a"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OutEdges on zero-value graph: %v", got)
	}
	if !g.HasEdgeIndex(0, "a", 1) || g.HasEdgeIndex(1, "a", 0) {
		t.Fatal("HasEdgeIndex wrong on zero-value graph")
	}
	if got := g.LabelPairs("a"); len(got) != 1 {
		t.Fatalf("LabelPairs on zero-value graph: %v", got)
	}
}
