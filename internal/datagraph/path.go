package datagraph

import (
	"fmt"
	"strings"
)

// Path is a path π = v₁a₁v₂…vₙaₙvₙ₊₁ in a data graph: an alternating
// sequence of node indices and labels. Nodes has one more entry than Labels.
type Path struct {
	Nodes  []int
	Labels []string
}

// Len returns |π|, the number of edges (equivalently, the length of λ(π)).
func (p Path) Len() int { return len(p.Labels) }

// Label returns λ(π), the word a₁…aₙ.
func (p Path) Label() []string { return p.Labels }

// Validate checks that the path's structure is consistent and that each step
// is an edge of g.
func (p Path) Validate(g *Graph) error {
	if len(p.Nodes) != len(p.Labels)+1 {
		return fmt.Errorf("datagraph: path has %d nodes and %d labels", len(p.Nodes), len(p.Labels))
	}
	for i, lab := range p.Labels {
		if !g.HasEdgeIndex(p.Nodes[i], lab, p.Nodes[i+1]) {
			return fmt.Errorf("datagraph: path step %d: no edge %s -%s-> %s",
				i, g.Node(p.Nodes[i]).ID, lab, g.Node(p.Nodes[i+1]).ID)
		}
	}
	return nil
}

// DataPath is a data path d₁a₁d₂…dₙaₙdₙ₊₁: an alternating sequence of data
// values and labels, with one more value than labels (Section 2).
type DataPath struct {
	Values []Value
	Labels []string
}

// DataPathOf returns δ(π): the data path obtained from a graph path by
// replacing each node with its data value.
func DataPathOf(g *Graph, p Path) DataPath {
	vals := make([]Value, len(p.Nodes))
	for i, n := range p.Nodes {
		vals[i] = g.Value(n)
	}
	labs := make([]string, len(p.Labels))
	copy(labs, p.Labels)
	return DataPath{Values: vals, Labels: labs}
}

// NewDataPath builds a data path from interleaved values and labels. It
// panics unless len(values) == len(labels)+1 and len(values) ≥ 1.
func NewDataPath(values []Value, labels []string) DataPath {
	if len(values) != len(labels)+1 || len(values) == 0 {
		panic(fmt.Sprintf("datagraph: malformed data path: %d values, %d labels", len(values), len(labels)))
	}
	return DataPath{Values: values, Labels: labels}
}

// Len returns the number of labels.
func (w DataPath) Len() int { return len(w.Labels) }

// First returns the first data value d₁.
func (w DataPath) First() Value { return w.Values[0] }

// Last returns the last data value dₙ₊₁.
func (w DataPath) Last() Value { return w.Values[len(w.Values)-1] }

// Concat returns w·w′, defined when the last value of w equals the first
// value of w′ (Section 3). The shared value appears once in the result.
func (w DataPath) Concat(x DataPath) (DataPath, error) {
	if w.Last() != x.First() {
		return DataPath{}, fmt.Errorf("datagraph: cannot concatenate data paths: %s vs %s", w.Last(), x.First())
	}
	values := make([]Value, 0, len(w.Values)+len(x.Values)-1)
	values = append(values, w.Values...)
	values = append(values, x.Values[1:]...)
	labels := make([]string, 0, len(w.Labels)+len(x.Labels))
	labels = append(labels, w.Labels...)
	labels = append(labels, x.Labels...)
	return DataPath{Values: values, Labels: labels}, nil
}

// String renders the data path as d1 a1 d2 … an dn+1.
func (w DataPath) String() string {
	var b strings.Builder
	for i, v := range w.Values {
		if i > 0 {
			fmt.Fprintf(&b, " %s ", w.Labels[i-1])
		}
		b.WriteString(v.String())
	}
	return b.String()
}
