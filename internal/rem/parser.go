package rem

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Parse parses the concrete REM syntax documented in the package comment.
func Parse(input string) (Expr, error) {
	p := &parser{input: input}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("rem: unexpected %q at offset %d", p.rest(), p.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

// parser is a character-level recursive-descent parser; conditions inside
// [...] use a different lexical context than expressions (where '!' starts a
// binder), so a token stream would be awkward.
type parser struct {
	input string
	pos   int
}

func (p *parser) rest() string {
	if p.pos >= len(p.input) {
		return "<eof>"
	}
	r := p.input[p.pos:]
	if len(r) > 10 {
		r = r[:10]
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '#' || r == '↔'
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		r, size := utf8.DecodeRuneInString(p.input[p.pos:])
		if !isIdentRune(r) {
			break
		}
		p.pos += size
	}
	if p.pos == start {
		return "", fmt.Errorf("rem: expected identifier at offset %d, got %q", p.pos, p.rest())
	}
	return p.input[start:p.pos], nil
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		alt, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, alt)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return Union{Alts: alts}, nil
}

func (p *parser) parseConcat() (Expr, error) {
	var factors []Expr
	for {
		p.skipSpace()
		c := p.peek()
		r, _ := utf8.DecodeRuneInString(p.input[p.pos:])
		if c == '(' || c == '.' || c == '!' || (p.pos < len(p.input) && isIdentRune(r)) {
			f, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			factors = append(factors, f)
			continue
		}
		break
	}
	switch len(factors) {
	case 0:
		return nil, fmt.Errorf("rem: expected expression at offset %d, got %q", p.pos, p.rest())
	case 1:
		return factors[0], nil
	default:
		return Concat{Factors: factors}, nil
	}
}

// parseFactor parses a binder or an atom followed by postfix operators
// (*, +, ?, [c]).
func (p *parser) parseFactor() (Expr, error) {
	p.skipSpace()
	if p.peek() == '!' {
		p.pos++
		var vars []string
		for {
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			vars = append(vars, v)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipSpace()
		if p.peek() != '.' {
			return nil, fmt.Errorf("rem: expected '.' after binder variables at offset %d", p.pos)
		}
		p.pos++
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Bind{Vars: vars, Inner: inner}, nil
	}
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			atom = Star{Inner: atom}
		case '+':
			p.pos++
			atom = Plus{Inner: atom}
		case '?':
			p.pos++
			atom = Opt{Inner: atom}
		case '[':
			p.pos++
			cond, err := p.parseCondOr()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() != ']' {
				return nil, fmt.Errorf("rem: missing ']' at offset %d", p.pos)
			}
			p.pos++
			atom = Test{Inner: atom, Cond: cond}
		default:
			return atom, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '.':
		// '.' is Any only in atom position; binder dots are consumed by
		// parseFactor before reaching here.
		p.pos++
		return Any{}, nil
	case c == '(':
		p.pos++
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			return Eps{}, nil
		}
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("rem: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	default:
		label, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Lit{Label: label}, nil
	}
}

// Condition grammar: or-level has lowest precedence.
func (p *parser) parseCondOr() (Cond, error) {
	l, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return l, nil
		}
		p.pos++
		r, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		l = COr{L: l, R: r}
	}
}

func (p *parser) parseCondAnd() (Cond, error) {
	l, err := p.parseCondAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '&' {
			return l, nil
		}
		p.pos++
		r, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		l = CAnd{L: l, R: r}
	}
}

func (p *parser) parseCondAtom() (Cond, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		c, err := p.parseCondOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("rem: missing ')' in condition at offset %d", p.pos)
		}
		p.pos++
		return c, nil
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	switch {
	case p.peek() == '!' && p.pos+1 < len(p.input) && p.input[p.pos+1] == '=':
		p.pos += 2
		return CAtom{Var: v, Neq: true}, nil
	case p.peek() == '=':
		p.pos++
		return CAtom{Var: v}, nil
	default:
		return nil, fmt.Errorf("rem: expected '=' or '!=' after variable %q at offset %d", v, p.pos)
	}
}
