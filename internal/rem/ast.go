// Package rem implements regular expressions with memory (REM, Section 3 of
// Francis & Libkin PODS'17):
//
//	e := ε | a | e+e | e·e | e⁺ | e[c] | ↓x̄.e
//	c := x= | x≠ | c∧c | c∨c
//
// ↓x̄.e binds the current data value to the variables x̄ before matching e;
// e[c] checks condition c against the data value reached after matching e.
// REMs capture register automata; this package compiles them onto the shared
// engine in package ra, giving data-path membership and graph evaluation
// under both marked-null and SQL-null comparison semantics.
//
// Concrete syntax: the rex grammar extended with a prefix binder and a
// postfix condition:
//
//	!x,y.FACTOR      ↓x,y.e (binds the following factor)
//	FACTOR[c]        e[c], with c := atom | c & c | c | c, atom := x= | x!=
//
// The paper's examples read:
//
//	↓x.(a[x≠])⁺        !x.(a[x!=])+
//	Σ*·↓x.Σ⁺[x=]·Σ*    .* !x.((.+)[x=]) .*
package rem

import "strings"

// Cond is a condition over variables compared with the current data value.
type Cond interface {
	String() string
	isCond()
}

// CAtom is x= (Neq=false) or x≠ (Neq=true).
type CAtom struct {
	Var string
	Neq bool
}

// CAnd is conjunction c ∧ c.
type CAnd struct{ L, R Cond }

// COr is disjunction c ∨ c.
type COr struct{ L, R Cond }

func (CAtom) isCond() {}
func (CAnd) isCond()  {}
func (COr) isCond()   {}

func (c CAtom) String() string {
	if c.Neq {
		return c.Var + "!="
	}
	return c.Var + "="
}
func (c CAnd) String() string { return "(" + c.L.String() + " & " + c.R.String() + ")" }
func (c COr) String() string  { return "(" + c.L.String() + " | " + c.R.String() + ")" }

// Negate returns ¬c pushed down to atoms (the paper notes conditions are
// closed under negation by swapping = with ≠ and ∧ with ∨).
func Negate(c Cond) Cond {
	switch t := c.(type) {
	case CAtom:
		return CAtom{Var: t.Var, Neq: !t.Neq}
	case CAnd:
		return COr{L: Negate(t.L), R: Negate(t.R)}
	case COr:
		return CAnd{L: Negate(t.L), R: Negate(t.R)}
	default:
		panic("rem: unknown condition node")
	}
}

// Expr is the AST of a regular expression with memory.
type Expr interface {
	String() string
	isExpr()
}

// Eps is ε.
type Eps struct{}

// Lit is a letter a ∈ Σ.
type Lit struct{ Label string }

// Any matches any letter (convenience for Σ).
type Any struct{}

// Concat is e·e′.
type Concat struct{ Factors []Expr }

// Union is e+e′.
type Union struct{ Alts []Expr }

// Plus is e⁺.
type Plus struct{ Inner Expr }

// Star is e* = ε + e⁺ (convenience).
type Star struct{ Inner Expr }

// Opt is e? (convenience).
type Opt struct{ Inner Expr }

// Test is e[c].
type Test struct {
	Inner Expr
	Cond  Cond
}

// Bind is ↓x̄.e.
type Bind struct {
	Vars  []string
	Inner Expr
}

func (Eps) isExpr()    {}
func (Lit) isExpr()    {}
func (Any) isExpr()    {}
func (Concat) isExpr() {}
func (Union) isExpr()  {}
func (Plus) isExpr()   {}
func (Star) isExpr()   {}
func (Opt) isExpr()    {}
func (Test) isExpr()   {}
func (Bind) isExpr()   {}

func (Eps) String() string   { return "()" }
func (l Lit) String() string { return l.Label }
func (Any) String() string   { return "." }

func (c Concat) String() string {
	parts := make([]string, len(c.Factors))
	for i, f := range c.Factors {
		s := f.String()
		if _, isUnion := f.(Union); isUnion {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "|")
}

func groupString(e Expr) string {
	switch e.(type) {
	case Lit, Any, Eps:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

func (p Plus) String() string { return groupString(p.Inner) + "+" }
func (s Star) String() string { return groupString(s.Inner) + "*" }
func (o Opt) String() string  { return groupString(o.Inner) + "?" }

func (t Test) String() string { return groupString(t.Inner) + "[" + condBody(t.Cond) + "]" }

// condBody renders a condition without its outermost parentheses.
func condBody(c Cond) string {
	s := c.String()
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		return s[1 : len(s)-1]
	}
	return s
}

func (b Bind) String() string {
	return "!" + strings.Join(b.Vars, ",") + "." + groupString(b.Inner)
}

// Vars returns all variables mentioned in the expression (bound or tested),
// in first-occurrence order.
func Vars(e Expr) []string {
	var order []string
	seen := make(map[string]struct{})
	add := func(v string) {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			order = append(order, v)
		}
	}
	var walkCond func(Cond)
	walkCond = func(c Cond) {
		switch t := c.(type) {
		case CAtom:
			add(t.Var)
		case CAnd:
			walkCond(t.L)
			walkCond(t.R)
		case COr:
			walkCond(t.L)
			walkCond(t.R)
		}
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case Concat:
			for _, f := range t.Factors {
				walk(f)
			}
		case Union:
			for _, a := range t.Alts {
				walk(a)
			}
		case Plus:
			walk(t.Inner)
		case Star:
			walk(t.Inner)
		case Opt:
			walk(t.Inner)
		case Test:
			walk(t.Inner)
			walkCond(t.Cond)
		case Bind:
			for _, v := range t.Vars {
				add(v)
			}
			walk(t.Inner)
		}
	}
	walk(e)
	return order
}

// IsEqualityOnly reports whether the expression is in REM= (Section 8): no
// x≠ atom in any condition.
func IsEqualityOnly(e Expr) bool {
	var condOK func(Cond) bool
	condOK = func(c Cond) bool {
		switch t := c.(type) {
		case CAtom:
			return !t.Neq
		case CAnd:
			return condOK(t.L) && condOK(t.R)
		case COr:
			return condOK(t.L) && condOK(t.R)
		default:
			return false
		}
	}
	switch t := e.(type) {
	case Eps, Lit, Any:
		return true
	case Concat:
		for _, f := range t.Factors {
			if !IsEqualityOnly(f) {
				return false
			}
		}
		return true
	case Union:
		for _, a := range t.Alts {
			if !IsEqualityOnly(a) {
				return false
			}
		}
		return true
	case Plus:
		return IsEqualityOnly(t.Inner)
	case Star:
		return IsEqualityOnly(t.Inner)
	case Opt:
		return IsEqualityOnly(t.Inner)
	case Test:
		return condOK(t.Cond) && IsEqualityOnly(t.Inner)
	case Bind:
		return IsEqualityOnly(t.Inner)
	default:
		return false
	}
}
