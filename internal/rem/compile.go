package rem

import (
	"fmt"
	"sort"

	"repro/internal/datagraph"
	"repro/internal/ra"
)

// Query is a compiled REM query (a memory RPQ in the paper's terminology).
type Query struct {
	expr Expr
	auto *ra.Automaton
	regs map[string]int // variable name → register index
}

// New compiles an REM expression.
func New(e Expr) *Query {
	regs := make(map[string]int)
	for i, v := range Vars(e) {
		regs[v] = i
	}
	b := &ra.Builder{}
	c := &compiler{b: b, regs: regs}
	f := c.compile(e)
	return &Query{expr: e, auto: b.Finish(f.start, f.accept), regs: regs}
}

// ParseQuery parses and compiles the concrete syntax.
func ParseQuery(s string) (*Query, error) {
	e, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return New(e), nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Expr returns the AST.
func (q *Query) Expr() Expr { return q.expr }

// Automaton exposes the compiled register automaton.
func (q *Query) Automaton() *ra.Automaton { return q.auto }

// String renders the query in concrete syntax.
func (q *Query) String() string { return q.expr.String() }

// Registers returns the variable-to-register assignment, sorted by register.
func (q *Query) Registers() []string {
	out := make([]string, len(q.regs))
	type kv struct {
		name string
		reg  int
	}
	kvs := make([]kv, 0, len(q.regs))
	for n, r := range q.regs {
		kvs = append(kvs, kv{n, r})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].reg < kvs[j].reg })
	for i, e := range kvs {
		out[i] = e.name
	}
	return out
}

// Match reports whether the data path is in L(e): there is a parse
// (e, w, ⊥) ⊢ σ for some final assignment σ.
func (q *Query) Match(w datagraph.DataPath, mode datagraph.CompareMode) bool {
	return q.auto.MatchDataPath(w, mode)
}

// Eval returns the pairs (v, v′) connected by a path π with δ(π) ∈ L(e).
func (q *Query) Eval(g *datagraph.Graph, mode datagraph.CompareMode) *datagraph.PairSet {
	return q.auto.Eval(g, mode)
}

// EvalFrom returns targets reachable from node index u by a matching path.
func (q *Query) EvalFrom(g *datagraph.Graph, u int, mode datagraph.CompareMode) []int {
	return q.auto.EvalFrom(g, u, mode)
}

// EvalRange evaluates from every start node in [lo, hi) over the graph's
// interned snapshot, sharing scratch across the range; see
// ra.Automaton.EvalRange.
func (q *Query) EvalRange(g *datagraph.Graph, lo, hi int, mode datagraph.CompareMode, emit func(u, v int)) {
	q.auto.EvalRange(g, lo, hi, mode, emit)
}

// StartLabels returns a superset of the labels able to begin a nonempty
// match and whether it is exhaustive; see ra.Automaton.StartLabels.
func (q *Query) StartLabels() ([]string, bool) { return q.auto.StartLabels() }

// AcceptsEmptyPath reports whether the query may accept a single-node path;
// see ra.Automaton.AcceptsEmptyPath.
func (q *Query) AcceptsEmptyPath() bool { return q.auto.AcceptsEmptyPath() }

type frag struct{ start, accept int }

type compiler struct {
	b    *ra.Builder
	regs map[string]int
}

func (c *compiler) cond(cd Cond) ra.Cond {
	switch t := cd.(type) {
	case CAtom:
		r, ok := c.regs[t.Var]
		if !ok {
			// Vars() collects every mentioned variable, so this cannot
			// happen for expressions built by Parse; guard anyway.
			panic(fmt.Sprintf("rem: unknown variable %q", t.Var))
		}
		if t.Neq {
			return ra.Neq{Reg: r}
		}
		return ra.Eq{Reg: r}
	case CAnd:
		return ra.And{L: c.cond(t.L), R: c.cond(t.R)}
	case COr:
		return ra.Or{L: c.cond(t.L), R: c.cond(t.R)}
	default:
		panic("rem: unknown condition node")
	}
}

func (c *compiler) compile(e Expr) frag {
	b := c.b
	switch t := e.(type) {
	case Eps:
		s, a := b.State(), b.State()
		b.Eps(s, a, ra.True{}, nil)
		return frag{s, a}
	case Lit:
		s, a := b.State(), b.State()
		b.Letter(s, a, t.Label, false, ra.True{}, nil)
		return frag{s, a}
	case Any:
		s, a := b.State(), b.State()
		b.Letter(s, a, "", true, ra.True{}, nil)
		return frag{s, a}
	case Concat:
		if len(t.Factors) == 0 {
			return c.compile(Eps{})
		}
		f0 := c.compile(t.Factors[0])
		start, accept := f0.start, f0.accept
		for _, fct := range t.Factors[1:] {
			nf := c.compile(fct)
			b.Eps(accept, nf.start, ra.True{}, nil)
			accept = nf.accept
		}
		return frag{start, accept}
	case Union:
		s, a := b.State(), b.State()
		for _, alt := range t.Alts {
			f := c.compile(alt)
			b.Eps(s, f.start, ra.True{}, nil)
			b.Eps(f.accept, a, ra.True{}, nil)
		}
		return frag{s, a}
	case Plus:
		s, a := b.State(), b.State()
		f := c.compile(t.Inner)
		b.Eps(s, f.start, ra.True{}, nil)
		b.Eps(f.accept, f.start, ra.True{}, nil)
		b.Eps(f.accept, a, ra.True{}, nil)
		return frag{s, a}
	case Star:
		s, a := b.State(), b.State()
		f := c.compile(t.Inner)
		b.Eps(s, a, ra.True{}, nil)
		b.Eps(s, f.start, ra.True{}, nil)
		b.Eps(f.accept, f.start, ra.True{}, nil)
		b.Eps(f.accept, a, ra.True{}, nil)
		return frag{s, a}
	case Opt:
		s, a := b.State(), b.State()
		f := c.compile(t.Inner)
		b.Eps(s, a, ra.True{}, nil)
		b.Eps(s, f.start, ra.True{}, nil)
		b.Eps(f.accept, a, ra.True{}, nil)
		return frag{s, a}
	case Test:
		// (e[c], w, σ) ⊢ σ′ iff (e, w, σ) ⊢ σ′ and σ′, d ⊨ c for the last
		// data value d: an ε-check after the inner fragment.
		f := c.compile(t.Inner)
		a := b.State()
		b.Eps(f.accept, a, c.cond(t.Cond), nil)
		return frag{f.start, a}
	case Bind:
		// (↓x̄.e, w, σ) ⊢ σ′ iff (e, w, σ_{x̄=d}) ⊢ σ′ for the first data
		// value d: an ε-store before the inner fragment.
		store := make([]int, len(t.Vars))
		for i, v := range t.Vars {
			store[i] = c.regs[v]
		}
		s := b.State()
		f := c.compile(t.Inner)
		b.Eps(s, f.start, ra.True{}, store)
		return frag{s, f.accept}
	default:
		panic(fmt.Sprintf("rem: unknown expression node %T", e))
	}
}
