package rem

import (
	"testing"

	"repro/internal/datagraph"
)

func TestNonemptiness(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"a", true},
		{"!x.(a[x=])", true},
		{"!x.(a[x!=])", true},
		{"!x.(a[x= & x!=])", false}, // contradiction
		{"!x.(a[x=] a[x!=])", true}, // different positions, satisfiable
		{"!x.(a[x!=])+", true},
		{".* !x.((.+)[x=]) .*", true},
		// x must equal two values that are forced to differ:
		// bind x, then a-step requiring ≠ x that also rebinds... build a
		// contradiction through two variables.
		{"!x,y.(a[x= & y!=])", false}, // x and y hold the same value
		{"!x.(!y.(a[x= | y!=]))", true},
		{"a[z=]", false}, // unbound variable conditions are unsatisfiable
	}
	for _, c := range cases {
		q := MustParseQuery(c.expr)
		if got := q.Nonempty(); got != c.want {
			t.Errorf("Nonempty(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestWitnessDataPathVerifies(t *testing.T) {
	for _, expr := range []string{
		"!x.(a[x=])", "!x.(a[x!=])+", ".* !x.((.+)[x=]) .*",
		"!x.(a !y.(a[x= | y=]))",
	} {
		q := MustParseQuery(expr)
		w, ok := q.WitnessDataPath()
		if !ok {
			t.Fatalf("%q should be nonempty", expr)
		}
		if !q.Match(w, datagraph.MarkedNulls) {
			t.Fatalf("%q: witness %v not in language", expr, w)
		}
	}
	if _, ok := MustParseQuery("!x.(a[x= & x!=])").WitnessDataPath(); ok {
		t.Fatal("empty language returned a witness")
	}
}

// The Pspace shape: nonemptiness cost grows with register count but stays
// feasible for the handful of registers real queries use.
func TestNonemptinessManyRegisters(t *testing.T) {
	// !x1...!x5 binding chain with a final conjunction over all.
	expr := "!x1.(a !x2.(a !x3.(a !x4.(a !x5.(a[x1= | x2= | x3= | x4= | x5=])))))"
	q := MustParseQuery(expr)
	if q.Automaton().NumRegs != 5 {
		t.Fatalf("registers = %d", q.Automaton().NumRegs)
	}
	if !q.Nonempty() {
		t.Fatal("satisfiable chain misjudged")
	}
}
