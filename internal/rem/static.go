package rem

import "repro/internal/datagraph"

// Static analysis of memory RPQs. The paper (Section 3) cites
// Pspace-completeness of nonemptiness for regular expressions with memory /
// register automata; the symbolic reachability of package ra realises the
// upper bound (configurations are control states × partitions of the
// registers plus the current value, i.e. Bell-many per state).

// Nonempty reports whether L(e) contains at least one data path.
func (q *Query) Nonempty() bool { return q.auto.Nonempty() }

// WitnessDataPath returns a data path in L(e), if the language is nonempty.
func (q *Query) WitnessDataPath() (datagraph.DataPath, bool) {
	return q.auto.SomeDataPath()
}
