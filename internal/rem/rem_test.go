package rem

import (
	"reflect"
	"testing"

	"repro/internal/datagraph"
)

func dp(vals []string, labels ...string) datagraph.DataPath {
	vv := make([]datagraph.Value, len(vals))
	for i, s := range vals {
		vv[i] = datagraph.V(s)
	}
	return datagraph.NewDataPath(vv, labels)
}

func TestPaperExampleAllDifferent(t *testing.T) {
	// ↓x.(a[x≠])⁺ — all later values differ from the first.
	q := MustParseQuery("!x.(a[x!=])+")
	m := datagraph.MarkedNulls
	if !q.Match(dp([]string{"d", "1", "2", "3"}, "a", "a", "a"), m) {
		t.Fatal("d a 1 a 2 a 3 should match")
	}
	if q.Match(dp([]string{"d", "1", "d"}, "a", "a"), m) {
		t.Fatal("d a 1 a d must not match")
	}
	if q.Match(dp([]string{"d"}), m) {
		t.Fatal("single value must not match (plus requires one step)")
	}
	// Later duplicates among themselves are allowed.
	if !q.Match(dp([]string{"d", "1", "1"}, "a", "a"), m) {
		t.Fatal("d a 1 a 1 should match")
	}
}

func TestPaperExampleValueRepeats(t *testing.T) {
	// Σ*·↓x.Σ⁺[x=]·Σ* — some data value occurs twice.
	q := MustParseQuery(".* !x.((.+)[x=]) .*")
	m := datagraph.MarkedNulls
	if !q.Match(dp([]string{"1", "2", "3", "1"}, "a", "b", "c"), m) {
		t.Fatal("repeat at ends should match")
	}
	if !q.Match(dp([]string{"0", "5", "5", "9"}, "a", "a", "a"), m) {
		t.Fatal("adjacent repeat should match")
	}
	if q.Match(dp([]string{"1", "2", "3", "4"}, "a", "b", "c"), m) {
		t.Fatal("all-distinct must not match")
	}
}

func TestBindMultipleVars(t *testing.T) {
	// ↓x,y.a[x= & y=] — both bound to first value; both must equal last.
	q := MustParseQuery("!x,y.(a[x= & y=])")
	m := datagraph.MarkedNulls
	if !q.Match(dp([]string{"7", "7"}, "a"), m) {
		t.Fatal("7 a 7 should match")
	}
	if q.Match(dp([]string{"7", "8"}, "a"), m) {
		t.Fatal("7 a 8 must not match")
	}
}

func TestRebinding(t *testing.T) {
	// a ↓x.(a[x=]) : x is bound at the *second* value.
	q := MustParseQuery("a !x.(a[x=])")
	m := datagraph.MarkedNulls
	if !q.Match(dp([]string{"1", "2", "2"}, "a", "a"), m) {
		t.Fatal("1 a 2 a 2 should match (x=2)")
	}
	if q.Match(dp([]string{"1", "2", "1"}, "a", "a"), m) {
		t.Fatal("1 a 2 a 1 must not match")
	}
}

func TestDisjunctionCondition(t *testing.T) {
	// ↓x.a ↓y.(a[x= | y=]) : last equals first or second value.
	q := MustParseQuery("!x.(a !y.(a[x= | y=]))")
	m := datagraph.MarkedNulls
	if !q.Match(dp([]string{"1", "2", "1"}, "a", "a"), m) {
		t.Fatal("last=first should match")
	}
	if !q.Match(dp([]string{"1", "2", "2"}, "a", "a"), m) {
		t.Fatal("last=second should match")
	}
	if q.Match(dp([]string{"1", "2", "3"}, "a", "a"), m) {
		t.Fatal("all distinct must not match")
	}
}

func TestUnboundVariableConditionIsFalse(t *testing.T) {
	// a[x=] with x never bound: the paper excludes these; we evaluate the
	// condition as false.
	q := MustParseQuery("a[x=]")
	if q.Match(dp([]string{"1", "1"}, "a"), datagraph.MarkedNulls) {
		t.Fatal("unbound variable condition must be false")
	}
}

func TestSQLNullSemantics(t *testing.T) {
	q := MustParseQuery("!x.(a[x=])")
	qn := MustParseQuery("!x.(a[x!=])")
	null := datagraph.Null()
	w := datagraph.NewDataPath([]datagraph.Value{null, null}, []string{"a"})
	mixed := datagraph.NewDataPath([]datagraph.Value{null, datagraph.V("1")}, []string{"a"})
	if q.Match(w, datagraph.SQLNulls) {
		t.Fatal("null = null must fail under SQL semantics")
	}
	if !q.Match(w, datagraph.MarkedNulls) {
		t.Fatal("null = null holds under marked semantics")
	}
	if qn.Match(mixed, datagraph.SQLNulls) {
		t.Fatal("null ≠ 1 must fail under SQL semantics")
	}
	if !qn.Match(mixed, datagraph.MarkedNulls) {
		t.Fatal("null ≠ 1 holds under marked semantics")
	}
}

func TestGraphEvaluation(t *testing.T) {
	// People graph: find pairs connected by knows-paths where every
	// intermediate person has a different value (age) from the start:
	// !x.(knows[x!=])+.
	g := datagraph.New()
	g.MustAddNode("ann", datagraph.V("30"))
	g.MustAddNode("bob", datagraph.V("25"))
	g.MustAddNode("carl", datagraph.V("30"))
	g.MustAddEdge("ann", "knows", "bob")
	g.MustAddEdge("bob", "knows", "carl")
	q := MustParseQuery("!x.(knows[x!=])+")
	got := q.Eval(g, datagraph.MarkedNulls)
	ai, _ := g.IndexOf("ann")
	bi, _ := g.IndexOf("bob")
	ci, _ := g.IndexOf("carl")
	// ann->bob (25≠30) yes; ann->carl via bob (30≠30 fails) no;
	// bob->carl (30≠25) yes.
	if !got.Has(ai, bi) || !got.Has(bi, ci) {
		t.Fatalf("missing expected pairs: %v", got.Sorted())
	}
	if got.Has(ai, ci) {
		t.Fatal("ann->carl should be blocked by equal ages")
	}
}

func TestRegistersAndVars(t *testing.T) {
	e := MustParse("!x.(a !y.(b[x= & y!=]))")
	if got := Vars(e); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Vars = %v", got)
	}
	q := New(e)
	if got := q.Registers(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Registers = %v", got)
	}
	if q.Automaton().NumRegs != 2 {
		t.Fatalf("NumRegs = %d", q.Automaton().NumRegs)
	}
}

func TestNegate(t *testing.T) {
	c := CAnd{L: CAtom{Var: "x"}, R: COr{L: CAtom{Var: "y", Neq: true}, R: CAtom{Var: "z"}}}
	n := Negate(c)
	want := COr{L: CAtom{Var: "x", Neq: true}, R: CAnd{L: CAtom{Var: "y"}, R: CAtom{Var: "z", Neq: true}}}
	if !reflect.DeepEqual(n, Cond(want)) {
		t.Fatalf("Negate = %v, want %v", n, want)
	}
	if !reflect.DeepEqual(Negate(n), Cond(c)) {
		t.Fatal("double negation should restore")
	}
}

func TestIsEqualityOnly(t *testing.T) {
	if !IsEqualityOnly(MustParse("!x.(a[x=])+")) {
		t.Fatal("equality-only REM misclassified")
	}
	if IsEqualityOnly(MustParse("!x.(a[x!=])")) {
		t.Fatal("inequality REM accepted as REM=")
	}
	if IsEqualityOnly(MustParse("!x.(a[x= | y!=])")) {
		t.Fatal("nested inequality missed")
	}
	if !IsEqualityOnly(MustParse("a b | c*")) {
		t.Fatal("condition-free REM is trivially REM=")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a", "!x.(a[x!=])+", ".* !x.((.+)[x=]) .*", "!x,y.(a[x= & y=])",
		"a|b", "(a b)+", "a[x= | y!= & z=]", "()",
	} {
		e := MustParse(s)
		e2 := MustParse(e.String())
		if e.String() != e2.String() {
			t.Errorf("round trip %q -> %q -> %q", s, e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "!x", "!x.", "!.a", "a[", "a[x]", "a[x==]", "a[x= &]", "a[]",
		"(a", "a)", "|a", "!x,.a", "a[x= | ]", "a[(x=]",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCondPrecedence(t *testing.T) {
	// & binds tighter than |.
	e := MustParse("a[x= | y= & z=]")
	test, ok := e.(Test)
	if !ok {
		t.Fatalf("not a test: %T", e)
	}
	or, ok := test.Cond.(COr)
	if !ok {
		t.Fatalf("top condition should be Or, got %T", test.Cond)
	}
	if _, ok := or.R.(CAnd); !ok {
		t.Fatalf("right of Or should be And, got %T", or.R)
	}
	// Parenthesised override.
	e2 := MustParse("a[(x= | y=) & z=]")
	if _, ok := e2.(Test).Cond.(CAnd); !ok {
		t.Fatal("parenthesised | should nest under &")
	}
}

func TestBindScopesOverFactorOnly(t *testing.T) {
	// "!x.a b" binds only a: the b step is outside the binder, so the
	// expression equals (↓x.a)·b.
	e := MustParse("!x.a b")
	c, ok := e.(Concat)
	if !ok || len(c.Factors) != 2 {
		t.Fatalf("expected concat of two factors: %#v", e)
	}
	if _, ok := c.Factors[0].(Bind); !ok {
		t.Fatalf("first factor should be bind: %#v", c.Factors[0])
	}
}

func TestEpsAndTestOnEps(t *testing.T) {
	// ↓x.(()[x=]) : trivially true on single-value paths (x = d = last).
	q := MustParseQuery("!x.(()[x=])")
	if !q.Match(dp([]string{"9"}), datagraph.MarkedNulls) {
		t.Fatal("x bound to d must equal d")
	}
}
