package workload

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ingest"
)

func TestRelationalDeterministic(t *testing.T) {
	spec := RelationalSpec{Customers: 50, Products: 20, Orders: 200, Seed: 7}
	a := Relational(spec)
	b := Relational(spec)
	for _, table := range []string{"customer", "product", "orders"} {
		if len(a.Rows[table]) != len(b.Rows[table]) {
			t.Fatalf("%s: %d vs %d rows", table, len(a.Rows[table]), len(b.Rows[table]))
		}
		for i := range a.Rows[table] {
			for j := range a.Rows[table][i] {
				if a.Rows[table][i][j] != b.Rows[table][i][j] {
					t.Fatalf("%s row %d differs: %v vs %v", table, i, a.Rows[table][i], b.Rows[table][i])
				}
			}
		}
	}
	if Relational(RelationalSpec{Customers: 50, Products: 20, Orders: 200, Seed: 8}).Rows["orders"][0][1] == a.Rows["orders"][0][1] &&
		Relational(RelationalSpec{Customers: 50, Products: 20, Orders: 200, Seed: 8}).Rows["customer"][0][3] == a.Rows["customer"][0][3] {
		t.Fatalf("different seeds generated identical data")
	}
}

// TestRelationalAllPathsAgree loads the same dataset three ways — in-memory
// rows, CSV files on disk, and a SQLite image — and demands one graph.
func TestRelationalAllPathsAgree(t *testing.T) {
	d := Relational(RelationalSpec{Customers: 40, Products: 10, Orders: 150, Seed: 3})
	ctx := context.Background()

	gMem, _, err := ingest.Load(ctx, d.Schema, ingest.Options{}, d.Sources()...)
	if err != nil {
		t.Fatalf("load from rows: %v", err)
	}

	dir := t.TempDir()
	if err := d.WriteCSV(dir); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	schemaText, err := os.ReadFile(filepath.Join(dir, "schema.txt"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ingest.ParseSchema(string(schemaText))
	if err != nil {
		t.Fatalf("reparse written schema: %v", err)
	}
	var csvSrcs []ingest.Source
	for i := range s.Tables {
		tab := &s.Tables[i]
		csvSrcs = append(csvSrcs, ingest.CSVFile(tab.Name, filepath.Join(dir, tab.File)))
	}
	gCSV, _, err := ingest.Load(ctx, s, ingest.Options{}, csvSrcs...)
	if err != nil {
		t.Fatalf("load from csv: %v", err)
	}
	if gCSV.String() != gMem.String() {
		t.Fatalf("CSV load diverged from in-memory load")
	}

	dbPath := filepath.Join(dir, "data.sqlite")
	if err := d.WriteSQLite(dbPath); err != nil {
		t.Fatalf("WriteSQLite: %v", err)
	}
	db, err := ingest.OpenSQLite(dbPath)
	if err != nil {
		t.Fatalf("OpenSQLite: %v", err)
	}
	gSQL, _, err := ingest.Load(ctx, d.Schema, ingest.Options{}, db.Sources()...)
	if err != nil {
		t.Fatalf("load from sqlite: %v", err)
	}
	if gSQL.String() != gMem.String() {
		t.Fatalf("SQLite load diverged from in-memory load")
	}
}
