// Package workload provides deterministic synthetic workload generators for
// the experiments: random data graphs with controlled value skew, chains,
// grids, a property-graph-style social network (showing the paper's
// push-data-to-nodes abstraction of property graphs), random relational
// mappings, random REE queries, and random PCP instances.
//
// All generators are pure functions of their seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/pcp"
	"repro/internal/ree"
)

// GraphSpec parameterises RandomGraph.
type GraphSpec struct {
	Nodes  int
	Edges  int
	Labels []string
	// LabelWeights optionally weights the label distribution, parallel to
	// Labels (nil means uniform). Rare labels model the small hot relations
	// of serving workloads.
	LabelWeights []int
	// Values is the size of the data-value pool; values are drawn with a
	// quadratic skew (low indices more likely), mimicking attribute skew in
	// property graphs.
	Values int
	Seed   int64
}

// RandomGraph generates a random data graph per the spec.
func RandomGraph(spec GraphSpec) *datagraph.Graph {
	rng := rand.New(rand.NewSource(spec.Seed))
	g := datagraph.New()
	if spec.Values <= 0 {
		spec.Values = spec.Nodes
	}
	if len(spec.Labels) == 0 {
		spec.Labels = []string{"a", "b"}
	}
	pickLabel := func() string {
		if len(spec.LabelWeights) != len(spec.Labels) {
			return spec.Labels[rng.Intn(len(spec.Labels))]
		}
		total := 0
		for _, w := range spec.LabelWeights {
			total += w
		}
		k := rng.Intn(total)
		for i, w := range spec.LabelWeights {
			if k < w {
				return spec.Labels[i]
			}
			k -= w
		}
		return spec.Labels[len(spec.Labels)-1]
	}
	for i := 0; i < spec.Nodes; i++ {
		v := skewed(rng, spec.Values)
		g.MustAddNode(nodeID(i), datagraph.V(fmt.Sprintf("d%d", v)))
	}
	for e := 0; e < spec.Edges; e++ {
		from := rng.Intn(spec.Nodes)
		to := rng.Intn(spec.Nodes)
		g.MustAddEdge(nodeID(from), pickLabel(), nodeID(to))
	}
	return g
}

func nodeID(i int) datagraph.NodeID { return datagraph.NodeID(fmt.Sprintf("n%d", i)) }

// skewed draws from [0, n) with quadratic skew toward 0.
func skewed(rng *rand.Rand, n int) int {
	x := rng.Float64()
	return int(x * x * float64(n))
}

// Chain generates a labelled chain of n edges with values cycling through a
// pool of the given size (valuePool ≤ 0 means all-distinct).
func Chain(n int, label string, valuePool int) *datagraph.Graph {
	g := datagraph.New()
	for i := 0; i <= n; i++ {
		val := fmt.Sprintf("c%d", i)
		if valuePool > 0 {
			val = fmt.Sprintf("c%d", i%valuePool)
		}
		g.MustAddNode(nodeID(i), datagraph.V(val))
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(nodeID(i), label, nodeID(i+1))
	}
	return g
}

// SocialNetwork generates a property-graph-style social network: persons
// with an age value, knows-edges among persons, posts with a topic value,
// likes-edges from persons to posts. This is the data-graph rendering of a
// property graph (one value per node; record fields pushed to nodes), per
// the paper's Section 1 abstraction argument.
func SocialNetwork(persons, posts, knowsPerPerson, likesPerPerson int, seed int64) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New()
	for i := 0; i < persons; i++ {
		age := 18 + rng.Intn(50)
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("person%d", i)), datagraph.V(fmt.Sprintf("%d", age)))
	}
	for i := 0; i < posts; i++ {
		topic := []string{"go", "db", "graphs", "theory", "music"}[rng.Intn(5)]
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("post%d", i)), datagraph.V(topic))
	}
	for i := 0; i < persons; i++ {
		for k := 0; k < knowsPerPerson; k++ {
			j := rng.Intn(persons)
			if j != i {
				g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("person%d", i)), "knows",
					datagraph.NodeID(fmt.Sprintf("person%d", j)))
			}
		}
		for k := 0; k < likesPerPerson && posts > 0; k++ {
			j := rng.Intn(posts)
			g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("person%d", i)), "likes",
				datagraph.NodeID(fmt.Sprintf("post%d", j)))
		}
	}
	return g
}

// MappingSpec parameterises RandomRelationalMapping.
type MappingSpec struct {
	// SourceLabels to draw rule sources from (atomic, so the mapping is
	// LAV).
	SourceLabels []string
	// TargetLabels to draw rule target words from.
	TargetLabels []string
	// Rules is the number of rules.
	Rules int
	// MaxWordLen bounds target word length (≥ 1).
	MaxWordLen int
	Seed       int64
}

// RandomRelationalMapping generates a LAV relational mapping.
func RandomRelationalMapping(spec MappingSpec) *core.Mapping {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.MaxWordLen < 1 {
		spec.MaxWordLen = 3
	}
	var rules []core.Rule
	for i := 0; i < spec.Rules; i++ {
		src := spec.SourceLabels[rng.Intn(len(spec.SourceLabels))]
		wordLen := 1 + rng.Intn(spec.MaxWordLen)
		word := ""
		for j := 0; j < wordLen; j++ {
			if j > 0 {
				word += " "
			}
			word += spec.TargetLabels[rng.Intn(len(spec.TargetLabels))]
		}
		rules = append(rules, core.R(src, word))
	}
	return core.NewMapping(rules...)
}

// QuerySpec parameterises RandomREEQuery.
type QuerySpec struct {
	Labels []string
	// Depth bounds the expression tree depth.
	Depth int
	// AllowNeq permits ≠ tests (off for REE= workloads).
	AllowNeq bool
	Seed     int64
}

// RandomREEQuery generates a random REE expression.
func RandomREEQuery(spec QuerySpec) ree.Expr {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Depth <= 0 {
		spec.Depth = 3
	}
	var gen func(depth int) ree.Expr
	gen = func(depth int) ree.Expr {
		if depth == 0 {
			return ree.Lit{Label: spec.Labels[rng.Intn(len(spec.Labels))]}
		}
		switch rng.Intn(7) {
		case 0:
			return ree.Lit{Label: spec.Labels[rng.Intn(len(spec.Labels))]}
		case 1:
			return ree.Concat{Factors: []ree.Expr{gen(depth - 1), gen(depth - 1)}}
		case 2:
			return ree.Union{Alts: []ree.Expr{gen(depth - 1), gen(depth - 1)}}
		case 3:
			return ree.Plus{Inner: gen(depth - 1)}
		case 4:
			return ree.Star{Inner: gen(depth - 1)}
		case 5:
			return ree.Eq{Inner: gen(depth - 1)}
		default:
			if spec.AllowNeq {
				return ree.Neq{Inner: gen(depth - 1)}
			}
			return ree.Eq{Inner: gen(depth - 1)}
		}
	}
	return gen(spec.Depth)
}

// StreamShape selects the query family of a QueryStream.
type StreamShape int

const (
	// ShapeMixed draws random REE expressions (RandomREEQuery): arbitrary
	// nesting, stars, unions — the stress shape.
	ShapeMixed StreamShape = iota
	// ShapePaths draws paths with tests (RandomPathWithTests): the
	// selective point-lookup shape of serving workloads, and the query
	// class at the center of the paper's tractability results.
	ShapePaths
)

// QueryStreamSpec parameterises QueryStream.
type QueryStreamSpec struct {
	// Labels the queries draw from (typically the mapping's target labels).
	Labels []string
	// N is the number of queries in the stream.
	N int
	// Shape selects the query family (default ShapeMixed).
	Shape StreamShape
	// Depth bounds each ShapeMixed query's expression tree depth (default
	// 3); for ShapePaths it is the path length (default 4).
	Depth int
	// AllowNeq permits ≠ tests.
	AllowNeq bool
	Seed     int64
}

// QueryStream generates a deterministic stream of N REE queries — the
// serving-workload shape: many distinct queries against one (M, Gs) pair,
// where a session amortizes solution construction across the whole stream.
func QueryStream(spec QueryStreamSpec) []core.Query {
	out := make([]core.Query, spec.N)
	for i := range out {
		seed := spec.Seed + int64(i)*7919 // distinct deterministic seeds
		switch spec.Shape {
		case ShapePaths:
			length := spec.Depth
			if length <= 0 {
				length = 4
			}
			maxNeq := 0
			if spec.AllowNeq {
				maxNeq = 1
			}
			out[i] = ree.New(RandomPathWithTests(spec.Labels, length, maxNeq, seed))
		default:
			depth := spec.Depth
			if depth <= 0 {
				depth = 3
			}
			out[i] = ree.New(RandomREEQuery(QuerySpec{
				Labels:   spec.Labels,
				Depth:    depth,
				AllowNeq: spec.AllowNeq,
				Seed:     seed,
			}))
		}
	}
	return out
}

// RandomPathWithTests generates a random path-with-tests expression with at
// most maxNeq inequality tests, for the Proposition 4 experiments.
func RandomPathWithTests(labels []string, length, maxNeq int, seed int64) ree.Expr {
	rng := rand.New(rand.NewSource(seed))
	if length < 1 {
		length = 1
	}
	factors := make([]ree.Expr, length)
	for i := range factors {
		factors[i] = ree.Lit{Label: labels[rng.Intn(len(labels))]}
	}
	var e ree.Expr = ree.Concat{Factors: factors}
	// Wrap random contiguous spans with tests, from inside out; wrapping
	// the whole concat keeps it a valid path-with-tests.
	neqLeft := maxNeq
	wraps := rng.Intn(3)
	for w := 0; w < wraps; w++ {
		if neqLeft > 0 && rng.Intn(2) == 0 {
			e = ree.Neq{Inner: e}
			neqLeft--
		} else {
			e = ree.Eq{Inner: e}
		}
	}
	return e
}

// RandomPCP generates a random PCP instance with the given number of tiles
// and maximum word length.
func RandomPCP(tiles, maxWordLen int, seed int64) pcp.Instance {
	rng := rand.New(rand.NewSource(seed))
	word := func() string {
		n := 1 + rng.Intn(maxWordLen)
		out := make([]byte, n)
		for i := range out {
			out[i] = "ab"[rng.Intn(2)]
		}
		return string(out)
	}
	in := pcp.Instance{}
	for i := 0; i < tiles; i++ {
		in.Tiles = append(in.Tiles, pcp.Tile{U: word(), V: word()})
	}
	return in
}
