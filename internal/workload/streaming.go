package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/datagraph"
)

// StreamSpec parameterises Streaming: a base random graph followed by
// rounds of mutation bursts, mimicking continuous data exchange from a
// relational source — edge appends dominate, node appends and value
// overwrites ride along. Between rounds the caller runs its query batch
// (the experiments and benchmarks use the engine's certain-answer
// evaluation), which is exactly the interleaved update/query regime the
// incremental snapshot maintenance targets.
type StreamSpec struct {
	// Base is the graph at round zero.
	Base GraphSpec
	// Rounds is the number of mutation bursts the scenario runs (used by
	// the driver; the Stream itself keeps producing bursts on demand).
	Rounds int
	// EdgesPerRound is the number of edge appends per burst.
	EdgesPerRound int
	// NodesPerRound is the number of fresh nodes appended per burst.
	NodesPerRound int
	// SetValuesPerRound is the number of value overwrites per burst.
	SetValuesPerRound int
	// Seed drives the burst stream (the base graph uses Base.Seed).
	Seed int64
}

// withDefaults fills unset knobs with a read-heavy default mix.
func (s StreamSpec) withDefaults() StreamSpec {
	if s.Base.Nodes == 0 {
		s.Base = GraphSpec{Nodes: 500, Edges: 1500, Labels: []string{"a", "b"}, Values: 50, Seed: s.Seed}
	}
	if len(s.Base.Labels) == 0 {
		s.Base.Labels = []string{"a", "b"}
	}
	if s.Base.Values <= 0 {
		s.Base.Values = s.Base.Nodes
	}
	if s.Rounds <= 0 {
		s.Rounds = 10
	}
	if s.EdgesPerRound <= 0 {
		s.EdgesPerRound = 50
	}
	return s
}

// Stream is a deterministic update-heavy workload generator: the graph
// plus a pseudo-random burst source. All mutation goes through the public
// append-only Graph API, so a frozen snapshot always remains a prefix of
// the stream and every re-freeze can be incremental.
type Stream struct {
	// G is the evolving data graph. Callers query it between bursts.
	G *datagraph.Graph

	spec  StreamSpec
	rng   *rand.Rand
	nodes int // nodes created so far (dense id source)
}

// Streaming builds the round-zero graph and the burst source for the spec.
// Everything is a pure function of the spec (including its seeds).
func Streaming(spec StreamSpec) *Stream {
	spec = spec.withDefaults()
	return &Stream{
		G:     RandomGraph(spec.Base),
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		nodes: spec.Base.Nodes,
	}
}

// Spec returns the (default-filled) spec the stream runs.
func (s *Stream) Spec() StreamSpec { return s.spec }

// Tick applies one mutation burst: NodesPerRound fresh nodes, then
// EdgesPerRound edge appends over the grown node set, then
// SetValuesPerRound value overwrites. Endpoints, labels and values are
// drawn with the same distributions as RandomGraph.
func (s *Stream) Tick() {
	spec := s.spec
	for i := 0; i < spec.NodesPerRound; i++ {
		v := skewed(s.rng, spec.Base.Values)
		s.G.MustAddNode(nodeID(s.nodes), datagraph.V(fmt.Sprintf("d%d", v)))
		s.nodes++
	}
	for i := 0; i < spec.EdgesPerRound; i++ {
		from := s.rng.Intn(s.nodes)
		to := s.rng.Intn(s.nodes)
		label := spec.Base.Labels[s.rng.Intn(len(spec.Base.Labels))]
		s.G.MustAddEdge(nodeID(from), label, nodeID(to))
	}
	for i := 0; i < spec.SetValuesPerRound; i++ {
		u := s.rng.Intn(s.nodes)
		s.G.SetValue(u, datagraph.V(fmt.Sprintf("d%d", skewed(s.rng, spec.Base.Values))))
	}
}

// Run drives the full scenario: Rounds bursts, calling query after every
// burst with the round number and the current graph. It is the shared
// driver for the streaming experiment and benchmarks.
func (s *Stream) Run(query func(round int, g *datagraph.Graph) error) error {
	for round := 0; round < s.spec.Rounds; round++ {
		s.Tick()
		if query != nil {
			if err := query(round, s.G); err != nil {
				return err
			}
		}
	}
	return nil
}
