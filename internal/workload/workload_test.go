package workload

import (
	"testing"

	"repro/internal/datagraph"
	"repro/internal/ree"
)

func TestRandomGraphDeterministic(t *testing.T) {
	spec := GraphSpec{Nodes: 50, Edges: 120, Labels: []string{"a", "b", "c"}, Values: 10, Seed: 42}
	g1 := RandomGraph(spec)
	g2 := RandomGraph(spec)
	if g1.String() != g2.String() {
		t.Fatal("same seed must give the same graph")
	}
	spec.Seed = 43
	g3 := RandomGraph(spec)
	if g1.String() == g3.String() {
		t.Fatal("different seeds should give different graphs")
	}
	if g1.NumNodes() != 50 {
		t.Fatalf("nodes = %d", g1.NumNodes())
	}
	// Edge count ≤ requested (duplicates collapse under set semantics).
	if g1.NumEdges() > 120 || g1.NumEdges() == 0 {
		t.Fatalf("edges = %d", g1.NumEdges())
	}
	// Value pool respected.
	if len(g1.Values()) > 10 {
		t.Fatalf("values = %d", len(g1.Values()))
	}
}

func TestRandomGraphDefaults(t *testing.T) {
	g := RandomGraph(GraphSpec{Nodes: 5, Edges: 5, Seed: 1})
	if g.NumNodes() != 5 {
		t.Fatal("defaults should work")
	}
	for _, l := range g.Labels() {
		if l != "a" && l != "b" {
			t.Fatalf("unexpected default label %q", l)
		}
	}
}

func TestChain(t *testing.T) {
	g := Chain(10, "e", 0)
	if g.NumNodes() != 11 || g.NumEdges() != 10 {
		t.Fatalf("chain size: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(g.Values()) != 11 {
		t.Fatal("all-distinct values expected")
	}
	g2 := Chain(10, "e", 3)
	if len(g2.Values()) != 3 {
		t.Fatalf("pooled values = %d, want 3", len(g2.Values()))
	}
}

func TestSocialNetwork(t *testing.T) {
	g := SocialNetwork(20, 10, 3, 2, 7)
	if g.NumNodes() != 30 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	hasKnows, hasLikes := false, false
	for _, l := range g.Labels() {
		if l == "knows" {
			hasKnows = true
		}
		if l == "likes" {
			hasLikes = true
		}
	}
	if !hasKnows || !hasLikes {
		t.Fatal("social network should have knows and likes edges")
	}
	// Determinism.
	if g.String() != SocialNetwork(20, 10, 3, 2, 7).String() {
		t.Fatal("social network must be deterministic")
	}
}

func TestRandomRelationalMapping(t *testing.T) {
	m := RandomRelationalMapping(MappingSpec{
		SourceLabels: []string{"a", "b"},
		TargetLabels: []string{"x", "y"},
		Rules:        5,
		MaxWordLen:   3,
		Seed:         99,
	})
	if len(m.Rules) != 5 {
		t.Fatalf("rules = %d", len(m.Rules))
	}
	if !m.IsLAV() || !m.IsRelational() {
		t.Fatal("generated mapping must be LAV relational")
	}
}

func TestRandomREEQuery(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		e := RandomREEQuery(QuerySpec{Labels: []string{"x", "y"}, Depth: 3, AllowNeq: false, Seed: seed})
		if !ree.IsEqualityOnly(e) {
			t.Fatalf("seed %d: AllowNeq=false produced inequality: %s", seed, e)
		}
		// Must parse back (valid syntax).
		if _, err := ree.Parse(e.String()); err != nil {
			t.Fatalf("seed %d: unparseable %q: %v", seed, e, err)
		}
	}
	foundNeq := false
	for seed := int64(0); seed < 30; seed++ {
		e := RandomREEQuery(QuerySpec{Labels: []string{"x"}, Depth: 4, AllowNeq: true, Seed: seed})
		if ree.CountNeq(e) > 0 {
			foundNeq = true
		}
	}
	if !foundNeq {
		t.Fatal("AllowNeq=true should eventually produce inequalities")
	}
}

func TestRandomPathWithTests(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		e := RandomPathWithTests([]string{"p", "q"}, 4, 1, seed)
		if !ree.IsPathWithTests(e) {
			t.Fatalf("seed %d: not a path with tests: %s", seed, e)
		}
		if ree.CountNeq(e) > 1 {
			t.Fatalf("seed %d: too many inequalities: %s", seed, e)
		}
	}
}

func TestRandomPCP(t *testing.T) {
	in := RandomPCP(3, 2, 5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Tiles) != 3 {
		t.Fatalf("tiles = %d", len(in.Tiles))
	}
	if in.String() != RandomPCP(3, 2, 5).String() {
		t.Fatal("PCP generation must be deterministic")
	}
}

func TestSkewedDistribution(t *testing.T) {
	// Quadratic skew: low values should be much more frequent.
	g := RandomGraph(GraphSpec{Nodes: 2000, Edges: 0, Values: 100, Seed: 11})
	counts := map[datagraph.Value]int{}
	for _, n := range g.Nodes() {
		counts[n.Value]++
	}
	if counts[datagraph.V("d0")] < counts[datagraph.V("d90")] {
		t.Fatal("value skew should favour low indices")
	}
}

func TestStreamingDeterministic(t *testing.T) {
	spec := StreamSpec{
		Base:              GraphSpec{Nodes: 40, Edges: 100, Labels: []string{"a", "b"}, Values: 8, Seed: 5},
		Rounds:            4,
		EdgesPerRound:     15,
		NodesPerRound:     2,
		SetValuesPerRound: 3,
		Seed:              21,
	}
	s1, s2 := Streaming(spec), Streaming(spec)
	for round := 0; round < spec.Rounds; round++ {
		s1.Tick()
		s2.Tick()
	}
	if s1.G.String() != s2.G.String() {
		t.Fatal("same spec must generate the same stream")
	}
	if s1.G.NumNodes() != 40+4*2 {
		t.Fatalf("nodes = %d, want %d", s1.G.NumNodes(), 48)
	}
	if s1.G.NumEdges() <= 100 {
		t.Fatal("bursts must append edges")
	}
}

// TestStreamingFreezePerRound checks the stream's side of the
// incremental-freeze contract: every burst goes through the append-only
// graph API, so each round's freeze observes the burst and the final
// incrementally maintained snapshot agrees with a from-scratch build.
// (That each such freeze actually takes the delta path — shares segments
// rather than rebuilding — is pinned by the datagraph delta tests, which
// can see the snapshot internals.)
func TestStreamingFreezePerRound(t *testing.T) {
	s := Streaming(StreamSpec{
		Base:          GraphSpec{Nodes: 300, Edges: 900, Labels: []string{"a", "b", "c"}, Values: 30, Seed: 2},
		Rounds:        5,
		EdgesPerRound: 10,
		Seed:          31,
	})
	prev := s.G.Freeze()
	err := s.Run(func(round int, g *datagraph.Graph) error {
		snap := g.Freeze()
		if snap == prev {
			t.Fatalf("round %d: freeze did not observe the burst", round)
		}
		prev = snap
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	full := s.G.FreezeFull()
	if got, want := prev.NumLabelEdges(0), full.NumLabelEdges(0); got != want {
		t.Fatalf("incremental snapshot diverged: %d edges on label 0, want %d", got, want)
	}
}
