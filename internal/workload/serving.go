package workload

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datagraph"
)

// ServingSpec parameterises Serving, the canonical network-serving
// scenario: one (mapping, source graph) pair registered on a server and a
// stream of distinct selective queries replayed against it by many
// concurrent clients. Zero fields take the E15/E16 defaults.
type ServingSpec struct {
	// Nodes and Edges size the source graph (defaults 3000/9000 — sized so
	// solution materialization dominates a single selective query by >20x,
	// the regime the serving layer amortizes).
	Nodes, Edges int
	// Queries is the stream length (default 50).
	Queries int
	// Seed makes the whole scenario deterministic (default 16).
	Seed int64
}

// ServingScenario bundles everything a serving experiment needs, in both
// in-memory and wire (text) form, so the load generator, the E16
// experiment, the CI smoke script and the cross-validation tests all replay
// exactly the same workload: the graph and mapping as objects and as their
// parseable text formats, and the query stream as objects and as parseable
// REE texts.
type ServingScenario struct {
	Graph       *datagraph.Graph
	GraphText   string
	Mapping     *core.Mapping
	MappingText string
	Queries     []core.Query
	QueryTexts  []string
}

// Serving generates the canonical serving workload: bulk relations a and b
// dominate the exchange (and hence solution materialization), and the
// stream asks selective paths-with-tests against the small hot relation c —
// the regime where per-request throwaway sessions pay the full
// materialization cost on every call and a shared server session pays it
// once.
func Serving(spec ServingSpec) ServingScenario {
	if spec.Nodes <= 0 {
		spec.Nodes = 3000
	}
	if spec.Edges <= 0 {
		spec.Edges = 3 * spec.Nodes
	}
	if spec.Queries <= 0 {
		spec.Queries = 50
	}
	if spec.Seed == 0 {
		spec.Seed = 16
	}
	g := RandomGraph(GraphSpec{
		Nodes: spec.Nodes, Edges: spec.Edges,
		Labels:       []string{"a", "b", "c"},
		LabelWeights: []int{30, 30, 1},
		Values:       spec.Nodes / 5,
		Seed:         spec.Seed,
	})
	mappingText := "rule a -> p q\nrule b -> r q\nrule c -> s t\n"
	m, err := core.ParseMappingString(mappingText)
	if err != nil {
		// The text above is a constant; failing to parse it is a bug, not
		// an input error.
		panic(fmt.Sprintf("workload: serving mapping text does not parse: %v", err))
	}
	queries := QueryStream(QueryStreamSpec{
		Labels: []string{"s", "t"}, N: spec.Queries,
		Shape: ShapePaths, Depth: 2, AllowNeq: true, Seed: spec.Seed,
	})
	texts := make([]string, len(queries))
	for i, q := range queries {
		texts[i] = fmt.Sprint(q)
	}
	return ServingScenario{
		Graph:       g,
		GraphText:   g.String(),
		Mapping:     m,
		MappingText: mappingText,
		Queries:     queries,
		QueryTexts:  texts,
	}
}

// TargetLabels returns the mapping's target alphabet, useful for building
// extra ad-hoc queries against the scenario.
func (s ServingScenario) TargetLabels() []string { return []string{"p", "q", "r", "s", "t"} }

// String summarises the scenario.
func (s ServingScenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving scenario: V=%d E=%d, %d rules, %d queries",
		s.Graph.NumNodes(), s.Graph.NumEdges(), len(s.Mapping.Rules), len(s.Queries))
	return b.String()
}
