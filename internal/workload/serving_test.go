package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
)

// TestServingRoundTrips pins the wire forms of the serving scenario: the
// graph text re-parses to an identical graph, the mapping text re-parses to
// the same rules, and every query text re-parses to a query with identical
// answers — the property the HTTP server and the load generator rely on.
func TestServingRoundTrips(t *testing.T) {
	sc := Serving(ServingSpec{Nodes: 120, Edges: 360, Queries: 12, Seed: 7})

	g2, err := datagraph.ParseString(sc.GraphText)
	if err != nil {
		t.Fatalf("graph text does not parse: %v", err)
	}
	if g2.NumNodes() != sc.Graph.NumNodes() || g2.NumEdges() != sc.Graph.NumEdges() {
		t.Fatalf("graph round trip changed size: %d/%d -> %d/%d",
			sc.Graph.NumNodes(), sc.Graph.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}

	m2, err := core.ParseMappingString(sc.MappingText)
	if err != nil {
		t.Fatalf("mapping text does not parse: %v", err)
	}
	if len(m2.Rules) != len(sc.Mapping.Rules) {
		t.Fatalf("mapping round trip changed rule count: %d -> %d",
			len(sc.Mapping.Rules), len(m2.Rules))
	}

	if len(sc.QueryTexts) != len(sc.Queries) {
		t.Fatalf("want one text per query, got %d texts for %d queries",
			len(sc.QueryTexts), len(sc.Queries))
	}
	// Evaluate original and re-parsed queries over the universal solution
	// of the scenario itself.
	u, err := core.UniversalSolution(sc.Mapping, sc.Graph)
	if err != nil {
		t.Fatalf("universal solution: %v", err)
	}
	for i, text := range sc.QueryTexts {
		q2, err := ree.ParseQuery(text)
		if err != nil {
			t.Fatalf("query %d text %q does not parse: %v", i, text, err)
		}
		want := sc.Queries[i].Eval(u, datagraph.SQLNulls)
		got := q2.Eval(u, datagraph.SQLNulls)
		if !got.Equal(want) {
			t.Fatalf("query %d (%q): re-parsed answers differ", i, text)
		}
	}
}
