package workload

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/ingest"
)

// RelationalSpec parameterises Relational: a synthetic three-table
// customer/product/orders source with foreign keys from orders into both
// dimension tables — the realistic bulk-ingestion shape (two small
// dimension tables, one large fact table) at 10⁵–10⁶ total rows in full
// experiment runs.
type RelationalSpec struct {
	Customers int
	Products  int
	Orders    int
	Seed      int64
}

// Rows returns the total row count of the spec.
func (s RelationalSpec) Rows() int { return s.Customers + s.Products + s.Orders }

// RelationalDataset is a generated relational source: the ingest schema
// plus per-table rows in canonical cell form ("" = NULL), ready to feed
// the pipeline directly, to render as CSV files, or to pack into a SQLite
// image.
type RelationalDataset struct {
	Schema *ingest.Schema
	Rows   map[string][][]string
}

var relationalSchemaText = `table customer file=customer.csv
col customer id int pk
col customer name text
col customer city text null
col customer since date
table product file=product.csv
col product id int pk
col product sku text
col product price float
table orders file=orders.csv
col orders id int pk
col orders customer_id int
col orders product_id int null
col orders qty int
fk orders customer_id customer.id
fk orders product_id product.id
`

var cities = []string{"paris", "lyon", "nantes", "lille", "brest", "nice", "metz", "dijon"}

// Relational generates the dataset; a pure function of the spec.
func Relational(spec RelationalSpec) *RelationalDataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	s, err := ingest.ParseSchema(relationalSchemaText)
	if err != nil {
		panic("workload: relational schema invalid: " + err.Error()) // programming error
	}
	d := &RelationalDataset{Schema: s, Rows: make(map[string][][]string, 3)}
	for i := 1; i <= spec.Customers; i++ {
		city := ""
		if rng.Intn(10) != 0 { // ~10% NULL city
			city = cities[rng.Intn(len(cities))]
		}
		since := fmt.Sprintf("%04d-%02d-%02d", 2000+rng.Intn(25), 1+rng.Intn(12), 1+rng.Intn(28))
		d.Rows["customer"] = append(d.Rows["customer"],
			[]string{strconv.Itoa(i), fmt.Sprintf("cust-%d", i), city, since})
	}
	for i := 1; i <= spec.Products; i++ {
		price := strconv.FormatFloat(float64(rng.Intn(100000))/100, 'g', -1, 64)
		d.Rows["product"] = append(d.Rows["product"],
			[]string{strconv.Itoa(i), fmt.Sprintf("sku-%d", i), price})
	}
	for i := 1; i <= spec.Orders; i++ {
		cust := strconv.Itoa(1 + skewed(rng, spec.Customers))
		prod := ""
		if rng.Intn(20) != 0 { // ~5% NULL product (service orders)
			prod = strconv.Itoa(1 + rng.Intn(spec.Products))
		}
		d.Rows["orders"] = append(d.Rows["orders"],
			[]string{strconv.Itoa(i), cust, prod, strconv.Itoa(1 + rng.Intn(9))})
	}
	return d
}

// Sources returns in-memory pipeline sources in schema order.
func (d *RelationalDataset) Sources() []ingest.Source {
	srcs := make([]ingest.Source, 0, len(d.Schema.Tables))
	for i := range d.Schema.Tables {
		name := d.Schema.Tables[i].Name
		srcs = append(srcs, ingest.Rows(name, d.Rows[name]))
	}
	return srcs
}

// WriteCSV renders the dataset into dir: schema.txt plus one CSV file per
// table, named by the schema's file= attributes.
func (d *RelationalDataset) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "schema.txt"), []byte(d.Schema.String()), 0o644); err != nil {
		return err
	}
	for i := range d.Schema.Tables {
		t := &d.Schema.Tables[i]
		file := t.File
		if file == "" {
			file = t.Name + ".csv"
		}
		var b strings.Builder
		cols := make([]string, len(t.Columns))
		for ci, c := range t.Columns {
			cols[ci] = c.Name
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
		for _, row := range d.Rows[t.Name] {
			b.WriteString(strings.Join(row, ","))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(dir, file), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// WriteSQLite packs the dataset into a SQLite database file.
func (d *RelationalDataset) WriteSQLite(path string) error {
	return ingest.WriteSQLiteFile(path, d.Schema, d.Rows)
}
