package core_test

// Property-based cross-validation of the certain-answer algorithms on
// randomized workloads. These are the library-level counterparts of
// experiments E7/E8: every algorithm invariant the paper proves is checked
// on dozens of random (graph, mapping, query) triples.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/workload"
)

func randomInstance(seed int64) (*datagraph.Graph, *core.Mapping) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 5, Edges: 7, Labels: []string{"a", "b"}, Values: 3, Seed: seed,
	})
	m := workload.RandomRelationalMapping(workload.MappingSpec{
		SourceLabels: []string{"a", "b"},
		TargetLabels: []string{"p", "q"},
		Rules:        2, MaxWordLen: 2, Seed: seed,
	})
	return gs, m
}

// Property (Section 7): 2ⁿ_M(Q, Gs) ⊆ 2_M(Q, Gs) for every query.
func TestPropertyUnderapproximation(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		gs, m := randomInstance(seed)
		q := ree.New(workload.RandomREEQuery(workload.QuerySpec{
			Labels: []string{"p", "q"}, Depth: 3, AllowNeq: true, Seed: seed,
		}))
		exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			continue // too many nulls for the oracle budget
		}
		nullAns, err := core.CertainNull(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		if !nullAns.SubsetOf(exact) {
			t.Fatalf("seed %d: 2ⁿ ⊄ 2 for %s: %v vs %v", seed, q, nullAns, exact)
		}
	}
}

// Property (Theorem 5): least-informative solutions are exact for REE=.
func TestPropertyEqualityOnlyExact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		gs, m := randomInstance(seed)
		expr := workload.RandomREEQuery(workload.QuerySpec{
			Labels: []string{"p", "q"}, Depth: 3, AllowNeq: false, Seed: seed,
		})
		if !ree.IsEqualityOnly(expr) {
			t.Fatalf("generator violated AllowNeq=false: %s", expr)
		}
		q := ree.New(expr)
		exact, err := core.CertainExact(m, gs, q, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			continue
		}
		li, err := core.CertainLeastInformative(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		if !li.Equal(exact) {
			t.Fatalf("seed %d: Theorem 5 violated for %s: %v vs %v", seed, q, li, exact)
		}
	}
}

// Property: both solution styles actually are solutions, and the universal
// solution maps homomorphically into the least informative one fixing dom
// (a Lemma 1 instance).
func TestPropertySolutionsAndLemma1(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		gs, m := randomInstance(seed)
		u, err := core.UniversalSolution(m, gs)
		if err != nil {
			t.Fatal(err)
		}
		li, err := core.LeastInformativeSolution(m, gs)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Satisfies(gs, u) {
			t.Fatalf("seed %d: universal solution does not satisfy mapping", seed)
		}
		if !m.Satisfies(gs, li) {
			t.Fatalf("seed %d: least informative solution does not satisfy mapping", seed)
		}
		fixed := map[datagraph.NodeID]datagraph.NodeID{}
		for id := range core.DomIDs(m, gs) {
			fixed[id] = id
		}
		hom, ok := datagraph.FindHomomorphismNulls(u, li, fixed)
		if !ok {
			t.Fatalf("seed %d: Lemma 1 homomorphism missing", seed)
		}
		if !datagraph.IsHomomorphismNulls(u, li, hom) {
			t.Fatalf("seed %d: invalid homomorphism returned", seed)
		}
	}
}

// Property (Proposition 4 vs oracle): the fixpoint algorithm agrees with
// the exponential oracle on random one-inequality paths-with-tests.
func TestPropertyOneNeqAgreesWithOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("slow randomized cross-check")
	}
	checked := 0
	for seed := int64(0); seed < 60 && checked < 25; seed++ {
		gs, m := randomInstance(seed)
		expr := workload.RandomPathWithTests([]string{"p", "q"}, 2+int(seed%3), 1, seed)
		q := ree.New(expr)
		dom := core.Dom(m, gs)
		if len(dom) == 0 {
			continue
		}
		from := dom[0].ID
		to := dom[len(dom)-1].ID
		exact, err := core.CertainExactPair(m, gs, q, from, to, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			continue
		}
		got, err := core.CertainOneInequality(m, gs, q, from, to, core.OneNeqOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != exact {
			t.Fatalf("seed %d: fixpoint %v vs oracle %v for %s (%s -> %s)",
				seed, got, exact, q, from, to)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no instance fit the oracle budget")
	}
}

// Property (Proposition 5 vs oracle): on *relational* mappings, the
// arbitrary-GSM word-choice procedure agrees with the specialization
// oracle for random paths-with-tests.
func TestPropertyProp5AgreesWithOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("slow randomized cross-check")
	}
	checked := 0
	for seed := int64(0); seed < 60 && checked < 20; seed++ {
		gs, m := randomInstance(seed)
		expr := workload.RandomPathWithTests([]string{"p", "q"}, 1+int(seed%3), 2, seed)
		q := ree.New(expr)
		dom := core.Dom(m, gs)
		if len(dom) == 0 {
			continue
		}
		from := dom[0].ID
		to := dom[len(dom)-1].ID
		want, err := core.CertainExactPair(m, gs, q, from, to, core.ExactOptions{MaxNulls: 8})
		if err != nil {
			continue
		}
		got, err := core.CertainDataPathArbitrary(m, gs, q, from, to,
			core.Prop5Options{MaxChoices: 100000})
		if err != nil {
			continue // choice budget; skip
		}
		if got != want {
			t.Fatalf("seed %d: Prop 5 %v vs oracle %v for %s (%s -> %s)",
				seed, got, want, q, from, to)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no instance fit the budgets")
	}
}

// Property: certain answers are monotone in the query for unions — the
// certain answers of q1 are contained in those of q1|q2 under the null
// semantics... NOT in general (certain answers are not monotone under
// union for intersection-based semantics); instead check the sound
// direction: evaluation monotonicity on a fixed solution.
func TestPropertyEvalMonotoneUnderUnion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		gs, m := randomInstance(seed)
		u, err := core.UniversalSolution(m, gs)
		if err != nil {
			t.Fatal(err)
		}
		q1 := ree.MustParseQuery("p q")
		q12 := ree.MustParseQuery("p q | q=")
		r1 := q1.Eval(u, datagraph.SQLNulls)
		r12 := q12.Eval(u, datagraph.SQLNulls)
		if !r1.SubsetOf(r12) {
			t.Fatalf("seed %d: evaluation not monotone under union", seed)
		}
	}
}
