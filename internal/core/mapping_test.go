package core

import (
	"reflect"
	"testing"

	"repro/internal/datagraph"
)

// sourceGraph builds a small source: two people connected by 'knows', each
// 'likes' a post.
func sourceGraph(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("ann", datagraph.V("30"))
	g.MustAddNode("bob", datagraph.V("25"))
	g.MustAddNode("p1", datagraph.V("hello"))
	g.MustAddEdge("ann", "knows", "bob")
	g.MustAddEdge("ann", "likes", "p1")
	g.MustAddEdge("bob", "likes", "p1")
	return g
}

func TestClassification(t *testing.T) {
	lavGav := NewMapping(R("a", "b"), R("c", "d"))
	if !lavGav.IsLAV() || !lavGav.IsGAV() || !lavGav.IsRelational() || !lavGav.IsRelationalReachability() {
		t.Fatal("LAV/GAV mapping misclassified")
	}
	relational := NewMapping(R("a b", "c d e"), R("f*", "g"))
	if relational.IsLAV() {
		t.Fatal("non-atomic source accepted as LAV")
	}
	if relational.IsGAV() {
		t.Fatal("non-atomic target accepted as GAV")
	}
	if !relational.IsRelational() {
		t.Fatal("word targets should be relational")
	}
	relReach := NewMapping(R("a", "b"), R("c", ".*"))
	if relReach.IsRelational() {
		t.Fatal("reachability target accepted as relational")
	}
	if !relReach.IsRelationalReachability() {
		t.Fatal("word+reachability targets should be relational/reachability")
	}
	arbitrary := NewMapping(R("a", "b*"))
	if arbitrary.IsRelationalReachability() {
		t.Fatal("b* target is neither word nor Σ*")
	}
}

func TestLabels(t *testing.T) {
	m := NewMapping(R("a b", "x y"), R("c", "x z"))
	if got := m.SourceLabels(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SourceLabels = %v", got)
	}
	if got := m.TargetLabels(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Fatalf("TargetLabels = %v", got)
	}
}

func TestSatisfiesCopyMapping(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "knows"), R("likes", "likes"))
	// The source itself is a solution under the copy mapping.
	if !m.Satisfies(gs, gs) {
		t.Fatal("identity must satisfy the copy mapping")
	}
	// A target missing an edge is not a solution.
	gt := gs.Clone()
	gt2 := datagraph.New()
	for _, n := range gt.Nodes() {
		gt2.MustAddNode(n.ID, n.Value)
	}
	gt2.MustAddEdge("ann", "knows", "bob")
	gt2.MustAddEdge("ann", "likes", "p1")
	// bob-likes-p1 missing.
	if m.Satisfies(gs, gt2) {
		t.Fatal("missing edge must violate the mapping")
	}
	ok, reason := m.Check(gs, gt2)
	if ok || reason == "" {
		t.Fatal("Check should explain the violation")
	}
}

func TestSatisfiesValueMismatch(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "knows"))
	gt := datagraph.New()
	gt.MustAddNode("ann", datagraph.V("31")) // wrong value
	gt.MustAddNode("bob", datagraph.V("25"))
	gt.MustAddEdge("ann", "knows", "bob")
	if m.Satisfies(gs, gt) {
		t.Fatal("data values are part of node identity (Definition 1)")
	}
}

func TestSatisfiesMissingNode(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "knows"))
	gt := datagraph.New()
	gt.MustAddNode("ann", datagraph.V("30"))
	if m.Satisfies(gs, gt) {
		t.Fatal("missing target node must violate the mapping")
	}
}

func TestSatisfiesWordTarget(t *testing.T) {
	gs := sourceGraph(t)
	// knows must be realised as a two-step path f f.
	m := NewMapping(R("knows", "f f"))
	gt := datagraph.New()
	gt.MustAddNode("ann", datagraph.V("30"))
	gt.MustAddNode("bob", datagraph.V("25"))
	gt.MustAddNode("mid", datagraph.V("whatever"))
	gt.MustAddEdge("ann", "f", "mid")
	gt.MustAddEdge("mid", "f", "bob")
	if !m.Satisfies(gs, gt) {
		t.Fatal("two-step path should satisfy the word rule")
	}
	// Direct edge does not satisfy f·f.
	gt3 := datagraph.New()
	gt3.MustAddNode("ann", datagraph.V("30"))
	gt3.MustAddNode("bob", datagraph.V("25"))
	gt3.MustAddEdge("ann", "f", "bob")
	if m.Satisfies(gs, gt3) {
		t.Fatal("single f edge does not realise f·f")
	}
}

func TestSatisfiesReachabilityTarget(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", ".*"))
	gt := datagraph.New()
	gt.MustAddNode("ann", datagraph.V("30"))
	gt.MustAddNode("bob", datagraph.V("25"))
	gt.MustAddEdge("ann", "anything_at_all", "bob")
	if !m.Satisfies(gs, gt) {
		t.Fatal("any path satisfies Σ*")
	}
	// Even a longer chain.
	gt.MustAddNode("c", datagraph.V("x"))
	if !m.Satisfies(gs, gt) {
		t.Fatal("extra nodes don't hurt")
	}
}

func TestParseMappingRoundTrip(t *testing.T) {
	m := NewMapping(R("knows", "f f"), R("likes", ".*"), R("a b", "c"))
	text := m.String()
	m2, err := ParseMappingString(text)
	if err != nil {
		t.Fatal(err)
	}
	if m2.String() != text {
		t.Fatalf("round trip:\n%s\nvs\n%s", text, m2.String())
	}
}

func TestParseMappingErrors(t *testing.T) {
	for _, bad := range []string{
		"",                   // no rules
		"knows -> f",         // missing 'rule' keyword
		"rule knows f",       // missing ->
		"rule kn( -> f",      // bad source
		"rule knows -> (",    // bad target
		"# only a comment\n", // no rules
	} {
		if _, err := ParseMappingString(bad); err == nil {
			t.Errorf("ParseMappingString(%q) should fail", bad)
		}
	}
	// Comments and blank lines are fine alongside a rule.
	m, err := ParseMappingString("# hi\n\nrule a -> b c\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules) != 1 {
		t.Fatal("expected one rule")
	}
}

func TestDom(t *testing.T) {
	gs := sourceGraph(t)
	// Only 'knows' endpoints are in dom.
	m := NewMapping(R("knows", "k"))
	dom := Dom(m, gs)
	if len(dom) != 2 {
		t.Fatalf("dom = %v", dom)
	}
	ids := DomIDs(m, gs)
	if _, ok := ids["ann"]; !ok {
		t.Fatal("ann should be in dom")
	}
	if _, ok := ids["p1"]; ok {
		t.Fatal("p1 should not be in dom")
	}
	// Adding the likes rule brings p1 in.
	m2 := NewMapping(R("knows", "k"), R("likes", "l"))
	if len(Dom(m2, gs)) != 3 {
		t.Fatal("likes endpoints should join dom")
	}
}
