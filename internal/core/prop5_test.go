package core

import (
	"testing"

	"repro/internal/datagraph"
	"repro/internal/ree"
)

func prop5Source(t *testing.T, sameValues bool) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("x", datagraph.V("1"))
	if sameValues {
		g.MustAddNode("y", datagraph.V("1"))
	} else {
		g.MustAddNode("y", datagraph.V("2"))
	}
	g.MustAddEdge("x", "a", "y")
	return g
}

func TestProp5AgreesWithRelationalOracle(t *testing.T) {
	// On relational mappings, the arbitrary-GSM procedure must agree with
	// CertainExactPair.
	gs := prop5Source(t, false)
	m := NewMapping(R("a", "b c"))
	for _, expr := range []string{"b c", "(b c)=", "(b c)!=", "b", "b= c"} {
		q := ree.MustParseQuery(expr)
		want, err := CertainExactPair(m, gs, q, "x", "y", DefaultExactOptions())
		if err != nil {
			t.Fatal(err)
		}
		got, err := CertainDataPathArbitrary(m, gs, q, "x", "y", Prop5Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: arbitrary %v vs relational oracle %v", expr, got, want)
		}
	}
}

func TestProp5ReachabilityRule(t *testing.T) {
	gs := prop5Source(t, false)
	// Σ* target: the adversary can always realise the requirement with a
	// path avoiding the query labels, so nothing is certain.
	m := NewMapping(R("a", ".*"))
	got, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("Σ* lets the adversary dodge any specific word")
	}
}

func TestProp5UnionChoice(t *testing.T) {
	gs := prop5Source(t, false)
	// Target b | c c: the adversary picks whichever word avoids the query.
	m := NewMapping(R("a", "b|c c"))
	got, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("adversary picks c·c to dodge the b query")
	}
	// But the disjunction-free demand b is certain when the only word is b.
	m2 := NewMapping(R("a", "b"))
	got2, err := CertainDataPathArbitrary(m2, gs, ree.MustParseQuery("b"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got2 {
		t.Fatal("b is forced")
	}
}

func TestProp5StarTarget(t *testing.T) {
	gs := prop5Source(t, false)
	// Target b⁺ (written b b*): words b, bb, bbb, … The query b·b is
	// dodged by choosing b (or any length ≠ 2 — including LONG).
	m := NewMapping(R("a", "b b*"))
	got, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b b"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("b⁺ admits lengths other than 2")
	}
	// Query ⋆-free single b against target b: the one-letter prefix of
	// every b⁺ word... a match needs the full inserted path to have length
	// exactly 1, and the adversary picks longer: not certain either.
	got2, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got2 {
		t.Fatal("adversary inserts a longer b-path")
	}
}

func TestProp5DataTests(t *testing.T) {
	// Equal endpoint values: (b c)= is certain when the word b·c is forced
	// and the endpoints carry equal values.
	gsSame := prop5Source(t, true)
	m := NewMapping(R("a", "b c"))
	got, err := CertainDataPathArbitrary(m, gsSame, ree.MustParseQuery("(b c)="), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("(b c)= with equal constants must be certain")
	}
	// Distinct endpoint values: never.
	gsDiff := prop5Source(t, false)
	got2, err := CertainDataPathArbitrary(m, gsDiff, ree.MustParseQuery("(b c)="), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got2 {
		t.Fatal("(b c)= with distinct constants is impossible")
	}
	// Midpoint test: (b= c) compares x with the fresh midpoint — the
	// adversary gives the midpoint a different value.
	got3, err := CertainDataPathArbitrary(m, gsSame, ree.MustParseQuery("b= c"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got3 {
		t.Fatal("midpoint value is adversary-controlled")
	}
}

func TestProp5Guards(t *testing.T) {
	gs := prop5Source(t, false)
	m := NewMapping(R("a", "b"))
	// Non-path query rejected.
	if _, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b*"), "x", "y", Prop5Options{}); err == nil {
		t.Fatal("star query is not a path with tests")
	}
	// Missing endpoints are not certain.
	got, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b"), "x", "ghost", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("missing endpoint cannot be certain")
	}
	// Choice budget enforced.
	big := datagraph.New()
	big.MustAddNode("x", datagraph.V("1"))
	big.MustAddNode("y", datagraph.V("2"))
	big.MustAddEdge("x", "a", "y")
	wide := NewMapping(R("a", "b|c|d|e b|c c|d d"), R("a", "b|c|d|e b|c c|d d"))
	if _, err := CertainDataPathArbitrary(wide, big, ree.MustParseQuery("b b"), "x", "y",
		Prop5Options{MaxChoices: 2}); err == nil {
		t.Fatal("choice budget must be enforced")
	}
}

func TestProp5EpsilonWords(t *testing.T) {
	// Self-loop with target (()|b): the adversary may pick ε (endpoints
	// coincide) and avoid any b-edge.
	gs := datagraph.New()
	gs.MustAddNode("x", datagraph.V("1"))
	gs.MustAddEdge("x", "a", "x")
	m := NewMapping(R("a", "()|b"))
	got, err := CertainDataPathArbitrary(m, gs, ree.MustParseQuery("b"), "x", "x", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("ε choice avoids the b-edge")
	}
	// Distinct endpoints make ε unusable: b becomes forced.
	gs2 := prop5Source(t, false)
	m2 := NewMapping(R("a", "()|b"))
	got2, err := CertainDataPathArbitrary(m2, gs2, ree.MustParseQuery("b"), "x", "y", Prop5Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got2 {
		t.Fatal("ε demands x = y; with x ≠ y the b word is forced")
	}
}
