package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rex"
)

// This file implements Proposition 5: for data path queries Q (paths with
// tests) the certain-answer problem is decidable — in coNP — for *arbitrary*
// GSMs, not just relational ones. The paper's idea: mapping rules can only
// help a Q-match through target words no longer than |Q|, so the mapping can
// be cut down to an essentially relational one.
//
// Realisation. In a canonical adversary solution, every rule (q, q′) and
// every pair (u, v) ∈ q(Gs) is satisfied by materialising one fresh path
// from u to v spelling some word w ∈ L(q′) chosen by the adversary. Since
// fresh intermediate nodes are per-pair, any length-|Q| match from x to y
// decomposes into *complete* traversals of inserted paths, so only words of
// length ≤ |Q| can participate; longer words are interchangeable ("LONG").
// The adversary space is therefore finite:
//
//   - per (rule, pair): a word of length ≤ |Q| from L(q′) over the alphabet
//     Σ_Q ∪ {⋆} (labels outside Q are interchangeable, represented by ⋆),
//     or LONG when L(q′) contains some word longer than |Q| (decidable: a
//     shortest such word has length ≤ |Q| + #NFA states, by cycle removal);
//   - per fresh node: a data value, enumerated as canonical specializations
//     exactly as in CertainExact.
//
// (x, y) is certain iff every combination yields a match — the
// deterministic realisation of the coNP bound. Completeness of the choice
// space follows by inducing, from an arbitrary solution Gt, the choices and
// values of the witness paths that Gt uses; the canonical match then
// transfers to Gt because paths-with-tests only inspect labels and
// endpoint equalities of contiguous segments.

// longMarker represents a word longer than |Q| in the choice space.
var longMarker = []string{"\x00long"}

// starLabel is the canonical representative of "any label not in Q".
const starLabel = "\x00star"

// Prop5Options bounds the doubly-exponential search.
type Prop5Options struct {
	// MaxChoices caps the number of (word choice) combinations. Default 4096.
	MaxChoices int
	// MaxNulls caps fresh nodes per candidate solution. Default 10.
	MaxNulls int
	// Workers is the number of goroutines sharding the adversary's choice
	// combinations (each combination is checked independently, so the search
	// parallelizes perfectly). ≤ 1 runs sequentially. internal/engine sets
	// this to GOMAXPROCS.
	Workers int
}

// Normalized validates the options once: negative budgets are ErrBadOptions,
// zeros select the defaults.
func (o Prop5Options) Normalized() (Prop5Options, error) {
	if o.MaxChoices < 0 {
		return o, badOptionf("MaxChoices %d is negative", o.MaxChoices)
	}
	if o.MaxNulls < 0 {
		return o, badOptionf("MaxNulls %d is negative", o.MaxNulls)
	}
	if o.MaxChoices == 0 {
		o.MaxChoices = 4096
	}
	if o.MaxNulls == 0 {
		o.MaxNulls = 10
	}
	return o, nil
}

// CertainDataPathArbitrary decides (from, to) ∈ 2_M(Q, Gs) for an arbitrary
// GSM and a path-with-tests query.
func CertainDataPathArbitrary(m *Mapping, gs *datagraph.Graph, q *ree.Query,
	from, to datagraph.NodeID, opts Prop5Options) (bool, error) {

	mat, err := throwaway(m, gs)
	if err != nil {
		return false, err
	}
	return mat.CertainDataPathArbitrary(context.Background(), q, from, to, opts)
}

// CertainDataPathArbitrary is the materialization variant of the
// package-level CertainDataPathArbitrary: the memoized per-rule source
// results and dom are shared, and ctx is honored between adversary
// combinations (returning an ErrCanceled wrap).
func (mat *Materialization) CertainDataPathArbitrary(ctx context.Context, q *ree.Query,
	from, to datagraph.NodeID, opts Prop5Options) (bool, error) {

	opts, err := opts.Normalized()
	if err != nil {
		return false, err
	}
	m, gs := mat.cm.Mapping(), mat.gs
	labels, _, ok := ree.FlattenPathWithTests(q.Expr())
	if !ok {
		return false, fmt.Errorf("core: query %s is not a path with tests", q)
	}
	L := len(labels)

	// Per (rule, pair) choice sets.
	sourcePairs := mat.SourcePairs()
	var slots []prop5Slot
	total := 1
	for ri, r := range m.Rules {
		// The word alphabet: the query's labels, the labels the target
		// expression mentions concretely, and ⋆ standing for every other
		// label (reachable only through Any-transitions). Labels the target
		// names explicitly must stay concrete — collapsing them into ⋆
		// would lose adversary choices like picking the c·c branch of
		// b | c·c to dodge a b query.
		alpha := uniqueLabels(append(append([]string{}, labels...),
			rex.Labels(r.Target.Expr())...))
		alpha = append(alpha, starLabel)
		nfa := rex.Compile(r.Target.Expr())
		words := wordsUpTo(nfa, alpha, L)
		if acceptsLonger(nfa, alpha, L) {
			words = append(words, longMarker)
		}
		if len(words) == 0 {
			// L(q′) over this alphabet is empty — impossible for the rex
			// grammar (no ∅), but guard against future extensions: a rule
			// with empty target language over a nonempty requirement set
			// admits no solution, making every pair certain.
			if sourcePairs[ri].Len() > 0 {
				return true, nil
			}
			continue
		}
		for _, p := range sourcePairs[ri].Sorted() {
			u, v := gs.Node(p.From), gs.Node(p.To)
			// ε-words demand u = v; filter them per pair.
			var usable [][]string
			for _, w := range words {
				if len(w) == 0 && u.ID != v.ID {
					continue
				}
				usable = append(usable, w)
			}
			if len(usable) == 0 {
				return true, nil // this pair admits no realisation: no solution
			}
			slots = append(slots, prop5Slot{from: u, to: v, words: usable})
			total *= len(usable)
			if total > opts.MaxChoices {
				return false, budgetErrf("core: %d word-choice combinations exceed budget %d",
					total, opts.MaxChoices)
			}
		}
	}

	dom := mat.DomIDs()
	if _, okF := dom[from]; !okF {
		return false, nil
	}
	if _, okT := dom[to]; !okT {
		return false, nil
	}

	// Enumerate choice combinations; for each, build the canonical target
	// and run the CertainExactPair-style specialization check inline. Each
	// combination is independent, so the enumeration shards across workers:
	// combination indices are decoded mixed-radix into choice vectors.
	domNodes := mat.DomNodes()
	checkCombo := func(idx int, choice []int) (holds bool, err error) {
		if err := ctx.Err(); err != nil {
			return false, Canceled(err)
		}
		for i := range slots {
			choice[i] = idx % len(slots[i].words)
			idx /= len(slots[i].words)
		}
		gt, err := buildChoiceSolution(gs, domNodes, slots, choice, L)
		if err != nil {
			return false, err
		}
		return pairCertainOverSpecializations(gs, gt, q, from, to, opts.MaxNulls)
	}

	workers := opts.Workers
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		choice := make([]int, len(slots))
		for idx := 0; idx < total; idx++ {
			holds, err := checkCombo(idx, choice)
			if err != nil {
				return false, err
			}
			if !holds {
				return false, nil // adversary found a counterexample family
			}
		}
		return true, nil
	}

	var (
		next     atomic.Int64
		refuted  atomic.Bool // a counterexample family was found
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			choice := make([]int, len(slots))
			for !stop.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= total {
					return
				}
				holds, err := checkCombo(idx, choice)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				if !holds {
					refuted.Store(true)
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	// A refutation is definitive — some combination admits no match, so the
	// pair is not certain — and must win over a concurrent worker's budget
	// error, or the outcome would depend on the worker count.
	if refuted.Load() {
		return false, nil
	}
	if firstErr != nil {
		return false, firstErr
	}
	return true, nil
}

func uniqueLabels(ls []string) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, l := range ls {
		if _, dup := seen[l]; !dup {
			seen[l] = struct{}{}
			out = append(out, l)
		}
	}
	return out
}

// wordsUpTo enumerates the words of length ≤ maxLen over alpha accepted by
// the NFA (Any-steps range over alpha).
func wordsUpTo(nfa *rex.NFA, alpha []string, maxLen int) [][]string {
	var out [][]string
	var rec func(word []string)
	rec = func(word []string) {
		if nfa.Matches(word) {
			out = append(out, append([]string(nil), word...))
		}
		if len(word) == maxLen {
			return
		}
		for _, a := range alpha {
			rec(append(word, a))
		}
	}
	rec(nil)
	return out
}

// acceptsLonger reports whether the NFA accepts some word of length > maxLen
// over alpha: by cycle removal a shortest such word has length at most
// maxLen + #states, so a bounded BFS decides it.
func acceptsLonger(nfa *rex.NFA, alpha []string, maxLen int) bool {
	bound := maxLen + nfa.NumStates + 1
	// BFS over (state set, length); represent state sets canonically.
	type entry struct {
		states []int
		length int
	}
	start := entry{states: nfa.Closure(nfa.Start), length: 0}
	queue := []entry{start}
	seen := map[string]struct{}{}
	key := func(states []int, length int) string {
		return fmt.Sprintf("%v@%d", states, length)
	}
	seen[key(start.states, 0)] = struct{}{}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if e.length > maxLen {
			for _, s := range e.states {
				if s == nfa.Accept {
					return true
				}
			}
		}
		if e.length == bound {
			continue
		}
		for _, a := range alpha {
			var next []int
			dedup := map[int]struct{}{}
			for _, s := range e.states {
				for _, st := range nfa.Steps[s] {
					if st.Matches(a) {
						for _, c := range nfa.Closure(st.To) {
							if _, dup := dedup[c]; !dup {
								dedup[c] = struct{}{}
								next = append(next, c)
							}
						}
					}
				}
			}
			if len(next) == 0 {
				continue
			}
			k := key(next, e.length+1)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				queue = append(queue, entry{states: next, length: e.length + 1})
			}
		}
	}
	return false
}

// prop5Slot is one (rule, pair) requirement with its admissible words.
type prop5Slot struct {
	from, to datagraph.Node
	words    [][]string
}

// buildChoiceSolution materialises the canonical target for one choice
// combination: dom nodes plus one fresh path per slot spelling the chosen
// word (LONG becomes a ⋆-path of length |Q|+1, unusable by any match).
func buildChoiceSolution(gs *datagraph.Graph, domNodes []datagraph.Node, slots []prop5Slot,
	choice []int, L int) (*datagraph.Graph, error) {
	gt := datagraph.New()
	for _, n := range domNodes {
		gt.MustAddNode(n.ID, n.Value)
	}
	ids := newFreshIDs(gs, "_n")
	for i, s := range slots {
		word := s.words[choice[i]]
		if len(word) == 1 && word[0] == longMarker[0] {
			word = make([]string, L+1)
			for j := range word {
				word[j] = starLabel
			}
		}
		if len(word) == 0 {
			continue // ε: endpoints coincide, nothing to add
		}
		prev := s.from.ID
		for j := 0; j < len(word)-1; j++ {
			id := ids.next()
			gt.MustAddNode(id, datagraph.Null())
			gt.MustAddEdge(prev, word[j], id)
			prev = id
		}
		gt.MustAddEdge(prev, word[len(word)-1], s.to.ID)
	}
	return gt, nil
}

// pairCertainOverSpecializations checks whether (from, to) ∈ Q(σ(gt)) for
// every canonical value specialization σ of the null nodes of gt.
func pairCertainOverSpecializations(gs *datagraph.Graph, gt *datagraph.Graph,
	q *ree.Query, from, to datagraph.NodeID, maxNulls int) (bool, error) {

	nulls := NullNodes(gt)
	if len(nulls) > maxNulls {
		return false, fmt.Errorf("core: %d fresh nodes exceed the budget of %d", len(nulls), maxNulls)
	}
	fi, okF := gt.IndexOf(from)
	ti, okT := gt.IndexOf(to)
	if !okF || !okT {
		return false, nil
	}
	sourceValues := gs.Values()
	fresh := newFreshValues(gs, "_adv")
	freshPool := make([]datagraph.Value, len(nulls))
	for i := range freshPool {
		freshPool[i] = fresh.next()
	}
	spec := gt.Clone()
	nullIdx := make([]int, len(nulls))
	for i, id := range nulls {
		nullIdx[i], _ = spec.IndexOf(id)
	}
	assign := make([]datagraph.Value, len(nulls))
	certain := true
	var rec func(i, open int) bool
	rec = func(i, open int) bool {
		if i == len(nulls) {
			for j, idx := range nullIdx {
				spec.SetValue(idx, assign[j])
			}
			found := false
			for _, v := range q.EvalFrom(spec, fi, datagraph.MarkedNulls) {
				if v == ti {
					found = true
					break
				}
			}
			if !found {
				certain = false
				return false
			}
			return true
		}
		for _, v := range sourceValues {
			assign[i] = v
			if !rec(i+1, open) {
				return false
			}
		}
		for c := 0; c <= open; c++ {
			assign[i] = freshPool[c]
			o := open
			if c == open {
				o++
			}
			if !rec(i+1, o) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	return certain, nil
}
