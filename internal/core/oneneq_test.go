package core

import (
	"testing"

	"repro/internal/datagraph"
	"repro/internal/ree"
)

// edgeSource builds x -a-> y with distinct values.
func edgeSource(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("x", datagraph.V("1"))
	g.MustAddNode("y", datagraph.V("2"))
	g.MustAddEdge("x", "a", "y")
	return g
}

func TestOneNeqEndpointConstants(t *testing.T) {
	gs := edgeSource(t)
	m := NewMapping(R("a", "b b"))
	// (b b)!=: endpoints are constants 1 ≠ 2 — unkillable threat, certain.
	q := ree.MustParseQuery("(b b)!=")
	got, err := CertainOneInequality(m, gs, q, "x", "y", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("(b b)!= must be certain over distinct constants")
	}
	// Agreement with the exact oracle.
	exact, err := CertainExact(m, gs, q, DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Has("x", "y") {
		t.Fatal("oracle disagrees")
	}
}

func TestOneNeqKillableThreat(t *testing.T) {
	gs := edgeSource(t)
	m := NewMapping(R("a", "b b"))
	// b!= b: compares x's constant with the null — adversary sets the null
	// equal to x's value and kills the match.
	q := ree.MustParseQuery("b!= b")
	got, err := CertainOneInequality(m, gs, q, "x", "y", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("b!= b should not be certain (null can equal x)")
	}
	exact, err := CertainExact(m, gs, q, DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if exact.Has("x", "y") {
		t.Fatal("oracle disagrees: exact says certain")
	}
}

func TestOneNeqEqualityPropagation(t *testing.T) {
	// Two parallel paths share endpoints; killing one threat activates
	// another: rule (a, b b) applied twice via two source edges into a
	// diamond... Construct: x -a-> y and x -c-> y with rules (a, b b) and
	// (c, b b): universal solution has two parallel b·b paths x→y with
	// nulls n1, n2.
	gs := datagraph.New()
	gs.MustAddNode("x", datagraph.V("1"))
	gs.MustAddNode("y", datagraph.V("2"))
	gs.MustAddEdge("x", "a", "y")
	gs.MustAddEdge("x", "c", "y")
	m := NewMapping(R("a", "b b"), R("c", "b b"))
	// Query b= b : needs δ(x) = δ(mid). The adversary must avoid *both*
	// paths' midpoints equalling x's value — easy: set both to anything
	// else. Not certain.
	q := ree.MustParseQuery("b= b")
	got, err := CertainOneInequality(m, gs, q, "x", "y", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("b= b should not be certain")
	}
	// Query with zero tests: plain b b is certain.
	got2, err := CertainOneInequality(m, gs, ree.MustParseQuery("b b"), "x", "y", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got2 {
		t.Fatal("b b must be certain")
	}
}

// A forced-merge chain: killing the first threat forces a merge that
// activates a second threat whose ≠ endpoints are constants — certain.
func TestOneNeqForcedMergeCascade(t *testing.T) {
	// Source: x -a-> x (self loop), x -e-> z. Rules: (a, b b), (e, b b).
	// Universal solution: x -b-> n1 -b-> x and x -b-> n2 -b-> z.
	// Query from x to x: b (b b)= b ... has no ≠; use instead:
	// Query Q = b!= b from x to x (via n1): threat [x, n1, x] forces
	// n1 := val(x). No cascade yet — then query from x to z:
	// (b b)!= over [x, n2, z] with values 1 vs 3: constants distinct,
	// certain regardless.
	gs := datagraph.New()
	gs.MustAddNode("x", datagraph.V("1"))
	gs.MustAddNode("z", datagraph.V("3"))
	gs.MustAddEdge("x", "a", "x")
	gs.MustAddEdge("x", "e", "z")
	m := NewMapping(R("a", "b b"), R("e", "b b"))

	got, err := CertainOneInequality(m, gs, ree.MustParseQuery("b!= b"), "x", "x", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("adversary can set n1 = 1 to kill the only threat")
	}
	got2, err := CertainOneInequality(m, gs, ree.MustParseQuery("(b b)!="), "x", "z", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got2 {
		t.Fatal("distinct constants make (b b)!= certain")
	}
	// Cross-check both with the oracle.
	exact, err := CertainExact(m, gs, ree.MustParseQuery("b!= b"), DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if exact.Has("x", "x") {
		t.Fatal("oracle: b!= b should not be certain")
	}
	exact2, err := CertainExact(m, gs, ree.MustParseQuery("(b b)!="), DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !exact2.Has("x", "z") {
		t.Fatal("oracle: (b b)!= should be certain")
	}
}

// Exhaustive agreement between the fixpoint algorithm and the exponential
// oracle on a batch of one-inequality queries.
func TestOneNeqAgreesWithOracle(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("x", datagraph.V("1"))
	gs.MustAddNode("y", datagraph.V("1")) // same value as x
	gs.MustAddNode("z", datagraph.V("2"))
	gs.MustAddEdge("x", "a", "y")
	gs.MustAddEdge("y", "a", "z")
	gs.MustAddEdge("x", "c", "z")
	m := NewMapping(R("a", "b b"), R("c", "b"))
	queries := []string{
		"b b", "b= b", "b!= b", "(b b)=", "(b b)!=", "b b= ", "b",
		"(b b b b)=", "(b b b b)!=", "b (b b)= b", "b (b b)!= b",
	}
	for _, expr := range queries {
		q := ree.MustParseQuery(expr)
		if ree.CountNeq(q.Expr()) > 1 {
			continue
		}
		exact, err := CertainExact(m, gs, q, DefaultExactOptions())
		if err != nil {
			t.Fatal(err)
		}
		all, err := CertainOneInequalityAll(m, gs, q, OneNeqOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !all.Equal(exact) {
			t.Errorf("query %s: fixpoint %v vs oracle %v", expr, all, exact)
		}
	}
}

func TestOneNeqRejectsWrongQueries(t *testing.T) {
	gs := edgeSource(t)
	m := NewMapping(R("a", "b"))
	if _, err := CertainOneInequality(m, gs, ree.MustParseQuery("b*"), "x", "y", OneNeqOptions{}); err == nil {
		t.Fatal("star is not a path with tests")
	}
	if _, err := CertainOneInequality(m, gs, ree.MustParseQuery("b!= b!="), "x", "y", OneNeqOptions{}); err == nil {
		t.Fatal("two inequalities must be rejected")
	}
}

func TestOneNeqMissingEndpoints(t *testing.T) {
	gs := edgeSource(t)
	gs.MustAddNode("lonely", datagraph.V("9"))
	m := NewMapping(R("a", "b"))
	// lonely is not in dom: not certain for any pair involving it.
	got, err := CertainOneInequality(m, gs, ree.MustParseQuery("b"), "lonely", "y", OneNeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("non-dom node cannot appear in certain answers")
	}
}
