package core_test

// Sharded-chase equivalence: the union of the per-shard solution fragments
// must be node-for-node and edge-for-edge the sequential solution, with
// byte-identical fresh ids and fresh values — the property that makes the
// sharded and single-shard certain-answer paths interchangeable.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/rpq"
	"repro/internal/workload"
)

func shardedMat(t *testing.T, m *core.Mapping, gs *datagraph.Graph, shards int, policy datagraph.PartitionPolicy) *core.Materialization {
	t.Helper()
	cm, err := core.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := core.NewMaterializationSharded(cm, gs, core.ShardOptions{Shards: shards, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return mat
}

// mergeFragments unions fragment nodes and edges on global identity.
func mergeFragments(ss *core.ShardedSolution) (map[datagraph.NodeID]string, map[datagraph.Edge]bool) {
	nodes := make(map[datagraph.NodeID]string)
	edges := make(map[datagraph.Edge]bool)
	for _, sh := range ss.Shards {
		for _, n := range sh.G.Nodes() {
			v := "null"
			if !n.Value.IsNull() {
				v = n.Value.Raw()
			}
			nodes[n.ID] = v
		}
		for _, e := range sh.G.Edges() {
			edges[e] = true
		}
	}
	return nodes, edges
}

func graphSets(g *datagraph.Graph) (map[datagraph.NodeID]string, map[datagraph.Edge]bool) {
	nodes := make(map[datagraph.NodeID]string)
	edges := make(map[datagraph.Edge]bool)
	for _, n := range g.Nodes() {
		v := "null"
		if !n.Value.IsNull() {
			v = n.Value.Raw()
		}
		nodes[n.ID] = v
	}
	for _, e := range g.Edges() {
		edges[e] = true
	}
	return nodes, edges
}

func TestShardedChaseMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: 50, Edges: 150, Labels: []string{"a", "b"}, Values: 9, Seed: seed,
		})
		m := workload.RandomRelationalMapping(workload.MappingSpec{
			SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q", "r"},
			Rules: 4, MaxWordLen: 3, Seed: seed,
		})
		cm, err := core.Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		ref := core.NewMaterialization(cm, gs)
		uniWant, err := ref.Universal()
		if err != nil {
			t.Fatal(err)
		}
		liWant, err := ref.LeastInformative()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7, 16} {
			for _, policy := range []datagraph.PartitionPolicy{datagraph.PartitionHash, datagraph.PartitionRange} {
				mat := shardedMat(t, m, gs, shards, policy)
				ssU, err := mat.UniversalSharded()
				if err != nil {
					t.Fatal(err)
				}
				gotN, gotE := mergeFragments(ssU)
				wantN, wantE := graphSets(uniWant)
				compareNodeSets(t, "universal", seed, shards, gotN, wantN)
				compareEdgeSets(t, "universal", seed, shards, gotE, wantE)
				if want := len(core.NullNodes(uniWant)); ssU.TotalNulls != want {
					t.Fatalf("seed %d shards %d: TotalNulls = %d, want %d", seed, shards, ssU.TotalNulls, want)
				}
				perShard := 0
				for _, sh := range ssU.Shards {
					perShard += sh.Nulls
				}
				if perShard != ssU.TotalNulls {
					t.Fatalf("per-shard null counters sum %d != total %d", perShard, ssU.TotalNulls)
				}
				ssL, err := mat.LeastInformativeSharded()
				if err != nil {
					t.Fatal(err)
				}
				gotN, gotE = mergeFragments(ssL)
				wantN, wantE = graphSets(liWant)
				compareNodeSets(t, "least-informative", seed, shards, gotN, wantN)
				compareEdgeSets(t, "least-informative", seed, shards, gotE, wantE)
			}
		}
	}
}

func compareNodeSets(t *testing.T, kind string, seed int64, shards int,
	gotN, wantN map[datagraph.NodeID]string) {
	t.Helper()
	if len(gotN) != len(wantN) {
		t.Fatalf("seed %d shards %d %s: %d nodes, want %d", seed, shards, kind, len(gotN), len(wantN))
	}
	for id, v := range wantN {
		if gotN[id] != v {
			t.Fatalf("seed %d shards %d %s: node %s value %q, want %q", seed, shards, kind, id, gotN[id], v)
		}
	}
}

func compareEdgeSets(t *testing.T, kind string, seed int64, shards int, gotE, wantE map[datagraph.Edge]bool) {
	t.Helper()
	if len(gotE) != len(wantE) {
		t.Fatalf("seed %d shards %d %s: %d edges, want %d", seed, shards, kind, len(gotE), len(wantE))
	}
	for e := range wantE {
		if !gotE[e] {
			t.Fatalf("seed %d shards %d %s: missing edge %v", seed, shards, kind, e)
		}
	}
}

func TestShardedChaseEpsilonErrorMatchesSequential(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("u", datagraph.V("1"))
	gs.MustAddNode("v", datagraph.V("2"))
	gs.MustAddEdge("u", "a", "v")
	m := core.NewMapping(core.R("a", "()")) // ε target demands u = v
	cm := core.MustCompile(m)

	ref := core.NewMaterialization(cm, gs)
	_, wantErr := ref.Universal()
	if wantErr == nil || !errors.Is(wantErr, core.ErrNoSolution) {
		t.Fatalf("sequential chase: want ErrNoSolution, got %v", wantErr)
	}
	mat, err := core.NewMaterializationSharded(cm, gs, core.ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, gotErr := mat.UniversalSharded()
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("sharded chase error %q, want %q", gotErr, wantErr)
	}
}

func TestShardOptionsNormalized(t *testing.T) {
	if o, err := (core.ShardOptions{}).Normalized(); err != nil || o.Shards != 1 {
		t.Fatalf("zero value: %+v, %v", o, err)
	}
	if _, err := (core.ShardOptions{Shards: -2}).Normalized(); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("negative shards: %v", err)
	}
	if _, err := (core.ShardOptions{Shards: 2, Policy: datagraph.PartitionPolicy(9)}).Normalized(); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("unknown policy: %v", err)
	}
}

func TestShardedNullCountBudget(t *testing.T) {
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 20, Edges: 60, Labels: []string{"a"}, Values: 5, Seed: 11,
	})
	m := core.NewMapping(core.R("a", "p q r"))
	cm := core.MustCompile(m)
	mat, err := core.NewMaterializationSharded(cm, gs, core.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	count, err := mat.UniversalNullCount()
	if err != nil {
		t.Fatal(err)
	}
	u, err := mat.Universal()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(core.NullNodes(u)); count != want {
		t.Fatalf("UniversalNullCount = %d, want %d", count, want)
	}
	// An over-budget exact search must fail from the shard counters.
	q := core.NavQuery{Q: rpq.MustParse("p q r")}
	_, err = mat.CertainExact(context.Background(), q, core.ExactOptions{MaxNulls: 1})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}
