package core

import (
	"strings"
	"testing"

	"repro/internal/datagraph"
)

func TestUniversalSolutionShape(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"), R("likes", "likes"))
	u, err := UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	// dom = all three nodes; one fresh null for the knows pair.
	if u.NumNodes() != 4 {
		t.Fatalf("universal solution has %d nodes, want 4", u.NumNodes())
	}
	nulls := NullNodes(u)
	if len(nulls) != 1 {
		t.Fatalf("nulls = %v", nulls)
	}
	// The null is the middle of ann -f-> n -f-> bob.
	ni, _ := u.IndexOf(nulls[0])
	if len(u.In(ni)) != 1 || len(u.Out(ni)) != 1 {
		t.Fatal("null node should have exactly one in and one out edge")
	}
	if !u.HasEdge("ann", "f", nulls[0]) || !u.HasEdge(nulls[0], "f", "bob") {
		t.Fatalf("path shape wrong:\n%s", u)
	}
	// likes edges copied directly.
	if !u.HasEdge("ann", "likes", "p1") || !u.HasEdge("bob", "likes", "p1") {
		t.Fatal("atomic rule should copy edges")
	}
	// Universal solution is a solution.
	if !m.Satisfies(gs, u) {
		t.Fatal("universal solution must satisfy the mapping")
	}
}

func TestUniversalSolutionRequiresRelational(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", ".*"))
	if _, err := UniversalSolution(m, gs); err == nil {
		t.Fatal("non-relational mapping must be rejected")
	}
	if _, err := LeastInformativeSolution(m, gs); err == nil {
		t.Fatal("non-relational mapping must be rejected")
	}
}

func TestEpsilonRuleUnsatisfiable(t *testing.T) {
	gs := sourceGraph(t)
	// knows maps to the empty word: demands ann = bob, impossible.
	m := NewMapping(R("knows", "()"))
	if _, err := UniversalSolution(m, gs); err == nil {
		t.Fatal("ε target over distinct endpoints has no solution")
	}
	// Self-loop source is fine with ε target.
	g2 := datagraph.New()
	g2.MustAddNode("x", datagraph.V("1"))
	g2.MustAddEdge("x", "knows", "x")
	u, err := UniversalSolution(NewMapping(R("knows", "()")), g2)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 1 || u.NumEdges() != 0 {
		t.Fatalf("ε solution should be just the node:\n%s", u)
	}
}

func TestLeastInformativeSolutionValues(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f f")) // two fresh nodes
	li, err := LeastInformativeSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(NullNodes(li)) != 0 {
		t.Fatal("least informative solution must not contain nulls")
	}
	// The two fresh values are distinct from each other and from source
	// values.
	seen := map[datagraph.Value]int{}
	for _, n := range li.Nodes() {
		seen[n.Value]++
	}
	for v, count := range seen {
		if strings.HasPrefix(v.String(), "_fresh") && count > 1 {
			t.Fatalf("fresh value %s reused %d times", v, count)
		}
	}
	if li.NumNodes() != 4 { // ann, bob + 2 fresh
		t.Fatalf("nodes = %d", li.NumNodes())
	}
	if !m.Satisfies(gs, li) {
		t.Fatal("least informative solution must satisfy the mapping")
	}
}

// Lemma 1: the universal solution maps homomorphically (in the nulls sense)
// into every solution, fixing dom(M, Gs).
func TestLemma1UniversalityHomomorphism(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"))
	u, err := UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	// An arbitrary richer solution: the middle node has a concrete value,
	// plus unrelated extra structure.
	sol := datagraph.New()
	sol.MustAddNode("ann", datagraph.V("30"))
	sol.MustAddNode("bob", datagraph.V("25"))
	sol.MustAddNode("mid", datagraph.V("concrete"))
	sol.MustAddNode("noise", datagraph.V("zzz"))
	sol.MustAddEdge("ann", "f", "mid")
	sol.MustAddEdge("mid", "f", "bob")
	sol.MustAddEdge("noise", "g", "ann")
	if !m.Satisfies(gs, sol) {
		t.Fatal("hand-built solution should satisfy the mapping")
	}
	fixed := map[datagraph.NodeID]datagraph.NodeID{}
	for id := range DomIDs(m, gs) {
		fixed[id] = id
	}
	hom, ok := datagraph.FindHomomorphismNulls(u, sol, fixed)
	if !ok {
		t.Fatal("Lemma 1: homomorphism from universal solution must exist")
	}
	if !datagraph.IsHomomorphismNulls(u, sol, hom) {
		t.Fatal("returned map is not a homomorphism")
	}
	for id := range fixed {
		if hom[id] != id {
			t.Fatalf("hom must fix dom: %s -> %s", id, hom[id])
		}
	}
}

func TestFreshIDsAvoidCollision(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("_n1", datagraph.V("sneaky")) // collides with default prefix
	gs.MustAddNode("b", datagraph.V("2"))
	gs.MustAddEdge("_n1", "a", "b")
	m := NewMapping(R("a", "x y"))
	u, err := UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	// All four nodes distinct: _n1, b, and one fresh node whose id must not
	// collide with the existing "_n1".
	if u.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3\n%s", u.NumNodes(), u)
	}
	if got, _ := u.NodeByID("_n1"); got.Value != datagraph.V("sneaky") {
		t.Fatal("source node _n1 must keep its value; fresh ids must not collide")
	}
}

func TestFreshValuesAvoidCollision(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("a", datagraph.V("_fresh1")) // collides with default prefix
	gs.MustAddNode("b", datagraph.V("2"))
	gs.MustAddEdge("a", "e", "b")
	m := NewMapping(R("e", "x y"))
	li, err := LeastInformativeSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[datagraph.Value]int{}
	for _, n := range li.Nodes() {
		counts[n.Value]++
	}
	if counts[datagraph.V("_fresh1")] != 1 {
		t.Fatal("fresh value collided with a source value")
	}
}

// The universal solution of a mapping with several rules over the same pair
// creates separate paths (no sharing), per the Section 7 procedure.
func TestUniversalSolutionSeparatePaths(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("x", datagraph.V("1"))
	gs.MustAddNode("y", datagraph.V("2"))
	gs.MustAddEdge("x", "a", "y")
	m := NewMapping(R("a", "p q"), R("a", "p q")) // two identical rules
	u, err := UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	// Two rules → two fresh nodes, two parallel p·q paths.
	if len(NullNodes(u)) != 2 {
		t.Fatalf("nulls = %v", NullNodes(u))
	}
}
