package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/datagraph"
	"repro/internal/fault"
)

// memo is a concurrency-safe, lazily computed value: the first caller to
// succeed populates it, every later caller — from any goroutine — gets the
// shared result. Unlike a sync.Once gate, a builder *error* is returned
// but not cached: a transient failure (a canceled context, an injected
// fault, resource pressure) must not poison the materialization forever,
// or a single bad call would permanently degrade every session sharing the
// backend. Deterministic failures (ErrInfinite, ErrNoSolution) are cheap
// to re-derive, so retrying them is harmless.
type memo[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

func (mo *memo[T]) get(build func() (T, error)) (T, error) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if mo.done {
		return mo.val, nil
	}
	val, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	mo.val, mo.done = val, true
	return mo.val, nil
}

// peek returns the memoized value without building it: (value, true) when a
// builder already succeeded, (zero, false) otherwise. Stats reporting uses
// it to observe artifacts without forcing their construction.
func (mo *memo[T]) peek() (T, bool) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.val, mo.done
}

// Materialization memoizes every expensive artifact derived from one
// (mapping, source graph) pair: the per-rule source query results, dom(M,
// Gs), the universal solution, the least informative solution, the null-node
// list and the source value pool. Each is computed at most once behind a
// sync.Once gate, so an arbitrary concurrent stream of certain-answer calls
// shares them — the core of the session API's amortization.
//
// The source graph must not be mutated while the materialization is in use;
// sessions enforce this with the graph's version counters.
type Materialization struct {
	cm    *CompiledMapping
	gs    *datagraph.Graph
	shard ShardOptions // normalized; Shards == 1 means single-shard

	src   memo[[]*datagraph.PairSet]
	domN  memo[[]datagraph.Node]
	domID memo[map[datagraph.NodeID]struct{}]
	uni   memo[*datagraph.Graph]
	li    memo[*datagraph.Graph]
	nulls memo[[]datagraph.NodeID]
	vals  memo[[]datagraph.Value]

	srcPart memo[*datagraph.Partition]
	uniSh   memo[*ShardedSolution]
	liSh    memo[*ShardedSolution]

	// size memoizes the SizeBytes walk keyed on the set of built artifacts.
	size sizeCache
}

// NewMaterialization builds an empty materialization for a compiled mapping
// and a source graph; nothing is computed until first use.
func NewMaterialization(cm *CompiledMapping, gs *datagraph.Graph) *Materialization {
	return &Materialization{cm: cm, gs: gs, shard: ShardOptions{Shards: 1}}
}

// NewMaterializationSharded builds a materialization whose solutions are
// additionally available as per-shard fragments (UniversalSharded,
// LeastInformativeSharded). The merged views (Universal, LeastInformative)
// keep working and are memoized independently — fragments and merged view
// are each built lazily, only when first asked for. Invalid shard options
// are an ErrBadOptions.
func NewMaterializationSharded(cm *CompiledMapping, gs *datagraph.Graph, so ShardOptions) (*Materialization, error) {
	so, err := so.Normalized()
	if err != nil {
		return nil, err
	}
	return &Materialization{cm: cm, gs: gs, shard: so}, nil
}

// ShardConfig returns the normalized shard options (Shards == 1 for a
// single-shard materialization).
func (mat *Materialization) ShardConfig() ShardOptions { return mat.shard }

// Sharded reports whether the materialization was built with more than one
// shard.
func (mat *Materialization) Sharded() bool { return mat.shard.Shards > 1 }

// Compiled returns the compiled mapping.
func (mat *Materialization) Compiled() *CompiledMapping { return mat.cm }

// Source returns the source graph.
func (mat *Materialization) Source() *datagraph.Graph { return mat.gs }

// SourcePairs returns q(Gs) for every rule, index-aligned with the rules.
// Evaluated once; shared by dom computation, solution building and the
// Proposition 5 search.
func (mat *Materialization) SourcePairs() []*datagraph.PairSet {
	out, _ := mat.src.get(func() ([]*datagraph.PairSet, error) {
		pairs := make([]*datagraph.PairSet, len(mat.cm.Rules()))
		for i, r := range mat.cm.Rules() {
			pairs[i] = r.Source.Eval(mat.gs)
		}
		return pairs, nil
	})
	return out
}

// DomNodes returns dom(M, Gs) in dense-index order of Gs.
func (mat *Materialization) DomNodes() []datagraph.Node {
	out, _ := mat.domN.get(func() ([]datagraph.Node, error) {
		seen := make([]bool, mat.gs.NumNodes())
		for _, ps := range mat.SourcePairs() {
			ps.Each(func(p datagraph.Pair) {
				seen[p.From] = true
				seen[p.To] = true
			})
		}
		var nodes []datagraph.Node
		for i, ok := range seen {
			if ok {
				nodes = append(nodes, mat.gs.Node(i))
			}
		}
		return nodes, nil
	})
	return out
}

// DomIDs returns the ids of DomNodes as a set.
func (mat *Materialization) DomIDs() map[datagraph.NodeID]struct{} {
	out, _ := mat.domID.get(func() (map[datagraph.NodeID]struct{}, error) {
		ids := make(map[datagraph.NodeID]struct{})
		for _, n := range mat.DomNodes() {
			ids[n.ID] = struct{}{}
		}
		return ids, nil
	})
	return out
}

// Universal returns the memoized SQL-null universal solution (Section 7).
func (mat *Materialization) Universal() (*datagraph.Graph, error) {
	return mat.UniversalCtx(context.Background())
}

// UniversalCtx is Universal with a deadline: the chase that builds a
// missing solution checks ctx between rules, so a canceled request
// abandons a cold materialization promptly instead of finishing it. The
// partial build is discarded (errors are never memoized) and the next
// caller retries under its own deadline.
func (mat *Materialization) UniversalCtx(ctx context.Context) (*datagraph.Graph, error) {
	return mat.uni.get(func() (*datagraph.Graph, error) {
		// Fault point "core.memo": the memoization gate, the moment a
		// missing artifact commits to being built.
		if err := fault.Hit("core.memo"); err != nil {
			return nil, err
		}
		return mat.buildSolution(ctx, solutionNulls)
	})
}

// LeastInformative returns the memoized fresh-value least informative
// solution (Section 8).
func (mat *Materialization) LeastInformative() (*datagraph.Graph, error) {
	return mat.LeastInformativeCtx(context.Background())
}

// LeastInformativeCtx is LeastInformative with a deadline (see
// UniversalCtx).
func (mat *Materialization) LeastInformativeCtx(ctx context.Context) (*datagraph.Graph, error) {
	return mat.li.get(func() (*datagraph.Graph, error) {
		if err := fault.Hit("core.memo"); err != nil {
			return nil, err
		}
		return mat.buildSolution(ctx, solutionFresh)
	})
}

// SourcePartition returns the memoized node→shard assignment of the source
// graph under the materialization's shard options.
func (mat *Materialization) SourcePartition() *datagraph.Partition {
	out, _ := mat.srcPart.get(func() (*datagraph.Partition, error) {
		return datagraph.NewPartition(mat.gs, mat.shard.Shards, mat.shard.Policy), nil
	})
	return out
}

// UniversalSharded returns the memoized per-shard fragments of the
// universal solution. Valid for any shard count; with Shards == 1 the
// single fragment is the whole solution.
func (mat *Materialization) UniversalSharded() (*ShardedSolution, error) {
	return mat.UniversalShardedCtx(context.Background())
}

// UniversalShardedCtx is UniversalSharded with a deadline (see
// UniversalCtx).
func (mat *Materialization) UniversalShardedCtx(ctx context.Context) (*ShardedSolution, error) {
	return mat.uniSh.get(func() (*ShardedSolution, error) {
		if err := fault.Hit("core.memo"); err != nil {
			return nil, err
		}
		return mat.buildShardedSolution(ctx, solutionNulls)
	})
}

// LeastInformativeSharded returns the memoized per-shard fragments of the
// least informative solution.
func (mat *Materialization) LeastInformativeSharded() (*ShardedSolution, error) {
	return mat.LeastInformativeShardedCtx(context.Background())
}

// LeastInformativeShardedCtx is LeastInformativeSharded with a deadline
// (see UniversalCtx).
func (mat *Materialization) LeastInformativeShardedCtx(ctx context.Context) (*ShardedSolution, error) {
	return mat.liSh.get(func() (*ShardedSolution, error) {
		if err := fault.Hit("core.memo"); err != nil {
			return nil, err
		}
		return mat.buildShardedSolution(ctx, solutionFresh)
	})
}

// UniversalShardedCached returns the sharded universal solution if it has
// already been built, else nil — the stats path, which must not trigger a
// chase.
func (mat *Materialization) UniversalShardedCached() *ShardedSolution {
	ss, ok := mat.uniSh.peek()
	if !ok {
		return nil
	}
	return ss
}

// UniversalNullCount returns the number of null nodes in the universal
// solution. On a sharded materialization it is the sum of the per-shard
// chase counters, so the exact-search budget check can fire without ever
// building the merged view.
func (mat *Materialization) UniversalNullCount() (int, error) {
	return mat.UniversalNullCountCtx(context.Background())
}

// UniversalNullCountCtx is UniversalNullCount with a deadline on any chase
// it triggers.
func (mat *Materialization) UniversalNullCountCtx(ctx context.Context) (int, error) {
	if mat.Sharded() {
		ss, err := mat.UniversalShardedCtx(ctx)
		if err != nil {
			return 0, err
		}
		return ss.TotalNulls, nil
	}
	nulls, err := mat.UniversalNullsCtx(ctx)
	if err != nil {
		return 0, err
	}
	return len(nulls), nil
}

// UniversalNulls returns the null-node ids of the universal solution.
func (mat *Materialization) UniversalNulls() ([]datagraph.NodeID, error) {
	return mat.UniversalNullsCtx(context.Background())
}

// UniversalNullsCtx is UniversalNulls with a deadline on any chase it
// triggers.
func (mat *Materialization) UniversalNullsCtx(ctx context.Context) ([]datagraph.NodeID, error) {
	return mat.nulls.get(func() ([]datagraph.NodeID, error) {
		u, err := mat.UniversalCtx(ctx)
		if err != nil {
			return nil, err
		}
		return NullNodes(u), nil
	})
}

// SourceValues returns the distinct data values of the source graph.
func (mat *Materialization) SourceValues() []datagraph.Value {
	out, _ := mat.vals.get(func() ([]datagraph.Value, error) {
		return mat.gs.Values(), nil
	})
	return out
}

// buildSolution materialises a solution in either style using the memoized
// source pairs and the precompiled target words. The chase checks ctx once
// per rule — the same granularity as the core.chase fault point — so a
// canceled request abandons the partial target graph mid-chase.
func (mat *Materialization) buildSolution(ctx context.Context, style solutionStyle) (*datagraph.Graph, error) {
	if !mat.cm.IsRelational() {
		return nil, fmt.Errorf("core: %w", ErrInfinite)
	}
	gs := mat.gs
	gt := datagraph.New()
	// Step 1: copy dom(M, Gs).
	for _, n := range mat.DomNodes() {
		gt.MustAddNode(n.ID, n.Value)
	}
	ids := newFreshIDs(gs, "_n")
	vals := newFreshValues(gs, "_fresh")
	newNodeValue := func() datagraph.Value {
		if style == solutionNulls {
			return datagraph.Null()
		}
		return vals.next()
	}
	// Step 2: materialise a path for each rule and pair.
	rules := mat.cm.Rules()
	pairsByRule := mat.SourcePairs()
	for ri, r := range rules {
		// Fault point "core.chase": one per rule, mid-chase — exercises
		// abandoning a partially built solution (the partial target graph
		// is discarded, never published to the memo).
		if err := fault.Hit("core.chase"); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, Canceled(err)
		}
		word, _ := mat.cm.TargetWord(ri)
		pairs := pairsByRule[ri].Sorted()
		for _, p := range pairs {
			from := gs.Node(p.From)
			to := gs.Node(p.To)
			if len(word) == 0 {
				if from.ID != to.ID {
					return nil, fmt.Errorf(
						"core: rule %s requires %s = %s via ε: %w", r, from.ID, to.ID, ErrNoSolution)
				}
				continue
			}
			prev := from.ID
			for i := 0; i < len(word)-1; i++ {
				id := ids.next()
				gt.MustAddNode(id, newNodeValue())
				gt.MustAddEdge(prev, word[i], id)
				prev = id
			}
			gt.MustAddEdge(prev, word[len(word)-1], to.ID)
		}
	}
	// Freeze once so every downstream evaluation of this solution — the
	// certain-answer batch, all engine workers — shares one interned
	// snapshot.
	gt.Freeze()
	return gt, nil
}
