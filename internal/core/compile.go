package core

// CompiledMapping is a mapping whose per-rule artifacts — the finalized
// source/target automata, the target words of relational rules, and the
// classification predicates — have been computed once, up front. It is
// immutable and safe for concurrent use by any number of sessions, which is
// the point: rule compilation and classification happen at Compile time, not
// per certain-answer call.
type CompiledMapping struct {
	m           *Mapping
	relational  bool
	relReach    bool
	lav, gav    bool
	targetWords [][]string // per rule; nil when the target is not a word RPQ
	srcLabels   []string
	tgtLabels   []string
}

// Compile validates and precompiles a mapping. The mapping must be non-nil;
// its rule queries are already finalized at parse time, so no further
// per-rule work is deferred. Non-relational mappings compile fine — only the
// solution-based algorithms reject them later (ErrInfinite).
func Compile(m *Mapping) (*CompiledMapping, error) {
	if m == nil {
		return nil, badOptionf("nil mapping")
	}
	for i, r := range m.Rules {
		if r.Source == nil || r.Target == nil {
			return nil, badOptionf("rule %d has a nil query", i)
		}
	}
	cm := &CompiledMapping{
		m:           m,
		relational:  m.IsRelational(),
		relReach:    m.IsRelationalReachability(),
		lav:         m.IsLAV(),
		gav:         m.IsGAV(),
		targetWords: make([][]string, len(m.Rules)),
		srcLabels:   m.SourceLabels(),
		tgtLabels:   m.TargetLabels(),
	}
	for i, r := range m.Rules {
		if w, ok := r.Target.AsWord(); ok {
			cm.targetWords[i] = w
			if w == nil {
				// Normalise the ε word to a non-nil empty slice so a nil
				// entry always means "not a word".
				cm.targetWords[i] = []string{}
			}
		}
	}
	return cm, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(m *Mapping) *CompiledMapping {
	cm, err := Compile(m)
	if err != nil {
		panic(err)
	}
	return cm
}

// Mapping returns the underlying mapping. Callers must not mutate it.
func (cm *CompiledMapping) Mapping() *Mapping { return cm.m }

// Rules returns the mapping's rules. Callers must not mutate the slice.
func (cm *CompiledMapping) Rules() []Rule { return cm.m.Rules }

// IsRelational reports whether every target query is a word RPQ.
func (cm *CompiledMapping) IsRelational() bool { return cm.relational }

// IsRelationalReachability reports whether every target is a word or Σ*.
func (cm *CompiledMapping) IsRelationalReachability() bool { return cm.relReach }

// IsLAV reports whether every source query is atomic.
func (cm *CompiledMapping) IsLAV() bool { return cm.lav }

// IsGAV reports whether every target query is atomic.
func (cm *CompiledMapping) IsGAV() bool { return cm.gav }

// TargetWord returns the precomputed word of rule i's target and whether the
// target is a word RPQ at all.
func (cm *CompiledMapping) TargetWord(i int) ([]string, bool) {
	w := cm.targetWords[i]
	return w, w != nil
}

// SourceLabels returns the labels used by source queries, sorted.
func (cm *CompiledMapping) SourceLabels() []string { return cm.srcLabels }

// TargetLabels returns the labels used by target queries, sorted.
func (cm *CompiledMapping) TargetLabels() []string { return cm.tgtLabels }
