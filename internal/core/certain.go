package core

import (
	"context"

	"repro/internal/datagraph"
	"repro/internal/rpq"
)

// Query is a binary query over target data graphs, evaluated under a
// data-comparison mode. ree.Query, rem.Query and the RPQ adapter below all
// implement it.
type Query interface {
	Eval(g *datagraph.Graph, mode datagraph.CompareMode) *datagraph.PairSet
}

// NavQuery adapts a purely navigational RPQ (which ignores data values and
// hence the comparison mode) to the Query interface.
type NavQuery struct{ Q *rpq.Query }

// Eval implements Query.
func (n NavQuery) Eval(g *datagraph.Graph, _ datagraph.CompareMode) *datagraph.PairSet {
	return n.Q.Eval(g)
}

// EvalFrom implements FromEvaluator, so navigational RPQs can be sharded by
// start node exactly like REE/REM queries.
func (n NavQuery) EvalFrom(g *datagraph.Graph, u int, _ datagraph.CompareMode) []int {
	return n.Q.EvalFrom(g, u)
}

// EvalRange implements RangeEvaluator: snapshot evaluation over a start
// frontier chunk with shared scratch.
func (n NavQuery) EvalRange(g *datagraph.Graph, lo, hi int, _ datagraph.CompareMode, emit func(u, v int)) {
	n.Q.EvalRange(g, lo, hi, emit)
}

// StartLabels exposes the RPQ's frontier metadata for schedulers.
func (n NavQuery) StartLabels() ([]string, bool) { return n.Q.StartLabels() }

// AcceptsEmptyPath exposes the RPQ's frontier metadata for schedulers.
func (n NavQuery) AcceptsEmptyPath() bool { return n.Q.AcceptsEmptyPath() }

// EvalFunc evaluates a query over a graph under a comparison mode. The
// certain-answer algorithms accept one so an execution engine (see
// internal/engine) can substitute a parallel, frontier-sharded evaluator
// for the sequential q.Eval; nil means q.Eval.
type EvalFunc func(g *datagraph.Graph, q Query, mode datagraph.CompareMode) *datagraph.PairSet

func runEval(eval EvalFunc, g *datagraph.Graph, q Query, mode datagraph.CompareMode) *datagraph.PairSet {
	if eval == nil {
		return q.Eval(g, mode)
	}
	return eval(g, q, mode)
}

// FilterNullAnswers keeps the pairs of res whose endpoints are non-null
// nodes of u, as Answers — the final filtering step of the Theorem 4
// algorithm, shared between the sequential path and the parallel engine.
func FilterNullAnswers(u *datagraph.Graph, res *datagraph.PairSet) *Answers {
	out := NewAnswers()
	res.Each(func(p datagraph.Pair) {
		from, to := u.Node(p.From), u.Node(p.To)
		if from.IsNullNode() || to.IsNullNode() {
			return
		}
		out.Add(Answer{From: from, To: to})
	})
	return out
}

// CertainNull computes 2ⁿ_M(Q, Gs), the certain answers over target graphs
// with SQL-null nodes (Theorem 4): build the universal solution, evaluate Q
// under SQL-null semantics, and keep only tuples without null nodes. Exact
// for queries preserved under homomorphisms (all data RPQs, Proposition 6);
// in general an underapproximation of 2_M(Q, Gs) (Section 7).
func CertainNull(m *Mapping, gs *datagraph.Graph, q Query) (*Answers, error) {
	return CertainNullEval(m, gs, q, nil)
}

// CertainNullEval is CertainNull with a pluggable evaluator.
func CertainNullEval(m *Mapping, gs *datagraph.Graph, q Query, eval EvalFunc) (*Answers, error) {
	mat, err := throwaway(m, gs)
	if err != nil {
		return nil, err
	}
	return mat.CertainNull(q, eval)
}

// CertainNull computes 2ⁿ_M(Q, Gs) on the memoized universal solution; the
// materialization variant of the package-level CertainNull.
func (mat *Materialization) CertainNull(q Query, eval EvalFunc) (*Answers, error) {
	u, err := mat.Universal()
	if err != nil {
		return nil, err
	}
	return FilterNullAnswers(u, runEval(eval, u, q, datagraph.SQLNulls)), nil
}

// CertainLeastInformative computes 2_M(Q, Gs) for REM= and REE= queries
// (Theorem 5): evaluate Q on the least informative solution and keep only
// tuples over dom(M, Gs). The caller is responsible for Q being
// equality-only (rem.IsEqualityOnly / ree.IsEqualityOnly); for queries with
// inequalities the result may overapproximate.
func CertainLeastInformative(m *Mapping, gs *datagraph.Graph, q Query) (*Answers, error) {
	return CertainLeastInformativeEval(m, gs, q, nil)
}

// CertainLeastInformativeEval is CertainLeastInformative with a pluggable
// evaluator.
func CertainLeastInformativeEval(m *Mapping, gs *datagraph.Graph, q Query, eval EvalFunc) (*Answers, error) {
	mat, err := throwaway(m, gs)
	if err != nil {
		return nil, err
	}
	return mat.CertainLeastInformative(q, eval)
}

// CertainLeastInformative computes 2_M(Q, Gs) for equality-only queries on
// the memoized least informative solution; the materialization variant of
// the package-level CertainLeastInformative.
func (mat *Materialization) CertainLeastInformative(q Query, eval EvalFunc) (*Answers, error) {
	li, err := mat.LeastInformative()
	if err != nil {
		return nil, err
	}
	res := runEval(eval, li, q, datagraph.MarkedNulls)
	return FilterDomAnswers(li, mat.DomIDs(), res), nil
}

// FilterDomAnswers keeps the pairs of res whose endpoints lie in dom, as
// Answers — the final filtering step of the Theorem 5 algorithm, shared
// between the sequential path, the parallel engine and sessions.
func FilterDomAnswers(g *datagraph.Graph, dom map[datagraph.NodeID]struct{}, res *datagraph.PairSet) *Answers {
	out := NewAnswers()
	res.Each(func(p datagraph.Pair) {
		from, to := g.Node(p.From), g.Node(p.To)
		if _, ok := dom[from.ID]; !ok {
			return
		}
		if _, ok := dom[to.ID]; !ok {
			return
		}
		out.Add(Answer{From: from, To: to})
	})
	return out
}

// ExactOptions bounds the exponential search of CertainExact.
type ExactOptions struct {
	// MaxNulls caps the number of null nodes in the universal solution;
	// beyond it CertainExact refuses (the search is exponential in this
	// number, mirroring the coNP bound of Theorem 2). Default 10.
	MaxNulls int
}

// DefaultExactOptions returns the default bounds.
func DefaultExactOptions() ExactOptions { return ExactOptions{MaxNulls: 10} }

// Normalized validates the options once, up front: a negative MaxNulls is
// ErrBadOptions, zero selects the default. Sessions call this at
// construction; the legacy free functions call it at entry — either way the
// search loops below never re-check.
func (o ExactOptions) Normalized() (ExactOptions, error) {
	if o.MaxNulls < 0 {
		return o, badOptionf("MaxNulls %d is negative", o.MaxNulls)
	}
	if o.MaxNulls == 0 {
		o.MaxNulls = DefaultExactOptions().MaxNulls
	}
	return o, nil
}

// CertainExact computes 2_M(Q, Gs) exactly for relational GSMs and queries
// closed under value-preserving homomorphisms (all data RPQs): it
// intersects Q over every canonical value specialization of the universal
// solution. Specializations assign to each null node either a value
// occurring in Gs or a fresh value shared within a class of nulls; classes
// are enumerated as set partitions in restricted-growth form, so no two
// enumerated specializations differ only by renaming. This realizes the
// coNP upper bound of Theorem 2/Proposition 2 as a deterministic
// exponential search and serves as the ground-truth oracle for the
// tractable algorithms.
func CertainExact(m *Mapping, gs *datagraph.Graph, q Query, opts ExactOptions) (*Answers, error) {
	mat, err := throwaway(m, gs)
	if err != nil {
		return nil, err
	}
	return mat.CertainExact(context.Background(), q, opts)
}

// CertainExact is the materialization variant of the package-level
// CertainExact: the universal solution, dom and the source value pool come
// from the memoized artifacts, so repeated exact queries against one (M, Gs)
// pay for solution building once. The search clones the shared universal
// solution, making concurrent calls safe, and honors ctx between
// specializations (returning an ErrCanceled wrap).
func (mat *Materialization) CertainExact(ctx context.Context, q Query, opts ExactOptions) (*Answers, error) {
	opts, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	// On a sharded materialization, check the budget from the merged
	// per-shard chase counters first: an over-budget search is rejected
	// without ever building the merged solution.
	if mat.Sharded() {
		count, err := mat.UniversalNullCountCtx(ctx)
		if err != nil {
			return nil, err
		}
		if count > opts.MaxNulls {
			return nil, budgetErrf("core: %d null nodes exceed the exact-search budget of %d",
				count, opts.MaxNulls)
		}
	}
	u, err := mat.UniversalCtx(ctx)
	if err != nil {
		return nil, err
	}
	nulls, err := mat.UniversalNullsCtx(ctx)
	if err != nil {
		return nil, err
	}
	if len(nulls) > opts.MaxNulls {
		return nil, budgetErrf("core: %d null nodes exceed the exact-search budget of %d",
			len(nulls), opts.MaxNulls)
	}
	gs := mat.gs
	dom := mat.DomIDs()
	sourceValues := mat.SourceValues()
	fresh := newFreshValues(gs, "_adv")
	// Pre-generate one fresh value per potential class.
	freshPool := make([]datagraph.Value, len(nulls))
	for i := range freshPool {
		freshPool[i] = fresh.next()
	}

	// One mutable copy of the universal solution, specialized in place per
	// candidate (like CertainExactPair): cloning and re-indexing the graph
	// once per enumerated specialization would dominate the search. The
	// clone also isolates this call from the shared memoized solution.
	spec := u.Clone()
	nullIdx := make([]int, len(nulls))
	for i, id := range nulls {
		nullIdx[i], _ = spec.IndexOf(id)
	}
	assign := make([]datagraph.Value, len(nulls))

	var result *Answers
	var ctxErr error
	evalOne := func() bool { // returns false to stop early (result empty)
		if err := ctx.Err(); err != nil {
			ctxErr = Canceled(err)
			return false
		}
		for i, idx := range nullIdx {
			spec.SetValue(idx, assign[i])
		}
		res := q.Eval(spec, datagraph.MarkedNulls)
		ans := NewAnswers()
		res.Each(func(p datagraph.Pair) {
			from, to := spec.Node(p.From), spec.Node(p.To)
			if _, ok := dom[from.ID]; !ok {
				return
			}
			if _, ok := dom[to.ID]; !ok {
				return
			}
			// Report the original (source) values: dom nodes keep them.
			ans.Add(Answer{From: from, To: to})
		})
		if result == nil {
			result = ans
		} else {
			result.Intersect(ans)
		}
		return result.Len() > 0
	}

	// Enumerate: each null takes a source value, an already-open fresh
	// class, or opens the next fresh class (restricted growth).
	var rec func(i, classesOpen int) bool
	rec = func(i, classesOpen int) bool {
		if i == len(nulls) {
			return evalOne()
		}
		for _, v := range sourceValues {
			assign[i] = v
			if !rec(i+1, classesOpen) {
				return false
			}
		}
		for c := 0; c <= classesOpen; c++ {
			assign[i] = freshPool[c]
			open := classesOpen
			if c == classesOpen {
				open++
			}
			if !rec(i+1, open) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	if result == nil {
		result = NewAnswers()
	}
	return result, nil
}

// FromEvaluator is an optional fast path implemented by queries that can
// evaluate from a single start node (ree.Query and rem.Query do).
type FromEvaluator interface {
	EvalFrom(g *datagraph.Graph, u int, mode datagraph.CompareMode) []int
}

// RangeEvaluator is the batched refinement of FromEvaluator: evaluate every
// start node in [lo, hi) against the graph's interned snapshot, reusing
// scratch across the whole chunk and emitting each answer pair once. The
// engine's frontier shards prefer it over per-node EvalFrom calls.
// ree.Query, rem.Query and NavQuery implement it.
type RangeEvaluator interface {
	EvalRange(g *datagraph.Graph, lo, hi int, mode datagraph.CompareMode, emit func(u, v int))
}

// CertainExactPair decides whether the single pair (from, to) is a certain
// answer, with the same semantics and search as CertainExact but evaluating
// each specialization only from the asked node and stopping at the first
// counterexample specialization. This is the oracle used by the
// coNP-hardness experiments, where only one pair matters.
func CertainExactPair(m *Mapping, gs *datagraph.Graph, q Query,
	from, to datagraph.NodeID, opts ExactOptions) (bool, error) {

	mat, err := throwaway(m, gs)
	if err != nil {
		return false, err
	}
	return mat.CertainExactPair(context.Background(), q, from, to, opts)
}

// CertainExactPair is the materialization variant of the package-level
// CertainExactPair, sharing the memoized universal solution and dom.
func (mat *Materialization) CertainExactPair(ctx context.Context, q Query,
	from, to datagraph.NodeID, opts ExactOptions) (bool, error) {

	opts, err := opts.Normalized()
	if err != nil {
		return false, err
	}
	u, err := mat.UniversalCtx(ctx)
	if err != nil {
		return false, err
	}
	dom := mat.DomIDs()
	if _, ok := dom[from]; !ok {
		return false, nil
	}
	if _, ok := dom[to]; !ok {
		return false, nil
	}
	nulls, err := mat.UniversalNullsCtx(ctx)
	if err != nil {
		return false, err
	}
	if len(nulls) > opts.MaxNulls {
		return false, budgetErrf("core: %d null nodes exceed the exact-search budget of %d",
			len(nulls), opts.MaxNulls)
	}
	gs := mat.gs
	sourceValues := mat.SourceValues()
	fresh := newFreshValues(gs, "_adv")
	freshPool := make([]datagraph.Value, len(nulls))
	for i := range freshPool {
		freshPool[i] = fresh.next()
	}
	fe, fastPath := q.(FromEvaluator)
	// One mutable copy of the universal solution, specialised in place per
	// candidate (a clone per candidate dominates the search cost otherwise).
	spec := u.Clone()
	nullIdx := make([]int, len(nulls))
	for i, id := range nulls {
		nullIdx[i], _ = spec.IndexOf(id)
	}
	fi, _ := spec.IndexOf(from)
	ti, _ := spec.IndexOf(to)
	assign := make([]datagraph.Value, len(nulls))

	var ctxErr error
	holds := func() bool {
		if err := ctx.Err(); err != nil {
			ctxErr = Canceled(err)
			return false // unwind the search; the parked error wins below
		}
		for i, idx := range nullIdx {
			spec.SetValue(idx, assign[i])
		}
		if fastPath {
			for _, v := range fe.EvalFrom(spec, fi, datagraph.MarkedNulls) {
				if v == ti {
					return true
				}
			}
			return false
		}
		return q.Eval(spec, datagraph.MarkedNulls).Has(fi, ti)
	}

	certain := true
	var rec func(i, classesOpen int) bool // returns false to stop (counterexample found)
	rec = func(i, classesOpen int) bool {
		if i == len(nulls) {
			if !holds() {
				certain = false
				return false
			}
			return true
		}
		for _, v := range sourceValues {
			assign[i] = v
			if !rec(i+1, classesOpen) {
				return false
			}
		}
		for c := 0; c <= classesOpen; c++ {
			assign[i] = freshPool[c]
			open := classesOpen
			if c == classesOpen {
				open++
			}
			if !rec(i+1, open) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	if ctxErr != nil {
		return false, ctxErr
	}
	return certain, nil
}

// SpecializationCount returns how many canonical specializations
// CertainExact would enumerate for f nulls and k source values — used by
// the experiments to report search-space sizes.
func SpecializationCount(f, k int) int {
	var rec func(i, open int) int
	rec = func(i, open int) int {
		if i == f {
			return 1
		}
		total := k * rec(i+1, open)
		for c := 0; c <= open; c++ {
			o := open
			if c == open {
				o++
			}
			total += rec(i+1, o)
		}
		return total
	}
	return rec(0, 0)
}
