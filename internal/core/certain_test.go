package core

import (
	"testing"

	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/rpq"
)

// selfLoopSource builds x -a-> x with value "vx".
func selfLoopSource(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("x", datagraph.V("vx"))
	g.MustAddEdge("x", "a", "x")
	return g
}

func TestCertainNullNavigational(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"), R("likes", "l"))
	// Navigational query f f from ann reaches bob in every solution.
	q := NavQuery{Q: rpq.MustParse("f f")}
	ans, err := CertainNull(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Has("ann", "bob") || ans.Len() != 1 {
		t.Fatalf("certain = %v", ans)
	}
	// f alone ends at a null node: no certain answers.
	ans2, err := CertainNull(m, gs, NavQuery{Q: rpq.MustParse("f")})
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Len() != 0 {
		t.Fatalf("f should have no null-free answers: %v", ans2)
	}
}

func TestCertainNullDataQuery(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"))
	// (f f)!=: endpoints ann(30), bob(25) differ — certain.
	q := ree.MustParseQuery("(f f)!=")
	ans, err := CertainNull(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Has("ann", "bob") {
		t.Fatalf("(f f)!= should be certain: %v", ans)
	}
	// (f f)=: endpoints differ — not certain (and in fact never true).
	ans2, err := CertainNull(m, gs, ree.MustParseQuery("(f f)="))
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Len() != 0 {
		t.Fatalf("(f f)= should be empty: %v", ans2)
	}
	// f=: would compare a constant with a null — never true under SQL
	// semantics, and indeed not certain (the null can be anything).
	ans3, err := CertainNull(m, gs, ree.MustParseQuery("f="))
	if err != nil {
		t.Fatal(err)
	}
	if ans3.Len() != 0 {
		t.Fatalf("f= should be empty: %v", ans3)
	}
}

func TestCertainExactAgreesOnSimpleCases(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"))
	for _, expr := range []string{"(f f)!=", "(f f)=", "f="} {
		q := ree.MustParseQuery(expr)
		exact, err := CertainExact(m, gs, q, DefaultExactOptions())
		if err != nil {
			t.Fatal(err)
		}
		null, err := CertainNull(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		// Underapproximation: 2ⁿ ⊆ 2.
		if !null.SubsetOf(exact) {
			t.Errorf("%s: CertainNull ⊄ CertainExact: %v vs %v", expr, null, exact)
		}
	}
}

// The Remark 1 gap: a query whose certain answer depends on a null node
// being *equal to itself*. SQL nulls miss it; the exact semantics and the
// least-informative solution (Theorem 5) both find it.
func TestApproximationGapSelfEquality(t *testing.T) {
	gs := selfLoopSource(t)
	m := NewMapping(R("a", "b b"))
	// Universal solution: x -b-> n -b-> x (one null n).
	// Q = b (b b)= b from x to x: any solution contains
	// x b v b x b v b x whose positions 1 and 3 are the same node v —
	// values equal. Certain under the exact semantics.
	q := ree.MustParseQuery("b (b b)= b")
	exact, err := CertainExact(m, gs, q, DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Has("x", "x") {
		t.Fatalf("exact semantics should certify (x,x): %v", exact)
	}
	// Theorem 5: least-informative computes it too (query is REE=).
	li, err := CertainLeastInformative(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if !li.Has("x", "x") {
		t.Fatalf("least-informative should certify (x,x): %v", li)
	}
	// SQL nulls miss it: n = n is not true under SQL semantics.
	null, err := CertainNull(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if null.Has("x", "x") {
		t.Fatal("SQL-null semantics should miss the self-equality answer")
	}
}

func TestCertainLeastInformativeEqualityOnly(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"), R("likes", "l"))
	// REE= query l= : ann likes p1 and bob likes p1; values differ from p1's
	// so l= is never certain.
	li, err := CertainLeastInformative(m, gs, ree.MustParseQuery("l="))
	if err != nil {
		t.Fatal(err)
	}
	if li.Len() != 0 {
		t.Fatalf("l= should have no certain answers: %v", li)
	}
	// Navigational f f is certain (ann, bob).
	li2, err := CertainLeastInformative(m, gs, ree.MustParseQuery("f f"))
	if err != nil {
		t.Fatal(err)
	}
	if !li2.Has("ann", "bob") {
		t.Fatalf("f f should be certain: %v", li2)
	}
	// Agreement with the exact oracle on REE= queries (Theorem 5).
	for _, expr := range []string{"l=", "f f", "(f f)=", "f f | l"} {
		q := ree.MustParseQuery(expr)
		if !ree.IsEqualityOnly(q.Expr()) {
			t.Fatalf("%s should be REE=", expr)
		}
		exact, err := CertainExact(m, gs, q, DefaultExactOptions())
		if err != nil {
			t.Fatal(err)
		}
		liAns, err := CertainLeastInformative(m, gs, q)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Equal(liAns) {
			t.Errorf("%s: Theorem 5 violated: exact %v vs least-informative %v", expr, exact, liAns)
		}
	}
}

func TestCertainWithREMQuery(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"))
	// REM query ↓x.((f f)[x≠]) ≡ (f f)!=.
	q := rem.MustParseQuery("!x.((f f)[x!=])")
	ans, err := CertainNull(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Has("ann", "bob") {
		t.Fatalf("REM inequality should be certain: %v", ans)
	}
	exact, err := CertainExact(m, gs, q, DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(exact) {
		t.Fatalf("REM: null %v vs exact %v", ans, exact)
	}
}

func TestCertainExactBudget(t *testing.T) {
	// A mapping generating many nulls must be refused beyond the budget.
	gs := datagraph.New()
	for i := 0; i < 3; i++ {
		gs.MustAddNode(datagraph.NodeID(string(rune('a'+i))), datagraph.V("v"))
	}
	for i := 0; i < 2; i++ {
		gs.MustAddEdge(datagraph.NodeID(string(rune('a'+i))), "e", datagraph.NodeID(string(rune('a'+i+1))))
	}
	m := NewMapping(R("e", "p q r")) // 2 nulls per source edge = 4 nulls
	if _, err := CertainExact(m, gs, ree.MustParseQuery("p"), ExactOptions{MaxNulls: 3}); err == nil {
		t.Fatal("budget must be enforced")
	}
	if _, err := CertainExact(m, gs, ree.MustParseQuery("p q r"), ExactOptions{MaxNulls: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecializationCount(t *testing.T) {
	cases := []struct{ f, k, want int }{
		{0, 0, 1},
		{1, 0, 1}, // one null: one fresh class
		{2, 0, 2}, // Bell(2)
		{3, 0, 5}, // Bell(3)
		{1, 2, 3}, // two source values + one fresh class
		// f=2, k=1: null1 ∈ {s, f1}; null1=s → null2 ∈ {s, f1} (2);
		// null1=f1 → null2 ∈ {s, f1, f2} (3); total 5.
		{2, 1, 5},
	}
	for _, c := range cases {
		if got := SpecializationCount(c.f, c.k); got != c.want {
			t.Errorf("SpecializationCount(%d, %d) = %d, want %d", c.f, c.k, got, c.want)
		}
	}
}

func TestCertainExactEarlyStopAndEmpty(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"))
	// A query that never matches: certain answers empty, early stop path.
	ans, err := CertainExact(m, gs, ree.MustParseQuery("zz"), DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Fatalf("impossible query should be empty: %v", ans)
	}
}

func TestCertainExactPairAgreesWithFullSearch(t *testing.T) {
	gs := sourceGraph(t)
	m := NewMapping(R("knows", "f f"), R("likes", "l"))
	for _, expr := range []string{"(f f)!=", "(f f)=", "f f", "l", "f= f"} {
		q := ree.MustParseQuery(expr)
		full, err := CertainExact(m, gs, q, DefaultExactOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range Dom(m, gs) {
			for _, b := range Dom(m, gs) {
				got, err := CertainExactPair(m, gs, q, a.ID, b.ID, DefaultExactOptions())
				if err != nil {
					t.Fatal(err)
				}
				if got != full.Has(a.ID, b.ID) {
					t.Errorf("%s (%s,%s): pair %v vs full %v", expr, a.ID, b.ID, got, full.Has(a.ID, b.ID))
				}
			}
		}
	}
	// Non-dom endpoints are never certain.
	got, err := CertainExactPair(m, gs, ree.MustParseQuery("f f"), "p1", "zz", DefaultExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("missing endpoint cannot be certain")
	}
	// Budget enforcement.
	if _, err := CertainExactPair(m, gs, ree.MustParseQuery("f f"), "ann", "bob",
		ExactOptions{MaxNulls: -1}); err == nil {
		// MaxNulls -1 means fewer than the single null present... -1 < 1.
		t.Fatal("budget must be enforced")
	}
}

func TestAnswersSetOps(t *testing.T) {
	a := NewAnswers()
	n1 := datagraph.Node{ID: "x", Value: datagraph.V("1")}
	n2 := datagraph.Node{ID: "y", Value: datagraph.V("2")}
	a.Add(Answer{From: n1, To: n2})
	a.Add(Answer{From: n2, To: n1})
	b := NewAnswers()
	b.Add(Answer{From: n1, To: n2})
	if a.Equal(b) || !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("set relations wrong")
	}
	a.Intersect(b)
	if !a.Equal(b) || a.Len() != 1 {
		t.Fatal("intersection wrong")
	}
	if a.String() == "" || a.Sorted()[0].String() == "" {
		t.Fatal("string rendering empty")
	}
}
