package core

import (
	"sort"

	"repro/internal/rex"
	"repro/internal/rpq"
)

func rexLabels(q *rpq.Query) []string { return rex.Labels(q.Expr()) }

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
