package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datagraph"
)

// Answer is one certain-answer tuple: a pair of source nodes (id, value).
type Answer struct {
	From, To datagraph.Node
}

func (a Answer) String() string {
	return fmt.Sprintf("(%s, %s)", a.From, a.To)
}

// Answers is a set of certain answers with deterministic ordering.
type Answers struct {
	m map[[2]datagraph.NodeID]Answer
}

// NewAnswers returns an empty answer set.
func NewAnswers() *Answers { return &Answers{m: make(map[[2]datagraph.NodeID]Answer)} }

// Add inserts an answer.
func (a *Answers) Add(ans Answer) { a.m[[2]datagraph.NodeID{ans.From.ID, ans.To.ID}] = ans }

// Has reports whether the pair of ids is present.
func (a *Answers) Has(from, to datagraph.NodeID) bool {
	_, ok := a.m[[2]datagraph.NodeID{from, to}]
	return ok
}

// Len returns the number of answers.
func (a *Answers) Len() int { return len(a.m) }

// Sorted returns answers ordered by (from, to) id.
func (a *Answers) Sorted() []Answer {
	out := make([]Answer, 0, len(a.m))
	for _, ans := range a.m {
		out = append(out, ans)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From.ID != out[j].From.ID {
			return out[i].From.ID < out[j].From.ID
		}
		return out[i].To.ID < out[j].To.ID
	})
	return out
}

// Equal reports set equality on id pairs.
func (a *Answers) Equal(b *Answers) bool {
	if a.Len() != b.Len() {
		return false
	}
	for k := range a.m {
		if _, ok := b.m[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports a ⊆ b on id pairs.
func (a *Answers) SubsetOf(b *Answers) bool {
	for k := range a.m {
		if _, ok := b.m[k]; !ok {
			return false
		}
	}
	return true
}

// Intersect keeps only answers also present in b.
func (a *Answers) Intersect(b *Answers) {
	for k := range a.m {
		if _, ok := b.m[k]; !ok {
			delete(a.m, k)
		}
	}
}

func (a *Answers) String() string {
	parts := make([]string, 0, a.Len())
	for _, ans := range a.Sorted() {
		parts = append(parts, ans.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
