package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/datagraph"
	"repro/internal/fault"
)

// This file is the sharded chase: the Section 7/8 solution builders run per
// shard in parallel, producing solution *fragments* whose union is
// node-for-node and edge-for-edge the sequential solution. Determinism is
// the load-bearing property — fresh node ids and fresh values must come out
// byte-for-byte identical to buildSolution's, or the sharded and
// single-shard certain-answer paths would disagree on the merged view. The
// trick is a sequential prefix pass that walks rules and sorted pairs in
// the exact order of the sequential chase, assigning each pair the
// fresh-counter value it would have observed; the parallel per-shard phase
// then reproduces ids from those bases with plain arithmetic.

// ShardOptions configures the sharded materialization path.
type ShardOptions struct {
	// Shards is the number of solution shards. 1 selects the single-shard
	// path; 0 defaults to 1.
	Shards int
	// Policy is the node→shard partitioning policy for the source graph.
	Policy datagraph.PartitionPolicy
}

// Normalized validates the options, applying defaults: a zero shard count
// becomes 1. A negative shard count or an unknown policy is an
// ErrBadOptions.
func (o ShardOptions) Normalized() (ShardOptions, error) {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Shards < 1 {
		return o, badOptionf("shard count %d (want >= 1)", o.Shards)
	}
	switch o.Policy {
	case datagraph.PartitionHash, datagraph.PartitionRange:
	default:
		return o, badOptionf("unknown partition policy %d", int(o.Policy))
	}
	return o, nil
}

// SolutionShard is one fragment of a sharded solution: a real solution
// graph restricted to the chase output of the pairs whose From endpoint the
// shard owns, plus ghost copies of remote dom targets. Fresh chase nodes
// are always owned (a chase path lives entirely in its pair's shard except
// for its final hop), so every duplicate chase edge collides inside a
// single fragment and the per-fragment dedup reproduces the merged dedup
// exactly.
type SolutionShard struct {
	// G is the fragment graph, frozen at build time.
	G *datagraph.Graph
	// GhostOwner maps fragment-local dense index -> owning shard, or -1
	// when this shard owns the node. Ghosts are always dom nodes.
	GhostOwner []int32
	// OwnedDom lists the fragment-local indices of owned dom(M, Gs) nodes,
	// ascending — the start frontier for sharded certain-answer evaluation.
	OwnedDom []int32
	// Nulls counts the fresh intermediate nodes this shard's chase created
	// (the per-shard share of the exact-search null budget).
	Nulls int
}

// ShardedSolution is the sharded counterpart of a materialized solution:
// per-shard fragments plus the partition that routed the chase.
type ShardedSolution struct {
	// Part is the source-graph partition; chase pairs are routed to the
	// shard owning their From endpoint.
	Part *datagraph.Partition
	// Shards holds the fragments, indexed by shard.
	Shards []*SolutionShard
	// TotalNulls is the sum of the per-shard fresh-node counters — equal to
	// the null-node count of the merged universal solution.
	TotalNulls int
}

// NumShards returns the shard count.
func (ss *ShardedSolution) NumShards() int { return len(ss.Shards) }

// buildShardedSolution runs the chase sharded: a sequential prefix pass
// bins (rule, pair) jobs to shards and reproduces the sequential
// fault-injection and ε-validation order, then a bounded goroutine pool
// materialises one fragment per shard.
func (mat *Materialization) buildShardedSolution(ctx context.Context, style solutionStyle) (*ShardedSolution, error) {
	if !mat.cm.IsRelational() {
		return nil, fmt.Errorf("core: %w", ErrInfinite)
	}
	gs := mat.gs
	part := mat.SourcePartition()
	k := part.NumShards()
	rules := mat.cm.Rules()
	pairsByRule := mat.SourcePairs()
	words := make([][]string, len(rules))
	for ri := range rules {
		words[ri], _ = mat.cm.TargetWord(ri)
	}

	// Sequential prefix pass, in the exact (rule, sorted-pair) order of
	// buildSolution: per-rule fault points fire in the same order, ε rules
	// fail with the identical first error, and each path-producing pair
	// records the fresh-counter value the sequential chase would hold when
	// reaching it.
	type pairJob struct {
		ri       int
		from, to int
		base     int // fresh counter before this pair's intermediates
	}
	bins := make([][]pairJob, k)
	counter := 0
	for ri, r := range rules {
		if err := fault.Hit("core.chase"); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, Canceled(err)
		}
		word := words[ri]
		pairs := pairsByRule[ri].Sorted()
		if len(word) == 0 {
			for _, p := range pairs {
				from, to := gs.Node(p.From), gs.Node(p.To)
				if from.ID != to.ID {
					return nil, fmt.Errorf(
						"core: rule %s requires %s = %s via ε: %w", r, from.ID, to.ID, ErrNoSolution)
				}
			}
			continue
		}
		for _, p := range pairs {
			s := part.ShardOf(p.From)
			bins[s] = append(bins[s], pairJob{ri: ri, from: p.From, to: p.To, base: counter})
			counter += len(word) - 1
		}
	}

	// Dom nodes binned to their owners in global dense order, so each
	// fragment's owned-dom prefix is ascending.
	domBins := make([][]int, k)
	for _, n := range mat.DomNodes() {
		i, _ := gs.IndexOf(n.ID)
		s := part.ShardOf(i)
		domBins[s] = append(domBins[s], i)
	}

	idPrefix := newFreshIDs(gs, "_n").prefix
	valPrefix := newFreshValues(gs, "_fresh").prefix

	ss := &ShardedSolution{Part: part, Shards: make([]*SolutionShard, k), TotalNulls: counter}
	forEachShard(k, func(s int) {
		freshN, edges := 0, 0
		for _, pj := range bins[s] {
			freshN += len(words[pj.ri]) - 1
			edges += len(words[pj.ri])
		}
		g := datagraph.NewSized(len(domBins[s])+freshN+len(bins[s]), edges)
		sh := &SolutionShard{G: g}
		for _, gi := range domBins[s] {
			n := gs.Node(gi)
			g.MustAddNode(n.ID, n.Value)
			sh.GhostOwner = append(sh.GhostOwner, -1)
			sh.OwnedDom = append(sh.OwnedDom, int32(len(sh.GhostOwner)-1))
		}
		for _, pj := range bins[s] {
			word := words[pj.ri]
			to := gs.Node(pj.to)
			if _, ok := g.IndexOf(to.ID); !ok {
				g.MustAddNode(to.ID, to.Value)
				sh.GhostOwner = append(sh.GhostOwner, int32(part.ShardOf(pj.to)))
			}
			prev := gs.Node(pj.from).ID
			for i := 0; i < len(word)-1; i++ {
				seq := pj.base + i + 1
				v := datagraph.Null()
				if style == solutionFresh {
					v = datagraph.V(valPrefix + strconv.Itoa(seq))
				}
				id := datagraph.NodeID(idPrefix + strconv.Itoa(seq))
				g.MustAddNode(id, v)
				sh.GhostOwner = append(sh.GhostOwner, -1)
				g.MustAddEdge(prev, word[i], id)
				prev = id
			}
			g.MustAddEdge(prev, word[len(word)-1], to.ID)
			sh.Nulls += len(word) - 1
		}
		g.Freeze()
		ss.Shards[s] = sh
	})
	return ss, nil
}

// forEachShard runs fn(s) for every shard over a bounded goroutine pool.
func forEachShard(shards int, fn func(s int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}
