package core

import (
	"errors"
	"fmt"
)

// The sentinel errors of the certain-answer API. Every error returned by the
// solution builders, the certain-answer algorithms and the evaluation engine
// wraps exactly one of these, so callers dispatch with errors.Is instead of
// matching message strings:
//
//	ans, err := s.CertainExact(ctx, q)
//	switch {
//	case errors.Is(err, core.ErrBudgetExceeded): // raise WithMaxNulls and retry
//	case errors.Is(err, core.ErrCanceled):       // deadline hit; ctx.Err() is wrapped too
//	}
var (
	// ErrInfinite reports that no finite universal solution exists: the
	// mapping is not relational (Section 6), so solution building and the
	// solution-based algorithms are undefined.
	ErrInfinite = errors.New("no finite universal solution: mapping is not relational")

	// ErrNoSolution reports that the mapping admits no solution at all for
	// this source graph (an ε-target rule demands two distinct nodes be one).
	ErrNoSolution = errors.New("no solution exists")

	// ErrBudgetExceeded reports that a bounded exponential search (exact
	// specialization enumeration, path enumeration, Proposition 5 word
	// choices) hit its configured budget before finishing.
	ErrBudgetExceeded = errors.New("search budget exceeded")

	// ErrCanceled reports that evaluation stopped because the context was
	// canceled or its deadline expired; the context's own error is wrapped
	// alongside, so errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("evaluation canceled")

	// ErrBadOptions reports an invalid option value (negative budget,
	// negative worker count), detected at session/option construction.
	ErrBadOptions = errors.New("invalid options")

	// ErrSourceMutated reports that the source graph changed underneath a
	// session whose artifacts were frozen at construction time.
	ErrSourceMutated = errors.New("source graph mutated after session creation")
)

// Canceled wraps a context error so both ErrCanceled and the original
// context sentinel match under errors.Is. A nil err returns nil.
func Canceled(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

// badOptionf builds an ErrBadOptions-wrapping error.
func badOptionf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadOptions, fmt.Sprintf(format, args...))
}

// budgetErrf builds an ErrBudgetExceeded-wrapping error.
func budgetErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBudgetExceeded, fmt.Sprintf(format, args...))
}
