// Package core implements the paper's primary contribution: graph schema
// mappings over data graphs (Section 4), solution building (Sections 7-8)
// and certain-answer computation (Sections 5-8).
//
// A graph schema mapping (GSM) M is a set of pairs of RPQs (q, q′) with q
// over the source alphabet and q′ over the target alphabet; a target graph
// Gt is a solution for Gs when q(Gs) ⊆ q′(Gt) for every rule — where the
// pairs are pairs of *nodes* (id, value), so both ids and data values must
// be reproduced in the target (Definition 1).
package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/datagraph"
	"repro/internal/rpq"
)

// Rule is a mapping rule (q, q′).
type Rule struct {
	Source *rpq.Query
	Target *rpq.Query
}

func (r Rule) String() string {
	return fmt.Sprintf("%s -> %s", r.Source.String(), r.Target.String())
}

// Mapping is a graph schema mapping: a finite set of rules.
type Mapping struct {
	Rules []Rule
}

// NewMapping builds a mapping from rules.
func NewMapping(rules ...Rule) *Mapping { return &Mapping{Rules: rules} }

// R is a convenience constructor parsing both sides in rex syntax.
func R(source, target string) Rule {
	return Rule{Source: rpq.MustParse(source), Target: rpq.MustParse(target)}
}

// IsLAV reports whether every source query is atomic (a single letter),
// the local-as-view restriction used in virtual data integration (§4).
func (m *Mapping) IsLAV() bool {
	for _, r := range m.Rules {
		if r.Source.Kind() != rpq.KindAtomic {
			return false
		}
	}
	return true
}

// IsGAV reports whether every target query is atomic (global-as-view).
func (m *Mapping) IsGAV() bool {
	for _, r := range m.Rules {
		if r.Target.Kind() != rpq.KindAtomic {
			return false
		}
	}
	return true
}

// IsRelational reports whether every target query is a word RPQ
// (Definition 3) — the class for which solutions can be built and query
// answering is decidable (Section 6).
func (m *Mapping) IsRelational() bool {
	for _, r := range m.Rules {
		if _, ok := r.Target.AsWord(); !ok {
			return false
		}
	}
	return true
}

// IsRelationalReachability reports whether every target query is a word RPQ
// or the reachability query Σ* — the minimal non-relational extension for
// which Theorem 1 proves undecidability.
func (m *Mapping) IsRelationalReachability() bool {
	for _, r := range m.Rules {
		if _, ok := r.Target.AsWord(); ok {
			continue
		}
		if r.Target.Kind() == rpq.KindReachability {
			continue
		}
		return false
	}
	return true
}

// SourceLabels returns the labels used by source queries, sorted.
func (m *Mapping) SourceLabels() []string {
	set := map[string]struct{}{}
	for _, r := range m.Rules {
		for _, l := range labelsOf(r.Source) {
			set[l] = struct{}{}
		}
	}
	return sortedKeys(set)
}

// TargetLabels returns the labels used by target queries, sorted.
func (m *Mapping) TargetLabels() []string {
	set := map[string]struct{}{}
	for _, r := range m.Rules {
		for _, l := range labelsOf(r.Target) {
			set[l] = struct{}{}
		}
	}
	return sortedKeys(set)
}

func labelsOf(q *rpq.Query) []string {
	return rexLabels(q)
}

// Satisfies reports whether (Gs, Gt) ⊨ M: for each rule, every pair of
// source nodes in q(Gs) appears — same ids, same data values — as a pair in
// q′(Gt).
func (m *Mapping) Satisfies(gs, gt *datagraph.Graph) bool {
	ok, _ := m.Check(gs, gt)
	return ok
}

// Check is Satisfies with an explanation of the first violation found.
func (m *Mapping) Check(gs, gt *datagraph.Graph) (bool, string) {
	for _, r := range m.Rules {
		src := r.Source.Eval(gs)
		var tgt *datagraph.PairSet
		for _, p := range src.Sorted() {
			un := gs.Node(p.From)
			vn := gs.Node(p.To)
			ui, ok := gt.IndexOf(un.ID)
			if !ok {
				return false, fmt.Sprintf("rule %s: node %s missing from target", r, un.ID)
			}
			vi, ok := gt.IndexOf(vn.ID)
			if !ok {
				return false, fmt.Sprintf("rule %s: node %s missing from target", r, vn.ID)
			}
			if gt.Node(ui).Value != un.Value {
				return false, fmt.Sprintf("rule %s: node %s has value %s in target, want %s",
					r, un.ID, gt.Node(ui).Value, un.Value)
			}
			if gt.Node(vi).Value != vn.Value {
				return false, fmt.Sprintf("rule %s: node %s has value %s in target, want %s",
					r, vn.ID, gt.Node(vi).Value, vn.Value)
			}
			if tgt == nil {
				tgt = r.Target.Eval(gt)
			}
			if !tgt.Has(ui, vi) {
				return false, fmt.Sprintf("rule %s: pair (%s, %s) not connected in target", r, un.ID, vn.ID)
			}
		}
	}
	return true, ""
}

// String renders the mapping in the text format accepted by ParseMapping.
func (m *Mapping) String() string {
	var b strings.Builder
	for _, r := range m.Rules {
		fmt.Fprintf(&b, "rule %s\n", r)
	}
	return b.String()
}

// ParseMapping reads a mapping in the line-based format:
//
//	# comment
//	rule <source rpq> -> <target rpq>
//
// Both sides use rex concrete syntax.
func ParseMapping(r io.Reader) (*Mapping, error) {
	m := &Mapping{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body, found := strings.CutPrefix(line, "rule ")
		if !found {
			return nil, fmt.Errorf("core: line %d: expected 'rule <src> -> <tgt>'", lineNo)
		}
		parts := strings.SplitN(body, "->", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("core: line %d: missing '->'", lineNo)
		}
		src, err := rpq.Parse(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("core: line %d: source: %v", lineNo, err)
		}
		tgt, err := rpq.Parse(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("core: line %d: target: %v", lineNo, err)
		}
		m.Rules = append(m.Rules, Rule{Source: src, Target: tgt})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Rules) == 0 {
		return nil, fmt.Errorf("core: mapping has no rules")
	}
	return m, nil
}

// ParseMappingString is ParseMapping over a string.
func ParseMappingString(s string) (*Mapping, error) {
	return ParseMapping(strings.NewReader(s))
}
