package core

import (
	"fmt"

	"repro/internal/datagraph"
)

// This file implements the solution-building procedures of Sections 7 and 8:
// dom(M, Gs), universal solutions populated with SQL-null nodes, and least
// informative solutions populated with fresh distinct data values.

// Dom computes dom(M, Gs): all source nodes appearing in some query result
// q(Gs) for (q, q′) ∈ M, in dense-index order of Gs.
func Dom(m *Mapping, gs *datagraph.Graph) []datagraph.Node {
	seen := make([]bool, gs.NumNodes())
	for _, r := range m.Rules {
		r.Source.Eval(gs).Each(func(p datagraph.Pair) {
			seen[p.From] = true
			seen[p.To] = true
		})
	}
	var out []datagraph.Node
	for i, ok := range seen {
		if ok {
			out = append(out, gs.Node(i))
		}
	}
	return out
}

// DomIDs returns the ids of Dom as a set.
func DomIDs(m *Mapping, gs *datagraph.Graph) map[datagraph.NodeID]struct{} {
	out := make(map[datagraph.NodeID]struct{})
	for _, n := range Dom(m, gs) {
		out[n.ID] = struct{}{}
	}
	return out
}

// freshIDs hands out node ids that cannot collide with ids already present
// in a graph.
type freshIDs struct {
	prefix string
	n      int
}

func newFreshIDs(g *datagraph.Graph, base string) *freshIDs {
	prefix := base
	for {
		collision := false
		for _, n := range g.Nodes() {
			if len(n.ID) >= len(prefix) && string(n.ID[:len(prefix)]) == prefix {
				collision = true
				break
			}
		}
		if !collision {
			return &freshIDs{prefix: prefix}
		}
		prefix += "_"
	}
}

func (f *freshIDs) next() datagraph.NodeID {
	f.n++
	return datagraph.NodeID(fmt.Sprintf("%s%d", f.prefix, f.n))
}

// freshValues hands out data values distinct from every value in a graph
// and from each other.
type freshValues struct {
	prefix string
	n      int
}

func newFreshValues(g *datagraph.Graph, base string) *freshValues {
	prefix := base
	for {
		collision := false
		for _, v := range g.Values() {
			raw := v.Raw()
			if len(raw) >= len(prefix) && raw[:len(prefix)] == prefix {
				collision = true
				break
			}
		}
		if !collision {
			return &freshValues{prefix: prefix}
		}
		prefix += "_"
	}
}

func (f *freshValues) next() datagraph.Value {
	f.n++
	return datagraph.V(fmt.Sprintf("%s%d", f.prefix, f.n))
}

// UniversalSolution builds the Section 7 universal solution for a relational
// GSM: dom(M, Gs) is copied, and for each rule (q, a₁…aₖ) and each pair
// (v, v′) ∈ q(Gs), a path v a₁ n₁ a₂ … aₖ v′ is added whose k−1 intermediate
// nodes are fresh null nodes (value n). It errors if the mapping is not
// relational, or if a rule with target ε demands v = v′ for a pair with
// v ≠ v′ (in which case no solution exists at all).
func UniversalSolution(m *Mapping, gs *datagraph.Graph) (*datagraph.Graph, error) {
	return buildSolution(m, gs, solutionNulls)
}

// LeastInformativeSolution builds the Section 8 least informative solution:
// identical to the universal solution except that the fresh intermediate
// nodes carry fresh, pairwise distinct data values instead of nulls.
func LeastInformativeSolution(m *Mapping, gs *datagraph.Graph) (*datagraph.Graph, error) {
	return buildSolution(m, gs, solutionFresh)
}

type solutionStyle int

const (
	solutionNulls solutionStyle = iota
	solutionFresh
)

func buildSolution(m *Mapping, gs *datagraph.Graph, style solutionStyle) (*datagraph.Graph, error) {
	if !m.IsRelational() {
		return nil, fmt.Errorf("core: solutions are defined for relational mappings only")
	}
	gt := datagraph.New()
	// Step 1: copy dom(M, Gs).
	for _, n := range Dom(m, gs) {
		gt.MustAddNode(n.ID, n.Value)
	}
	ids := newFreshIDs(gs, "_n")
	vals := newFreshValues(gs, "_fresh")
	newNodeValue := func() datagraph.Value {
		if style == solutionNulls {
			return datagraph.Null()
		}
		return vals.next()
	}
	// Step 2: materialise a path for each rule and pair.
	for _, r := range m.Rules {
		word, _ := r.Target.AsWord()
		pairs := r.Source.Eval(gs).Sorted()
		for _, p := range pairs {
			from := gs.Node(p.From)
			to := gs.Node(p.To)
			if len(word) == 0 {
				if from.ID != to.ID {
					return nil, fmt.Errorf(
						"core: rule %s requires %s = %s via ε; no solution exists", r, from.ID, to.ID)
				}
				continue
			}
			prev := from.ID
			for i := 0; i < len(word)-1; i++ {
				id := ids.next()
				gt.MustAddNode(id, newNodeValue())
				gt.MustAddEdge(prev, word[i], id)
				prev = id
			}
			gt.MustAddEdge(prev, word[len(word)-1], to.ID)
		}
	}
	// Freeze once so every downstream evaluation of this solution — the
	// certain-answer batch, all engine workers — shares one interned
	// snapshot.
	gt.Freeze()
	return gt, nil
}

// NullNodes returns the ids of null nodes in a graph (universal-solution
// intermediates).
func NullNodes(g *datagraph.Graph) []datagraph.NodeID {
	var out []datagraph.NodeID
	for _, n := range g.Nodes() {
		if n.IsNullNode() {
			out = append(out, n.ID)
		}
	}
	return out
}
