package core

import (
	"fmt"

	"repro/internal/datagraph"
)

// This file implements the solution-building procedures of Sections 7 and 8:
// dom(M, Gs), universal solutions populated with SQL-null nodes, and least
// informative solutions populated with fresh distinct data values.

// throwaway builds a single-use materialization for the legacy free
// functions, which recompute everything per call by design.
func throwaway(m *Mapping, gs *datagraph.Graph) (*Materialization, error) {
	cm, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return NewMaterialization(cm, gs), nil
}

// Dom computes dom(M, Gs): all source nodes appearing in some query result
// q(Gs) for (q, q′) ∈ M, in dense-index order of Gs. An invalid mapping
// (nil, or nil rule queries) panics, matching the pre-session behavior of
// evaluating a nil query.
func Dom(m *Mapping, gs *datagraph.Graph) []datagraph.Node {
	mat, err := throwaway(m, gs)
	if err != nil {
		panic(err)
	}
	return mat.DomNodes()
}

// DomIDs returns the ids of Dom as a set.
func DomIDs(m *Mapping, gs *datagraph.Graph) map[datagraph.NodeID]struct{} {
	mat, err := throwaway(m, gs)
	if err != nil {
		panic(err)
	}
	return mat.DomIDs()
}

// freshIDs hands out node ids that cannot collide with ids already present
// in a graph.
type freshIDs struct {
	prefix string
	n      int
}

func newFreshIDs(g *datagraph.Graph, base string) *freshIDs {
	prefix := base
	for {
		collision := false
		for _, n := range g.Nodes() {
			if len(n.ID) >= len(prefix) && string(n.ID[:len(prefix)]) == prefix {
				collision = true
				break
			}
		}
		if !collision {
			return &freshIDs{prefix: prefix}
		}
		prefix += "_"
	}
}

func (f *freshIDs) next() datagraph.NodeID {
	f.n++
	return datagraph.NodeID(fmt.Sprintf("%s%d", f.prefix, f.n))
}

// freshValues hands out data values distinct from every value in a graph
// and from each other.
type freshValues struct {
	prefix string
	n      int
}

func newFreshValues(g *datagraph.Graph, base string) *freshValues {
	prefix := base
	for {
		collision := false
		for _, v := range g.Values() {
			raw := v.Raw()
			if len(raw) >= len(prefix) && raw[:len(prefix)] == prefix {
				collision = true
				break
			}
		}
		if !collision {
			return &freshValues{prefix: prefix}
		}
		prefix += "_"
	}
}

func (f *freshValues) next() datagraph.Value {
	f.n++
	return datagraph.V(fmt.Sprintf("%s%d", f.prefix, f.n))
}

// UniversalSolution builds the Section 7 universal solution for a relational
// GSM: dom(M, Gs) is copied, and for each rule (q, a₁…aₖ) and each pair
// (v, v′) ∈ q(Gs), a path v a₁ n₁ a₂ … aₖ v′ is added whose k−1 intermediate
// nodes are fresh null nodes (value n). It errors with ErrInfinite if the
// mapping is not relational, or with ErrNoSolution if a rule with target ε
// demands v = v′ for a pair with v ≠ v′ (in which case no solution exists at
// all).
func UniversalSolution(m *Mapping, gs *datagraph.Graph) (*datagraph.Graph, error) {
	mat, err := throwaway(m, gs)
	if err != nil {
		return nil, err
	}
	return mat.Universal()
}

// LeastInformativeSolution builds the Section 8 least informative solution:
// identical to the universal solution except that the fresh intermediate
// nodes carry fresh, pairwise distinct data values instead of nulls.
func LeastInformativeSolution(m *Mapping, gs *datagraph.Graph) (*datagraph.Graph, error) {
	mat, err := throwaway(m, gs)
	if err != nil {
		return nil, err
	}
	return mat.LeastInformative()
}

type solutionStyle int

const (
	solutionNulls solutionStyle = iota
	solutionFresh
)

// NullNodes returns the ids of null nodes in a graph (universal-solution
// intermediates).
func NullNodes(g *datagraph.Graph) []datagraph.NodeID {
	var out []datagraph.NodeID
	for _, n := range g.Nodes() {
		if n.IsNullNode() {
			out = append(out, n.ID)
		}
	}
	return out
}
