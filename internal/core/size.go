package core

import (
	"sync"
)

// This file extends the datagraph byte-accounting layer to the core
// artifacts the serving memory governor charges against its budget:
// answer sets, sharded solutions, and whole materializations.

const (
	sizeMapEntry = 48
	sizeString   = 16
	sizeWord     = 8
)

// SizeBytes estimates the answer set's resident footprint.
func (a *Answers) SizeBytes() int64 {
	var b int64 = 64
	for k, ans := range a.m {
		b += sizeMapEntry
		b += sizeString + int64(len(k[0])) + sizeString + int64(len(k[1]))
		b += sizeString + int64(len(ans.From.ID)) + sizeString + int64(len(ans.From.Value.Raw())) + sizeWord
		b += sizeString + int64(len(ans.To.ID)) + sizeString + int64(len(ans.To.Value.Raw())) + sizeWord
	}
	return b
}

// SizeBytes estimates one solution fragment's footprint: the fragment
// graph (including any snapshot cached on it by query lowering) plus the
// shard index arrays.
func (sh *SolutionShard) SizeBytes() int64 {
	return sh.G.SizeBytes() + int64(len(sh.GhostOwner)+len(sh.OwnedDom))*4
}

// SizeBytes estimates the sharded solution's footprint across all
// fragments.
func (ss *ShardedSolution) SizeBytes() int64 {
	b := ss.Part.SizeBytes()
	for _, sh := range ss.Shards {
		b += sh.SizeBytes()
	}
	return b
}

// sizeCache memoizes a materialization's byte estimate keyed on which
// artifacts exist, so the serving hot path can re-read the size after
// every query without re-walking unchanged graphs.
type sizeCache struct {
	mu    sync.Mutex
	key   uint32
	bytes int64
	valid bool
}

// SizeBytes estimates the resident footprint of every artifact this
// materialization has built so far — source pair sets, dom, merged and
// sharded solutions, value pools. It never forces a build: artifacts are
// observed through the memo peek, exactly like the stats path. The walk is
// memoized keyed on the set of built artifacts, so repeated calls between
// builds are a mutex hit, not a graph traversal.
func (mat *Materialization) SizeBytes() int64 {
	key, bytes := uint32(0), int64(0)
	add := func(bit uint32, ok bool, sz func() int64) {
		if ok {
			key |= 1 << bit
			bytes += sz()
		}
	}
	// Probe cheaply first: the key is derived from the done flags alone.
	probe := uint32(0)
	flag := func(bit uint32, ok bool) {
		if ok {
			probe |= 1 << bit
		}
	}
	src, srcOK := mat.src.peek()
	domN, domNOK := mat.domN.peek()
	domID, domIDOK := mat.domID.peek()
	uni, uniOK := mat.uni.peek()
	li, liOK := mat.li.peek()
	nulls, nullsOK := mat.nulls.peek()
	vals, valsOK := mat.vals.peek()
	srcPart, srcPartOK := mat.srcPart.peek()
	uniSh, uniShOK := mat.uniSh.peek()
	liSh, liShOK := mat.liSh.peek()
	flag(0, srcOK)
	flag(1, domNOK)
	flag(2, domIDOK)
	flag(3, uniOK)
	flag(4, liOK)
	flag(5, nullsOK)
	flag(6, valsOK)
	flag(7, srcPartOK)
	flag(8, uniShOK)
	flag(9, liShOK)
	mat.size.mu.Lock()
	if mat.size.valid && mat.size.key == probe {
		b := mat.size.bytes
		mat.size.mu.Unlock()
		return b
	}
	mat.size.mu.Unlock()

	add(0, srcOK, func() int64 {
		var b int64
		for _, ps := range src {
			b += ps.SizeBytes()
		}
		return b
	})
	add(1, domNOK, func() int64 {
		var b int64
		for _, n := range domN {
			b += sizeString + int64(len(n.ID)) + sizeString + int64(len(n.Value.Raw())) + sizeWord
		}
		return b
	})
	add(2, domIDOK, func() int64 {
		var b int64 = 64
		for id := range domID {
			b += sizeMapEntry + sizeString + int64(len(id))
		}
		return b
	})
	add(3, uniOK, uni.SizeBytes)
	add(4, liOK, li.SizeBytes)
	add(5, nullsOK, func() int64 {
		var b int64
		for _, id := range nulls {
			b += sizeString + int64(len(id))
		}
		return b
	})
	add(6, valsOK, func() int64 {
		var b int64
		for _, v := range vals {
			b += sizeString + int64(len(v.Raw())) + sizeWord
		}
		return b
	})
	add(7, srcPartOK, srcPart.SizeBytes)
	add(8, uniShOK, uniSh.SizeBytes)
	add(9, liShOK, liSh.SizeBytes)

	mat.size.mu.Lock()
	mat.size.key, mat.size.bytes, mat.size.valid = key, bytes, true
	mat.size.mu.Unlock()
	return bytes
}
