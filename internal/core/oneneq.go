package core

import (
	"context"
	"fmt"

	"repro/internal/datagraph"
	"repro/internal/ree"
)

// This file implements the tractable certain-answer algorithm of
// Proposition 4: for relational GSMs and data path queries (paths with
// tests) with at most one inequality, query answering is in NLogspace.
//
// The algorithm is a forced-merge fixpoint over value classes of the
// universal solution U (see DESIGN.md for the correctness argument):
//
//   - Adversarial solutions can be taken to be value specializations of U,
//     because data RPQs are closed under value-preserving homomorphisms.
//   - Merging two value classes is monotone for '=' tests and anti-monotone
//     for the single '≠' test. A *threat* is a label-matching path from x
//     to y whose '=' tests already hold; the only way an adversary can kill
//     it is to merge the endpoints of its '≠' test.
//   - So: repeatedly merge the forced pairs. If a threat has no '≠' test, or
//     its '≠' endpoints are distinct source constants (unmergeable), the
//     answer is certain. If the closure terminates with every threat dead,
//     the final specialization is a counterexample solution.

// OneNeqOptions bounds the match enumeration.
type OneNeqOptions struct {
	// MaxExpansions caps the number of DFS steps while enumerating
	// label-matching paths in the universal solution. Default 1 << 20.
	MaxExpansions int
}

// Normalized validates the options once: a negative MaxExpansions is
// ErrBadOptions, zero selects the default.
func (o OneNeqOptions) Normalized() (OneNeqOptions, error) {
	if o.MaxExpansions < 0 {
		return o, badOptionf("MaxExpansions %d is negative", o.MaxExpansions)
	}
	if o.MaxExpansions == 0 {
		o.MaxExpansions = 1 << 20
	}
	return o, nil
}

// CertainOneInequality decides whether (from, to) ∈ 2_M(Q, Gs) for a
// relational GSM and a path-with-tests Q with at most one inequality.
func CertainOneInequality(m *Mapping, gs *datagraph.Graph, q *ree.Query,
	from, to datagraph.NodeID, opts OneNeqOptions) (bool, error) {

	mat, err := throwaway(m, gs)
	if err != nil {
		return false, err
	}
	return mat.CertainOneInequality(context.Background(), q, from, to, opts)
}

// CertainOneInequality is the materialization variant of the package-level
// CertainOneInequality, sharing the memoized universal solution. ctx is
// honored during path enumeration and the merge fixpoint (returning an
// ErrCanceled wrap).
func (mat *Materialization) CertainOneInequality(ctx context.Context, q *ree.Query,
	from, to datagraph.NodeID, opts OneNeqOptions) (bool, error) {

	opts, err := opts.Normalized()
	if err != nil {
		return false, err
	}
	labels, tests, ok := ree.FlattenPathWithTests(q.Expr())
	if !ok {
		return false, fmt.Errorf("core: query %s is not a path with tests", q)
	}
	if n := ree.CountNeq(q.Expr()); n > 1 {
		return false, fmt.Errorf("core: query %s has %d inequalities; at most one allowed", q, n)
	}
	u, err := mat.UniversalCtx(ctx)
	if err != nil {
		return false, err
	}
	xi, okX := u.IndexOf(from)
	yi, okY := u.IndexOf(to)
	if !okX || !okY {
		// Some solution omits the node entirely, so the pair cannot be
		// certain.
		return false, nil
	}
	paths, err := matchingPaths(ctx, u, xi, yi, labels, opts.MaxExpansions)
	if err != nil {
		return false, err
	}
	if len(paths) == 0 {
		// Not even the universal solution has a matching path.
		return false, nil
	}
	uf := newValueUF(u)
	for {
		if err := ctx.Err(); err != nil {
			return false, Canceled(err)
		}
		progress := false
		for _, p := range paths {
			live := true
			var neq *ree.PosTest
			for i := range tests {
				t := tests[i]
				if t.Neq {
					neq = &tests[i]
					continue
				}
				if !uf.same(p[t.Start], p[t.End]) {
					live = false
					break
				}
			}
			if !live {
				continue
			}
			if neq == nil {
				// '='-only threat holds in every specialization.
				return true, nil
			}
			a, b := p[neq.Start], p[neq.End]
			if uf.same(a, b) {
				continue // threat already dead: ≠ is false
			}
			merged, conflict := uf.merge(a, b)
			if conflict {
				// Two distinct source constants would have to be equal:
				// no adversary can kill this threat.
				return true, nil
			}
			if merged {
				progress = true
			}
		}
		if !progress {
			return false, nil
		}
	}
}

// CertainOneInequalityAll computes all certain pairs over dom(M, Gs)²; used
// by tests and experiments on small instances.
func CertainOneInequalityAll(m *Mapping, gs *datagraph.Graph, q *ree.Query,
	opts OneNeqOptions) (*Answers, error) {

	dom := Dom(m, gs)
	out := NewAnswers()
	for _, a := range dom {
		for _, b := range dom {
			ok, err := CertainOneInequality(m, gs, q, a.ID, b.ID, opts)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Add(Answer{From: a, To: b})
			}
		}
	}
	return out, nil
}

// matchingPaths enumerates node sequences of the universal solution
// spelling the given label word from x to y.
func matchingPaths(ctx context.Context, u *datagraph.Graph, x, y int, labels []string, budget int) ([][]int, error) {
	var out [][]int
	steps := 0
	cur := make([]int, 0, len(labels)+1)
	var walk func(node, pos int) error
	walk = func(node, pos int) error {
		steps++
		if steps > budget {
			return budgetErrf("core: path enumeration exceeded %d expansions", budget)
		}
		if steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return Canceled(err)
			}
		}
		cur = append(cur, node)
		defer func() { cur = cur[:len(cur)-1] }()
		if pos == len(labels) {
			if node == y {
				out = append(out, append([]int(nil), cur...))
			}
			return nil
		}
		for _, to := range u.OutEdges(node, labels[pos]) {
			if err := walk(to, pos+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(x, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// valueUF is a union-find over value slots of a graph: every null node is
// its own mergeable slot; every distinct constant value is an immutable
// slot. Merging two slots with different constants is a conflict.
type valueUF struct {
	parent []int
	// constant[i] is the constant value pinned to the class root i, if any.
	constant []datagraph.Value
	hasConst []bool
	slotOf   []int // node index → slot
}

func newValueUF(g *datagraph.Graph) *valueUF {
	uf := &valueUF{slotOf: make([]int, g.NumNodes())}
	constSlot := make(map[datagraph.Value]int)
	newSlot := func() int {
		uf.parent = append(uf.parent, len(uf.parent))
		uf.constant = append(uf.constant, datagraph.Value{})
		uf.hasConst = append(uf.hasConst, false)
		return len(uf.parent) - 1
	}
	for i := 0; i < g.NumNodes(); i++ {
		v := g.Value(i)
		if v.IsNull() {
			uf.slotOf[i] = newSlot()
			continue
		}
		s, ok := constSlot[v]
		if !ok {
			s = newSlot()
			uf.constant[s] = v
			uf.hasConst[s] = true
			constSlot[v] = s
		}
		uf.slotOf[i] = s
	}
	return uf
}

func (uf *valueUF) find(s int) int {
	for uf.parent[s] != s {
		uf.parent[s] = uf.parent[uf.parent[s]]
		s = uf.parent[s]
	}
	return s
}

// same reports whether the value slots of two nodes are in one class.
func (uf *valueUF) same(nodeA, nodeB int) bool {
	return uf.find(uf.slotOf[nodeA]) == uf.find(uf.slotOf[nodeB])
}

// merge unifies the classes of two nodes' slots. It returns merged=true if
// the classes were distinct, and conflict=true if both classes carry
// distinct constants (impossible merge).
func (uf *valueUF) merge(nodeA, nodeB int) (merged, conflict bool) {
	ra, rb := uf.find(uf.slotOf[nodeA]), uf.find(uf.slotOf[nodeB])
	if ra == rb {
		return false, false
	}
	if uf.hasConst[ra] && uf.hasConst[rb] {
		return false, true // distinct constants by slot construction
	}
	// Attach the non-constant root under the constant one (if any).
	if uf.hasConst[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	return true, false
}
