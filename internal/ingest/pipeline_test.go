package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagraph"
	"repro/internal/fault"
)

const (
	custCSV   = "id,name,city\n1,alice,paris\n2,bob,\n3,carol,lyon\n"
	ordersCSV = "id,customer_id,total\n10,1,19.50\n11,2,\n12,1,5\n"
)

func loadFixture(t *testing.T, opts Options, srcs ...Source) (*datagraph.Graph, *Report) {
	t.Helper()
	s := mustSchema(t, fixtureSchema)
	g, rep, err := Load(context.Background(), s, opts, srcs...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return g, rep
}

func fixtureSources() []Source {
	return []Source{CSVString("customer", custCSV), CSVString("orders", ordersCSV)}
}

func TestDirectMappingCSV(t *testing.T) {
	g, rep := loadFixture(t, Options{}, fixtureSources()...)
	if rep.Rows != 6 || rep.Skipped != 0 || rep.DroppedFKs != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// customer: 3 rows × (row node + name cell + city cell, 2 property
	// edges); orders: 3 rows × (row node + total cell, 1 property edge +
	// 1 reference edge).
	if g.NumNodes() != 15 || g.NumEdges() != 12 {
		t.Fatalf("graph = %d nodes %d edges, want 15/12", g.NumNodes(), g.NumEdges())
	}
	checkValue := func(id, want string) {
		t.Helper()
		n, ok := g.NodeByID(datagraph.NodeID(id))
		if !ok {
			t.Fatalf("node %s missing", id)
		}
		if want == "null" {
			if !n.Value.IsNull() {
				t.Fatalf("node %s = %v, want null", id, n.Value)
			}
			return
		}
		if n.Value.IsNull() || n.Value.Raw() != want {
			t.Fatalf("node %s = %v, want %q", id, n.Value, want)
		}
	}
	checkValue("customer:1", "1")
	checkValue("customer:1:name", "alice")
	checkValue("customer:2:city", "null") // empty CSV cell is SQL NULL
	checkValue("orders:10:total", "19.5") // canonical float rendering
	if !g.HasEdge("customer:1", "customer#name", "customer:1:name") {
		t.Fatalf("property edge missing")
	}
	if !g.HasEdge("orders:10", "orders#customer", "customer:1") {
		t.Fatalf("reference edge missing")
	}
	if !g.HasEdge("orders:11", "orders#customer", "customer:2") {
		// NULL total still maps (a null cell node), but row 11's FK is 2,
		// not NULL — its reference edge must exist.
		t.Fatalf("reference edge for orders:11 missing")
	}
}

// sortedLines normalizes a graph rendering for order-insensitive
// comparison.
func sortedLines(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestForwardReferences(t *testing.T) {
	// Loading orders before customers exercises the pending-FK buffer:
	// the same graph must come out, up to edge-log order.
	fwd, _ := loadFixture(t, Options{}, CSVString("orders", ordersCSV), CSVString("customer", custCSV))
	ref, _ := loadFixture(t, Options{}, fixtureSources()...)
	if sortedLines(fwd.String()) != sortedLines(ref.String()) {
		t.Fatalf("forward-reference load diverged:\n%s\nvs\n%s", fwd.String(), ref.String())
	}
}

func TestRowsSourceMatchesCSV(t *testing.T) {
	rows := map[string][][]string{
		"customer": {{"1", "alice", "paris"}, {"2", "bob", ""}, {"3", "carol", "lyon"}},
		"orders":   {{"10", "1", "19.50"}, {"11", "2", ""}, {"12", "1", "5"}},
	}
	byRows, _ := loadFixture(t, Options{}, Rows("customer", rows["customer"]), Rows("orders", rows["orders"]))
	byCSV, _ := loadFixture(t, Options{}, fixtureSources()...)
	if byRows.String() != byCSV.String() {
		t.Fatalf("Rows and CSV loads diverged")
	}
}

// synthRows builds a two-table synthetic dataset big enough to exercise
// batching: n parents, 3n children with FKs back to the parents.
func synthRows(n int) (parent, child [][]string) {
	for i := 1; i <= n; i++ {
		parent = append(parent, []string{strconv.Itoa(i), "p" + strconv.Itoa(i)})
	}
	for i := 1; i <= 3*n; i++ {
		child = append(child, []string{strconv.Itoa(i), strconv.Itoa((i % n) + 1), strconv.Itoa(i * 2)})
	}
	return parent, child
}

const synthSchema = `
table parent
col parent id int pk
col parent name text
table child
col child id int pk
col child parent_id int
col child score int
fk child parent_id parent.id
`

// TestBatchedIngestTakesDeltaPath is the delta-freeze interaction test:
// a batched load must pay exactly one full snapshot build (the first
// freeze) and amortize the rest as delta merges, with the final snapshot's
// watermark covering the whole graph.
func TestBatchedIngestTakesDeltaPath(t *testing.T) {
	s := mustSchema(t, synthSchema)
	parent, child := synthRows(600)
	l := New(s, Options{BatchSize: 64})
	rep, err := l.Run(context.Background(), Rows("parent", parent), Rows("child", child))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.FullBuilds != 1 {
		t.Fatalf("full snapshot builds = %d, want exactly 1 (batched ingest must not trip rebuilds); report %+v", rep.FullBuilds, rep)
	}
	if rep.DeltaBuilds < 3 {
		t.Fatalf("delta merges = %d, want several; report %+v", rep.DeltaBuilds, rep)
	}
	snap := l.Snapshot()
	if snap == nil {
		t.Fatalf("no final snapshot published")
	}
	wn, we := snap.Watermark()
	if wn != l.Graph().NumNodes() || we != l.Graph().NumEdges() {
		t.Fatalf("final watermark (%d, %d) does not cover graph (%d, %d)",
			wn, we, l.Graph().NumNodes(), l.Graph().NumEdges())
	}
}

// TestConcurrentQueriesMidIngest races readers against the writer: every
// published snapshot must be internally consistent (edges only between
// frozen nodes, interned values resolvable) while the load is appending.
// Run under -race.
func TestConcurrentQueriesMidIngest(t *testing.T) {
	s := mustSchema(t, synthSchema)
	parent, child := synthRows(400)
	l := New(s, Options{BatchSize: 32})

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := l.Snapshot()
				if snap == nil {
					continue
				}
				wn, _ := snap.Watermark()
				if snap.NumNodes() != wn {
					panic(fmt.Sprintf("snapshot covers %d nodes, watermark %d", snap.NumNodes(), wn))
				}
				// Touch the interned surface only: CSR traversal and value
				// ids are frozen; Graph methods race with the writer.
				edges := 0
				for u := 0; u < snap.NumNodes(); u++ {
					for _, v := range snap.OutAll(u) {
						if int(v) >= snap.NumNodes() {
							panic("edge to unfrozen node escaped a snapshot")
						}
						edges++
					}
					_ = snap.ValueID(u)
				}
				_ = edges
			}
		}()
	}
	_, err := l.Run(context.Background(), Rows("parent", parent), Rows("child", child))
	close(done)
	readers.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestIngestRowFaultSkipPolicy(t *testing.T) {
	if err := fault.Arm("ingest.row=error:n=3", 1); err != nil {
		t.Fatalf("arm: %v", err)
	}
	defer fault.Disarm()
	s := mustSchema(t, synthSchema)
	parent, child := synthRows(50)
	l := New(s, Options{SkipBadRows: true})
	rep, err := l.Run(context.Background(), Rows("parent", parent), Rows("child", child))
	if err != nil {
		t.Fatalf("Run under skip policy: %v", err)
	}
	if rep.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3 injected row faults", rep.Skipped)
	}
}

func TestIngestCommitFaultIsFatal(t *testing.T) {
	if err := fault.Arm("ingest.commit=error:n=1", 1); err != nil {
		t.Fatalf("arm: %v", err)
	}
	defer fault.Disarm()
	s := mustSchema(t, synthSchema)
	parent, child := synthRows(200)
	// Even under the lenient row policy, a commit fault aborts the load.
	l := New(s, Options{BatchSize: 32, SkipBadRows: true})
	_, err := l.Run(context.Background(), Rows("parent", parent), Rows("child", child))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected commit fault", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := mustSchema(t, synthSchema)
	parent, child := synthRows(100)
	if _, _, err := Load(ctx, s, Options{}, Rows("parent", parent), Rows("child", child)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressReporting(t *testing.T) {
	s := mustSchema(t, synthSchema)
	parent, child := synthRows(100)
	var calls []Progress
	opts := Options{BatchSize: 64, Progress: func(p Progress) { calls = append(calls, p) }}
	if _, _, err := Load(context.Background(), s, opts, Rows("parent", parent), Rows("child", child)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(calls) < 2 {
		t.Fatalf("progress calls = %d, want per-batch reports", len(calls))
	}
	last := calls[len(calls)-1]
	if last.Rows != 400 {
		t.Fatalf("final progress rows = %d, want 400", last.Rows)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].Rows < calls[i-1].Rows {
			t.Fatalf("progress went backwards: %+v", calls)
		}
	}
}
