package ingest

import (
	"errors"
	"strings"
	"testing"
)

const fixtureSchema = `
# two-table fixture: customers and their orders
table customer
col customer id int pk
col customer name text
col customer city text null
table orders
col orders id int pk
col orders customer_id int
col orders total float null
fk orders customer_id customer.id
`

func mustSchema(t *testing.T, text string) *Schema {
	t.Helper()
	s, err := ParseSchema(text)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	return s
}

func TestParseSchemaRoundTrip(t *testing.T) {
	s := mustSchema(t, fixtureSchema)
	if len(s.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(s.Tables))
	}
	cust, _ := s.Table("customer")
	if pki := cust.PKIndex(); pki != 0 || cust.Columns[pki].Name != "id" {
		t.Fatalf("customer pk = %d, want id at 0", pki)
	}
	ord, _ := s.Table("orders")
	if len(ord.FKs) != 1 || ord.FKs[0].RefTable != "customer" {
		t.Fatalf("orders fks = %+v", ord.FKs)
	}
	// String must re-parse to the same rendering.
	again, err := ParseSchema(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.String() != s.String() {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", s.String(), again.String())
	}
}

func TestSchemaLabels(t *testing.T) {
	s := mustSchema(t, fixtureSchema)
	got := strings.Join(s.Labels(), " ")
	want := "customer#city customer#name orders#customer orders#total"
	if got != want {
		t.Fatalf("labels = %q, want %q", got, want)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"unknown directive", "tabel t\n"},
		{"col before table", "col t a int\n"},
		{"bad type", "table t\ncol t a blob\n"},
		{"dup table", "table t\ncol t a int\ntable t\ncol t a int\n"},
		{"dup column", "table t\ncol t a int\ncol t a int\n"},
		{"two pks", "table t\ncol t a int pk\ncol t b int pk\n"},
		{"nullable pk", "table t\ncol t a int pk null\n"},
		{"fk unknown table", "table t\ncol t a int\nfk t a u.id\n"},
		{"fk unknown column", "table t\ncol t a int pk\nfk t b t.a\n"},
		{"fk non-pk target", "table t\ncol t a int pk\ncol t b int\ntable u\ncol u c int pk\nfk t b u.d\n"},
		{"bad identifier", "table t:x\ncol t:x a int\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSchema(tc.text); !errors.Is(err, ErrBadSchema) {
				t.Fatalf("err = %v, want ErrBadSchema", err)
			}
		})
	}
}

func TestMapDeclaredType(t *testing.T) {
	cases := map[string]Type{
		"INTEGER": TypeInt, "int": TypeInt, "BIGINT": TypeInt, "VARCHAR(255)": TypeText,
		"DOUBLE PRECISION": TypeFloat, "NUMERIC(10,2)": TypeFloat, "BOOLEAN": TypeBool,
		"DATE": TypeDate, "TIMESTAMP": TypeText, "geometry": TypeText,
	}
	for decl, want := range cases {
		if got := MapDeclaredType(decl); got != want {
			t.Errorf("MapDeclaredType(%q) = %v, want %v", decl, got, want)
		}
	}
}

func TestCoerce(t *testing.T) {
	ok := []struct {
		typ  Type
		in   string
		want string
	}{
		{TypeInt, " 42 ", "42"}, {TypeInt, "007", "7"},
		{TypeFloat, "1.50", "1.5"}, {TypeFloat, "2", "2"},
		{TypeBool, "T", "true"}, {TypeBool, "0", "false"},
		{TypeDate, "2024-02-29", "2024-02-29"},
		{TypeText, " keep as is ", " keep as is "},
	}
	for _, tc := range ok {
		got, err := Coerce(tc.typ, tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Coerce(%v, %q) = %q, %v; want %q", tc.typ, tc.in, got, err, tc.want)
		}
	}
	bad := []struct {
		typ Type
		in  string
	}{
		{TypeInt, "12.5"}, {TypeFloat, "abc"}, {TypeBool, "yes"}, {TypeDate, "2024-13-01"},
	}
	for _, tc := range bad {
		if _, err := Coerce(tc.typ, tc.in); !errors.Is(err, ErrCoerce) {
			t.Errorf("Coerce(%v, %q) err = %v, want ErrCoerce", tc.typ, tc.in, err)
		}
	}
}

func TestInferTable(t *testing.T) {
	header := []string{"id", "name", "score", "customer_id", "born"}
	sample := [][]string{
		{"1", "alice", "3.5", "7", "1990-01-02"},
		{"2", "bob", "4", "", "1985-11-30"},
		{"3", "carol", "2.25", "9", "2001-06-15"},
	}
	tab, err := InferTable("player", header, sample, []string{"customer", "player"})
	if err != nil {
		t.Fatalf("InferTable: %v", err)
	}
	wantTypes := []Type{TypeInt, TypeText, TypeFloat, TypeInt, TypeDate}
	for i, c := range tab.Columns {
		if c.Type != wantTypes[i] {
			t.Errorf("column %s type = %v, want %v", c.Name, c.Type, wantTypes[i])
		}
	}
	if !tab.Columns[0].PK {
		t.Errorf("id not inferred as pk")
	}
	if !tab.Columns[3].Nullable {
		t.Errorf("customer_id not inferred nullable")
	}
	if len(tab.FKs) != 1 || tab.FKs[0].RefTable != "customer" {
		t.Errorf("fks = %+v, want customer_id -> customer", tab.FKs)
	}
}
