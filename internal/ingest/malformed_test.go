package ingest

import (
	"context"
	"errors"
	"testing"
)

// Malformed-input hardening: every corruption maps to a typed sentinel
// with table/row coordinates under the strict policy, and to a counted
// skip under -skip-bad-rows.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		csv     map[string]string // table -> csv text
		want    error             // sentinel under strict
		wantRow int               // expected row coordinate (0 = don't check)
		// under the lenient policy:
		skipOK       bool  // load succeeds
		skipped      int64 // rows counted as skipped
		droppedFKs   int64
		survivorRows int64
	}{
		{
			name: "ragged row",
			csv: map[string]string{
				"customer": "id,name,city\n1,alice,paris\n2,bob\n3,carol,lyon\n",
				"orders":   "id,customer_id,total\n",
			},
			want: ErrBadRow, wantRow: 2,
			skipOK: true, skipped: 1, survivorRows: 2,
		},
		{
			name: "broken quoting",
			csv: map[string]string{
				"customer": "id,name,city\n1,\"al\"ice,paris\n2,bob,nice\n",
				"orders":   "id,customer_id,total\n",
			},
			want: ErrBadRow, wantRow: 1,
			skipOK: true, skipped: 1, survivorRows: 1,
		},
		{
			name: "type coercion failure",
			csv: map[string]string{
				"customer": "id,name,city\n1,alice,paris\n",
				"orders":   "id,customer_id,total\nten,1,5\n",
			},
			want: ErrCoerce, wantRow: 1,
			skipOK: true, skipped: 1, survivorRows: 1,
		},
		{
			name: "duplicate primary key",
			csv: map[string]string{
				"customer": "id,name,city\n1,alice,paris\n1,alice2,lyon\n",
				"orders":   "id,customer_id,total\n",
			},
			want: ErrDuplicatePK, wantRow: 2,
			skipOK: true, skipped: 1, survivorRows: 1,
		},
		{
			name: "null primary key",
			csv: map[string]string{
				"customer": "id,name,city\n,alice,paris\n2,bob,nice\n",
				"orders":   "id,customer_id,total\n",
			},
			want: ErrNullPK, wantRow: 1,
			skipOK: true, skipped: 1, survivorRows: 1,
		},
		{
			name: "dangling foreign key",
			csv: map[string]string{
				"customer": "id,name,city\n1,alice,paris\n",
				"orders":   "id,customer_id,total\n10,99,5\n",
			},
			want: ErrDanglingFK, wantRow: 1,
			skipOK: true, droppedFKs: 1, survivorRows: 2,
		},
		{
			name: "null in non-nullable column",
			csv: map[string]string{
				"customer": "id,name,city\n1,,paris\n2,bob,nice\n",
				"orders":   "id,customer_id,total\n",
			},
			want: ErrCoerce, wantRow: 1,
			skipOK: true, skipped: 1, survivorRows: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustSchema(t, fixtureSchema)
			srcs := []Source{CSVString("customer", tc.csv["customer"]), CSVString("orders", tc.csv["orders"])}

			// Strict policy: the first bad row aborts with its sentinel and
			// coordinates.
			_, _, err := Load(context.Background(), s, Options{}, srcs...)
			if !errors.Is(err, tc.want) {
				t.Fatalf("strict err = %v, want %v", err, tc.want)
			}
			var re *RowError
			if !errors.As(err, &re) {
				t.Fatalf("strict err %v is not row-scoped", err)
			}
			if tc.wantRow != 0 && re.Row != tc.wantRow {
				t.Fatalf("row coordinate = %d, want %d (err %v)", re.Row, tc.wantRow, err)
			}

			// Lenient policy: load completes, skips are counted.
			_, rep, err := Load(context.Background(), s, Options{SkipBadRows: true}, srcs...)
			if (err == nil) != tc.skipOK {
				t.Fatalf("lenient err = %v, want ok=%v", err, tc.skipOK)
			}
			if rep.Skipped != tc.skipped || rep.DroppedFKs != tc.droppedFKs {
				t.Fatalf("lenient report = %+v, want %d skipped / %d dropped FKs", rep, tc.skipped, tc.droppedFKs)
			}
			if rep.Rows != tc.survivorRows {
				t.Fatalf("lenient rows = %d, want %d", rep.Rows, tc.survivorRows)
			}
		})
	}
}

func TestBadHeader(t *testing.T) {
	s := mustSchema(t, fixtureSchema)
	// A header missing a declared column is fatal under both policies:
	// there is no per-row recovery from a misaligned file.
	for _, opts := range []Options{{}, {SkipBadRows: true}} {
		_, _, err := Load(context.Background(), s, opts,
			CSVString("customer", "id,name\n1,alice\n"),
			CSVString("orders", "id,customer_id,total\n"))
		if !errors.Is(err, ErrBadHeader) {
			t.Fatalf("err = %v, want ErrBadHeader", err)
		}
	}
}

func TestSourceForUnknownTable(t *testing.T) {
	s := mustSchema(t, fixtureSchema)
	_, _, err := Load(context.Background(), s, Options{}, CSVString("nosuch", "id\n1\n"))
	if !errors.Is(err, ErrBadSchema) {
		t.Fatalf("err = %v, want ErrBadSchema", err)
	}
}
