package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagraph"
	"repro/internal/fault"
)

// Pipeline stage layout. Three stages run concurrently per load:
//
//	parse (1 goroutine)  →  map (N workers, order-preserving)  →  append (1 writer)
//
// The parse stage streams raw rows off the sources in order; the map
// stage coerces cells and lays out graph operations in parallel, with a
// future per row so the writer consumes results in source order; the
// single writer goroutine owns the graph, applies rows, resolves
// foreign-key references, and commits batches — publishing a fresh
// snapshot on a geometric schedule tuned to always take the delta-merge
// freeze path after the initial full build.
//
// Fault points: "ingest.row" fires per applied row (row-scoped, so the
// skip-bad-rows policy applies); "ingest.commit" fires per batch commit
// and is fatal.

// Options tunes a load.
type Options struct {
	// BatchSize is the number of rows per commit batch (progress report,
	// commit fault point, freeze-schedule check). Default 4096.
	BatchSize int
	// SkipBadRows selects the lenient policy: row-scoped errors (ragged
	// rows, coercion failures, duplicate keys, dangling foreign keys) are
	// counted and skipped instead of aborting the load.
	SkipBadRows bool
	// Progress, when set, is called after every committed batch and once
	// at the end, from the writer goroutine.
	Progress func(Progress)
	// Graph, when set, receives the load; by default a fresh graph is
	// built. The graph must not be read concurrently except through
	// Loader.Snapshot.
	Graph *datagraph.Graph
}

// Progress is a per-batch progress report.
type Progress struct {
	Table   string `json:"table"`             // table the batch ended in
	Rows    int64  `json:"rows"`              // cumulative rows applied
	Skipped int64  `json:"skipped,omitempty"` // cumulative rows skipped
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
}

// Report summarizes a completed load.
type Report struct {
	Rows        int64         `json:"rows"`    // rows applied
	Skipped     int64         `json:"skipped"` // rows skipped (skip-bad-rows policy)
	DroppedFKs  int64         `json:"dropped_fks"`
	Nodes       int           `json:"nodes"`
	Edges       int           `json:"edges"`
	Batches     int           `json:"batches"`
	FullBuilds  uint64        `json:"full_builds"`  // snapshot full rebuilds during the load
	DeltaBuilds uint64        `json:"delta_builds"` // snapshot delta merges during the load
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// Loader runs loads against one graph and publishes immutable snapshots
// for concurrent readers. The zero value is not usable; see New.
type Loader struct {
	schema *Schema
	opts   Options
	g      *datagraph.Graph
	snap   atomic.Pointer[datagraph.Snapshot]
}

// New prepares a loader for the schema. The schema must already validate.
func New(schema *Schema, opts Options) *Loader {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 4096
	}
	g := opts.Graph
	if g == nil {
		g = &datagraph.Graph{}
	}
	return &Loader{schema: schema, opts: opts, g: g}
}

// Graph returns the loader's graph. Not safe to use concurrently with
// Run; mid-load readers must go through Snapshot.
func (l *Loader) Graph() *datagraph.Graph { return l.g }

// Snapshot returns the most recently committed snapshot, or nil before
// the first commit. Safe to call concurrently with Run: snapshots are
// immutable and published atomically at batch boundaries, so readers see
// a consistent frozen prefix of the load.
func (l *Loader) Snapshot() *datagraph.Snapshot { return l.snap.Load() }

// Load is the one-call entry point: build a fresh graph from the schema
// and sources, freeze it, and return it with the load report.
func Load(ctx context.Context, schema *Schema, opts Options, srcs ...Source) (*datagraph.Graph, *Report, error) {
	l := New(schema, opts)
	rep, err := l.Run(ctx, srcs...)
	if err != nil {
		return nil, rep, err
	}
	return l.g, rep, nil
}

// parseItem is one unit flowing from the parse stage to the writer: a
// future the map workers complete out of band.
type parseItem struct {
	t    *Table
	row  Row
	err  error // row-scoped parse error, pre-empting the map stage
	m    mappedRow
	done chan struct{} // closed by the map worker
}

// Run streams every source through the pipeline. Sources load in the
// given order; rows within a source keep their order. On a fatal error
// (bad schema reference, strict-policy row error, commit fault, context
// cancellation) the partial report is returned alongside the error.
func (l *Loader) Run(ctx context.Context, srcs ...Source) (*Report, error) {
	start := time.Now()
	full0, delta0 := l.g.SnapshotBuilds()
	rep := &Report{}
	finish := func(err error) (*Report, error) {
		full1, delta1 := l.g.SnapshotBuilds()
		rep.FullBuilds, rep.DeltaBuilds = full1-full0, delta1-delta0
		rep.Nodes, rep.Edges = l.g.NumNodes(), l.g.NumEdges()
		rep.Elapsed = time.Since(start)
		return rep, err
	}

	for _, src := range srcs {
		if _, ok := l.schema.Table(src.Table); !ok {
			return finish(fmt.Errorf("%w: source for undeclared table %q", ErrBadSchema, src.Table))
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Stage 1 → 2 plumbing: the parse goroutine emits items both to the
	// work channel (consumed by map workers in any order) and the ordered
	// channel (consumed by the writer in source order).
	work := make(chan *parseItem, 256)
	ordered := make(chan *parseItem, 256)
	parseErr := make(chan error, 1)

	go func() {
		defer close(work)
		defer close(ordered)
		for _, src := range srcs {
			t, _ := l.schema.Table(src.Table)
			if err := l.parseSource(ctx, t, src, work, ordered); err != nil {
				parseErr <- err
				return
			}
		}
		parseErr <- nil
	}()

	// Stage 2: map workers.
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				if it.err == nil {
					it.m, it.err = mapRow(it.t, it.row)
				}
				close(it.done)
			}
		}()
	}
	defer wg.Wait()

	// Stage 3: the writer loop, on this goroutine.
	w := &writer{l: l, rep: rep, seen: make(map[string]map[string]struct{}), pending: make(map[string]map[string][]pendingEdge)}
	for it := range ordered {
		<-it.done
		if err := w.row(ctx, it); err != nil {
			cancel()
			drain(ordered)
			return finish(err)
		}
	}
	if err := <-parseErr; err != nil && !errors.Is(err, context.Canceled) {
		return finish(err)
	}
	if err := ctx.Err(); err != nil {
		return finish(err)
	}
	if err := w.finishFKs(); err != nil {
		return finish(err)
	}
	if err := w.commit(true); err != nil {
		return finish(err)
	}
	return finish(nil)
}

// parseSource streams one source's rows into the pipeline.
func (l *Loader) parseSource(ctx context.Context, t *Table, src Source, work, ordered chan<- *parseItem) error {
	r, err := src.Open(t)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		row, err := r.Next()
		if err == io.EOF {
			return nil
		}
		it := &parseItem{t: t, row: row, err: err, done: make(chan struct{})}
		select {
		case work <- it:
		case <-ctx.Done():
			return ctx.Err()
		}
		select {
		case ordered <- it:
		case <-ctx.Done():
			return ctx.Err()
		}
		if err != nil {
			var re *RowError
			if !errors.As(err, &re) {
				return err // fatal reader error; writer also sees it
			}
		}
	}
}

// drain discards the remaining ordered items after an abort so the map
// workers and parse goroutine can exit.
func drain(ordered <-chan *parseItem) {
	for it := range ordered {
		<-it.done
	}
}

// pendingEdge is a foreign-key edge buffered until its target row node
// appears (forward and self references are legal in relational data).
type pendingEdge struct {
	from  datagraph.NodeID
	label string
	table string // referencing table, for dangling diagnostics
	row   int
}

// writer is the single goroutine that owns the graph during a load.
type writer struct {
	l   *Loader
	rep *Report

	seen    map[string]map[string]struct{}      // table → loaded keys
	pending map[string]map[string][]pendingEdge // ref table → ref key → buffered edges

	batchRows    int // rows in the current batch
	batchOps     int // graph ops (nodes+edges) in the current batch
	maxBatchOps  int
	frozenOps    int // ops covered by the last published snapshot
	currentTable string
}

// skippable decides a row-scoped error's fate under the active policy.
func (w *writer) skippable(err error) error {
	var re *RowError
	if errors.As(err, &re) && w.l.opts.SkipBadRows {
		w.rep.Skipped++
		return nil
	}
	return err
}

// row applies one pipeline item.
func (w *writer) row(ctx context.Context, it *parseItem) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if it.err != nil {
		return w.skippable(it.err)
	}
	if err := fault.Hit("ingest.row"); err != nil {
		return w.skippable(rowErr(it.t.Name, it.m.num, err))
	}
	m := &it.m
	keys := w.seen[it.t.Name]
	if keys == nil {
		keys = make(map[string]struct{})
		w.seen[it.t.Name] = keys
	}
	if _, dup := keys[m.key]; dup {
		return w.skippable(rowErr(it.t.Name, m.num, fmt.Errorf("%w: %q", ErrDuplicatePK, m.key)))
	}
	if err := m.apply(w.l.g); err != nil {
		return w.skippable(err)
	}
	keys[m.key] = struct{}{}
	w.currentTable = it.t.Name

	// Resolve references: edges out of this row, and buffered edges into it.
	rowID := rowNodeID(it.t.Name, m.key)
	for _, r := range m.refs {
		if _, ok := w.seen[r.refTable][r.refKey]; ok {
			w.l.g.MustAddEdge(rowID, r.label, rowNodeID(r.refTable, r.refKey))
			w.batchOps++
			continue
		}
		byKey := w.pending[r.refTable]
		if byKey == nil {
			byKey = make(map[string][]pendingEdge)
			w.pending[r.refTable] = byKey
		}
		byKey[r.refKey] = append(byKey[r.refKey], pendingEdge{from: rowID, label: r.label, table: it.t.Name, row: m.num})
	}
	for _, pe := range w.pending[it.t.Name][m.key] {
		w.l.g.MustAddEdge(pe.from, pe.label, rowID)
		w.batchOps++
	}
	delete(w.pending[it.t.Name], m.key)

	w.rep.Rows++
	w.batchRows++
	w.batchOps += m.nodes() + len(m.cells)
	if w.batchRows >= w.l.opts.BatchSize {
		return w.commit(false)
	}
	return nil
}

// finishFKs settles the pending buffer at end of input: anything left is
// a dangling foreign key — dropped under the lenient policy, fatal under
// strict.
func (w *writer) finishFKs() error {
	for refTable, byKey := range w.pending {
		for refKey, edges := range byKey {
			for _, pe := range edges {
				err := rowErr(pe.table, pe.row, fmt.Errorf("%w: no row %s:%s", ErrDanglingFK, refTable, refKey))
				if !w.l.opts.SkipBadRows {
					return err
				}
				w.rep.DroppedFKs++
			}
		}
	}
	return nil
}

// commit ends a batch: the commit fault point, the freeze schedule, and
// the progress callback. Commit errors are always fatal.
//
// Freeze schedule: the first snapshot is deferred until the graph has
// outgrown any single batch by a wide margin (20× the largest batch seen),
// then refreshed whenever the un-frozen delta grows past a quarter of the
// frozen prefix while still within the delta-merge window (3·delta ≤
// frozen, the exact canDeltaFreeze bound). Growing the snapshot by ~1.3×
// per freeze keeps the whole load to O(log n) freezes — every one of them
// a delta merge — and well under the snapshot's segment-chain cap.
func (w *writer) commit(final bool) error {
	if w.batchRows == 0 && !final {
		return nil
	}
	if err := fault.Hit("ingest.commit"); err != nil {
		return fmt.Errorf("ingest: commit: %w", err)
	}
	if w.batchOps > w.maxBatchOps {
		w.maxBatchOps = w.batchOps
	}
	w.batchRows, w.batchOps = 0, 0
	w.rep.Batches++

	totalOps := w.l.g.NumNodes() + w.l.g.NumEdges()
	delta := totalOps - w.frozenOps
	freeze := final
	if w.frozenOps == 0 {
		freeze = freeze || totalOps >= 20*w.maxBatchOps
	} else {
		freeze = freeze || (4*delta >= w.frozenOps && 3*delta <= w.frozenOps)
	}
	if freeze && delta > 0 {
		w.l.snap.Store(w.l.g.Freeze())
		w.frozenOps = totalOps
	}
	if final && w.l.snap.Load() == nil {
		w.l.snap.Store(w.l.g.Freeze())
	}
	if p := w.l.opts.Progress; p != nil {
		p(Progress{Table: w.currentTable, Rows: w.rep.Rows, Skipped: w.rep.Skipped,
			Nodes: w.l.g.NumNodes(), Edges: w.l.g.NumEdges()})
	}
	return nil
}
