package ingest

import (
	"context"
	"strconv"
	"testing"
)

func fixtureRows() map[string][][]string {
	return map[string][][]string{
		"customer": {{"1", "alice", "paris"}, {"2", "bob", ""}, {"3", "carol", "lyon"}},
		"orders":   {{"10", "1", "19.5"}, {"11", "2", ""}, {"12", "1", "5"}},
	}
}

// TestSQLiteRoundTrip drives the full loop: schema + rows → database
// image (sqlitegen) → catalog + scan (the driver-less reader) → graph,
// which must be byte-for-byte the CSV load of the same data.
func TestSQLiteRoundTrip(t *testing.T) {
	s := mustSchema(t, fixtureSchema)
	img, err := BuildSQLite(s, fixtureRows())
	if err != nil {
		t.Fatalf("BuildSQLite: %v", err)
	}
	db, err := ParseSQLite(img)
	if err != nil {
		t.Fatalf("ParseSQLite: %v", err)
	}

	// The catalog's derived schema must agree with the source schema.
	derived, err := db.Schema()
	if err != nil {
		t.Fatalf("db.Schema: %v", err)
	}
	if derived.String() != s.String() {
		t.Fatalf("derived schema drifted:\n%s\nvs\n%s", derived.String(), s.String())
	}

	gSQL, _, err := Load(context.Background(), s, Options{}, db.Sources()...)
	if err != nil {
		t.Fatalf("Load from sqlite: %v", err)
	}
	gCSV, _, err := Load(context.Background(), s, Options{},
		CSVString("customer", custCSV), CSVString("orders", ordersCSV))
	if err != nil {
		t.Fatalf("Load from csv: %v", err)
	}
	if gSQL.String() != gCSV.String() {
		t.Fatalf("SQLite and CSV loads diverged:\n%s\nvs\n%s", gSQL.String(), gCSV.String())
	}
}

// TestSQLiteMultiPage forces interior pages: enough rows that the b-tree
// needs at least two levels, read back and counted.
func TestSQLiteMultiPage(t *testing.T) {
	const n = 5000
	s := mustSchema(t, `
table item
col item id int pk
col item label text
col item weight float null
`)
	rows := map[string][][]string{"item": nil}
	for i := 1; i <= n; i++ {
		w := ""
		if i%7 != 0 {
			w = strconv.FormatFloat(float64(i)/4, 'g', -1, 64)
		}
		rows["item"] = append(rows["item"], []string{strconv.Itoa(i), "label-" + strconv.Itoa(i), w})
	}
	img, err := BuildSQLite(s, rows)
	if err != nil {
		t.Fatalf("BuildSQLite: %v", err)
	}
	if len(img) < 3*genPageSize {
		t.Fatalf("image only %d bytes; multi-page layout expected", len(img))
	}
	db, err := ParseSQLite(img)
	if err != nil {
		t.Fatalf("ParseSQLite: %v", err)
	}
	g, rep, err := Load(context.Background(), s, Options{}, db.Sources()...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rep.Rows != n {
		t.Fatalf("rows = %d, want %d", rep.Rows, n)
	}
	// Row i maps to a row node + label cell + weight cell, even when the
	// weight is NULL (shared null cell value).
	if got, want := g.NumNodes(), 3*n; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	nd, ok := g.NodeByID("item:4999:weight")
	if !ok || nd.Value.IsNull() || nd.Value.Raw() != "1249.75" {
		t.Fatalf("item:4999:weight = %+v, want 1249.75", nd)
	}
	nd, ok = g.NodeByID("item:4998:weight") // 4998 % 7 == 0 → NULL
	if !ok || !nd.Value.IsNull() {
		t.Fatalf("item:4998:weight = %+v, want null", nd)
	}
}

// TestSQLiteDDLParsing exercises the CREATE TABLE parser against common
// real-dump shapes beyond what sqlitegen emits.
func TestSQLiteDDLParsing(t *testing.T) {
	tab, err := parseCreateTable(
		"CREATE TABLE \"users\" (\n  [user_id] INTEGER PRIMARY KEY,\n  `name` VARCHAR(40) NOT NULL,\n" +
			"  balance NUMERIC(10,2) DEFAULT 0,\n  team_id INT REFERENCES teams(id),\n" +
			"  UNIQUE(name),\n  FOREIGN KEY(balance) REFERENCES ledger(id)\n)")
	if err != nil {
		t.Fatalf("parseCreateTable: %v", err)
	}
	if len(tab.Columns) != 4 {
		t.Fatalf("columns = %+v, want 4", tab.Columns)
	}
	if !tab.Columns[0].PK || tab.Columns[0].Type != TypeInt || tab.Columns[0].Name != "user_id" {
		t.Fatalf("pk column = %+v", tab.Columns[0])
	}
	if tab.Columns[1].Nullable || tab.Columns[1].Type != TypeText {
		t.Fatalf("name column = %+v", tab.Columns[1])
	}
	if tab.Columns[2].Type != TypeFloat {
		t.Fatalf("balance column = %+v", tab.Columns[2])
	}
	if len(tab.FKs) != 2 || tab.FKs[0].Column != "team_id" || tab.FKs[0].RefTable != "teams" ||
		tab.FKs[1].Column != "balance" || tab.FKs[1].RefTable != "ledger" {
		t.Fatalf("fks = %+v", tab.FKs)
	}
}

func TestSQLiteRejectsGarbage(t *testing.T) {
	if _, err := ParseSQLite([]byte("not a database")); err == nil {
		t.Fatalf("garbage accepted")
	}
	img, err := BuildSQLite(mustSchema(t, "table t\ncol t id int pk\n"), map[string][][]string{"t": {{"1"}}})
	if err != nil {
		t.Fatalf("BuildSQLite: %v", err)
	}
	img[18] = 2 // mark as WAL mode
	if _, err := ParseSQLite(img); err == nil {
		t.Fatalf("WAL-mode database accepted")
	}
}
