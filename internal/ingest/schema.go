// Package ingest is the relational bulk-ingestion subsystem: a streaming
// direct mapping from relational sources (CSV files, SQLite database
// files) into datagraph.Graph, per the complete direct mapping of Boudaoud
// et al. adapted to the data-graph model of Francis & Libkin (where a node
// carries one value, so record fields are pushed out to cell nodes — the
// paper's Section 1 abstraction of property graphs).
//
// The mapping, for a table T with primary key k:
//
//   - row r with key k → the row node (T:k, k);
//   - non-key column c with value v → the cell node (T:k:c, v) and the
//     property edge T:k -[T#c]-> T:k:c; a SQL NULL cell keeps the edge but
//     gives the cell node the shared null value (all nulls intern to one
//     value id in the frozen snapshot);
//   - foreign-key column c referencing S(pk) with value v → the reference
//     edge T:k -[label]-> S:v (no cell node); a NULL foreign key emits
//     nothing.
//
// Rows stream through a parse → map → append pipeline (see Loader) that
// appends into the graph's append-only edge log in bounded batches, so
// snapshot maintenance rides the delta-freeze path instead of rebuilding
// O(V+E) per batch. internal/relational cross-validates the mapping
// against its M_rel encoding of Proposition 1.
package ingest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/datagraph"
)

// Type is a column's abstract type: the target of the declared-type
// mapping table and the domain of cell coercion. Every type canonicalizes
// its values to one string rendering, so the same logical dataset produces
// byte-for-byte identical graphs whether it arrives as CSV text or typed
// SQLite records.
type Type int

const (
	// TypeText passes cell text through unchanged.
	TypeText Type = iota
	// TypeInt accepts decimal integers; canonical form strconv.FormatInt.
	TypeInt
	// TypeFloat accepts decimal floats; canonical form %g.
	TypeFloat
	// TypeBool accepts true/false/t/f/1/0 (case-insensitive); canonical
	// form "true"/"false".
	TypeBool
	// TypeDate accepts YYYY-MM-DD; canonical form the same.
	TypeDate
)

var typeNames = [...]string{"text", "int", "float", "bool", "date"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ParseType resolves a schema-file type name.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if s == n {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown column type %q (want text, int, float, bool or date)", ErrBadSchema, s)
}

// declaredTypes is the type-mapping table from declared SQL type names to
// ingest types, in the spirit of rdbms_graph_rag's SchemaMapper: the
// SQLite storage classes plus the common Postgres/MySQL declarations.
// Lookup is by the first word of the declaration, lowercased, with any
// "(n)" size suffix stripped, so "VARCHAR(255)" resolves via "varchar".
var declaredTypes = map[string]Type{
	"int": TypeInt, "integer": TypeInt, "bigint": TypeInt,
	"smallint": TypeInt, "tinyint": TypeInt, "mediumint": TypeInt,
	"serial": TypeInt, "bigserial": TypeInt,
	"real": TypeFloat, "float": TypeFloat, "double": TypeFloat,
	"numeric": TypeFloat, "decimal": TypeFloat,
	"text": TypeText, "varchar": TypeText, "char": TypeText,
	"clob": TypeText, "blob": TypeText, "json": TypeText,
	"bool": TypeBool, "boolean": TypeBool,
	"date":     TypeDate,
	"datetime": TypeText, "timestamp": TypeText, "timestamptz": TypeText,
}

// MapDeclaredType resolves a declared SQL type ("VARCHAR(255)", "BIGINT")
// through the type-mapping table. Unknown declarations map to TypeText,
// SQLite's own affinity fallback.
func MapDeclaredType(decl string) Type {
	decl = strings.ToLower(strings.TrimSpace(decl))
	if i := strings.IndexAny(decl, " ("); i >= 0 {
		decl = decl[:i]
	}
	if t, ok := declaredTypes[decl]; ok {
		return t
	}
	return TypeText
}

// Coerce validates raw against the type and returns its canonical
// rendering; failures wrap ErrCoerce.
func Coerce(t Type, raw string) (string, error) {
	switch t {
	case TypeText:
		return raw, nil
	case TypeInt:
		n, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return "", fmt.Errorf("%w: %q is not an int", ErrCoerce, raw)
		}
		return strconv.FormatInt(n, 10), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return "", fmt.Errorf("%w: %q is not a float", ErrCoerce, raw)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case TypeBool:
		switch strings.ToLower(strings.TrimSpace(raw)) {
		case "true", "t", "1":
			return "true", nil
		case "false", "f", "0":
			return "false", nil
		}
		return "", fmt.Errorf("%w: %q is not a bool", ErrCoerce, raw)
	case TypeDate:
		d, err := time.Parse("2006-01-02", strings.TrimSpace(raw))
		if err != nil {
			return "", fmt.Errorf("%w: %q is not a YYYY-MM-DD date", ErrCoerce, raw)
		}
		return d.Format("2006-01-02"), nil
	}
	return "", fmt.Errorf("%w: unknown type %v", ErrCoerce, t)
}

// Column is one relational column.
type Column struct {
	Name     string
	Type     Type
	Nullable bool
	PK       bool
}

// ForeignKey declares that a column's values reference another table's
// primary key, and names the edge label its reference edges carry.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
	// Label is the edge label of the reference edges; empty means the
	// default "<table>#<column-with-_id-stripped>".
	Label string
}

// Table is one relational table: columns in declaration order, at most one
// primary-key column, foreign keys.
type Table struct {
	Name string
	// File optionally names the table's CSV source, relative to the schema
	// file's directory.
	File    string
	Columns []Column
	FKs     []ForeignKey
}

// Schema is the relational schema of one dataset.
type Schema struct {
	Tables []Table
}

// Table resolves a table by name.
func (s *Schema) Table(name string) (*Table, bool) {
	for i := range s.Tables {
		if s.Tables[i].Name == name {
			return &s.Tables[i], true
		}
	}
	return nil, false
}

// Column resolves a column index by name.
func (t *Table) Column(name string) (int, bool) {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// PKIndex returns the index of the primary-key column, or -1 when the
// table has none (rows are then keyed by their ordinal number).
func (t *Table) PKIndex() int {
	for i := range t.Columns {
		if t.Columns[i].PK {
			return i
		}
	}
	return -1
}

// fk resolves the foreign key declared on a column, if any.
func (t *Table) fk(col string) (*ForeignKey, bool) {
	for i := range t.FKs {
		if t.FKs[i].Column == col {
			return &t.FKs[i], true
		}
	}
	return nil, false
}

// EdgeLabel returns the property-edge label of a column: "<table>#<col>",
// the data-graph rendering of the direct mapping's table-qualified
// property IRIs.
func (t *Table) EdgeLabel(col string) string { return t.Name + "#" + col }

// RefLabel returns the reference-edge label of a foreign key: its declared
// label, or "<table>#<column>" with a trailing "_id" stripped.
func (t *Table) RefLabel(fk *ForeignKey) string {
	if fk.Label != "" {
		return fk.Label
	}
	return t.Name + "#" + strings.TrimSuffix(fk.Column, "_id")
}

// Labels returns every edge label the table's direct mapping can emit,
// sorted — the alphabet downstream mappings draw their source queries
// from.
func (s *Schema) Labels() []string {
	set := make(map[string]struct{})
	for i := range s.Tables {
		t := &s.Tables[i]
		for _, c := range t.Columns {
			if c.PK {
				continue
			}
			if fk, ok := t.fk(c.Name); ok {
				set[t.RefLabel(fk)] = struct{}{}
				continue
			}
			set[t.EdgeLabel(c.Name)] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Validate checks schema consistency: nonempty, unique table and column
// names, label-safe identifiers, at most one PK per table (non-nullable),
// and foreign keys that reference existing tables on their primary key.
func (s *Schema) Validate() error {
	if len(s.Tables) == 0 {
		return fmt.Errorf("%w: no tables", ErrBadSchema)
	}
	seenT := make(map[string]struct{})
	for i := range s.Tables {
		t := &s.Tables[i]
		if err := validIdent(t.Name); err != nil {
			return err
		}
		if _, dup := seenT[t.Name]; dup {
			return fmt.Errorf("%w: duplicate table %q", ErrBadSchema, t.Name)
		}
		seenT[t.Name] = struct{}{}
		if len(t.Columns) == 0 {
			return fmt.Errorf("%w: table %q has no columns", ErrBadSchema, t.Name)
		}
		seenC := make(map[string]struct{})
		pks := 0
		for _, c := range t.Columns {
			if err := validIdent(c.Name); err != nil {
				return fmt.Errorf("table %q: %w", t.Name, err)
			}
			if _, dup := seenC[c.Name]; dup {
				return fmt.Errorf("%w: table %q: duplicate column %q", ErrBadSchema, t.Name, c.Name)
			}
			seenC[c.Name] = struct{}{}
			if c.PK {
				pks++
				if c.Nullable {
					return fmt.Errorf("%w: table %q: primary key %q is nullable", ErrBadSchema, t.Name, c.Name)
				}
			}
		}
		if pks > 1 {
			return fmt.Errorf("%w: table %q has %d primary-key columns (want at most one)", ErrBadSchema, t.Name, pks)
		}
	}
	for i := range s.Tables {
		t := &s.Tables[i]
		for j := range t.FKs {
			fk := &t.FKs[j]
			if _, ok := t.Column(fk.Column); !ok {
				return fmt.Errorf("%w: table %q: foreign key on unknown column %q", ErrBadSchema, t.Name, fk.Column)
			}
			ref, ok := s.Table(fk.RefTable)
			if !ok {
				return fmt.Errorf("%w: table %q: foreign key %q references unknown table %q",
					ErrBadSchema, t.Name, fk.Column, fk.RefTable)
			}
			pki := ref.PKIndex()
			if pki < 0 || ref.Columns[pki].Name != fk.RefColumn {
				return fmt.Errorf("%w: table %q: foreign key %q must reference %q's primary key, not %q",
					ErrBadSchema, t.Name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			if fk.Label != "" {
				if err := validIdent(fk.Label); err != nil {
					return fmt.Errorf("table %q fk %q label: %w", t.Name, fk.Column, err)
				}
			}
		}
	}
	return nil
}

// validIdent bounds schema identifiers to characters that survive both the
// graph text format (whitespace-delimited) and the query-language label
// alphabet (letters, digits, '_', '-').
func validIdent(s string) error {
	if s == "" {
		return fmt.Errorf("%w: empty identifier", ErrBadSchema)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("%w: identifier %q: character %q (want [A-Za-z0-9_-])", ErrBadSchema, s, r)
		}
	}
	return nil
}

// String renders the schema in the text format ParseSchema accepts.
func (s *Schema) String() string {
	var b strings.Builder
	for i := range s.Tables {
		t := &s.Tables[i]
		if t.File != "" {
			fmt.Fprintf(&b, "table %s file=%s\n", t.Name, t.File)
		} else {
			fmt.Fprintf(&b, "table %s\n", t.Name)
		}
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "col %s %s %s", t.Name, c.Name, c.Type)
			if c.PK {
				b.WriteString(" pk")
			}
			if c.Nullable {
				b.WriteString(" null")
			}
			b.WriteByte('\n')
		}
		for j := range t.FKs {
			fk := &t.FKs[j]
			fmt.Fprintf(&b, "fk %s %s %s.%s", t.Name, fk.Column, fk.RefTable, fk.RefColumn)
			if fk.Label != "" {
				fmt.Fprintf(&b, " label=%s", fk.Label)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ParseSchema reads the line-based schema format:
//
//	# comment
//	table <name> [file=<path>]
//	col <table> <name> <type> [pk] [null]
//	fk <table> <column> <reftable>.<refcol> [label=<label>]
//
// Fields are whitespace-separated; blank lines and '#' comments are
// ignored. Directives may appear in any order as long as a table is
// declared before its columns and keys. The parsed schema is validated.
func ParseSchema(text string) (*Schema, error) {
	s := &Schema{}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		bad := func(format string, args ...any) error {
			return fmt.Errorf("%w: line %d: %s", ErrBadSchema, lineNo+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "table":
			if len(f) < 2 || len(f) > 3 {
				return nil, bad("want 'table <name> [file=<path>]'")
			}
			t := Table{Name: f[1]}
			if len(f) == 3 {
				v, ok := strings.CutPrefix(f[2], "file=")
				if !ok {
					return nil, bad("unknown attribute %q (want file=<path>)", f[2])
				}
				t.File = v
			}
			s.Tables = append(s.Tables, t)
		case "col":
			if len(f) < 4 {
				return nil, bad("want 'col <table> <name> <type> [pk] [null]'")
			}
			t, ok := s.Table(f[1])
			if !ok {
				return nil, bad("column for undeclared table %q", f[1])
			}
			typ, err := ParseType(f[3])
			if err != nil {
				return nil, bad("%v", err)
			}
			c := Column{Name: f[2], Type: typ}
			for _, attr := range f[4:] {
				switch attr {
				case "pk":
					c.PK = true
				case "null":
					c.Nullable = true
				default:
					return nil, bad("unknown column attribute %q (want pk or null)", attr)
				}
			}
			t.Columns = append(t.Columns, c)
		case "fk":
			if len(f) < 4 || len(f) > 5 {
				return nil, bad("want 'fk <table> <column> <reftable>.<refcol> [label=<label>]'")
			}
			t, ok := s.Table(f[1])
			if !ok {
				return nil, bad("foreign key for undeclared table %q", f[1])
			}
			refT, refC, ok := strings.Cut(f[3], ".")
			if !ok {
				return nil, bad("reference %q: want <reftable>.<refcol>", f[3])
			}
			fk := ForeignKey{Column: f[2], RefTable: refT, RefColumn: refC}
			if len(f) == 5 {
				v, ok := strings.CutPrefix(f[4], "label=")
				if !ok {
					return nil, bad("unknown attribute %q (want label=<label>)", f[4])
				}
				fk.Label = v
			}
			t.FKs = append(t.FKs, fk)
		default:
			return nil, bad("unknown directive %q (want table, col or fk)", f[0])
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// InferTable derives a table schema from a CSV header plus sampled rows:
// column types from the narrowest type every sampled value coerces to
// (int ⊂ float, bool, date, else text), nullability from observed empty
// cells, the primary key from the conventional id column ("id" or
// "<table>_id") when its sampled values are unique and non-null, and
// foreign keys from "<reftable>_id" naming against the other table names.
// Sampling is a heuristic: feed it enough rows to be representative, and
// correct the printed schema by hand where it guesses wrong.
func InferTable(name string, header []string, sample [][]string, otherTables []string) (Table, error) {
	if err := validIdent(name); err != nil {
		return Table{}, err
	}
	if len(header) == 0 {
		return Table{}, fmt.Errorf("%w: table %q: empty header", ErrBadSchema, name)
	}
	t := Table{Name: name}
	for ci, col := range header {
		c := Column{Name: col, Type: inferType(sample, ci)}
		for _, row := range sample {
			if ci < len(row) && row[ci] == "" {
				c.Nullable = true
			}
		}
		t.Columns = append(t.Columns, c)
	}
	// Primary key by convention, confirmed against the sample.
	for i := range t.Columns {
		n := t.Columns[i].Name
		if (n == "id" || n == name+"_id") && !t.Columns[i].Nullable && sampleUnique(sample, i) {
			t.Columns[i].PK = true
			break
		}
	}
	// Foreign keys by the "<reftable>_id" convention (also matching a
	// trailing-s plural table name, e.g. order_id → orders).
	for i := range t.Columns {
		if t.Columns[i].PK {
			continue
		}
		base, ok := strings.CutSuffix(t.Columns[i].Name, "_id")
		if !ok {
			continue
		}
		for _, other := range otherTables {
			if other == name {
				continue
			}
			if other == base || other == base+"s" {
				t.FKs = append(t.FKs, ForeignKey{Column: t.Columns[i].Name, RefTable: other, RefColumn: "id"})
				break
			}
		}
	}
	return t, nil
}

// inferType picks the narrowest type all sampled non-empty values of a
// column coerce to.
func inferType(sample [][]string, col int) Type {
	candidates := []Type{TypeInt, TypeFloat, TypeBool, TypeDate}
	seen := false
	for _, row := range sample {
		if col >= len(row) || row[col] == "" {
			continue
		}
		seen = true
		kept := candidates[:0]
		for _, t := range candidates {
			if _, err := Coerce(t, row[col]); err == nil {
				kept = append(kept, t)
			}
		}
		candidates = kept
		if len(candidates) == 0 {
			return TypeText
		}
	}
	if !seen || len(candidates) == 0 {
		return TypeText
	}
	return candidates[0]
}

// sampleUnique reports whether a column's sampled values are distinct and
// non-empty.
func sampleUnique(sample [][]string, col int) bool {
	seen := make(map[string]struct{}, len(sample))
	for _, row := range sample {
		if col >= len(row) || row[col] == "" {
			return false
		}
		if _, dup := seen[row[col]]; dup {
			return false
		}
		seen[row[col]] = struct{}{}
	}
	return true
}

// rowNodeID returns the node id of a table row: <table>:<key>.
func rowNodeID(table, key string) datagraph.NodeID {
	return datagraph.NodeID(table + ":" + key)
}

// cellNodeID returns the node id of a cell: <table>:<key>:<column>.
func cellNodeID(table, key, col string) datagraph.NodeID {
	return datagraph.NodeID(table + ":" + key + ":" + col)
}
