package ingest

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// A minimal SQLite database writer: just enough of the file format to
// round-trip fixtures through the driver-less reader — table b-trees with
// leaf and interior pages, the record format, and a single-page
// sqlite_master catalog. Payloads that would need overflow chains are
// rejected rather than spilled; the workload generator's rows are far
// below the threshold. Custom foreign-key edge labels are not expressible
// in DDL, so they do not survive a schema round-trip through a database
// file.

const genPageSize = 4096

// WriteSQLiteFile renders the schema and per-table rows (canonical cells
// aligned to each table's declared columns, "" meaning NULL — the same
// convention as CSV) into a SQLite database file.
func WriteSQLiteFile(path string, s *Schema, rows map[string][][]string) error {
	img, err := BuildSQLite(s, rows)
	if err != nil {
		return err
	}
	return os.WriteFile(path, img, 0o644)
}

// BuildSQLite renders an in-memory database image.
func BuildSQLite(s *Schema, rows map[string][][]string) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := &sqliteBuilder{pages: make([][]byte, 1)} // slot 0 = page 1, filled last
	var masters []masterRow
	for i := range s.Tables {
		t := &s.Tables[i]
		cells, err := encodeTableCells(t, rows[t.Name])
		if err != nil {
			return nil, err
		}
		root := b.packBTree(cells)
		masters = append(masters, masterRow{name: t.Name, rootpage: root, sql: createTableSQL(t)})
	}
	if err := b.packMaster(masters); err != nil {
		return nil, err
	}
	return b.assemble(), nil
}

// CreateTableSQL renders a table's DDL, the statement the reader's
// parseCreateTable understands.
func createTableSQL(t *Table) string {
	var parts []string
	for _, c := range t.Columns {
		p := c.Name + " " + sqlTypeName(c.Type)
		if c.PK {
			p += " PRIMARY KEY"
		} else if !c.Nullable {
			p += " NOT NULL"
		}
		parts = append(parts, p)
	}
	for i := range t.FKs {
		fk := &t.FKs[i]
		parts = append(parts, fmt.Sprintf("FOREIGN KEY(%s) REFERENCES %s(%s)", fk.Column, fk.RefTable, fk.RefColumn))
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", t.Name, strings.Join(parts, ", "))
}

func sqlTypeName(t Type) string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeBool:
		return "BOOLEAN"
	case TypeDate:
		return "DATE"
	}
	return "TEXT"
}

// leafCellImage is one encoded table-leaf cell plus its rowid (the
// interior-page key).
type leafCellImage struct {
	rowid int64
	data  []byte
}

// encodeTableCells encodes every row as a leaf cell, rowids 1..n in input
// order.
func encodeTableCells(t *Table, rows [][]string) ([]leafCellImage, error) {
	cells := make([]leafCellImage, 0, len(rows))
	for ri, row := range rows {
		if len(row) != len(t.Columns) {
			return nil, fmt.Errorf("%w: table %s row %d: %d cells, want %d",
				ErrBadRow, t.Name, ri+1, len(row), len(t.Columns))
		}
		rowid := int64(ri + 1)
		rec, err := encodeRecord(t, row)
		if err != nil {
			return nil, fmt.Errorf("table %s row %d: %w", t.Name, ri+1, err)
		}
		if len(rec) > genPageSize-35 {
			return nil, fmt.Errorf("%w: table %s row %d: %d-byte record needs an overflow chain (unsupported by the fixture writer)",
				ErrBadRow, t.Name, ri+1, len(rec))
		}
		cell := appendVarint(nil, int64(len(rec)))
		cell = appendVarint(cell, rowid)
		cell = append(cell, rec...)
		cells = append(cells, leafCellImage{rowid: rowid, data: cell})
	}
	return cells, nil
}

// encodeRecord encodes one row in the record format, typed per column:
// NULL, integers (smallest width), float64, or text.
func encodeRecord(t *Table, row []string) ([]byte, error) {
	serials := make([]int64, len(row))
	bodies := make([][]byte, len(row))
	for ci, cell := range row {
		if cell == "" {
			serials[ci] = 0
			continue
		}
		switch t.Columns[ci].Type {
		case TypeInt:
			n, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %q is not an int", ErrCoerce, cell)
			}
			serials[ci], bodies[ci] = encodeInt(n)
		case TypeBool:
			switch cell {
			case "true", "1", "t":
				serials[ci] = 9
			case "false", "0", "f":
				serials[ci] = 8
			default:
				return nil, fmt.Errorf("%w: %q is not a bool", ErrCoerce, cell)
			}
		case TypeFloat:
			f, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %q is not a float", ErrCoerce, cell)
			}
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
			serials[ci], bodies[ci] = 7, buf[:]
		default: // text, date
			serials[ci], bodies[ci] = int64(13+2*len(cell)), []byte(cell)
		}
	}
	return assembleRecord(serials, bodies), nil
}

// assembleRecord lays out header varints and bodies, solving the
// header-length-includes-itself fixpoint.
func assembleRecord(serials []int64, bodies [][]byte) []byte {
	stLen := 0
	for _, st := range serials {
		stLen += varintLen(st)
	}
	hlen := stLen + 1
	for varintLen(int64(hlen))+stLen != hlen {
		hlen = stLen + varintLen(int64(hlen))
	}
	rec := appendVarint(nil, int64(hlen))
	for _, st := range serials {
		rec = appendVarint(rec, st)
	}
	for _, b := range bodies {
		rec = append(rec, b...)
	}
	return rec
}

// encodeInt picks the narrowest integer serial type.
func encodeInt(n int64) (int64, []byte) {
	switch {
	case n == 0:
		return 8, nil
	case n == 1:
		return 9, nil
	}
	var width int
	switch {
	case n >= math.MinInt8 && n <= math.MaxInt8:
		width = 1
	case n >= math.MinInt16 && n <= math.MaxInt16:
		width = 2
	case n >= -(1<<23) && n < 1<<23:
		width = 3
	case n >= math.MinInt32 && n <= math.MaxInt32:
		width = 4
	case n >= -(1<<47) && n < 1<<47:
		width = 6
	default:
		width = 8
	}
	buf := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		buf[i] = byte(n)
		n >>= 8
	}
	serial := int64(width)
	if width == 6 {
		serial = 5
	}
	if width == 8 {
		serial = 6
	}
	return serial, buf
}

// sqliteBuilder accumulates finished page images; a page's number is its
// slice index + 1.
type sqliteBuilder struct {
	pages [][]byte
}

func (b *sqliteBuilder) addPage(p []byte) int {
	b.pages = append(b.pages, p)
	return len(b.pages)
}

// packBTree packs leaf cells into a b-tree and returns its root page.
func (b *sqliteBuilder) packBTree(cells []leafCellImage) int {
	type child struct {
		page   int
		maxKey int64
	}
	var level []child
	// Leaves: greedy fill under the page budget (8-byte header + 2-byte
	// pointer per cell + cell bytes).
	for start := 0; start < len(cells) || len(level) == 0; {
		used := 8
		end := start
		for end < len(cells) && used+2+len(cells[end].data) <= genPageSize {
			used += 2 + len(cells[end].data)
			end++
		}
		if end == start && start < len(cells) {
			end++ // a single cell always fits: records are capped below page size
		}
		page := buildPage(13, 8, cellData(cells[start:end]), 0)
		maxKey := int64(0)
		if end > start {
			maxKey = cells[end-1].rowid
		}
		level = append(level, child{page: b.addPage(page), maxKey: maxKey})
		start = end
		if start >= len(cells) {
			break
		}
	}
	// Interior levels until a single root remains. An interior cell is a
	// 4-byte child pointer plus the subtree's max-rowid varint; the last
	// child of each page becomes its right-most pointer.
	for len(level) > 1 {
		var next []child
		for start := 0; start < len(level); {
			used := 12
			end := start
			for end < len(level)-1 && end-start < 400 && used+2+4+varintLen(level[end].maxKey) <= genPageSize {
				used += 2 + 4 + varintLen(level[end].maxKey)
				end++
			}
			// end indexes the right-most child; at least one cell plus the
			// right-most pointer unless only one child remains.
			if end == start && end < len(level)-1 {
				end++
			}
			var ic [][]byte
			for _, c := range level[start:end] {
				cell := binary.BigEndian.AppendUint32(nil, uint32(c.page))
				ic = append(ic, appendVarint(cell, c.maxKey))
			}
			page := buildPage(5, 12, ic, uint32(level[end].page))
			next = append(next, child{page: b.addPage(page), maxKey: level[end].maxKey})
			start = end + 1
		}
		level = next
	}
	return level[0].page
}

func cellData(cells []leafCellImage) [][]byte {
	out := make([][]byte, len(cells))
	for i := range cells {
		out[i] = cells[i].data
	}
	return out
}

// buildPage lays out one b-tree page: header, cell pointer array growing
// down from the header, cell content growing up from the end.
func buildPage(typ byte, hdrLen int, cells [][]byte, rightMost uint32) []byte {
	p := make([]byte, genPageSize)
	p[0] = typ
	binary.BigEndian.PutUint16(p[3:5], uint16(len(cells)))
	if hdrLen == 12 {
		binary.BigEndian.PutUint32(p[8:12], rightMost)
	}
	content := genPageSize
	for i, c := range cells {
		content -= len(c)
		copy(p[content:], c)
		binary.BigEndian.PutUint16(p[hdrLen+2*i:], uint16(content))
	}
	binary.BigEndian.PutUint16(p[5:7], uint16(content%65536))
	return p
}

// packMaster lays out the sqlite_master catalog as a single leaf rooted at
// page 1. The rootpage column is always encoded as a 4-byte integer
// (serial type 4): catalog record sizes then do not depend on page
// numbering, which was fixed before the catalog was built.
func (b *sqliteBuilder) packMaster(masters []masterRow) error {
	var cells [][]byte
	used := 100 + 8
	for i, m := range masters {
		serials := []int64{
			int64(13 + 2*len("table")),
			int64(13 + 2*len(m.name)),
			int64(13 + 2*len(m.name)),
			4,
			int64(13 + 2*len(m.sql)),
		}
		var root [4]byte
		binary.BigEndian.PutUint32(root[:], uint32(m.rootpage))
		rec := assembleRecord(serials, [][]byte{[]byte("table"), []byte(m.name), []byte(m.name), root[:], []byte(m.sql)})
		cell := appendVarint(nil, int64(len(rec)))
		cell = appendVarint(cell, int64(i+1))
		cell = append(cell, rec...)
		used += 2 + len(cell)
		if used > genPageSize {
			return fmt.Errorf("ingest: catalog overflows page 1 (%d tables; shorten DDL or reduce tables)", len(masters))
		}
		cells = append(cells, cell)
	}
	// Page 1 is a leaf page shifted past the 100-byte file header.
	p1 := make([]byte, genPageSize)
	p1[100] = 13
	binary.BigEndian.PutUint16(p1[103:105], uint16(len(cells)))
	content := genPageSize
	for i, c := range cells {
		content -= len(c)
		copy(p1[content:], c)
		binary.BigEndian.PutUint16(p1[100+8+2*i:], uint16(content))
	}
	binary.BigEndian.PutUint16(p1[105:107], uint16(content%65536))
	b.pages[0] = p1
	return nil
}

// assemble concatenates pages and stamps the file header into page 1.
func (b *sqliteBuilder) assemble() []byte {
	img := make([]byte, 0, len(b.pages)*genPageSize)
	for _, p := range b.pages {
		img = append(img, p...)
	}
	copy(img, sqliteMagic)
	binary.BigEndian.PutUint16(img[16:18], genPageSize)
	img[18], img[19] = 1, 1                                      // legacy journal read/write versions
	img[21], img[22], img[23] = 64, 32, 32                       // payload fractions (fixed by format)
	binary.BigEndian.PutUint32(img[28:32], uint32(len(b.pages))) // database size in pages
	binary.BigEndian.PutUint32(img[44:48], 4)                    // schema format number
	binary.BigEndian.PutUint32(img[56:60], 1)                    // text encoding: UTF-8
	binary.BigEndian.PutUint32(img[96:100], 3045000)             // library version stamp
	return img
}

// appendVarint appends SQLite's 7-bit big-endian varint.
func appendVarint(dst []byte, v int64) []byte {
	if v >= 0 && v < 0x80 {
		return append(dst, byte(v))
	}
	n := varintLen(v)
	if n == 9 {
		dst = append(dst, byte(v>>56)|0x80, byte(v>>49)|0x80, byte(v>>42)|0x80, byte(v>>35)|0x80,
			byte(v>>28)|0x80, byte(v>>21)|0x80, byte(v>>14)|0x80, byte(v>>7)|0x80, byte(v))
		return dst
	}
	for i := n - 1; i >= 1; i-- {
		dst = append(dst, byte(v>>(7*uint(i)))|0x80)
	}
	return append(dst, byte(v)&0x7f)
}

// varintLen returns the encoded size of v.
func varintLen(v int64) int {
	if v < 0 {
		return 9
	}
	n := 1
	for x := v >> 7; x != 0; x >>= 7 {
		n++
	}
	if n > 9 {
		n = 9
	}
	return n
}
