package ingest

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Row is one relational row as delivered by a RowReader: raw cell text
// aligned to the table's declared column order, with SQL NULLs flagged
// separately (CSV renders NULL as the empty cell; SQLite records carry an
// explicit null serial type). Coercion to canonical form happens in the
// mapping stage, against the declared column types.
type Row struct {
	// Num is the 1-based data row number within the source (header
	// excluded), the coordinate reported in row errors.
	Num   int
	Cells []string
	Nulls []bool
}

// RowReader streams one table's rows. Next returns io.EOF at end of input
// and *RowError for row-scoped failures the caller may elect to skip
// (ragged width, broken quoting); any other error is fatal.
type RowReader interface {
	Next() (Row, error)
	Close() error
}

// Source supplies one table's rows. Open receives the resolved table
// schema so readers can align file columns to declared columns.
type Source struct {
	Table string
	Open  func(t *Table) (RowReader, error)
}

// CSVFile returns a Source reading the table from a CSV file on disk.
// The first record is the header.
func CSVFile(table, path string) Source {
	return Source{Table: table, Open: func(t *Table) (RowReader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("ingest: table %s: %w", table, err)
		}
		r, err := newCSVReader(t, f)
		if err != nil {
			f.Close()
			return nil, err
		}
		r.closer = f
		return r, nil
	}}
}

// CSVString returns a Source reading the table from in-memory CSV text;
// the fixture-building counterpart of CSVFile.
func CSVString(table, text string) Source {
	return Source{Table: table, Open: func(t *Table) (RowReader, error) {
		return newCSVReader(t, strings.NewReader(text))
	}}
}

// csvReader adapts encoding/csv to the RowReader contract: it maps header
// columns onto the table's declared columns, renders empty cells as NULL,
// and wraps parse failures as row-scoped errors.
type csvReader struct {
	table  *Table
	r      *csv.Reader
	perm   []int // declared column index -> file column index
	row    int
	closer io.Closer
}

func newCSVReader(t *Table, src io.Reader) (*csvReader, error) {
	r := csv.NewReader(src)
	r.FieldsPerRecord = -1 // ragged rows are diagnosed per row, not fatally
	r.ReuseRecord = true
	header, err := r.Read()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: table %s: empty input", ErrBadHeader, t.Name)
		}
		return nil, fmt.Errorf("%w: table %s: %v", ErrBadHeader, t.Name, err)
	}
	perm := make([]int, len(t.Columns))
	for ci := range t.Columns {
		perm[ci] = -1
		for fi, h := range header {
			if strings.TrimSpace(h) == t.Columns[ci].Name {
				perm[ci] = fi
				break
			}
		}
		if perm[ci] < 0 {
			return nil, fmt.Errorf("%w: table %s: header %v is missing declared column %q",
				ErrBadHeader, t.Name, header, t.Columns[ci].Name)
		}
	}
	return &csvReader{table: t, r: r, perm: perm}, nil
}

func (c *csvReader) Next() (Row, error) {
	rec, err := c.r.Read()
	if err != nil {
		if err == io.EOF {
			return Row{}, io.EOF
		}
		// encoding/csv resynchronizes at the next record after a parse
		// error, so quoting failures are skippable row errors.
		c.row++
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			return Row{}, rowErr(c.table.Name, c.row, fmt.Errorf("%w: %v", ErrBadRow, pe.Err))
		}
		return Row{}, rowErr(c.table.Name, c.row, fmt.Errorf("%w: %v", ErrBadRow, err))
	}
	c.row++
	row := Row{
		Num:   c.row,
		Cells: make([]string, len(c.perm)),
		Nulls: make([]bool, len(c.perm)),
	}
	for ci, fi := range c.perm {
		if fi >= len(rec) {
			return Row{}, rowErr(c.table.Name, c.row,
				fmt.Errorf("%w: %d fields, want at least %d", ErrBadRow, len(rec), fi+1))
		}
		cell := rec[fi]
		if cell == "" {
			row.Nulls[ci] = true
			continue
		}
		row.Cells[ci] = cell
	}
	return row, nil
}

func (c *csvReader) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// Rows returns a Source over already-materialized rows (cells aligned to
// declared columns, empty string = NULL unless flagged); the programmatic
// entry point internal/relational's fixture bridge uses.
func Rows(table string, rows [][]string) Source {
	return Source{Table: table, Open: func(t *Table) (RowReader, error) {
		return &sliceReader{table: t, rows: rows}, nil
	}}
}

type sliceReader struct {
	table *Table
	rows  [][]string
	i     int
}

func (s *sliceReader) Next() (Row, error) {
	if s.i >= len(s.rows) {
		return Row{}, io.EOF
	}
	rec := s.rows[s.i]
	s.i++
	row := Row{Num: s.i, Cells: make([]string, len(s.table.Columns)), Nulls: make([]bool, len(s.table.Columns))}
	if len(rec) != len(s.table.Columns) {
		return Row{}, rowErr(s.table.Name, s.i,
			fmt.Errorf("%w: %d fields, want %d", ErrBadRow, len(rec), len(s.table.Columns)))
	}
	for ci, cell := range rec {
		if cell == "" {
			row.Nulls[ci] = true
			continue
		}
		row.Cells[ci] = cell
	}
	return row, nil
}

func (s *sliceReader) Close() error { return nil }
