package ingest

import (
	"errors"
	"fmt"
)

// Typed sentinel errors, in the spirit of the facade's ErrBadOptions
// family: callers (the CLI, the server, tests) dispatch with errors.Is
// instead of parsing messages. Row-scoped sentinels are always delivered
// wrapped in a *RowError carrying the table and 1-based data row number.
var (
	// ErrBadSchema reports a malformed or inconsistent schema: unparseable
	// text, duplicate tables or columns, a foreign key referencing a
	// missing table or a non-key column, a nullable primary key.
	ErrBadSchema = errors.New("ingest: bad schema")
	// ErrBadHeader reports a CSV header that does not cover the table's
	// declared columns.
	ErrBadHeader = errors.New("ingest: bad header")
	// ErrBadRow reports a row the reader could not parse: ragged width,
	// broken quoting, an undecodable SQLite record.
	ErrBadRow = errors.New("ingest: bad row")
	// ErrCoerce reports a cell that failed type coercion against the
	// column's declared type.
	ErrCoerce = errors.New("ingest: type coercion failed")
	// ErrDuplicatePK reports a second row with an already-loaded primary
	// key.
	ErrDuplicatePK = errors.New("ingest: duplicate primary key")
	// ErrNullPK reports a row whose primary-key cell is NULL.
	ErrNullPK = errors.New("ingest: null primary key")
	// ErrDanglingFK reports a foreign-key cell whose referenced row never
	// appeared in the referenced table.
	ErrDanglingFK = errors.New("ingest: dangling foreign key")
)

// RowError is a row-scoped ingestion failure: a typed sentinel plus where
// it happened. Under the skip-bad-rows policy the pipeline counts these
// and moves on; under the strict policy the first one aborts the load.
type RowError struct {
	Table string
	Row   int // 1-based data row number (header excluded)
	Err   error
}

func (e *RowError) Error() string {
	return fmt.Sprintf("table %s row %d: %v", e.Table, e.Row, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// rowErr wraps a sentinel-based error with its row coordinates.
func rowErr(table string, row int, err error) *RowError {
	return &RowError{Table: table, Row: row, Err: err}
}
