package ingest

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// A driver-less SQLite reader. The toolchain has no cgo SQLite driver and
// the no-new-dependencies rule forbids pulling one in, so ingestion reads
// the database file format directly: the 100-byte header, the
// sqlite_master catalog, table b-trees (interior + leaf pages, overflow
// chains), and the record format with its serial types. Only the subset
// bulk ingestion needs is implemented — read-only table scans in rowid
// order — which is also the subset our fixture writer (sqlitegen.go)
// emits. WAL-mode databases with unmerged frames are rejected.

const sqliteMagic = "SQLite format 3\x00"

// SQLiteDB is an opened database file, held in memory.
type SQLiteDB struct {
	data     []byte
	pageSize int
	usable   int // pageSize minus the per-page reserved region
	master   []masterRow
}

type masterRow struct {
	name     string
	rootpage int
	sql      string
}

// OpenSQLite reads and parses the database file's catalog.
func OpenSQLite(path string) (*SQLiteDB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	db, err := ParseSQLite(data)
	if err != nil {
		return nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	return db, nil
}

// ParseSQLite parses an in-memory database image.
func ParseSQLite(data []byte) (*SQLiteDB, error) {
	if len(data) < 100 || string(data[:16]) != sqliteMagic {
		return nil, fmt.Errorf("not a SQLite 3 database")
	}
	ps := int(binary.BigEndian.Uint16(data[16:18]))
	if ps == 1 {
		ps = 65536
	}
	if ps < 512 || ps&(ps-1) != 0 {
		return nil, fmt.Errorf("bad page size %d", ps)
	}
	if enc := binary.BigEndian.Uint32(data[56:60]); enc != 1 && enc != 0 {
		return nil, fmt.Errorf("unsupported text encoding %d (want UTF-8)", enc)
	}
	if data[18] > 1 || data[19] > 1 {
		return nil, fmt.Errorf("WAL-mode database (run PRAGMA journal_mode=DELETE and retry)")
	}
	db := &SQLiteDB{data: data, pageSize: ps, usable: ps - int(data[20])}
	// sqlite_master roots at page 1; its rows are
	// (type, name, tbl_name, rootpage, sql).
	it, err := db.iter(1)
	if err != nil {
		return nil, err
	}
	for {
		_, vals, nulls, err := it.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(vals) < 5 || nulls[0] || vals[0] != "table" || nulls[1] || nulls[3] || nulls[4] {
			continue
		}
		root, err := strconv.Atoi(vals[3])
		if err != nil {
			return nil, fmt.Errorf("sqlite_master: bad rootpage %q", vals[3])
		}
		db.master = append(db.master, masterRow{name: vals[1], rootpage: root, sql: vals[4]})
	}
	return db, nil
}

// Tables lists the catalog's table names in catalog order.
func (db *SQLiteDB) Tables() []string {
	out := make([]string, len(db.master))
	for i, m := range db.master {
		out[i] = m.name
	}
	return out
}

// Schema derives an ingest schema from the catalog's CREATE TABLE
// statements, through the declared-type mapping table.
func (db *SQLiteDB) Schema() (*Schema, error) {
	s := &Schema{}
	for _, m := range db.master {
		t, err := parseCreateTable(m.sql)
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", m.name, err)
		}
		t.Name = m.name
		s.Tables = append(s.Tables, t)
	}
	// Second pass: REFERENCES t — with no column — means t's primary key.
	for i := range s.Tables {
		for j := range s.Tables[i].FKs {
			fk := &s.Tables[i].FKs[j]
			if fk.RefColumn != "" {
				continue
			}
			ref, ok := s.Table(fk.RefTable)
			if !ok {
				return nil, fmt.Errorf("%w: table %q: foreign key %q references unknown table %q",
					ErrBadSchema, s.Tables[i].Name, fk.Column, fk.RefTable)
			}
			pki := ref.PKIndex()
			if pki < 0 {
				return nil, fmt.Errorf("%w: table %q: foreign key %q references %q, which has no primary key",
					ErrBadSchema, s.Tables[i].Name, fk.Column, fk.RefTable)
			}
			fk.RefColumn = ref.Columns[pki].Name
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Sources returns one Source per catalog table.
func (db *SQLiteDB) Sources() []Source {
	out := make([]Source, len(db.master))
	for i, m := range db.master {
		out[i] = db.Source(m.name)
	}
	return out
}

// Source returns the Source for one table.
func (db *SQLiteDB) Source(table string) Source {
	return Source{Table: table, Open: func(t *Table) (RowReader, error) {
		var m *masterRow
		for i := range db.master {
			if db.master[i].name == table {
				m = &db.master[i]
				break
			}
		}
		if m == nil {
			return nil, fmt.Errorf("%w: database has no table %q", ErrBadSchema, table)
		}
		ddl, err := parseCreateTable(m.sql)
		if err != nil {
			return nil, err
		}
		// Map the stored record layout (DDL column order) onto the
		// declared table's columns, like the CSV header permutation.
		perm := make([]int, len(t.Columns))
		for ci := range t.Columns {
			perm[ci] = -1
			for fi := range ddl.Columns {
				if ddl.Columns[fi].Name == t.Columns[ci].Name {
					perm[ci] = fi
					break
				}
			}
			if perm[ci] < 0 {
				return nil, fmt.Errorf("%w: table %s has no stored column %q",
					ErrBadHeader, table, t.Columns[ci].Name)
			}
		}
		// An INTEGER PRIMARY KEY column aliases the rowid: SQLite stores
		// NULL in the record and the real value in the cell key.
		alias := -1
		if pki := ddl.PKIndex(); pki >= 0 && ddl.Columns[pki].Type == TypeInt {
			alias = pki
		}
		it, err := db.iter(m.rootpage)
		if err != nil {
			return nil, err
		}
		return &sqliteReader{table: t, it: it, perm: perm, rowidAlias: alias}, nil
	}}
}

// sqliteReader adapts a b-tree scan to the RowReader contract.
type sqliteReader struct {
	table      *Table
	it         *btreeIter
	perm       []int
	rowidAlias int
	row        int
}

func (r *sqliteReader) Next() (Row, error) {
	rowid, vals, nulls, err := r.it.next()
	if err == io.EOF {
		return Row{}, io.EOF
	}
	r.row++
	if err != nil {
		return Row{}, rowErr(r.table.Name, r.row, fmt.Errorf("%w: %v", ErrBadRow, err))
	}
	row := Row{Num: r.row, Cells: make([]string, len(r.perm)), Nulls: make([]bool, len(r.perm))}
	for ci, fi := range r.perm {
		switch {
		case fi == r.rowidAlias && (fi >= len(vals) || nulls[fi]):
			row.Cells[ci] = strconv.FormatInt(rowid, 10)
		case fi >= len(vals) || nulls[fi]:
			row.Nulls[ci] = true
		default:
			row.Cells[ci] = vals[fi]
		}
	}
	return row, nil
}

func (r *sqliteReader) Close() error { return nil }

// --- b-tree iteration ---

// btreeIter walks a table b-tree depth-first, yielding leaf cells in
// rowid order.
type btreeIter struct {
	db    *SQLiteDB
	stack []frame
}

type frame struct {
	page int
	cell int // next cell index; for interior pages, len(cells) means the right-most pointer
}

func (db *SQLiteDB) iter(root int) (*btreeIter, error) {
	if root < 1 || root*db.pageSize > len(db.data) {
		return nil, fmt.Errorf("rootpage %d out of range", root)
	}
	return &btreeIter{db: db, stack: []frame{{page: root}}}, nil
}

// page returns a page's bytes and the offset of its b-tree header (page 1
// carries the 100-byte file header first).
func (db *SQLiteDB) page(n int) ([]byte, int, error) {
	off := (n - 1) * db.pageSize
	if n < 1 || off+db.pageSize > len(db.data) {
		return nil, 0, fmt.Errorf("page %d out of range", n)
	}
	p := db.data[off : off+db.pageSize]
	if n == 1 {
		return p, 100, nil
	}
	return p, 0, nil
}

// next yields the next leaf cell: rowid plus the decoded record.
func (it *btreeIter) next() (int64, []string, []bool, error) {
	for len(it.stack) > 0 {
		f := &it.stack[len(it.stack)-1]
		p, hdr, err := it.db.page(f.page)
		if err != nil {
			return 0, nil, nil, err
		}
		typ := p[hdr]
		ncells := int(binary.BigEndian.Uint16(p[hdr+3 : hdr+5]))
		switch typ {
		case 13: // table leaf
			if f.cell >= ncells {
				it.stack = it.stack[:len(it.stack)-1]
				continue
			}
			off := int(binary.BigEndian.Uint16(p[hdr+8+2*f.cell:]))
			f.cell++
			return it.db.leafCell(p, off)
		case 5: // table interior
			var child int
			switch {
			case f.cell < ncells:
				off := int(binary.BigEndian.Uint16(p[hdr+12+2*f.cell:]))
				if off+4 > len(p) {
					return 0, nil, nil, fmt.Errorf("page %d: cell offset out of range", f.page)
				}
				child = int(binary.BigEndian.Uint32(p[off:]))
			case f.cell == ncells:
				child = int(binary.BigEndian.Uint32(p[hdr+8:]))
			default:
				it.stack = it.stack[:len(it.stack)-1]
				continue
			}
			f.cell++
			it.stack = append(it.stack, frame{page: child})
		default:
			return 0, nil, nil, fmt.Errorf("page %d: unexpected b-tree page type %d", f.page, typ)
		}
	}
	return 0, nil, nil, io.EOF
}

// leafCell decodes one table-leaf cell at off: payload length, rowid, and
// the (possibly overflowing) record payload.
func (db *SQLiteDB) leafCell(p []byte, off int) (int64, []string, []bool, error) {
	if off >= len(p) {
		return 0, nil, nil, fmt.Errorf("cell offset %d out of range", off)
	}
	plen, n := varint(p[off:])
	if n == 0 {
		return 0, nil, nil, fmt.Errorf("bad payload length varint")
	}
	off += n
	rowid, n := varint(p[off:])
	if n == 0 {
		return 0, nil, nil, fmt.Errorf("bad rowid varint")
	}
	off += n

	payload, err := db.assemblePayload(p, off, int(plen))
	if err != nil {
		return 0, nil, nil, err
	}
	vals, nulls, err := decodeRecord(payload)
	if err != nil {
		return 0, nil, nil, err
	}
	return rowid, vals, nulls, nil
}

// assemblePayload gathers a cell payload, following the overflow chain
// when the record spills past the leaf-local threshold.
func (db *SQLiteDB) assemblePayload(p []byte, off, plen int) ([]byte, error) {
	u := db.usable
	maxLocal := u - 35
	if plen <= maxLocal {
		if off+plen > len(p) {
			return nil, fmt.Errorf("payload out of page bounds")
		}
		return p[off : off+plen], nil
	}
	minLocal := (u-12)*32/255 - 23
	local := minLocal + (plen-minLocal)%(u-4)
	if local > maxLocal {
		local = minLocal
	}
	if off+local+4 > len(p) {
		return nil, fmt.Errorf("overflowing payload out of page bounds")
	}
	buf := make([]byte, 0, plen)
	buf = append(buf, p[off:off+local]...)
	next := int(binary.BigEndian.Uint32(p[off+local:]))
	for len(buf) < plen {
		if next == 0 {
			return nil, fmt.Errorf("overflow chain ends short: %d of %d bytes", len(buf), plen)
		}
		op, _, err := db.page(next)
		if err != nil {
			return nil, err
		}
		next = int(binary.BigEndian.Uint32(op))
		take := plen - len(buf)
		if take > u-4 {
			take = u - 4
		}
		buf = append(buf, op[4:4+take]...)
	}
	return buf, nil
}

// decodeRecord decodes the record format: a header of serial types
// followed by the value bodies. Values render to the textual form Coerce
// later canonicalizes; blobs pass through as raw bytes.
func decodeRecord(rec []byte) ([]string, []bool, error) {
	hlen, n := varint(rec)
	if n == 0 || int(hlen) > len(rec) || int(hlen) < n {
		return nil, nil, fmt.Errorf("bad record header")
	}
	var serials []int64
	for h := n; h < int(hlen); {
		st, sn := varint(rec[h:])
		if sn == 0 {
			return nil, nil, fmt.Errorf("bad serial type varint")
		}
		serials = append(serials, st)
		h += sn
	}
	vals := make([]string, len(serials))
	nulls := make([]bool, len(serials))
	body := rec[hlen:]
	for i, st := range serials {
		size := serialSize(st)
		if size < 0 {
			return nil, nil, fmt.Errorf("reserved serial type %d", st)
		}
		if size > len(body) {
			return nil, nil, fmt.Errorf("record body too short")
		}
		v := body[:size]
		body = body[size:]
		switch {
		case st == 0:
			nulls[i] = true
		case st >= 1 && st <= 6:
			vals[i] = strconv.FormatInt(twosComplement(v), 10)
		case st == 7:
			f := math.Float64frombits(binary.BigEndian.Uint64(v))
			vals[i] = strconv.FormatFloat(f, 'g', -1, 64)
		case st == 8:
			vals[i] = "0"
		case st == 9:
			vals[i] = "1"
		default: // blob or text: pass bytes through
			vals[i] = string(v)
		}
	}
	return vals, nulls, nil
}

// serialSize returns a serial type's body size in bytes, or -1 for the
// reserved types.
func serialSize(st int64) int {
	switch st {
	case 0, 8, 9:
		return 0
	case 1:
		return 1
	case 2:
		return 2
	case 3:
		return 3
	case 4:
		return 4
	case 5:
		return 6
	case 6, 7:
		return 8
	case 10, 11:
		return -1
	}
	if st >= 12 {
		return int(st-12) / 2
	}
	return -1
}

// twosComplement sign-extends a 1–8 byte big-endian integer.
func twosComplement(b []byte) int64 {
	var v int64
	for _, x := range b {
		v = v<<8 | int64(x)
	}
	shift := 64 - 8*len(b)
	return v << shift >> shift
}

// varint decodes SQLite's big-endian 7-bit varint (up to 9 bytes, the
// ninth contributing a full 8 bits). n == 0 reports truncated input.
func varint(b []byte) (v int64, n int) {
	for i := 0; i < 8 && i < len(b); i++ {
		v = v<<7 | int64(b[i]&0x7f)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	if len(b) < 9 {
		return 0, 0
	}
	return v<<8 | int64(b[8]), 9
}

// --- CREATE TABLE parsing ---

// parseCreateTable extracts columns and constraints from a CREATE TABLE
// statement: enough SQL to cover what fixtures and common dumps declare —
// typed columns, PRIMARY KEY / NOT NULL / REFERENCES column constraints,
// and PRIMARY KEY / FOREIGN KEY table constraints. The table name is left
// empty (the catalog's name field is authoritative).
func parseCreateTable(sql string) (Table, error) {
	open := strings.IndexByte(sql, '(')
	close_ := strings.LastIndexByte(sql, ')')
	if open < 0 || close_ <= open {
		return Table{}, fmt.Errorf("%w: unparseable CREATE TABLE %q", ErrBadSchema, sql)
	}
	var t Table
	for _, item := range splitTopLevel(sql[open+1 : close_]) {
		toks := sqlTokens(item)
		if len(toks) == 0 {
			continue
		}
		// Named table constraint: skip "CONSTRAINT <name>".
		if eqFold(toks[0], "CONSTRAINT") && len(toks) > 2 {
			toks = toks[2:]
		}
		switch {
		case eqFold(toks[0], "PRIMARY") && len(toks) > 1 && eqFold(toks[1], "KEY"):
			cols := parenList(toks[2:])
			if len(cols) != 1 {
				return Table{}, fmt.Errorf("%w: composite primary keys are not supported: %q", ErrBadSchema, item)
			}
			if ci, ok := t.Column(cols[0]); ok {
				t.Columns[ci].PK = true
				t.Columns[ci].Nullable = false
			}
		case eqFold(toks[0], "FOREIGN") && len(toks) > 1 && eqFold(toks[1], "KEY"):
			cols := parenList(toks[2:])
			if len(cols) != 1 {
				return Table{}, fmt.Errorf("%w: composite foreign keys are not supported: %q", ErrBadSchema, item)
			}
			fk, err := parseReferences(toks, cols[0])
			if err != nil {
				return Table{}, err
			}
			t.FKs = append(t.FKs, fk)
		case eqFold(toks[0], "UNIQUE") || eqFold(toks[0], "CHECK"):
			// ignored
		default:
			col, fk, err := parseColumnDef(toks)
			if err != nil {
				return Table{}, err
			}
			t.Columns = append(t.Columns, col)
			if fk != nil {
				t.FKs = append(t.FKs, *fk)
			}
		}
	}
	if len(t.Columns) == 0 {
		return Table{}, fmt.Errorf("%w: CREATE TABLE with no columns: %q", ErrBadSchema, sql)
	}
	return t, nil
}

// parseColumnDef parses "name [type...] [constraints...]".
func parseColumnDef(toks []string) (Column, *ForeignKey, error) {
	c := Column{Name: unquoteIdent(toks[0]), Nullable: true}
	var typeToks []string
	i := 1
	for ; i < len(toks); i++ {
		if isConstraintKeyword(toks[i]) {
			break
		}
		typeToks = append(typeToks, toks[i])
	}
	c.Type = MapDeclaredType(strings.Join(typeToks, " "))
	var fk *ForeignKey
	for ; i < len(toks); i++ {
		switch {
		case eqFold(toks[i], "PRIMARY") && i+1 < len(toks) && eqFold(toks[i+1], "KEY"):
			c.PK, c.Nullable = true, false
			i++
		case eqFold(toks[i], "NOT") && i+1 < len(toks) && eqFold(toks[i+1], "NULL"):
			c.Nullable = false
			i++
		case eqFold(toks[i], "REFERENCES"):
			f, err := parseReferences(toks[i:], c.Name)
			if err != nil {
				return c, nil, err
			}
			fk = &f
		}
	}
	return c, fk, nil
}

// parseReferences finds "REFERENCES <table> [(<col>)]" in toks and builds
// the foreign key for the given local column. An omitted column list means
// the referenced table's primary key (resolved in Schema's second pass).
func parseReferences(toks []string, local string) (ForeignKey, error) {
	for i := 0; i < len(toks); i++ {
		if !eqFold(toks[i], "REFERENCES") {
			continue
		}
		if i+1 >= len(toks) {
			return ForeignKey{}, fmt.Errorf("%w: REFERENCES with no table", ErrBadSchema)
		}
		fk := ForeignKey{Column: unquoteIdent(local), RefTable: unquoteIdent(toks[i+1])}
		if cols := parenList(toks[i+2:]); len(cols) == 1 {
			fk.RefColumn = cols[0]
		}
		return fk, nil
	}
	return ForeignKey{}, fmt.Errorf("%w: FOREIGN KEY with no REFERENCES clause", ErrBadSchema)
}

// parenList reads a leading "( ident [, ident...] )" token run.
func parenList(toks []string) []string {
	if len(toks) == 0 || toks[0] != "(" {
		return nil
	}
	var out []string
	for _, tok := range toks[1:] {
		switch tok {
		case ")":
			return out
		case ",":
		default:
			out = append(out, unquoteIdent(tok))
		}
	}
	return nil
}

func isConstraintKeyword(tok string) bool {
	for _, k := range [...]string{"PRIMARY", "NOT", "NULL", "UNIQUE", "DEFAULT", "REFERENCES", "CHECK", "COLLATE", "CONSTRAINT", "GENERATED", "AS"} {
		if eqFold(tok, k) {
			return true
		}
	}
	return false
}

func eqFold(a, b string) bool { return strings.EqualFold(a, b) }

// unquoteIdent strips SQL identifier quoting: "x", `x`, [x], 'x'.
func unquoteIdent(s string) string {
	if len(s) >= 2 {
		switch {
		case s[0] == '"' && s[len(s)-1] == '"',
			s[0] == '`' && s[len(s)-1] == '`',
			s[0] == '\'' && s[len(s)-1] == '\'':
			return s[1 : len(s)-1]
		case s[0] == '[' && s[len(s)-1] == ']':
			return s[1 : len(s)-1]
		}
	}
	return s
}

// sqlTokens splits a DDL fragment into tokens, treating parens and commas
// as standalone tokens and keeping quoted identifiers intact.
func sqlTokens(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	var quote byte
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if quote != 0 {
			cur.WriteByte(ch)
			if ch == quote {
				quote = 0
			}
			continue
		}
		switch ch {
		case '"', '`', '\'':
			cur.WriteByte(ch)
			quote = ch
		case '[':
			cur.WriteByte(ch)
			quote = ']'
		case '(', ')', ',':
			flush()
			toks = append(toks, string(ch))
		case ' ', '\t', '\n', '\r':
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	return toks
}

// splitTopLevel splits a CREATE TABLE body on commas outside parens and
// quotes.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if quote != 0 {
			if ch == quote {
				quote = 0
			}
			continue
		}
		switch ch {
		case '"', '`', '\'':
			quote = ch
		case '[':
			quote = ']'
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
