package ingest

import (
	"fmt"
	"strconv"

	"repro/internal/datagraph"
)

// The direct mapping, per row. mapRow runs in the parallel map stage of
// the pipeline: it coerces cells against declared types and lays the row
// out as the graph operations the single writer will apply. All errors it
// returns are row-scoped (*RowError).

// cell is one non-key, non-reference column value of a mapped row.
type cell struct {
	col  string // declared column name
	val  string // canonical rendering; meaningless when null
	null bool
}

// ref is one foreign-key reference of a mapped row. NULL foreign keys emit
// no ref (the direct mapping drops the edge entirely).
type ref struct {
	label    string
	refTable string
	refKey   string // canonical rendering of the referenced primary key
}

// mappedRow is a coerced row ready for the writer.
type mappedRow struct {
	table *Table
	num   int    // 1-based data row number, for error reporting
	key   string // canonical primary key (or ordinal for keyless tables)
	cells []cell
	refs  []ref
}

// nodes returns how many graph nodes the row materializes (the row node
// plus one cell node per property column).
func (m *mappedRow) nodes() int { return 1 + len(m.cells) }

// edges returns how many edges the row materializes, counting reference
// edges optimistically (a dangling one is dropped or aborts later).
func (m *mappedRow) edges() int { return len(m.cells) + len(m.refs) }

// mapRow coerces one raw row into its graph operations.
func mapRow(t *Table, row Row) (mappedRow, error) {
	m := mappedRow{table: t, num: row.Num}
	pki := t.PKIndex()
	if pki >= 0 {
		if row.Nulls[pki] {
			return m, rowErr(t.Name, row.Num, fmt.Errorf("%w: column %q", ErrNullPK, t.Columns[pki].Name))
		}
		key, err := Coerce(t.Columns[pki].Type, row.Cells[pki])
		if err != nil {
			return m, rowErr(t.Name, row.Num, fmt.Errorf("column %q: %w", t.Columns[pki].Name, err))
		}
		m.key = key
	} else {
		// Keyless table: rows are identified by ordinal, mirroring the
		// direct mapping's fresh row IRIs.
		m.key = strconv.Itoa(row.Num)
	}
	for ci := range t.Columns {
		if ci == pki {
			continue
		}
		c := &t.Columns[ci]
		if fk, ok := t.fk(c.Name); ok {
			if row.Nulls[ci] {
				continue // NULL foreign key: no edge
			}
			refKey, err := Coerce(c.Type, row.Cells[ci])
			if err != nil {
				return m, rowErr(t.Name, row.Num, fmt.Errorf("column %q: %w", c.Name, err))
			}
			m.refs = append(m.refs, ref{label: t.RefLabel(fk), refTable: fk.RefTable, refKey: refKey})
			continue
		}
		out := cell{col: c.Name, null: row.Nulls[ci]}
		if !out.null {
			val, err := Coerce(c.Type, row.Cells[ci])
			if err != nil {
				return m, rowErr(t.Name, row.Num, fmt.Errorf("column %q: %w", c.Name, err))
			}
			out.val = val
		} else if !c.Nullable {
			return m, rowErr(t.Name, row.Num, fmt.Errorf("%w: NULL in non-nullable column %q", ErrCoerce, c.Name))
		}
		m.cells = append(m.cells, out)
	}
	return m, nil
}

// apply materializes the mapped row into the graph. The caller (the
// single writer goroutine) has already rejected duplicate keys, so node
// inserts cannot collide except across tables sharing a name prefix —
// which Validate rules out by forbidding ':' in identifiers.
func (m *mappedRow) apply(g *datagraph.Graph) error {
	rowID := rowNodeID(m.table.Name, m.key)
	if err := g.AddNode(rowID, datagraph.V(m.key)); err != nil {
		return rowErr(m.table.Name, m.num, fmt.Errorf("%w: %v", ErrBadRow, err))
	}
	for _, c := range m.cells {
		cid := cellNodeID(m.table.Name, m.key, c.col)
		v := datagraph.V(c.val)
		if c.null {
			v = datagraph.Null()
		}
		if err := g.AddNode(cid, v); err != nil {
			return rowErr(m.table.Name, m.num, fmt.Errorf("%w: %v", ErrBadRow, err))
		}
		if err := g.AddEdge(rowID, m.table.EdgeLabel(c.col), cid); err != nil {
			return rowErr(m.table.Name, m.num, fmt.Errorf("%w: %v", ErrBadRow, err))
		}
	}
	return nil
}
