package ra

import (
	"sort"
	"testing"

	"repro/internal/datagraph"
)

func v(s string) datagraph.Value { return datagraph.V(s) }

// buildSameEnds builds the automaton for (a)= : a single a-step whose first
// and last data values must be equal. States: 0 -ε(store r0)-> 1 -a-> 2
// -ε(check r0=)-> 3.
func buildSameEnds(neq bool) *Automaton {
	b := &Builder{}
	s0, s1, s2, s3 := b.State(), b.State(), b.State(), b.State()
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, True{}, nil)
	var cond Cond = Eq{Reg: 0}
	if neq {
		cond = Neq{Reg: 0}
	}
	b.Eps(s2, s3, cond, nil)
	return b.Finish(s0, s3)
}

func dp(vals []string, labels ...string) datagraph.DataPath {
	vv := make([]datagraph.Value, len(vals))
	for i, s := range vals {
		vv[i] = v(s)
	}
	return datagraph.NewDataPath(vv, labels)
}

func TestMatchEquality(t *testing.T) {
	a := buildSameEnds(false)
	if !a.MatchDataPath(dp([]string{"1", "1"}, "a"), datagraph.MarkedNulls) {
		t.Fatal("(a)= must accept 1 a 1")
	}
	if a.MatchDataPath(dp([]string{"1", "2"}, "a"), datagraph.MarkedNulls) {
		t.Fatal("(a)= must reject 1 a 2")
	}
	if a.MatchDataPath(dp([]string{"1", "1"}, "b"), datagraph.MarkedNulls) {
		t.Fatal("wrong label must be rejected")
	}
	if a.MatchDataPath(dp([]string{"1"}), datagraph.MarkedNulls) {
		t.Fatal("too-short path must be rejected")
	}
}

func TestMatchInequality(t *testing.T) {
	a := buildSameEnds(true)
	if a.MatchDataPath(dp([]string{"1", "1"}, "a"), datagraph.MarkedNulls) {
		t.Fatal("(a)≠ must reject 1 a 1")
	}
	if !a.MatchDataPath(dp([]string{"1", "2"}, "a"), datagraph.MarkedNulls) {
		t.Fatal("(a)≠ must accept 1 a 2")
	}
}

func TestSQLNullSemantics(t *testing.T) {
	eq := buildSameEnds(false)
	ne := buildSameEnds(true)
	nullPath := datagraph.NewDataPath([]datagraph.Value{datagraph.Null(), datagraph.Null()}, []string{"a"})
	mixed := datagraph.NewDataPath([]datagraph.Value{v("1"), datagraph.Null()}, []string{"a"})
	// Under SQL semantics, neither = nor ≠ can be true with nulls involved.
	if eq.MatchDataPath(nullPath, datagraph.SQLNulls) {
		t.Fatal("null = null must not hold under SQL semantics")
	}
	if ne.MatchDataPath(mixed, datagraph.SQLNulls) {
		t.Fatal("1 ≠ null must not hold under SQL semantics")
	}
	// Under marked semantics nulls are constants: null = null holds.
	if !eq.MatchDataPath(nullPath, datagraph.MarkedNulls) {
		t.Fatal("null = null should hold under marked semantics")
	}
	if !ne.MatchDataPath(mixed, datagraph.MarkedNulls) {
		t.Fatal("1 ≠ null should hold under marked semantics")
	}
}

func TestConditionTree(t *testing.T) {
	regs := []datagraph.Value{v("1"), v("2")}
	set := []bool{true, true}
	d := v("1")
	m := datagraph.MarkedNulls
	if !(And{Eq{0}, Neq{1}}).Eval(regs, set, d, m) {
		t.Fatal("1=1 ∧ 2≠1 should hold")
	}
	if (And{Eq{0}, Eq{1}}).Eval(regs, set, d, m) {
		t.Fatal("1=1 ∧ 2=1 should fail")
	}
	if !(Or{Eq{1}, Eq{0}}).Eval(regs, set, d, m) {
		t.Fatal("2=1 ∨ 1=1 should hold")
	}
	// Unset registers never compare true.
	unset := []bool{false, false}
	if (Eq{0}).Eval(regs, unset, d, m) || (Neq{0}).Eval(regs, unset, d, m) {
		t.Fatal("unset register comparisons must be false")
	}
	if !HasNeq(And{Eq{0}, Or{True{}, Neq{1}}}) {
		t.Fatal("HasNeq should find nested ≠")
	}
	if HasNeq(And{Eq{0}, Eq{1}}) {
		t.Fatal("HasNeq false positive")
	}
	// String smoke test.
	if (And{Eq{0}, Or{Neq{1}, True{}}}).String() == "" {
		t.Fatal("empty condition string")
	}
}

func TestBuilderRegisterCount(t *testing.T) {
	b := &Builder{}
	s0, s1 := b.State(), b.State()
	b.Eps(s0, s1, Eq{Reg: 4}, []int{2})
	a := b.Finish(s0, s1)
	if a.NumRegs != 5 {
		t.Fatalf("NumRegs = %d, want 5", a.NumRegs)
	}
}

// Graph evaluation: (a)= on a diamond where only one branch has matching
// values.
func TestEvalFromGraph(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("s", v("7"))
	g.MustAddNode("good", v("7"))
	g.MustAddNode("bad", v("8"))
	g.MustAddEdge("s", "a", "good")
	g.MustAddEdge("s", "a", "bad")
	a := buildSameEnds(false)
	si, _ := g.IndexOf("s")
	got := a.EvalFrom(g, si, datagraph.MarkedNulls)
	gi, _ := g.IndexOf("good")
	if len(got) != 1 || got[0] != gi {
		t.Fatalf("EvalFrom = %v, want [%d]", got, gi)
	}
	pairs := a.Eval(g, datagraph.MarkedNulls)
	if pairs.Len() != 1 || !pairs.Has(si, gi) {
		t.Fatalf("Eval = %v", pairs.Sorted())
	}
}

// The example from the paper: ↓x.(a[x≠])+ — all values after the first
// differ from the first. Automaton: store r0 at start, then loop a-steps
// each checking r0≠.
func TestPaperExampleAllDifferent(t *testing.T) {
	b := &Builder{}
	s0, s1, s2 := b.State(), b.State(), b.State()
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, Neq{Reg: 0}, nil)
	b.Eps(s2, s1, True{}, nil) // loop
	a := b.Finish(s0, s2)
	m := datagraph.MarkedNulls
	if !a.MatchDataPath(dp([]string{"d", "1", "2", "3"}, "a", "a", "a"), m) {
		t.Fatal("d a 1 a 2 a 3 should match")
	}
	if a.MatchDataPath(dp([]string{"d", "1", "d"}, "a", "a"), m) {
		t.Fatal("d a 1 a d must not match (d reappears)")
	}
	// Note: repetitions among later values are fine as long as ≠ first.
	if !a.MatchDataPath(dp([]string{"d", "1", "1"}, "a", "a"), m) {
		t.Fatal("d a 1 a 1 should match")
	}
}

// Register reuse across a cycle in the graph: configurations must be
// deduplicated by register contents, not just (node, state).
func TestCycleTermination(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("x", v("1"))
	g.MustAddNode("y", v("2"))
	g.MustAddEdge("x", "a", "y")
	g.MustAddEdge("y", "a", "x")
	// ↓x.(a[x≠])+ starting anywhere on the 2-cycle: from x we can reach y
	// (2≠1) but then x again fails (1≠1 false).
	b := &Builder{}
	s0, s1, s2 := b.State(), b.State(), b.State()
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, Neq{Reg: 0}, nil)
	b.Eps(s2, s1, True{}, nil)
	a := b.Finish(s0, s2)
	xi, _ := g.IndexOf("x")
	yi, _ := g.IndexOf("y")
	got := a.EvalFrom(g, xi, datagraph.MarkedNulls)
	sort.Ints(got)
	if len(got) != 1 || got[0] != yi {
		t.Fatalf("from x: %v, want just y", got)
	}
}

// AnyLabel transitions.
func TestAnyLabel(t *testing.T) {
	b := &Builder{}
	s0, s1 := b.State(), b.State()
	b.Letter(s0, s1, "", true, True{}, nil)
	a := b.Finish(s0, s1)
	if !a.MatchDataPath(dp([]string{"1", "2"}, "weird_label"), datagraph.MarkedNulls) {
		t.Fatal("any-label step should accept any label")
	}
}

// Store on letter transitions: value stored is the value *after* the step.
func TestStoreOnLetter(t *testing.T) {
	// a (store r0) then b with check r0=: accepts d1 a d2 b d3 iff d2 = d3.
	b := &Builder{}
	s0, s1, s2 := b.State(), b.State(), b.State()
	b.Letter(s0, s1, "a", false, True{}, []int{0})
	b.Letter(s1, s2, "b", false, Eq{Reg: 0}, nil)
	a := b.Finish(s0, s2)
	m := datagraph.MarkedNulls
	if !a.MatchDataPath(dp([]string{"9", "5", "5"}, "a", "b"), m) {
		t.Fatal("9 a 5 b 5 should match")
	}
	if a.MatchDataPath(dp([]string{"5", "9", "5"}, "a", "b"), m) {
		t.Fatal("5 a 9 b 5 must not match")
	}
}

func TestEpsilonOnlyAutomaton(t *testing.T) {
	b := &Builder{}
	s0, s1 := b.State(), b.State()
	b.Eps(s0, s1, True{}, nil)
	a := b.Finish(s0, s1)
	if !a.MatchDataPath(dp([]string{"1"}), datagraph.MarkedNulls) {
		t.Fatal("ε-automaton should accept single-value path")
	}
	if a.MatchDataPath(dp([]string{"1", "2"}, "a"), datagraph.MarkedNulls) {
		t.Fatal("ε-automaton must reject nonempty path")
	}
}
