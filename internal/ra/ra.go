// Package ra implements register automata over data paths (Kaminski &
// Francez; used by the paper in Section 3 as the automaton model underlying
// data RPQs). A register automaton reads a data path d₁a₁d₂…aₙdₙ₊₁,
// maintaining a finite set of registers holding data values. Transitions are
// either ε-moves or letter moves; both may test a condition against the
// *current* data value and then store the current value into registers.
//
// This engine is the common compilation target for regular expressions with
// memory (package rem) and with equality (package ree): the paper's ↓x̄.e
// becomes an ε-move that stores, e[c] an ε-move that tests, and e=/e≠ a
// store-on-entry/test-on-exit pair around the fragment of e.
//
// Conditions are evaluated under a datagraph.CompareMode, which is how the
// SQL-null semantics of Section 7 reaches query evaluation: in SQLNulls
// mode no comparison involving the null value is true.
package ra

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/datagraph"
)

// Cond is a condition evaluated against a register assignment and the
// current data value (the pair (σ, d) of the paper's Section 3).
type Cond interface {
	// Eval returns the truth value of the condition. regs[i] is valid only
	// where set[i] is true; comparisons against unset registers are false
	// (the paper excludes such pathological expressions; we evaluate them
	// harmlessly).
	Eval(regs []datagraph.Value, set []bool, d datagraph.Value, mode datagraph.CompareMode) bool
	String() string
}

// True is the always-true condition.
type True struct{}

// Eq is the atomic condition x= : σ(x) = d.
type Eq struct{ Reg int }

// Neq is the atomic condition x≠ : σ(x) ≠ d.
type Neq struct{ Reg int }

// And is conjunction.
type And struct{ L, R Cond }

// Or is disjunction.
type Or struct{ L, R Cond }

func (True) Eval([]datagraph.Value, []bool, datagraph.Value, datagraph.CompareMode) bool {
	return true
}

func (c Eq) Eval(regs []datagraph.Value, set []bool, d datagraph.Value, mode datagraph.CompareMode) bool {
	return set[c.Reg] && mode.Eq(regs[c.Reg], d)
}

func (c Neq) Eval(regs []datagraph.Value, set []bool, d datagraph.Value, mode datagraph.CompareMode) bool {
	return set[c.Reg] && mode.Neq(regs[c.Reg], d)
}

func (c And) Eval(regs []datagraph.Value, set []bool, d datagraph.Value, mode datagraph.CompareMode) bool {
	return c.L.Eval(regs, set, d, mode) && c.R.Eval(regs, set, d, mode)
}

func (c Or) Eval(regs []datagraph.Value, set []bool, d datagraph.Value, mode datagraph.CompareMode) bool {
	return c.L.Eval(regs, set, d, mode) || c.R.Eval(regs, set, d, mode)
}

func (True) String() string  { return "true" }
func (c Eq) String() string  { return fmt.Sprintf("r%d=", c.Reg) }
func (c Neq) String() string { return fmt.Sprintf("r%d!=", c.Reg) }
func (c And) String() string { return fmt.Sprintf("(%s & %s)", c.L, c.R) }
func (c Or) String() string  { return fmt.Sprintf("(%s | %s)", c.L, c.R) }

// HasNeq reports whether the condition contains an inequality atom; used to
// classify REM= (Section 8).
func HasNeq(c Cond) bool {
	switch t := c.(type) {
	case Neq:
		return true
	case And:
		return HasNeq(t.L) || HasNeq(t.R)
	case Or:
		return HasNeq(t.L) || HasNeq(t.R)
	default:
		return false
	}
}

// Transition is a move of the automaton. ε-moves test Cond against the
// current data value and then store it into Store registers. Letter moves
// first consume a label matching Label/AnyLabel, making the *next* data
// value current, then test Cond against it and store it.
type Transition struct {
	To       int
	Eps      bool
	Label    string
	AnyLabel bool
	Cond     Cond
	Store    []int
}

// Automaton is a register automaton with a single start and accept state
// (an invariant of the expression compilers).
type Automaton struct {
	NumStates int
	NumRegs   int
	Start     int
	Accept    int
	Trans     [][]Transition // indexed by source state

	// fast caches whether the interned-id engine applies (few registers,
	// known condition node types): 0 unknown, 1 yes, -1 no. Resolved eagerly
	// by Finish so evaluation never mutates the automaton (workers share it).
	fast int8

	// Start-frontier metadata, precomputed by Finish (see StartLabels).
	startLabels []string
	startAny    bool
	emptyOK     bool

	// progCache holds the automaton lowered onto the most recent graph
	// snapshot (transition labels interned, dead transitions dropped); see
	// snapshot.go.
	progCache atomic.Pointer[prog]
}

func (a *Automaton) fastOK() bool {
	if a.fast == 0 {
		if a.supportsFast() {
			a.fast = 1
		} else {
			a.fast = -1
		}
	}
	return a.fast == 1
}

// StartLabels returns a superset of the edge labels able to begin a
// nonempty match, and whether that superset is exhaustive (it is not when
// an any-label transition is ε-reachable from the start state). Frontier
// schedulers use it to skip start nodes with no matching out-edge; because
// it over-approximates (register conditions are ignored), skipping is
// always sound.
func (a *Automaton) StartLabels() (labels []string, exhaustive bool) {
	return a.startLabels, !a.startAny
}

// AcceptsEmptyPath reports whether the automaton may accept a single-node
// data path — an over-approximation by ε-reachability of the accept state,
// ignoring register conditions. When it returns false, no start node can be
// its own answer, so frontier pruning by StartLabels is complete.
func (a *Automaton) AcceptsEmptyPath() bool { return a.emptyOK }

// computeStartInfo fills the start-frontier metadata: walk ε-transitions
// from the start state (ignoring conditions — an over-approximation) and
// collect the consuming transitions encountered.
func (a *Automaton) computeStartInfo() {
	seen := make([]bool, a.NumStates)
	stack := []int{a.Start}
	seen[a.Start] = true
	labelSet := map[string]struct{}{}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == a.Accept {
			a.emptyOK = true
		}
		for _, t := range a.Trans[s] {
			if t.Eps {
				if !seen[t.To] {
					seen[t.To] = true
					stack = append(stack, t.To)
				}
				continue
			}
			if t.AnyLabel {
				a.startAny = true
				continue
			}
			labelSet[t.Label] = struct{}{}
		}
	}
	for l := range labelSet {
		a.startLabels = append(a.startLabels, l)
	}
	sort.Strings(a.startLabels)
}

// Builder incrementally constructs an Automaton.
type Builder struct {
	trans   [][]Transition
	numRegs int
}

// State allocates a fresh state and returns its index.
func (b *Builder) State() int {
	b.trans = append(b.trans, nil)
	return len(b.trans) - 1
}

// Eps adds an ε-move.
func (b *Builder) Eps(from, to int, cond Cond, store []int) {
	b.noteRegs(cond, store)
	b.trans[from] = append(b.trans[from], Transition{To: to, Eps: true, Cond: cond, Store: store})
}

// Letter adds a letter move on the given label (or any label).
func (b *Builder) Letter(from, to int, label string, anyLabel bool, cond Cond, store []int) {
	b.noteRegs(cond, store)
	b.trans[from] = append(b.trans[from], Transition{
		To: to, Label: label, AnyLabel: anyLabel, Cond: cond, Store: store,
	})
}

func (b *Builder) noteRegs(cond Cond, store []int) {
	for _, r := range store {
		if r+1 > b.numRegs {
			b.numRegs = r + 1
		}
	}
	var walk func(Cond)
	walk = func(c Cond) {
		switch t := c.(type) {
		case Eq:
			if t.Reg+1 > b.numRegs {
				b.numRegs = t.Reg + 1
			}
		case Neq:
			if t.Reg+1 > b.numRegs {
				b.numRegs = t.Reg + 1
			}
		case And:
			walk(t.L)
			walk(t.R)
		case Or:
			walk(t.L)
			walk(t.R)
		}
	}
	walk(cond)
}

// Finish seals the automaton. All lazily-derivable metadata (fast-path
// eligibility, start-frontier labels) is resolved here so the finished
// automaton is never written to again and can be shared across goroutines.
func (b *Builder) Finish(start, accept int) *Automaton {
	a := &Automaton{
		NumStates: len(b.trans),
		NumRegs:   b.numRegs,
		Start:     start,
		Accept:    accept,
		Trans:     b.trans,
	}
	a.fastOK()
	a.computeStartInfo()
	return a
}

// regSnapshot encodes a register assignment as a compact string key for
// visited-set deduplication.
func regSnapshot(regs []datagraph.Value, set []bool) string {
	var sb strings.Builder
	for i := range regs {
		if !set[i] {
			sb.WriteByte('u')
		} else if regs[i].IsNull() {
			sb.WriteByte('n')
		} else {
			s := regs[i].Raw()
			fmt.Fprintf(&sb, "v%d:%s", len(s), s)
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// config is a search state shared by the data-path and graph evaluators.
type config struct {
	state int
	pos   int // data-path position, or graph node index
	regs  []datagraph.Value
	set   []bool
}

func (c config) key() string {
	return fmt.Sprintf("%d.%d.%s", c.state, c.pos, regSnapshot(c.regs, c.set))
}

func applyStore(c config, store []int, d datagraph.Value) config {
	if len(store) == 0 {
		return c
	}
	regs := append([]datagraph.Value(nil), c.regs...)
	set := append([]bool(nil), c.set...)
	for _, r := range store {
		regs[r] = d
		set[r] = true
	}
	c.regs, c.set = regs, set
	return c
}

// MatchDataPath reports whether the automaton accepts the data path under
// the given comparison mode. The search explores configurations
// (state, position, registers); since register contents range over the
// values of the path, the configuration space is finite and membership
// terminates (polynomial for a fixed number of registers, NP-complete in
// combined complexity for REM as the paper notes).
func (a *Automaton) MatchDataPath(w datagraph.DataPath, mode datagraph.CompareMode) bool {
	if a.fastOK() {
		return a.matchDataPathFast(w, mode)
	}
	start := config{
		state: a.Start,
		pos:   0,
		regs:  make([]datagraph.Value, a.NumRegs),
		set:   make([]bool, a.NumRegs),
	}
	visited := map[string]struct{}{start.key(): {}}
	queue := []config{start}
	lastPos := len(w.Labels)
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if c.state == a.Accept && c.pos == lastPos {
			return true
		}
		cur := w.Values[c.pos]
		for _, t := range a.Trans[c.state] {
			var next config
			if t.Eps {
				if !t.Cond.Eval(c.regs, c.set, cur, mode) {
					continue
				}
				next = config{state: t.To, pos: c.pos, regs: c.regs, set: c.set}
				next = applyStore(next, t.Store, cur)
			} else {
				if c.pos >= len(w.Labels) {
					continue
				}
				if !t.AnyLabel && w.Labels[c.pos] != t.Label {
					continue
				}
				nv := w.Values[c.pos+1]
				if !t.Cond.Eval(c.regs, c.set, nv, mode) {
					continue
				}
				next = config{state: t.To, pos: c.pos + 1, regs: c.regs, set: c.set}
				next = applyStore(next, t.Store, nv)
			}
			k := next.key()
			if _, dup := visited[k]; !dup {
				visited[k] = struct{}{}
				queue = append(queue, next)
			}
		}
	}
	return false
}

// EvalFrom returns the node indices v such that some path from u to v has a
// data path accepted by the automaton. This is the graph-product evaluation
// underlying the NLogspace data-complexity claims (Theorems 3 and 5): the
// configuration space is nodes × states × register contents, with register
// contents drawn from the graph's values.
func (a *Automaton) EvalFrom(g *datagraph.Graph, u int, mode datagraph.CompareMode) []int {
	if a.fastOK() {
		// Use the interned snapshot kernel when the graph is frozen; never
		// trigger a freeze here, since EvalFrom is called inside mutation
		// loops (the SetValue specialization search).
		if snap := g.Snapshot(); snap != nil {
			p := a.program(snap)
			sc := newSnapScratch(snap.NumNodes())
			var out []int
			a.evalFromProg(p, u, mode, sc, func(v int) { out = append(out, v) })
			return out
		}
		return a.evalFromFast(g, u, mode)
	}
	start := config{
		state: a.Start,
		pos:   u,
		regs:  make([]datagraph.Value, a.NumRegs),
		set:   make([]bool, a.NumRegs),
	}
	visited := map[string]struct{}{start.key(): {}}
	queue := []config{start}
	accepted := make(map[int]struct{})
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if c.state == a.Accept {
			accepted[c.pos] = struct{}{}
		}
		cur := g.Value(c.pos)
		for _, t := range a.Trans[c.state] {
			if t.Eps {
				if !t.Cond.Eval(c.regs, c.set, cur, mode) {
					continue
				}
				next := applyStore(config{state: t.To, pos: c.pos, regs: c.regs, set: c.set}, t.Store, cur)
				k := next.key()
				if _, dup := visited[k]; !dup {
					visited[k] = struct{}{}
					queue = append(queue, next)
				}
				continue
			}
			step := func(to int) {
				nv := g.Value(to)
				if !t.Cond.Eval(c.regs, c.set, nv, mode) {
					return
				}
				next := applyStore(config{state: t.To, pos: to, regs: c.regs, set: c.set}, t.Store, nv)
				k := next.key()
				if _, dup := visited[k]; !dup {
					visited[k] = struct{}{}
					queue = append(queue, next)
				}
			}
			if t.AnyLabel {
				for _, he := range g.Out(c.pos) {
					step(he.To)
				}
			} else {
				for _, to := range g.OutEdges(c.pos, t.Label) {
					step(to)
				}
			}
		}
	}
	out := make([]int, 0, len(accepted))
	for v := range accepted {
		out = append(out, v)
	}
	return out
}

// Eval returns all pairs (u, v) such that some path from u to v matches.
// The graph is frozen once and every start node is evaluated through the
// interned snapshot kernel with shared scratch.
func (a *Automaton) Eval(g *datagraph.Graph, mode datagraph.CompareMode) *datagraph.PairSet {
	n := g.NumNodes()
	out := datagraph.NewPairSetSized(n)
	if a.fastOK() {
		a.EvalRange(g, 0, n, mode, out.Add)
		return out
	}
	for u := 0; u < n; u++ {
		for _, v := range a.EvalFrom(g, u, mode) {
			out.Add(u, v)
		}
	}
	return out
}
