package ra

import (
	"testing"

	"repro/internal/datagraph"
)

// emptyByContradiction builds ↓x.(a[x= ∧ x≠]): unsatisfiable condition.
func emptyByContradiction() *Automaton {
	b := &Builder{}
	s0, s1, s2, s3 := b.State(), b.State(), b.State(), b.State()
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, True{}, nil)
	b.Eps(s2, s3, And{Eq{0}, Neq{0}}, nil)
	return b.Finish(s0, s3)
}

func TestNonemptyBasic(t *testing.T) {
	if !buildSameEnds(false).Nonempty() {
		t.Fatal("(a)= is nonempty")
	}
	if !buildSameEnds(true).Nonempty() {
		t.Fatal("(a)≠ is nonempty")
	}
	if emptyByContradiction().Nonempty() {
		t.Fatal("x= ∧ x≠ is unsatisfiable")
	}
}

func TestSomeDataPathWitnessVerifies(t *testing.T) {
	for name, a := range map[string]*Automaton{
		"(a)=": buildSameEnds(false),
		"(a)≠": buildSameEnds(true),
	} {
		w, ok := a.SomeDataPath()
		if !ok {
			t.Fatalf("%s: expected witness", name)
		}
		if !a.MatchDataPath(w, datagraph.MarkedNulls) {
			t.Fatalf("%s: witness %v rejected", name, w)
		}
	}
	if _, ok := emptyByContradiction().SomeDataPath(); ok {
		t.Fatal("empty automaton returned a witness")
	}
}

// A deeper witness: store, then require two different future values to
// equal two different registers (forces ≥ 3 distinct positions).
func TestSomeDataPathMultiRegister(t *testing.T) {
	b := &Builder{}
	s0 := b.State()
	s1 := b.State()
	s2 := b.State()
	s3 := b.State()
	s4 := b.State()
	// store r0 := d1; a-step storing r1 := d2 with d2 ≠ r0; a-step with
	// d3 = r0; a-step with d4 = r1.
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, Neq{0}, []int{1})
	b.Letter(s2, s3, "a", false, Eq{0}, nil)
	b.Letter(s3, s4, "a", false, Eq{1}, nil)
	a := b.Finish(s0, s4)
	w, ok := a.SomeDataPath()
	if !ok {
		t.Fatal("language is nonempty")
	}
	if w.Len() != 3 {
		t.Fatalf("witness length %d, want 3 (%v)", w.Len(), w)
	}
	if !a.MatchDataPath(w, datagraph.MarkedNulls) {
		t.Fatalf("witness rejected: %v", w)
	}
	// Pattern check: d3 = d1, d4 = d2, d2 ≠ d1.
	if w.Values[2] != w.Values[0] || w.Values[3] != w.Values[1] || w.Values[1] == w.Values[0] {
		t.Fatalf("witness pattern wrong: %v", w)
	}
}

// Unreachable accept state.
func TestNonemptyUnreachable(t *testing.T) {
	b := &Builder{}
	s0, s1 := b.State(), b.State()
	_ = s1
	a := b.Finish(s0, s1)
	if a.Nonempty() {
		t.Fatal("no transitions: empty")
	}
	// Accept == start accepts the single-value data path.
	b2 := &Builder{}
	s := b2.State()
	a2 := b2.Finish(s, s)
	w, ok := a2.SomeDataPath()
	if !ok || w.Len() != 0 {
		t.Fatalf("trivial automaton: %v %v", w, ok)
	}
}

// Disjunctive conditions exercise the Or branch of the symbolic evaluator.
func TestNonemptyDisjunction(t *testing.T) {
	b := &Builder{}
	s0, s1, s2, s3 := b.State(), b.State(), b.State(), b.State()
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, True{}, []int{1})
	// d3 equals r0 or r1 — satisfiable.
	b.Letter(s2, s3, "a", false, Or{Eq{0}, Eq{1}}, nil)
	a := b.Finish(s0, s3)
	w, ok := a.SomeDataPath()
	if !ok {
		t.Fatal("nonempty")
	}
	if !a.MatchDataPath(w, datagraph.MarkedNulls) {
		t.Fatalf("witness rejected: %v", w)
	}
}

// Three-valued SQL logic (Remark 2): eval(c, σ) = true iff evalsql(c, σ) =
// true, exhaustively over condition shapes and value combinations.
func TestRemark2ThreeValuedEquivalence(t *testing.T) {
	vals := []datagraph.Value{datagraph.V("1"), datagraph.V("2"), datagraph.Null()}
	conds := []Cond{
		True{},
		Eq{0}, Neq{0}, Eq{1}, Neq{1},
		And{Eq{0}, Neq{1}},
		Or{Eq{0}, Neq{1}},
		And{Or{Eq{0}, Eq{1}}, Neq{0}},
		Or{And{Eq{0}, Eq{1}}, Neq{1}},
	}
	for _, r0 := range vals {
		for _, r1 := range vals {
			for _, d := range vals {
				regs := []datagraph.Value{r0, r1}
				set := []bool{true, true}
				for _, c := range conds {
					two := c.Eval(regs, set, d, datagraph.SQLNulls)
					three := EvalSQL3(c, regs, set, d)
					if two != (three == True3) {
						t.Fatalf("cond %s regs (%s,%s) d %s: two-valued %v, three-valued %v",
							c, r0, r1, d, two, three)
					}
				}
			}
		}
	}
}

func TestTruthTableHelpers(t *testing.T) {
	if and3(Unknown3, True3) != Unknown3 || and3(Unknown3, False3) != False3 {
		t.Fatal("and3 table wrong")
	}
	if or3(Unknown3, False3) != Unknown3 || or3(Unknown3, True3) != True3 {
		t.Fatal("or3 table wrong")
	}
	if False3.String() != "false" || Unknown3.String() != "unknown" || True3.String() != "true" {
		t.Fatal("Truth rendering wrong")
	}
	// Unset registers are false even in three-valued logic.
	if EvalSQL3(Eq{0}, []datagraph.Value{{}}, []bool{false}, datagraph.V("x")) != False3 {
		t.Fatal("unset register should be false")
	}
	if EvalSQL3(Neq{0}, []datagraph.Value{{}}, []bool{false}, datagraph.V("x")) != False3 {
		t.Fatal("unset register should be false")
	}
}
