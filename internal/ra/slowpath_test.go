package ra

import (
	"sort"
	"testing"

	"repro/internal/datagraph"
)

// customCond is an externally-defined condition: the fast interned-id
// engine cannot evaluate it, so automata containing it take the generic
// string-key path.
type customCond struct{ reg int }

func (c customCond) Eval(regs []datagraph.Value, set []bool, d datagraph.Value, mode datagraph.CompareMode) bool {
	return set[c.reg] && mode.Eq(regs[c.reg], d)
}
func (c customCond) String() string { return "custom" }

// buildSameEndsSlow mirrors buildSameEnds but forces the slow path in two
// different ways.
func buildSameEndsCustomCond() *Automaton {
	b := &Builder{}
	s0, s1, s2, s3 := b.State(), b.State(), b.State(), b.State()
	b.Eps(s0, s1, True{}, []int{0})
	b.Letter(s1, s2, "a", false, True{}, nil)
	b.Eps(s2, s3, customCond{reg: 0}, nil)
	return b.Finish(s0, s3)
}

func buildSameEndsManyRegs() *Automaton {
	b := &Builder{}
	s0, s1, s2, s3 := b.State(), b.State(), b.State(), b.State()
	// Register 9 pushes NumRegs beyond the fast-path limit of 8.
	b.Eps(s0, s1, True{}, []int{9})
	b.Letter(s1, s2, "a", false, True{}, nil)
	b.Eps(s2, s3, Eq{Reg: 9}, nil)
	return b.Finish(s0, s3)
}

func TestSlowPathAgreesWithFastPath(t *testing.T) {
	fast := buildSameEnds(false)
	if !fast.fastOK() {
		t.Fatal("reference automaton should take the fast path")
	}
	for name, slow := range map[string]*Automaton{
		"custom-cond": buildSameEndsCustomCond(),
		"many-regs":   buildSameEndsManyRegs(),
	} {
		if slow.fastOK() {
			t.Fatalf("%s: expected the slow path", name)
		}
		paths := []datagraph.DataPath{
			dp([]string{"1", "1"}, "a"),
			dp([]string{"1", "2"}, "a"),
			dp([]string{"1", "1"}, "b"),
			dp([]string{"1"}),
			datagraph.NewDataPath([]datagraph.Value{datagraph.Null(), datagraph.Null()}, []string{"a"}),
		}
		for _, w := range paths {
			for _, mode := range []datagraph.CompareMode{datagraph.MarkedNulls, datagraph.SQLNulls} {
				if got, want := slow.MatchDataPath(w, mode), fast.MatchDataPath(w, mode); got != want {
					t.Errorf("%s: MatchDataPath(%v, %v) = %v, want %v", name, w, mode, got, want)
				}
			}
		}
	}
}

func TestSlowPathGraphEvaluation(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("s", v("7"))
	g.MustAddNode("good", v("7"))
	g.MustAddNode("bad", v("8"))
	g.MustAddEdge("s", "a", "good")
	g.MustAddEdge("s", "a", "bad")
	fast := buildSameEnds(false)
	si, _ := g.IndexOf("s")
	want := fast.EvalFrom(g, si, datagraph.MarkedNulls)
	sort.Ints(want)
	for name, slow := range map[string]*Automaton{
		"custom-cond": buildSameEndsCustomCond(),
		"many-regs":   buildSameEndsManyRegs(),
	} {
		got := slow.EvalFrom(g, si, datagraph.MarkedNulls)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("%s: EvalFrom = %v, want %v", name, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: EvalFrom = %v, want %v", name, got, want)
			}
		}
		// Cycle termination on the slow path too.
		g2 := datagraph.New()
		g2.MustAddNode("x", v("1"))
		g2.MustAddEdge("x", "a", "x")
		_ = slow.EvalFrom(g2, 0, datagraph.MarkedNulls) // must terminate
	}
}

// AnyLabel handling through the slow path. Note: external Cond types are
// invisible to the Builder's register inference, so the register must be
// established by a store somewhere in the automaton.
func TestSlowPathLabelHandling(t *testing.T) {
	b := &Builder{}
	s0, sMid, s1 := b.State(), b.State(), b.State()
	b.Eps(s0, sMid, True{}, []int{0})
	b.Letter(sMid, s1, "", true, customCond{reg: 0}, nil)
	a := b.Finish(s0, s1)
	if a.fastOK() {
		t.Fatal("custom condition should force the slow path")
	}
	// AnyLabel matches any label; condition is d2 = d1 via the custom cond.
	if !a.MatchDataPath(dp([]string{"1", "1"}, "zzz"), datagraph.MarkedNulls) {
		t.Fatal("any-label with matching values should accept")
	}
	if a.MatchDataPath(dp([]string{"1", "2"}, "zzz"), datagraph.MarkedNulls) {
		t.Fatal("custom condition should reject distinct values")
	}
}
