package ra

import "repro/internal/datagraph"

// This file is the allocation-light evaluation engine behind MatchDataPath
// and EvalFrom: data values are interned to dense int32 ids once per call,
// and configurations are deduplicated with comparable struct keys instead
// of formatted strings. Automata with more than maxFastRegs registers fall
// back to arbitrary-width keys (slices encoded in strings); every compiler
// in this repository stays far below the limit.

const maxFastRegs = 8

// interner maps data values to dense ids. Id 0 is reserved for "register
// unset"; the null value gets its own id like any other value, and the
// comparison helpers below special-case it per mode.
type interner struct {
	ids    map[datagraph.Value]int32
	nullID int32
}

func newInterner() *interner {
	return &interner{ids: make(map[datagraph.Value]int32), nullID: -1}
}

func (in *interner) id(v datagraph.Value) int32 {
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := int32(len(in.ids) + 1)
	in.ids[v] = id
	if v.IsNull() {
		in.nullID = id
	}
	return id
}

// evalCondID evaluates a condition over interned ids. regs[r] == 0 means
// unset. Returns ok=false if the condition tree contains node types this
// fast path does not know (caller falls back to the slow path).
func evalCondID(c Cond, regs []int32, cur int32, nullID int32, mode datagraph.CompareMode) (val, ok bool) {
	switch t := c.(type) {
	case True:
		return true, true
	case Eq:
		r := regs[t.Reg]
		if r == 0 {
			return false, true
		}
		if mode == datagraph.SQLNulls && (r == nullID || cur == nullID) {
			return false, true
		}
		return r == cur, true
	case Neq:
		r := regs[t.Reg]
		if r == 0 {
			return false, true
		}
		if mode == datagraph.SQLNulls && (r == nullID || cur == nullID) {
			return false, true
		}
		return r != cur, true
	case And:
		l, ok := evalCondID(t.L, regs, cur, nullID, mode)
		if !ok {
			return false, false
		}
		if !l {
			return false, true
		}
		return evalCondID(t.R, regs, cur, nullID, mode)
	case Or:
		l, ok := evalCondID(t.L, regs, cur, nullID, mode)
		if !ok {
			return false, false
		}
		if l {
			return true, true
		}
		return evalCondID(t.R, regs, cur, nullID, mode)
	default:
		return false, false
	}
}

// supportsFast reports whether every condition in the automaton is made of
// the known node types.
func (a *Automaton) supportsFast() bool {
	if a.NumRegs > maxFastRegs {
		return false
	}
	var walk func(c Cond) bool
	walk = func(c Cond) bool {
		switch t := c.(type) {
		case True, Eq, Neq:
			return true
		case And:
			return walk(t.L) && walk(t.R)
		case Or:
			return walk(t.L) && walk(t.R)
		default:
			return false
		}
	}
	for _, ts := range a.Trans {
		for _, t := range ts {
			if !walk(t.Cond) {
				return false
			}
		}
	}
	return true
}

type fastKey struct {
	state int32
	pos   int32
	regs  [maxFastRegs]int32
}

type fastCfg struct {
	state int32
	pos   int32
	regs  [maxFastRegs]int32
}

func (c fastCfg) key() fastKey { return fastKey{c.state, c.pos, c.regs} }

// matchDataPathFast is MatchDataPath over interned ids.
func (a *Automaton) matchDataPathFast(w datagraph.DataPath, mode datagraph.CompareMode) bool {
	in := newInterner()
	vals := make([]int32, len(w.Values))
	for i, v := range w.Values {
		vals[i] = in.id(v)
	}
	start := fastCfg{state: int32(a.Start)}
	visited := map[fastKey]struct{}{start.key(): {}}
	queue := []fastCfg{start}
	lastPos := int32(len(w.Labels))
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if int(c.state) == a.Accept && c.pos == lastPos {
			return true
		}
		for _, t := range a.Trans[c.state] {
			next, fired := a.stepPath(c, t, w, vals, in.nullID, mode)
			if !fired {
				continue
			}
			k := next.key()
			if _, dup := visited[k]; !dup {
				visited[k] = struct{}{}
				queue = append(queue, next)
			}
		}
	}
	return false
}

func (a *Automaton) stepPath(c fastCfg, t Transition, w datagraph.DataPath,
	vals []int32, nullID int32, mode datagraph.CompareMode) (fastCfg, bool) {

	if t.Eps {
		cur := vals[c.pos]
		ok, _ := evalCondID(t.Cond, c.regs[:maxFastRegs], cur, nullID, mode)
		if !ok {
			return fastCfg{}, false
		}
		next := c
		next.state = int32(t.To)
		for _, r := range t.Store {
			next.regs[r] = cur
		}
		return next, true
	}
	if int(c.pos) >= len(w.Labels) {
		return fastCfg{}, false
	}
	if !t.AnyLabel && w.Labels[c.pos] != t.Label {
		return fastCfg{}, false
	}
	nv := vals[c.pos+1]
	ok, _ := evalCondID(t.Cond, c.regs[:maxFastRegs], nv, nullID, mode)
	if !ok {
		return fastCfg{}, false
	}
	next := c
	next.state = int32(t.To)
	next.pos = c.pos + 1
	for _, r := range t.Store {
		next.regs[r] = nv
	}
	return next, true
}

// evalFromFast is EvalFrom over interned ids (pos is the node index).
func (a *Automaton) evalFromFast(g *datagraph.Graph, u int, mode datagraph.CompareMode) []int {
	in := newInterner()
	n := g.NumNodes()
	vals := make([]int32, n)
	for i := 0; i < n; i++ {
		vals[i] = in.id(g.Value(i))
	}
	start := fastCfg{state: int32(a.Start), pos: int32(u)}
	visited := map[fastKey]struct{}{start.key(): {}}
	queue := []fastCfg{start}
	accepted := make(map[int]struct{})
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if int(c.state) == a.Accept {
			accepted[int(c.pos)] = struct{}{}
		}
		cur := vals[c.pos]
		for _, t := range a.Trans[c.state] {
			if t.Eps {
				ok, _ := evalCondID(t.Cond, c.regs[:maxFastRegs], cur, in.nullID, mode)
				if !ok {
					continue
				}
				next := c
				next.state = int32(t.To)
				for _, r := range t.Store {
					next.regs[r] = cur
				}
				k := next.key()
				if _, dup := visited[k]; !dup {
					visited[k] = struct{}{}
					queue = append(queue, next)
				}
				continue
			}
			step := func(to int) {
				nv := vals[to]
				ok, _ := evalCondID(t.Cond, c.regs[:maxFastRegs], nv, in.nullID, mode)
				if !ok {
					return
				}
				next := c
				next.state = int32(t.To)
				next.pos = int32(to)
				for _, r := range t.Store {
					next.regs[r] = nv
				}
				k := next.key()
				if _, dup := visited[k]; !dup {
					visited[k] = struct{}{}
					queue = append(queue, next)
				}
			}
			if t.AnyLabel {
				for _, he := range g.Out(int(c.pos)) {
					step(he.To)
				}
			} else {
				for _, to := range g.OutEdges(int(c.pos), t.Label) {
					step(to)
				}
			}
		}
	}
	out := make([]int, 0, len(accepted))
	for v := range accepted {
		out = append(out, v)
	}
	return out
}
