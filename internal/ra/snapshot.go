package ra

import (
	"repro/internal/datagraph"
)

// This file is the snapshot evaluation kernel: the automaton compiled
// against one graph snapshot's label interner, evaluated over interned
// values with reusable scratch. Where the per-call fast path of fast.go
// re-interns every node value on every EvalFrom (O(V) per start node), the
// snapshot kernel resolves labels and values exactly once per (automaton,
// snapshot) pair and shares them across all start nodes of a batch.

// prog is the automaton lowered onto one snapshot: transition labels
// interned, transitions on labels absent from the graph dropped (they can
// never fire), start-frontier labels interned for pruning.
type prog struct {
	snap        *datagraph.Snapshot
	trans       [][]progTrans
	startLabels []datagraph.Label
}

type progTrans struct {
	to    int32
	eps   bool
	any   bool
	label datagraph.Label
	cond  Cond
	store []int
}

// program returns the automaton lowered onto snap, cached on the automaton.
// Concurrent callers sharing one snapshot (the engine's workers) hit the
// cache; alternating snapshots rebuild, which is only wasted work.
func (a *Automaton) program(snap *datagraph.Snapshot) *prog {
	if p := a.progCache.Load(); p != nil && p.snap == snap {
		return p
	}
	p := &prog{snap: snap, trans: make([][]progTrans, a.NumStates)}
	for s, ts := range a.Trans {
		for _, t := range ts {
			pt := progTrans{to: int32(t.To), eps: t.Eps, any: t.AnyLabel, cond: t.Cond, store: t.Store}
			if !t.Eps && !t.AnyLabel {
				l, ok := snap.LabelID(t.Label)
				if !ok {
					continue // label absent from the graph: dead transition
				}
				pt.label = l
			}
			p.trans[s] = append(p.trans[s], pt)
		}
	}
	for _, name := range a.startLabels {
		if l, ok := snap.LabelID(name); ok {
			p.startLabels = append(p.startLabels, l)
		}
	}
	a.progCache.Store(p)
	return p
}

// canSkipStart reports whether u cannot begin any match: the start-label
// set is exhaustive, the automaton cannot accept a single-node path, and u
// has no out-edge carrying a start label.
func (p *prog) canSkipStart(a *Automaton, u int) bool {
	if a.startAny || a.emptyOK {
		return false
	}
	for _, l := range p.startLabels {
		if p.snap.HasOutLabeled(u, l) {
			return false
		}
	}
	return true
}

// snapScratch is the reusable per-batch state of the snapshot kernel.
type snapScratch struct {
	visited  map[fastKey]struct{}
	queue    []fastCfg
	accepted *datagraph.NodeSet
}

func newSnapScratch(n int) *snapScratch {
	return &snapScratch{
		visited:  make(map[fastKey]struct{}),
		queue:    make([]fastCfg, 0, 64),
		accepted: datagraph.NewNodeSet(n),
	}
}

// evalFromProg runs the configuration BFS from start node u over the
// snapshot, emitting each accepted target once.
func (a *Automaton) evalFromProg(p *prog, u int, mode datagraph.CompareMode, sc *snapScratch, emit func(v int)) {
	snap := p.snap
	nullID := snap.NullValueID()
	clear(sc.visited)
	sc.queue = sc.queue[:0]
	sc.accepted.Clear()
	start := fastCfg{state: int32(a.Start), pos: int32(u)}
	sc.visited[start.key()] = struct{}{}
	sc.queue = append(sc.queue, start)
	for len(sc.queue) > 0 {
		c := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		if int(c.state) == a.Accept && sc.accepted.Add(int(c.pos)) {
			emit(int(c.pos))
		}
		cur := snap.ValueID(int(c.pos))
		for ti := range p.trans[c.state] {
			t := &p.trans[c.state][ti]
			if t.eps {
				ok, _ := evalCondID(t.cond, c.regs[:maxFastRegs], cur, nullID, mode)
				if !ok {
					continue
				}
				next := c
				next.state = t.to
				for _, r := range t.store {
					next.regs[r] = cur
				}
				k := next.key()
				if _, dup := sc.visited[k]; !dup {
					sc.visited[k] = struct{}{}
					sc.queue = append(sc.queue, next)
				}
				continue
			}
			var targets []int32
			if t.any {
				targets = snap.OutAll(int(c.pos))
			} else {
				targets = snap.OutLabeled(int(c.pos), t.label)
			}
			for _, to := range targets {
				nv := snap.ValueID(int(to))
				ok, _ := evalCondID(t.cond, c.regs[:maxFastRegs], nv, nullID, mode)
				if !ok {
					continue
				}
				next := c
				next.state = t.to
				next.pos = to
				for _, r := range t.store {
					next.regs[r] = nv
				}
				k := next.key()
				if _, dup := sc.visited[k]; !dup {
					sc.visited[k] = struct{}{}
					sc.queue = append(sc.queue, next)
				}
			}
		}
	}
}

// EvalRange evaluates the automaton from every start node in [lo, hi),
// emitting each answer pair once. It freezes the graph (cheap when already
// frozen), lowers the automaton onto the snapshot once, prunes start nodes
// by interned start labels, and reuses one scratch across the whole range —
// the engine's frontier shards call this with their chunk bounds.
func (a *Automaton) EvalRange(g *datagraph.Graph, lo, hi int, mode datagraph.CompareMode, emit func(u, v int)) {
	if !a.fastOK() {
		for u := lo; u < hi; u++ {
			for _, v := range a.EvalFrom(g, u, mode) {
				emit(u, v)
			}
		}
		return
	}
	snap := g.Freeze()
	p := a.program(snap)
	sc := newSnapScratch(snap.NumNodes())
	for u := lo; u < hi; u++ {
		if p.canSkipStart(a, u) {
			continue
		}
		a.evalFromProg(p, u, mode, sc, func(v int) { emit(u, v) })
	}
}
