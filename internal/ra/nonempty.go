package ra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datagraph"
)

// This file implements nonemptiness of register automata over the infinite
// data domain — the static-analysis primitive behind the paper's Section 3
// complexity citations (nonemptiness is Ptime for regular expressions with
// equality and Pspace-complete for expressions with memory / register
// automata [18,31]).
//
// Concrete data values are abstracted to equality types: what matters is
// only the equality pattern among the register contents and the *current*
// data value, because the domain is infinite (a fresh value is always
// available). A symbolic configuration is therefore (control state,
// partition of {registers} ∪ {current value}); the reachability space is
// finite (states × Bell(registers + 1)), matching the Pspace shape, and a
// witness data path is materialised by assigning one concrete value per
// partition class.

// symCfg is a symbolic configuration. regClass[i] is the class id of
// register i (-1 = unset); curClass is the class id of the current data
// value (always defined — every data path position carries a value). Class
// ids are arbitrary ints, canonicalised only for the visited set, so they
// stay stable along a run and double as witness value names.
type symCfg struct {
	state    int
	regClass []int
	curClass int
}

// canonical renders the configuration up to class renaming.
func (c symCfg) canonical() string {
	rename := map[int]int{}
	next := 0
	get := func(id int) int {
		r, ok := rename[id]
		if !ok {
			r = next
			rename[id] = r
			next++
		}
		return r
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|", c.state)
	for _, cl := range c.regClass {
		if cl < 0 {
			sb.WriteString("u,")
		} else {
			fmt.Fprintf(&sb, "%d,", get(cl))
		}
	}
	fmt.Fprintf(&sb, "|%d", get(c.curClass))
	return sb.String()
}

func (c symCfg) clone() symCfg {
	return symCfg{
		state:    c.state,
		regClass: append([]int(nil), c.regClass...),
		curClass: c.curClass,
	}
}

// condSatSym evaluates a condition against the symbolic configuration.
// Comparisons with unset registers are false, matching Eval.
func condSatSym(cond Cond, c symCfg) bool {
	switch t := cond.(type) {
	case True:
		return true
	case Eq:
		return c.regClass[t.Reg] >= 0 && c.regClass[t.Reg] == c.curClass
	case Neq:
		return c.regClass[t.Reg] >= 0 && c.regClass[t.Reg] != c.curClass
	case And:
		return condSatSym(t.L, c) && condSatSym(t.R, c)
	case Or:
		return condSatSym(t.L, c) || condSatSym(t.R, c)
	default:
		return false
	}
}

// symEvent records how a configuration was reached, for witness rebuilding.
type symEvent struct {
	prev  int // index of the predecessor configuration, -1 for the root
	eps   bool
	label string // letter steps only
	cfg   symCfg
}

// Nonempty reports whether the automaton accepts at least one data path.
func (a *Automaton) Nonempty() bool {
	_, ok := a.SomeDataPath()
	return ok
}

// SomeDataPath returns an accepted data path if the language is nonempty.
// Witness values are named c<class>; the witness is verified against
// MatchDataPath before being returned.
func (a *Automaton) SomeDataPath() (datagraph.DataPath, bool) {
	root := symCfg{state: a.Start, regClass: make([]int, a.NumRegs), curClass: 0}
	for i := range root.regClass {
		root.regClass[i] = -1
	}
	nextClass := 1 // class 0 is the first data value

	visited := map[string]struct{}{root.canonical(): {}}
	events := []symEvent{{prev: -1, cfg: root}}
	acceptAt := -1
	for i := 0; i < len(events) && acceptAt < 0; i++ {
		cfg := events[i].cfg
		if cfg.state == a.Accept {
			acceptAt = i
			break
		}
		for _, t := range a.Trans[cfg.state] {
			if t.Eps {
				// The current value is unchanged; check and store against it.
				if !condSatSym(t.Cond, cfg) {
					continue
				}
				next := cfg.clone()
				next.state = t.To
				for _, r := range t.Store {
					next.regClass[r] = next.curClass
				}
				record(&events, visited, i, symEvent{eps: true, cfg: next})
				continue
			}
			// Letter step: the next data value either joins a class that
			// contains some register, or is fresh (isolated). The previous
			// current value's identity is irrelevant unless stored, so
			// classes without registers need not be joined.
			label := t.Label
			if t.AnyLabel {
				label = "a"
			}
			choices := registerClasses(cfg)
			choices = append(choices, -1) // fresh
			for _, ch := range choices {
				next := cfg.clone()
				next.state = t.To
				if ch < 0 {
					next.curClass = nextClass
					nextClass++
				} else {
					next.curClass = ch
				}
				if !condSatSym(t.Cond, next) {
					continue
				}
				for _, r := range t.Store {
					next.regClass[r] = next.curClass
				}
				record(&events, visited, i, symEvent{label: label, cfg: next})
			}
		}
	}
	if acceptAt < 0 {
		return datagraph.DataPath{}, false
	}
	// Rebuild the witness: walk the event chain, keeping only letter steps;
	// each position's value is c<curClass> at that point.
	var chain []int
	for cur := acceptAt; cur != -1; cur = events[cur].prev {
		chain = append(chain, cur)
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	values := []datagraph.Value{datagraph.V(fmt.Sprintf("c%d", events[chain[0]].cfg.curClass))}
	var labels []string
	for _, idx := range chain[1:] {
		ev := events[idx]
		if ev.eps {
			continue
		}
		labels = append(labels, ev.label)
		values = append(values, datagraph.V(fmt.Sprintf("c%d", ev.cfg.curClass)))
	}
	w := datagraph.NewDataPath(values, labels)
	if !a.MatchDataPath(w, datagraph.MarkedNulls) {
		// The abstraction is sound and complete for the condition language,
		// so this indicates a bug; fail closed.
		panic(fmt.Sprintf("ra: symbolic witness rejected: %v", w))
	}
	return w, true
}

func record(events *[]symEvent, visited map[string]struct{}, prev int, ev symEvent) {
	key := ev.cfg.canonical()
	if _, dup := visited[key]; dup {
		return
	}
	visited[key] = struct{}{}
	ev.prev = prev
	*events = append(*events, ev)
}

// registerClasses lists the distinct classes containing a register, sorted.
func registerClasses(c symCfg) []int {
	set := map[int]struct{}{}
	for _, cl := range c.regClass {
		if cl >= 0 {
			set[cl] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for cl := range set {
		out = append(out, cl)
	}
	sort.Ints(out)
	return out
}
