package ra

import "repro/internal/datagraph"

// This file implements Remark 2 of the paper: SQL's actual three-valued
// logic (true / false / unknown, with d = n and d ≠ n evaluating to
// unknown), and the claim that for data RPQ conditions the simpler
// two-valued treatment used everywhere else in this repository agrees:
// eval(c, σ) = true iff evalsql(c, σ) = true. Tests verify the equivalence
// by exhaustive enumeration.

// Truth is a three-valued logic value.
type Truth int8

const (
	// False3 is definite falsehood.
	False3 Truth = iota
	// Unknown3 is SQL's unknown.
	Unknown3
	// True3 is definite truth.
	True3
)

func (t Truth) String() string {
	switch t {
	case False3:
		return "false"
	case Unknown3:
		return "unknown"
	default:
		return "true"
	}
}

// and3 propagates unknown per SQL: unknown ∧ true = unknown,
// unknown ∧ false = false.
func and3(a, b Truth) Truth {
	if a < b {
		return a
	}
	return b
}

// or3: unknown ∨ false = unknown, unknown ∨ true = true.
func or3(a, b Truth) Truth {
	if a > b {
		return a
	}
	return b
}

// EvalSQL3 evaluates the condition under SQL's three-valued logic: atomic
// comparisons involving the null value are unknown; unknown propagates
// through ∧ and ∨ per the standard truth tables. Comparisons against unset
// registers are false (as in Eval; the paper excludes such conditions).
func EvalSQL3(c Cond, regs []datagraph.Value, set []bool, d datagraph.Value) Truth {
	switch t := c.(type) {
	case True:
		return True3
	case Eq:
		if !set[t.Reg] {
			return False3
		}
		if regs[t.Reg].IsNull() || d.IsNull() {
			return Unknown3
		}
		if regs[t.Reg] == d {
			return True3
		}
		return False3
	case Neq:
		if !set[t.Reg] {
			return False3
		}
		if regs[t.Reg].IsNull() || d.IsNull() {
			return Unknown3
		}
		if regs[t.Reg] != d {
			return True3
		}
		return False3
	case And:
		return and3(EvalSQL3(t.L, regs, set, d), EvalSQL3(t.R, regs, set, d))
	case Or:
		return or3(EvalSQL3(t.L, regs, set, d), EvalSQL3(t.R, regs, set, d))
	default:
		panic("ra: unknown condition node")
	}
}
