package engine_test

// Cancellation-latency regression: a canceled sharded evaluation must
// release its shard workers within one chunk of kernel work (see
// rpq.CancelCheckEvery), not at the next exchange-round barrier. The
// fixture is sized so a full evaluation takes a couple of seconds across
// only two exchange rounds — under the old round-granularity check, a
// cancel landing mid-round was not observed until the round completed, so
// the elapsed-time bound below fails without chunk-level polling.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/rpq"
	"repro/internal/workload"
)

func TestShardedCancelReleasesWithinChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 600, Edges: 3000, Labels: []string{"p", "q", "r"}, Values: 20, Seed: 42,
	})
	ss := gs.FreezeSharded(8, datagraph.PartitionHash)
	q := rpq.MustParse("(p|q|r)*")

	// Baseline: how long an uncanceled evaluation takes on this machine.
	start := time.Now()
	if _, _, err := engine.EvalSourceSharded(context.Background(), ss, q, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(start)
	if baseline < 50*time.Millisecond {
		t.Skipf("baseline %v too fast to measure release latency", baseline)
	}

	// Cancel early in the run; the evaluation must return well before a
	// full round would have completed.
	delay := baseline / 20
	ctx, cancel := context.WithTimeout(context.Background(), delay)
	defer cancel()
	start = time.Now()
	_, _, err := engine.EvalSourceSharded(ctx, ss, q, engine.Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled evaluation returned err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wrapped error lost the context cause: %v", err)
	}
	// Generous bound: release within half the full-eval time. Without
	// chunk-granularity checks the kernels run the round to completion and
	// elapsed approaches baseline.
	if limit := baseline / 2; elapsed > limit {
		t.Fatalf("canceled evaluation held workers for %v (baseline %v, limit %v)", elapsed, baseline, limit)
	}
	t.Logf("baseline %v, canceled at %v, released after %v", baseline, delay, elapsed)
}

func TestEvalSeedsCancelDiscardsPartialWork(t *testing.T) {
	// A long chain keeps the product BFS busy for many chunks so the
	// cancel hook is guaranteed to be polled.
	g := datagraph.New()
	const n = 5000
	ids := make([]datagraph.NodeID, n)
	for i := range ids {
		ids[i] = datagraph.NodeID(string(rune('a')) + itoa(i))
		g.MustAddNode(ids[i], datagraph.Null())
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(ids[i], "p", ids[i+1])
	}
	q := rpq.MustParse("p*")
	sp := q.LowerOnto(g)

	var seeds []rpq.Seed
	for _, st := range q.StartStates() {
		seeds = append(seeds, rpq.Seed{Node: 0, State: int32(st)})
	}
	calls := 0
	done := sp.EvalSeeds(seeds,
		func(int) bool { return false },
		func(int) {},
		func(int, int) {},
		func() bool { calls++; return true })
	if done {
		t.Fatal("EvalSeeds reported completion despite cancel firing")
	}
	if calls != 1 {
		t.Fatalf("cancel polled %d times after firing, want exactly 1", calls)
	}

	// Without a cancel hook the same traversal completes and reports true.
	accepts := 0
	done = sp.EvalSeeds(seeds,
		func(int) bool { return false },
		func(int) { accepts++ },
		func(int, int) {},
		nil)
	if !done || accepts != n {
		t.Fatalf("uncanceled traversal: done=%v accepts=%d, want true/%d", done, accepts, n)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
