package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/fault"
	"repro/internal/rpq"
)

// This file is the sharded evaluation path for navigational RPQs: each
// shard runs the rpq product-BFS kernel over its own fragment, stopping at
// ghost nodes, and the (node, NFA-state) pairs that reached a ghost are
// exchanged with the owning shard as fresh seeds. The exchange iterates in
// rounds until no shard's frontier grows; a second phase then walks the
// per-entry summaries to assemble answers. Answers are merged on global
// node identity into the deterministic (sorted) core.Answers set, so the
// sharded path is byte-for-byte identical to single-shard evaluation.
//
// Only navigational RPQs go through the exchange: their NFA never inspects
// data values, so shard-local traversal plus boundary hand-off is exact.
// REE/REM/GXPath queries keep evaluating against the merged solution.

// ShardView is the engine's per-shard evaluation surface: one fragment
// graph, the ghost→owner map aligned with its dense indices, and the owned
// locals to start traversals from. Views adapt both core.SolutionShard
// fragments and datagraph.GraphShard fragments.
type ShardView struct {
	G          *datagraph.Graph
	GhostOwner []int32 // local -> owning shard; -1 when owned by this shard
	Starts     []int32 // owned locals used as traversal starts
}

// ExchangeStats describes one sharded evaluation.
type ExchangeStats struct {
	// Shards is the number of fragments evaluated.
	Shards int
	// Rounds is the number of exchange rounds until no frontier grew.
	Rounds int
	// Entries is the number of (node, state) entry batches evaluated
	// across all shards and rounds.
	Entries int
	// CrossPairs is the number of boundary (node, state) pairs handed
	// between shards.
	CrossPairs int
}

func (st *ExchangeStats) add(o ExchangeStats) {
	if st.Shards < o.Shards {
		st.Shards = o.Shards
	}
	st.Rounds += o.Rounds
	st.Entries += o.Entries
	st.CrossPairs += o.CrossPairs
}

// entryKey identifies one unit of shard-local work: resume the product BFS
// on shard at local node in the given NFA state. State -1 is the start
// entry — seed the node with the ε-closed NFA start states.
type entryKey struct {
	shard, local, state int32
}

// entrySummary is the memoized result of one entry: the fragment-local
// nodes its traversal accepted at, and the boundary entries it exited to.
type entrySummary struct {
	accepts []int32
	exits   []entryKey
}

const startState int32 = -1

// evalExchange runs the boundary-frontier exchange to fixpoint and returns
// the summary of every entry reached from the start frontier. Each round
// evaluates the pending entries shard-locally (shards in parallel, each
// shard single-threaded over its reused scratch) and the exits seed the
// next round's frontier; the loop converges when no shard's frontier grows.
func evalExchange(ctx context.Context, q *rpq.Query, views []ShardView, opts Options) (map[entryKey]*entrySummary, ExchangeStats, error) {
	k := len(views)
	stats := ExchangeStats{Shards: k}
	progs := make([]*rpq.ShardProg, k)
	forEachShard(k, opts.workers(), func(s int) {
		progs[s] = q.LowerOnto(views[s].G)
	})
	startStates := q.StartStates()

	summaries := make(map[entryKey]*entrySummary)
	var frontier []entryKey
	for s := range views {
		for _, l := range views[s].Starts {
			ek := entryKey{int32(s), l, startState}
			summaries[ek] = nil // mark queued
			frontier = append(frontier, ek)
		}
	}

	// canceled is the chunk-granularity cancellation hook threaded into
	// every shard kernel: each worker polls it between entries and (via
	// rpq.CancelCheckEvery) inside the product BFS, so an expired deadline
	// or a disconnected client releases all shard workers within one chunk
	// of expansion work, not at the next exchange-round barrier.
	canceled := func() bool { return ctx.Err() != nil }

	for len(frontier) > 0 {
		stats.Rounds++
		// Fault point "engine.exchange": one per exchange round, the
		// moment frontiers are about to cross shard boundaries.
		if err := fault.Hit("engine.exchange"); err != nil {
			return nil, stats, err
		}
		if err := ctx.Err(); err != nil {
			return nil, stats, core.Canceled(err)
		}
		byShard := make([][]entryKey, k)
		for _, ek := range frontier {
			byShard[ek.shard] = append(byShard[ek.shard], ek)
		}
		results := make([][]*entrySummary, k)
		forEachShard(k, opts.workers(), func(s int) {
			results[s] = evalShardBatch(progs[s], views, s, byShard[s], startStates, canceled)
		})
		// A mid-round cancellation leaves partial batch results; re-check
		// before folding them in so a canceled evaluation can never be
		// mistaken for a converged one.
		if err := ctx.Err(); err != nil {
			return nil, stats, core.Canceled(err)
		}
		frontier = frontier[:0]
		for s := range byShard {
			for i, ek := range byShard[s] {
				sum := results[s][i]
				summaries[ek] = sum
				stats.Entries++
				for _, x := range sum.exits {
					stats.CrossPairs++
					if _, queued := summaries[x]; !queued {
						summaries[x] = nil
						frontier = append(frontier, x)
					}
				}
			}
		}
	}
	return summaries, stats, nil
}

// evalShardBatch evaluates one shard's entry batch sequentially over the
// shard's program and scratch. It reads other views only through their
// frozen fragments (id lookup of exit targets), which is safe concurrently.
// canceled is polled between entries and inside each product BFS; once it
// fires the rest of the batch is abandoned (the caller re-checks the
// context before using any results).
func evalShardBatch(prog *rpq.ShardProg, views []ShardView, s int, batch []entryKey, startStates []int, canceled func() bool) []*entrySummary {
	v := views[s]
	out := make([]*entrySummary, len(batch))
	var seeds []rpq.Seed
	for i, ek := range batch {
		if canceled != nil && canceled() {
			return out
		}
		sum := &entrySummary{}
		out[i] = sum
		seeds = seeds[:0]
		if ek.state == startState {
			if prog.CanSkipStart(int(ek.local)) {
				continue
			}
			for _, st := range startStates {
				seeds = append(seeds, rpq.Seed{Node: ek.local, State: int32(st)})
			}
		} else {
			seeds = append(seeds, rpq.Seed{Node: ek.local, State: ek.state})
		}
		prog.EvalSeeds(seeds,
			func(n int) bool { return v.GhostOwner[n] >= 0 },
			func(n int) { sum.accepts = append(sum.accepts, int32(n)) },
			func(n, st int) {
				owner := v.GhostOwner[n]
				ol, ok := views[owner].G.IndexOf(v.G.Node(n).ID)
				if !ok {
					// Cannot happen: owners hold every node they own.
					return
				}
				sum.exits = append(sum.exits, entryKey{owner, int32(ol), int32(st)})
			},
			canceled)
	}
	return out
}

// shardPair is one answer in shard-local coordinates.
type shardPair struct {
	fromShard, from int32
	toShard, to     int32
}

// collectAnswers walks the exchange summaries from every start entry,
// unioning the accepts of all entries reachable through exit edges — the
// second phase over the boundary summary graph. Starts are chunked over the
// worker pool; answer order across workers is nondeterministic, so callers
// must merge into a set keyed on global identity. On dense closure queries
// this phase dominates (the pair set can be quadratic), so it honors the
// same chunk-granularity cancellation as the kernels: workers poll ctx
// every rpq.CancelCheckEvery accepted pairs and the caller must discard the
// partial emission when collectAnswers returns a non-nil error.
func collectAnswers(ctx context.Context, views []ShardView, summaries map[entryKey]*entrySummary, opts Options, emit func(p shardPair)) error {
	type start struct{ shard, local int32 }
	var starts []start
	for s := range views {
		for _, l := range views[s].Starts {
			starts = append(starts, start{int32(s), l})
		}
	}
	workers := opts.workers()
	if workers > len(starts) {
		workers = len(starts)
	}
	buffers := make([][]shardPair, max(workers, 1))
	var canceled atomic.Bool
	runStart := func(w int, st start) {
		seen := map[entryKey]struct{}{}
		stack := []entryKey{{st.shard, st.local, startState}}
		seen[stack[0]] = struct{}{}
		work := 0
		for len(stack) > 0 {
			work++
			if work >= rpq.CancelCheckEvery {
				work = 0
				if ctx.Err() != nil {
					canceled.Store(true)
				}
			}
			if canceled.Load() {
				return
			}
			ek := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sum := summaries[ek]
			if sum == nil {
				continue
			}
			for _, a := range sum.accepts {
				buffers[w] = append(buffers[w], shardPair{st.shard, st.local, ek.shard, a})
			}
			work += len(sum.accepts)
			for _, x := range sum.exits {
				if _, ok := seen[x]; !ok {
					seen[x] = struct{}{}
					stack = append(stack, x)
				}
			}
		}
	}
	forEachShardRange(len(starts), workers, func(w, i int) {
		runStart(w, starts[i])
	})
	if err := ctx.Err(); err != nil {
		return core.Canceled(err)
	}
	emitted := 0
	for _, buf := range buffers {
		for _, p := range buf {
			emit(p)
			emitted++
			if emitted >= rpq.CancelCheckEvery {
				emitted = 0
				if err := ctx.Err(); err != nil {
					return core.Canceled(err)
				}
			}
		}
	}
	return nil
}

// viewsOfSolution adapts a sharded solution's fragments.
func viewsOfSolution(ss *core.ShardedSolution) []ShardView {
	views := make([]ShardView, len(ss.Shards))
	for s, sh := range ss.Shards {
		views[s] = ShardView{G: sh.G, GhostOwner: sh.GhostOwner, Starts: sh.OwnedDom}
	}
	return views
}

// viewsOfSnapshot adapts a sharded source snapshot's fragments; every owned
// node is a start.
func viewsOfSnapshot(ss *datagraph.ShardedSnapshot) []ShardView {
	views := make([]ShardView, ss.NumShards())
	for s := range views {
		fs := ss.Shard(s)
		gh := make([]int32, fs.Graph().NumNodes())
		for l := range gh {
			gh[l] = int32(fs.GhostOwner(l))
		}
		views[s] = ShardView{G: fs.Graph(), GhostOwner: gh, Starts: fs.OwnedLocals()}
	}
	return views
}

// CertainNullSharded computes certain answers under the Theorem 4 SQL-null
// procedure over the sharded universal solution: shard-local kernels plus
// boundary exchange, then answers whose target is a null node are dropped.
// Byte-for-byte equivalent to evaluating q over the merged universal
// solution and filtering.
func CertainNullSharded(ctx context.Context, mat *core.Materialization, q *rpq.Query, opts Options) (*core.Answers, ExchangeStats, error) {
	ss, err := mat.UniversalShardedCtx(ctx)
	if err != nil {
		return nil, ExchangeStats{}, err
	}
	views := viewsOfSolution(ss)
	summaries, stats, err := evalExchange(ctx, q, views, opts)
	if err != nil {
		return nil, stats, err
	}
	ans := core.NewAnswers()
	if err := collectAnswers(ctx, views, summaries, opts, func(p shardPair) {
		to := views[p.toShard].G.Node(int(p.to))
		if to.IsNullNode() {
			return
		}
		ans.Add(core.Answer{From: views[p.fromShard].G.Node(int(p.from)), To: to})
	}); err != nil {
		return nil, stats, err
	}
	return ans, stats, nil
}

// CertainLeastInformativeSharded computes certain answers under the Theorem
// 5 procedure over the sharded least informative solution: answers are kept
// only when both endpoints are dom(M, Gs) nodes.
func CertainLeastInformativeSharded(ctx context.Context, mat *core.Materialization, q *rpq.Query, opts Options) (*core.Answers, ExchangeStats, error) {
	ss, err := mat.LeastInformativeShardedCtx(ctx)
	if err != nil {
		return nil, ExchangeStats{}, err
	}
	dom := mat.DomIDs()
	views := viewsOfSolution(ss)
	summaries, stats, err := evalExchange(ctx, q, views, opts)
	if err != nil {
		return nil, stats, err
	}
	ans := core.NewAnswers()
	if err := collectAnswers(ctx, views, summaries, opts, func(p shardPair) {
		to := views[p.toShard].G.Node(int(p.to))
		if _, ok := dom[to.ID]; !ok {
			return
		}
		ans.Add(core.Answer{From: views[p.fromShard].G.Node(int(p.from)), To: to})
	}); err != nil {
		return nil, stats, err
	}
	return ans, stats, nil
}

// EvalSourceSharded evaluates a navigational RPQ directly over a sharded
// source snapshot, returning pairs in global dense indices — equivalent to
// q.Eval over the unsharded graph.
func EvalSourceSharded(ctx context.Context, ss *datagraph.ShardedSnapshot, q *rpq.Query, opts Options) (*datagraph.PairSet, ExchangeStats, error) {
	views := viewsOfSnapshot(ss)
	summaries, stats, err := evalExchange(ctx, q, views, opts)
	if err != nil {
		return nil, stats, err
	}
	var n int
	for s := 0; s < ss.NumShards(); s++ {
		n += ss.Shard(s).NumOwned()
	}
	res := datagraph.NewPairSetSized(n)
	if err := collectAnswers(ctx, views, summaries, opts, func(p shardPair) {
		res.Add(ss.Shard(int(p.fromShard)).GlobalOf(int(p.from)),
			ss.Shard(int(p.toShard)).GlobalOf(int(p.to)))
	}); err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}

// forEachShard runs fn(s) for s in [0, shards) over at most workers
// goroutines.
func forEachShard(shards, workers int, fn func(s int)) {
	forEachShardRange(shards, workers, func(_, s int) { fn(s) })
}

// forEachShardRange runs fn(worker, i) for i in [0, n) over at most workers
// goroutines; fn additionally learns which worker runs it, for per-worker
// buffers.
func forEachShardRange(n, workers int, fn func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
