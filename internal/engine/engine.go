// Package engine is the indexed, concurrent evaluation engine for
// certain-answer computation. It executes the paper's tractable algorithms
// (the Theorem 4 SQL-null procedure, the Theorem 5 least-informative
// procedure, and the Proposition 5 choice search) on top of the per-label
// adjacency indexes of internal/datagraph, sharding two independent
// dimensions of work across a pool of GOMAXPROCS goroutines:
//
//   - queries: each query in a batch is evaluated independently;
//   - source-node frontiers: a query that can evaluate from a single start
//     node (core.FromEvaluator — REE, REM and navigational RPQs all can) has
//     its start frontier split into chunks, one chunk per work item.
//
// Start nodes that cannot begin a match are pruned before evaluation using
// the queries' StartLabels metadata against the graph's per-label adjacency
// index, which makes selective queries on large graphs nearly free.
//
// Output is deterministic: answers are set-valued and the merge is
// order-insensitive, so the same inputs always produce the same Answers
// regardless of scheduling.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
)

// Options configure the worker pool.
type Options struct {
	// Workers is the number of goroutines; ≤ 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of start nodes per frontier work item; ≤ 0
	// picks a default balancing scheduling overhead against skew.
	ChunkSize int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) chunk() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 32
}

// frontierQuery is the optional metadata interface used to prune start
// frontiers; ree.Query, rem.Query and core.NavQuery implement it.
type frontierQuery interface {
	StartLabels() ([]string, bool)
	AcceptsEmptyPath() bool
}

// canSkipStart reports whether node u of g can be skipped as a start node
// for q: only when q's start-label set is exhaustive, q cannot accept a
// single-node path, and u has no out-edge carrying any start label. All
// three checks are conservative, so skipping never loses answers.
func canSkipStart(g *datagraph.Graph, q core.Query, u int) bool {
	fq, ok := q.(frontierQuery)
	if !ok {
		return false
	}
	labels, exhaustive := fq.StartLabels()
	if !exhaustive || fq.AcceptsEmptyPath() {
		return false
	}
	for _, l := range labels {
		if len(g.OutEdges(u, l)) > 0 {
			return false
		}
	}
	return true
}

// Eval computes the certain answers 2ⁿ_M(Q, Gs) (the Theorem 4 algorithm)
// for every query concurrently and returns one answer set per query, index-
// aligned with the input. The universal solution is built once and shared
// read-only by all workers.
func Eval(ctx context.Context, m *core.Mapping, gs *datagraph.Graph, queries ...core.Query) ([]*core.Answers, error) {
	return EvalOpts(ctx, m, gs, Options{}, queries...)
}

// EvalOpts is Eval with explicit worker-pool options.
func EvalOpts(ctx context.Context, m *core.Mapping, gs *datagraph.Graph, opts Options, queries ...core.Query) ([]*core.Answers, error) {
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		return nil, err
	}
	return EvalSolution(ctx, u, opts, queries...)
}

// EvalSolution runs the Theorem 4 batch over an already materialized
// universal solution: evaluate every query concurrently under SQL-null
// semantics and filter null-node endpoints. Sessions use it so a stream of
// batches against one (M, Gs) shares one memoized solution instead of
// rebuilding it per call.
func EvalSolution(ctx context.Context, u *datagraph.Graph, opts Options, queries ...core.Query) ([]*core.Answers, error) {
	sets, err := evalAll(ctx, u, queries, datagraph.SQLNulls, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*core.Answers, len(queries))
	for i, res := range sets {
		out[i] = core.FilterNullAnswers(u, res)
	}
	return out, nil
}

// CertainNull is the engine-backed counterpart of core.CertainNull: one
// query, parallel frontier evaluation over the universal solution.
func CertainNull(ctx context.Context, m *core.Mapping, gs *datagraph.Graph, q core.Query, opts Options) (*core.Answers, error) {
	eval, evalErr := captureEvalFunc(ctx, opts)
	ans, err := core.CertainNullEval(m, gs, q, eval)
	if err != nil {
		return nil, err
	}
	if *evalErr != nil {
		return nil, *evalErr
	}
	return ans, nil
}

// CertainLeastInformative is the engine-backed counterpart of
// core.CertainLeastInformative (the Theorem 5 algorithm).
func CertainLeastInformative(ctx context.Context, m *core.Mapping, gs *datagraph.Graph, q core.Query, opts Options) (*core.Answers, error) {
	eval, evalErr := captureEvalFunc(ctx, opts)
	ans, err := core.CertainLeastInformativeEval(m, gs, q, eval)
	if err != nil {
		return nil, err
	}
	if *evalErr != nil {
		return nil, *evalErr
	}
	return ans, nil
}

// CertainDataPathArbitrary runs the Proposition 5 procedure with the
// adversary's word-choice combinations sharded across the worker pool.
func CertainDataPathArbitrary(m *core.Mapping, gs *datagraph.Graph, q *ree.Query,
	from, to datagraph.NodeID, opts Options) (bool, error) {
	return core.CertainDataPathArbitrary(m, gs, q, from, to,
		core.Prop5Options{Workers: opts.workers()})
}

// EvalGraph evaluates one query over one graph with the start-node frontier
// sharded across the worker pool. It is the parallel counterpart of
// q.Eval(g, mode) and falls back to it when the query cannot evaluate from
// a single start node.
func EvalGraph(ctx context.Context, g *datagraph.Graph, q core.Query, mode datagraph.CompareMode, opts Options) (*datagraph.PairSet, error) {
	sets, err := evalAll(ctx, g, []core.Query{q}, mode, opts)
	if err != nil {
		return nil, err
	}
	return sets[0], nil
}

// captureEvalFunc adapts the engine to the core.EvalFunc hook. The hook's
// signature has no error return, so evaluation errors (context
// cancellation) are parked in the returned error slot; callers must check
// it after the core algorithm returns and discard the (truncated) answers
// when it is set. Once an error is parked the hook short-circuits: later
// calls return an empty set immediately instead of re-entering EvalGraph,
// so a cancelled core algorithm winds down without doing further
// evaluation work, and the first error is preserved rather than
// overwritten by the cascade that follows it.
func captureEvalFunc(ctx context.Context, opts Options) (core.EvalFunc, *error) {
	evalErr := new(error)
	return func(g *datagraph.Graph, q core.Query, mode datagraph.CompareMode) *datagraph.PairSet {
		if *evalErr != nil {
			return datagraph.NewPairSet()
		}
		res, err := EvalGraph(ctx, g, q, mode, opts)
		if err != nil {
			*evalErr = err
			return datagraph.NewPairSet()
		}
		return res
	}, evalErr
}

// job is one unit of work: evaluate query qi on start nodes [lo, hi) of the
// shared graph, or — when whole is set — run the query's monolithic Eval
// (for queries that cannot evaluate from a single node).
type job struct {
	qi     int
	lo, hi int
	whole  bool
}

// evalAll runs the shared worker pool over every (query, frontier-chunk)
// work item and returns one PairSet per query.
//
// The graph is frozen exactly once, up front, so every worker evaluates
// against one shared immutable snapshot. Freezing is incremental
// (datagraph delta snapshots), so in update-heavy workloads — query
// batches separated by AddEdge/SetValue bursts — each batch pays only for
// the delta since the previous batch, not an O(V+E) rebuild. Result sets are dense bitmap
// PairSets (when the graph fits the dense budget); frontier work items for
// the same query touch disjoint start nodes and therefore disjoint bitmap
// rows, so workers write answers straight into the shared result set
// without locks — only whole-query work items and sparse fallbacks merge
// under a mutex.
func evalAll(ctx context.Context, g *datagraph.Graph, queries []core.Query, mode datagraph.CompareMode, opts Options) ([]*datagraph.PairSet, error) {
	n := g.NumNodes()
	g.Freeze()
	chunk := opts.chunk()
	var jobs []job
	for qi, q := range queries {
		_, ranged := q.(core.RangeEvaluator)
		_, fromable := q.(core.FromEvaluator)
		if ranged || fromable {
			for lo := 0; lo < n; lo += chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				jobs = append(jobs, job{qi: qi, lo: lo, hi: hi})
			}
		} else {
			jobs = append(jobs, job{qi: qi, whole: true})
		}
	}

	results := make([]*datagraph.PairSet, len(queries))
	locks := make([]sync.Mutex, len(queries))
	for i := range results {
		results[i] = datagraph.NewPairSetSized(n)
	}

	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		// Sequential fast path: no goroutine or lock overhead.
		for _, j := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, core.Canceled(err)
			}
			runJob(g, queries, mode, j, results[j.qi])
		}
		return results, nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := datagraph.NewPairSet()
			lastQ := -1
			flush := func() {
				if lastQ >= 0 && local.Len() > 0 {
					locks[lastQ].Lock()
					local.Each(func(p datagraph.Pair) { results[lastQ].AddPair(p) })
					locks[lastQ].Unlock()
				}
				local = datagraph.NewPairSet()
			}
			for ctx.Err() == nil {
				idx := int(next.Add(1)) - 1
				if idx >= len(jobs) {
					break
				}
				j := jobs[idx]
				if !j.whole && results[j.qi].Dense() {
					// Disjoint bitmap rows: write directly, lock-free.
					runJob(g, queries, mode, j, results[j.qi])
					continue
				}
				if j.qi != lastQ {
					flush()
					lastQ = j.qi
				}
				runJob(g, queries, mode, j, local)
			}
			flush()
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, core.Canceled(err)
	}
	return results, nil
}

// runJob executes one work item, adding pairs into sink.
func runJob(g *datagraph.Graph, queries []core.Query, mode datagraph.CompareMode, j job, sink *datagraph.PairSet) {
	q := queries[j.qi]
	if j.whole {
		q.Eval(g, mode).Each(func(p datagraph.Pair) { sink.AddPair(p) })
		return
	}
	if re, ok := q.(core.RangeEvaluator); ok {
		// Snapshot kernel: interned labels, scratch shared across the
		// chunk, start pruning done internally on interned start labels.
		re.EvalRange(g, j.lo, j.hi, mode, sink.Add)
		return
	}
	fe := q.(core.FromEvaluator)
	for u := j.lo; u < j.hi; u++ {
		if canSkipStart(g, q, u) {
			continue
		}
		for _, v := range fe.EvalFrom(g, u, mode) {
			sink.Add(u, v)
		}
	}
}
