package engine

import (
	"context"
	"sync"
	"testing"

	"repro/internal/datagraph"
)

// TestSharedSnapshotAcrossWorkers exercises the one-snapshot-many-readers
// contract under the race detector: the graph is frozen once, then many
// concurrent EvalGraph calls (each fanning out to its own worker pool)
// evaluate against the same shared snapshot, including the per-query
// snapshot-program caches. Every result must equal the single-threaded
// reference.
func TestSharedSnapshotAcrossWorkers(t *testing.T) {
	g := testGraph(23)
	queries := testQueries(t)
	snap := g.Freeze()
	if snap == nil || g.Snapshot() != snap {
		t.Fatal("freeze did not cache the snapshot")
	}

	ctx := context.Background()
	want := make([]*datagraph.PairSet, len(queries))
	for i, q := range queries {
		want[i] = q.Eval(g, datagraph.SQLNulls)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for round := 0; round < 8; round++ {
		for qi := range queries {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				got, err := EvalGraph(ctx, g, queries[qi], datagraph.SQLNulls, Options{Workers: 4, ChunkSize: 8})
				if err != nil {
					errs <- err.Error()
					return
				}
				if !got.Equal(want[qi]) {
					errs <- "concurrent result diverged from reference"
				}
			}(qi)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if g.Snapshot() != snap {
		t.Fatal("evaluation must not invalidate or replace the shared snapshot")
	}
}
