package engine_test

// Sharded-evaluation equivalence: the shard-local kernels plus boundary
// exchange must produce exactly the answers of single-shard evaluation over
// the merged solution (and, for EvalSourceSharded, of direct evaluation
// over the unsharded graph), across shard counts and policies.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/rpq"
	"repro/internal/workload"
)

var shardPatterns = []string{
	"p",
	"p q",
	"(p|q)+",
	"p (q|r)*",
	"r* p",
	"(p q)|(q r)",
	"(p|q|r)*",
}

func shardedFixture(t *testing.T, seed int64, shards int, policy datagraph.PartitionPolicy) (*core.Materialization, *core.Materialization, *datagraph.Graph) {
	t.Helper()
	gs := workload.RandomGraph(workload.GraphSpec{
		Nodes: 60, Edges: 200, Labels: []string{"a", "b"}, Values: 8, Seed: seed,
	})
	m := workload.RandomRelationalMapping(workload.MappingSpec{
		SourceLabels: []string{"a", "b"}, TargetLabels: []string{"p", "q", "r"},
		Rules: 4, MaxWordLen: 3, Seed: seed,
	})
	cm, err := core.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.NewMaterializationSharded(cm, gs, core.ShardOptions{Shards: shards, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return sharded, core.NewMaterialization(cm, gs), gs
}

func TestCertainNullShardedMatchesSingle(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		for _, shards := range []int{1, 2, 7, 16} {
			for _, policy := range []datagraph.PartitionPolicy{datagraph.PartitionHash, datagraph.PartitionRange} {
				mat, ref, _ := shardedFixture(t, seed, shards, policy)
				u, err := ref.Universal()
				if err != nil {
					t.Fatal(err)
				}
				for _, pat := range shardPatterns {
					q := rpq.MustParse(pat)
					res, err := engine.EvalGraph(ctx, u, core.NavQuery{Q: q}, datagraph.SQLNulls, engine.Options{})
					if err != nil {
						t.Fatal(err)
					}
					want := core.FilterNullAnswers(u, res)
					got, st, err := engine.CertainNullSharded(ctx, mat, q, engine.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("seed %d shards %d policy %v %q: sharded answers differ\n got: %v\nwant: %v",
							seed, shards, policy, pat, got.Sorted(), want.Sorted())
					}
					if st.Shards != shards {
						t.Fatalf("stats shards = %d, want %d", st.Shards, shards)
					}
				}
			}
		}
	}
}

func TestCertainLeastInformativeShardedMatchesSingle(t *testing.T) {
	ctx := context.Background()
	for seed := int64(4); seed <= 6; seed++ {
		for _, shards := range []int{2, 7} {
			mat, ref, _ := shardedFixture(t, seed, shards, datagraph.PartitionHash)
			li, err := ref.LeastInformative()
			if err != nil {
				t.Fatal(err)
			}
			for _, pat := range shardPatterns {
				q := rpq.MustParse(pat)
				res, err := engine.EvalGraph(ctx, li, core.NavQuery{Q: q}, datagraph.MarkedNulls, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				want := core.FilterDomAnswers(li, ref.DomIDs(), res)
				got, _, err := engine.CertainLeastInformativeSharded(ctx, mat, q, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d shards %d %q: sharded LI answers differ\n got: %v\nwant: %v",
						seed, shards, pat, got.Sorted(), want.Sorted())
				}
			}
		}
	}
}

func TestEvalSourceShardedMatchesDirect(t *testing.T) {
	ctx := context.Background()
	for seed := int64(7); seed <= 9; seed++ {
		gs := workload.RandomGraph(workload.GraphSpec{
			Nodes: 50, Edges: 180, Labels: []string{"p", "q", "r"}, Values: 6, Seed: seed,
		})
		for _, shards := range []int{1, 3, 8} {
			ss := gs.FreezeSharded(shards, datagraph.PartitionHash)
			for _, pat := range shardPatterns {
				q := rpq.MustParse(pat)
				want := q.Eval(gs)
				got, _, err := engine.EvalSourceSharded(ctx, ss, q, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d shards %d %q: source answers differ", seed, shards, pat)
				}
			}
		}
	}
}

func TestExchangeFaultPoint(t *testing.T) {
	mat, _, _ := shardedFixture(t, 1, 4, datagraph.PartitionHash)
	if err := fault.Arm("engine.exchange=error:p=1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	_, _, err := engine.CertainNullSharded(context.Background(), mat, rpq.MustParse("p q"), engine.Options{})
	if err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed engine.exchange fault not surfaced: %v", err)
	}
}
