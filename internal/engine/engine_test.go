package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/rpq"
	"repro/internal/workload"
)

func testMapping() *core.Mapping {
	return core.NewMapping(core.R("a", "p q"), core.R("b", "r"))
}

func testGraph(seed int64) *datagraph.Graph {
	return workload.RandomGraph(workload.GraphSpec{
		Nodes: 60, Edges: 180, Labels: []string{"a", "b"}, Values: 10, Seed: seed,
	})
}

func testQueries(t *testing.T) []core.Query {
	t.Helper()
	nav, err := rpq.Parse("p q*")
	if err != nil {
		t.Fatal(err)
	}
	return []core.Query{
		ree.MustParseQuery("(p q)="),
		ree.MustParseQuery("(p q)!= | r"),
		rem.MustParseQuery("!x.(p (q[x=])?) q*"),
		core.NavQuery{Q: nav},
	}
}

// TestEvalMatchesSequential checks that the parallel engine computes
// exactly the certain answers of the sequential Theorem 4 algorithm, for
// every query language and several worker counts.
func TestEvalMatchesSequential(t *testing.T) {
	m := testMapping()
	queries := testQueries(t)
	for seed := int64(1); seed <= 5; seed++ {
		gs := testGraph(seed)
		var want []*core.Answers
		for _, q := range queries {
			w, err := core.CertainNull(m, gs, q)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, w)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := EvalOpts(context.Background(), m, gs, Options{Workers: workers}, queries...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range queries {
				if !got[i].Equal(want[i]) {
					t.Fatalf("seed %d, workers %d, query %d: engine answers differ\n got: %v\nwant: %v",
						seed, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEvalGraphMatchesEval checks the parallel whole-graph evaluator
// against the sequential q.Eval for each query kind.
func TestEvalGraphMatchesEval(t *testing.T) {
	g := testGraph(11)
	for _, q := range testQueries(t) {
		want := q.Eval(g, datagraph.MarkedNulls)
		got, err := EvalGraph(context.Background(), g, q, datagraph.MarkedNulls, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("EvalGraph differs from Eval: got %d pairs, want %d", got.Len(), want.Len())
		}
	}
}

// TestEvalConcurrentCallers runs many engine.Eval calls concurrently over
// one shared graph, mapping and query set — the scenario the race detector
// must pass (compiled queries and graphs are shared read-only).
func TestEvalConcurrentCallers(t *testing.T) {
	m := testMapping()
	gs := testGraph(3)
	queries := testQueries(t)
	want, err := Eval(context.Background(), m, gs, queries...)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Eval(context.Background(), m, gs, queries...)
			if err != nil {
				errs <- err
				return
			}
			for i := range queries {
				if !got[i].Equal(want[i]) {
					t.Errorf("concurrent Eval: query %d answers differ", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEvalCancellation checks that a cancelled context aborts every
// engine entry point with an error rather than returning empty answers.
func TestEvalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, gs := testMapping(), testGraph(1)
	q := testQueries(t)[0]
	if _, err := Eval(ctx, m, gs, q); err == nil {
		t.Fatal("expected a context error from a cancelled Eval")
	}
	if _, err := CertainNull(ctx, m, gs, q, Options{}); err == nil {
		t.Fatal("expected a context error from a cancelled CertainNull")
	}
	if _, err := CertainLeastInformative(ctx, m, gs, q, Options{}); err == nil {
		t.Fatal("expected a context error from a cancelled CertainLeastInformative")
	}
}

// TestCertainVariants checks the engine-backed certain-answer entry points
// against their sequential counterparts.
func TestCertainVariants(t *testing.T) {
	m := testMapping()
	gs := testGraph(9)
	q := ree.MustParseQuery("(p q)=")

	seqNull, err := core.CertainNull(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	parNull, err := CertainNull(context.Background(), m, gs, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !parNull.Equal(seqNull) {
		t.Fatal("engine CertainNull differs from core.CertainNull")
	}

	seqLI, err := core.CertainLeastInformative(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	parLI, err := CertainLeastInformative(context.Background(), m, gs, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !parLI.Equal(seqLI) {
		t.Fatal("engine CertainLeastInformative differs from core")
	}
}

// TestProp5Parallel cross-checks the parallel Proposition 5 search against
// the sequential one on a small arbitrary (non-relational) mapping.
func TestProp5Parallel(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("u", datagraph.V("1"))
	gs.MustAddNode("v", datagraph.V("2"))
	gs.MustAddEdge("u", "a", "v")
	m := core.NewMapping(core.R("a", "p | q q"))
	q := ree.MustParseQuery("(p)=")
	for _, pair := range [][2]datagraph.NodeID{{"u", "v"}, {"u", "u"}} {
		seq, err := core.CertainDataPathArbitrary(m, gs, q, pair[0], pair[1], core.Prop5Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := CertainDataPathArbitrary(m, gs, q, pair[0], pair[1], Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq != par {
			t.Fatalf("pair %v: parallel Prop5 = %v, sequential = %v", pair, par, seq)
		}
	}
}

// TestFrontierPruning checks that start-node pruning keeps answers intact
// on a graph where most nodes cannot start a match.
func TestFrontierPruning(t *testing.T) {
	g := datagraph.New()
	// A small p-chain plus many isolated b-edges that can never start (p p).
	for i := 0; i < 40; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%02d", i)), datagraph.V("d"))
	}
	nodes := g.Nodes()
	for i := 0; i+1 < 10; i++ {
		g.MustAddEdge(nodes[i].ID, "p", nodes[i+1].ID)
	}
	for i := 10; i+1 < 40; i += 2 {
		g.MustAddEdge(nodes[i].ID, "b", nodes[i+1].ID)
	}
	q := ree.MustParseQuery("p p")
	want := q.Eval(g, datagraph.MarkedNulls)
	got, err := EvalGraph(context.Background(), g, q, datagraph.MarkedNulls, Options{Workers: 3, ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("pruned evaluation differs: got %d pairs, want %d", got.Len(), want.Len())
	}
}

// cancellingQuery is a frontier-sharded fake query that counts evaluation
// calls and cancels its context on the first one — the scenario where an
// engine-backed certain-answer computation is torn down mid-flight.
type cancellingQuery struct {
	evals  *atomic.Int32
	cancel context.CancelFunc
}

func (q *cancellingQuery) Eval(g *datagraph.Graph, mode datagraph.CompareMode) *datagraph.PairSet {
	q.evals.Add(1)
	q.cancel()
	return datagraph.NewPairSet()
}

func (q *cancellingQuery) EvalFrom(g *datagraph.Graph, u int, mode datagraph.CompareMode) []int {
	q.evals.Add(1)
	q.cancel()
	return nil
}

// TestCaptureEvalFuncShortCircuits checks the error-parking contract of the
// core.EvalFunc adapter: after the first evaluation error the hook must
// stop doing evaluation work entirely — every later call returns an empty
// set without re-entering EvalGraph — and the first parked error survives.
func TestCaptureEvalFuncShortCircuits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := testGraph(7)
	var evals atomic.Int32
	q := &cancellingQuery{evals: &evals, cancel: cancel}
	eval, evalErr := captureEvalFunc(ctx, Options{Workers: 2, ChunkSize: 4})

	if res := eval(g, q, datagraph.SQLNulls); res.Len() != 0 {
		t.Fatal("a failed evaluation must contribute no answers")
	}
	if *evalErr == nil {
		t.Fatal("cancellation during evaluation must park an error")
	}
	first := *evalErr
	baseline := evals.Load()
	if baseline == 0 {
		t.Fatal("the fake query was never evaluated")
	}
	// The core algorithms keep calling the hook for every remaining
	// specialization; none of those calls may do evaluation work.
	for i := 0; i < 5; i++ {
		if res := eval(g, q, datagraph.SQLNulls); res.Len() != 0 {
			t.Fatal("short-circuited hook must return an empty set")
		}
	}
	if got := evals.Load(); got != baseline {
		t.Fatalf("hook re-entered evaluation after an error was parked (%d calls, want %d)", got, baseline)
	}
	if *evalErr != first {
		t.Fatal("the first parked error must be preserved")
	}
}
