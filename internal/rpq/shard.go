package rpq

import (
	"repro/internal/datagraph"
)

// This file is the shard-local evaluation kernel behind the engine's
// boundary-exchange evaluator: the product BFS of snapshot.go generalised
// to (a) start from an arbitrary seed set of (node, state) product pairs
// and (b) stop at designated boundary nodes, reporting the product states
// that reached them instead of expanding further. The engine runs one such
// kernel per shard fragment and exchanges the reported (node, state) pairs
// with the owning shards until no frontier grows.

// Seed is one (fragment-local node, NFA state) product pair. Exchange seeds
// carry the concrete state recorded at the boundary — ε-closure was already
// applied when the state was first pushed, so re-seeding it verbatim on the
// owning shard resumes the exact product BFS the boundary interrupted.
type Seed struct {
	Node  int32
	State int32
}

// NumStates returns the size of the compiled NFA's state space — the
// second dimension of the sharded kernels' product space.
func (q *Query) NumStates() int { return q.nfa.NumStates }

// StartStates returns the ε-closure of the NFA start state. Seeding a node
// with every start state is how a fresh (non-exchange) traversal begins.
func (q *Query) StartStates() []int { return q.nfa.Closure(q.nfa.Start) }

// ShardProg is the query lowered onto one fragment graph: the interned
// program plus the fragment-sized scratch. Unlike the per-query program
// cache (which holds a single entry), sharded evaluation keeps one
// ShardProg per fragment alive for the whole exchange. A ShardProg is NOT
// safe for concurrent use — the engine drives each shard from one
// goroutine at a time.
type ShardProg struct {
	q       *Query
	p       *snapProg
	scratch *rangeScratch
}

// LowerOnto freezes g (cheap when already frozen) and lowers the query onto
// its snapshot.
func (q *Query) LowerOnto(g *datagraph.Graph) *ShardProg {
	snap := g.Freeze()
	return &ShardProg{
		q:       q,
		p:       q.buildProg(snap),
		scratch: newRangeScratch(snap.NumNodes(), q.nfa.NumStates),
	}
}

// CanSkipStart reports whether fragment-local node u cannot begin any
// nonempty match and the query does not accept the empty path. Sound for
// owned nodes only: an owned node's complete out-adjacency lives in its
// fragment, a ghost's does not.
func (sp *ShardProg) CanSkipStart(u int) bool { return sp.q.canSkipStart(sp.p, u) }

// CancelCheckEvery is the chunk granularity of cooperative cancellation
// inside the product BFS: EvalSeeds polls its cancel hook once per this
// many popped product pairs, so a canceled query releases a shard worker
// after at most one chunk of expansion work — milliseconds on any
// realistic fragment — instead of running its traversal to completion.
const CancelCheckEvery = 1024

// EvalSeeds runs the product BFS over the fragment from the given seeds.
// stop marks boundary (ghost) nodes: every product pair reaching one is
// reported through exit — exactly once per (node, state) — and not expanded
// locally, because the node's out-adjacency belongs to the owning shard.
// accept fires once per node that reaches the NFA accept state, including
// stop nodes (a path may legitimately end on a ghost). Seed states are used
// verbatim; callers seeding a fresh traversal must pass the closed start
// states (StartStates).
//
// cancel, when non-nil, is polled every CancelCheckEvery popped pairs;
// once it reports true the traversal stops immediately and EvalSeeds
// returns false — its partial accept/exit reports must be discarded. A
// completed traversal returns true.
func (sp *ShardProg) EvalSeeds(seeds []Seed, stop func(node int) bool, accept func(node int), exit func(node, state int), cancel func() bool) bool {
	q, p, sc := sp.q, sp.p, sp.scratch
	numStates := q.nfa.NumStates
	sc.epoch++
	epoch := sc.epoch
	sc.queue = sc.queue[:0]
	push := func(node int32, state int) {
		id := int(node)*numStates + state
		if sc.visited[id] != epoch {
			sc.visited[id] = epoch
			sc.queue = append(sc.queue, int32(id))
		}
	}
	for _, s := range seeds {
		push(s.Node, int(s.State))
	}
	popped := 0
	for len(sc.queue) > 0 {
		if cancel != nil {
			popped++
			if popped >= CancelCheckEvery {
				popped = 0
				if cancel() {
					return false
				}
			}
		}
		id := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		node, state := int(id)/numStates, int(id)%numStates
		if state == q.nfa.Accept && sc.accepted[node] != epoch {
			sc.accepted[node] = epoch
			accept(node)
		}
		if stop(node) {
			exit(node, state)
			continue
		}
		for si := range p.steps[state] {
			st := &p.steps[state][si]
			var targets []int32
			if st.any {
				targets = p.snap.OutAll(node)
			} else {
				targets = p.snap.OutLabeled(node, st.label)
			}
			for _, to := range targets {
				for _, c := range st.toClosure {
					push(to, c)
				}
			}
		}
	}
	return true
}
