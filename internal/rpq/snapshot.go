package rpq

import (
	"repro/internal/datagraph"
)

// This file is the snapshot evaluation kernel for navigational RPQs: the
// query NFA lowered onto a graph snapshot's label interner (steps on labels
// absent from the graph dropped), evaluated by epoch-stamped product BFS
// with scratch shared across a whole start-node range.

// snapProg is the NFA lowered onto one snapshot.
type snapProg struct {
	snap        *datagraph.Snapshot
	steps       [][]snapStep
	word        []datagraph.Label // interned word for word RPQs
	wordDead    bool              // a word label is absent: no nonempty match exists
	startLabels []datagraph.Label
}

type snapStep struct {
	label     datagraph.Label
	any       bool
	toClosure []int // ε-closure of the step target, precomputed at compile time
}

// program returns the query lowered onto snap, cached on the query. The
// cache holds one entry — the snapshot evaluation last ran against — so
// sharded evaluation, which keeps one program per fragment alive at once,
// builds its programs with buildProg instead (see shard.go).
func (q *Query) program(snap *datagraph.Snapshot) *snapProg {
	if p := q.progCache.Load(); p != nil && p.snap == snap {
		return p
	}
	p := q.buildProg(snap)
	q.progCache.Store(p)
	return p
}

// buildProg lowers the query NFA onto one snapshot without touching the
// single-entry program cache.
func (q *Query) buildProg(snap *datagraph.Snapshot) *snapProg {
	p := &snapProg{snap: snap, steps: make([][]snapStep, q.nfa.NumStates)}
	for s, steps := range q.nfa.Steps {
		for _, st := range steps {
			ns := snapStep{any: st.AnyLabel, toClosure: q.nfa.Closure(st.To)}
			if !st.AnyLabel {
				l, ok := snap.LabelID(st.Label)
				if !ok {
					continue // label absent from the graph: dead step
				}
				ns.label = l
			}
			p.steps[s] = append(p.steps[s], ns)
		}
	}
	if q.word != nil {
		p.word = make([]datagraph.Label, 0, len(q.word))
		for _, name := range q.word {
			l, ok := snap.LabelID(name)
			if !ok {
				p.wordDead = true
				break
			}
			p.word = append(p.word, l)
		}
	}
	for _, name := range q.startLabels {
		if l, ok := snap.LabelID(name); ok {
			p.startLabels = append(p.startLabels, l)
		}
	}
	return p
}

// canSkipStart reports whether u cannot begin any nonempty match and the
// query does not accept the empty path.
func (q *Query) canSkipStart(p *snapProg, u int) bool {
	if q.startAny || q.emptyOK {
		return false
	}
	for _, l := range p.startLabels {
		if p.snap.HasOutLabeled(u, l) {
			return false
		}
	}
	return true
}

// rangeScratch is reusable kernel state: epoch-stamped visited arrays avoid
// both reallocation and O(size) clearing between start nodes.
type rangeScratch struct {
	epoch    uint32
	visited  []uint32 // product states (node*numStates+state) for the NFA BFS
	seen     []uint32 // nodes, for word/reachability frontiers
	accepted []uint32 // nodes, result dedup
	queue    []int32
	frontier []int32
	next     []int32
}

func newRangeScratch(n, numStates int) *rangeScratch {
	return &rangeScratch{
		visited:  make([]uint32, n*numStates),
		seen:     make([]uint32, n),
		accepted: make([]uint32, n),
	}
}

// EvalRange evaluates the query from every start node in [lo, hi), emitting
// each answer pair once. The graph is frozen once (cheap when already
// frozen) and all scratch is shared across the range.
func (q *Query) EvalRange(g *datagraph.Graph, lo, hi int, emit func(u, v int)) {
	snap := g.Freeze()
	p := q.program(snap)
	sc := newRangeScratch(snap.NumNodes(), q.nfa.NumStates)
	for u := lo; u < hi; u++ {
		q.evalFromSnap(p, u, sc, func(v int) { emit(u, v) })
	}
}

// evalFromSnap dispatches one start node to the appropriate kernel.
func (q *Query) evalFromSnap(p *snapProg, u int, sc *rangeScratch, emit func(v int)) {
	switch {
	case q.kind == KindReachability:
		q.reachableSnap(p, u, sc, emit)
	case q.word != nil:
		q.wordSnap(p, u, sc, emit)
	default:
		if q.canSkipStart(p, u) {
			return
		}
		q.productSnap(p, u, sc, emit)
	}
}

// productSnap is the product-BFS kernel over interned labels.
func (q *Query) productSnap(p *snapProg, u int, sc *rangeScratch, emit func(v int)) {
	snap := p.snap
	numStates := q.nfa.NumStates
	sc.epoch++
	epoch := sc.epoch
	sc.queue = sc.queue[:0]
	push := func(node int32, state int) {
		id := int(node)*numStates + state
		if sc.visited[id] != epoch {
			sc.visited[id] = epoch
			sc.queue = append(sc.queue, int32(id))
		}
	}
	for _, s := range q.nfa.Closure(q.nfa.Start) {
		push(int32(u), s)
	}
	for len(sc.queue) > 0 {
		id := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		node, state := int(id)/numStates, int(id)%numStates
		if state == q.nfa.Accept && sc.accepted[node] != epoch {
			sc.accepted[node] = epoch
			emit(node)
		}
		for si := range p.steps[state] {
			st := &p.steps[state][si]
			var targets []int32
			if st.any {
				targets = snap.OutAll(node)
			} else {
				targets = snap.OutLabeled(node, st.label)
			}
			for _, to := range targets {
				for _, c := range st.toClosure {
					push(to, c)
				}
			}
		}
	}
}

// wordSnap walks a fixed interned word level by level with slice frontiers.
func (q *Query) wordSnap(p *snapProg, u int, sc *rangeScratch, emit func(v int)) {
	if p.wordDead {
		return
	}
	if len(p.word) == 0 {
		emit(u)
		return
	}
	snap := p.snap
	sc.frontier = append(sc.frontier[:0], int32(u))
	for _, l := range p.word {
		sc.epoch++
		sc.next = sc.next[:0]
		for _, node := range sc.frontier {
			for _, to := range snap.OutLabeled(int(node), l) {
				if sc.seen[to] != sc.epoch {
					sc.seen[to] = sc.epoch
					sc.next = append(sc.next, to)
				}
			}
		}
		sc.frontier, sc.next = sc.next, sc.frontier
		if len(sc.frontier) == 0 {
			return
		}
	}
	for _, v := range sc.frontier {
		emit(int(v))
	}
}

// reachableSnap emits every node reachable from u (including u via ε).
func (q *Query) reachableSnap(p *snapProg, u int, sc *rangeScratch, emit func(v int)) {
	snap := p.snap
	sc.epoch++
	epoch := sc.epoch
	sc.queue = append(sc.queue[:0], int32(u))
	sc.seen[u] = epoch
	for len(sc.queue) > 0 {
		node := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		emit(int(node))
		for _, to := range snap.OutAll(int(node)) {
			if sc.seen[to] != epoch {
				sc.seen[to] = epoch
				sc.queue = append(sc.queue, to)
			}
		}
	}
}
