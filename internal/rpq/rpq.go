// Package rpq implements regular path queries (RPQs) over data graphs
// (Section 2 of Francis & Libkin, PODS'17). An RPQ is a regular expression e
// over the edge alphabet Σ; on a data graph G it returns the pairs of nodes
// connected by a path whose label is in L(e):
//
//	e(G) = {(v, v′) | ∃π : v →π v′ and λ(π) ∈ e}
//
// Evaluation uses the product of the graph with the Thompson NFA of e,
// explored by BFS — the textbook NLogspace-style procedure. Word RPQs and
// atomic RPQs (the building blocks of relational and LAV mappings,
// Definitions 1 and 3) get dedicated fast paths.
package rpq

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/datagraph"
	"repro/internal/rex"
)

// Query is a compiled RPQ.
type Query struct {
	expr rex.Regex
	nfa  *rex.NFA
	word []string // non-nil iff the expression denotes a single word
	// kind caches the structural classification used by mapping analysis.
	kind Kind
	// Start-frontier metadata, computed once by New (see StartLabels).
	startLabels []string
	startAny    bool
	emptyOK     bool

	// progCache holds the NFA lowered onto the most recent graph snapshot
	// (step labels interned, dead steps dropped); see snapshot.go.
	progCache atomic.Pointer[snapProg]
}

// Kind classifies RPQs the way the paper's mapping definitions do.
type Kind int

const (
	// KindRegex is a general regular expression.
	KindRegex Kind = iota
	// KindWord is a word RPQ (single word w ∈ Σ*), the right-hand-side
	// class of relational mappings (Definition 3).
	KindWord
	// KindAtomic is a single letter a ∈ Σ, the left-hand-side class of LAV
	// mappings and both sides of LAV/GAV rules.
	KindAtomic
	// KindReachability is Σ*, the unconstrained reachability query of the
	// relational/reachability mappings in Theorem 1.
	KindReachability
)

func (k Kind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindAtomic:
		return "atomic"
	case KindReachability:
		return "reachability"
	default:
		return "regex"
	}
}

// New compiles a regular expression into an RPQ.
func New(e rex.Regex) *Query {
	q := &Query{expr: e, nfa: rex.Compile(e), kind: KindRegex}
	if w, ok := rex.IsWord(e); ok {
		q.word = w
		q.kind = KindWord
		if len(w) == 1 {
			q.kind = KindAtomic
		}
	} else if rex.IsReachability(e) {
		q.kind = KindReachability
	}
	labelSet := map[string]struct{}{}
	for _, s := range q.nfa.Closure(q.nfa.Start) {
		if s == q.nfa.Accept {
			q.emptyOK = true
		}
		for _, step := range q.nfa.Steps[s] {
			if step.AnyLabel {
				q.startAny = true
				continue
			}
			labelSet[step.Label] = struct{}{}
		}
	}
	for l := range labelSet {
		q.startLabels = append(q.startLabels, l)
	}
	sort.Strings(q.startLabels)
	return q
}

// StartLabels returns the set of labels able to begin a nonempty match and
// whether the set is exhaustive (false when an any-label step is reachable
// from the start state). Frontier schedulers use it with the graph's
// per-label adjacency index to skip start nodes that cannot match.
func (q *Query) StartLabels() ([]string, bool) { return q.startLabels, !q.startAny }

// AcceptsEmptyPath reports whether ε ∈ L(e), i.e. every node matches
// itself. When false, frontier pruning by StartLabels is complete.
func (q *Query) AcceptsEmptyPath() bool { return q.emptyOK }

// Parse compiles the rex concrete syntax into an RPQ.
func Parse(s string) (*Query, error) {
	e, err := rex.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("rpq: %w", err)
	}
	return New(e), nil
}

// MustParse is Parse that panics on error.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Atomic returns the atomic RPQ for label a.
func Atomic(a string) *Query { return New(rex.Lit{Label: a}) }

// Word returns the word RPQ for w = a₁…aₙ.
func Word(labels ...string) *Query { return New(rex.Word(labels...)) }

// Reachability returns the RPQ Σ*.
func Reachability() *Query { return New(rex.Reachability()) }

// Expr returns the underlying regular expression.
func (q *Query) Expr() rex.Regex { return q.expr }

// Kind returns the structural classification.
func (q *Query) Kind() Kind { return q.kind }

// AsWord returns the word and true if the query is a word RPQ.
func (q *Query) AsWord() ([]string, bool) {
	if q.word == nil {
		return nil, false
	}
	return append([]string(nil), q.word...), true
}

// String renders the query in rex syntax.
func (q *Query) String() string { return q.expr.String() }

// Eval returns e(G): all pairs of node indices connected by a path whose
// label is in L(e). The graph is frozen once and every start node runs
// through the interned snapshot kernel with shared scratch.
func (q *Query) Eval(g *datagraph.Graph) *datagraph.PairSet {
	n := g.NumNodes()
	out := datagraph.NewPairSetSized(n)
	q.EvalRange(g, 0, n, out.Add)
	return out
}

// EvalFrom returns the nodes v such that (u, v) ∈ e(G), by BFS over the
// product of G with the query NFA. When the graph is frozen it uses the
// interned snapshot kernel; it never triggers a freeze itself.
func (q *Query) EvalFrom(g *datagraph.Graph, u int) []int {
	if snap := g.Snapshot(); snap != nil {
		p := q.program(snap)
		sc := newRangeScratch(snap.NumNodes(), q.nfa.NumStates)
		var out []int
		q.evalFromSnap(p, u, sc, func(v int) { out = append(out, v) })
		return out
	}
	if q.kind == KindReachability {
		return reachableFrom(g, u)
	}
	if q.word != nil {
		return wordTargets(g, u, q.word)
	}
	return q.productFrom(g, u)
}

func (q *Query) productFrom(g *datagraph.Graph, u int) []int {
	numStates := q.nfa.NumStates
	visited := make([]bool, g.NumNodes()*numStates)
	var queue []int // encoded node*numStates+state
	push := func(node, state int) {
		id := node*numStates + state
		if !visited[id] {
			visited[id] = true
			queue = append(queue, id)
		}
	}
	for _, s := range q.nfa.Closure(q.nfa.Start) {
		push(u, s)
	}
	var result []int
	seenResult := make(map[int]struct{})
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		node, state := id/numStates, id%numStates
		if state == q.nfa.Accept {
			if _, dup := seenResult[node]; !dup {
				seenResult[node] = struct{}{}
				result = append(result, node)
			}
		}
		// Iterate the NFA steps first so concrete-label steps can use the
		// per-label adjacency index instead of scanning every out-edge.
		for _, step := range q.nfa.Steps[state] {
			if step.AnyLabel {
				for _, he := range g.Out(node) {
					for _, c := range q.nfa.Closure(step.To) {
						push(he.To, c)
					}
				}
				continue
			}
			for _, to := range g.OutEdges(node, step.Label) {
				for _, c := range q.nfa.Closure(step.To) {
					push(to, c)
				}
			}
		}
	}
	return result
}

// wordTargets walks the fixed word w level by level.
func wordTargets(g *datagraph.Graph, u int, word []string) []int {
	frontier := map[int]struct{}{u: {}}
	for _, label := range word {
		next := make(map[int]struct{})
		for node := range frontier {
			for _, to := range g.OutEdges(node, label) {
				next[to] = struct{}{}
			}
		}
		if len(next) == 0 {
			return nil
		}
		frontier = next
	}
	out := make([]int, 0, len(frontier))
	for node := range frontier {
		out = append(out, node)
	}
	return out
}

// reachableFrom returns every node reachable from u by any path (including
// u itself via the empty path, since ε ∈ Σ*).
func reachableFrom(g *datagraph.Graph, u int) []int {
	seen := make([]bool, g.NumNodes())
	seen[u] = true
	stack := []int{u}
	var out []int
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, node)
		for _, he := range g.Out(node) {
			if !seen[he.To] {
				seen[he.To] = true
				stack = append(stack, he.To)
			}
		}
	}
	return out
}

// Witness returns a path from u to v whose label is accepted by the query,
// if one exists. It is used by solution builders that must materialise the
// paths promised by mapping rules, and by tests. The returned path is
// shortest in the number of edges.
func (q *Query) Witness(g *datagraph.Graph, u, v int) (datagraph.Path, bool) {
	numStates := q.nfa.NumStates
	type prev struct {
		id    int // predecessor product-state id, -1 for roots
		label string
	}
	parents := make(map[int]prev)
	var queue []int
	push := func(node, state, from int, label string) {
		id := node*numStates + state
		if _, dup := parents[id]; !dup {
			parents[id] = prev{id: from, label: label}
			queue = append(queue, id)
		}
	}
	for _, s := range q.nfa.Closure(q.nfa.Start) {
		push(u, s, -1, "")
	}
	// BFS (queue processed in FIFO order) so the witness is shortest.
	for i := 0; i < len(queue); i++ {
		id := queue[i]
		node, state := id/numStates, id%numStates
		if node == v && state == q.nfa.Accept {
			// Every non-root parent edge corresponds to one graph edge, so
			// the chain of parents spells the path in reverse.
			var revNodes []int
			var revLabels []string
			for cur := id; ; {
				revNodes = append(revNodes, cur/numStates)
				p := parents[cur]
				if p.id == -1 {
					break
				}
				revLabels = append(revLabels, p.label)
				cur = p.id
			}
			n, m := len(revNodes), len(revLabels)
			nodes := make([]int, n)
			labels := make([]string, m)
			for i, x := range revNodes {
				nodes[n-1-i] = x
			}
			for i, l := range revLabels {
				labels[m-1-i] = l
			}
			return datagraph.Path{Nodes: nodes, Labels: labels}, true
		}
		for _, step := range q.nfa.Steps[state] {
			if step.AnyLabel {
				for _, he := range g.Out(node) {
					for _, c := range q.nfa.Closure(step.To) {
						push(he.To, c, id, he.Label)
					}
				}
				continue
			}
			for _, to := range g.OutEdges(node, step.Label) {
				for _, c := range q.nfa.Closure(step.To) {
					push(to, c, id, step.Label)
				}
			}
		}
	}
	return datagraph.Path{}, false
}
