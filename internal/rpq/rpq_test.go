package rpq

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/datagraph"
)

// social builds the running example: a small social graph.
//
//	ann -knows-> bob -knows-> carl -knows-> ann
//	ann -likes-> carl
func social(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	for _, n := range []struct {
		id, v string
	}{{"ann", "30"}, {"bob", "25"}, {"carl", "30"}} {
		g.MustAddNode(datagraph.NodeID(n.id), datagraph.V(n.v))
	}
	g.MustAddEdge("ann", "knows", "bob")
	g.MustAddEdge("bob", "knows", "carl")
	g.MustAddEdge("carl", "knows", "ann")
	g.MustAddEdge("ann", "likes", "carl")
	return g
}

func pairsAsIDs(t *testing.T, g *datagraph.Graph, s *datagraph.PairSet) [][2]string {
	t.Helper()
	var out [][2]string
	for _, p := range s.IDPairs(g) {
		out = append(out, [2]string{string(p.From.ID), string(p.To.ID)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func TestAtomicRPQ(t *testing.T) {
	g := social(t)
	got := pairsAsIDs(t, g, Atomic("likes").Eval(g))
	want := [][2]string{{"ann", "carl"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("likes(G) = %v, want %v", got, want)
	}
}

func TestWordRPQ(t *testing.T) {
	g := social(t)
	got := pairsAsIDs(t, g, Word("knows", "knows").Eval(g))
	want := [][2]string{{"ann", "carl"}, {"bob", "ann"}, {"carl", "bob"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("knows·knows(G) = %v, want %v", got, want)
	}
}

func TestRegexRPQ(t *testing.T) {
	g := social(t)
	// knows+ reaches everything on the cycle.
	q := MustParse("knows+")
	got := q.Eval(g)
	if got.Len() != 9 {
		t.Fatalf("knows+ should connect all 9 ordered pairs, got %d", got.Len())
	}
	// knows* also includes the empty path (v, v) — same 9 here since the
	// cycle already gives all pairs.
	q2 := MustParse("knows* likes")
	got2 := pairsAsIDs(t, g, q2.Eval(g))
	want := [][2]string{{"ann", "carl"}, {"bob", "carl"}, {"carl", "carl"}}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("knows* likes = %v, want %v", got2, want)
	}
}

func TestReachabilityRPQ(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("a", datagraph.V("1"))
	g.MustAddNode("b", datagraph.V("2"))
	g.MustAddNode("c", datagraph.V("3"))
	g.MustAddEdge("a", "x", "b")
	// c is isolated.
	q := Reachability()
	if q.Kind() != KindReachability {
		t.Fatalf("kind = %v", q.Kind())
	}
	got := pairsAsIDs(t, g, q.Eval(g))
	want := [][2]string{{"a", "a"}, {"a", "b"}, {"b", "b"}, {"c", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Σ* = %v, want %v", got, want)
	}
}

func TestKinds(t *testing.T) {
	cases := []struct {
		expr string
		want Kind
	}{
		{"a", KindAtomic},
		{"a b c", KindWord},
		{".*", KindReachability},
		{"a*", KindRegex},
		{"a|b", KindRegex},
		{"()", KindWord}, // empty word
	}
	for _, c := range cases {
		q := MustParse(c.expr)
		if q.Kind() != c.want {
			t.Errorf("Kind(%q) = %v, want %v", c.expr, q.Kind(), c.want)
		}
	}
	if KindAtomic.String() != "atomic" || KindWord.String() != "word" ||
		KindReachability.String() != "reachability" || KindRegex.String() != "regex" {
		t.Error("Kind.String mismatch")
	}
}

func TestAsWord(t *testing.T) {
	q := Word("a", "b")
	w, ok := q.AsWord()
	if !ok || !reflect.DeepEqual(w, []string{"a", "b"}) {
		t.Fatalf("AsWord = %v, %v", w, ok)
	}
	// Returned slice is a copy.
	w[0] = "mutated"
	w2, _ := q.AsWord()
	if w2[0] != "a" {
		t.Fatal("AsWord leaked internal state")
	}
	if _, ok := MustParse("a*").AsWord(); ok {
		t.Fatal("a* is not a word")
	}
}

func TestEvalFromMatchesEval(t *testing.T) {
	g := social(t)
	for _, expr := range []string{"knows", "knows knows", "knows+", "likes|knows", ".*", "(knows likes?)*"} {
		q := MustParse(expr)
		full := q.Eval(g)
		for u := 0; u < g.NumNodes(); u++ {
			ts := q.EvalFrom(g, u)
			sort.Ints(ts)
			var want []int
			full.Each(func(p datagraph.Pair) {
				if p.From == u {
					want = append(want, p.To)
				}
			})
			sort.Ints(want)
			if !reflect.DeepEqual(ts, want) {
				t.Errorf("expr %q from %d: EvalFrom %v vs Eval %v", expr, u, ts, want)
			}
		}
	}
}

func TestWitness(t *testing.T) {
	g := social(t)
	q := MustParse("knows+ likes")
	ai, _ := g.IndexOf("ann")
	ci, _ := g.IndexOf("carl")
	// bob -knows-> carl -knows-> ann -likes-> carl is the shortest witness
	// from bob? Check from ann to carl: ann knows bob knows carl knows ann
	// likes carl (length 4) — but also shorter via ... knows+ needs ≥1 knows.
	p, ok := q.Witness(g, ai, ci)
	if !ok {
		t.Fatal("witness must exist")
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0] != ai || p.Nodes[len(p.Nodes)-1] != ci {
		t.Fatalf("witness endpoints wrong: %v", p.Nodes)
	}
	// Label must be accepted by the expression.
	if !MustParse("knows+ likes").nfa.Matches(p.Labels) {
		t.Fatalf("witness label %v not in language", p.Labels)
	}
	// No witness when none exists.
	q2 := MustParse("likes likes")
	if _, ok := q2.Witness(g, ai, ci); ok {
		t.Fatal("likes·likes has no witness here")
	}
}

func TestWitnessShortest(t *testing.T) {
	g := datagraph.New()
	for i := 0; i < 5; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)), datagraph.V("x"))
	}
	// Long chain n0->n1->n2->n3 and shortcut n0->n3, then n3->n4.
	g.MustAddEdge("n0", "a", "n1")
	g.MustAddEdge("n1", "a", "n2")
	g.MustAddEdge("n2", "a", "n3")
	g.MustAddEdge("n0", "a", "n3")
	g.MustAddEdge("n3", "b", "n4")
	q := MustParse("a+ b")
	i0, _ := g.IndexOf("n0")
	i4, _ := g.IndexOf("n4")
	p, ok := q.Witness(g, i0, i4)
	if !ok {
		t.Fatal("no witness")
	}
	if p.Len() != 2 {
		t.Fatalf("witness not shortest: length %d (%v)", p.Len(), p.Labels)
	}
}

func TestSelfLoopAndEmptyWordQuery(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("a", datagraph.V("1"))
	g.MustAddEdge("a", "x", "a")
	// ε query returns (v, v) pairs only.
	q := Word()
	got := q.Eval(g)
	if got.Len() != 1 || !got.Has(0, 0) {
		t.Fatalf("ε(G) = %v", got.Sorted())
	}
	// x* on a self-loop: (a, a).
	q2 := MustParse("x*")
	if !q2.Eval(g).Has(0, 0) {
		t.Fatal("x* should match self loop")
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("a||"); err == nil {
		t.Fatal("bad expression must fail")
	}
}

func TestEvalOnLargerChain(t *testing.T) {
	// Chain of 100 a-edges: word of length 50 connects i to i+50.
	g := datagraph.New()
	for i := 0; i <= 100; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("c%d", i)), datagraph.V(fmt.Sprintf("%d", i)))
	}
	for i := 0; i < 100; i++ {
		g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("c%d", i)), "a", datagraph.NodeID(fmt.Sprintf("c%d", i+1)))
	}
	labels := make([]string, 50)
	for i := range labels {
		labels[i] = "a"
	}
	q := Word(labels...)
	got := q.Eval(g)
	if got.Len() != 51 {
		t.Fatalf("expected 51 pairs, got %d", got.Len())
	}
	i0, _ := g.IndexOf("c0")
	i50, _ := g.IndexOf("c50")
	if !got.Has(i0, i50) {
		t.Fatal("c0 to c50 missing")
	}
}
