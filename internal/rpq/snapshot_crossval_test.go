package rpq

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datagraph"
)

// legacyEval computes e(G) through the pre-snapshot per-start paths
// (productFrom/wordTargets/reachableFrom), which EvalFrom dispatches to on
// an unfrozen graph.
func legacyEval(t *testing.T, q *Query, g *datagraph.Graph) *datagraph.PairSet {
	t.Helper()
	c := g.Clone() // unfrozen: Snapshot() is nil, so EvalFrom takes the legacy path
	if c.Snapshot() != nil {
		t.Fatal("clone unexpectedly frozen")
	}
	out := datagraph.NewPairSet()
	for u := 0; u < c.NumNodes(); u++ {
		for _, v := range q.EvalFrom(c, u) {
			out.Add(u, v)
		}
	}
	return out
}

// TestSnapshotEvalMatchesLegacy cross-validates the interned snapshot
// kernel against the map-based evaluation paths on randomized graphs, for
// every structural query kind (atomic, word, general regex, wildcard,
// reachability) including labels absent from the graph (dead-step pruning).
func TestSnapshotEvalMatchesLegacy(t *testing.T) {
	queries := []string{
		"a",
		"a b",
		"a b a",
		"(a | b)*",
		"a* b",
		"(a b)+",
		"a?",
		". .",
		".*",
		"(a | b b)* a",
		"c",
		"a c b",
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(int64(trial), 1+rng.Intn(14), rng.Intn(40))
		n := g.NumNodes()
		for _, qs := range queries {
			q := MustParse(qs)
			got := q.Eval(g) // freezes g, snapshot kernel
			want := legacyEval(t, q, g)
			if !got.Equal(want) {
				t.Fatalf("trial %d: query %q: snapshot eval %v, legacy %v",
					trial, qs, got.Sorted(), want.Sorted())
			}
			// Per-start agreement on the frozen graph, too.
			u := rng.Intn(n)
			snapFrom := append([]int(nil), q.EvalFrom(g, u)...)
			sort.Ints(snapFrom)
			var wantFrom []int
			want.Each(func(p datagraph.Pair) {
				if p.From == u {
					wantFrom = append(wantFrom, p.To)
				}
			})
			sort.Ints(wantFrom)
			if len(snapFrom) != len(wantFrom) {
				t.Fatalf("trial %d: query %q: EvalFrom(%d) = %v, want %v", trial, qs, u, snapFrom, wantFrom)
			}
			for i := range snapFrom {
				if snapFrom[i] != wantFrom[i] {
					t.Fatalf("trial %d: query %q: EvalFrom(%d) = %v, want %v", trial, qs, u, snapFrom, wantFrom)
				}
			}
		}
	}
}
