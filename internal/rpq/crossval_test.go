package rpq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagraph"
	"repro/internal/rex"
)

// Cross-validation of the product-automaton evaluator against a naive
// bounded path enumerator on random graphs: for every pair the evaluator
// reports, the enumerator finds a matching path (soundness), and every
// enumerated matching path's pair is reported (completeness up to the
// enumeration bound).

func randomGraph(seed int64, n, e int) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)), datagraph.V(fmt.Sprintf("v%d", i%4)))
	}
	for k := 0; k < e; k++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		label := []string{"a", "b"}[rng.Intn(2)]
		g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("n%d", from)), label,
			datagraph.NodeID(fmt.Sprintf("n%d", to)))
	}
	return g
}

// enumeratePairs finds all pairs connected by a path of length ≤ maxLen
// whose label the NFA accepts.
func enumeratePairs(g *datagraph.Graph, nfa *rex.NFA, maxLen int) *datagraph.PairSet {
	out := datagraph.NewPairSet()
	var walk func(start, cur int, word []string)
	walk = func(start, cur int, word []string) {
		if nfa.Matches(word) {
			out.Add(start, cur)
		}
		if len(word) == maxLen {
			return
		}
		for _, he := range g.Out(cur) {
			walk(start, he.To, append(word, he.Label))
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		walk(u, u, nil)
	}
	return out
}

func TestEvalCrossValidation(t *testing.T) {
	exprs := []string{"a", "a b", "a|b", "a* b", "(a b)+", ".*", ". . ."}
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed, 8, 14)
		for _, expr := range exprs {
			q := MustParse(expr)
			got := q.Eval(g)
			naive := enumeratePairs(g, rex.Compile(rex.MustParse(expr)), 6)
			// Completeness w.r.t. bounded enumeration: everything the naive
			// search finds, the evaluator finds.
			if !naive.SubsetOf(got) {
				t.Fatalf("seed %d expr %q: evaluator missed pairs: naive %v vs got %v",
					seed, expr, naive.Sorted(), got.Sorted())
			}
			// Soundness: every reported pair has a witness path whose label
			// is accepted.
			ok := true
			got.Each(func(p datagraph.Pair) {
				path, found := q.Witness(g, p.From, p.To)
				if !found {
					ok = false
					return
				}
				if err := path.Validate(g); err != nil {
					ok = false
				}
			})
			if !ok {
				t.Fatalf("seed %d expr %q: unsound pair reported", seed, expr)
			}
		}
	}
}

// Word-query fast path agrees with the generic product construction.
func TestWordFastPathAgreesWithGeneric(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed, 10, 20)
		for _, word := range [][]string{{"a"}, {"a", "b"}, {"b", "b", "a"}} {
			fast := Word(word...).Eval(g)
			// Force the generic path by wrapping in a union with an
			// impossible branch (kind becomes KindRegex).
			expr := ""
			for i, l := range word {
				if i > 0 {
					expr += " "
				}
				expr += l
			}
			generic := MustParse(expr + "|zz zz zz zz")
			if generic.Kind() != KindRegex {
				t.Fatal("expected generic kind")
			}
			slow := generic.Eval(g)
			if !fast.Equal(slow) {
				t.Fatalf("seed %d word %v: fast %v vs generic %v",
					seed, word, fast.Sorted(), slow.Sorted())
			}
		}
	}
}

// Reachability fast path agrees with the star-of-wildcard regex.
func TestReachabilityFastPathAgrees(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed, 10, 18)
		fast := Reachability().Eval(g)
		slow := MustParse(".*|zz zz").Eval(g) // generic kind
		if !fast.Equal(slow) {
			t.Fatalf("seed %d: reachability fast path diverges", seed)
		}
	}
}
