package relational

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ingest"
)

// ingestGraphString loads the rows through the streaming pipeline and
// renders the relational view of the resulting graph, normalized by
// ToGraph's sorted node order.
func ingestGraphString(t *testing.T, s *ingest.Schema, rows map[string][][]string) string {
	t.Helper()
	srcs := make([]ingest.Source, 0, len(s.Tables))
	for i := range s.Tables {
		name := s.Tables[i].Name
		srcs = append(srcs, ingest.Rows(name, rows[name]))
	}
	g, _, err := ingest.Load(context.Background(), s, ingest.Options{BatchSize: 2}, srcs...)
	if err != nil {
		t.Fatalf("ingest.Load: %v", err)
	}
	norm, err := FromGraph(g).ToGraph()
	if err != nil {
		t.Fatalf("normalize ingested graph: %v", err)
	}
	return norm.String()
}

// directInstanceString renders the reference direct mapping the same way.
func directInstanceString(t *testing.T, s *ingest.Schema, rows map[string][][]string) string {
	t.Helper()
	in, err := DirectInstance(s, rows)
	if err != nil {
		t.Fatalf("DirectInstance: %v", err)
	}
	g, err := in.ToGraph()
	if err != nil {
		t.Fatalf("DirectInstance.ToGraph: %v", err)
	}
	return g.String()
}

// TestIngestPinsToDirectMapping pins internal/ingest's streaming pipeline
// to the naive relational reference implementation byte-for-byte on the
// shared Proposition 1 fixture.
func TestIngestPinsToDirectMapping(t *testing.T) {
	s, rows, err := Prop1Fixture()
	if err != nil {
		t.Fatal(err)
	}
	got := ingestGraphString(t, s, rows)
	want := directInstanceString(t, s, rows)
	if got != want {
		t.Fatalf("streaming ingest diverged from reference direct mapping:\n--- ingest\n%s--- reference\n%s", got, want)
	}
}

// TestIngestPinsToDirectMappingAtScale repeats the pin on a generated
// thousand-row slice, the cross-validation size the E18 experiment reuses.
func TestIngestPinsToDirectMappingAtScale(t *testing.T) {
	s, err := ingest.ParseSchema(`
table parent
col parent id int pk
col parent name text
table child
col child id int pk
col child parent_id int null
col child score float null
fk child parent_id parent.id
`)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][][]string{}
	for i := 1; i <= 250; i++ {
		rows["parent"] = append(rows["parent"], []string{strconv.Itoa(i), "p" + strconv.Itoa(i)})
	}
	for i := 1; i <= 750; i++ {
		pid := strconv.Itoa((i % 250) + 1)
		score := ""
		if i%3 != 0 {
			score = strconv.FormatFloat(float64(i)/8, 'g', -1, 64)
		}
		rows["child"] = append(rows["child"], []string{strconv.Itoa(i), pid, score})
	}
	got := ingestGraphString(t, s, rows)
	want := directInstanceString(t, s, rows)
	if got != want {
		t.Fatalf("streaming ingest diverged from reference direct mapping at scale")
	}
}

// TestProp1OnIngestedFixture re-runs the Proposition 1 validation with the
// source graph produced by the direct mapping instead of a hand-built
// fixture: solutions under a relational mapping over the direct-mapped
// labels must satisfy M_rel, in both encodings of the correspondence.
func TestProp1OnIngestedFixture(t *testing.T) {
	s, rows, err := Prop1Fixture()
	if err != nil {
		t.Fatal(err)
	}
	srcs := []ingest.Source{ingest.Rows("person", rows["person"]), ingest.Rows("city", rows["city"])}
	gs, _, err := ingest.Load(context.Background(), s, ingest.Options{}, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	// A relational GSM over the fixture's direct-mapped labels: mentor
	// edges become two-step advises·trusts chains, name properties carry
	// over as has-name edges.
	m := core.NewMapping(
		core.R("mentor", "advises trusts"),
		core.R("person#name", "has-name"),
	)
	mr, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := mr.Satisfied(FromGraph(gs), FromGraph(u)); !ok {
		t.Fatalf("universal solution over ingested source must satisfy M_rel: %s", why)
	}
	// And the correspondence detects damage: removing each solution edge
	// in turn, the graph view and the relational view must agree on
	// whether the mutant still solves the mapping.
	if len(u.Edges()) == 0 {
		t.Fatal("universal solution has no edges; fixture too weak")
	}
	ds := FromGraph(gs)
	for _, victim := range u.Edges() {
		mutant := datagraph.New()
		for _, n := range u.Nodes() {
			mutant.MustAddNode(n.ID, n.Value)
		}
		for _, e := range u.Edges() {
			if e == victim {
				continue
			}
			mutant.MustAddEdge(e.From, e.Label, e.To)
		}
		graphView := m.Satisfies(gs, mutant)
		relView, _ := mr.Satisfied(ds, FromGraph(mutant))
		if graphView != relView {
			t.Errorf("edge %v removed: graph view %v, relational view %v", victim, graphView, relView)
		}
	}
}
