package relational

import (
	"fmt"

	"repro/internal/datagraph"
	"repro/internal/ingest"
)

// Bridge to internal/ingest: the bulk-ingestion subsystem streams the
// Boudaoud-style direct mapping into a datagraph.Graph; this file gives
// the same mapping a reference implementation at the relational level —
// rows straight into an Instance's N and E_a relations, no pipeline, no
// batching — so tests can pin the two against each other byte-for-byte
// (via each side's D_G), and so Proposition 1 fixtures can be stated as
// relational data instead of hand-built graphs.

// DirectInstance applies the direct mapping to relational rows (canonical
// cells aligned to each table's declared columns, "" meaning NULL — the
// convention shared with ingest fixtures), producing the relational view
// D_G of the mapped graph directly:
//
//   - row with key k in table T      → N(T:k, k)
//   - property column c with value v → N(T:k:c, v) and E_{T#c}(T:k, T:k:c)
//   - NULL property cell             → N(T:k:c, null)
//   - foreign key to S(pk) = v       → E_label(T:k, S:v); NULL emits nothing
//
// It is deliberately the naive O(rows) two-pass construction: correctness
// reference, not a competitor to the streaming pipeline.
func DirectInstance(s *ingest.Schema, rows map[string][][]string) (*Instance, error) {
	in := NewInstance()
	for ti := range s.Tables {
		t := &s.Tables[ti]
		pki := t.PKIndex()
		for ri, row := range rows[t.Name] {
			if len(row) != len(t.Columns) {
				return nil, fmt.Errorf("relational: table %s row %d: %d cells, want %d",
					t.Name, ri+1, len(row), len(t.Columns))
			}
			key := fmt.Sprintf("%d", ri+1)
			if pki >= 0 {
				k, err := ingest.Coerce(t.Columns[pki].Type, row[pki])
				if err != nil {
					return nil, fmt.Errorf("relational: table %s row %d: %v", t.Name, ri+1, err)
				}
				key = k
			}
			rowID := t.Name + ":" + key
			in.AddNode(rowID, datagraph.V(key))
			for ci := range t.Columns {
				if ci == pki {
					continue
				}
				c := &t.Columns[ci]
				if fk, ok := foreignKeyOn(t, c.Name); ok {
					if row[ci] == "" {
						continue
					}
					refKey, err := ingest.Coerce(c.Type, row[ci])
					if err != nil {
						return nil, fmt.Errorf("relational: table %s row %d: %v", t.Name, ri+1, err)
					}
					in.AddEdge(rowID, t.RefLabel(fk), fk.RefTable+":"+refKey)
					continue
				}
				cellID := rowID + ":" + c.Name
				if row[ci] == "" {
					in.AddNode(cellID, datagraph.Null())
				} else {
					v, err := ingest.Coerce(c.Type, row[ci])
					if err != nil {
						return nil, fmt.Errorf("relational: table %s row %d: %v", t.Name, ri+1, err)
					}
					in.AddNode(cellID, datagraph.V(v))
				}
				in.AddEdge(rowID, t.EdgeLabel(c.Name), cellID)
			}
		}
	}
	return in, nil
}

// foreignKeyOn resolves the foreign key declared on a column, if any.
func foreignKeyOn(t *ingest.Table, col string) (*ingest.ForeignKey, bool) {
	for i := range t.FKs {
		if t.FKs[i].Column == col {
			return &t.FKs[i], true
		}
	}
	return nil, false
}

// Prop1Fixture is the Proposition 1 fixture re-expressed as relational
// data on the ingest schema model: a two-table source whose direct
// mapping yields the source graph, plus per-table rows. The companion
// mapping over the direct-mapped labels lives in the tests.
func Prop1Fixture() (*ingest.Schema, map[string][][]string, error) {
	s, err := ingest.ParseSchema(`
table person
col person id int pk
col person name text
col person mentor_id int null
fk person mentor_id person.id label=mentor
table city
col city id int pk
col city name text
`)
	if err != nil {
		return nil, nil, err
	}
	rows := map[string][][]string{
		"person": {
			{"1", "ada", "2"},
			{"2", "erwin", "3"},
			{"3", "grace", ""},
		},
		"city": {
			{"10", "paris"},
			{"11", "turing-town"},
		},
	}
	return s, rows, nil
}
