// Package relational implements the relational representation of data
// graphs and the relational encoding M_rel of relational graph schema
// mappings (Section 6, Proposition 1 of Francis & Libkin PODS'17).
//
// A data graph G over Σ is represented as a relational database D_G with a
// binary relation N (node id, data value) and a binary relation E_a (source
// id, target id) for each a ∈ Σ. The encoding M_rel of a relational GSM M
// consists of:
//
//   - for each rule (q, w) with w = a₁…aₙ, the st-tgd
//     ∀x,y q(x,y) → ∃x₁…xₙ₋₁ E^t_a₁(x,x₁) ∧ … ∧ E^t_aₙ(xₙ₋₁,y);
//   - membership tgds moving every node mentioned in a source-query answer
//     into N^t with its data value;
//   - the key constraint on N^t (each node id has one data value);
//   - target tgds requiring every edge endpoint to appear in N^t.
//
// Proposition 1 states that solutions for D_Gs under M_rel are exactly the
// D_Gt for solutions Gt of Gs under M; the package exposes both directions
// so tests can validate the correspondence.
package relational

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/rpq"
)

// nullMarker encodes the SQL null value in relational tuples.
const nullMarker = "\x00null"

// Tuple is a binary tuple.
type Tuple struct{ A, B string }

// Instance is a relational instance over the node relation N and the edge
// relations E_a.
type Instance struct {
	// N holds (node id, data value) tuples.
	N map[Tuple]struct{}
	// E maps each label a to its E_a relation of (from id, to id) tuples.
	E map[string]map[Tuple]struct{}
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{N: make(map[Tuple]struct{}), E: make(map[string]map[Tuple]struct{})}
}

// AddNode inserts an N tuple.
func (in *Instance) AddNode(id string, v datagraph.Value) {
	val := nullMarker
	if !v.IsNull() {
		val = v.Raw()
	}
	in.N[Tuple{id, val}] = struct{}{}
}

// AddEdge inserts an E_a tuple.
func (in *Instance) AddEdge(from, label, to string) {
	rel, ok := in.E[label]
	if !ok {
		rel = make(map[Tuple]struct{})
		in.E[label] = rel
	}
	rel[Tuple{from, to}] = struct{}{}
}

// FromGraph builds D_G.
func FromGraph(g *datagraph.Graph) *Instance {
	in := NewInstance()
	for _, n := range g.Nodes() {
		in.AddNode(string(n.ID), n.Value)
	}
	for _, e := range g.Edges() {
		in.AddEdge(string(e.From), e.Label, string(e.To))
	}
	return in
}

// ToGraph decodes the instance back into a data graph. It fails if the key
// constraint is violated (some id with two values) or an edge endpoint is
// not in N.
func (in *Instance) ToGraph() (*datagraph.Graph, error) {
	if id, ok := in.KeyViolation(); ok {
		return nil, fmt.Errorf("relational: key violation on node id %q", id)
	}
	g := datagraph.New()
	ids := make([]Tuple, 0, len(in.N))
	for t := range in.N {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].A < ids[j].A })
	for _, t := range ids {
		v := datagraph.V(t.B)
		if t.B == nullMarker {
			v = datagraph.Null()
		}
		g.MustAddNode(datagraph.NodeID(t.A), v)
	}
	for label, rel := range in.E {
		for t := range rel {
			if err := g.AddEdge(datagraph.NodeID(t.A), label, datagraph.NodeID(t.B)); err != nil {
				return nil, fmt.Errorf("relational: dangling edge tuple %v: %v", t, err)
			}
		}
	}
	return g, nil
}

// KeyViolation reports an id bound to two different values, if any — the
// key constraint ∀x,y,y′ (N(x,y) ∧ N(x,y′) → y = y′).
func (in *Instance) KeyViolation() (string, bool) {
	seen := make(map[string]string)
	for t := range in.N {
		if prev, ok := seen[t.A]; ok && prev != t.B {
			return t.A, true
		}
		seen[t.A] = t.B
	}
	return "", false
}

// DanglingEdge reports an edge endpoint missing from N, if any — the target
// tgds ∀x,y E_a(x,y) → ∃z,z′ N(x,z) ∧ N(y,z′).
func (in *Instance) DanglingEdge() (string, bool) {
	ids := make(map[string]struct{})
	for t := range in.N {
		ids[t.A] = struct{}{}
	}
	for label, rel := range in.E {
		for t := range rel {
			if _, ok := ids[t.A]; !ok {
				return fmt.Sprintf("E_%s%v: %s", label, t, t.A), true
			}
			if _, ok := ids[t.B]; !ok {
				return fmt.Sprintf("E_%s%v: %s", label, t, t.B), true
			}
		}
	}
	return "", false
}

// STTgd is a source-to-target tgd ∀x,y q(x,y) → q_w(x,y) of M_rel.
type STTgd struct {
	// Source is the (possibly non-conjunctive) source query q.
	Source *rpq.Query
	// Word is the target word w = a₁…aₙ; q_w is its conjunctive chain query.
	Word []string
}

func (t STTgd) String() string {
	return fmt.Sprintf("∀x,y %s(x,y) → q_{%s}(x,y)", t.Source, strings.Join(t.Word, "·"))
}

// Mrel is the relational encoding of a relational GSM.
type Mrel struct {
	Tgds []STTgd
}

// Encode builds M_rel from a relational GSM; it errors on non-relational
// mappings.
func Encode(m *core.Mapping) (*Mrel, error) {
	if !m.IsRelational() {
		return nil, fmt.Errorf("relational: mapping is not relational")
	}
	out := &Mrel{}
	for _, r := range m.Rules {
		w, _ := r.Target.AsWord()
		out.Tgds = append(out.Tgds, STTgd{Source: r.Source, Word: w})
	}
	return out, nil
}

// chainReach computes, relationally, the ids reachable from `from` through
// the conjunctive chain query q_w over the E_a relations of dt (a join
// pipeline over tuples).
func chainReach(dt *Instance, from string, word []string) map[string]struct{} {
	frontier := map[string]struct{}{from: {}}
	for _, label := range word {
		rel := dt.E[label]
		next := make(map[string]struct{})
		for t := range rel {
			if _, ok := frontier[t.A]; ok {
				next[t.B] = struct{}{}
			}
		}
		if len(next) == 0 {
			return nil
		}
		frontier = next
	}
	return frontier
}

// Satisfied checks (D_Gs, D_Gt) ⊨ M_rel: the st-tgds, the membership tgds,
// the key constraint and the target tgds. It returns an explanation of the
// first violation.
func (mr *Mrel) Satisfied(ds, dt *Instance) (bool, string) {
	if id, bad := dt.KeyViolation(); bad {
		return false, fmt.Sprintf("key constraint violated on %q", id)
	}
	if where, bad := dt.DanglingEdge(); bad {
		return false, fmt.Sprintf("target tgd violated at %s", where)
	}
	// Decode the source to evaluate RPQs; the source instance is assumed
	// consistent (it encodes an actual data graph).
	gs, err := ds.ToGraph()
	if err != nil {
		return false, fmt.Sprintf("source instance malformed: %v", err)
	}
	nodeValue := func(in *Instance, id string) (string, bool) {
		for t := range in.N {
			if t.A == id {
				return t.B, true
			}
		}
		return "", false
	}
	for _, tgd := range mr.Tgds {
		pairs := tgd.Source.Eval(gs)
		for _, p := range pairs.Sorted() {
			x := gs.Node(p.From)
			y := gs.Node(p.To)
			// Membership tgds: both nodes must be in N^t with their values.
			for _, n := range []datagraph.Node{x, y} {
				val := nullMarker
				if !n.Value.IsNull() {
					val = n.Value.Raw()
				}
				got, ok := nodeValue(dt, string(n.ID))
				if !ok {
					return false, fmt.Sprintf("%s: node %s missing from N^t", tgd, n.ID)
				}
				if got != val {
					return false, fmt.Sprintf("%s: node %s has value %q in N^t, want %q", tgd, n.ID, got, val)
				}
			}
			// The chain query itself.
			if len(tgd.Word) == 0 {
				if x.ID != y.ID {
					return false, fmt.Sprintf("%s: ε demands %s = %s", tgd, x.ID, y.ID)
				}
				continue
			}
			reach := chainReach(dt, string(x.ID), tgd.Word)
			if _, ok := reach[string(y.ID)]; !ok {
				return false, fmt.Sprintf("%s: no %v-chain from %s to %s", tgd, tgd.Word, x.ID, y.ID)
			}
		}
	}
	return true, ""
}
