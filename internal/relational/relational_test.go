package relational

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
)

func sample(t *testing.T) (*datagraph.Graph, *core.Mapping) {
	t.Helper()
	gs := datagraph.New()
	gs.MustAddNode("a", datagraph.V("1"))
	gs.MustAddNode("b", datagraph.V("2"))
	gs.MustAddNode("c", datagraph.V("3"))
	gs.MustAddEdge("a", "e", "b")
	gs.MustAddEdge("b", "e", "c")
	gs.MustAddEdge("a", "f", "c")
	m := core.NewMapping(core.R("e", "p q"), core.R("f", "r"))
	return gs, m
}

func TestRoundTripGraphInstance(t *testing.T) {
	gs, _ := sample(t)
	gs.MustAddNode("nullnode", datagraph.Null())
	gs.MustAddEdge("a", "g", "nullnode")
	in := FromGraph(gs)
	back, err := in.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != gs.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", gs, back)
	}
}

func TestKeyViolation(t *testing.T) {
	in := NewInstance()
	in.AddNode("x", datagraph.V("1"))
	in.AddNode("x", datagraph.V("2"))
	if _, bad := in.KeyViolation(); !bad {
		t.Fatal("duplicate id with two values must violate the key")
	}
	if _, err := in.ToGraph(); err == nil {
		t.Fatal("ToGraph must reject key violations")
	}
}

func TestDanglingEdge(t *testing.T) {
	in := NewInstance()
	in.AddNode("x", datagraph.V("1"))
	in.AddEdge("x", "a", "ghost")
	if _, bad := in.DanglingEdge(); !bad {
		t.Fatal("edge to undeclared node must be flagged")
	}
	if _, err := in.ToGraph(); err == nil {
		t.Fatal("ToGraph must reject dangling edges")
	}
}

func TestEncodeRequiresRelational(t *testing.T) {
	m := core.NewMapping(core.R("a", ".*"))
	if _, err := Encode(m); err == nil {
		t.Fatal("reachability target is not relational")
	}
}

// Proposition 1, direction 1: if Gt is a solution for Gs under M, then
// (D_Gs, D_Gt) satisfies M_rel.
func TestProp1SolutionsSatisfyMrel(t *testing.T) {
	gs, m := sample(t)
	mr, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	li, err := core.LeastInformativeSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	for name, sol := range map[string]*datagraph.Graph{"universal": u, "least-informative": li} {
		if ok, why := mr.Satisfied(FromGraph(gs), FromGraph(sol)); !ok {
			t.Errorf("%s solution should satisfy M_rel: %s", name, why)
		}
	}
}

// Proposition 1, direction 2: if (D_Gs, D_Gt) satisfies M_rel then the
// decoded Gt is a solution under M — checked on mutations of a valid
// solution.
func TestProp1ViolationsAgree(t *testing.T) {
	gs, m := sample(t)
	mr, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		t.Fatal(err)
	}
	ds := FromGraph(gs)

	// Remove each edge of the solution in turn; both views must agree on
	// whether the mutant is still a solution.
	for _, victim := range u.Edges() {
		mutant := datagraph.New()
		for _, n := range u.Nodes() {
			mutant.MustAddNode(n.ID, n.Value)
		}
		for _, e := range u.Edges() {
			if e == victim {
				continue
			}
			mutant.MustAddEdge(e.From, e.Label, e.To)
		}
		graphView := m.Satisfies(gs, mutant)
		relView, _ := mr.Satisfied(ds, FromGraph(mutant))
		if graphView != relView {
			t.Errorf("edge %v removed: graph view %v, relational view %v", victim, graphView, relView)
		}
	}
	// Remove a dom node's value (change it): both views must reject.
	mutant := u.Specialize(map[datagraph.NodeID]datagraph.Value{"a": datagraph.V("999")})
	if m.Satisfies(gs, mutant) {
		t.Fatal("graph view must reject changed dom value")
	}
	if ok, _ := mr.Satisfied(ds, FromGraph(mutant)); ok {
		t.Fatal("relational view must reject changed dom value")
	}
}

func TestMrelEpsilonTgd(t *testing.T) {
	gs := datagraph.New()
	gs.MustAddNode("x", datagraph.V("1"))
	gs.MustAddNode("y", datagraph.V("2"))
	gs.MustAddEdge("x", "a", "y")
	m := core.NewMapping(core.R("a", "()"))
	mr, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Any target fails: the ε tgd demands x = y.
	gt := gs.Clone()
	if ok, _ := mr.Satisfied(FromGraph(gs), FromGraph(gt)); ok {
		t.Fatal("ε tgd over distinct nodes must fail")
	}
}

func TestChainReachJoins(t *testing.T) {
	// A genuine relational join: chain p·q over tuples.
	dt := NewInstance()
	for i := 0; i < 4; i++ {
		dt.AddNode(fmt.Sprintf("n%d", i), datagraph.V(fmt.Sprintf("%d", i)))
	}
	dt.AddEdge("n0", "p", "n1")
	dt.AddEdge("n1", "q", "n2")
	dt.AddEdge("n1", "q", "n3")
	got := chainReach(dt, "n0", []string{"p", "q"})
	if len(got) != 2 {
		t.Fatalf("reach = %v", got)
	}
	if _, ok := got["n2"]; !ok {
		t.Fatal("n2 missing")
	}
	if chainReach(dt, "n0", []string{"q"}) != nil {
		t.Fatal("no q-edge from n0")
	}
}

func TestSTTgdString(t *testing.T) {
	_, m := sample(t)
	mr, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Tgds) != 2 || mr.Tgds[0].String() == "" {
		t.Fatalf("tgds = %v", mr.Tgds)
	}
}
