package threecol

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
)

func triangle() Graph { return Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}} }

func k4() Graph {
	return Graph{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}}
}

func TestValidate(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Graph{N: 2, Edges: [][2]int{{0, 5}}}).Validate(); err == nil {
		t.Fatal("out-of-range edge must be rejected")
	}
	if err := (Graph{N: 2, Edges: [][2]int{{1, 1}}}).Validate(); err == nil {
		t.Fatal("self-loop must be rejected")
	}
}

func TestBruteForceOracle(t *testing.T) {
	if !ThreeColorable(triangle()) {
		t.Fatal("triangle is 3-colourable")
	}
	if ThreeColorable(k4()) {
		t.Fatal("K4 is not 3-colourable")
	}
	// 5-cycle is 3-colourable; 5-cycle plus a universal vertex (wheel W5)
	// is not.
	c5 := Graph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}}
	if !ThreeColorable(c5) {
		t.Fatal("C5 is 3-colourable")
	}
	w5 := Graph{N: 6, Edges: append(append([][2]int{}, c5.Edges...),
		[2]int{5, 0}, [2]int{5, 1}, [2]int{5, 2}, [2]int{5, 3}, [2]int{5, 4})}
	if ThreeColorable(w5) {
		t.Fatal("W5 (odd wheel) is not 3-colourable")
	}
	if !ThreeColorable(Graph{N: 0}) {
		t.Fatal("empty graph is trivially colourable")
	}
}

func TestReductionArtefacts(t *testing.T) {
	red, err := Reduce(triangle())
	if err != nil {
		t.Fatal(err)
	}
	if !red.Mapping.IsLAV() {
		t.Fatal("Proposition 3 mapping must be LAV")
	}
	if !red.Mapping.IsRelational() {
		t.Fatal("Proposition 3 mapping must be relational")
	}
	// The query uses exactly three inequalities, matching the paper.
	if got := ree.CountNeq(red.Query.Expr()); got != 3 {
		t.Fatalf("query has %d inequalities, want 3", got)
	}
	if ree.IsEqualityOnly(red.Query.Expr()) {
		t.Fatal("query should not be equality-only")
	}
}

func TestProperColouringSolutionAvoidsQuery(t *testing.T) {
	red, err := Reduce(triangle())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ProperColouringSolution(triangle())
	if err != nil {
		t.Fatal(err)
	}
	// It is a genuine solution of the mapping…
	if ok, why := red.Mapping.Check(red.Source, sol); !ok {
		t.Fatalf("colouring solution must satisfy the mapping: %s", why)
	}
	// …and it avoids the error query for the asked pair.
	res := red.Query.Eval(sol, datagraph.MarkedNulls)
	fi, _ := sol.IndexOf(red.From)
	ti, _ := sol.IndexOf(red.To)
	if res.Has(fi, ti) {
		t.Fatal("proper colouring solution must avoid the error query")
	}
	// Non-3-colourable input: no colouring solution exists.
	if _, err := ProperColouringSolution(k4()); err == nil {
		t.Fatal("K4 has no proper colouring solution")
	}
}

func TestReductionAgreesWithOracleSmall(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
	}{
		{"triangle", triangle()},
		{"K4", k4()},
		{"path3", Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}},
		{"single", Graph{N: 1}},
	}
	for _, c := range cases {
		certain, err := CertainNon3Colorable(c.g, core.ExactOptions{MaxNulls: c.g.N + 1})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want := !ThreeColorable(c.g)
		if certain != want {
			t.Errorf("%s: certain=%v, non-3-colourable=%v", c.name, certain, want)
		}
	}
}

func TestReductionAgreesWithOracleRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("random cross-validation skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3) // 3..5 vertices
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.7 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := Graph{N: n, Edges: edges}
		certain, err := CertainNon3Colorable(g, core.ExactOptions{MaxNulls: n + 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := !ThreeColorable(g)
		if certain != want {
			t.Errorf("trial %d (%v): certain=%v, non-3-colourable=%v", trial, g, certain, want)
		}
	}
}

// SQL nulls cannot decide coNP-hard instances: the underapproximation
// reports "not certain" even for K4 (the complexity-gap behaviour the paper
// predicts in Remark 1).
func TestSQLNullsMissHardInstances(t *testing.T) {
	red, err := Reduce(k4())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := core.CertainNull(red.Mapping, red.Source, red.Query)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Has(red.From, red.To) {
		t.Fatal("SQL-null approximation should miss the K4 certain answer")
	}
}
