// Package threecol implements the Proposition 3 reduction: certain-answer
// computation for data path queries under LAV relational graph schema
// mappings is coNP-hard, by reduction from (non-)3-colorability.
//
// The paper omits the proof ("a direct reduction ... with some
// technicalities"); this package reconstructs one (documented in DESIGN.md
// §2) and cross-validates it against a brute-force colouring oracle:
//
//   - Source graph: a hub node `start` with a v-edge to a vertex node x_u
//     per vertex, a c-self-loop on each x_u, symmetric e-edges for the
//     input edges, an f-edge from each x_u to `fin`, and a palette 4-cycle
//     start →p P₁ →p P₂ →p P₃ →p start carrying three distinct palette
//     values.
//
//   - Mapping (LAV relational): copy rules for v, e, f, p and the rule
//     (c, c·c), whose universal solution materialises a fresh null "colour"
//     node n_u on a c·c detour at every vertex.
//
//   - Query Q (an equality RPQ with exactly one equality and three
//     inequalities — the paper's inequality count):
//
//     Q₁ = v c (c e c)= c f            (two adjacent equal colours)
//     Q₂ = p (p (p (p v c)≠)≠)≠ c f    (a colour outside the palette)
//
//     (start, fin) is a certain answer of Q₁+Q₂ iff the input graph is NOT
//     3-colourable: a proper colouring yields a solution avoiding both
//     error patterns, and conversely any error-free solution restricted to
//     the detour colours reads off a proper 3-colouring.
package threecol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// Validate checks vertex indices.
func (g Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("threecol: negative vertex count")
	}
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return fmt.Errorf("threecol: edge %v out of range", e)
		}
		if e[0] == e[1] {
			return fmt.Errorf("threecol: self-loop %v (never 3-colourable input convention)", e)
		}
	}
	return nil
}

// ThreeColorable decides 3-colourability by exhaustive search with symmetry
// breaking on the first vertex; the brute-force oracle for the reduction
// tests.
func ThreeColorable(g Graph) bool {
	if err := g.Validate(); err != nil {
		return false
	}
	if g.N == 0 {
		return true
	}
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N {
			return true
		}
		maxC := 3
		if v == 0 {
			maxC = 1 // symmetry breaking
		}
		for c := 0; c < maxC; c++ {
			ok := true
			for _, w := range adj[v] {
				if colors[w] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	return rec(0)
}

// Reduction bundles the Proposition 3 artefacts.
type Reduction struct {
	Input   Graph
	Source  *datagraph.Graph
	Mapping *core.Mapping
	Query   *ree.Query
	From    datagraph.NodeID // start
	To      datagraph.NodeID // fin
}

// VertexID returns the source node id of vertex u.
func VertexID(u int) datagraph.NodeID {
	return datagraph.NodeID(fmt.Sprintf("x%d", u))
}

// Reduce builds the Proposition 3 reduction for the input graph.
func Reduce(g Graph) (*Reduction, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	src := datagraph.New()
	src.MustAddNode("start", datagraph.V("hub"))
	src.MustAddNode("fin", datagraph.V("final"))
	src.MustAddNode("P1", datagraph.V("k1"))
	src.MustAddNode("P2", datagraph.V("k2"))
	src.MustAddNode("P3", datagraph.V("k3"))
	src.MustAddEdge("start", "p", "P1")
	src.MustAddEdge("P1", "p", "P2")
	src.MustAddEdge("P2", "p", "P3")
	src.MustAddEdge("P3", "p", "start")
	for u := 0; u < g.N; u++ {
		id := VertexID(u)
		src.MustAddNode(id, datagraph.V(fmt.Sprintf("vert%d", u)))
		src.MustAddEdge("start", "v", id)
		src.MustAddEdge(id, "c", id)
		src.MustAddEdge(id, "f", "fin")
	}
	for _, e := range g.Edges {
		src.MustAddEdge(VertexID(e[0]), "e", VertexID(e[1]))
		src.MustAddEdge(VertexID(e[1]), "e", VertexID(e[0]))
	}
	m := core.NewMapping(
		core.R("v", "v"),
		core.R("e", "e"),
		core.R("f", "f"),
		core.R("p", "p"),
		core.R("c", "c c"),
	)
	q := ree.MustParseQuery("v c (c e c)= c f | p (p (p (p v c)!=)!=)!= c f")
	return &Reduction{Input: g, Source: src, Mapping: m, Query: q, From: "start", To: "fin"}, nil
}

// CertainNon3Colorable runs the exact certain-answer oracle on the
// reduction: it returns true iff (start, fin) is a certain answer, which by
// Proposition 3 holds iff the input is not 3-colourable. Exponential in the
// number of vertices (one null per vertex), as coNP-hardness demands.
func CertainNon3Colorable(g Graph, opts core.ExactOptions) (bool, error) {
	red, err := Reduce(g)
	if err != nil {
		return false, err
	}
	if opts.MaxNulls == 0 {
		opts.MaxNulls = g.N
	}
	return core.CertainExactPair(red.Mapping, red.Source, red.Query, red.From, red.To, opts)
}

// ProperColouringSolution builds the adversary's solution for a 3-colourable
// graph: the universal solution with each colour null set to the palette
// value of the vertex's colour. It returns an error if the graph is not
// 3-colourable. Used in tests to exhibit the counterexample solution
// explicitly.
func ProperColouringSolution(g Graph) (*datagraph.Graph, error) {
	red, err := Reduce(g)
	if err != nil {
		return nil, err
	}
	colors, ok := colouring(g)
	if !ok {
		return nil, fmt.Errorf("threecol: graph is not 3-colourable")
	}
	u, err := core.UniversalSolution(red.Mapping, red.Source)
	if err != nil {
		return nil, err
	}
	palette := []datagraph.Value{datagraph.V("k1"), datagraph.V("k2"), datagraph.V("k3")}
	// Null n_u sits on the c·c detour of vertex u: find it via the c-edge
	// out of x_u.
	assign := make(map[datagraph.NodeID]datagraph.Value)
	for v := 0; v < g.N; v++ {
		xi, _ := u.IndexOf(VertexID(v))
		for _, to := range u.OutEdges(xi, "c") {
			if u.Node(to).IsNullNode() {
				assign[u.Node(to).ID] = palette[colors[v]]
			}
		}
	}
	return u.Specialize(assign), nil
}

func colouring(g Graph) ([]int, bool) {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			for _, w := range adj[v] {
				if colors[w] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return colors, true
}
