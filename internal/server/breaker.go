package server

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// errDegraded marks requests refused by an open circuit breaker: the
// backend they address has failed repeatedly and is cooling down. Mapped
// to 503 degraded with a Retry-After of the remaining cooldown.
var errDegraded = errors.New("backend degraded")

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-backend circuit breaker. Consecutive backend failures
// (panics, internal errors — never client errors like bad options or
// budget overruns) open it; while open, the backend's requests are refused
// immediately with errDegraded instead of hitting the failing
// materialization again. After the cooldown one probe request is let
// through (half-open): success closes the breaker, failure re-opens it for
// another cooldown. The zero value is unusable — configure with init.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     breakerState
	fails     int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	probing   bool      // a half-open probe is in flight
}

func (b *breaker) init(threshold int, cooldown time.Duration) {
	b.threshold = threshold
	b.cooldown = cooldown
}

// allow gates one request. It returns nil to admit (closed, or the single
// half-open probe) or an errDegraded wrap carrying the remaining cooldown.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		remaining := b.cooldown - time.Since(b.openedAt)
		if remaining > 0 {
			return retryAfter(fmt.Errorf("%w: circuit open for %s more", errDegraded, remaining.Round(time.Millisecond)), remaining)
		}
		// Cooldown over: this request becomes the half-open probe.
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return retryAfter(fmt.Errorf("%w: probe in flight", errDegraded), b.cooldown)
		}
		b.probing = true
		return nil
	}
}

// onSuccess records a successful backend call: the probe (or any closed
// success) resets the failure streak and closes the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.state = breakerClosed
}

// onSkip releases a half-open probe slot without judging backend health —
// the request turned out to be a caller mistake and never exercised the
// backend.
func (b *breaker) onSkip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// onFailure records a backend failure. A failed half-open probe re-opens
// immediately; in the closed state the breaker opens once the consecutive
// failure count reaches the threshold.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
	default:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.fails = 0
		}
	}
}

// status reports the state name for /v1/stats and session info.
func (b *breaker) status() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// retryAfterError decorates an error with a client backoff hint; writeError
// surfaces it as a Retry-After header.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// retryAfter wraps err with a Retry-After hint, minimum one second (the
// header has whole-second resolution and 0 reads as "retry immediately",
// defeating the backoff).
func retryAfter(err error, d time.Duration) error {
	if d < time.Second {
		d = time.Second
	}
	return &retryAfterError{err: err, after: d}
}

// retryAfterSeconds extracts the backoff hint, 0 when none is attached.
func retryAfterSeconds(err error) int {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return int((ra.after + time.Second - 1) / time.Second)
	}
	return 0
}
