package server

import (
	"errors"
	"net/http"

	"repro"
	"repro/internal/fault"
	"repro/internal/ingest"
)

// This file is the wire schema of the gsmd HTTP/JSON API, single-sourced so
// the server handlers, the gsmload client and the cross-validation tests
// marshal exactly the same bytes. docs/SERVER.md documents every type here.

// Node is the wire form of a graph node: the id plus either its data value
// or the SQL-null marker. Marshaling is canonical: a null node always
// serializes as {"id":...,"null":true} with no value field.
type Node struct {
	ID    string `json:"id"`
	Value string `json:"value,omitempty"`
	Null  bool   `json:"null,omitempty"`
}

// Answer is one certain-answer pair on the wire.
type Answer struct {
	From Node `json:"from"`
	To   Node `json:"to"`
}

func nodeWire(n repro.Node) Node {
	if n.Value.IsNull() {
		return Node{ID: string(n.ID), Null: true}
	}
	return Node{ID: string(n.ID), Value: n.Value.Raw()}
}

// AnswersWire converts an answer set to its canonical wire form: sorted by
// (from, to) id, exactly the order and encoding the query endpoints emit.
// gsmload -verify re-marshals both sides with this to compare server
// responses byte-for-byte against the embedded session path.
func AnswersWire(ans *repro.Answers) []Answer {
	sorted := ans.Sorted()
	out := make([]Answer, len(sorted))
	for i, a := range sorted {
		out[i] = Answer{From: nodeWire(a.From), To: nodeWire(a.To)}
	}
	return out
}

// ErrorBody is the JSON body of every non-2xx response: a human-readable
// message plus a stable machine-readable kind (the typed-sentinel name).
type ErrorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// MappingInfo describes a registered mapping.
type MappingInfo struct {
	Name       string `json:"name"`
	Rules      int    `json:"rules"`
	LAV        bool   `json:"lav"`
	GAV        bool   `json:"gav"`
	Relational bool   `json:"relational"`
}

// GraphInfo describes a registered source graph.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

// RegisterMappingRequest is the body of POST /v1/mappings. Text is the
// line-based mapping format ("rule <src> -> <tgt>" lines).
type RegisterMappingRequest struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// RegisterGraphRequest is the body of POST /v1/graphs. Text is the
// line-based graph format ("node <id> <value>" / "edge <from> <label> <to>"
// lines).
type RegisterGraphRequest struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// SessionOptions selects the session budgets and evaluation parameters;
// zero fields keep the server defaults. They map one-to-one onto the facade
// options (repro.WithWorkers, ...); invalid values are ErrBadOptions → 400.
type SessionOptions struct {
	Workers       int `json:"workers,omitempty"`
	ChunkSize     int `json:"chunk_size,omitempty"`
	MaxNulls      int `json:"max_nulls,omitempty"`
	MaxExpansions int `json:"max_expansions,omitempty"`
	MaxChoices    int `json:"max_choices,omitempty"`
	// TimeoutMS bounds every call run under these options; it composes
	// with (and is capped by) the per-request timeout and the server's
	// default timeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

func (o SessionOptions) isZero() bool { return o == SessionOptions{} }

// options lowers the wire options onto facade options. Validation happens
// in the facade (ErrBadOptions), not here.
func (o SessionOptions) options() []repro.Option {
	var opts []repro.Option
	if o.Workers != 0 {
		opts = append(opts, repro.WithWorkers(o.Workers))
	}
	if o.ChunkSize != 0 {
		opts = append(opts, repro.WithChunkSize(o.ChunkSize))
	}
	if o.MaxNulls != 0 {
		opts = append(opts, repro.WithMaxNulls(o.MaxNulls))
	}
	if o.MaxExpansions != 0 {
		opts = append(opts, repro.WithMaxExpansions(o.MaxExpansions))
	}
	if o.MaxChoices != 0 {
		opts = append(opts, repro.WithMaxChoices(o.MaxChoices))
	}
	if o.TimeoutMS != 0 {
		opts = append(opts, repro.WithTimeout(millis(o.TimeoutMS)))
	}
	return opts
}

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	Mapping string         `json:"mapping"`
	Graph   string         `json:"graph"`
	Options SessionOptions `json:"options"`
}

// SessionInfo describes an open session.
type SessionInfo struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Mapping string `json:"mapping"`
	Graph   string `json:"graph"`
	// Queries and Answers count the calls served and answers returned so
	// far.
	Queries  uint64 `json:"queries"`
	Answers  uint64 `json:"answers"`
	Prepared int    `json:"prepared"`
	// SharedSolution reports whether this session rides an already-warm
	// materialization shared with other sessions on the same (mapping,
	// graph) pair.
	SharedSolution bool `json:"shared_solution"`
}

// PrepareRequest is the body of POST /v1/sessions/{id}/prepare.
type PrepareRequest struct {
	Query string `json:"query"`
	Lang  string `json:"lang,omitempty"` // ree (default), rem, rpq
}

// PrepareResponse returns the handle to pass as QueryRequest.Prepared.
type PrepareResponse struct {
	Prepared string `json:"prepared"`
}

// QueryRequest is the body of POST /v1/sessions/{id}/query and
// /v1/sessions/{id}/stream. Exactly one of Query and Prepared must be set.
type QueryRequest struct {
	Query    string `json:"query,omitempty"`
	Prepared string `json:"prepared,omitempty"`
	Lang     string `json:"lang,omitempty"` // ree (default), rem, rpq
	// Algo selects the certain-answer semantics: "null" (Theorem 4,
	// default), "least" (Theorem 5, equality-only queries), "exact"
	// (Theorem 2 bounded exponential search; honors MaxNulls). Streaming
	// supports null and least.
	Algo string `json:"algo,omitempty"`
	// TimeoutMS bounds this one request; 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Options overrides the session's budgets for this request only (a
	// derived session sharing the memoized solutions serves it).
	Options SessionOptions `json:"options"`
}

// QueryResponse is the body of a successful POST /v1/sessions/{id}/query.
type QueryResponse struct {
	Algo      string   `json:"algo"`
	Count     int      `json:"count"`
	Answers   []Answer `json:"answers"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

// OneShotRequest is the body of POST /v1/query: a single certain-answer
// call that builds a throwaway session (and thus re-materializes the
// solution) per request. It exists as the amortization baseline the load
// generator compares sessions against — prefer sessions for anything that
// asks twice.
type OneShotRequest struct {
	Mapping string         `json:"mapping"`
	Graph   string         `json:"graph"`
	Query   string         `json:"query"`
	Lang    string         `json:"lang,omitempty"`
	Algo    string         `json:"algo,omitempty"`
	Options SessionOptions `json:"options"`
	// TimeoutMS bounds the request; 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// IngestRequest is the body of POST /v1/graphs/{name}/ingest: a
// relational bulk load that lands as a registered graph. Schema is the
// ingest schema text (table/col/fk directives); Tables maps declared
// table names to CSV payloads, header row first. docs/INGEST.md documents
// the schema format and the direct mapping.
type IngestRequest struct {
	Schema string            `json:"schema"`
	Tables map[string]string `json:"tables"`
	// BatchSize is rows per commit batch — the progress-report and
	// snapshot-publication granularity; 0 uses the pipeline default.
	BatchSize int `json:"batch_size,omitempty"`
	// SkipBadRows selects the lenient policy: malformed rows (ragged,
	// uncoercible, duplicate-key, dangling-FK) are counted and skipped
	// instead of aborting the load.
	SkipBadRows bool `json:"skip_bad_rows,omitempty"`
	// TimeoutMS bounds the load; 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// IngestReport is the wire form of a completed load's summary.
type IngestReport struct {
	Rows        int64   `json:"rows"`
	Skipped     int64   `json:"skipped"`
	DroppedFKs  int64   `json:"dropped_fks"`
	Batches     int     `json:"batches"`
	FullBuilds  uint64  `json:"full_builds"`
	DeltaBuilds uint64  `json:"delta_builds"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// IngestChunk is one NDJSON line of POST /v1/graphs/{name}/ingest: a
// per-batch progress report (Table..Edges), a terminal error, or the
// final done marker carrying the registered graph and the load report.
// Like the query stream, a reader always sees either {"done":true} or
// {"error":...} — never a silent truncation.
type IngestChunk struct {
	Table   string        `json:"table,omitempty"`
	Rows    int64         `json:"rows,omitempty"`
	Skipped int64         `json:"skipped,omitempty"`
	Nodes   int           `json:"nodes,omitempty"`
	Edges   int           `json:"edges,omitempty"`
	Error   string        `json:"error,omitempty"`
	Kind    string        `json:"kind,omitempty"`
	Done    bool          `json:"done,omitempty"`
	Graph   *GraphInfo    `json:"graph,omitempty"`
	Report  *IngestReport `json:"report,omitempty"`
}

// StreamChunk is one NDJSON line of POST /v1/sessions/{id}/stream: either
// an answer, a terminal error, or the final done marker with the total
// count.
type StreamChunk struct {
	Answer *Answer `json:"answer,omitempty"`
	Error  string  `json:"error,omitempty"`
	Kind   string  `json:"kind,omitempty"`
	Done   bool    `json:"done,omitempty"`
	Count  int     `json:"count,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Draining        bool   `json:"draining"`
	Mappings        int    `json:"mappings"`
	Graphs          int    `json:"graphs"`
	SessionsOpen    int    `json:"sessions_open"`
	SessionsCreated uint64 `json:"sessions_created"`
	SharedBackends  int    `json:"shared_backends"`
	// IdleBackends counts resident backends with no open sessions — warm
	// state retained for reuse, eligible for LRU eviction under the memory
	// budget. ResidentBytes is the summed byte estimate of all resident
	// backends; MemBudgetBytes echoes the configured budget (0 unlimited)
	// and Evictions counts idle backends reclaimed so far.
	IdleBackends   int    `json:"idle_backends"`
	ResidentBytes  int64  `json:"resident_bytes"`
	MemBudgetBytes int64  `json:"mem_budget_bytes,omitempty"`
	Evictions      uint64 `json:"evictions"`
	// InFlight and Queued are the governor's current admitted and waiting
	// request counts; Tenants breaks admission down per tenant.
	InFlight int           `json:"in_flight"`
	Queued   int           `json:"queued"`
	Tenants  []TenantStats `json:"tenants,omitempty"`
	Requests uint64        `json:"requests"`
	// RejectedOverloaded counts requests shed by the governor (queue full
	// or deadline unmeetable) plus backend creations refused by the memory
	// budget; RejectedRateLimited counts token-bucket refusals.
	RejectedOverloaded  uint64 `json:"rejected_overloaded"`
	RejectedRateLimited uint64 `json:"rejected_rate_limited"`
	RejectedDraining    uint64 `json:"rejected_draining"`
	RejectedDegraded    uint64 `json:"rejected_degraded"`
	Queries             uint64 `json:"queries"`
	Answers             uint64 `json:"answers"`
	Streams             uint64 `json:"streams"`
	OneShots            uint64 `json:"one_shots"`
	Errors              uint64 `json:"errors"`
	Panics              uint64 `json:"panics"`
	// Persistent reports whether a state directory is attached; WALSeq is
	// the last durable registry sequence number and WALWedged whether the
	// log is refusing appends pending a checkpoint or restart.
	Persistent bool   `json:"persistent"`
	WALSeq     uint64 `json:"wal_seq,omitempty"`
	WALWedged  bool   `json:"wal_wedged,omitempty"`
	// Shards and Partition echo the serving configuration (gsmd -shards /
	// -partition); ShardBackends reports per-backend sharded state. All
	// omitted when serving unsharded.
	Shards        int                 `json:"shards,omitempty"`
	Partition     string              `json:"partition,omitempty"`
	ShardBackends []ShardBackendStats `json:"shard_backends,omitempty"`
}

// ShardBackendStats reports one shared backend's sharding state: the
// cumulative boundary-exchange counters across all of its tenants' traffic
// and, once a sharded solution has been materialized, per-fragment sizes.
type ShardBackendStats struct {
	Mapping        string              `json:"mapping"`
	Graph          string              `json:"graph"`
	Shards         int                 `json:"shards"`
	Policy         string              `json:"policy"`
	ExchangeRounds uint64              `json:"exchange_rounds"`
	BoundaryPairs  uint64              `json:"boundary_pairs"`
	Fragments      []ShardFragmentWire `json:"fragments,omitempty"`
}

// ShardFragmentWire is one solution fragment's sizes on the wire.
type ShardFragmentWire struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	Nulls int `json:"nulls"`
}

// CheckpointResponse is the body of POST /v1/admin/checkpoint: the
// sequence number and registry size the new snapshot covers.
type CheckpointResponse struct {
	Seq      uint64 `json:"seq"`
	Mappings int    `json:"mappings"`
	Graphs   int    `json:"graphs"`
}

// FaultsRequest is the body of POST /v1/admin/faults: an internal/fault
// spec string plus the RNG seed. An empty spec disarms. The endpoint is
// refused unless the server runs with fault injection enabled.
type FaultsRequest struct {
	Spec string `json:"spec"`
	Seed int64  `json:"seed,omitempty"`
}

// FaultsResponse describes the armed fault plan (GET or POST
// /v1/admin/faults).
type FaultsResponse struct {
	Armed  bool                `json:"armed"`
	Spec   string              `json:"spec,omitempty"`
	Seed   int64               `json:"seed,omitempty"`
	Points []fault.PointStatus `json:"points,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "draining"
}

// StatusClientClosedRequest is the nginx-convention status for requests
// that ended because the client's context was canceled or its deadline
// expired (the facade's ErrCanceled). Go's http package has no name for
// 499.
const StatusClientClosedRequest = 499

// Internal sentinels for conditions that originate in the server rather
// than the evaluation engine; statusKind maps them alongside the facade's
// typed errors.
var (
	errNotFound  = errors.New("not found")
	errExists    = errors.New("already registered with different contents")
	errInUse     = errors.New("in use by open sessions")
	errForbidden = errors.New("not enabled on this server")
)

// statusKind maps an error to its HTTP status and stable wire kind — the
// typed-error → status-code table of docs/SERVER.md. Every handler funnels
// errors through this single place.
func statusKind(err error) (status int, kind string) {
	switch {
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, errExists):
		return http.StatusConflict, "exists"
	case errors.Is(err, errInUse):
		return http.StatusConflict, "in_use"
	case errors.Is(err, errForbidden):
		return http.StatusForbidden, "forbidden"
	case errors.Is(err, errDegraded):
		return http.StatusServiceUnavailable, "degraded"
	case errors.Is(err, errOverloaded):
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, errRateLimited):
		return http.StatusTooManyRequests, "rate_limited"
	case errors.Is(err, errStorage):
		return http.StatusServiceUnavailable, "storage_failed"
	case isIngestDataError(err):
		return http.StatusUnprocessableEntity, "bad_data"
	case errors.Is(err, repro.ErrBadOptions):
		return http.StatusBadRequest, "bad_options"
	case errors.Is(err, repro.ErrInfinite):
		return http.StatusUnprocessableEntity, "infinite"
	case errors.Is(err, repro.ErrNoSolution):
		return http.StatusUnprocessableEntity, "no_solution"
	case errors.Is(err, repro.ErrBudgetExceeded):
		return http.StatusTooManyRequests, "budget_exceeded"
	case errors.Is(err, repro.ErrCanceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, repro.ErrSourceMutated):
		return http.StatusConflict, "source_mutated"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// isIngestDataError reports whether err is one of internal/ingest's typed
// input errors: malformed source data is the caller's mistake (422
// bad_data), not a server failure, so it must neither 500 nor trip any
// breaker accounting that keys off backend failures.
func isIngestDataError(err error) bool {
	for _, sentinel := range []error{
		ingest.ErrBadSchema, ingest.ErrBadHeader, ingest.ErrBadRow,
		ingest.ErrCoerce, ingest.ErrDuplicatePK, ingest.ErrNullPK,
		ingest.ErrDanglingFK,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}
