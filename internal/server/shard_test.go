package server

import (
	"fmt"
	"net/http"
	"testing"
)

// TestShardedServingMatchesUnsharded replays the same query stream against
// a sharded and an unsharded server and pins byte-identical answer wires:
// the HTTP layer is where every tier of the sharded path (partitioned
// freeze, per-shard chase, boundary exchange, deterministic merge) is
// finally observable to a client, so equality here is the end-to-end
// acceptance check.
func TestShardedServingMatchesUnsharded(t *testing.T) {
	plain, sc := newTestServer(t, Config{})
	sharded, _ := newTestServer(t, Config{Shards: 4, Partition: "hash"})
	hp, hs := plain.Handler(), sharded.Handler()

	var sip, sis SessionInfo
	if code := do(t, hp, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g"}, &sip); code != http.StatusOK {
		t.Fatalf("plain create session: status %d", code)
	}
	if code := do(t, hs, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g"}, &sis); code != http.StatusOK {
		t.Fatalf("sharded create session: status %d", code)
	}

	type probe struct {
		text, lang, algo string
	}
	var probes []probe
	for _, q := range sc.QueryTexts {
		probes = append(probes, probe{q, "ree", "null"})
		probes = append(probes, probe{q, "ree", "least"})
	}
	// Navigational queries go through the shard-local kernels plus the
	// boundary-frontier exchange rather than the merged solution.
	for _, q := range []string{"s t", "(s|t)+", "p q", "r q", "(p|r) q"} {
		probes = append(probes, probe{q, "rpq", "null"})
		probes = append(probes, probe{q, "rpq", "least"})
	}

	for i, pr := range probes {
		req := QueryRequest{Query: pr.text, Lang: pr.lang, Algo: pr.algo}
		var got, want QueryResponse
		codeP := do(t, hp, "POST", "/v1/sessions/"+sip.ID+"/query", "alice", req, &want)
		codeS := do(t, hs, "POST", "/v1/sessions/"+sis.ID+"/query", "alice", req, &got)
		if codeP != http.StatusOK || codeS != http.StatusOK {
			t.Fatalf("probe %d (%s %s %s): status plain=%d sharded=%d", i, pr.lang, pr.algo, pr.text, codeP, codeS)
		}
		if got.Count != want.Count || fmt.Sprint(got.Answers) != fmt.Sprint(want.Answers) {
			t.Fatalf("probe %d (%s %s %s): sharded answers diverge:\n  plain   %d %v\n  sharded %d %v",
				i, pr.lang, pr.algo, pr.text, want.Count, want.Answers, got.Count, got.Answers)
		}
	}

	// The sharded server's stats expose the shard layout and exchange work.
	var st StatsResponse
	if code := do(t, hs, "GET", "/v1/stats", "alice", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Shards != 4 || st.Partition != "hash" {
		t.Fatalf("stats shards/partition = %d/%q, want 4/hash", st.Shards, st.Partition)
	}
	if len(st.ShardBackends) != 1 {
		t.Fatalf("stats shard_backends = %+v, want one entry", st.ShardBackends)
	}
	be := st.ShardBackends[0]
	if be.Mapping != "m" || be.Graph != "g" || be.Shards != 4 || be.Policy != "hash" {
		t.Fatalf("backend stats = %+v", be)
	}
	if len(be.Fragments) != 4 {
		t.Fatalf("backend fragments = %+v, want 4", be.Fragments)
	}
	var nodes, nulls int
	for _, f := range be.Fragments {
		nodes += f.Nodes
		nulls += f.Nulls
	}
	if nodes == 0 {
		t.Fatal("backend fragments report zero nodes")
	}
	if nulls == 0 {
		t.Fatal("backend fragments report zero nulls; the serving mapping always introduces path nulls")
	}
	if be.ExchangeRounds == 0 {
		t.Fatal("exchange_rounds = 0 after serving navigational queries")
	}

	// The unsharded server reports no shard section at all.
	var stp StatsResponse
	if code := do(t, hp, "GET", "/v1/stats", "alice", nil, &stp); code != http.StatusOK {
		t.Fatalf("plain stats: status %d", code)
	}
	if stp.Shards != 0 || len(stp.ShardBackends) != 0 {
		t.Fatalf("unsharded stats reports shard fields: %d %+v", stp.Shards, stp.ShardBackends)
	}
}
