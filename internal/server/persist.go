package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
)

// This file is the crash-safe registry store: a JSON snapshot plus an
// append-only, fsync'd write-ahead log of register/delete operations. The
// registry (named mapping and graph texts) is the only durable state —
// sessions, backends and memoized solutions are soft state that is lazily
// re-materialized after a restart, so recovery is: load snapshot, replay
// WAL, re-compile entries, and let the first query on each (mapping,
// graph) pair rebuild its solutions.
//
// WAL format: each record is [4-byte little-endian payload length][4-byte
// IEEE CRC32 of the payload][JSON payload]. Replay is torn-write
// tolerant: a truncated or corrupt record ends the replay, the bad tail is
// moved to a quarantine file (never silently deleted), and the WAL is
// truncated back to its last good record — the registry refuses to lose
// acknowledged writes but never refuses to start.

// Registry operation kinds, as stored in WAL records and snapshots.
const (
	opMapping       = "mapping"
	opGraph         = "graph"
	opDeleteMapping = "delete_mapping"
	opDeleteGraph   = "delete_graph"
)

// walRecord is one logged registry operation.
type walRecord struct {
	Seq  uint64 `json:"seq"`
	Op   string `json:"op"`
	Name string `json:"name"`
	Text string `json:"text,omitempty"`
}

// namedText is a registry entry in snapshot form.
type namedText struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// registrySnapshot is the JSON snapshot document: the full registry as of
// sequence number Seq. WAL records with Seq greater than this apply on top.
type registrySnapshot struct {
	Seq      uint64      `json:"seq"`
	Mappings []namedText `json:"mappings"`
	Graphs   []namedText `json:"graphs"`
}

// errStorage marks persistence failures: the operation was refused because
// it could not be made durable. Mapped to 503 storage_failed (retryable —
// an admin checkpoint or a restart repairs the store).
var errStorage = errors.New("registry storage failed")

// persister owns the state directory: the open WAL file, the sequence
// counter and the wedged flag, all guarded by its own mutex (appends run
// under the Server's registry lock, but statsSnapshot and checkpoint read
// the counters from outside it).
type persister struct {
	dir string

	mu     sync.Mutex
	wal    *os.File
	seq    uint64 // last durable sequence number
	wedged bool   // a failed append left an unrepaired tail; appends refused
}

func (p *persister) walPath() string       { return filepath.Join(p.dir, "registry.wal") }
func (p *persister) snapPath() string      { return filepath.Join(p.dir, "registry.json") }
func (p *persister) walQuarantine() string { return filepath.Join(p.dir, "registry.wal.quarantine") }

// RecoveryInfo reports what openState reconstructed, for logs and tests.
type RecoveryInfo struct {
	SnapshotSeq     uint64 // sequence the snapshot covered (0 = none)
	WALReplayed     int    // records applied on top of the snapshot
	Seq             uint64 // last durable sequence after recovery
	Mappings        int    // registry size after recovery
	Graphs          int
	QuarantinedWAL  bool // a torn/corrupt WAL tail was quarantined
	QuarantinedSnap bool // an unreadable snapshot was quarantined
}

// OpenState attaches a state directory to the server: it recovers the
// registry from the directory's snapshot + WAL (tolerating torn writes and
// quarantining corruption), registers the recovered entries in memory, and
// keeps the WAL open so every later registry mutation is persisted before
// it is acknowledged. Backends are not rebuilt here — the first session on
// each recovered (mapping, graph) pair re-materializes its solutions
// lazily. Must be called before the server starts serving.
func (s *Server) OpenState(dir string) (RecoveryInfo, error) {
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return info, fmt.Errorf("state dir: %w", err)
	}
	p := &persister{dir: dir}

	// 1. Snapshot: the base registry image. An unreadable snapshot is
	// quarantined, not fatal — the WAL (from seq 0) may still restore part
	// of the registry, and refusing to start helps nobody.
	var snap registrySnapshot
	if raw, err := os.ReadFile(p.snapPath()); err == nil {
		if jerr := json.Unmarshal(raw, &snap); jerr != nil {
			if qerr := os.Rename(p.snapPath(), p.snapPath()+".quarantine"); qerr != nil {
				return info, fmt.Errorf("quarantining corrupt snapshot: %w", qerr)
			}
			snap = registrySnapshot{}
			info.QuarantinedSnap = true
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return info, fmt.Errorf("reading snapshot: %w", err)
	}
	info.SnapshotSeq = snap.Seq
	p.seq = snap.Seq

	// 2. WAL: replay every intact record past the snapshot, quarantine and
	// truncate a torn tail.
	recs, torn, err := p.replayWAL()
	if err != nil {
		return info, err
	}
	info.QuarantinedWAL = torn

	// 3. Rebuild the in-memory registry. Snapshot entries first, then WAL
	// ops in sequence order. Replay applies ops unconditionally (last op
	// wins) — conflicts were already rejected before these ops were logged.
	reg := make(map[string]namedText) // key "m\x00name" / "g\x00name"
	for _, m := range snap.Mappings {
		reg["m\x00"+m.Name] = m
	}
	for _, g := range snap.Graphs {
		reg["g\x00"+g.Name] = g
	}
	for _, rec := range recs {
		if rec.Seq <= snap.Seq {
			continue // already folded into the snapshot
		}
		switch rec.Op {
		case opMapping:
			reg["m\x00"+rec.Name] = namedText{Name: rec.Name, Text: rec.Text}
		case opGraph:
			reg["g\x00"+rec.Name] = namedText{Name: rec.Name, Text: rec.Text}
		case opDeleteMapping:
			delete(reg, "m\x00"+rec.Name)
		case opDeleteGraph:
			delete(reg, "g\x00"+rec.Name)
		}
		if rec.Seq > p.seq {
			p.seq = rec.Seq
		}
		info.WALReplayed++
	}
	for key, e := range reg {
		if key[0] == 'm' {
			if _, err := s.registerMapping(e.Name, e.Text, false); err != nil {
				return info, fmt.Errorf("recovering mapping %q: %w", e.Name, err)
			}
		} else {
			if _, err := s.registerGraph(e.Name, e.Text, false); err != nil {
				return info, fmt.Errorf("recovering graph %q: %w", e.Name, err)
			}
		}
	}

	// 4. Open the WAL for appending.
	wal, err := os.OpenFile(p.walPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return info, fmt.Errorf("opening wal: %w", err)
	}
	p.wal = wal

	s.mu.Lock()
	s.persist = p
	info.Seq = p.seq
	info.Mappings = len(s.mappings)
	info.Graphs = len(s.graphs)
	s.mu.Unlock()
	return info, nil
}

// replayWAL reads every intact record of the WAL. A truncated frame, CRC
// mismatch or undecodable payload ends the scan: the bytes from the last
// good record onward are appended to the quarantine file and the WAL is
// truncated back to the good prefix, so the next append lands on a clean
// boundary.
func (p *persister) replayWAL() (recs []walRecord, torn bool, err error) {
	raw, err := os.ReadFile(p.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("reading wal: %w", err)
	}
	off := 0
	good := 0
	for off < len(raw) {
		if len(raw)-off < 8 {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if n <= 0 || len(raw)-off-8 < n {
			break // absurd length or torn payload
		}
		payload := raw[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		var rec walRecord
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		recs = append(recs, rec)
		off += 8 + n
		good = off
	}
	if good == len(raw) {
		return recs, false, nil
	}
	// Quarantine the bad tail, then truncate the WAL back to the good
	// prefix.
	q, err := os.OpenFile(p.walQuarantine(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, true, fmt.Errorf("opening wal quarantine: %w", err)
	}
	if _, err := q.Write(raw[good:]); err != nil {
		q.Close()
		return nil, true, fmt.Errorf("writing wal quarantine: %w", err)
	}
	if err := q.Close(); err != nil {
		return nil, true, fmt.Errorf("closing wal quarantine: %w", err)
	}
	if err := os.Truncate(p.walPath(), int64(good)); err != nil {
		return nil, true, fmt.Errorf("truncating torn wal: %w", err)
	}
	return recs, true, nil
}

// append logs one operation durably: frame, write, fsync — only then does
// the caller apply the operation in memory. A failed write attempts to
// truncate back to the record boundary; if the tail cannot be repaired the
// persister wedges (all further appends refused) until a checkpoint or
// restart re-establishes a clean log. Returns the record's sequence
// number.
//
// Fault points: "wal.append" (partial mode tears the frame mid-write and —
// deliberately simulating a crash — skips the truncate repair; error mode
// fails before writing), "wal.fsync" (error mode fails the sync).
func (p *persister) append(op, name, text string) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wedged {
		return 0, fmt.Errorf("%w: write-ahead log has an unrepaired tail (checkpoint or restart to recover)", errStorage)
	}
	rec := walRecord{Seq: p.seq + 1, Op: op, Name: name, Text: text}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("%w: encoding record: %v", errStorage, err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	start, err := p.wal.Seek(0, io.SeekEnd)
	if err != nil {
		p.wedged = true
		return 0, fmt.Errorf("%w: seeking wal: %v", errStorage, err)
	}
	if k, fired := fault.Partial("wal.append", len(frame)); fired {
		// Simulate a crash mid-append: the torn prefix stays on disk and
		// no repair runs, exactly as if power was lost here.
		p.wal.Write(frame[:k])
		p.wal.Sync()
		p.wedged = true
		return 0, fmt.Errorf("%w: appending wal record: %v at wal.append (torn write)", errStorage, fault.ErrInjected)
	}
	if err := fault.Hit("wal.append"); err != nil {
		p.wedged = true
		return 0, fmt.Errorf("%w: appending wal record: %v", errStorage, err)
	}
	if _, err := p.wal.Write(frame); err != nil {
		// A genuine short write: try to cut the log back to the record
		// boundary so the store stays usable; wedge if that also fails.
		if terr := p.wal.Truncate(start); terr != nil {
			p.wedged = true
		}
		return 0, fmt.Errorf("%w: appending wal record: %v", errStorage, err)
	}
	if err := fault.Hit("wal.fsync"); err != nil {
		p.wedged = true
		return 0, fmt.Errorf("%w: syncing wal: %v", errStorage, err)
	}
	if err := p.wal.Sync(); err != nil {
		p.wedged = true
		return 0, fmt.Errorf("%w: syncing wal: %v", errStorage, err)
	}
	p.seq = rec.Seq
	return rec.Seq, nil
}

// checkpoint writes a full snapshot of the registry (atomically:
// tmp + fsync + rename + directory fsync) and truncates the WAL, which
// also clears a wedged log — the snapshot supersedes whatever the torn
// tail lost acknowledgment for. The caller extracts the registry contents
// AND stamps snap.Seq while holding the server's registry lock, and keeps
// holding it across this call: that is what makes Truncate(0) safe, since
// no acknowledged append can slip in between the copy and the truncation.
// As defense in depth, a snapshot whose seq trails the WAL is refused
// rather than allowed to destroy the newer records.
//
// Fault point: "registry.snapshot" (error mode fails before the tmp write).
func (p *persister) checkpoint(snap registrySnapshot) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if snap.Seq != p.seq {
		return fmt.Errorf("%w: registry changed during checkpoint (snapshot seq %d, wal seq %d); retry", errStorage, snap.Seq, p.seq)
	}
	if err := fault.Hit("registry.snapshot"); err != nil {
		return fmt.Errorf("%w: writing snapshot: %v", errStorage, err)
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("%w: encoding snapshot: %v", errStorage, err)
	}
	tmp := p.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("%w: creating snapshot: %v", errStorage, err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("%w: writing snapshot: %v", errStorage, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("%w: syncing snapshot: %v", errStorage, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%w: closing snapshot: %v", errStorage, err)
	}
	if err := os.Rename(tmp, p.snapPath()); err != nil {
		return fmt.Errorf("%w: installing snapshot: %v", errStorage, err)
	}
	if dir, err := os.Open(p.dir); err == nil {
		dir.Sync()
		dir.Close()
	}
	// The snapshot now covers every durable op; empty the WAL.
	if err := p.wal.Truncate(0); err != nil {
		return fmt.Errorf("%w: truncating wal after snapshot: %v", errStorage, err)
	}
	if err := p.wal.Sync(); err != nil {
		return fmt.Errorf("%w: syncing truncated wal: %v", errStorage, err)
	}
	p.wedged = false
	return nil
}

// close releases the WAL file handle (tests re-open state directories).
func (p *persister) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wal != nil {
		err := p.wal.Close()
		p.wal = nil
		return err
	}
	return nil
}
